# Empty dependencies file for fzmod.
# This may be replaced when dependencies are built.
