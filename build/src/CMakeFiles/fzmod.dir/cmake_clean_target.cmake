file(REMOVE_RECURSE
  "libfzmod.a"
)
