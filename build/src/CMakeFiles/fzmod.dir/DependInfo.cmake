
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fzmod/baselines/compressor.cc" "src/CMakeFiles/fzmod.dir/fzmod/baselines/compressor.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/baselines/compressor.cc.o.d"
  "/root/repo/src/fzmod/baselines/cuszp2.cc" "src/CMakeFiles/fzmod.dir/fzmod/baselines/cuszp2.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/baselines/cuszp2.cc.o.d"
  "/root/repo/src/fzmod/baselines/fzgpu.cc" "src/CMakeFiles/fzmod.dir/fzmod/baselines/fzgpu.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/baselines/fzgpu.cc.o.d"
  "/root/repo/src/fzmod/baselines/pfpl.cc" "src/CMakeFiles/fzmod.dir/fzmod/baselines/pfpl.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/baselines/pfpl.cc.o.d"
  "/root/repo/src/fzmod/baselines/sz3.cc" "src/CMakeFiles/fzmod.dir/fzmod/baselines/sz3.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/baselines/sz3.cc.o.d"
  "/root/repo/src/fzmod/core/autotune.cc" "src/CMakeFiles/fzmod.dir/fzmod/core/autotune.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/core/autotune.cc.o.d"
  "/root/repo/src/fzmod/core/builtin_modules.cc" "src/CMakeFiles/fzmod.dir/fzmod/core/builtin_modules.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/core/builtin_modules.cc.o.d"
  "/root/repo/src/fzmod/core/pipeline.cc" "src/CMakeFiles/fzmod.dir/fzmod/core/pipeline.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/core/pipeline.cc.o.d"
  "/root/repo/src/fzmod/core/snapshot.cc" "src/CMakeFiles/fzmod.dir/fzmod/core/snapshot.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/core/snapshot.cc.o.d"
  "/root/repo/src/fzmod/core/stf_pipeline.cc" "src/CMakeFiles/fzmod.dir/fzmod/core/stf_pipeline.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/core/stf_pipeline.cc.o.d"
  "/root/repo/src/fzmod/data/datasets.cc" "src/CMakeFiles/fzmod.dir/fzmod/data/datasets.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/data/datasets.cc.o.d"
  "/root/repo/src/fzmod/data/io.cc" "src/CMakeFiles/fzmod.dir/fzmod/data/io.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/data/io.cc.o.d"
  "/root/repo/src/fzmod/encoders/fzg.cc" "src/CMakeFiles/fzmod.dir/fzmod/encoders/fzg.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/encoders/fzg.cc.o.d"
  "/root/repo/src/fzmod/encoders/huffman.cc" "src/CMakeFiles/fzmod.dir/fzmod/encoders/huffman.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/encoders/huffman.cc.o.d"
  "/root/repo/src/fzmod/lossless/lz.cc" "src/CMakeFiles/fzmod.dir/fzmod/lossless/lz.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/lossless/lz.cc.o.d"
  "/root/repo/src/fzmod/metrics/metrics.cc" "src/CMakeFiles/fzmod.dir/fzmod/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/metrics/metrics.cc.o.d"
  "/root/repo/src/fzmod/predictors/interp.cc" "src/CMakeFiles/fzmod.dir/fzmod/predictors/interp.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/predictors/interp.cc.o.d"
  "/root/repo/src/fzmod/predictors/lorenzo.cc" "src/CMakeFiles/fzmod.dir/fzmod/predictors/lorenzo.cc.o" "gcc" "src/CMakeFiles/fzmod.dir/fzmod/predictors/lorenzo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
