# Empty compiler generated dependencies file for example_autotune_demo.
# This may be replaced when dependencies are built.
