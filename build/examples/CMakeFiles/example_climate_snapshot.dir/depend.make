# Empty dependencies file for example_climate_snapshot.
# This may be replaced when dependencies are built.
