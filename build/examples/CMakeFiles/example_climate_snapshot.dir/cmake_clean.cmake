file(REMOVE_RECURSE
  "CMakeFiles/example_climate_snapshot.dir/climate_snapshot.cc.o"
  "CMakeFiles/example_climate_snapshot.dir/climate_snapshot.cc.o.d"
  "climate_snapshot"
  "climate_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_climate_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
