file(REMOVE_RECURSE
  "CMakeFiles/example_stf_overlap_demo.dir/stf_overlap_demo.cc.o"
  "CMakeFiles/example_stf_overlap_demo.dir/stf_overlap_demo.cc.o.d"
  "stf_overlap_demo"
  "stf_overlap_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stf_overlap_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
