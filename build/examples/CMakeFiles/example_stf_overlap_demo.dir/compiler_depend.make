# Empty compiler generated dependencies file for example_stf_overlap_demo.
# This may be replaced when dependencies are built.
