file(REMOVE_RECURSE
  "CMakeFiles/example_cosmology_custom_pipeline.dir/cosmology_custom_pipeline.cc.o"
  "CMakeFiles/example_cosmology_custom_pipeline.dir/cosmology_custom_pipeline.cc.o.d"
  "cosmology_custom_pipeline"
  "cosmology_custom_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cosmology_custom_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
