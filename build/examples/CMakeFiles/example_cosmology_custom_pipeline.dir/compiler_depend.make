# Empty compiler generated dependencies file for example_cosmology_custom_pipeline.
# This may be replaced when dependencies are built.
