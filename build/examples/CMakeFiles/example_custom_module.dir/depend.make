# Empty dependencies file for example_custom_module.
# This may be replaced when dependencies are built.
