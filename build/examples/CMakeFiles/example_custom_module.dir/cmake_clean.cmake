file(REMOVE_RECURSE
  "CMakeFiles/example_custom_module.dir/custom_module.cc.o"
  "CMakeFiles/example_custom_module.dir/custom_module.cc.o.d"
  "custom_module"
  "custom_module.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
