# Empty dependencies file for bench_fig3_speedup_v100.
# This may be replaced when dependencies are built.
