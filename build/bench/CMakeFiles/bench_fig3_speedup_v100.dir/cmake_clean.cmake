file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_speedup_v100.dir/bench_fig3_speedup_v100.cc.o"
  "CMakeFiles/bench_fig3_speedup_v100.dir/bench_fig3_speedup_v100.cc.o.d"
  "bench_fig3_speedup_v100"
  "bench_fig3_speedup_v100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_speedup_v100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
