# Empty dependencies file for bench_table3_compression_ratio.
# This may be replaced when dependencies are built.
