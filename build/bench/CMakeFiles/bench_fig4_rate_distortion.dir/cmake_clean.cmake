file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_rate_distortion.dir/bench_fig4_rate_distortion.cc.o"
  "CMakeFiles/bench_fig4_rate_distortion.dir/bench_fig4_rate_distortion.cc.o.d"
  "bench_fig4_rate_distortion"
  "bench_fig4_rate_distortion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_rate_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
