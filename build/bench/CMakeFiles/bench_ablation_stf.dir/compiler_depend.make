# Empty compiler generated dependencies file for bench_ablation_stf.
# This may be replaced when dependencies are built.
