file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stf.dir/bench_ablation_stf.cc.o"
  "CMakeFiles/bench_ablation_stf.dir/bench_ablation_stf.cc.o.d"
  "bench_ablation_stf"
  "bench_ablation_stf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
