file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_speedup_h100.dir/bench_fig2_speedup_h100.cc.o"
  "CMakeFiles/bench_fig2_speedup_h100.dir/bench_fig2_speedup_h100.cc.o.d"
  "bench_fig2_speedup_h100"
  "bench_fig2_speedup_h100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_speedup_h100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
