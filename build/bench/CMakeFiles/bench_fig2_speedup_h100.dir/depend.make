# Empty dependencies file for bench_fig2_speedup_h100.
# This may be replaced when dependencies are built.
