# Empty compiler generated dependencies file for fzmod_cli.
# This may be replaced when dependencies are built.
