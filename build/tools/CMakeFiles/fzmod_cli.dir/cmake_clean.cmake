file(REMOVE_RECURSE
  "CMakeFiles/fzmod_cli.dir/fzmod_cli.cc.o"
  "CMakeFiles/fzmod_cli.dir/fzmod_cli.cc.o.d"
  "fzmod"
  "fzmod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fzmod_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
