file(REMOVE_RECURSE
  "CMakeFiles/test_error_bounds.dir/test_error_bounds.cc.o"
  "CMakeFiles/test_error_bounds.dir/test_error_bounds.cc.o.d"
  "test_error_bounds"
  "test_error_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
