file(REMOVE_RECURSE
  "CMakeFiles/test_stf.dir/test_stf.cc.o"
  "CMakeFiles/test_stf.dir/test_stf.cc.o.d"
  "test_stf"
  "test_stf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
