# Empty compiler generated dependencies file for test_stf.
# This may be replaced when dependencies are built.
