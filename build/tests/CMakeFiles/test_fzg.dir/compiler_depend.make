# Empty compiler generated dependencies file for test_fzg.
# This may be replaced when dependencies are built.
