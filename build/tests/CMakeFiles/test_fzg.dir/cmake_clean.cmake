file(REMOVE_RECURSE
  "CMakeFiles/test_fzg.dir/test_fzg.cc.o"
  "CMakeFiles/test_fzg.dir/test_fzg.cc.o.d"
  "test_fzg"
  "test_fzg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fzg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
