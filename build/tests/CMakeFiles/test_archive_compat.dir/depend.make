# Empty dependencies file for test_archive_compat.
# This may be replaced when dependencies are built.
