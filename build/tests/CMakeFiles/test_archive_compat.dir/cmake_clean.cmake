file(REMOVE_RECURSE
  "CMakeFiles/test_archive_compat.dir/test_archive_compat.cc.o"
  "CMakeFiles/test_archive_compat.dir/test_archive_compat.cc.o.d"
  "test_archive_compat"
  "test_archive_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_archive_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
