# Empty compiler generated dependencies file for test_modules_extra.
# This may be replaced when dependencies are built.
