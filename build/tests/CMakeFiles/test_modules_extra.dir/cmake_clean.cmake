file(REMOVE_RECURSE
  "CMakeFiles/test_modules_extra.dir/test_modules_extra.cc.o"
  "CMakeFiles/test_modules_extra.dir/test_modules_extra.cc.o.d"
  "test_modules_extra"
  "test_modules_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modules_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
