file(REMOVE_RECURSE
  "CMakeFiles/test_stf_stress.dir/test_stf_stress.cc.o"
  "CMakeFiles/test_stf_stress.dir/test_stf_stress.cc.o.d"
  "test_stf_stress"
  "test_stf_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stf_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
