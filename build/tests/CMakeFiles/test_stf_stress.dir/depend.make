# Empty dependencies file for test_stf_stress.
# This may be replaced when dependencies are built.
