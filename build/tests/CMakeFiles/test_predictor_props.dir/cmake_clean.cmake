file(REMOVE_RECURSE
  "CMakeFiles/test_predictor_props.dir/test_predictor_props.cc.o"
  "CMakeFiles/test_predictor_props.dir/test_predictor_props.cc.o.d"
  "test_predictor_props"
  "test_predictor_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictor_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
