# Empty dependencies file for test_fixed_length.
# This may be replaced when dependencies are built.
