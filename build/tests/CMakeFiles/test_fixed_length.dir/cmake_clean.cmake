file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_length.dir/test_fixed_length.cc.o"
  "CMakeFiles/test_fixed_length.dir/test_fixed_length.cc.o.d"
  "test_fixed_length"
  "test_fixed_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
