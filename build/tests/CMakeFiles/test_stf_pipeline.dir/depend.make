# Empty dependencies file for test_stf_pipeline.
# This may be replaced when dependencies are built.
