file(REMOVE_RECURSE
  "CMakeFiles/test_stf_pipeline.dir/test_stf_pipeline.cc.o"
  "CMakeFiles/test_stf_pipeline.dir/test_stf_pipeline.cc.o.d"
  "test_stf_pipeline"
  "test_stf_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stf_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
