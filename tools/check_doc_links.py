#!/usr/bin/env python3
"""Docs consistency checker: links and FZMOD_* environment variables.

Two independent checks, both fatal:

1. **Links.** Every relative markdown link `[text](target)` in every
   *.md file (build/ and .git/ skipped) must resolve on disk. External
   schemes (http/https/mailto) and pure in-page anchors (#...) are
   skipped; a `path#anchor` target is checked for the path only.

2. **Environment variables.** The docs and the source tree must agree
   about `FZMOD_*` knobs, in both directions:

   - every `FZMOD_*` variable *mentioned* in the documented surface
     (README.md, DESIGN.md, EXPERIMENTS.md, docs/*.md — fenced code
     blocks stripped) must actually be read somewhere under src/,
     tools/, bench/, or tests/ (as a quoted `"FZMOD_<NAME>"` string, the
     form every getenv/env_u64 read site uses) — so the docs cannot
     describe a knob that no longer exists;
   - every variable *read* under src/ or tools/ (the shipped library +
     CLI; bench/test-only knobs are documented per-bench) must have a
     row in OBSERVABILITY.md's canonical environment-variable table —
     so a new library knob cannot ship undocumented. A wildcard row
     like `FZMOD_SERVE_*` covers every variable with that prefix.

   Macro names that merely share the FZMOD_ prefix are blacklisted in
   NON_ENV.

Run from the repository root (CI does) or any subdirectory of it.
Exits nonzero listing every broken link and every drifted variable.
"""
import os
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
ENV_MENTION = re.compile(r"FZMOD_[A-Z0-9_]*[A-Z0-9](?:_\*)?")
ENV_READ = re.compile(r"\"(FZMOD_[A-Z0-9_]+)\"")
TABLE_ROW = re.compile(r"^\|\s*`(FZMOD_[A-Z0-9_]+(?:_?\*)?)`")
SKIP_DIRS = {".git", "build", "build-asan", "build-tsan", "node_modules"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

# C/C++ macros (and the test-suite's synthetic knob) that share the
# FZMOD_ prefix but are not environment variables.
NON_ENV = {
    "FZMOD_REQUIRE",
    "FZMOD_TRACE_SPAN",
    "FZMOD_TRACE_SPAN_ID",
    "FZMOD_TRACE_CONCAT",
    "FZMOD_TEST_KNOB",
}

# The documented surface for direction 1 (mention -> must be read).
DOC_FILES = ("README.md", "DESIGN.md", "EXPERIMENTS.md")
DOC_DIRS = ("docs",)

# Source trees scanned for read sites; the first two are the shipped
# surface whose knobs must appear in the canonical table.
SHIPPED_TREES = ("src", "tools")
ALL_TREES = ("src", "tools", "bench", "tests")

CANONICAL_TABLE_DOC = os.path.join("docs", "OBSERVABILITY.md")
CANONICAL_TABLE_HEADING = "## Canonical environment-variable table"


def repo_root() -> str:
    d = os.path.abspath(os.getcwd())
    while d != os.path.dirname(d):
        if os.path.isdir(os.path.join(d, ".git")):
            return d
        d = os.path.dirname(d)
    return os.path.abspath(os.getcwd())


def read_text(path: str) -> str:
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read()


def strip_fences(text: str) -> str:
    return re.sub(r"```.*?```", "", text, flags=re.S)


def check_links(root: str, problems: list) -> int:
    checked = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for fn in filenames:
            if not fn.endswith(".md"):
                continue
            path = os.path.join(dirpath, fn)
            # Fenced code blocks routinely hold example links; strip them.
            text = strip_fences(read_text(path))
            for m in LINK.finditer(text):
                target = m.group(1)
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                if target.startswith("/"):
                    resolved = os.path.join(root, target.lstrip("/"))
                else:
                    resolved = os.path.join(dirpath, target)
                checked += 1
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, root)
                    problems.append(f"{rel}: broken link -> {m.group(1)}")
    return checked


def doc_paths(root: str):
    for fn in DOC_FILES:
        p = os.path.join(root, fn)
        if os.path.isfile(p):
            yield p
    for d in DOC_DIRS:
        dp = os.path.join(root, d)
        if not os.path.isdir(dp):
            continue
        for fn in sorted(os.listdir(dp)):
            if fn.endswith(".md"):
                yield os.path.join(dp, fn)


def collect_mentions(root: str) -> dict:
    """env var -> first 'file' it is mentioned in (docs surface only)."""
    mentions = {}
    for path in doc_paths(root):
        rel = os.path.relpath(path, root)
        for tok in ENV_MENTION.findall(strip_fences(read_text(path))):
            if tok.endswith("*") or tok in NON_ENV:
                continue  # wildcard table rows document a prefix, not a var
            mentions.setdefault(tok, rel)
    return mentions


def collect_reads(root: str, trees) -> set:
    reads = set()
    for tree in trees:
        top = os.path.join(root, tree)
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
            for fn in filenames:
                if not fn.endswith((".cc", ".hh", ".h", ".py")):
                    continue
                text = read_text(os.path.join(dirpath, fn))
                reads.update(ENV_READ.findall(text))
    return reads - NON_ENV


def canonical_table_rows(root: str) -> tuple:
    """(exact_names, wildcard_prefixes) from OBSERVABILITY.md's table."""
    text = read_text(os.path.join(root, CANONICAL_TABLE_DOC))
    at = text.find(CANONICAL_TABLE_HEADING)
    if at < 0:
        return set(), []
    section = text[at:]
    nxt = section.find("\n## ", 1)
    if nxt > 0:
        section = section[:nxt]
    exact, prefixes = set(), []
    for line in section.splitlines():
        m = TABLE_ROW.match(line.strip())
        if not m:
            continue
        name = m.group(1)
        if name.endswith("*"):
            prefixes.append(name.rstrip("*"))
        else:
            exact.add(name)
    return exact, prefixes


def check_env(root: str, problems: list) -> tuple:
    mentions = collect_mentions(root)
    all_reads = collect_reads(root, ALL_TREES)
    shipped_reads = collect_reads(root, SHIPPED_TREES)
    exact, prefixes = canonical_table_rows(root)

    for var, where in sorted(mentions.items()):
        if var not in all_reads:
            problems.append(
                f"{where}: documents {var}, but nothing under "
                f"{'/'.join(ALL_TREES)}/ reads it")
    for var in sorted(shipped_reads):
        if var in exact or any(var.startswith(p) for p in prefixes):
            continue
        problems.append(
            f"{CANONICAL_TABLE_DOC}: missing canonical-table row for "
            f"{var} (read under src/ or tools/)")
    return len(mentions), len(shipped_reads)


def main() -> int:
    root = repo_root()
    problems = []
    links = check_links(root, problems)
    nmention, nshipped = check_env(root, problems)
    for p in problems:
        print(p, file=sys.stderr)
    print(f"checked {links} relative links, {nmention} documented FZMOD_* "
          f"vars, {nshipped} library/CLI read sites; "
          f"{len(problems)} problems")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
