#!/usr/bin/env python3
"""Docs link checker: every relative markdown link must resolve.

Scans all *.md files in the repository (skipping build/ and .git/) for
inline links/images `[text](target)`, and verifies each relative target
exists on disk. External schemes (http/https/mailto) and pure in-page
anchors (#...) are skipped; a `path#anchor` target is checked for the path
only. Exits nonzero listing every broken link.

Run from the repository root (CI does) or any subdirectory of it.
"""
import os
import re
import sys

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git", "build", "build-asan", "build-tsan", "node_modules"}
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def repo_root() -> str:
    d = os.path.abspath(os.getcwd())
    while d != os.path.dirname(d):
        if os.path.isdir(os.path.join(d, ".git")):
            return d
        d = os.path.dirname(d)
    return os.path.abspath(os.getcwd())


def main() -> int:
    root = repo_root()
    broken = []
    checked = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for fn in filenames:
            if not fn.endswith(".md"):
                continue
            path = os.path.join(dirpath, fn)
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
            # Fenced code blocks routinely hold example links; strip them.
            text = re.sub(r"```.*?```", "", text, flags=re.S)
            for m in LINK.finditer(text):
                target = m.group(1)
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                if target.startswith("/"):
                    resolved = os.path.join(root, target.lstrip("/"))
                else:
                    resolved = os.path.join(dirpath, target)
                checked += 1
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, root)
                    broken.append(f"{rel}: broken link -> {m.group(1)}")
    for b in broken:
        print(b, file=sys.stderr)
    print(f"checked {checked} relative links, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
