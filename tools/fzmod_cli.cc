// fzmod — command-line front end for FZModules.
//
//   fzmod compress   -i field.f32 -o field.fzmod --dims 500,500,100
//                    [--eb 1e-4] [--mode rel|abs|pwrel]
//                    [--preset default|speed|quality]
//                    [--predictor NAME] [--codec NAME] [--secondary]
//                    [--auto balanced|throughput|ratio|quality]
//                    [--chunk-mb N] [--jobs N]   (chunk-parallel, v3)
//   fzmod decompress -i field.fzmod -o field.f32 [--jobs N]
//                    [--range OFF,N]             (random access, v3)
//   fzmod inspect    -i field.fzmod | --pipeline SPEC
//   fzmod modules    (list the registered stage modules)
//   fzmod gen        --dataset cesm|hacc|hurr|nyx [--field N] -o out.f32
//   fzmod verify     -i field.fzmod               (archive integrity)
//   fzmod verify     -a orig.f32 -b recon.f32 --dims X[,Y[,Z]]
//   fzmod serve      --socket /path.sock | --stdio   (daemon mode; the
//                    length-prefixed protocol is specced in docs/SERVING.md)
//   fzmod selftest   (end-to-end roundtrip in a temp dir; used by ctest)
//
// Input fields are headerless little-endian f32 (the SDRBench layout);
// dims are x,y,z with x fastest-varying.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "fzmod/common/env.hh"
#include "fzmod/common/timer.hh"
#include "fzmod/core/autotune.hh"
#include "fzmod/core/chunked.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/core/reader.hh"
#include "fzmod/core/registry.hh"
#include "fzmod/core/stf_pipeline.hh"
#include "fzmod/core/stream_io.hh"
#include "fzmod/data/datasets.hh"
#include "fzmod/data/io.hh"
#include "fzmod/kernels/chunked_hash.hh"
#include "fzmod/metrics/metrics.hh"
#include "fzmod/serve/daemon.hh"
#include "fzmod/spec/spec.hh"
#include "fzmod/trace/trace.hh"

namespace {

using namespace fzmod;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  fzmod compress   -i IN.f32 -o OUT.fzmod --dims X[,Y[,Z]]"
               " [--eb B] [--mode rel|abs|pwrel]\n"
               "                   [--preset default|speed|quality]"
               " [--pipeline SPEC]\n"
               "                   [--predictor P] [--codec C]"
               " [--secondary]\n"
               "                   [--auto balanced|throughput|ratio|"
               "quality]\n"
               "                   [--kernel-tier auto|portable|vector]\n"
               "                   [--chunk-mb N] [--jobs N]  (chunk-parallel"
               " v3 container)\n"
               "                   [--trace OUT.json] [--trace-dot OUT.dot]"
               "  (see docs/OBSERVABILITY.md)\n"
               "                   [--stream] [--stream-mem-mb N] [--resume]"
               "  (out-of-core; docs/STREAMING.md)\n"
               "                   [--fields n1=f1.f32,n2=f2.f32]"
               "  (multi-field container, shared --dims)\n"
               "  fzmod decompress -i IN.fzmod -o OUT.f32 [--jobs N]"
               " [--range OFF,N] [--trace OUT.json]\n"
               "                   [--field NAME]  (pick a field of a"
               " multi-field container)\n"
               "                   [--reader-cache-mb N] [--prefetch N]"
               " (seekable reader; docs/RUNTIME.md)\n"
               "                   [--index OUT.fzx] [--use-index IN.fzx]"
               " (sidecar chunk index)\n"
               "  fzmod inspect    -i IN.fzmod [--field NAME] |"
               " --pipeline SPEC\n"
               "  fzmod modules    (list registered stage modules)\n"
               "  fzmod gen        --dataset cesm|hacc|hurr|nyx"
               " [--field N] -o OUT.f32\n"
               "  fzmod verify     -i IN.fzmod [--field NAME]  (archive"
               " integrity)\n"
               "  fzmod verify     -a ORIG.f32 -b RECON.f32 --dims"
               " X[,Y[,Z]]\n"
               "  fzmod serve      --socket PATH | --stdio  [--eb B]"
               " [--mode rel|abs] [--preset P]\n"
               "                   [--pipeline SPEC]  (per-daemon default;"
               " requests may override)\n"
               "                   [--pool N] [--warm N] [--queue N]"
               " [--deadline-ms N]\n"
               "                   [--batch N] [--batch-max N]"
               " [--workers N] [--warm-dims X,Y,Z]\n"
               "                   (daemon mode; protocol in"
               " docs/SERVING.md)\n"
               "  fzmod selftest\n");
  std::exit(2);
}

/// Tiny flag parser: --key value / -k value pairs plus boolean flags.
class args {
 public:
  args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind('-', 0) != 0) usage(("unexpected token: " + key).c_str());
      if (key == "--secondary" || key == "--stdio" || key == "--stream" ||
          key == "--resume") {
        flags_[key] = "1";
        continue;
      }
      if (i + 1 >= argc) usage(("missing value for " + key).c_str());
      flags_[key] = argv[++i];
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    auto it = flags_.find(key);
    return it == flags_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    auto it = flags_.find(key);
    if (it == flags_.end()) usage(("missing required " + key).c_str());
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return flags_.count(key) != 0;
  }

 private:
  std::map<std::string, std::string> flags_;
};

/// Strict numeric flag: full-string unsigned parse (common::parse_u64);
/// trailing garbage, signs, and overflow all exit with the flag name and
/// offending text instead of being silently truncated or wrapped.
u64 flag_u64(const args& a, const std::string& key) {
  try {
    return common::parse_u64(a.get(key), key);
  } catch (const error& e) {
    usage(e.what());
  }
}

/// --range OFF,N: exactly one comma, both sides strict unsigned
/// (common::parse_u64_pair semantics; unit-tested in test_common.cc).
std::pair<u64, u64> parse_range(const std::string& s) {
  try {
    return common::parse_u64_pair(s, "--range");
  } catch (const error& e) {
    usage(e.what());
  }
}

dims3 parse_dims(const std::string& s) {
  dims3 d{0, 1, 1};
  std::size_t parsed = std::sscanf(s.c_str(), "%zu,%zu,%zu", &d.x, &d.y,
                                   &d.z);
  if (parsed < 1 || d.x == 0 || d.y == 0 || d.z == 0) {
    usage(("bad --dims: " + s).c_str());
  }
  return d;
}

/// Parse + validate a --pipeline spec; grammar/JSON errors (which carry
/// the offending token and position) become usage errors.
core::pipeline_config config_from_spec(const std::string& text,
                                       const eb_config& ebc) {
  try {
    const auto sp = spec::parse(text);
    spec::validate<f32>(sp);
    return spec::to_config(sp, ebc);
  } catch (const error& e) {
    usage(e.what());
  }
}

core::pipeline_config build_config(const args& a, std::span<const f32> data,
                                   dims3 dims) {
  const f64 eb = std::atof(a.get("--eb", "1e-4").c_str());
  const std::string mode = a.get("--mode", "rel");
  eb_config ebc{eb, mode == "abs" ? eb_mode::abs : eb_mode::rel};

  core::pipeline_config cfg;
  if (a.has("--pipeline")) {
    for (const char* other :
         {"--auto", "--preset", "--predictor", "--codec", "--secondary"}) {
      if (a.has(other)) {
        usage((std::string("--pipeline already fixes the stages; drop ") +
               other)
                  .c_str());
      }
    }
    cfg = config_from_spec(a.get("--pipeline"), ebc);
    if (mode == "pwrel") {
      cfg.preprocessor = core::preprocess_log;
      cfg.eb = {eb, eb_mode::abs};
    }
    if (a.has("--kernel-tier")) {
      cfg.kernel_tier =
          device::parse_kernel_tier_policy(a.get("--kernel-tier"));
    }
    return cfg;
  }
  if (a.has("--auto")) {
    const std::string goal = a.get("--auto");
    core::objective o = core::objective::balanced;
    if (goal == "throughput") o = core::objective::throughput;
    else if (goal == "ratio") o = core::objective::ratio;
    else if (goal == "quality") o = core::objective::quality;
    else if (goal != "balanced") usage(("bad --auto: " + goal).c_str());
    const auto rep = core::autotune(data, dims, ebc, o);
    std::fprintf(stderr, "autotune: %s\n", rep.rationale.c_str());
    cfg = rep.config;
  } else {
    try {
      cfg = core::pipeline_config::preset(a.get("--preset", "default"), ebc);
    } catch (const error& e) {
      usage(e.what());
    }
  }
  if (mode == "pwrel") {
    // Pointwise relative: abs bound in log space via the log preprocessor.
    cfg.preprocessor = core::preprocess_log;
    cfg.eb = {eb, eb_mode::abs};
  }
  if (a.has("--predictor")) cfg.predictor = a.get("--predictor");
  if (a.has("--codec")) cfg.codec = a.get("--codec");
  if (a.has("--secondary")) cfg.secondary = true;
  if (a.has("--kernel-tier")) {
    cfg.kernel_tier = device::parse_kernel_tier_policy(a.get("--kernel-tier"));
  }
  return cfg;
}

/// --trace / --trace-dot bookkeeping. Tracing is enabled (and any prior
/// events cleared) *before* the timed work, and the outputs — Chrome JSON,
/// the STF DAG DOT, and the plain-text summary on stderr — are written
/// after it. See docs/OBSERVABILITY.md for how to read each surface.
struct trace_request {
  std::string json_path;
  std::string dot_path;
  [[nodiscard]] bool active() const {
    return !json_path.empty() || !dot_path.empty();
  }
};

trace_request parse_trace(const args& a) {
  trace_request t{a.get("--trace"), a.get("--trace-dot")};
  if (t.active()) {
    trace::set_enabled(true);
    trace::clear();
  }
  return t;
}

void write_text(const std::string& path, const std::string& text) {
  data::write_file(path, std::span<const u8>(
                             reinterpret_cast<const u8*>(text.data()),
                             text.size()));
}

void finish_trace(const trace_request& t) {
  if (!t.active()) return;
  if (!t.json_path.empty()) write_text(t.json_path, trace::export_chrome_json());
  if (!t.dot_path.empty()) {
    const std::string dot = trace::last_dag();
    if (dot.empty()) {
      std::fprintf(stderr,
                   "fzmod: --trace-dot: no task graph was recorded\n");
    } else {
      write_text(t.dot_path, dot);
    }
  }
  std::fputs(trace::summary_report().c_str(), stderr);
}

core::chunked_options chunk_opts(const args& a) {
  core::chunked_options opt;
  if (a.has("--chunk-mb")) {
    opt.chunk_mb = static_cast<std::size_t>(flag_u64(a, "--chunk-mb"));
    if (opt.chunk_mb == 0) usage("bad --chunk-mb: must be >= 1");
  }
  if (a.has("--jobs")) {
    opt.jobs = static_cast<unsigned>(flag_u64(a, "--jobs"));
    if (opt.jobs == 0) usage("bad --jobs: must be >= 1");
  }
  if (a.has("--stream-mem-mb")) {
    opt.stream_mem_mb =
        static_cast<std::size_t>(flag_u64(a, "--stream-mem-mb"));
    if (opt.stream_mem_mb == 0) usage("bad --stream-mem-mb: must be >= 1");
  }
  return opt;
}

/// --fields name=path[,name=path...]: the multi-field compression input
/// list. All fields share the one --dims (the Nyx/Miranda shape: many
/// same-shaped scalars per snapshot); heterogeneous shapes go through the
/// library API.
std::vector<core::field_input> parse_fields(const std::string& s,
                                            dims3 dims) {
  std::vector<core::field_input> out;
  std::size_t at = 0;
  while (at <= s.size()) {
    const std::size_t comma = std::min(s.find(',', at), s.size());
    const std::string tok = s.substr(at, comma - at);
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == tok.size()) {
      usage(("bad --fields entry (want name=path): " + tok).c_str());
    }
    out.push_back({tok.substr(0, eq), tok.substr(eq + 1), dims});
    at = comma + 1;
  }
  return out;
}

/// Out-of-core compression path (--stream / --stream-mem-mb / --resume /
/// --fields): the field never sits in memory, so the in-memory-only knobs
/// (--auto needs the data, --trace-dot the STF driver) are rejected.
int cmd_compress_stream(const args& a) {
  if (a.has("--auto")) {
    usage("--auto needs the whole field in memory; drop it for --stream");
  }
  if (a.has("--trace-dot")) {
    usage("--trace-dot applies to the STF driver, not --stream");
  }
  const dims3 dims = parse_dims(a.require("--dims"));
  const auto cfg = build_config(a, std::span<const f32>{}, dims);
  const trace_request tr = parse_trace(a);
  core::stream_options sopt;
  sopt.chunk = chunk_opts(a);
  sopt.resume = a.has("--resume");
  const std::string out = a.require("-o");
  stopwatch sw;
  core::stream_io_stats st;
  if (a.has("--fields")) {
    if (a.has("-i")) usage("--fields replaces -i; drop one of them");
    if (a.has("--resume")) usage("--resume is single-field only");
    const auto fields = parse_fields(a.get("--fields"), dims);
    st = core::compress_files_stream<f32>(fields, out, cfg, sopt);
  } else {
    st = core::compress_file_stream<f32>(a.require("-i"), dims, out, cfg,
                                         sopt);
  }
  const f64 t = sw.seconds();
  finish_trace(tr);
  std::fprintf(stderr,
               "stream: window %llu, %u workers, %llu read slots; "
               "%llu/%llu chunks resumed; stalls %llu read / %llu write; "
               "peak %.1f MiB\n",
               static_cast<unsigned long long>(st.window), st.workers,
               static_cast<unsigned long long>(st.read_slots),
               static_cast<unsigned long long>(st.chunks_resumed),
               static_cast<unsigned long long>(st.chunks_total),
               static_cast<unsigned long long>(st.read_stalls),
               static_cast<unsigned long long>(st.write_stalls),
               static_cast<f64>(st.peak_bytes) / (1 << 20));
  std::printf("%llu -> %llu bytes (%.2fx) in %.0f ms (%.3f GB/s)\n",
              static_cast<unsigned long long>(st.bytes_read),
              static_cast<unsigned long long>(st.bytes_written),
              metrics::compression_ratio(st.bytes_read, st.bytes_written),
              1e3 * t, throughput_gbps(st.bytes_read, t));
  return 0;
}

int cmd_compress(const args& a) {
  if (a.has("--stream") || a.has("--stream-mem-mb") || a.has("--resume") ||
      a.has("--fields")) {
    return cmd_compress_stream(a);
  }
  const dims3 dims = parse_dims(a.require("--dims"));
  const auto field = data::load_f32_field(a.require("-i"), dims);
  const auto cfg = build_config(a, field, dims);
  const trace_request tr = parse_trace(a);
  stopwatch sw;
  std::vector<u8> archive;
  if (!tr.dot_path.empty()) {
    // Only the STF driver infers a task DAG to dump; its archive is a
    // standard v2 archive (lorenzo + huffman), decodable by any path.
    archive = core::stf_compress(field, dims, cfg.eb, cfg.radius);
  } else if (a.has("--chunk-mb") || a.has("--jobs")) {
    // Chunk-parallel path: multi-chunk plans emit the v3 container;
    // a field that fits one chunk stays a plain v2 archive.
    core::chunked_pipeline<f32> pipe(cfg, chunk_opts(a));
    archive = pipe.compress(field, dims);
  } else {
    core::pipeline<f32> pipe(cfg);
    archive = pipe.compress(field, dims);
  }
  const f64 t = sw.seconds();
  finish_trace(tr);
  data::write_file(a.require("-o"), archive);
  std::printf("%zu -> %zu bytes (%.2fx) in %.0f ms (%.3f GB/s)\n",
              field.size() * 4, archive.size(),
              metrics::compression_ratio(field.size() * 4, archive.size()),
              1e3 * t, throughput_gbps(field.size() * 4, t));
  return 0;
}

int cmd_decompress(const args& a) {
  const auto container = data::read_file(a.require("-i"));
  // Field selection (multi-field containers, docs/STREAMING.md): the
  // selected span aliases the container and feeds every decode path
  // unchanged. Single-field archives pass through; naming a field there,
  // or omitting --field on a many-field container, is a usage error that
  // lists what is available.
  const std::span<const u8> archive =
      core::fmt::select_field(container, a.get("--field"));
  const trace_request tr = parse_trace(a);
  // Any reader-surface flag routes decoding through the seekable reader
  // (LRU chunk cache + prefetch, docs/RUNTIME.md); otherwise the one-shot
  // chunk-parallel decode path is used.
  const bool use_reader = a.has("--range") || a.has("--reader-cache-mb") ||
                          a.has("--prefetch") || a.has("--index") ||
                          a.has("--use-index");
  stopwatch sw;
  std::vector<f32> field;
  if (use_reader) {
    core::reader_options ropt;
    if (a.has("--reader-cache-mb")) {
      ropt.cache_mb = static_cast<std::size_t>(flag_u64(a, "--reader-cache-mb"));
    }
    if (a.has("--prefetch")) {
      ropt.prefetch = static_cast<int>(flag_u64(a, "--prefetch"));
    }
    if (a.has("--jobs")) {
      ropt.jobs = static_cast<unsigned>(flag_u64(a, "--jobs"));
      if (ropt.jobs == 0) usage("bad --jobs: must be >= 1");
    }
    std::vector<u8> index;
    if (a.has("--use-index")) index = data::read_file(a.get("--use-index"));
    reader<f32> r(archive, index, ropt);
    if (a.has("--index")) {
      data::write_file(a.get("--index"), r.export_index());
    }
    if (a.has("--range")) {
      const auto [off, cnt] = parse_range(a.get("--range"));
      field = r.read(off, cnt);
    } else {
      field = r.read(0, r.size());
    }
    const auto st = r.stats();
    std::fprintf(stderr,
                 "reader: %llu reads, hit rate %.1f%%, %llu evictions, "
                 "prefetch %llu issued / %llu used%s\n",
                 static_cast<unsigned long long>(st.reads),
                 100.0 * st.hit_rate(),
                 static_cast<unsigned long long>(st.evictions),
                 static_cast<unsigned long long>(st.prefetch_issued),
                 static_cast<unsigned long long>(st.prefetch_used),
                 st.index_used ? ", index used" : "");
  } else {
    core::chunked_pipeline<f32> pipe(core::pipeline_config{}, chunk_opts(a));
    field = pipe.decompress(archive);
  }
  const f64 t = sw.seconds();
  finish_trace(tr);
  data::store_f32_field(a.require("-o"), field);
  std::printf("%zu -> %zu bytes in %.0f ms (%.3f GB/s)\n", archive.size(),
              field.size() * 4, 1e3 * t,
              throughput_gbps(field.size() * 4, t));
  return 0;
}

int inspect_archive_bytes(std::span<const u8> archive) {
  if (core::fmt::is_chunk_container(archive)) {
    const auto ci = core::inspect_chunked(archive);
    std::printf("format        : v3 (chunk container)\n");
    std::printf("dims          : %zu x %zu x %zu (%zu values)\n", ci.dims.x,
                ci.dims.y, ci.dims.z, ci.dims.len());
    std::printf("dtype         : %s\n", to_string(ci.type));
    std::printf("chunks        : %llu (nominal %llu elems/chunk)\n",
                static_cast<unsigned long long>(ci.nchunks),
                static_cast<unsigned long long>(ci.chunk_elems));
    std::printf("container     : %zu bytes (%.3f bits/value)\n",
                archive.size(),
                metrics::bit_rate(archive.size(), ci.dims.len()));
    for (std::size_t k = 0; k < ci.chunks.size(); ++k) {
      const auto& e = ci.chunks[k];
      std::printf("  chunk %-4zu  : elems [%llu, %llu) -> %llu bytes\n", k,
                  static_cast<unsigned long long>(e.raw_offset),
                  static_cast<unsigned long long>(e.raw_offset + e.raw_len),
                  static_cast<unsigned long long>(e.archive_bytes));
    }
    return 0;
  }
  const auto info = core::inspect_archive(archive);
  std::printf("format        : v%u%s\n", static_cast<unsigned>(info.version),
              info.version >= 2 ? " (checksummed)" : "");
  std::printf("dims          : %zu x %zu x %zu (%zu values)\n", info.dims.x,
              info.dims.y, info.dims.z, info.dims.len());
  std::printf("dtype         : %s\n", to_string(info.type));
  std::printf("error bound   : %g (%s)\n", info.eb_user,
              to_string(info.mode));
  std::printf("quantizer     : ebx2=%g radius=%d\n", info.ebx2,
              info.radius);
  std::printf("preprocessor  : %s\n", info.preprocessor.c_str());
  std::printf("predictor     : %s\n", info.predictor.c_str());
  std::printf("codec         : %s\n", info.codec.c_str());
  std::printf("secondary     : %s\n", info.secondary ? "lz" : "none");
  std::printf("pipeline      : %s\n",
              info.spec.empty() ? "(none embedded)" : info.spec.c_str());
  std::printf("outliers      : %llu (+%llu value outliers)\n",
              static_cast<unsigned long long>(info.n_outliers),
              static_cast<unsigned long long>(info.n_value_outliers));
  std::printf("archive bytes : %zu (%.3f bits/value)\n", archive.size(),
              metrics::bit_rate(archive.size(), info.dims.len()));
  return 0;
}

int cmd_inspect(const args& a) {
  if (!a.has("-i") && a.has("--pipeline")) {
    // Offline spec check: echo the canonical one-liner and the JSON form.
    const auto cfg = config_from_spec(a.get("--pipeline"), {1e-4,
                                                           eb_mode::rel});
    const auto sp = spec::from_config(cfg);
    std::printf("pipeline : %s\n", spec::to_string(sp).c_str());
    std::printf("json     : %s\n", spec::to_json(sp).c_str());
    return 0;
  }
  const auto container = data::read_file(a.require("-i"));
  if (core::fmt::is_multi_container(container) && !a.has("--field")) {
    // No field named: summarize the container instead of erroring, so
    // `inspect` is how you discover what a multi-field archive holds.
    const auto mv = core::fmt::parse_multi_container(container);
    std::printf("format        : multi-field container (%u fields)\n",
                static_cast<unsigned>(mv.hdr.nfields));
    std::printf("container     : %zu bytes\n", container.size());
    for (const auto& e : mv.entries) {
      const dims3 fd{e.dims[0], e.dims[1], e.dims[2]};
      std::printf("  %-16s : %zu x %zu x %zu %s, %llu bytes\n", e.name,
                  fd.x, fd.y, fd.z,
                  to_string(static_cast<dtype>(e.type)),
                  static_cast<unsigned long long>(e.archive_bytes));
    }
    std::printf("inspect one with --field NAME\n");
    return 0;
  }
  return inspect_archive_bytes(
      core::fmt::select_field(container, a.get("--field")));
}

int cmd_modules() {
  // The registry self-registers its built-ins on first use, so this lists
  // exactly what a `--pipeline` spec can name.
  std::printf("%-14s %-13s %s\n", "name", "kind", "description");
  for (const auto& m : core::module_registry<f32>::instance().list()) {
    std::printf("%-14s %-13s %s\n", m.name.c_str(),
                core::to_string(m.kind), m.description.c_str());
  }
  std::printf("%-14s %-13s %s\n", "lz", "secondary",
              "lossless secondary compression of the archive body");
  return 0;
}

int cmd_gen(const args& a) {
  const std::string name = a.require("--dataset");
  data::dataset_id id;
  if (name == "cesm") id = data::dataset_id::cesm;
  else if (name == "hacc") id = data::dataset_id::hacc;
  else if (name == "hurr") id = data::dataset_id::hurr;
  else if (name == "nyx") id = data::dataset_id::nyx;
  else usage(("bad --dataset: " + name).c_str());
  const auto ds = data::describe(id, data::fullscale_requested());
  const int field = std::atoi(a.get("--field", "0").c_str());
  const auto v = data::generate(ds, field);
  data::store_f32_field(a.require("-o"), v);
  std::printf("%s field %d: %zux%zux%zu -> %zu bytes\n", ds.name.c_str(),
              field, ds.dims.x, ds.dims.y, ds.dims.z, v.size() * 4);
  return 0;
}

int verify_archive_bytes(std::span<const u8> archive) {
  {
    if (core::fmt::is_chunk_container(archive)) {
      const auto rep = core::verify_chunked(archive);
      std::printf("format version : v3 (chunk container)\n");
      std::printf("%-14s : %s\n", "container",
                  rep.container_ok ? "ok" : "DIGEST MISMATCH");
      for (const auto& c : rep.chunks) {
        std::printf("chunk %-8llu : %s\n",
                    static_cast<unsigned long long>(c.index),
                    c.ok() ? "ok"
                           : (c.digest_ok ? "INNER DIGEST MISMATCH"
                                          : "ARCHIVE DIGEST MISMATCH"));
      }
      std::printf("archive        : %s\n", rep.ok() ? "OK" : "CORRUPT");
      return rep.ok() ? 0 : 1;
    }
    const auto rep = core::verify_archive(archive);
    std::printf("format version : v%u\n", static_cast<unsigned>(rep.version));
    if (rep.version < 2) {
      std::printf("archive        : structurally valid (v1 carries no"
                  " digests)\n");
      return 0;
    }
    const auto row = [](const char* name, bool ok) {
      std::printf("%-14s : %s\n", name, ok ? "ok" : "DIGEST MISMATCH");
    };
    if (rep.secondary) row("body (lz)", rep.body_ok);
    row("header", rep.header_ok);
    row("codec", rep.codec_ok);
    row("outliers", rep.outliers_ok);
    row("value outliers", rep.value_outliers_ok);
    row("anchors", rep.anchors_ok);
    row("spec", rep.spec_ok);
    std::printf("archive        : %s\n", rep.ok() ? "OK" : "CORRUPT");
    return rep.ok() ? 0 : 1;
  }
}

int cmd_verify(const args& a) {
  // Archive-integrity mode: check the digests an archive carries.
  if (a.has("-i")) {
    const auto container = data::read_file(a.require("-i"));
    if (core::fmt::is_multi_container(container)) {
      if (a.has("--field")) {
        // select_field checks the named field's directory digest before
        // handing back its bytes; the inner digests follow.
        return verify_archive_bytes(
            core::fmt::select_field(container, a.get("--field")));
      }
      // No field named: verify the container structure, then every field.
      const auto mv = core::fmt::parse_multi_container(container,
                                                       /*check_digests=*/true);
      std::printf("format version : multi-field container (%u fields)\n",
                  static_cast<unsigned>(mv.hdr.nfields));
      int rc = 0;
      for (const auto& e : mv.entries) {
        const auto fa = core::fmt::field_archive(mv, e);
        const bool digest_ok = kernels::chunked_hash(fa) == e.digest;
        std::printf("--- field '%s' : %s\n", e.name,
                    digest_ok ? "directory digest ok"
                              : "DIRECTORY DIGEST MISMATCH");
        if (!digest_ok) rc = 1;
        if (verify_archive_bytes(fa) != 0) rc = 1;
      }
      std::printf("container      : %s\n", rc == 0 ? "OK" : "CORRUPT");
      return rc;
    }
    return verify_archive_bytes(
        core::fmt::select_field(container, a.get("--field")));
  }
  // Reconstruction-quality mode: compare two raw fields.
  const dims3 dims = parse_dims(a.require("--dims"));
  const auto x = data::load_f32_field(a.require("-a"), dims);
  const auto y = data::load_f32_field(a.require("-b"), dims);
  const auto err = metrics::compare(x, y);
  std::printf("max |error| : %.6e\n", err.max_abs_err);
  std::printf("PSNR        : %.2f dB\n", err.psnr);
  std::printf("NRMSE       : %.6e\n", err.nrmse);
  std::printf("value range : %.6e\n", err.range);
  return 0;
}

int cmd_serve(const args& a) {
  if (!a.has("--socket") && !a.has("--stdio")) {
    usage("serve needs --socket PATH or --stdio");
  }
  serve::daemon_options opt;
  opt.socket_path = a.get("--socket");

  // The daemon's pipeline config: the same knobs as `compress`, minus the
  // per-field ones (pwrel and autotune need the data up front; serving
  // resolves rel bounds per request instead).
  const f64 eb = std::atof(a.get("--eb", "1e-4").c_str());
  const std::string mode = a.get("--mode", "rel");
  if (mode != "rel" && mode != "abs") usage(("bad --mode: " + mode).c_str());
  const eb_config ebc{eb, mode == "abs" ? eb_mode::abs : eb_mode::rel};
  if (a.has("--pipeline")) {
    if (a.has("--preset")) usage("--pipeline already fixes the stages");
    opt.cfg = config_from_spec(a.get("--pipeline"), ebc);
  } else {
    try {
      opt.cfg = core::pipeline_config::preset(a.get("--preset", "default"),
                                              ebc);
    } catch (const error& e) {
      usage(e.what());
    }
  }

  // CLI flags override the FZMOD_SERVE_* environment (docs/SERVING.md).
  if (a.has("--pool")) opt.server.pool.cap = flag_u64(a, "--pool");
  if (a.has("--warm")) opt.server.pool.warm = flag_u64(a, "--warm");
  if (a.has("--queue")) opt.server.queue_depth = flag_u64(a, "--queue");
  if (a.has("--deadline-ms")) {
    opt.server.deadline_ms = flag_u64(a, "--deadline-ms");
  }
  if (a.has("--batch")) opt.server.batch_elems = flag_u64(a, "--batch");
  if (a.has("--batch-max")) opt.server.batch_max = flag_u64(a, "--batch-max");
  if (a.has("--workers")) opt.server.workers = flag_u64(a, "--workers");
  if (a.has("--warm-dims")) opt.warm_dims = parse_dims(a.get("--warm-dims"));
  return serve::run_daemon(opt);
}

int cmd_selftest() {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "fzmod_cli_selftest";
  fs::create_directories(dir);
  const auto raw = (dir / "hurr0.f32").string();
  const auto packed = (dir / "hurr0.fzmod").string();
  const auto out = (dir / "hurr0.out.f32").string();

  const auto ds = data::describe(data::dataset_id::hurr);
  const auto v = data::generate(ds, 0);
  data::store_f32_field(raw, v);

  core::pipeline<f32> pipe(
      core::pipeline_config::preset_default({1e-4, eb_mode::rel}));
  const auto field = data::load_f32_field(raw, ds.dims);
  data::write_file(packed, pipe.compress(field, ds.dims));
  data::store_f32_field(out, pipe.decompress(data::read_file(packed)));

  const auto err =
      metrics::compare(field, data::load_f32_field(out, ds.dims));
  const bool ok = err.max_abs_err <=
                  metrics::f32_bound_slack(1e-4 * err.range, err.range);
  std::printf("selftest %s (max err %.3e, bound %.3e)\n",
              ok ? "PASSED" : "FAILED", err.max_abs_err, 1e-4 * err.range);
  fs::remove_all(dir);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    const args a(argc, argv, 2);
    if (cmd == "compress") return cmd_compress(a);
    if (cmd == "decompress") return cmd_decompress(a);
    if (cmd == "inspect") return cmd_inspect(a);
    if (cmd == "modules") return cmd_modules();
    if (cmd == "gen") return cmd_gen(a);
    if (cmd == "verify") return cmd_verify(a);
    if (cmd == "serve") return cmd_serve(a);
    if (cmd == "selftest") return cmd_selftest();
    usage(("unknown command: " + cmd).c_str());
  } catch (const error& e) {
    std::fprintf(stderr, "fzmod: %s\n", e.what());
    return 1;
  }
}
