#!/usr/bin/env python3
"""Daemon smoke test: round-trip one compress + decompress over the
`fzmod serve` Unix socket, then shut the daemon down cleanly.

    ./build/tools/fzmod serve --socket /tmp/fzmod.sock &
    python3 tools/serve_smoke.py /tmp/fzmod.sock
    wait $!   # daemon must exit 0 after the shutdown frame

Speaks the length-prefixed wire format documented in docs/SERVING.md:
request  [u64 body_len][u8 op][u8 tenant_len][tenant][...]; response
[u64 body_len][u8 status][payload], status 0 = ok. Exits nonzero on any
protocol error or when the reconstruction violates the error bound.
"""
import math
import socket
import struct
import sys
import time

OP_COMPRESS, OP_DECOMPRESS, OP_PING, OP_SHUTDOWN = 1, 2, 3, 4
OP_COMPRESS_SPEC = 5  # [u16 spec_len][spec] before the dims (docs/PIPELINES.md)
DIMS = (48, 32, 2)
REL_EB = 1e-4  # the daemon's default error bound (fzmod serve --eb)


def connect(path, timeout_s=10.0):
    """The daemon may still be binding its socket; retry briefly."""
    deadline = time.monotonic() + timeout_s
    while True:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            s.connect(path)
            return s
        except OSError:
            s.close()
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def roundtrip(sock, op, payload, tenant=b"smoke"):
    body = struct.pack("<BB", op, len(tenant)) + tenant + payload
    sock.sendall(struct.pack("<Q", len(body)) + body)
    hdr = recv_exact(sock, 8)
    (body_len,) = struct.unpack("<Q", hdr)
    resp = recv_exact(sock, body_len)
    return resp[0], resp[1:]


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        got = sock.recv(n - len(buf))
        if not got:
            raise ConnectionError("daemon closed the connection mid-frame")
        buf += got
    return buf


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <socket-path>", file=sys.stderr)
        return 2
    sock = connect(sys.argv[1])

    status, _ = roundtrip(sock, OP_PING, b"")
    assert status == 0, f"ping failed with status {status}"

    nx, ny, nz = DIMS
    n = nx * ny * nz
    field = [
        math.sin(0.004 * i) * 25 + 0.3 * math.cos(0.05 * i) for i in range(n)
    ]
    payload = struct.pack("<QQQ", nx, ny, nz) + struct.pack(f"<{n}f", *field)
    status, archive = roundtrip(sock, OP_COMPRESS, payload)
    assert status == 0, f"compress failed with status {status}: {archive!r}"
    assert 0 < len(archive) < 4 * n, "archive missing or larger than raw"

    status, raw = roundtrip(sock, OP_DECOMPRESS, archive)
    assert status == 0, f"decompress failed with status {status}: {raw!r}"
    assert len(raw) == 4 * n, f"expected {4 * n} bytes, got {len(raw)}"
    recon = struct.unpack(f"<{n}f", raw)
    # The wire carries f32, so `field`'s doubles were quantized once on
    # pack; 5% slack over the relative bound absorbs that plus f32
    # round-off in the codec (same allowance the C++ tests make).
    rng = max(field) - min(field)
    bound = REL_EB * rng * 1.05 + 1e-5
    worst = max(abs(a - b) for a, b in zip(field, recon))
    assert worst <= bound, f"max abs err {worst:g} exceeds bound {bound:g}"

    # Spec-carrying compress (op 5): a non-default pipeline per request;
    # the archive is self-describing, so the same flagless decompress works.
    spec = b"delta+fixed-block"
    status, archive2 = roundtrip(
        sock, OP_COMPRESS_SPEC, struct.pack("<H", len(spec)) + spec + payload
    )
    assert status == 0, f"spec compress failed with status {status}: {archive2!r}"
    status, raw2 = roundtrip(sock, OP_DECOMPRESS, archive2)
    assert status == 0, f"spec decompress failed with status {status}: {raw2!r}"
    recon2 = struct.unpack(f"<{n}f", raw2)
    worst2 = max(abs(a - b) for a, b in zip(field, recon2))
    assert worst2 <= bound, f"spec max abs err {worst2:g} exceeds {bound:g}"

    # A malformed spec must answer bad_request (4) with the parse error.
    bad = b"lorenzo+hufman"
    status, err = roundtrip(
        sock, OP_COMPRESS_SPEC, struct.pack("<H", len(bad)) + bad + payload
    )
    assert status == 4, f"bad spec: expected status 4, got {status}"
    assert b"hufman" in err, f"bad spec error should echo the token: {err!r}"

    status, _ = roundtrip(sock, OP_SHUTDOWN, b"")
    assert status == 0, f"shutdown failed with status {status}"
    sock.close()
    print(
        f"serve_smoke: ok — {4 * n} -> {len(archive)} bytes, "
        f"max abs err {worst:.3e} within {bound:.3e}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
