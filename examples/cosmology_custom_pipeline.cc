// Scenario: picking a pipeline for a cosmology field (Nyx-like).
//
// There is no universal best-fit compressor (the paper's thesis): the
// right pipeline depends on the data, the bound, and whether the consumer
// cares about throughput or ratio. This example assembles several
// pipelines — the three paper presets plus two custom combinations that
// exist in no preset — runs all of them on a Nyx-like density field, and
// prints the trade-off table a domain scientist would choose from.
#include <cstdio>

#include "fzmod/common/timer.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/data/datasets.hh"
#include "fzmod/metrics/metrics.hh"

int main() {
  using namespace fzmod;
  const auto ds = data::describe(data::dataset_id::nyx);
  const auto field = data::generate(ds, 0);
  const eb_config eb{1e-3, eb_mode::rel};

  struct candidate {
    const char* label;
    core::pipeline_config cfg;
  };
  std::vector<candidate> candidates;
  candidates.push_back(
      {"FZMod-Default", core::pipeline_config::preset_default(eb)});
  candidates.push_back(
      {"FZMod-Speed", core::pipeline_config::preset_speed(eb)});
  candidates.push_back(
      {"FZMod-Quality", core::pipeline_config::preset_quality(eb)});
  {
    // Custom #1: quality predictor with the fast device-side codec — a
    // combination no preset offers (good prediction, no CPU Huffman).
    auto cfg = core::pipeline_config::preset_quality(eb);
    cfg.codec = core::codec_fzg;
    candidates.push_back({"spline+fzg", cfg});
  }
  {
    // Custom #2: default pipeline plus the secondary LZ pass, for
    // cold-storage archiving where ratio is everything.
    auto cfg = core::pipeline_config::preset_default(eb);
    cfg.secondary = true;
    candidates.push_back({"lorenzo+huff+lz", cfg});
  }

  std::printf("Nyx-like density field %zux%zux%zu, rel eb %.0e\n\n",
              ds.dims.x, ds.dims.y, ds.dims.z, eb.eb);
  std::printf("%-16s %10s %12s %12s %12s %12s\n", "pipeline", "ratio",
              "comp GB/s", "decomp GB/s", "PSNR dB", "max|err|/eb");
  for (int i = 0; i < 80; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);

  for (const auto& cand : candidates) {
    core::pipeline<f32> pipe(cand.cfg);
    stopwatch sw;
    const auto archive = pipe.compress(field, ds.dims);
    const f64 t_comp = sw.seconds();
    sw.reset();
    const auto restored = pipe.decompress(archive);
    const f64 t_decomp = sw.seconds();
    const auto err = metrics::compare(field, restored);
    const f64 bound = eb.eb * err.range;
    std::printf("%-16s %9.1fx %12.3f %12.3f %12.2f %12.3f\n", cand.label,
                metrics::compression_ratio(field.size() * 4,
                                           archive.size()),
                throughput_gbps(field.size() * 4, t_comp),
                throughput_gbps(field.size() * 4, t_decomp), err.psnr,
                err.max_abs_err / bound);
  }
  std::printf("\nEvery row honours the same error bound; the rest is the "
              "trade-off space\nFZModules exists to let you explore "
              "(paper §1).\n");
  return 0;
}
