// Scenario: archiving a climate model snapshot (CESM-ATM-like).
//
// A simulation wants to dump a multi-field snapshot every N steps without
// stalling; different variables tolerate different error and compress very
// differently (temperature-like fields are smooth; precipitation-like
// fields are mostly zero). This example compresses several fields with the
// default pipeline, writes the archives to disk, reads them back, and
// prints a per-field quality report — the post-hoc-analysis workflow the
// paper's introduction motivates.
#include <cstdio>
#include <filesystem>

#include "fzmod/core/pipeline.hh"
#include "fzmod/data/datasets.hh"
#include "fzmod/data/io.hh"
#include "fzmod/metrics/metrics.hh"

int main() {
  using namespace fzmod;
  const auto ds = data::describe(data::dataset_id::cesm);
  const int nfields = 4;
  const eb_config eb{1e-4, eb_mode::rel};
  const auto dir = std::filesystem::temp_directory_path() / "fzmod_snapshot";
  std::filesystem::create_directories(dir);

  std::printf("CESM-ATM-like snapshot: %d fields of %zux%zux%zu, rel eb "
              "%.0e\n\n",
              nfields, ds.dims.x, ds.dims.y, ds.dims.z, eb.eb);
  std::printf("%-8s %12s %12s %12s %12s %10s\n", "field", "raw MB",
              "archive MB", "ratio", "PSNR dB", "bound ok");
  for (int i = 0; i < 70; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);

  core::pipeline<f32> pipe(core::pipeline_config::preset_default(eb));
  u64 raw_total = 0, packed_total = 0;
  bool all_ok = true;

  for (int f = 0; f < nfields; ++f) {
    const auto field = data::generate(ds, f);
    const auto archive = pipe.compress(field, ds.dims);

    // Round-trip through storage, as a real snapshot would.
    const auto path = (dir / ("field" + std::to_string(f) + ".fzmod"))
                          .string();
    data::write_file(path, archive);
    const auto loaded = data::read_file(path);
    const auto restored = pipe.decompress(loaded);

    const auto err = metrics::compare(field, restored);
    const f64 bound = eb.eb * err.range;
    const bool ok =
        err.max_abs_err <= metrics::f32_bound_slack(bound, err.range);
    all_ok = all_ok && ok;
    raw_total += field.size() * sizeof(f32);
    packed_total += archive.size();
    std::printf("%-8d %12.2f %12.3f %11.1fx %12.2f %10s\n", f,
                static_cast<f64>(field.size() * 4) / 1e6,
                static_cast<f64>(archive.size()) / 1e6,
                metrics::compression_ratio(field.size() * 4,
                                           archive.size()),
                err.psnr, ok ? "yes" : "NO");
    std::remove(path.c_str());
  }

  std::printf("\nsnapshot total: %.1f MB -> %.2f MB (%.1fx)\n",
              static_cast<f64>(raw_total) / 1e6,
              static_cast<f64>(packed_total) / 1e6,
              metrics::compression_ratio(raw_total, packed_total));
  return all_ok ? 0 : 1;
}
