// Scenario: extending FZModules with a user-defined module (paper §3.2:
// "we designed the library to be simple to adapt and update with future
// modules").
//
// We implement a second-order 1-D extrapolation predictor ("poly2"):
// q̂[i] = 2q[i-1] - q[i-2] on the pre-quantized lattice. Like the built-in
// Lorenzo module it is embarrassingly parallel in compression; its inverse
// is a second-order recurrence. It suits streams with locally linear
// trends (sensor ramps, time series).
//
// The full extension path: derive predictor_module -> register under a
// name -> reference the name from pipeline_config -> archives record it ->
// any process that registered it can decompress.
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>

#include "fzmod/core/pipeline.hh"
#include "fzmod/core/registry.hh"
#include "fzmod/metrics/metrics.hh"

namespace {

using namespace fzmod;

class poly2_predictor final : public core::predictor_module<f32> {
 public:
  [[nodiscard]] std::string_view name() const override { return "poly2"; }

  void compress(const device::buffer<f32>& data, dims3 dims, f64 ebx2,
                int radius, const core::pipeline_config&,
                predictors::quant_field& out,
                predictors::interp_anchors& anchors,
                device::stream& s) override {
    anchors.lattice.clear();
    const std::size_t n = dims.len();
    out.dims = dims;
    out.radius = radius;
    out.ebx2 = ebx2;
    out.codes = device::buffer<u16>(n, device::space::device);

    // Pass 1: pre-quantize (identical contract to the built-ins: values
    // beyond the safe lattice become exact value outliers).
    auto q = std::make_shared<device::buffer<i64>>(n, device::space::device);
    auto side = std::make_shared<std::mutex>();
    {
      const f32* in = data.data();
      i64* qp = q->data();
      auto* vo = &out.value_outliers;
      const f64 r_ebx2 = 1.0 / ebx2;
      device::launch_blocks(
          s, n, device::runtime::instance().default_block(),
          [in, qp, vo, side, r_ebx2](std::size_t, std::size_t lo,
                                     std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              const f64 scaled = static_cast<f64>(in[i]) * r_ebx2;
              if (!(std::fabs(scaled) <
                    static_cast<f64>(predictors::value_outlier_limit))) {
                std::lock_guard lk(*side);
                vo->emplace_back(i, static_cast<f64>(in[i]));
                qp[i] = 0;
              } else {
                qp[i] = std::llrint(scaled);
              }
            }
          });
    }

    // Pass 2: second-order delta. delta[i] = q[i] - (2q[i-1] - q[i-2]).
    auto outliers = std::make_shared<std::vector<kernels::outlier>>();
    {
      const i64* qp = q->data();
      u16* codes = out.codes.data();
      device::launch_blocks(
          s, n, device::runtime::instance().default_block(),
          [qp, codes, radius, outliers, side, q](std::size_t,
                                                 std::size_t lo,
                                                 std::size_t hi) {
            std::vector<kernels::outlier> local;
            for (std::size_t i = lo; i < hi; ++i) {
              const i64 p1 = i >= 1 ? qp[i - 1] : 0;
              const i64 p2 = i >= 2 ? qp[i - 2] : 0;
              const i64 delta = qp[i] - (2 * p1 - p2);
              const i64 code = delta + radius;
              if (code > 0 && code < 2 * radius) {
                codes[i] = static_cast<u16>(code);
              } else {
                codes[i] = 0;
                local.push_back({i, delta});
              }
            }
            if (!local.empty()) {
              std::lock_guard lk(*side);
              outliers->insert(outliers->end(), local.begin(), local.end());
            }
          });
    }
    device::host_task(s, [outliers, &out] {
      out.n_outliers = outliers->size();
      out.outliers = device::buffer<kernels::outlier>(outliers->size(),
                                                      device::space::device);
      std::copy(outliers->begin(), outliers->end(), out.outliers.data());
    });
  }

  void decompress(const predictors::quant_field& field,
                  const predictors::interp_anchors&,
                  device::buffer<f32>& outbuf, device::stream& s) override {
    // The inverse is a sequential second-order recurrence — the price of
    // higher-order extrapolation, and exactly the kind of asymmetry the
    // framework lets you weigh against the built-ins.
    const std::size_t n = field.dims.len();
    const u16* codes = field.codes.data();
    const auto* ol = field.outliers.data();
    const u64 n_ol = field.n_outliers;
    const int radius = field.radius;
    const f64 ebx2 = field.ebx2;
    f32* op = outbuf.data();
    const auto* vo = &field.value_outliers;
    device::host_task(s, [=] {
      std::vector<i64> delta(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        if (codes[i]) delta[i] = static_cast<i64>(codes[i]) - radius;
      }
      for (u64 k = 0; k < n_ol; ++k) {
        FZMOD_REQUIRE(ol[k].index < n, status::corrupt_archive,
                      "poly2: outlier index out of range");
        delta[ol[k].index] = ol[k].value;
      }
      i64 p1 = 0, p2 = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const i64 qi = delta[i] + 2 * p1 - p2;
        op[i] = static_cast<f32>(static_cast<f64>(qi) * ebx2);
        p2 = p1;
        p1 = qi;
      }
      for (const auto& [idx, val] : *vo) op[idx] = static_cast<f32>(val);
    });
  }
};

}  // namespace

int main() {
  using namespace fzmod;

  // 1. Register the module.
  core::module_registry<f32>::instance().register_predictor(
      "poly2", [] { return std::make_unique<poly2_predictor>(); });

  // 2. A signal poly2 should excel at: piecewise-linear ramps + noise.
  const std::size_t n = 1 << 20;
  std::vector<f32> v(n);
  f64 value = 0, slope = 0.01;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 8192 == 0) slope = -slope;
    value += slope;
    v[i] = static_cast<f32>(value);
  }

  // 3. Reference the module by name and compare against Lorenzo.
  const eb_config eb{1e-6, eb_mode::abs};
  std::printf("%-10s %10s %12s %14s\n", "predictor", "ratio", "outliers",
              "max|err|");
  for (const char* predictor : {"poly2", core::predictor_lorenzo}) {
    core::pipeline_config cfg;
    cfg.predictor = predictor;
    cfg.eb = eb;
    core::pipeline<f32> pipe(cfg);
    const auto archive = pipe.compress(v, dims3(n));
    const auto info = core::inspect_archive(archive);
    const auto restored = pipe.decompress(archive);
    const auto err = metrics::compare(v, restored);
    std::printf("%-10s %9.1fx %12llu %14.3e\n", predictor,
                metrics::compression_ratio(n * 4, archive.size()),
                static_cast<unsigned long long>(info.n_outliers),
                err.max_abs_err);
    if (err.max_abs_err > metrics::f32_bound_slack(eb.eb, 100.0)) {
      std::printf("error bound violated!\n");
      return 1;
    }
  }
  std::printf("\nOn linear ramps the second-order extrapolator predicts "
              "exactly (all-zero deltas),\nbeating first-order Lorenzo — "
              "a custom module earning its keep.\n");
  return 0;
}
