// Scenario: let the framework pick the pipeline (paper §5, future work:
// "an auto-selection mechanism for compression modules based on data
// characteristics ... and needed quality metrics of the end user").
//
// Runs the auto-tuner on all four datasets for each user objective and
// shows the decision plus the resulting compression metrics.
#include <cstdio>

#include "fzmod/common/timer.hh"
#include "fzmod/core/autotune.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/data/datasets.hh"
#include "fzmod/metrics/metrics.hh"

int main() {
  using namespace fzmod;
  const eb_config eb{1e-4, eb_mode::rel};

  for (const auto& ds : data::catalog()) {
    const auto field = data::generate(ds, 0);
    std::printf("%s (%zux%zux%zu), rel eb %.0e\n", ds.name.c_str(),
                ds.dims.x, ds.dims.y, ds.dims.z, eb.eb);
    std::printf("  sampled: ");
    {
      const auto probe = core::autotune(field, ds.dims, eb);
      std::printf("predictability %.2f, concentration %.2f\n",
                  probe.predictability, probe.concentration);
    }
    std::printf("  %-12s %-10s %-9s %-10s %10s %12s\n", "objective",
                "predictor", "codec", "secondary", "ratio", "comp GB/s");
    for (const core::objective goal :
         {core::objective::balanced, core::objective::throughput,
          core::objective::ratio, core::objective::quality}) {
      stopwatch tune_sw;
      const auto rep = core::autotune(field, ds.dims, eb, goal);
      core::pipeline<f32> pipe(rep.config);
      stopwatch sw;
      const auto archive = pipe.compress(field, ds.dims);
      const f64 t = sw.seconds();
      std::printf("  %-12s %-10s %-9s %-10s %9.1fx %12.3f\n",
                  to_string(goal), rep.config.predictor.c_str(),
                  rep.config.codec.c_str(),
                  rep.config.secondary ? "lz" : "-",
                  metrics::compression_ratio(field.size() * 4,
                                             archive.size()),
                  throughput_gbps(field.size() * 4, t));
      (void)tune_sw;
    }
    std::printf("\n");
  }
  return 0;
}
