// Scenario: the experimental CUDASTF-style pipeline (paper §3.3.1).
//
// Shows the task-graph driver end to end and makes its concurrency
// visible: during decompression, the Huffman decode (host branch) and the
// outlier scatter (device branch) share no logical data, so the STF
// runtime overlaps them — the exact example the paper uses to motivate
// asynchronous heterogeneous compression.
#include <cstdio>

#include "fzmod/common/timer.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/core/stf_pipeline.hh"
#include "fzmod/data/datasets.hh"
#include "fzmod/device/runtime.hh"
#include "fzmod/metrics/metrics.hh"
#include "fzmod/stf/stf.hh"

int main() {
  using namespace fzmod;
  const auto ds = data::describe(data::dataset_id::hurr);
  const auto field = data::generate(ds, 1);
  const eb_config eb{1e-4, eb_mode::rel};

  std::printf("STF compression graph (FZMod-Default stages as tasks):\n\n");
  std::printf(
      "  import(data)\n"
      "    -> [device] prequant        : data -> lattice q\n"
      "    -> [device] lorenzo-quantize: q -> codes, outlier flags/deltas\n"
      "       |-> [device] histogram        \\ independent branches,\n"
      "       |-> [device] compact-outliers / run concurrently\n"
      "    -> [host]   huffman-encode  : codes + bins -> blob (D2H "
      "inserted automatically)\n\n");

  auto& st = device::runtime::instance().stats();
  st.reset_transfers();
  st.reset_peak();
  stopwatch sw;
  const auto archive = core::stf_compress(field, ds.dims, eb);
  const f64 t_comp = sw.seconds();
  std::printf("compressed %.1f MB -> %.2f MB (%.1fx) in %.0f ms;\n"
              "runtime ledger: %llu kernels, %.1f MB H2D, %.1f MB D2H\n\n",
              static_cast<f64>(field.size() * 4) / 1e6,
              static_cast<f64>(archive.size()) / 1e6,
              metrics::compression_ratio(field.size() * 4, archive.size()),
              1e3 * t_comp,
              static_cast<unsigned long long>(st.kernels_launched.load()),
              static_cast<f64>(st.h2d_bytes.load()) / 1e6,
              static_cast<f64>(st.d2h_bytes.load()) / 1e6);

  std::printf("STF decompression graph (the paper's showcase overlap):\n\n");
  std::printf(
      "  [host]   huffman-decode   \\ no shared logical data ->\n"
      "  [device] outlier-scatter  / scheduled concurrently\n"
      "    -> [device] combine-invert: codes+outliers -> prefix sums -> "
      "values\n\n");

  sw.reset();
  const auto restored = core::stf_decompress(archive);
  const f64 t_decomp = sw.seconds();
  {
    // Show the DAG the runtime actually inferred for a tiny graph (the
    // decompression graph above, re-expressed on a toy datum).
    stf::context ctx;
    auto x = ctx.make_data<i32>(4);
    auto y = ctx.make_data<i32>(4);
    auto z = ctx.make_data<i32>(4);
    auto nop = [](device::stream& s, device::buffer<i32>& d) {
      d.fill_zero_async(s);
    };
    auto join = [](device::stream& s, device::buffer<i32>& a,
                   device::buffer<i32>& b, device::buffer<i32>& out) {
      (void)a;
      (void)b;
      out.fill_zero_async(s);
    };
    ctx.submit("huffman-decode", stf::place::host, nop, stf::write(x));
    ctx.submit("outlier-scatter", stf::place::device, nop, stf::write(y));
    ctx.submit("combine-invert", stf::place::device, join, stf::read(x),
               stf::read(y), stf::write(z));
    ctx.finalize();
    std::printf("inferred DAG (Graphviz):\n%s\n",
                ctx.dump_graphviz().c_str());
  }
  const auto err = metrics::compare(field, restored);
  std::printf("decompressed in %.0f ms; PSNR %.2f dB; max|err| %.3e "
              "(bound %.3e)\n",
              1e3 * t_decomp, err.psnr, err.max_abs_err,
              eb.eb * err.range);

  const bool ok = err.max_abs_err <=
                  metrics::f32_bound_slack(eb.eb * err.range, err.range);
  std::printf("\nerror bound %s; archives are byte-compatible with the "
              "synchronous driver.\n",
              ok ? "HONOURED" : "VIOLATED");
  return ok ? 0 : 1;
}
