// FZModules quickstart: compress a 3-D field with the default pipeline,
// decompress it, verify the error bound.
//
//   $ ./quickstart
//
// See climate_snapshot.cc and cosmology_custom_pipeline.cc for
// domain-specific scenarios, custom_module.cc for extending the framework,
// and stf_overlap_demo.cc for the task-flow driver.
#include <cstdio>

#include "fzmod/core/pipeline.hh"
#include "fzmod/data/datasets.hh"
#include "fzmod/metrics/metrics.hh"

int main() {
  using namespace fzmod;

  // A Hurricane-ISABEL-like 3-D field (synthetic; see src/fzmod/data).
  const auto ds = data::describe(data::dataset_id::hurr);
  const std::vector<f32> field = data::generate(ds, 0);
  std::printf("field: %s [%zu x %zu x %zu], %.1f MB\n", ds.name.c_str(),
              ds.dims.x, ds.dims.y, ds.dims.z,
              static_cast<double>(field.size() * sizeof(f32)) / 1e6);

  // Value-range relative error bound of 1e-4: every reconstructed value
  // is within 1e-4 * (max - min) of the original.
  const eb_config eb{1e-4, eb_mode::rel};

  // FZMod-Default: Lorenzo predictor + GPU histogram + CPU Huffman.
  core::pipeline<f32> pipe(core::pipeline_config::preset_default(eb));
  const std::vector<u8> archive = pipe.compress(field, ds.dims);
  const std::vector<f32> restored = pipe.decompress(archive);

  const auto err = metrics::compare(field, restored);
  const f64 cr = metrics::compression_ratio(field.size() * sizeof(f32),
                                            archive.size());
  std::printf("compression ratio: %.2fx\n", cr);
  std::printf("max |error|:       %.3e (bound %.3e)\n", err.max_abs_err,
              eb.eb * err.range);
  std::printf("PSNR:              %.2f dB\n", err.psnr);

  // Tolerance: the bound is guaranteed in real arithmetic; storing the
  // reconstruction as f32 can add up to half an ulp of the magnitude.
  const bool ok = err.max_abs_err <=
                  metrics::f32_bound_slack(eb.eb * err.range, err.range);
  std::printf("error bound %s\n", ok ? "HONOURED" : "VIOLATED");
  return ok ? 0 : 1;
}
