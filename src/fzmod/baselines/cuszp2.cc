// Baseline: cuSZp2 (Huang et al., SC'24) — a throughput-optimized fused
// compressor. Algorithmic core: 32-element blocks, 2eb pre-quantization,
// intra-block 1-D offset (delta) prediction, and fix-length encoding (one
// width byte + packed sign-magnitude codes per block; zero blocks cost a
// single byte). Block bases are delta+varint coded across blocks so smooth
// data pays ~1 byte/block. The whole forward pass is a single fused kernel
// here, matching the design that makes the real cuSZp2 the throughput
// leader in the paper's Figure 1.
#include <cmath>
#include <cstring>

#include "fzmod/baselines/compressor.hh"
#include "fzmod/common/bits.hh"
#include "fzmod/common/error.hh"
#include "fzmod/core/archive_format.hh"
#include "fzmod/device/runtime.hh"
#include "fzmod/kernels/chunked_hash.hh"
#include "fzmod/kernels/stats.hh"

namespace fzmod::baselines {
namespace {

constexpr u32 cuszp2_magic = 0x435a5032;  // "CZP2"
constexpr std::size_t blk = 32;
constexpr u8 raw_block_width = 0xff;  // block stored as 32 raw f32

#pragma pack(push, 1)
struct header {
  u32 magic;
  u8 mode;
  u8 pad[3];
  f64 eb_user;
  f64 ebx2;
  u64 n;
  u64 nblocks;
  u64 base_bytes;
  u64 payload_bytes;
  u64 payload_digest;  // chunked hash of everything after the header
};
#pragma pack(pop)

/// Per-block scratch produced by the fused forward kernel.
struct block_out {
  u8 width;            // max zigzag bit width, or raw_block_width
  i64 base;            // q of the first element (prediction seed)
  u64 payload_bits;    // width * 32 (0 for zero/raw blocks)
};

void put_varint64(std::vector<u8>& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<u8>(v));
}

u64 get_varint64(const u8*& p, const u8* end) {
  u64 v = 0;
  int shift = 0;
  for (;;) {
    FZMOD_REQUIRE(p < end, status::corrupt_archive,
                  "cuszp2: truncated varint");
    const u8 b = *p++;
    v |= static_cast<u64>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    FZMOD_REQUIRE(shift < 64, status::corrupt_archive,
                  "cuszp2: varint overflow");
  }
}

class cuszp2 final : public compressor {
 public:
  [[nodiscard]] std::string_view name() const override { return "cuSZp2"; }

  [[nodiscard]] std::vector<u8> compress(std::span<const f32> data,
                                         dims3 dims, eb_config eb) override {
    const std::size_t n = data.size();
    FZMOD_REQUIRE(n == dims.len(), status::invalid_argument,
                  "cuszp2: dims mismatch");
    device::stream s;
    device::buffer<f32> dev(n, device::space::device);
    device::memcpy_async(dev.data(), data.data(), n * sizeof(f32),
                         device::copy_kind::h2d, s);

    f64 ebx2 = 2.0 * eb.eb;
    if (eb.mode == eb_mode::rel) {
      kernels::minmax_result<f32> mm;
      kernels::minmax_async(dev, &mm, s);
      s.sync();
      ebx2 = 2.0 * eb.resolve(mm.range());
    }

    const std::size_t nblocks = n ? (n - 1) / blk + 1 : 0;
    std::vector<block_out> blocks(nblocks);
    // Worst case payload: 21 bits/code (zigzag of clamped deltas) — use 32.
    std::vector<u32> zz(n);

    // Fused forward kernel: prequant + delta + zigzag + width, one pass.
    {
      const f32* in = dev.data();
      const f64 r_ebx2 = 1.0 / ebx2;
      auto* bptr = blocks.data();
      u32* zptr = zz.data();
      device::launch_blocks(
          s, n, blk, [in, r_ebx2, bptr, zptr](std::size_t b, std::size_t lo,
                                              std::size_t hi) {
            i64 q[blk] = {};
            bool overflow = false;
            for (std::size_t i = lo; i < hi; ++i) {
              const f64 scaled = static_cast<f64>(in[i]) * r_ebx2;
              if (!(std::fabs(scaled) < 9.0e15)) {  // llrint-safe range
                overflow = true;
                break;
              }
              q[i - lo] = std::llrint(scaled);
            }
            if (overflow) {
              bptr[b] = {raw_block_width, 0, 0};
              return;
            }
            u32 ored = 0;
            i64 prev = q[0];
            for (std::size_t k = 1; k < hi - lo; ++k) {
              const i64 d = q[k] - prev;
              prev = q[k];
              // Deltas beyond 30 bits force the raw path (keeps zigzag in
              // u32 and bounds payload width).
              if (d > (i64{1} << 30) || d < -(i64{1} << 30)) {
                overflow = true;
                break;
              }
              const u32 z = zigzag_encode(static_cast<i32>(d));
              zptr[lo + k] = z;
              ored |= z;
            }
            if (overflow) {
              bptr[b] = {raw_block_width, 0, 0};
              return;
            }
            zptr[lo] = 0;
            const u8 width = static_cast<u8>(bit_width_u32(ored));
            bptr[b] = {width, q[0],
                       static_cast<u64>(width) * blk};
          });
    }
    s.sync();

    // Serialize: widths | varint block bases (delta-coded) | bit payload |
    // raw blocks inline after their width byte region... raw data goes to
    // a side area addressed in block order.
    std::vector<u8> bases;
    bases.reserve(nblocks * 2);
    i64 prev_base = 0;
    u64 payload_bits = 0;
    for (std::size_t b = 0; b < nblocks; ++b) {
      if (blocks[b].width == raw_block_width) continue;
      put_varint64(bases, zigzag_encode64(blocks[b].base - prev_base));
      prev_base = blocks[b].base;
      payload_bits += blocks[b].payload_bits;
    }
    u64 raw_blocks = 0;
    for (const auto& b : blocks) raw_blocks += (b.width == raw_block_width);

    header hdr{cuszp2_magic,
               static_cast<u8>(eb.mode),
               {},
               eb.eb,
               ebx2,
               n,
               nblocks,
               bases.size(),
               (payload_bits + 7) / 8 + raw_blocks * blk * sizeof(f32),
               0};
    std::vector<u8> out(sizeof(hdr) + nblocks + bases.size() +
                        hdr.payload_bytes + 8);
    u8* p = out.data() + sizeof(hdr);  // header lands last (after digest)
    for (std::size_t b = 0; b < nblocks; ++b) p[b] = blocks[b].width;
    p += nblocks;
    std::memcpy(p, bases.data(), bases.size());
    p += bases.size();
    bit_writer bw(p);
    u8* raw_area = p + (payload_bits + 7) / 8;
    for (std::size_t b = 0; b < nblocks; ++b) {
      const std::size_t lo = b * blk;
      const std::size_t hi = std::min(n, lo + blk);
      if (blocks[b].width == raw_block_width) {
        std::memcpy(raw_area, data.data() + lo, (hi - lo) * sizeof(f32));
        raw_area += blk * sizeof(f32);
        continue;
      }
      const u8 w = blocks[b].width;
      if (w == 0) continue;
      for (std::size_t i = lo; i < hi; ++i) bw.put(zz[i], w);
      for (std::size_t i = hi; i < lo + blk; ++i) bw.put(0, w);
    }
    out.resize(sizeof(hdr) + nblocks + bases.size() + hdr.payload_bytes);
    hdr.payload_digest = kernels::chunked_hash(
        {out.data() + sizeof(hdr), out.size() - sizeof(hdr)});
    std::memcpy(out.data(), &hdr, sizeof(hdr));
    return out;
  }

  [[nodiscard]] std::vector<f32> decompress(
      std::span<const u8> archive) override {
    FZMOD_REQUIRE(archive.size() >= sizeof(header), status::corrupt_archive,
                  "cuszp2: archive too small");
    header hdr;
    std::memcpy(&hdr, archive.data(), sizeof(hdr));
    FZMOD_REQUIRE(hdr.magic == cuszp2_magic, status::corrupt_archive,
                  "cuszp2: bad magic");
    // Resource guards: the block count must follow from n, and every
    // section must fit the archive individually (sum could overflow).
    FZMOD_REQUIRE(hdr.n <= max_field_elements, status::corrupt_archive,
                  "cuszp2: declared size exceeds decoder cap");
    FZMOD_REQUIRE(hdr.nblocks == (hdr.n ? (hdr.n - 1) / blk + 1 : 0),
                  status::corrupt_archive, "cuszp2: block count mismatch");
    FZMOD_REQUIRE(hdr.base_bytes <= archive.size() &&
                      hdr.payload_bytes <= archive.size() &&
                      hdr.nblocks <= archive.size(),
                  status::corrupt_archive,
                  "cuszp2: implausible section sizes");
    FZMOD_REQUIRE(archive.size() >= sizeof(hdr) + hdr.nblocks +
                                        hdr.base_bytes + hdr.payload_bytes,
                  status::corrupt_archive, "cuszp2: truncated archive");
    if (core::fmt::verify_enabled()) {
      FZMOD_REQUIRE(kernels::chunked_hash(archive.subspan(sizeof(hdr))) ==
                        hdr.payload_digest,
                    status::corrupt_archive,
                    "cuszp2: payload digest mismatch");
    }
    const u8* widths = archive.data() + sizeof(hdr);
    const u8* bp = widths + hdr.nblocks;
    const u8* bp_end = bp + hdr.base_bytes;

    // Bases and per-block bit offsets are sequential (tiny) prep; the
    // payload decode is block-parallel, as in the real decompressor.
    std::vector<i64> base(hdr.nblocks, 0);
    std::vector<u64> bit_offset(hdr.nblocks, 0);
    std::vector<u64> raw_offset(hdr.nblocks, 0);
    i64 prev_base = 0;
    u64 bits = 0, raws = 0;
    for (u64 b = 0; b < hdr.nblocks; ++b) {
      if (widths[b] == raw_block_width) {
        raw_offset[b] = raws;
        raws += blk * sizeof(f32);
        continue;
      }
      prev_base += zigzag_decode64(get_varint64(bp, bp_end));
      base[b] = prev_base;
      bit_offset[b] = bits;
      bits += static_cast<u64>(widths[b]) * blk;
    }
    const u64 packed_bytes = (bits + 7) / 8;
    // Widths are data; the extents they imply must fit the declared
    // payload before anything is copied out of the archive.
    FZMOD_REQUIRE(packed_bytes <= hdr.payload_bytes &&
                      raws <= hdr.payload_bytes - packed_bytes,
                  status::corrupt_archive,
                  "cuszp2: widths inconsistent with payload size");

    // Padded copy of the bit payload (bit_reader reads 8 bytes ahead).
    std::vector<u8> payload(packed_bytes + 16, 0);
    std::memcpy(payload.data(), archive.data() + sizeof(hdr) + hdr.nblocks +
                                    hdr.base_bytes,
                packed_bytes);
    const u8* raw_base = archive.data() + sizeof(hdr) + hdr.nblocks +
                         hdr.base_bytes + packed_bytes;

    std::vector<f32> out(hdr.n);
    auto& pool = device::runtime::instance().pool();
    pool.parallel_for(hdr.nblocks, 64, [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t b = blo; b < bhi; ++b) {
        const std::size_t lo = b * blk;
        const std::size_t hi = std::min<std::size_t>(hdr.n, lo + blk);
        if (widths[b] == raw_block_width) {
          std::memcpy(out.data() + lo, raw_base + raw_offset[b],
                      (hi - lo) * sizeof(f32));
          continue;
        }
        const u8 w = widths[b];
        i64 q = base[b];
        if (w == 0) {
          for (std::size_t i = lo; i < hi; ++i) {
            out[i] = static_cast<f32>(static_cast<f64>(q) * hdr.ebx2);
          }
          continue;
        }
        bit_reader br(payload.data(), bit_offset[b]);
        out[lo] = static_cast<f32>(static_cast<f64>(q) * hdr.ebx2);
        (void)br.get(w);  // position 0 slot is always zero
        for (std::size_t i = lo + 1; i < hi; ++i) {
          q += zigzag_decode(static_cast<u32>(br.get(w)));
          out[i] = static_cast<f32>(static_cast<f64>(q) * hdr.ebx2);
        }
      }
    });
    return out;
  }
};

}  // namespace

std::unique_ptr<compressor> make_cuszp2() {
  return std::make_unique<cuszp2>();
}

}  // namespace fzmod::baselines
