// Baseline: FZ-GPU (Zhang et al., HPDC'23) — cuSZ's dual-quantized Lorenzo
// predictor fused with a bitshuffle + dictionary lossless stage. The fusion
// (prequant + Lorenzo + re-centre in one kernel, shuffle + dictionary
// sharing the packing core) is what distinguishes it from the modular
// FZMod-Speed pipeline, which runs the same data-reduction techniques as
// separate stages (paper §4.3.2: "FZMod-Speed uses the same data-reduction
// techniques as FZ-GPU yet performs worse at times due to not being a
// fused-kernel implementation").
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>

#include "fzmod/baselines/compressor.hh"
#include "fzmod/common/bits.hh"
#include "fzmod/common/error.hh"
#include "fzmod/core/archive_format.hh"
#include "fzmod/device/runtime.hh"
#include "fzmod/encoders/fzg.hh"
#include "fzmod/kernels/bitshuffle.hh"
#include "fzmod/kernels/compact.hh"
#include "fzmod/kernels/scan.hh"
#include "fzmod/kernels/stats.hh"

namespace fzmod::baselines {
namespace {

constexpr u32 fzgpu_magic = 0x465a4750;  // "FZGP"

#pragma pack(push, 1)
struct header {
  u32 magic;
  u8 mode;
  u8 pad[3];
  f64 eb_user;
  f64 ebx2;
  u64 dims[3];
  u64 n_outliers;
  u64 outlier_bytes;  // varint-packed outlier section size
  u64 n_value_outliers;
  u64 bitmap_words;
  u64 packed_words;
  u64 payload_digest;  // chunked hash of everything after the header
};
#pragma pack(pop)

struct vo_record {
  u64 index;
  f64 value;
};

/// Value outliers: |q| beyond this forces raw storage (same safety margin
/// as the modular Lorenzo predictor).
constexpr i64 q_limit = i64{1} << 27;

class fzgpu final : public compressor {
 public:
  [[nodiscard]] std::string_view name() const override { return "FZ-GPU"; }

  [[nodiscard]] std::vector<u8> compress(std::span<const f32> data,
                                         dims3 dims, eb_config eb) override {
    const std::size_t n = data.size();
    FZMOD_REQUIRE(n == dims.len(), status::invalid_argument,
                  "fzgpu: dims mismatch");
    device::stream s;
    device::buffer<f32> dev(n, device::space::device);
    device::memcpy_async(dev.data(), data.data(), n * sizeof(f32),
                         device::copy_kind::h2d, s);

    f64 ebx2 = 2.0 * eb.eb;
    if (eb.mode == eb_mode::rel) {
      kernels::minmax_result<f32> mm;
      kernels::minmax_async(dev, &mm, s);
      s.sync();
      ebx2 = 2.0 * eb.resolve(mm.range());
    }

    // Kernel 1 (fused prequant): values -> lattice, raw outliers recorded.
    auto qbuf =
        std::make_shared<device::buffer<i32>>(n, device::space::device);
    auto side = std::make_shared<std::mutex>();
    std::vector<vo_record> value_outliers;
    {
      const f32* in = dev.data();
      i32* q = qbuf->data();
      const f64 r_ebx2 = 1.0 / ebx2;
      auto* vo = &value_outliers;
      device::launch_blocks(
          s, n, device::runtime::instance().default_block(),
          [in, q, r_ebx2, vo, side](std::size_t, std::size_t lo,
                                    std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              const f64 scaled = static_cast<f64>(in[i]) * r_ebx2;
              if (!(std::fabs(scaled) < static_cast<f64>(q_limit))) {
                std::lock_guard lk(*side);
                vo->push_back({i, static_cast<f64>(in[i])});
                q[i] = 0;
              } else {
                q[i] = static_cast<i32>(std::llrint(scaled));
              }
            }
          });
    }

    // Kernel 2 (fused Lorenzo + zigzag re-centre): symbols small-magnitude
    // u16; deltas beyond 16 bits go to a compact side list.
    auto sym =
        std::make_shared<device::buffer<u16>>(n, device::space::device);
    std::vector<kernels::outlier> outliers;
    {
      const i32* q = qbuf->data();
      u16* t = sym->data();
      auto* ol = &outliers;
      const int rank = dims.rank();
      device::launch_blocks(
          s, n, device::runtime::instance().default_block(),
          [q, t, dims, rank, ol, side](std::size_t, std::size_t lo,
                                       std::size_t hi) {
            std::size_t x = lo % dims.x;
            std::size_t y = (lo / dims.x) % dims.y;
            std::size_t z = lo / (dims.x * dims.y);
            const std::size_t sx = 1, sy = dims.x, sz = dims.x * dims.y;
            for (std::size_t i = lo; i < hi; ++i) {
              i64 pred = 0;
              if (rank == 1) {
                pred = x ? q[i - sx] : 0;
              } else if (rank == 2) {
                const i64 w = x ? q[i - sx] : 0;
                const i64 nn = y ? q[i - sy] : 0;
                const i64 nw = (x && y) ? q[i - sx - sy] : 0;
                pred = w + nn - nw;
              } else {
                const i64 vx = x ? q[i - sx] : 0;
                const i64 vy = y ? q[i - sy] : 0;
                const i64 vz = z ? q[i - sz] : 0;
                const i64 vxy = (x && y) ? q[i - sx - sy] : 0;
                const i64 vxz = (x && z) ? q[i - sx - sz] : 0;
                const i64 vyz = (y && z) ? q[i - sy - sz] : 0;
                const i64 vxyz = (x && y && z) ? q[i - sx - sy - sz] : 0;
                pred = vx + vy + vz - vxy - vxz - vyz + vxyz;
              }
              const i64 delta = static_cast<i64>(q[i]) - pred;
              const u64 zz = zigzag_encode64(delta);
              if (zz <= 0xffff) {
                t[i] = static_cast<u16>(zz);
              } else {
                t[i] = 0;
                std::lock_guard lk(*side);
                ol->push_back({static_cast<u64>(i), delta});
              }
              if (++x == dims.x) {
                x = 0;
                if (++y == dims.y) {
                  y = 0;
                  ++z;
                }
              }
            }
          });
    }

    // Kernel 3: shared shuffle + dictionary packing core.
    encoders::fzg_result enc;
    encoders::fzg_pack_async(*sym, enc, s);
    s.enqueue([sym, qbuf] {});  // lifetime anchors
    s.sync();

    const u64 n_outliers = outliers.size();
    const std::vector<u8> packed =
        core::fmt::pack_outliers(std::move(outliers));
    header hdr{fzgpu_magic,
               static_cast<u8>(eb.mode),
               {},
               eb.eb,
               ebx2,
               {dims.x, dims.y, dims.z},
               n_outliers,
               packed.size(),
               value_outliers.size(),
               enc.bitmap_words,
               enc.packed_words,
               0};
    std::vector<u8> out(sizeof(hdr) + enc.bytes() + packed.size() +
                        value_outliers.size() * sizeof(vo_record));
    u8* p = out.data() + sizeof(hdr);  // header lands last (after digest)
    device::memcpy_async(p, enc.payload.data(), enc.bytes(),
                         device::copy_kind::d2h, s);
    s.sync();
    p += enc.bytes();
    if (!packed.empty()) std::memcpy(p, packed.data(), packed.size());
    p += packed.size();
    if (!value_outliers.empty()) {
      std::memcpy(p, value_outliers.data(),
                  value_outliers.size() * sizeof(vo_record));
    }
    hdr.payload_digest = kernels::chunked_hash(
        {out.data() + sizeof(hdr), out.size() - sizeof(hdr)});
    std::memcpy(out.data(), &hdr, sizeof(hdr));
    return out;
  }

  [[nodiscard]] std::vector<f32> decompress(
      std::span<const u8> archive) override {
    FZMOD_REQUIRE(archive.size() >= sizeof(header), status::corrupt_archive,
                  "fzgpu: archive too small");
    header hdr;
    std::memcpy(&hdr, archive.data(), sizeof(hdr));
    FZMOD_REQUIRE(hdr.magic == fzgpu_magic, status::corrupt_archive,
                  "fzgpu: bad magic");
    const dims3 dims{hdr.dims[0], hdr.dims[1], hdr.dims[2]};
    FZMOD_REQUIRE(!dims.len_invalid(), status::corrupt_archive,
                  "fzgpu: dims out of supported range");
    const std::size_t n = dims.len();
    // The bitmap alone costs n/64 words, so n is archive-bounded; check
    // word counts individually before summing (overflow).
    FZMOD_REQUIRE(
        hdr.bitmap_words ==
            (kernels::bitshuffle_words(n) + 31) / 32,
        status::corrupt_archive, "fzgpu: bitmap size mismatch");
    FZMOD_REQUIRE(hdr.bitmap_words <= archive.size() / sizeof(u32) &&
                      hdr.packed_words <= archive.size() / sizeof(u32) &&
                      hdr.outlier_bytes <= archive.size() &&
                      hdr.n_outliers <= hdr.outlier_bytes / 2 + 1 &&
                      hdr.n_value_outliers <=
                          archive.size() / sizeof(vo_record),
                  status::corrupt_archive,
                  "fzgpu: implausible section sizes");
    const u64 payload_bytes =
        (hdr.bitmap_words + hdr.packed_words) * sizeof(u32);
    FZMOD_REQUIRE(
        archive.size() >= sizeof(hdr) + payload_bytes + hdr.outlier_bytes +
                              hdr.n_value_outliers * sizeof(vo_record),
        status::corrupt_archive, "fzgpu: truncated archive");
    if (core::fmt::verify_enabled()) {
      FZMOD_REQUIRE(kernels::chunked_hash(archive.subspan(sizeof(hdr))) ==
                        hdr.payload_digest,
                    status::corrupt_archive,
                    "fzgpu: payload digest mismatch");
    }

    device::stream s;
    encoders::fzg_result enc;
    enc.n_codes = n;
    enc.bitmap_words = hdr.bitmap_words;
    enc.packed_words = hdr.packed_words;
    enc.payload = device::buffer<u32>(hdr.bitmap_words + hdr.packed_words,
                                      device::space::device);
    device::memcpy_async(enc.payload.data(), archive.data() + sizeof(hdr),
                         payload_bytes, device::copy_kind::h2d, s);

    auto sym =
        std::make_shared<device::buffer<u16>>(n, device::space::device);
    encoders::fzg_unpack_async(enc, *sym, s);

    // Symbols -> deltas.
    auto deltas =
        std::make_shared<device::buffer<i32>>(n, device::space::device);
    {
      const u16* t = sym->data();
      i32* d = deltas->data();
      device::launch(s, n, [t, d, sym](std::size_t i) {
        d[i] = static_cast<i32>(
            zigzag_decode64(static_cast<u64>(t[i])));
      });
    }
    // Scatter large-delta outliers.
    auto ol = std::make_shared<std::vector<kernels::outlier>>(
        core::fmt::unpack_outliers(
            {archive.data() + sizeof(hdr) + payload_bytes,
             hdr.outlier_bytes},
            hdr.n_outliers, n));
    {
      i32* d = deltas->data();
      device::host_task(s, [ol, d, n] {
        for (const auto& o : *ol) {
          FZMOD_REQUIRE(o.index < n, status::corrupt_archive,
                        "fzgpu: outlier index out of range");
          d[o.index] = static_cast<i32>(o.value);
        }
      });
    }

    // Lorenzo inverse: prefix sums.
    kernels::inclusive_scan_rows_async(*deltas, dims, s);
    if (dims.rank() >= 2) kernels::inclusive_scan_cols_async(*deltas, dims, s);
    if (dims.rank() >= 3) {
      kernels::inclusive_scan_slices_async(*deltas, dims, s);
    }

    auto devout =
        std::make_shared<device::buffer<f32>>(n, device::space::device);
    {
      const i32* q = deltas->data();
      f32* op = devout->data();
      const f64 ebx2 = hdr.ebx2;
      device::launch(s, n, [q, op, ebx2, deltas](std::size_t i) {
        op[i] = static_cast<f32>(static_cast<f64>(q[i]) * ebx2);
      });
    }
    std::vector<f32> out(n);
    device::memcpy_async(out.data(), devout->data(), n * sizeof(f32),
                         device::copy_kind::d2h, s);
    s.sync();
    std::vector<vo_record> vo(hdr.n_value_outliers);
    if (hdr.n_value_outliers != 0) {
      std::memcpy(vo.data(),
                  archive.data() + sizeof(hdr) + payload_bytes +
                      hdr.outlier_bytes,
                  hdr.n_value_outliers * sizeof(vo_record));
    }
    for (const auto& r : vo) {
      FZMOD_REQUIRE(r.index < n, status::corrupt_archive,
                    "fzgpu: value outlier index out of range");
      out[r.index] = static_cast<f32>(r.value);
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<compressor> make_fzgpu() {
  return std::make_unique<fzgpu>();
}

}  // namespace fzmod::baselines
