// FZModules — uniform compressor harness interface.
//
// The evaluation (paper §4) compares three FZModules pipelines against
// four state-of-the-art compressors. This interface lets every bench loop
// over all seven uniformly. Baselines are faithful reimplementations of
// each competitor's algorithmic core (see DESIGN.md §3); the FZMod-*
// entries adapt core::pipeline presets.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fzmod/common/types.hh"

namespace fzmod::baselines {

class compressor {
 public:
  virtual ~compressor() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Compress host data under a (usually value-range relative) bound.
  [[nodiscard]] virtual std::vector<u8> compress(std::span<const f32> data,
                                                 dims3 dims,
                                                 eb_config eb) = 0;

  /// Reconstruct; the archive is self-describing.
  [[nodiscard]] virtual std::vector<f32> decompress(
      std::span<const u8> archive) = 0;
};

/// Known names: "FZMod-Default", "FZMod-Speed", "FZMod-Quality",
/// "FZ-GPU", "cuSZp2", "PFPL", "SZ3", plus the spec-driven matrix lines
/// from spec_matrix_lines().
[[nodiscard]] std::unique_ptr<compressor> make(const std::string& name);

/// All seven, in the paper's Table 3 column order.
[[nodiscard]] std::vector<std::string> all_names();

/// A harness entry driven by a pipeline spec (docs/PIPELINES.md) instead
/// of a preset — how new stage families join the bench matrices without
/// touching the bench loops.
[[nodiscard]] std::unique_ptr<compressor> make_spec(std::string display_name,
                                                    std::string spec_text);

/// The spec-driven lines the fig-4 / table-3 benches append after the
/// seven paper columns: {display name, spec}.
[[nodiscard]] std::vector<std::pair<std::string, std::string>>
spec_matrix_lines();

/// The GPU-side six (paper's throughput figures exclude SZ3).
[[nodiscard]] std::vector<std::string> gpu_names();

// Direct factories (used by module-level tests).
[[nodiscard]] std::unique_ptr<compressor> make_cuszp2();
[[nodiscard]] std::unique_ptr<compressor> make_fzgpu();
[[nodiscard]] std::unique_ptr<compressor> make_pfpl();
[[nodiscard]] std::unique_ptr<compressor> make_sz3();

}  // namespace fzmod::baselines
