// FZModules — uniform compressor harness interface.
//
// The evaluation (paper §4) compares three FZModules pipelines against
// four state-of-the-art compressors. This interface lets every bench loop
// over all seven uniformly. Baselines are faithful reimplementations of
// each competitor's algorithmic core (see DESIGN.md §3); the FZMod-*
// entries adapt core::pipeline presets.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fzmod/common/types.hh"

namespace fzmod::baselines {

class compressor {
 public:
  virtual ~compressor() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Compress host data under a (usually value-range relative) bound.
  [[nodiscard]] virtual std::vector<u8> compress(std::span<const f32> data,
                                                 dims3 dims,
                                                 eb_config eb) = 0;

  /// Reconstruct; the archive is self-describing.
  [[nodiscard]] virtual std::vector<f32> decompress(
      std::span<const u8> archive) = 0;
};

/// Known names: "FZMod-Default", "FZMod-Speed", "FZMod-Quality",
/// "FZ-GPU", "cuSZp2", "PFPL", "SZ3".
[[nodiscard]] std::unique_ptr<compressor> make(const std::string& name);

/// All seven, in the paper's Table 3 column order.
[[nodiscard]] std::vector<std::string> all_names();

/// The GPU-side six (paper's throughput figures exclude SZ3).
[[nodiscard]] std::vector<std::string> gpu_names();

// Direct factories (used by module-level tests).
[[nodiscard]] std::unique_ptr<compressor> make_cuszp2();
[[nodiscard]] std::unique_ptr<compressor> make_fzgpu();
[[nodiscard]] std::unique_ptr<compressor> make_pfpl();
[[nodiscard]] std::unique_ptr<compressor> make_sz3();

}  // namespace fzmod::baselines
