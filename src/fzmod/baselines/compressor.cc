#include "fzmod/baselines/compressor.hh"

#include "fzmod/common/error.hh"
#include "fzmod/core/pipeline.hh"

namespace fzmod::baselines {
namespace {

/// Adapts a core::pipeline preset to the uniform harness interface.
class fzmod_pipeline_compressor final : public compressor {
 public:
  enum class preset { def, speed, quality };

  explicit fzmod_pipeline_compressor(preset p) : preset_(p) {}

  [[nodiscard]] std::string_view name() const override {
    switch (preset_) {
      case preset::def: return "FZMod-Default";
      case preset::speed: return "FZMod-Speed";
      case preset::quality: return "FZMod-Quality";
    }
    return "FZMod";
  }

  [[nodiscard]] std::vector<u8> compress(std::span<const f32> data,
                                         dims3 dims, eb_config eb) override {
    core::pipeline_config cfg;
    switch (preset_) {
      case preset::def:
        cfg = core::pipeline_config::preset_default(eb);
        break;
      case preset::speed:
        cfg = core::pipeline_config::preset_speed(eb);
        break;
      case preset::quality:
        cfg = core::pipeline_config::preset_quality(eb);
        break;
    }
    core::pipeline<f32> p(cfg);
    return p.compress(data, dims);
  }

  [[nodiscard]] std::vector<f32> decompress(
      std::span<const u8> archive) override {
    core::pipeline<f32> p(core::pipeline_config{});
    return p.decompress(archive);
  }

 private:
  preset preset_;
};

}  // namespace

std::unique_ptr<compressor> make(const std::string& name) {
  using preset = fzmod_pipeline_compressor::preset;
  if (name == "FZMod-Default") {
    return std::make_unique<fzmod_pipeline_compressor>(preset::def);
  }
  if (name == "FZMod-Speed") {
    return std::make_unique<fzmod_pipeline_compressor>(preset::speed);
  }
  if (name == "FZMod-Quality") {
    return std::make_unique<fzmod_pipeline_compressor>(preset::quality);
  }
  if (name == "FZ-GPU") return make_fzgpu();
  if (name == "cuSZp2") return make_cuszp2();
  if (name == "PFPL") return make_pfpl();
  if (name == "SZ3") return make_sz3();
  throw error(status::unsupported, "unknown compressor: " + name);
}

std::vector<std::string> all_names() {
  return {"FZMod-Default", "FZMod-Quality", "FZMod-Speed", "FZ-GPU",
          "cuSZp2",        "PFPL",          "SZ3"};
}

std::vector<std::string> gpu_names() {
  return {"FZMod-Default", "FZMod-Quality", "FZMod-Speed",
          "FZ-GPU",        "cuSZp2",        "PFPL"};
}

}  // namespace fzmod::baselines
