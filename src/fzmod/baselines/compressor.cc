#include "fzmod/baselines/compressor.hh"

#include <cctype>

#include "fzmod/common/error.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/spec/spec.hh"

namespace fzmod::baselines {
namespace {

/// Adapts a core::pipeline preset to the uniform harness interface.
class fzmod_pipeline_compressor final : public compressor {
 public:
  explicit fzmod_pipeline_compressor(std::string preset)
      : preset_(std::move(preset)),
        display_("FZMod-" +
                 std::string(1, static_cast<char>(
                                    std::toupper(preset_.front()))) +
                 preset_.substr(1)) {}

  [[nodiscard]] std::string_view name() const override { return display_; }

  [[nodiscard]] std::vector<u8> compress(std::span<const f32> data,
                                         dims3 dims, eb_config eb) override {
    core::pipeline<f32> p(core::pipeline_config::preset(preset_, eb));
    return p.compress(data, dims);
  }

  [[nodiscard]] std::vector<f32> decompress(
      std::span<const u8> archive) override {
    core::pipeline<f32> p(core::pipeline_config{});
    return p.decompress(archive);
  }

 private:
  std::string preset_;
  std::string display_;
};

/// A harness line described entirely by a pipeline spec.
class spec_compressor final : public compressor {
 public:
  spec_compressor(std::string display_name, std::string spec_text)
      : display_(std::move(display_name)),
        spec_(spec::parse(spec_text)) {
    spec::validate<f32>(spec_);
  }

  [[nodiscard]] std::string_view name() const override { return display_; }

  [[nodiscard]] std::vector<u8> compress(std::span<const f32> data,
                                         dims3 dims, eb_config eb) override {
    core::pipeline<f32> p(spec::to_config(spec_, eb));
    return p.compress(data, dims);
  }

  [[nodiscard]] std::vector<f32> decompress(
      std::span<const u8> archive) override {
    core::pipeline<f32> p(core::pipeline_config{});
    return p.decompress(archive);
  }

 private:
  std::string display_;
  spec::pipeline_spec spec_;
};

}  // namespace

std::unique_ptr<compressor> make(const std::string& name) {
  if (name == "FZMod-Default") {
    return std::make_unique<fzmod_pipeline_compressor>("default");
  }
  if (name == "FZMod-Speed") {
    return std::make_unique<fzmod_pipeline_compressor>("speed");
  }
  if (name == "FZMod-Quality") {
    return std::make_unique<fzmod_pipeline_compressor>("quality");
  }
  if (name == "FZ-GPU") return make_fzgpu();
  if (name == "cuSZp2") return make_cuszp2();
  if (name == "PFPL") return make_pfpl();
  if (name == "SZ3") return make_sz3();
  for (const auto& [display, spec_text] : spec_matrix_lines()) {
    if (name == display) return make_spec(display, spec_text);
  }
  throw error(status::unsupported, "unknown compressor: " + name);
}

std::unique_ptr<compressor> make_spec(std::string display_name,
                                      std::string spec_text) {
  return std::make_unique<spec_compressor>(std::move(display_name),
                                           std::move(spec_text));
}

std::vector<std::pair<std::string, std::string>> spec_matrix_lines() {
  return {{"FZMod-FixBlk", "lorenzo+fixed-block"},
          {"FZMod-Delta", "delta+huffman"}};
}

std::vector<std::string> all_names() {
  return {"FZMod-Default", "FZMod-Quality", "FZMod-Speed", "FZ-GPU",
          "cuSZp2",        "PFPL",          "SZ3"};
}

std::vector<std::string> gpu_names() {
  return {"FZMod-Default", "FZMod-Quality", "FZMod-Speed",
          "FZ-GPU",        "cuSZp2",        "PFPL"};
}

}  // namespace fzmod::baselines
