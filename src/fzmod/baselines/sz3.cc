// Baseline: SZ3 (Liang et al., IEEE TBD'23) — the CPU rate-distortion
// reference. Algorithmic core: multi-level cubic spline interpolation
// prediction (Zhao et al., ICDE'21), a linear quantizer with a large
// radius (few outliers even at tight bounds), Huffman coding, and a
// dictionary+entropy lossless backend (zstd in the original).
//
// Those are precisely the high-quality module choices of this framework,
// so the baseline composes them: spline predictor + 16384-radius quantizer
// + Huffman + the LZ secondary pass. The result reproduces SZ3's place in
// the paper: best CR and rate-distortion everywhere (Table 3 bold column,
// Fig. 4), at CPU-class throughput (excluded from the throughput figures,
// as in the paper).
#include "fzmod/baselines/compressor.hh"
#include "fzmod/core/pipeline.hh"

namespace fzmod::baselines {
namespace {

class sz3 final : public compressor {
 public:
  [[nodiscard]] std::string_view name() const override { return "SZ3"; }

  [[nodiscard]] std::vector<u8> compress(std::span<const f32> data,
                                         dims3 dims, eb_config eb) override {
    // SZ3 auto-tunes its predictor (dynamic interpolation vs Lorenzo) per
    // input; we model that by compressing with both high-quality configs
    // and keeping the smaller archive. Both use the big quantizer radius
    // and the lossless backend — the combination that makes SZ3 the CR
    // reference of Table 3. (This costs compression time, which is why
    // SZ3 sits out the throughput figures, exactly as in the paper.)
    std::vector<u8> best;
    for (const char* predictor :
         {core::predictor_spline, core::predictor_lorenzo}) {
      core::pipeline_config cfg;
      cfg.eb = eb;
      cfg.predictor = predictor;
      cfg.codec = core::codec_huffman;
      cfg.histogram = kernels::histogram_kind::topk;
      cfg.radius = 16384;  // 32768-bin quantizer regime: few outliers
      cfg.secondary = true;
      core::pipeline<f32> p(cfg);
      auto archive = p.compress(data, dims);
      if (best.empty() || archive.size() < best.size()) {
        best = std::move(archive);
      }
    }
    return best;
  }

  [[nodiscard]] std::vector<f32> decompress(
      std::span<const u8> archive) override {
    core::pipeline<f32> p(core::pipeline_config{});
    return p.decompress(archive);
  }
};

}  // namespace

std::unique_ptr<compressor> make_sz3() { return std::make_unique<sz3>(); }

}  // namespace fzmod::baselines
