// Baseline: PFPL (Fallin et al., IPDPS'25) — a portable error-bounded
// compressor with *guaranteed* bounds. Algorithmic core, per the paper and
// the LC-framework pipeline it was built with:
//   1. quantizer with a per-value guarantee check — any value whose
//      quantized reconstruction would violate the bound is stored verbatim;
//   2. delta coding (1-D, chunked);
//   3. 32-bit bitshuffle (bit-plane transpose of zigzagged deltas);
//   4. zero elimination — here two-level: a super-bitmap over bitmap words
//      over payload words, which is what lets smooth data collapse to
//      hundreds-to-one ratios (the paper's CESM 181x / Nyx 1009x cells).
//
// Runs host-side (PFPL's defining trait is portability; its CPU and GPU
// versions share the algorithm), parallel over the worker pool.
#include <cmath>
#include <cstring>
#include <mutex>

#include "fzmod/baselines/compressor.hh"
#include "fzmod/common/bits.hh"
#include "fzmod/common/error.hh"
#include "fzmod/core/archive_format.hh"
#include "fzmod/device/runtime.hh"
#include "fzmod/kernels/chunked_hash.hh"
#include "fzmod/kernels/stats.hh"

namespace fzmod::baselines {
namespace {

constexpr u32 pfpl_magic = 0x5046504c;  // "PFPL"
constexpr std::size_t tile = 1024;      // values per bitshuffle tile
constexpr std::size_t words_per_tile = tile;  // 32 planes x 32 words
constexpr i64 q_limit = i64{1} << 27;

#pragma pack(push, 1)
struct header {
  u32 magic;
  u8 mode;
  u8 pad[3];
  f64 eb_user;
  f64 ebx2;
  u64 n;
  u64 n_raw;
  u64 base_bytes;
  u64 super_words;
  u64 l1_words;
  u64 payload_words;
  u64 payload_digest;  // chunked hash of everything after the header
};
#pragma pack(pop)

struct raw_record {
  u64 index;
  f32 value;
};

void put_varint64(std::vector<u8>& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<u8>(v));
}

u64 get_varint64(const u8*& p, const u8* end) {
  u64 v = 0;
  int shift = 0;
  for (;;) {
    FZMOD_REQUIRE(p < end, status::corrupt_archive, "pfpl: truncated varint");
    const u8 b = *p++;
    v |= static_cast<u64>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    FZMOD_REQUIRE(shift < 64, status::corrupt_archive,
                  "pfpl: varint overflow");
  }
}

/// Forward 32-bit bitshuffle of one tile: out[p*32 + w] collects bit p of
/// values [w*32, w*32+32).
void shuffle32_fwd(const u32* in, std::size_t count, u32* out) {
  std::memset(out, 0, words_per_tile * sizeof(u32));
  for (std::size_t i = 0; i < count; ++i) {
    u32 v = in[i];
    const std::size_t w = i >> 5;
    const u32 bit = u32{1} << (i & 31);
    while (v) {
      const int p = std::countr_zero(v);
      out[static_cast<std::size_t>(p) * 32 + w] |= bit;
      v &= v - 1;
    }
  }
}

void shuffle32_inv(const u32* in, std::size_t count, u32* out) {
  std::memset(out, 0, count * sizeof(u32));
  for (int p = 0; p < 32; ++p) {
    const u32 pbit_plane = static_cast<u32>(p);
    for (std::size_t w = 0; w < 32; ++w) {
      u32 bits = in[static_cast<std::size_t>(p) * 32 + w];
      while (bits) {
        const std::size_t i = (w << 5) + std::countr_zero(bits);
        if (i < count) out[i] |= u32{1} << pbit_plane;
        bits &= bits - 1;
      }
    }
  }
}

class pfpl final : public compressor {
 public:
  [[nodiscard]] std::string_view name() const override { return "PFPL"; }

  [[nodiscard]] std::vector<u8> compress(std::span<const f32> data,
                                         dims3 dims, eb_config eb) override {
    const std::size_t n = data.size();
    FZMOD_REQUIRE(n == dims.len(), status::invalid_argument,
                  "pfpl: dims mismatch");
    auto& pool = device::runtime::instance().pool();

    // NOA bound resolution (point-wise normalized absolute == value-range
    // relative for the other compressors, paper §4.2).
    f64 ebx2 = 2.0 * eb.eb;
    if (eb.mode == eb_mode::rel) {
      const auto mm = kernels::minmax_host<f32>(data);
      ebx2 = 2.0 * eb.resolve(mm.range());
    }
    const f64 eb_abs = ebx2 / 2.0;

    // 1+2. Guaranteed quantization + chunked delta + zigzag, per tile.
    const std::size_t ntiles = n ? (n - 1) / tile + 1 : 0;
    std::vector<u32> zz(ntiles * tile, 0);
    std::vector<i64> tile_base(ntiles, 0);
    std::mutex raw_mu;
    std::vector<raw_record> raws;
    pool.parallel_for(ntiles, 8, [&](std::size_t tlo, std::size_t thi) {
      std::vector<raw_record> local;
      for (std::size_t t = tlo; t < thi; ++t) {
        const std::size_t lo = t * tile;
        const std::size_t hi = std::min(n, lo + tile);
        i64 prev = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const f64 x = static_cast<f64>(data[i]);
          const f64 scaled = x / ebx2;
          i64 q = 0;
          bool ok = std::fabs(scaled) < static_cast<f64>(q_limit);
          if (ok) {
            q = std::llrint(scaled);
            // The guarantee check: reconstruction must honour the bound
            // in f32 arithmetic, since that is what the consumer reads.
            const f32 rec =
                static_cast<f32>(static_cast<f64>(q) * ebx2);
            ok = std::fabs(static_cast<f64>(rec) - x) <= eb_abs;
          }
          if (!ok) {
            local.push_back({i, data[i]});
            q = prev;  // raw values are neutral for delta coding
          }
          if (i == lo) {
            tile_base[t] = q;
          } else {
            zz[i] = zigzag_encode(static_cast<i32>(q - prev));
          }
          prev = q;
        }
      }
      if (!local.empty()) {
        std::lock_guard lk(raw_mu);
        raws.insert(raws.end(), local.begin(), local.end());
      }
    });

    // 3. Bitshuffle tiles.
    std::vector<u32> planes(ntiles * words_per_tile);
    pool.parallel_for(ntiles, 8, [&](std::size_t tlo, std::size_t thi) {
      for (std::size_t t = tlo; t < thi; ++t) {
        shuffle32_fwd(zz.data() + t * tile, tile,
                      planes.data() + t * words_per_tile);
      }
    });

    // 4. Two-level zero elimination over the whole plane stream.
    const std::size_t total_words = planes.size();
    const std::size_t l1_total = (total_words + 31) / 32;
    const std::size_t super_total = (l1_total + 31) / 32;
    std::vector<u32> l1(l1_total, 0);
    std::vector<u32> super(super_total, 0);
    for (std::size_t w = 0; w < total_words; ++w) {
      if (planes[w]) l1[w >> 5] |= u32{1} << (w & 31);
    }
    std::size_t l1_nonzero = 0;
    for (std::size_t b = 0; b < l1_total; ++b) {
      if (l1[b]) {
        super[b >> 5] |= u32{1} << (b & 31);
        ++l1_nonzero;
      }
    }
    std::size_t payload_nonzero = 0;
    for (const u32 w : planes) payload_nonzero += (w != 0);

    // Tile bases, delta + varint coded.
    std::vector<u8> bases;
    bases.reserve(ntiles * 2);
    i64 prev_base = 0;
    for (std::size_t t = 0; t < ntiles; ++t) {
      put_varint64(bases, zigzag_encode64(tile_base[t] - prev_base));
      prev_base = tile_base[t];
    }

    header hdr{pfpl_magic,
               static_cast<u8>(eb.mode),
               {},
               eb.eb,
               ebx2,
               n,
               raws.size(),
               bases.size(),
               super_total,
               l1_nonzero,
               payload_nonzero,
               0};
    // Stage word sections in an aligned vector, then memcpy into the
    // archive (word offsets inside the blob are not 4-aligned in general).
    std::vector<u32> words;
    words.reserve(super_total + l1_nonzero + payload_nonzero);
    words.insert(words.end(), super.begin(), super.end());
    for (std::size_t b = 0; b < l1_total; ++b) {
      if (l1[b]) words.push_back(l1[b]);
    }
    for (const u32 w : planes) {
      if (w) words.push_back(w);
    }

    std::vector<u8> out(sizeof(hdr) + bases.size() +
                        words.size() * sizeof(u32) +
                        raws.size() * sizeof(raw_record));
    u8* p = out.data() + sizeof(hdr);  // header lands last (after digest)
    if (!bases.empty()) std::memcpy(p, bases.data(), bases.size());
    p += bases.size();
    if (!words.empty()) std::memcpy(p, words.data(), words.size() * sizeof(u32));
    p += words.size() * sizeof(u32);
    if (!raws.empty()) std::memcpy(p, raws.data(), raws.size() * sizeof(raw_record));
    hdr.payload_digest = kernels::chunked_hash(
        {out.data() + sizeof(hdr), out.size() - sizeof(hdr)});
    std::memcpy(out.data(), &hdr, sizeof(hdr));
    return out;
  }

  [[nodiscard]] std::vector<f32> decompress(
      std::span<const u8> archive) override {
    FZMOD_REQUIRE(archive.size() >= sizeof(header), status::corrupt_archive,
                  "pfpl: archive too small");
    header hdr;
    std::memcpy(&hdr, archive.data(), sizeof(hdr));
    FZMOD_REQUIRE(hdr.magic == pfpl_magic, status::corrupt_archive,
                  "pfpl: bad magic");
    // Resource guards: the super-bitmap costs n/8192 bytes, so n is
    // bounded by the archive size; section sizes checked individually
    // before the summed check (overflow).
    FZMOD_REQUIRE(hdr.n <= max_field_elements &&
                      hdr.n / 8192 <= archive.size(),
                  status::corrupt_archive,
                  "pfpl: declared size implausible for archive");
    FZMOD_REQUIRE(hdr.base_bytes <= archive.size() &&
                      hdr.l1_words <= archive.size() / sizeof(u32) &&
                      hdr.payload_words <= archive.size() / sizeof(u32) &&
                      hdr.n_raw <= archive.size() / sizeof(raw_record),
                  status::corrupt_archive,
                  "pfpl: implausible section sizes");
    const std::size_t n = hdr.n;
    const std::size_t ntiles = n ? (n - 1) / tile + 1 : 0;
    const std::size_t total_words = ntiles * words_per_tile;
    const std::size_t l1_total = (total_words + 31) / 32;
    const std::size_t super_total = (l1_total + 31) / 32;
    FZMOD_REQUIRE(hdr.super_words == super_total, status::corrupt_archive,
                  "pfpl: super bitmap size mismatch");
    FZMOD_REQUIRE(
        archive.size() >=
            sizeof(hdr) + hdr.base_bytes +
                (hdr.super_words + hdr.l1_words + hdr.payload_words) *
                    sizeof(u32) +
                hdr.n_raw * sizeof(raw_record),
        status::corrupt_archive, "pfpl: truncated archive");
    if (core::fmt::verify_enabled()) {
      FZMOD_REQUIRE(kernels::chunked_hash(archive.subspan(sizeof(hdr))) ==
                        hdr.payload_digest,
                    status::corrupt_archive,
                    "pfpl: payload digest mismatch");
    }

    const u8* p = archive.data() + sizeof(hdr);
    const u8* bases_p = p;
    const u8* bases_end = p + hdr.base_bytes;
    p = bases_end;
    // Copy word sections out of the (unaligned) blob.
    const std::size_t nwords =
        hdr.super_words + hdr.l1_words + hdr.payload_words;
    std::vector<u32> words(nwords);
    if (nwords != 0) std::memcpy(words.data(), p, nwords * sizeof(u32));
    p += nwords * sizeof(u32);
    const u32* super = words.data();
    const u32* l1_packed = super + hdr.super_words;
    const u32* payload_packed = l1_packed + hdr.l1_words;
    std::vector<raw_record> raw_recs(hdr.n_raw);
    if (hdr.n_raw != 0) {
      std::memcpy(raw_recs.data(), p, hdr.n_raw * sizeof(raw_record));
    }
    const raw_record* raws = raw_recs.data();

    // Expand level 1 from the super bitmap.
    std::vector<u32> l1(l1_total, 0);
    {
      std::size_t pos = 0;
      for (std::size_t b = 0; b < l1_total; ++b) {
        if (super[b >> 5] & (u32{1} << (b & 31))) {
          FZMOD_REQUIRE(pos < hdr.l1_words, status::corrupt_archive,
                        "pfpl: level-1 bitmap overrun");
          l1[b] = l1_packed[pos++];
        }
      }
      FZMOD_REQUIRE(pos == hdr.l1_words, status::corrupt_archive,
                    "pfpl: level-1 bitmap population mismatch");
    }
    // Expand payload words from level 1.
    std::vector<u32> planes(total_words, 0);
    {
      std::size_t pos = 0;
      for (std::size_t b = 0; b < l1_total; ++b) {
        u32 bits = l1[b];
        while (bits) {
          const std::size_t w = (b << 5) + std::countr_zero(bits);
          FZMOD_REQUIRE(pos < hdr.payload_words && w < total_words,
                        status::corrupt_archive, "pfpl: payload overrun");
          planes[w] = payload_packed[pos++];
          bits &= bits - 1;
        }
      }
      FZMOD_REQUIRE(pos == hdr.payload_words, status::corrupt_archive,
                    "pfpl: payload population mismatch");
    }

    // Tile bases.
    std::vector<i64> tile_base(ntiles, 0);
    i64 prev_base = 0;
    for (std::size_t t = 0; t < ntiles; ++t) {
      prev_base += zigzag_decode64(get_varint64(bases_p, bases_end));
      tile_base[t] = prev_base;
    }

    // Inverse shuffle + delta + dequantize, tile-parallel.
    std::vector<f32> out(n);
    auto& pool = device::runtime::instance().pool();
    pool.parallel_for(ntiles, 8, [&](std::size_t tlo, std::size_t thi) {
      std::vector<u32> zz(tile);
      for (std::size_t t = tlo; t < thi; ++t) {
        shuffle32_inv(planes.data() + t * words_per_tile, tile, zz.data());
        const std::size_t lo = t * tile;
        const std::size_t hi = std::min(n, lo + tile);
        i64 q = tile_base[t];
        out[lo] = static_cast<f32>(static_cast<f64>(q) * hdr.ebx2);
        for (std::size_t i = lo + 1; i < hi; ++i) {
          q += zigzag_decode(zz[i - lo]);
          out[i] = static_cast<f32>(static_cast<f64>(q) * hdr.ebx2);
        }
      }
    });

    // Raw (guarantee-channel) values override.
    for (u64 k = 0; k < hdr.n_raw; ++k) {
      FZMOD_REQUIRE(raws[k].index < n, status::corrupt_archive,
                    "pfpl: raw index out of range");
      out[raws[k].index] = raws[k].value;
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<compressor> make_pfpl() {
  return std::make_unique<pfpl>();
}

}  // namespace fzmod::baselines
