// FZModules — general-purpose lossless codec (the secondary-encoder slot).
//
// The paper wires zstd in as the optional secondary lossless encoder; no
// zstd is available offline, so this module fills the same pipeline slot
// with the same construction zstd uses at its core: LZ77 dictionary
// matching (64 KiB window, hash-chain search, LZ4-style sequence framing)
// followed by canonical Huffman entropy coding of the token stream.
//
// Input is segmented (1 MiB) so match-finding parallelizes across the
// worker pool; the Huffman pass is chunk-parallel already.
#pragma once

#include <span>
#include <vector>

#include "fzmod/common/types.hh"

namespace fzmod::lossless {

/// Compress an arbitrary byte blob. Never fails; incompressible input
/// grows by a small framing overhead (stored-mode fallback keeps the
/// expansion bounded by ~0.1% + 64 bytes).
[[nodiscard]] std::vector<u8> compress(std::span<const u8> raw);

/// Decompress a blob produced by compress(). Throws on corruption.
[[nodiscard]] std::vector<u8> decompress(std::span<const u8> blob);

/// Decompressed size without doing the work (archive sizing).
[[nodiscard]] u64 decompressed_size(std::span<const u8> blob);

}  // namespace fzmod::lossless
