#include "fzmod/lossless/lz.hh"

#include <algorithm>
#include <cstring>

#include "fzmod/common/error.hh"
#include "fzmod/device/runtime.hh"
#include "fzmod/encoders/huffman.hh"

namespace fzmod::lossless {
namespace {

constexpr u32 lz_magic = 0x465a4c5a;  // "FZLZ"
constexpr std::size_t segment_size = 1u << 20;
constexpr std::size_t window = 1u << 16;
constexpr std::size_t min_match = 4;
constexpr std::size_t max_chain = 32;

struct header {
  u32 magic;
  u32 mode;  // 0 = LZ+Huffman, 1 = stored
  u64 raw_size;
  u64 token_size;
  u32 nsegments;
  u32 reserved;
};

void put_varint(std::vector<u8>& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<u8>(v));
}

u64 get_varint(const u8*& p, const u8* end) {
  u64 v = 0;
  int shift = 0;
  for (;;) {
    FZMOD_REQUIRE(p < end, status::corrupt_archive, "lz: truncated varint");
    const u8 b = *p++;
    v |= static_cast<u64>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    FZMOD_REQUIRE(shift < 64, status::corrupt_archive, "lz: varint overflow");
  }
}

[[nodiscard]] inline u32 hash4(const u8* p) {
  u32 v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 16;  // 16-bit hash
}

/// Greedy hash-chain LZ77 over one segment. Emits sequences of
/// [lit_len varint][literals][match_len-4 varint][dist varint]; the stream
/// ends when the decoder has reconstructed `n` bytes (a trailing sequence
/// may omit the match by encoding match_len sentinel 0... we instead always
/// emit a final literal-only sequence with match fields {0, 0}).
void lz_segment(const u8* src, std::size_t n, std::vector<u8>& out) {
  std::vector<i32> head(1u << 16, -1);
  std::vector<i32> prev(n, -1);
  std::size_t i = 0;
  std::size_t lit_start = 0;

  auto flush_sequence = [&](std::size_t match_len, std::size_t dist) {
    put_varint(out, i - lit_start);
    out.insert(out.end(), src + lit_start, src + i);
    put_varint(out, match_len >= min_match ? match_len - min_match + 1 : 0);
    if (match_len >= min_match) put_varint(out, dist);
  };

  while (i + min_match <= n) {
    const u32 h = hash4(src + i);
    std::size_t best_len = 0, best_dist = 0;
    i32 cand = head[h];
    std::size_t chain = 0;
    while (cand >= 0 && i - static_cast<std::size_t>(cand) <= window &&
           chain < max_chain) {
      const u8* a = src + cand;
      const u8* b = src + i;
      const std::size_t cap = n - i;
      std::size_t len = 0;
      while (len < cap && a[len] == b[len]) ++len;
      if (len > best_len) {
        best_len = len;
        best_dist = i - static_cast<std::size_t>(cand);
        if (len >= 128) break;  // long enough; stop searching
      }
      cand = prev[cand];
      ++chain;
    }
    if (best_len >= min_match) {
      flush_sequence(best_len, best_dist);
      // Insert hash entries for the matched region (sparsely for speed).
      const std::size_t end = i + best_len;
      const std::size_t step = best_len > 64 ? 4 : 1;
      for (; i + min_match <= n && i < end; i += step) {
        const u32 hh = hash4(src + i);
        prev[i] = head[hh];
        head[hh] = static_cast<i32>(i);
      }
      i = end;
      lit_start = i;
    } else {
      prev[i] = head[h];
      head[h] = static_cast<i32>(i);
      ++i;
    }
  }
  i = n;
  flush_sequence(0, 0);  // final literal-only sequence
}

void lz_expand_segment(const u8*& p, const u8* end, u8* dst,
                       std::size_t n) {
  std::size_t pos = 0;
  while (pos < n) {
    const u64 lit = get_varint(p, end);
    FZMOD_REQUIRE(lit <= n - pos && static_cast<u64>(end - p) >= lit,
                  status::corrupt_archive, "lz: literal overrun");
    std::memcpy(dst + pos, p, lit);
    p += lit;
    pos += lit;
    const u64 mlen_enc = get_varint(p, end);
    if (mlen_enc == 0) {
      FZMOD_REQUIRE(pos == n, status::corrupt_archive,
                    "lz: premature stream end");
      break;
    }
    const u64 mlen = mlen_enc - 1 + min_match;
    const u64 dist = get_varint(p, end);
    FZMOD_REQUIRE(dist >= 1 && dist <= pos, status::corrupt_archive,
                  "lz: invalid match distance");
    FZMOD_REQUIRE(mlen <= n - pos, status::corrupt_archive,
                  "lz: match overrun");
    // Overlapping copies are the RLE case; byte loop is required.
    for (u64 k = 0; k < mlen; ++k) dst[pos + k] = dst[pos + k - dist];
    pos += mlen;
  }
}

}  // namespace

std::vector<u8> compress(std::span<const u8> raw) {
  const std::size_t nseg =
      raw.empty() ? 0 : (raw.size() - 1) / segment_size + 1;
  std::vector<std::vector<u8>> seg_tokens(nseg);
  device::runtime::instance().pool().parallel_for(
      nseg, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t sg = lo; sg < hi; ++sg) {
          const std::size_t beg = sg * segment_size;
          const std::size_t len =
              std::min(segment_size, raw.size() - beg);
          seg_tokens[sg].reserve(len / 2);
          lz_segment(raw.data() + beg, len, seg_tokens[sg]);
        }
      });

  // Concatenate tokens with a segment offset table, then entropy-code.
  std::vector<u64> seg_offsets(nseg + 1, 0);
  for (std::size_t sg = 0; sg < nseg; ++sg) {
    seg_offsets[sg + 1] = seg_offsets[sg] + seg_tokens[sg].size();
  }
  const u64 token_size = seg_offsets[nseg];
  std::vector<u16> tokens(token_size);
  std::vector<u32> hist(256, 0);
  for (std::size_t sg = 0; sg < nseg; ++sg) {
    u16* dst = tokens.data() + seg_offsets[sg];
    for (std::size_t k = 0; k < seg_tokens[sg].size(); ++k) {
      dst[k] = seg_tokens[sg][k];
      hist[seg_tokens[sg][k]]++;
    }
  }

  std::vector<u8> entropy;
  if (token_size > 0) entropy = encoders::huffman_encode(tokens, hist);

  header hdr{lz_magic, 0, raw.size(), token_size,
             static_cast<u32>(nseg), 0};
  const std::size_t framed = sizeof(hdr) + (nseg + 1) * sizeof(u64) +
                             entropy.size();
  if (framed >= raw.size() + sizeof(hdr)) {
    // Stored mode: entropy coding did not pay off.
    hdr.mode = 1;
    std::vector<u8> blob(sizeof(hdr) + raw.size());
    std::memcpy(blob.data(), &hdr, sizeof(hdr));
    std::memcpy(blob.data() + sizeof(hdr), raw.data(), raw.size());
    return blob;
  }
  std::vector<u8> blob(framed);
  u8* p = blob.data();
  std::memcpy(p, &hdr, sizeof(hdr));
  p += sizeof(hdr);
  std::memcpy(p, seg_offsets.data(), (nseg + 1) * sizeof(u64));
  p += (nseg + 1) * sizeof(u64);
  std::memcpy(p, entropy.data(), entropy.size());
  return blob;
}

u64 decompressed_size(std::span<const u8> blob) {
  FZMOD_REQUIRE(blob.size() >= sizeof(header), status::corrupt_archive,
                "lz: blob too small");
  header hdr;
  std::memcpy(&hdr, blob.data(), sizeof(hdr));
  FZMOD_REQUIRE(hdr.magic == lz_magic, status::corrupt_archive,
                "lz: bad magic");
  return hdr.raw_size;
}

std::vector<u8> decompress(std::span<const u8> blob) {
  FZMOD_REQUIRE(blob.size() >= sizeof(header), status::corrupt_archive,
                "lz: blob too small");
  header hdr;
  std::memcpy(&hdr, blob.data(), sizeof(hdr));
  FZMOD_REQUIRE(hdr.magic == lz_magic, status::corrupt_archive,
                "lz: bad magic");
  // Resource guards: a corrupted size field must not drive an unbounded
  // allocation. Stored mode is 1:1; LZ mode emits at least one token byte
  // per segment and the token stream itself is bounded by the Huffman
  // chunk-table floor.
  FZMOD_REQUIRE(hdr.raw_size <= max_decode_bytes, status::corrupt_archive,
                "lz: declared size exceeds decoder cap");
  const std::size_t expect_nseg =
      hdr.raw_size == 0 ? 0
                        : (hdr.raw_size - 1) / segment_size + 1;
  FZMOD_REQUIRE(hdr.mode == 1 || hdr.nsegments == expect_nseg,
                status::corrupt_archive, "lz: segment count mismatch");
  FZMOD_REQUIRE(hdr.token_size <= max_decode_bytes &&
                    hdr.token_size / 8192 <= blob.size(),
                status::corrupt_archive, "lz: token stream implausible");
  std::vector<u8> raw(hdr.raw_size);
  if (hdr.mode == 1) {
    FZMOD_REQUIRE(blob.size() >= sizeof(hdr) + hdr.raw_size,
                  status::corrupt_archive, "lz: truncated stored blob");
    std::memcpy(raw.data(), blob.data() + sizeof(hdr), hdr.raw_size);
    return raw;
  }
  const std::size_t nseg = hdr.nsegments;
  FZMOD_REQUIRE(blob.size() >= sizeof(hdr) + (nseg + 1) * sizeof(u64),
                status::corrupt_archive, "lz: truncated segment table");
  std::vector<u64> seg_offsets(nseg + 1);
  std::memcpy(seg_offsets.data(), blob.data() + sizeof(hdr),
              (nseg + 1) * sizeof(u64));
  FZMOD_REQUIRE(seg_offsets[nseg] == hdr.token_size,
                status::corrupt_archive, "lz: segment table mismatch");

  std::vector<u16> tokens16(hdr.token_size);
  if (hdr.token_size > 0) {
    encoders::huffman_decode(
        blob.subspan(sizeof(hdr) + (nseg + 1) * sizeof(u64)), tokens16);
  }
  std::vector<u8> tokens(hdr.token_size);
  for (std::size_t k = 0; k < tokens.size(); ++k) {
    tokens[k] = static_cast<u8>(tokens16[k]);
  }

  device::runtime::instance().pool().parallel_for(
      nseg, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t sg = lo; sg < hi; ++sg) {
          const std::size_t beg = sg * segment_size;
          const std::size_t len =
              std::min<std::size_t>(segment_size, hdr.raw_size - beg);
          const u8* p = tokens.data() + seg_offsets[sg];
          const u8* end = tokens.data() + seg_offsets[sg + 1];
          lz_expand_segment(p, end, raw.data() + beg, len);
        }
      });
  return raw;
}

}  // namespace fzmod::lossless
