// FZModules — evaluation metrics (paper §4.2).
//
//  - compression ratio: input bytes / archive bytes;
//  - bit rate: average bits per input value (rate-distortion x-axis);
//  - PSNR over the value range (rate-distortion y-axis);
//  - max pointwise error (error-bound verification);
//  - overall speedup, Eq. (1) of the paper: the end-to-end improvement a
//    compressor provides when shipping data across a medium of bandwidth
//    BW, combining CR and compression throughput.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "fzmod/common/types.hh"

namespace fzmod::metrics {

struct error_stats {
  f64 max_abs_err = 0;
  f64 mse = 0;
  f64 psnr = 0;       // dB, vs the original value range
  f64 nrmse = 0;      // RMSE / range
  f64 range = 0;
};

/// Full-field comparison of original vs reconstructed.
[[nodiscard]] error_stats compare(std::span<const f32> original,
                                  std::span<const f32> reconstructed);
[[nodiscard]] error_stats compare(std::span<const f64> original,
                                  std::span<const f64> reconstructed);

[[nodiscard]] inline f64 compression_ratio(u64 input_bytes,
                                           u64 archive_bytes) {
  return archive_bytes ? static_cast<f64>(input_bytes) /
                             static_cast<f64>(archive_bytes)
                       : 0.0;
}

/// Bits per value for a compressed archive of an n-element field.
[[nodiscard]] inline f64 bit_rate(u64 archive_bytes, u64 n_values) {
  return n_values ? 8.0 * static_cast<f64>(archive_bytes) /
                        static_cast<f64>(n_values)
                  : 0.0;
}

/// Overall speedup (Eq. 1): 1 / (((BW*CR)^-1 + T^-1) * BW), where T is
/// compression throughput and BW the transfer bandwidth, all in GB/s.
/// Values > 1 mean compressing-then-sending beats sending raw.
[[nodiscard]] inline f64 overall_speedup(f64 bw_gbps, f64 cr,
                                         f64 throughput_gbps) {
  if (bw_gbps <= 0 || cr <= 0 || throughput_gbps <= 0) return 0;
  return 1.0 / ((1.0 / (bw_gbps * cr) + 1.0 / throughput_gbps) * bw_gbps);
}

/// Error-bound acceptance threshold for f32 data: the compressors
/// guarantee |x - x̂| <= bound in real arithmetic; storing x̂ as f32 can
/// add up to half an ulp of the value's magnitude (2^-24 relative). This
/// returns bound plus that storage slack, the threshold verification
/// should compare max_abs_err against.
[[nodiscard]] inline f64 f32_bound_slack(f64 bound, f64 max_abs_value) {
  return bound + std::ldexp(std::max(max_abs_value, 0.0), -23);
}

}  // namespace fzmod::metrics
