#include "fzmod/metrics/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "fzmod/common/error.hh"
#include "fzmod/device/runtime.hh"

namespace fzmod::metrics {
namespace {

template <class T>
error_stats compare_impl(std::span<const T> a, std::span<const T> b) {
  FZMOD_REQUIRE(a.size() == b.size(), status::invalid_argument,
                "metrics: size mismatch");
  const std::size_t n = a.size();
  if (n == 0) return {};

  struct partial {
    f64 max_err = 0;
    f64 sq_sum = 0;
    f64 lo = std::numeric_limits<f64>::max();
    f64 hi = std::numeric_limits<f64>::lowest();
  };
  auto& pool = device::runtime::instance().pool();
  const std::size_t block = 1u << 16;
  const std::size_t nblocks = (n + block - 1) / block;
  std::vector<partial> parts(nblocks);
  pool.parallel_for(nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
    for (std::size_t bk = blo; bk < bhi; ++bk) {
      partial p;
      const std::size_t end = std::min(n, (bk + 1) * block);
      for (std::size_t i = bk * block; i < end; ++i) {
        const f64 x = static_cast<f64>(a[i]);
        const f64 d = x - static_cast<f64>(b[i]);
        p.max_err = std::max(p.max_err, std::fabs(d));
        p.sq_sum += d * d;
        p.lo = std::min(p.lo, x);
        p.hi = std::max(p.hi, x);
      }
      parts[bk] = p;
    }
  });
  partial total;
  for (const auto& p : parts) {
    total.max_err = std::max(total.max_err, p.max_err);
    total.sq_sum += p.sq_sum;
    total.lo = std::min(total.lo, p.lo);
    total.hi = std::max(total.hi, p.hi);
  }

  error_stats st;
  st.max_abs_err = total.max_err;
  st.mse = total.sq_sum / static_cast<f64>(n);
  st.range = total.hi - total.lo;
  if (st.mse == 0) {
    st.psnr = std::numeric_limits<f64>::infinity();
    st.nrmse = 0;
  } else if (st.range > 0) {
    st.psnr = 20.0 * std::log10(st.range) - 10.0 * std::log10(st.mse);
    st.nrmse = std::sqrt(st.mse) / st.range;
  } else {
    st.psnr = -10.0 * std::log10(st.mse);
    st.nrmse = std::sqrt(st.mse);
  }
  return st;
}

}  // namespace

error_stats compare(std::span<const f32> original,
                    std::span<const f32> reconstructed) {
  return compare_impl(original, reconstructed);
}

error_stats compare(std::span<const f64> original,
                    std::span<const f64> reconstructed) {
  return compare_impl(original, reconstructed);
}

}  // namespace fzmod::metrics
