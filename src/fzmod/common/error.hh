// FZModules — status codes and error reporting.
//
// The framework throws `fzmod::error` for contract violations (bad header,
// truncated archive, invalid module wiring). Hot kernels never throw; they
// validate inputs up front at the stage boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace fzmod {

enum class status {
  ok = 0,
  invalid_argument,
  corrupt_archive,
  unsupported,
  out_of_range,
  internal,
};

[[nodiscard]] inline const char* to_string(status s) {
  switch (s) {
    case status::ok: return "ok";
    case status::invalid_argument: return "invalid_argument";
    case status::corrupt_archive: return "corrupt_archive";
    case status::unsupported: return "unsupported";
    case status::out_of_range: return "out_of_range";
    case status::internal: return "internal";
  }
  return "unknown";
}

class error : public std::runtime_error {
 public:
  error(status s, const std::string& what)
      : std::runtime_error(std::string(to_string(s)) + ": " + what), st_(s) {}

  [[nodiscard]] status code() const { return st_; }

 private:
  status st_;
};

/// Contract check used at stage boundaries. Unlike assert(), it is active
/// in release builds: compressed archives come from untrusted storage.
#define FZMOD_REQUIRE(cond, st, msg)                  \
  do {                                                \
    if (!(cond)) throw ::fzmod::error((st), (msg));   \
  } while (0)

}  // namespace fzmod
