// FZModules — wall-clock timing helpers used by benches and throughput
// metrics.
#pragma once

#include <chrono>

#include "fzmod/common/types.hh"

namespace fzmod {

class stopwatch {
 public:
  stopwatch() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Seconds since construction or last reset().
  [[nodiscard]] f64 seconds() const {
    return std::chrono::duration<f64>(clock::now() - start_).count();
  }

  [[nodiscard]] f64 milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Throughput in GB/s for `bytes` processed in `seconds`.
[[nodiscard]] inline f64 throughput_gbps(u64 bytes, f64 seconds) {
  if (seconds <= 0) return 0;
  return static_cast<f64>(bytes) / seconds / 1e9;
}

}  // namespace fzmod
