// FZModules — fundamental types shared by every module.
//
// Everything in the framework is expressed over a small vocabulary:
// fixed-width integer aliases, a 3-D extent descriptor (`dims3`), and the
// error-bound configuration (`eb_config`) that the paper's pipelines thread
// through preprocessing, prediction and quantization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fzmod {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

/// Extent of a field, up to 3 dimensions. A 1-D field is {n, 1, 1}; a 2-D
/// field {nx, ny, 1}. `x` is the fastest-varying (contiguous) dimension,
/// matching SDRBench's raw layout.
struct dims3 {
  std::size_t x = 1;
  std::size_t y = 1;
  std::size_t z = 1;

  constexpr dims3() = default;
  constexpr dims3(std::size_t x_, std::size_t y_ = 1, std::size_t z_ = 1)
      : x(x_), y(y_), z(z_) {}

  [[nodiscard]] constexpr std::size_t len() const { return x * y * z; }

  /// Number of dimensions with extent > 1 (used to pick the 1/2/3-D
  /// specialization of a predictor).
  [[nodiscard]] constexpr int rank() const {
    if (z > 1) return 3;
    if (y > 1) return 2;
    return 1;
  }

  /// Whether x*y*z overflows or exceeds the decoder resource cap
  /// (`max_field_elements`). Every decoder calls this before sizing
  /// buffers from an untrusted header.
  [[nodiscard]] bool len_invalid() const;

  /// Linearized index of (ix, iy, iz).
  [[nodiscard]] constexpr std::size_t at(std::size_t ix, std::size_t iy,
                                         std::size_t iz) const {
    return ix + x * (iy + y * iz);
  }

  constexpr bool operator==(const dims3&) const = default;
};

/// How the user-supplied error bound is interpreted.
///
/// - `abs`: the bound is an absolute tolerance: |x - x̂| <= eb.
/// - `rel`: value-range relative ("value-range-based relative error bound"
///   in the paper): |x - x̂| <= eb * (max - min). Resolving a relative
///   bound requires a range scan over the input, which is why the paper's
///   preprocessing stage exists.
enum class eb_mode { abs, rel };

/// Error-bound configuration carried by every pipeline/compressor.
struct eb_config {
  double eb = 1e-4;
  eb_mode mode = eb_mode::rel;

  /// Resolve to an absolute bound given the data range (max - min). A zero
  /// range (constant field) degrades to the raw eb so quantization stays
  /// well defined.
  [[nodiscard]] double resolve(double range) const {
    if (mode == eb_mode::abs) return eb;
    return range > 0 ? eb * range : eb;
  }
};

/// Element type of a field. The paper's evaluation is f32-only (SDRBench
/// fields are single precision); f64 is supported by the core pipeline via
/// templates and exercised in tests.
enum class dtype : u8 { f32 = 0, f64 = 1 };

[[nodiscard]] inline std::size_t dtype_size(dtype t) {
  return t == dtype::f32 ? 4 : 8;
}

[[nodiscard]] inline const char* to_string(dtype t) {
  return t == dtype::f32 ? "f32" : "f64";
}

[[nodiscard]] inline const char* to_string(eb_mode m) {
  return m == eb_mode::abs ? "abs" : "rel";
}

/// Decoder resource caps: archives are untrusted, and a corrupted header
/// must not be able to request an unbounded allocation. The caps are far
/// above any real field (the paper's largest is HACC at 2.8e8 elements).
inline constexpr u64 max_field_elements = u64{1} << 33;  // 8G values
inline constexpr u64 max_decode_bytes = u64{1} << 34;    // 16 GiB

inline bool dims3::len_invalid() const {
  if (x == 0 || y == 0 || z == 0) return true;
  const auto p = static_cast<unsigned __int128>(x) * y * z;
  return p > max_field_elements;
}

}  // namespace fzmod
