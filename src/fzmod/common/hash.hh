// FZModules — xxhash64-style non-cryptographic hashing.
//
// Archive integrity (format v2) stores one 64-bit digest per archive
// section plus a whole-body digest for secondary-wrapped archives; see
// docs/FORMAT.md. The hash is the XXH64 construction: a 4-lane
// multiply-rotate accumulator over 32-byte stripes with an avalanche
// finalizer. It is fast (memory-bandwidth-bound on long inputs), has
// excellent bit dispersion, and is *not* cryptographic — it detects
// corruption, not adversaries with write access and hash awareness.
//
// Large payloads are hashed data-parallel by the chunked kernel in
// kernels/chunked_hash.hh; this header is the scalar core it builds on.
#pragma once

#include <bit>
#include <cstring>

#include "fzmod/common/types.hh"

namespace fzmod::common {

namespace detail {

inline constexpr u64 xxh_prime1 = 0x9E3779B185EBCA87ull;
inline constexpr u64 xxh_prime2 = 0xC2B2AE3D27D4EB4Full;
inline constexpr u64 xxh_prime3 = 0x165667B19E3779F9ull;
inline constexpr u64 xxh_prime4 = 0x85EBCA77C2B2AE63ull;
inline constexpr u64 xxh_prime5 = 0x27D4EB2F165667C5ull;

[[nodiscard]] inline u64 xxh_read64(const u8* p) {
  u64 v;
  std::memcpy(&v, p, 8);
  return v;
}

[[nodiscard]] inline u32 xxh_read32(const u8* p) {
  u32 v;
  std::memcpy(&v, p, 4);
  return v;
}

[[nodiscard]] inline u64 xxh_round(u64 acc, u64 input) {
  acc += input * xxh_prime2;
  acc = std::rotl(acc, 31);
  return acc * xxh_prime1;
}

[[nodiscard]] inline u64 xxh_merge_round(u64 acc, u64 lane) {
  acc ^= xxh_round(0, lane);
  return acc * xxh_prime1 + xxh_prime4;
}

[[nodiscard]] inline u64 xxh_avalanche(u64 h) {
  h ^= h >> 33;
  h *= xxh_prime2;
  h ^= h >> 29;
  h *= xxh_prime3;
  h ^= h >> 32;
  return h;
}

}  // namespace detail

/// One-shot XXH64 of `len` bytes with the given seed.
[[nodiscard]] inline u64 xxhash64(const void* data, std::size_t len,
                                  u64 seed = 0) {
  using namespace detail;
  const u8* p = static_cast<const u8*>(data);
  const u8* const end = p + len;
  u64 h;

  if (len >= 32) {
    u64 v1 = seed + xxh_prime1 + xxh_prime2;
    u64 v2 = seed + xxh_prime2;
    u64 v3 = seed;
    u64 v4 = seed - xxh_prime1;
    const u8* const limit = end - 32;
    do {
      v1 = xxh_round(v1, xxh_read64(p));
      v2 = xxh_round(v2, xxh_read64(p + 8));
      v3 = xxh_round(v3, xxh_read64(p + 16));
      v4 = xxh_round(v4, xxh_read64(p + 24));
      p += 32;
    } while (p <= limit);
    h = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) +
        std::rotl(v4, 18);
    h = xxh_merge_round(h, v1);
    h = xxh_merge_round(h, v2);
    h = xxh_merge_round(h, v3);
    h = xxh_merge_round(h, v4);
  } else {
    h = seed + xxh_prime5;
  }

  h += static_cast<u64>(len);
  while (p + 8 <= end) {
    h ^= xxh_round(0, xxh_read64(p));
    h = std::rotl(h, 27) * xxh_prime1 + xxh_prime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<u64>(xxh_read32(p)) * xxh_prime1;
    h = std::rotl(h, 23) * xxh_prime2 + xxh_prime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<u64>(*p) * xxh_prime5;
    h = std::rotl(h, 11) * xxh_prime1;
    ++p;
  }
  return xxh_avalanche(h);
}

}  // namespace fzmod::common
