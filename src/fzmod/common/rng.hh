// FZModules — deterministic, seedable PRNG used by dataset generators and
// property tests. splitmix64 for seeding, xoshiro256** for the stream;
// both are tiny, fast, and reproducible across platforms (unlike
// std::mt19937 + distributions, whose outputs differ between libstdc++
// versions for floating-point distributions).
#pragma once

#include <cmath>

#include "fzmod/common/types.hh"

namespace fzmod {

[[nodiscard]] constexpr u64 splitmix64(u64& state) {
  u64 z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class rng {
 public:
  explicit rng(u64 seed = 0x5eedf00dULL) { reseed(seed); }

  void reseed(u64 seed) {
    u64 sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  [[nodiscard]] u64 next_u64() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  [[nodiscard]] f64 next_f64() {
    return static_cast<f64>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] f64 uniform(f64 lo, f64 hi) {
    return lo + (hi - lo) * next_f64();
  }

  /// Standard normal via Box–Muller (cached second value).
  [[nodiscard]] f64 normal() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    f64 u1 = next_f64();
    f64 u2 = next_f64();
    // Guard against log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const f64 r = std::sqrt(-2.0 * std::log(u1));
    const f64 theta = 6.283185307179586 * u2;
    cached_ = r * std::sin(theta);
    have_cached_ = true;
    return r * std::cos(theta);
  }

  /// Uniform integer in [0, n).
  [[nodiscard]] u64 next_below(u64 n) { return n ? next_u64() % n : 0; }

 private:
  [[nodiscard]] static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  u64 s_[4]{};
  f64 cached_ = 0;
  bool have_cached_ = false;
};

}  // namespace fzmod
