// FZModules — bit-level helpers shared by the encoders.
#pragma once

#include <bit>
#include <cstring>

#include "fzmod/common/types.hh"

namespace fzmod {

/// Number of bits needed to represent `v` (0 -> 0 bits).
[[nodiscard]] constexpr u32 bit_width_u32(u32 v) {
  return static_cast<u32>(std::bit_width(v));
}

/// ZigZag map: interleaves signed values so small magnitudes become small
/// unsigned values (0,-1,1,-2,2 -> 0,1,2,3,4). Quantization deltas cluster
/// around zero, so this is the canonical pre-step for bit-plane encoders
/// (FZ-GPU's bitshuffle, cuSZp2's fix-length packing).
[[nodiscard]] constexpr u32 zigzag_encode(i32 v) {
  return (static_cast<u32>(v) << 1) ^ static_cast<u32>(v >> 31);
}

[[nodiscard]] constexpr i32 zigzag_decode(u32 v) {
  return static_cast<i32>(v >> 1) ^ -static_cast<i32>(v & 1);
}

[[nodiscard]] constexpr u64 zigzag_encode64(i64 v) {
  return (static_cast<u64>(v) << 1) ^ static_cast<u64>(v >> 63);
}

[[nodiscard]] constexpr i64 zigzag_decode64(u64 v) {
  return static_cast<i64>(v >> 1) ^ -static_cast<i64>(v & 1);
}

/// Append `nbits` (<= 57) of `value` to a byte-addressed bit cursor.
/// The caller guarantees the destination has 8 spare bytes past the cursor
/// (encoders over-allocate by a tail pad); writes use memcpy so unaligned
/// stores are well defined.
class bit_writer {
 public:
  explicit bit_writer(u8* dst) : dst_(dst) {}

  void put(u64 value, u32 nbits) {
    // Merge into the current partial byte via a 64-bit window.
    u64 window;
    std::memcpy(&window, dst_ + (bitpos_ >> 3), 8);
    window |= value << (bitpos_ & 7);
    std::memcpy(dst_ + (bitpos_ >> 3), &window, 8);
    bitpos_ += nbits;
  }

  [[nodiscard]] u64 bits_written() const { return bitpos_; }
  [[nodiscard]] u64 bytes_written() const { return (bitpos_ + 7) >> 3; }

 private:
  u8* dst_;
  u64 bitpos_ = 0;
};

/// Byte-reverse a 64-bit word (std::byteswap is C++23; this repo is C++20).
[[nodiscard]] constexpr u64 byteswap64(u64 v) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_bswap64(v);
#else
  v = ((v & 0x00ff00ff00ff00ffULL) << 8) | ((v >> 8) & 0x00ff00ff00ff00ffULL);
  v = ((v & 0x0000ffff0000ffffULL) << 16) |
      ((v >> 16) & 0x0000ffff0000ffffULL);
  return (v << 32) | (v >> 32);
#endif
}

/// 64-bit MSB-first bit reservoir: the Huffman decode fast path's reader.
///
/// The canonical decoder consumes an MSB-first bitstream (bit 7 of byte 0
/// first). The seed decode loop re-assembled a 4-byte window from scratch
/// for every symbol; this reader instead keeps the next 57..64 bits
/// left-aligned in one register and refills with a single unaligned
/// 64-bit load (+ byteswap on little-endian hosts) only when the window
/// runs low — the rapidgzip refill discipline. Between refills, peek and
/// consume are pure register ops.
///
/// Contract: the source must stay readable for 8 bytes past the highest
/// byte the cursor reaches (decoders pad their payload copies; callers
/// bound consumption with an external bit limit before each step).
class msb_bit_reservoir {
 public:
  explicit msb_bit_reservoir(const u8* src) : src_(src) { reload(); }

  /// Guarantee `nbits` (<= 57) peekable bits; at most one load.
  void ensure(u32 nbits) {
    if (avail_ < nbits) reload();
  }

  /// Top `nbits` (1..63) of the window, right-aligned. Requires a prior
  /// ensure(nbits) since the last consume.
  [[nodiscard]] u64 peek(u32 nbits) const { return window_ >> (64 - nbits); }

  /// Drop `nbits` (<= avail) from the front of the window.
  void consume(u32 nbits) {
    window_ <<= nbits;
    avail_ -= nbits;
    bitpos_ += nbits;
  }

  /// Absolute bit position from the start of the source.
  [[nodiscard]] u64 position() const { return bitpos_; }

 private:
  void reload() {
    u64 w;
    std::memcpy(&w, src_ + (bitpos_ >> 3), 8);
    if constexpr (std::endian::native == std::endian::little) {
      w = byteswap64(w);
    }
    window_ = w << (bitpos_ & 7);
    avail_ = static_cast<u32>(64 - (bitpos_ & 7));
  }

  const u8* src_;
  u64 window_ = 0;
  u64 bitpos_ = 0;
  u32 avail_ = 0;
};

/// Read `nbits` (<= 57) starting at an arbitrary bit offset. The source
/// must have 8 readable bytes past the last consumed position (decoders
/// pad their input copies).
class bit_reader {
 public:
  explicit bit_reader(const u8* src, u64 start_bit = 0)
      : src_(src), bitpos_(start_bit) {}

  [[nodiscard]] u64 get(u32 nbits) {
    u64 window;
    std::memcpy(&window, src_ + (bitpos_ >> 3), 8);
    window >>= (bitpos_ & 7);
    bitpos_ += nbits;
    return nbits >= 64 ? window : window & ((u64{1} << nbits) - 1);
  }

  /// Peek 32 bits without consuming (canonical Huffman decode path).
  [[nodiscard]] u64 peek(u32 nbits) const {
    u64 window;
    std::memcpy(&window, src_ + (bitpos_ >> 3), 8);
    window >>= (bitpos_ & 7);
    return window & ((u64{1} << nbits) - 1);
  }

  void skip(u32 nbits) { bitpos_ += nbits; }
  [[nodiscard]] u64 position() const { return bitpos_; }

 private:
  const u8* src_;
  u64 bitpos_ = 0;
};

}  // namespace fzmod
