// FZModules — strict numeric parsing for environment knobs and CLI flags.
//
// Every numeric FZMOD_* variable and CLI number goes through parse_u64:
// base-10, whole-string, no sign, no trailing garbage. A malformed value
// throws status::invalid_argument naming the variable/flag, matching the
// FZMOD_HUFF_TIER precedent (encoders/huffman.cc) — a typo'd knob must
// fail loudly, not silently fall back to a default the user did not ask
// for. env_u64 reads getenv() on every call so tests can setenv/unsetenv
// around it.
#pragma once

#include <charconv>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

#include "fzmod/common/error.hh"
#include "fzmod/common/types.hh"

namespace fzmod::common {

/// Parse a full string as an unsigned base-10 integer. `what` names the
/// source (env variable or CLI flag) in the error message. Rejects empty
/// strings, signs, whitespace, trailing garbage, and values > u64 max.
[[nodiscard]] inline u64 parse_u64(std::string_view s, std::string_view what) {
  u64 v = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v, 10);
  FZMOD_REQUIRE(ec != std::errc::result_out_of_range,
                status::invalid_argument,
                std::string(what) + ": value out of range: '" +
                    std::string(s) + "'");
  FZMOD_REQUIRE(ec == std::errc() && ptr == last && !s.empty(),
                status::invalid_argument,
                std::string(what) + ": expected an unsigned integer, got '" +
                    std::string(s) + "'");
  return v;
}

/// Read a numeric environment knob. Unset or empty returns `fallback`;
/// anything else must parse (parse_u64 semantics) or throws with the
/// variable name in the message.
[[nodiscard]] inline u64 env_u64(const char* name, u64 fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  return parse_u64(v, name);
}

/// Parse "A,B" as two strict unsigned integers (exactly one comma, each
/// side parse_u64). The CLI's `--range OFF,N` goes through here; the old
/// sscanf parser accepted trailing garbage and wrapped negatives.
[[nodiscard]] inline std::pair<u64, u64> parse_u64_pair(
    std::string_view s, std::string_view what) {
  const std::size_t comma = s.find(',');
  FZMOD_REQUIRE(comma != std::string_view::npos &&
                    s.find(',', comma + 1) == std::string_view::npos,
                status::invalid_argument,
                std::string(what) + ": expected A,B, got '" +
                    std::string(s) + "'");
  const u64 a = parse_u64(s.substr(0, comma), std::string(what) + " offset");
  const u64 b = parse_u64(s.substr(comma + 1), std::string(what) + " count");
  return {a, b};
}

}  // namespace fzmod::common
