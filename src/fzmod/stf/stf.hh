// FZModules — sequential task flow (STF) library, the CUDASTF substitute.
//
// Programming model (mirrors CUDASTF, Augonnet et al., SC'24):
//   - `logical_data<T>` is a handle to a datum that may have instances in
//     host and/or device memory; validity is tracked per space (MSI-style).
//   - A task declares its data accesses (`read` / `write` / `rw`) and an
//     execution place. Submission order + declared accesses imply the
//     dependency DAG: RAW (reader after last writer), WAR (writer after
//     readers), WAW (writer after writer). Nothing else orders tasks.
//   - The runtime schedules ready tasks onto the worker pool, inserts the
//     host<->device transfers each task's accesses require, and invalidates
//     stale instances after writes. Tasks with no path between them run
//     concurrently — this is the "task-level concurrency for compression
//     stages not data dependent on each other" the paper leverages (e.g.
//     decompression scattering outliers on the device while the CPU decodes
//     Huffman).
//   - Task bodies receive a device::stream plus one device::buffer<T>& per
//     declared dependency, so existing kernel modules drop in unchanged.
//
// `context::finalize()` drains the graph and rethrows the first task error.
#pragma once

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "fzmod/device/runtime.hh"

namespace fzmod::stf {

enum class access : u8 { read, write, rw };
enum class place : u8 { host, device };

namespace detail {

struct task_node {
  std::string name;
  std::function<void()> run;
  int pending = 0;
  bool done = false;
  std::vector<std::shared_ptr<task_node>> successors;
};

/// Untyped dependency-tracking state per logical datum (graph building is
/// single-threaded; the context lock covers completion propagation).
struct node_base {
  std::shared_ptr<task_node> last_writer;
  std::vector<std::shared_ptr<task_node>> readers_since_write;
};

template <class T>
struct node : node_base {
  explicit node(std::size_t n_) : n(n_) {}
  std::size_t n;
  std::mutex inst_mu;
  device::buffer<T> host_inst;
  device::buffer<T> dev_inst;
  bool valid_host = false;
  bool valid_dev = false;

  /// Make the instance in `p` usable for access mode `m`, copying from the
  /// other space when the task reads and the target instance is stale.
  /// Writers are ordered by the DAG, but two *readers* of one datum run
  /// concurrently and may both fault-in an instance here, so the coherence
  /// transition (allocate / copy / validity flip) takes the node lock. The
  /// returned reference is safe to use unlocked: concurrent tasks can only
  /// share it read-only.
  device::buffer<T>& prepare(access m, place p) {
    std::lock_guard lk(inst_mu);
    auto& inst = p == place::host ? host_inst : dev_inst;
    bool& valid = p == place::host ? valid_host : valid_dev;
    bool& other_valid = p == place::host ? valid_dev : valid_host;
    auto& other = p == place::host ? dev_inst : host_inst;
    if (inst.size() != n) {
      inst = device::buffer<T>(n, p == place::host ? device::space::host
                                                   : device::space::device);
    }
    if (m != access::write && !valid) {
      FZMOD_REQUIRE(other_valid, status::invalid_argument,
                    "stf: task reads uninitialized logical data");
      std::memcpy(inst.data(), other.data(), n * sizeof(T));
      auto& st = device::runtime::instance().stats();
      if (p == place::device) {
        st.h2d_bytes += n * sizeof(T);
      } else {
        st.d2h_bytes += n * sizeof(T);
      }
    }
    valid = true;
    if (m != access::read) other_valid = false;
    return inst;
  }
};

}  // namespace detail

template <class T>
class logical_data;

template <class T>
struct dep {
  logical_data<T>* ld;
  access mode;
};

template <class T>
[[nodiscard]] dep<T> read(logical_data<T>& l) {
  return {&l, access::read};
}
template <class T>
[[nodiscard]] dep<T> write(logical_data<T>& l) {
  return {&l, access::write};
}
template <class T>
[[nodiscard]] dep<T> rw(logical_data<T>& l) {
  return {&l, access::rw};
}

class context;

template <class T>
class logical_data {
 public:
  logical_data() = default;

  [[nodiscard]] std::size_t size() const { return node_ ? node_->n : 0; }

  /// Host view after finalize() (or before any task touches it). Triggers
  /// a D2H copy if the only valid instance is on the device.
  [[nodiscard]] std::span<const T> fetch_host() {
    auto& nd = *node_;
    nd.prepare(access::read, place::host);
    return nd.host_inst.span();
  }

 private:
  friend class context;
  explicit logical_data(std::shared_ptr<detail::node<T>> n)
      : node_(std::move(n)) {}
  std::shared_ptr<detail::node<T>> node_;
};

class context {
 public:
  context() = default;
  context(const context&) = delete;
  context& operator=(const context&) = delete;

  ~context() noexcept {
    try {
      finalize();
    } catch (...) {
      // finalize() already ran or the error was consumed elsewhere;
      // destructors must not throw.
    }
  }

  /// Fresh logical datum with no valid instance (first access must write).
  template <class T>
  [[nodiscard]] logical_data<T> make_data(std::size_t n) {
    return logical_data<T>(std::make_shared<detail::node<T>>(n));
  }

  /// Logical datum initialized from host memory (copied).
  template <class T>
  [[nodiscard]] logical_data<T> import(std::span<const T> host) {
    auto nd = std::make_shared<detail::node<T>>(host.size());
    nd->host_inst = device::buffer<T>(host.size(), device::space::host);
    std::memcpy(nd->host_inst.data(), host.data(), host.size_bytes());
    nd->valid_host = true;
    return logical_data<T>(std::move(nd));
  }

  /// Submit a task. `body` is invoked as
  ///   body(device::stream&, device::buffer<Ts>&...)
  /// with one buffer per dep, resident in `p`'s memory space and coherent
  /// for the declared access mode. The task runs as soon as its inferred
  /// dependencies complete.
  template <class F, class... Ts>
  void submit(std::string name, place p, F&& body, dep<Ts>... deps) {
    auto t = std::make_shared<detail::task_node>();
    t->name = std::move(name);
    t->run = [this, p, body = std::forward<F>(body),
              nodes = std::make_tuple(deps.ld->node_...),
              modes = std::array<access, sizeof...(Ts)>{deps.mode...}]() {
      device::stream s;
      // Index sequence pins prepare() to its declared mode (argument
      // evaluation order in a call is unspecified, so no running counter).
      [&]<std::size_t... I>(std::index_sequence<I...>) {
        body(s, std::get<I>(nodes)->prepare(modes[I], p)...);
      }(std::make_index_sequence<sizeof...(Ts)>{});
      s.sync();
    };

    std::vector<std::shared_ptr<detail::task_node>> preds;
    std::vector<std::string> trace_deps;
    auto add_pred = [&](const std::shared_ptr<detail::task_node>& pr) {
      if (!pr) return;
      // The logical edge exists (and is traced) even when the predecessor
      // already completed; only the scheduling edge is skipped then.
      trace_deps.push_back(pr->name);
      if (!pr->done) preds.push_back(pr);
    };
    bool ready;
    const u64 task_id = next_task_id_++;
    t->name += "#" + std::to_string(task_id);
    {
      std::lock_guard lk(mu_);
      (
          [&] {
            detail::node_base& nb = *deps.ld->node_;
            if (deps.mode == access::read) {
              add_pred(nb.last_writer);
              nb.readers_since_write.push_back(t);
            } else {
              add_pred(nb.last_writer);
              for (auto& r : nb.readers_since_write) add_pred(r);
              nb.readers_since_write.clear();
              nb.last_writer = t;
            }
          }(),
          ...);
      // Dedup predecessors so pending counts stay consistent.
      std::sort(preds.begin(), preds.end());
      preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
      t->pending = static_cast<int>(preds.size());
      for (auto& pr : preds) pr->successors.push_back(t);
      ++inflight_;
      // Record the inferred edges for dump_graphviz (debug tooling).
      std::sort(trace_deps.begin(), trace_deps.end());
      trace_deps.erase(std::unique(trace_deps.begin(), trace_deps.end()),
                       trace_deps.end());
      trace_.emplace_back(t->name, std::move(trace_deps));
      // Decide readiness under the lock: once a predecessor link exists, a
      // completing predecessor may enqueue t itself, and checking pending
      // after unlocking would double-enqueue.
      ready = preds.empty();
    }
    if (ready) enqueue(t);
  }

  /// Render the dependency graph the runtime inferred so far as Graphviz
  /// DOT (one node per submitted task, one edge per inferred ordering).
  /// Debug tooling: call any time; reflects submissions, not completion.
  [[nodiscard]] std::string dump_graphviz() {
    std::lock_guard lk(mu_);
    std::string dot = "digraph stf {\n  rankdir=TB;\n";
    for (const auto& [name, deps] : trace_) {
      dot += "  \"" + name + "\";\n";
      for (const auto& d : deps) {
        dot += "  \"" + d + "\" -> \"" + name + "\";\n";
      }
    }
    dot += "}\n";
    return dot;
  }

  /// Drain the graph; rethrows the first task exception.
  void finalize() {
    std::unique_lock lk(mu_);
    idle_cv_.wait(lk, [this] { return inflight_ == 0; });
    if (first_error_) {
      auto e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void enqueue(std::shared_ptr<detail::task_node> t) {
    device::runtime::instance().pool().submit_detached([this, t] {
      bool poisoned;
      {
        std::lock_guard lk(mu_);
        poisoned = first_error_ != nullptr;
      }
      if (!poisoned) {
        try {
          t->run();
        } catch (...) {
          std::lock_guard lk(mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
      }
      std::vector<std::shared_ptr<detail::task_node>> ready;
      {
        std::lock_guard lk(mu_);
        t->done = true;
        for (auto& succ : t->successors) {
          if (--succ->pending == 0) ready.push_back(succ);
        }
        // Break the ownership cycle (data node -> last_writer task ->
        // run-closure -> data node): a completed task needs neither its
        // closure nor its successor edges again.
        t->run = nullptr;
        t->successors.clear();
        if (--inflight_ == 0) idle_cv_.notify_all();
      }
      for (auto& r : ready) enqueue(r);
    });
  }

  std::mutex mu_;
  std::condition_variable idle_cv_;
  int inflight_ = 0;
  u64 next_task_id_ = 0;
  std::exception_ptr first_error_ = nullptr;
  std::vector<std::pair<std::string, std::vector<std::string>>> trace_;
};

}  // namespace fzmod::stf
