// FZModules — sequential task flow (STF) library, the CUDASTF substitute.
//
// Programming model (mirrors CUDASTF, Augonnet et al., SC'24):
//   - `logical_data<T>` is a handle to a datum that may have instances in
//     host and/or device memory; validity is tracked per space (MSI-style).
//   - A task declares its data accesses (`read` / `write` / `rw`) and an
//     execution place. Submission order + declared accesses imply the
//     dependency DAG: RAW (reader after last writer), WAR (writer after
//     readers), WAW (writer after writer). Nothing else orders tasks.
//   - The runtime schedules ready tasks onto the worker pool, inserts the
//     host<->device transfers each task's accesses require, and invalidates
//     stale instances after writes. Tasks with no path between them run
//     concurrently — this is the "task-level concurrency for compression
//     stages not data dependent on each other" the paper leverages (e.g.
//     decompression scattering outliers on the device while the CPU decodes
//     Huffman).
//   - Task bodies receive a device::stream plus one device::buffer<T>& per
//     declared dependency, so existing kernel modules drop in unchanged.
//
// `context::finalize()` drains the graph and rethrows the first task error.
#pragma once

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "fzmod/device/runtime.hh"

namespace fzmod::stf {

/// Declared access mode of a task on one logical datum; the three modes
/// drive the RAW/WAR/WAW edges the runtime infers.
enum class access : u8 { read, write, rw };

/// Execution place of a task: which memory space its buffers resolve in.
enum class place : u8 { host, device };

namespace detail {

struct task_node {
  std::string name;
  std::function<void()> run;
  int pending = 0;
  bool done = false;
  std::vector<std::shared_ptr<task_node>> successors;
};

/// Untyped dependency-tracking state per logical datum (graph building is
/// single-threaded; the context lock covers completion propagation).
struct node_base {
  std::string label;  ///< datum name (user-given or generated "ld<K>")
  std::shared_ptr<task_node> last_writer;
  std::vector<std::shared_ptr<task_node>> readers_since_write;
};

template <class T>
struct node : node_base {
  explicit node(std::size_t n_) : n(n_) {}
  std::size_t n;
  std::mutex inst_mu;
  device::buffer<T> host_inst;
  device::buffer<T> dev_inst;
  bool valid_host = false;
  bool valid_dev = false;

  /// Make the instance in `p` usable for access mode `m`, copying from the
  /// other space when the task reads and the target instance is stale.
  /// Writers are ordered by the DAG, but two *readers* of one datum run
  /// concurrently and may both fault-in an instance here, so the coherence
  /// transition (allocate / copy / validity flip) takes the node lock. The
  /// returned reference is safe to use unlocked: concurrent tasks can only
  /// share it read-only.
  device::buffer<T>& prepare(access m, place p) {
    std::lock_guard lk(inst_mu);
    auto& inst = p == place::host ? host_inst : dev_inst;
    bool& valid = p == place::host ? valid_host : valid_dev;
    bool& other_valid = p == place::host ? valid_dev : valid_host;
    auto& other = p == place::host ? dev_inst : host_inst;
    if (inst.size() != n) {
      inst = device::buffer<T>(n, p == place::host ? device::space::host
                                                   : device::space::device);
    }
    if (m != access::write && !valid) {
      FZMOD_REQUIRE(other_valid, status::invalid_argument,
                    "stf: task reads uninitialized logical data");
      const u64 t0 = trace::enabled() ? trace::now_ns() : 0;
      std::memcpy(inst.data(), other.data(), n * sizeof(T));
      auto& st = device::runtime::instance().stats();
      if (p == place::device) {
        st.h2d_bytes += n * sizeof(T);
      } else {
        st.d2h_bytes += n * sizeof(T);
      }
      if (t0) {
        // The automatic coherence transfer this prepare() inserted — the
        // "runtime moves data for you" cost the timeline should show.
        trace::complete(
            "stf",
            (p == place::device ? "fault.h2d:" : "fault.d2h:") + label, t0,
            trace::now_ns() - t0, 0, static_cast<f64>(n * sizeof(T)));
      }
    }
    valid = true;
    if (m != access::read) other_valid = false;
    return inst;
  }
};

}  // namespace detail

template <class T>
class logical_data;

/// One declared dependency of a task: which logical datum, in which
/// access mode. Built with the read()/write()/rw() helpers below.
template <class T>
struct dep {
  logical_data<T>* ld;
  access mode;
};

/// Declare a read access: the task sees the datum's current contents and
/// orders after its last writer.
template <class T>
[[nodiscard]] dep<T> read(logical_data<T>& l) {
  return {&l, access::read};
}
/// Declare a write access: contents on entry are unspecified; the task
/// orders after the last writer and all readers since.
template <class T>
[[nodiscard]] dep<T> write(logical_data<T>& l) {
  return {&l, access::write};
}
/// Declare a read-modify-write access (write ordering, read coherence).
template <class T>
[[nodiscard]] dep<T> rw(logical_data<T>& l) {
  return {&l, access::rw};
}

class context;

template <class T>
class logical_data {
 public:
  logical_data() = default;

  [[nodiscard]] std::size_t size() const { return node_ ? node_->n : 0; }

  /// Host view after finalize() (or before any task touches it). Triggers
  /// a D2H copy if the only valid instance is on the device.
  [[nodiscard]] std::span<const T> fetch_host() {
    auto& nd = *node_;
    nd.prepare(access::read, place::host);
    return nd.host_inst.span();
  }

 private:
  friend class context;
  explicit logical_data(std::shared_ptr<detail::node<T>> n)
      : node_(std::move(n)) {}
  std::shared_ptr<detail::node<T>> node_;
};

class context {
 public:
  context() = default;
  context(const context&) = delete;
  context& operator=(const context&) = delete;

  ~context() noexcept {
    try {
      finalize();
    } catch (...) {
      // finalize() already ran or the error was consumed elsewhere;
      // destructors must not throw.
    }
  }

  /// Fresh logical datum with no valid instance (first access must write).
  /// `name` labels the datum in trace output and the DOT dump; unnamed
  /// data get a generated "ld<K>" label.
  template <class T>
  [[nodiscard]] logical_data<T> make_data(std::size_t n,
                                          std::string name = {}) {
    auto nd = std::make_shared<detail::node<T>>(n);
    nd->label = resolve_label(std::move(name));
    return logical_data<T>(std::move(nd));
  }

  /// Logical datum initialized from host memory (copied).
  template <class T>
  [[nodiscard]] logical_data<T> import(std::span<const T> host,
                                       std::string name = {}) {
    auto nd = std::make_shared<detail::node<T>>(host.size());
    nd->label = resolve_label(std::move(name));
    nd->host_inst = device::buffer<T>(host.size(), device::space::host);
    std::memcpy(nd->host_inst.data(), host.data(), host.size_bytes());
    nd->valid_host = true;
    return logical_data<T>(std::move(nd));
  }

  /// Submit a task. `body` is invoked as
  ///   body(device::stream&, device::buffer<Ts>&...)
  /// with one buffer per dep, resident in `p`'s memory space and coherent
  /// for the declared access mode. The task runs as soon as its inferred
  /// dependencies complete.
  template <class F, class... Ts>
  void submit(std::string name, place p, F&& body, dep<Ts>... deps) {
    auto t = std::make_shared<detail::task_node>();
    t->name = std::move(name);
    t->run = [this, p, body = std::forward<F>(body),
              nodes = std::make_tuple(deps.ld->node_...),
              modes = std::array<access, sizeof...(Ts)>{deps.mode...}]() {
      device::stream s;
      // Index sequence pins prepare() to its declared mode (argument
      // evaluation order in a call is unspecified, so no running counter).
      [&]<std::size_t... I>(std::index_sequence<I...>) {
        body(s, std::get<I>(nodes)->prepare(modes[I], p)...);
      }(std::make_index_sequence<sizeof...(Ts)>{});
      s.sync();
    };

    std::vector<std::shared_ptr<detail::task_node>> preds;
    std::vector<std::string> trace_deps;
    auto add_pred = [&](const std::shared_ptr<detail::task_node>& pr) {
      if (!pr) return;
      // The logical edge exists (and is traced) even when the predecessor
      // already completed; only the scheduling edge is skipped then.
      trace_deps.push_back(pr->name);
      if (!pr->done) preds.push_back(pr);
    };
    bool ready;
    const u64 task_id = next_task_id_++;
    t->name += '#';
    t->name += std::to_string(task_id);
    std::string accesses;  // e.g. "r:data w:quant" — the declared set
    {
      std::lock_guard lk(mu_);
      (
          [&] {
            detail::node_base& nb = *deps.ld->node_;
            if (!accesses.empty()) accesses += ' ';
            accesses += deps.mode == access::read    ? "r:"
                        : deps.mode == access::write ? "w:"
                                                     : "rw:";
            accesses += nb.label;
            if (deps.mode == access::read) {
              add_pred(nb.last_writer);
              nb.readers_since_write.push_back(t);
            } else {
              add_pred(nb.last_writer);
              for (auto& r : nb.readers_since_write) add_pred(r);
              nb.readers_since_write.clear();
              nb.last_writer = t;
            }
          }(),
          ...);
      // Dedup predecessors so pending counts stay consistent.
      std::sort(preds.begin(), preds.end());
      preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
      t->pending = static_cast<int>(preds.size());
      for (auto& pr : preds) pr->successors.push_back(t);
      ++inflight_;
      // Record the inferred node (with its declared access set) and edges
      // for dump_graphviz / the trace DAG dump.
      std::sort(trace_deps.begin(), trace_deps.end());
      trace_deps.erase(std::unique(trace_deps.begin(), trace_deps.end()),
                       trace_deps.end());
      trace_.push_back({t->name, std::move(accesses), std::move(trace_deps)});
      // Decide readiness under the lock: once a predecessor link exists, a
      // completing predecessor may enqueue t itself, and checking pending
      // after unlocking would double-enqueue.
      ready = preds.empty();
    }
    if (ready) enqueue(t);
  }

  /// Render the dependency graph the runtime inferred so far as Graphviz
  /// DOT: one node per submitted task (labelled with its declared
  /// read/write set), one edge per inferred ordering. Debug tooling: call
  /// any time; reflects submissions, not completion.
  [[nodiscard]] std::string dump_graphviz() {
    std::lock_guard lk(mu_);
    std::string dot = "digraph stf {\n  rankdir=TB;\n";
    for (const auto& r : trace_) {
      dot += "  \"" + r.name + "\" [label=\"" + r.name;
      if (!r.accesses.empty()) dot += "\\n" + r.accesses;
      dot += "\"];\n";
      for (const auto& d : r.deps) {
        dot += "  \"" + d + "\" -> \"" + r.name + "\";\n";
      }
    }
    dot += "}\n";
    return dot;
  }

  /// Drain the graph; rethrows the first task exception. While tracing is
  /// enabled, the inferred DAG is published to trace::set_last_dag so the
  /// CLI's --trace-dot (and tests) can read it after the run.
  void finalize() {
    std::exception_ptr err;
    bool have_tasks;
    {
      std::unique_lock lk(mu_);
      idle_cv_.wait(lk, [this] { return inflight_ == 0; });
      err = first_error_;
      first_error_ = nullptr;
      have_tasks = !trace_.empty();
    }
    // Outside the lock: dump_graphviz re-acquires it.
    if (have_tasks && trace::enabled()) {
      trace::set_last_dag(dump_graphviz());
    }
    if (err) std::rethrow_exception(err);
  }

 private:
  void enqueue(std::shared_ptr<detail::task_node> t) {
    device::runtime::instance().pool().submit_detached([this, t] {
      bool poisoned;
      {
        std::lock_guard lk(mu_);
        poisoned = first_error_ != nullptr;
      }
      if (!poisoned) {
        try {
          // The task's execution interval, labelled with its name — this
          // is the per-task timeline the DOT dump's nodes map onto.
          trace::span_scope sp("stf", t->name);
          t->run();
        } catch (...) {
          std::lock_guard lk(mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
      }
      std::vector<std::shared_ptr<detail::task_node>> ready;
      {
        std::lock_guard lk(mu_);
        t->done = true;
        for (auto& succ : t->successors) {
          if (--succ->pending == 0) ready.push_back(succ);
        }
        // Break the ownership cycle (data node -> last_writer task ->
        // run-closure -> data node): a completed task needs neither its
        // closure nor its successor edges again.
        t->run = nullptr;
        t->successors.clear();
        if (--inflight_ == 0) idle_cv_.notify_all();
      }
      for (auto& r : ready) enqueue(r);
    });
  }

  [[nodiscard]] std::string resolve_label(std::string name) {
    // Graph building is single-threaded (same contract as submit), so a
    // plain counter suffices.
    return name.empty() ? "ld" + std::to_string(next_data_id_++)
                        : std::move(name);
  }

  /// One submitted task as dump_graphviz renders it: name, declared
  /// access set, inferred predecessor names.
  struct task_record {
    std::string name;
    std::string accesses;
    std::vector<std::string> deps;
  };

  std::mutex mu_;
  std::condition_variable idle_cv_;
  int inflight_ = 0;
  u64 next_task_id_ = 0;
  u64 next_data_id_ = 0;
  std::exception_ptr first_error_ = nullptr;
  std::vector<task_record> trace_;
};

}  // namespace fzmod::stf
