// FZModules — multi-field snapshot container.
//
// Simulations dump snapshots of many named fields at once (CESM-ATM: 33
// fields; HACC: 6). This container bundles one compressed archive per
// field behind a table of contents, so a snapshot is a single blob/file
// with random access per field. Each field may use its own pipeline
// configuration — the per-variable tailoring the framework exists for.
//
// Format: [magic|count] + TOC (name, dims, dtype, archive extent) +
// concatenated standard archives. Archives are the self-describing
// pipeline format, so a reader needs no configuration.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fzmod/core/chunked.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/core/reader.hh"

namespace fzmod::core {

struct snapshot_entry {
  std::string name;
  dims3 dims;
  dtype type = dtype::f32;
  u64 offset = 0;  // into the snapshot blob
  u64 bytes = 0;   // archive size
};

/// Incrementally compress fields into a snapshot blob.
class snapshot_writer {
 public:
  /// `defaults` is the pipeline used for fields added without an override.
  explicit snapshot_writer(pipeline_config defaults = {});

  /// Compress and append a named f32 field. Field names must be unique
  /// and at most 255 bytes.
  void add(std::string_view name, std::span<const f32> data, dims3 dims,
           std::optional<pipeline_config> override = std::nullopt);

  /// Opt in to chunk-parallel compression for subsequently added fields:
  /// fields spanning more than one chunk are stored as v3 chunk
  /// containers (read()/verify() handle both forms transparently);
  /// single-chunk fields stay plain v2 archives.
  void set_chunking(chunked_options opt) { chunking_ = opt; }

  [[nodiscard]] std::size_t field_count() const { return entries_.size(); }

  /// Serialize TOC + archives. The writer can keep adding afterwards
  /// (finish is non-destructive).
  [[nodiscard]] std::vector<u8> finish() const;

 private:
  pipeline_config defaults_;
  std::optional<chunked_options> chunking_;
  std::vector<snapshot_entry> entries_;
  std::vector<std::vector<u8>> archives_;
};

/// Random-access reader over a snapshot blob (borrowed; the blob must
/// outlive the reader).
class snapshot_reader {
 public:
  explicit snapshot_reader(std::span<const u8> blob);

  [[nodiscard]] const std::vector<snapshot_entry>& entries() const {
    return entries_;
  }
  [[nodiscard]] bool contains(std::string_view name) const;

  /// Decompress one field by name. Throws status::invalid_argument for
  /// unknown names.
  [[nodiscard]] std::vector<f32> read(std::string_view name) const;

  /// Read a sub-extent of one field without decoding the rest of it (v3
  /// chunk containers touch only covering chunks; plain archives decode
  /// once and slice). One-shot — repeated range reads of the same field
  /// should hold a make_reader() instead.
  [[nodiscard]] std::vector<f32> read_range(std::string_view name,
                                            u64 elem_offset,
                                            u64 elem_count) const;

  /// Open a seekable reader over one field's archive (LRU chunk cache +
  /// prefetch; see core/reader.hh). The snapshot blob must outlive the
  /// reader, which borrows the field's archive bytes.
  [[nodiscard]] reader<f32> make_reader(std::string_view name,
                                        reader_options opt = {},
                                        pipeline_config cfg = {}) const;

  /// The raw archive bytes of one field (for re-packing or inspection).
  [[nodiscard]] std::span<const u8> archive(std::string_view name) const;

  /// Integrity-check one field's archive without decoding it (see
  /// core::verify_archive). Throws status::invalid_argument for unknown
  /// names, status::corrupt_archive for structural damage.
  [[nodiscard]] archive_verify_report verify(std::string_view name) const;

  /// Integrity-check every field. Returns true iff all digests match.
  [[nodiscard]] bool verify_all() const;

 private:
  const snapshot_entry& find(std::string_view name) const;
  std::span<const u8> blob_;
  std::vector<snapshot_entry> entries_;
};

}  // namespace fzmod::core
