// FZModules — out-of-core streaming compression implementation. See
// stream_io.hh for the model and docs/STREAMING.md for the buffering,
// memory-cap, and resume semantics.

#include "fzmod/core/stream_io.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "fzmod/common/env.hh"
#include "fzmod/kernels/chunked_hash.hh"
#include "fzmod/spec/spec.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod::core {

namespace {

template <class T>
[[nodiscard]] dtype dtype_of();
template <>
dtype dtype_of<f32>() {
  return dtype::f32;
}
template <>
dtype dtype_of<f64>() {
  return dtype::f64;
}

// --- POSIX plumbing --------------------------------------------------------

[[nodiscard]] int open_or_throw(const std::string& path, int flags) {
  const int fd = ::open(path.c_str(), flags, 0644);
  FZMOD_REQUIRE(fd >= 0, status::invalid_argument,
                "cannot open '" + path + "': " + std::strerror(errno));
  return fd;
}

void pread_all(int fd, u8* dst, u64 off, std::size_t n,
               const std::string& path) {
  while (n > 0) {
    const ssize_t r = ::pread(fd, dst, n, static_cast<off_t>(off));
    FZMOD_REQUIRE(r > 0, status::invalid_argument,
                  "short read from '" + path + "' at byte " +
                      std::to_string(off));
    dst += r;
    off += static_cast<u64>(r);
    n -= static_cast<std::size_t>(r);
  }
}

void write_all(int fd, const u8* src, std::size_t n,
               const std::string& path) {
  while (n > 0) {
    const ssize_t r = ::write(fd, src, n);
    FZMOD_REQUIRE(r > 0, status::invalid_argument,
                  "write failed for '" + path +
                      "': " + std::strerror(errno));
    src += r;
    n -= static_cast<std::size_t>(r);
  }
}

/// File size, or -1 when the path does not exist (any other stat failure
/// throws — a permission problem must not masquerade as a fresh start).
[[nodiscard]] i64 file_size_of(const std::string& path) {
  struct ::stat sb{};
  if (::stat(path.c_str(), &sb) != 0) {
    FZMOD_REQUIRE(errno == ENOENT, status::invalid_argument,
                  "cannot stat '" + path + "': " + std::strerror(errno));
    return -1;
  }
  return static_cast<i64>(sb.st_size);
}

void truncate_or_throw(const std::string& path, u64 size) {
  FZMOD_REQUIRE(::truncate(path.c_str(), static_cast<off_t>(size)) == 0,
                status::invalid_argument,
                "cannot truncate '" + path +
                    "': " + std::strerror(errno));
}

/// chunked_hash of a byte range of a file, streamed in windows.
[[nodiscard]] u64 hash_file_range(int fd, u64 base, u64 n,
                                  const std::string& path) {
  return kernels::chunked_hash_stream(
      n, [&](u8* dst, u64 off, std::size_t len) {
        pread_all(fd, dst, base + off, len, path);
      });
}

// --- staged file source ----------------------------------------------------

/// The read half of the double buffer: one reader thread walks the chunk
/// plan in order, filling up to `slots` staging buffers ahead of the
/// scheduler. Scheduler workers fetch exact planned extents out of the
/// staging map (blocking only when the prefetch has not reached the chunk
/// yet — a read stall); anything else falls back to a direct pread.
/// Every chunk is claimed exactly once and fetched promptly after its
/// claim, so filled slots always drain and the bounded map cannot
/// deadlock even at one slot.
class staged_file_source {
 public:
  staged_file_source(std::string path, std::size_t elem_size,
                     std::span<const chunk_extent> extents, u64 first,
                     u64 slots)
      : path_(std::move(path)),
        elem_size_(elem_size),
        extents_(extents),
        slots_(std::max<u64>(1, slots)),
        delay_ms_(common::env_u64("FZMOD_STREAM_DELAY_MS", 0)),
        fd_(open_or_throw(path_, O_RDONLY)),
        first_(first) {
    reader_ = std::thread([this] { run(); });
  }

  staged_file_source(const staged_file_source&) = delete;
  staged_file_source& operator=(const staged_file_source&) = delete;

  ~staged_file_source() {
    {
      std::lock_guard lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    reader_.join();
    ::close(fd_);
  }

  /// Scheduler source entry (element units). Exact planned extents go
  /// through staging; anything else is a direct positioned read.
  void read(u8* dst, u64 elem_offset, std::size_t n_elems) {
    const std::size_t idx = find_extent(elem_offset);
    if (idx < extents_.size() && extents_[idx].offset == elem_offset &&
        extents_[idx].len == n_elems) {
      fetch(idx, dst);
      return;
    }
    pread_all(fd_, dst, elem_offset * elem_size_, n_elems * elem_size_,
              path_);
    std::lock_guard lk(mu_);
    bytes_read_ += n_elems * elem_size_;
  }

  [[nodiscard]] u64 stalls() const {
    std::lock_guard lk(mu_);
    return stalls_;
  }
  [[nodiscard]] u64 bytes_read() const {
    std::lock_guard lk(mu_);
    return bytes_read_;
  }
  [[nodiscard]] u64 peak_bytes() const {
    std::lock_guard lk(mu_);
    return peak_bytes_;
  }

 private:
  [[nodiscard]] std::size_t find_extent(u64 elem_offset) const {
    std::size_t lo = 0, hi = extents_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (extents_[mid].offset < elem_offset) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  void fetch(std::size_t idx, u8* dst) {
    std::unique_lock lk(mu_);
    if (!filled_.count(idx) && !err_) {
      ++stalls_;
      cv_.wait(lk, [&] { return err_ || filled_.count(idx) != 0; });
    }
    if (!filled_.count(idx)) std::rethrow_exception(err_);
    const std::vector<u8> buf = std::move(filled_.find(idx)->second);
    filled_.erase(idx);
    cur_bytes_ -= buf.size();
    lk.unlock();
    cv_.notify_all();
    std::memcpy(dst, buf.data(), buf.size());
  }

  void run() {
    try {
      for (u64 i = first_; i < extents_.size(); ++i) {
        {
          std::unique_lock lk(mu_);
          cv_.wait(lk, [&] { return stop_ || filled_.size() < slots_; });
          if (stop_) return;
        }
        // Test/CI knob: an artificial per-chunk read delay so smoke tests
        // can SIGKILL a compression deterministically mid-stream.
        if (delay_ms_ > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
        }
        const chunk_extent& e = extents_[i];
        std::vector<u8> buf(e.len * elem_size_);
        pread_all(fd_, buf.data(), e.offset * elem_size_, buf.size(),
                  path_);
        std::lock_guard lk(mu_);
        if (stop_) return;
        cur_bytes_ += buf.size();
        peak_bytes_ = std::max(peak_bytes_, cur_bytes_);
        bytes_read_ += buf.size();
        filled_.emplace(i, std::move(buf));
        cv_.notify_all();
      }
    } catch (...) {
      std::lock_guard lk(mu_);
      err_ = std::current_exception();
      cv_.notify_all();
    }
  }

  const std::string path_;
  const std::size_t elem_size_;
  const std::span<const chunk_extent> extents_;
  const u64 slots_;
  const u64 delay_ms_;
  const int fd_;
  const u64 first_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<u64, std::vector<u8>> filled_;  // staged, not yet consumed
  u64 cur_bytes_ = 0;
  u64 peak_bytes_ = 0;
  u64 bytes_read_ = 0;
  u64 stalls_ = 0;
  bool stop_ = false;
  std::exception_ptr err_;
  std::thread reader_;
};

// --- ordered file sink -----------------------------------------------------

/// The write half: commits enqueue copies under a byte budget (a full
/// queue blocks the committing worker — a write stall) and one writer
/// thread drains them to the file in order. An empty queue always admits
/// one item regardless of size, so a budget smaller than one chunk
/// archive degrades to synchronous writing instead of deadlocking.
class ordered_file_sink {
 public:
  ordered_file_sink(std::string path, bool append, u64 budget)
      : path_(std::move(path)),
        budget_(std::max<u64>(1, budget)),
        fd_(open_or_throw(path_, O_WRONLY | O_CREAT |
                                     (append ? O_APPEND : O_TRUNC))) {
    writer_ = std::thread([this] { run(); });
  }

  ordered_file_sink(const ordered_file_sink&) = delete;
  ordered_file_sink& operator=(const ordered_file_sink&) = delete;

  ~ordered_file_sink() {
    if (!joined_) {
      {
        std::lock_guard lk(mu_);
        done_ = true;
      }
      cv_work_.notify_all();
      writer_.join();
    }
    ::close(fd_);
  }

  void write(std::span<const u8> bytes) {
    std::unique_lock lk(mu_);
    if (err_) std::rethrow_exception(err_);
    if (!q_.empty() && q_bytes_ + bytes.size() > budget_) {
      ++stalls_;
      cv_space_.wait(lk, [&] {
        return err_ || q_.empty() || q_bytes_ + bytes.size() <= budget_;
      });
      if (err_) std::rethrow_exception(err_);
    }
    q_.emplace_back(bytes.begin(), bytes.end());
    q_bytes_ += bytes.size();
    peak_bytes_ = std::max(peak_bytes_, q_bytes_);
    bytes_written_ += bytes.size();
    cv_work_.notify_one();
  }

  /// Drain, join, fsync. IO failures from the writer thread rethrow here.
  void finish() {
    {
      std::lock_guard lk(mu_);
      done_ = true;
    }
    cv_work_.notify_all();
    writer_.join();
    joined_ = true;
    if (err_) std::rethrow_exception(err_);
    FZMOD_REQUIRE(::fsync(fd_) == 0, status::invalid_argument,
                  "fsync failed for '" + path_ +
                      "': " + std::strerror(errno));
  }

  [[nodiscard]] u64 stalls() const {
    std::lock_guard lk(mu_);
    return stalls_;
  }
  [[nodiscard]] u64 bytes_written() const {
    std::lock_guard lk(mu_);
    return bytes_written_;
  }
  [[nodiscard]] u64 peak_bytes() const {
    std::lock_guard lk(mu_);
    return peak_bytes_;
  }

 private:
  void run() {
    for (;;) {
      std::vector<u8> buf;
      {
        std::unique_lock lk(mu_);
        cv_work_.wait(lk, [&] { return done_ || !q_.empty(); });
        if (q_.empty()) return;  // done_ and drained
        buf = std::move(q_.front());
        q_.pop_front();
      }
      try {
        write_all(fd_, buf.data(), buf.size(), path_);
      } catch (...) {
        std::lock_guard lk(mu_);
        err_ = std::current_exception();
        cv_space_.notify_all();
        return;
      }
      {
        std::lock_guard lk(mu_);
        q_bytes_ -= buf.size();
      }
      cv_space_.notify_all();
    }
  }

  const std::string path_;
  const u64 budget_;
  const int fd_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_space_;
  std::deque<std::vector<u8>> q_;
  u64 q_bytes_ = 0;
  u64 peak_bytes_ = 0;
  u64 bytes_written_ = 0;
  u64 stalls_ = 0;
  bool done_ = false;
  bool joined_ = false;
  std::exception_ptr err_;
  std::thread writer_;
};

// --- resume journal --------------------------------------------------------

/// Pipeline-identity digest binding a resume journal to one exact
/// configuration: the canonical spec text plus every knob that changes
/// output bytes. Resuming under ANY differing knob recompresses from
/// scratch rather than splicing incompatible chunks.
template <class T>
[[nodiscard]] u64 stream_config_digest(const pipeline_config& cfg,
                                       dims3 dims, u64 chunk_elems) {
  std::string s = spec::to_string(spec::from_config(cfg));
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "|eb=%.17g|mode=%d|radius=%d|sec=%d|type=%d"
                "|dims=%llu,%llu,%llu|chunk=%llu",
                cfg.eb.eb, static_cast<int>(cfg.eb.mode), cfg.radius,
                cfg.secondary ? 1 : 0,
                static_cast<int>(dtype_of<T>()),
                static_cast<unsigned long long>(dims.x),
                static_cast<unsigned long long>(dims.y),
                static_cast<unsigned long long>(dims.z),
                static_cast<unsigned long long>(chunk_elems));
  s += buf;
  return common::xxhash64(s.data(), s.size(), 0);
}

template <class T>
[[nodiscard]] fmt::fzr_header make_journal_header(dims3 dims, u64 nchunks,
                                                  u64 chunk_elems,
                                                  u64 config_digest) {
  fmt::fzr_header h{};
  h.magic = fmt::fzr_magic;
  h.version = fmt::fzr_journal_version;
  h.type = static_cast<u8>(dtype_of<T>());
  h.pad = 0;
  h.dims[0] = dims.x;
  h.dims[1] = dims.y;
  h.dims[2] = dims.z;
  h.nchunks = nchunks;
  h.chunk_elems = chunk_elems;
  h.config_digest = config_digest;
  h.digest_header = fmt::fzr_header_digest(h);
  return h;
}

/// Append handle for committed-chunk records. Records are not fsynced
/// individually: resume validation re-hashes the output bytes, so a lost
/// or torn tail only shortens the salvaged prefix.
class journal_writer {
 public:
  journal_writer(const std::string& path, bool append)
      : path_(path),
        fd_(open_or_throw(path, O_WRONLY | (append ? O_APPEND : 0))) {}
  journal_writer(const journal_writer&) = delete;
  journal_writer& operator=(const journal_writer&) = delete;
  ~journal_writer() { ::close(fd_); }

  void append(u64 index, const fmt::chunk_dir_entry& e) {
    fmt::fzr_record r{};
    r.entry = e;
    r.record_digest = fmt::fzr_record_digest(e, index);
    write_all(fd_, reinterpret_cast<const u8*>(&r), sizeof(r), path_);
  }

 private:
  const std::string path_;
  const int fd_;
};

void create_journal(const std::string& path, const fmt::fzr_header& hdr) {
  const int fd = open_or_throw(path, O_WRONLY | O_CREAT | O_TRUNC);
  try {
    write_all(fd, reinterpret_cast<const u8*>(&hdr), sizeof(hdr), path);
    FZMOD_REQUIRE(::fsync(fd) == 0, status::invalid_argument,
                  "fsync failed for '" + path +
                      "': " + std::strerror(errno));
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

struct salvage {
  u64 chunks = 0;                             // validated prefix length
  std::vector<fmt::chunk_dir_entry> entries;  // their directory entries
};

/// Replay a resume journal against the partial output file. A record
/// counts only while (a) it matches the chunk plan position-for-position,
/// (b) its archive extent is in-range for the file, and (c) the bytes on
/// disk hash to the entry digest — the first failure ends the salvaged
/// prefix. Returns zero chunks on any header-level mismatch (different
/// config, different field, damaged journal, missing files).
template <class T>
[[nodiscard]] salvage try_salvage(const std::string& out_path,
                                  const std::string& journal_path,
                                  std::span<const chunk_extent> extents,
                                  dims3 dims, u64 chunk_elems,
                                  u64 config_digest) {
  salvage s;
  const i64 jsize = file_size_of(journal_path);
  const i64 osize = file_size_of(out_path);
  if (jsize < static_cast<i64>(sizeof(fmt::fzr_header)) ||
      osize < static_cast<i64>(sizeof(fmt::chunk_header_v3))) {
    return s;
  }
  std::vector<u8> jbytes(static_cast<std::size_t>(jsize));
  {
    const int jfd = open_or_throw(journal_path, O_RDONLY);
    try {
      pread_all(jfd, jbytes.data(), 0, jbytes.size(), journal_path);
    } catch (...) {
      ::close(jfd);
      throw;
    }
    ::close(jfd);
  }
  fmt::fzr_view jv;
  if (!fmt::parse_resume_journal(jbytes, jv)) return s;
  if (jv.hdr.type != static_cast<u8>(dtype_of<T>()) ||
      jv.hdr.dims[0] != dims.x || jv.hdr.dims[1] != dims.y ||
      jv.hdr.dims[2] != dims.z || jv.hdr.nchunks != extents.size() ||
      jv.hdr.chunk_elems != chunk_elems ||
      jv.hdr.config_digest != config_digest) {
    return s;
  }

  const int fd = open_or_throw(out_path, O_RDONLY);
  try {
    // The on-disk container header must be exactly what this run would
    // write (it is deterministic), or the file is not ours to splice.
    fmt::chunk_header_v3 want{};
    want.magic = fmt::chunk_magic_v3;
    want.version = fmt::chunk_container_version;
    want.type = static_cast<u8>(dtype_of<T>());
    want.dims[0] = dims.x;
    want.dims[1] = dims.y;
    want.dims[2] = dims.z;
    want.nchunks = extents.size();
    want.chunk_elems = chunk_elems;
    want.digest_header = fmt::chunk_header_digest(want);
    fmt::chunk_header_v3 got{};
    pread_all(fd, reinterpret_cast<u8*>(&got), 0, sizeof(got), out_path);
    if (std::memcmp(&want, &got, sizeof(want)) != 0) {
      ::close(fd);
      return s;
    }

    const u64 base = sizeof(fmt::chunk_header_v3);
    u64 arch_at = 0;
    std::vector<u8> buf;
    for (std::size_t k = 0; k < jv.records.size(); ++k) {
      const fmt::chunk_dir_entry& e = jv.records[k];
      if (e.raw_offset != extents[k].offset ||
          e.raw_len != extents[k].len || e.archive_offset != arch_at ||
          e.archive_bytes == 0 ||
          base + e.archive_offset + e.archive_bytes >
              static_cast<u64>(osize)) {
        break;
      }
      buf.resize(static_cast<std::size_t>(e.archive_bytes));
      pread_all(fd, buf.data(), base + e.archive_offset, buf.size(),
                out_path);
      if (kernels::chunked_hash(buf) != e.digest) break;
      s.entries.push_back(e);
      arch_at += e.archive_bytes;
      ++s.chunks;
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  return s;
}

void export_stream_counters(const stream_io_stats& st) {
  trace::counter("stream.stall.read", static_cast<f64>(st.read_stalls));
  trace::counter("stream.stall.write", static_cast<f64>(st.write_stalls));
  trace::counter("stream.peak_bytes", static_cast<f64>(st.peak_bytes));
}

/// Validate one raw input file against its declared dims.
template <class T>
void require_input(const std::string& path, dims3 dims) {
  FZMOD_REQUIRE(!dims.len_invalid(), status::invalid_argument,
                "stream compress: invalid dims for '" + path + "'");
  const i64 sz = file_size_of(path);
  FZMOD_REQUIRE(sz >= 0, status::invalid_argument,
                "stream compress: no such input '" + path + "'");
  const u64 want = dims.len() * sizeof(T);
  FZMOD_REQUIRE(static_cast<u64>(sz) == want, status::invalid_argument,
                "stream compress: '" + path + "' is " + std::to_string(sz) +
                    " bytes but dims declare " + std::to_string(want));
}

/// The shared per-field compression drive: staged source -> scheduler ->
/// ordered sink, with optional resume progress. Accumulates into `st`.
template <class T>
void drive_field(chunked_pipeline<T>& pipe, const std::string& in_path,
                 dims3 dims, const std::string& out_path, bool append,
                 std::span<const chunk_extent> extents,
                 const stream_budget& budget,
                 typename chunked_pipeline<T>::stream_progress prog,
                 stream_io_stats& st) {
  stream_io_stats local;
  prog.io = &local;
  const u64 first = prog.first_chunk;
  {
    staged_file_source src(in_path, sizeof(T), extents, first,
                           budget.read_slots);
    ordered_file_sink sink(out_path, append, budget.write_bytes);
    pipe.compress_stream(
        [&](T* dst, u64 elem_offset, std::size_t n) {
          src.read(reinterpret_cast<u8*>(dst), elem_offset, n);
        },
        dims,
        [&](std::span<const u8> bytes) { sink.write(bytes); },
        std::move(prog));
    sink.finish();
    local.read_stalls = src.stalls();
    local.write_stalls = sink.stalls();
    local.bytes_read = src.bytes_read();
    local.bytes_written = sink.bytes_written();
    // Peaks are tracked independently per half; the sum is a conservative
    // bound on the true combined high-water mark.
    local.peak_bytes += src.peak_bytes() + sink.peak_bytes();
  }
  st.window = std::max(st.window, local.window);
  st.workers = std::max(st.workers, local.workers);
  st.read_slots = std::max(st.read_slots, budget.read_slots);
  st.chunks_total += local.chunks_total;
  st.chunks_resumed += local.chunks_resumed;
  st.read_stalls += local.read_stalls;
  st.write_stalls += local.write_stalls;
  st.bytes_read += local.bytes_read;
  st.bytes_written += local.bytes_written;
  st.peak_bytes = std::max(st.peak_bytes, local.peak_bytes);
}

}  // namespace

std::string resume_journal_path(const std::string& out_path) {
  return out_path + ".fzr";
}

template <class T>
stream_io_stats compress_file_stream(const std::string& in_path, dims3 dims,
                                     const std::string& out_path,
                                     const pipeline_config& cfg,
                                     const stream_options& opt) {
  require_input<T>(in_path, dims);
  chunked_pipeline<T> pipe(cfg, opt.chunk);  // validates cfg up front
  const std::size_t chunk_elems = opt.chunk.resolve_chunk_elems(sizeof(T));
  const std::vector<chunk_extent> extents = plan_chunks(dims, chunk_elems);
  const u64 nchunks = extents.size();
  const stream_budget budget = resolve_stream_budget(
      opt.chunk.resolve_stream_mem_bytes(),
      static_cast<u64>(chunk_elems) * sizeof(T), opt.chunk.resolve_jobs());
  const std::string jpath = resume_journal_path(out_path);
  // Single-chunk plans emit a plain v2 archive: no directory to splice
  // into, so there is nothing to resume — any stale journal is removed.
  const bool journaled = nchunks > 1;

  typename chunked_pipeline<T>::stream_progress prog;
  const u64 config_digest =
      stream_config_digest<T>(cfg, dims, chunk_elems);
  if (opt.resume && journaled) {
    salvage sal = try_salvage<T>(out_path, jpath, extents, dims,
                                 chunk_elems, config_digest);
    if (sal.chunks > 0) {
      u64 payload = 0;
      for (const auto& e : sal.entries) payload += e.archive_bytes;
      truncate_or_throw(out_path,
                        sizeof(fmt::chunk_header_v3) + payload);
      truncate_or_throw(jpath, sizeof(fmt::fzr_header) +
                                   sal.chunks * sizeof(fmt::fzr_record));
      prog.first_chunk = sal.chunks;
      prog.committed = std::move(sal.entries);
      prog.emit_header = false;
    }
  }
  const bool resuming = prog.first_chunk > 0;
  if (journaled && !resuming) {
    create_journal(jpath, make_journal_header<T>(dims, nchunks, chunk_elems,
                                                 config_digest));
  }
  if (!journaled) ::unlink(jpath.c_str());

  stream_io_stats st;
  {
    std::optional<journal_writer> jw;
    if (journaled) jw.emplace(jpath, /*append=*/true);
    prog.on_commit = [&jw](u64 index, const fmt::chunk_dir_entry& e) {
      if (jw) jw->append(index, e);
    };
    drive_field<T>(pipe, in_path, dims, out_path, /*append=*/resuming,
                   extents, budget, std::move(prog), st);
  }
  if (journaled && !opt.keep_journal) ::unlink(jpath.c_str());
  export_stream_counters(st);
  return st;
}

template <class T>
stream_io_stats compress_files_stream(std::span<const field_input> fields,
                                      const std::string& out_path,
                                      const pipeline_config& cfg,
                                      const stream_options& opt) {
  FZMOD_REQUIRE(!opt.resume, status::unsupported,
                "stream compress: --resume is single-field only");
  FZMOD_REQUIRE(!fields.empty() && fields.size() <= fmt::multi_max_fields,
                status::invalid_argument,
                "stream compress: need 1.." +
                    std::to_string(fmt::multi_max_fields) + " fields");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const field_input& f = fields[i];
    FZMOD_REQUIRE(!f.name.empty() &&
                      f.name.size() < fmt::multi_name_bytes,
                  status::invalid_argument,
                  "stream compress: field names must be 1.." +
                      std::to_string(fmt::multi_name_bytes - 1) + " bytes");
    for (std::size_t j = 0; j < i; ++j) {
      FZMOD_REQUIRE(fields[j].name != f.name, status::invalid_argument,
                    "stream compress: duplicate field name '" + f.name +
                        "'");
    }
    require_input<T>(f.path, f.dims);
  }

  chunked_pipeline<T> pipe(cfg, opt.chunk);
  const std::size_t chunk_elems = opt.chunk.resolve_chunk_elems(sizeof(T));
  const stream_budget budget = resolve_stream_budget(
      opt.chunk.resolve_stream_mem_bytes(),
      static_cast<u64>(chunk_elems) * sizeof(T), opt.chunk.resolve_jobs());

  fmt::multi_header mh{};
  mh.magic = fmt::multi_magic;
  mh.version = fmt::multi_container_version;
  mh.nfields = static_cast<u16>(fields.size());
  mh.digest_header = fmt::multi_header_digest(mh);
  {
    const int fd = open_or_throw(out_path, O_WRONLY | O_CREAT | O_TRUNC);
    try {
      write_all(fd, reinterpret_cast<const u8*>(&mh), sizeof(mh),
                out_path);
    } catch (...) {
      ::close(fd);
      throw;
    }
    ::close(fd);
  }

  stream_io_stats st;
  std::vector<fmt::field_dir_entry> dir;
  dir.reserve(fields.size());
  u64 arch_at = 0;
  for (const field_input& f : fields) {
    const std::vector<chunk_extent> extents =
        plan_chunks(f.dims, chunk_elems);
    const u64 before = st.bytes_written;
    drive_field<T>(pipe, f.path, f.dims, out_path, /*append=*/true,
                   extents, budget,
                   typename chunked_pipeline<T>::stream_progress{}, st);
    const u64 fbytes = st.bytes_written - before;

    fmt::field_dir_entry e{};
    std::memcpy(e.name, f.name.data(), f.name.size());
    e.type = static_cast<u8>(dtype_of<T>());
    e.dims[0] = f.dims.x;
    e.dims[1] = f.dims.y;
    e.dims[2] = f.dims.z;
    e.archive_offset = arch_at;
    e.archive_bytes = fbytes;
    {
      const int fd = open_or_throw(out_path, O_RDONLY);
      try {
        e.digest = hash_file_range(fd, sizeof(mh) + arch_at, fbytes,
                                   out_path);
      } catch (...) {
        ::close(fd);
        throw;
      }
      ::close(fd);
    }
    dir.push_back(e);
    arch_at += fbytes;
  }

  {
    const int fd = open_or_throw(out_path, O_WRONLY | O_APPEND);
    try {
      const std::size_t dir_bytes =
          dir.size() * sizeof(fmt::field_dir_entry);
      write_all(fd, reinterpret_cast<const u8*>(dir.data()), dir_bytes,
                out_path);
      const u64 dir_digest = kernels::chunked_hash(std::span<const u8>(
          reinterpret_cast<const u8*>(dir.data()), dir_bytes));
      write_all(fd, reinterpret_cast<const u8*>(&dir_digest),
                sizeof(dir_digest), out_path);
      FZMOD_REQUIRE(::fsync(fd) == 0, status::invalid_argument,
                    "fsync failed for '" + out_path +
                        "': " + std::strerror(errno));
      st.bytes_written += dir_bytes + sizeof(dir_digest);
    } catch (...) {
      ::close(fd);
      throw;
    }
    ::close(fd);
  }
  export_stream_counters(st);
  return st;
}

template stream_io_stats compress_file_stream<f32>(const std::string&,
                                                   dims3,
                                                   const std::string&,
                                                   const pipeline_config&,
                                                   const stream_options&);
template stream_io_stats compress_file_stream<f64>(const std::string&,
                                                   dims3,
                                                   const std::string&,
                                                   const pipeline_config&,
                                                   const stream_options&);
template stream_io_stats compress_files_stream<f32>(
    std::span<const field_input>, const std::string&,
    const pipeline_config&, const stream_options&);
template stream_io_stats compress_files_stream<f64>(
    std::span<const field_input>, const std::string&,
    const pipeline_config&, const stream_options&);

}  // namespace fzmod::core
