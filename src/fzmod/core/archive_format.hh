// FZModules — on-disk archive layout (internal, shared by the synchronous
// pipeline driver and the experimental STF pipeline so both produce and
// consume the same format).
//
// Layout:
//   outer_header | body
// where body is either the inner archive or (outer.secondary == 1) an LZ
// blob of it, and the inner archive is
//   inner_header | codec blob | outliers | value outliers | anchors.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "fzmod/common/bits.hh"
#include "fzmod/common/error.hh"
#include "fzmod/common/types.hh"
#include "fzmod/kernels/compact.hh"

namespace fzmod::core::fmt {

inline constexpr u32 outer_magic = 0x465a4d30;  // "FZM0"
inline constexpr u32 inner_magic = 0x465a4d44;  // "FZMD"
inline constexpr u16 archive_version = 1;

#pragma pack(push, 1)
struct outer_header {
  u32 magic;
  u8 secondary;  // 1 = body is an LZ blob of the inner archive
  u8 pad[3];
};

struct inner_header {
  u32 magic;
  u16 version;
  u8 type;  // dtype
  u8 mode;  // eb_mode
  f64 eb_user;
  f64 ebx2;
  u64 dims[3];
  i32 radius;
  u8 hist;  // histogram_kind (informational)
  u8 pad[3];
  char preprocessor[16];
  char predictor[16];
  char codec[16];
  u64 n_outliers;
  u64 n_value_outliers;
  u64 n_anchors;
  u64 anchor_stride;
  u64 codec_bytes;
  u64 outlier_bytes;  // packed (varint) size of the outlier section
};
#pragma pack(pop)

/// Value outliers serialize as (u64 index, f64 value) pairs.
#pragma pack(push, 1)
struct vo_record {
  u64 index;
  f64 value;
};
#pragma pack(pop)

inline void put_varint(std::vector<u8>& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<u8>(v));
}

inline u64 get_varint(const u8*& p, const u8* end) {
  u64 v = 0;
  int shift = 0;
  for (;;) {
    FZMOD_REQUIRE(p < end, status::corrupt_archive,
                  "archive: truncated varint");
    const u8 b = *p++;
    v |= static_cast<u64>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    FZMOD_REQUIRE(shift < 64, status::corrupt_archive,
                  "archive: varint overflow");
  }
}

/// Pack an outlier list compactly: sorted by index, indices delta+varint
/// coded, values zigzag+varint coded (~3-5 bytes per outlier instead of
/// the in-memory 16). At tight bounds on hard data the outlier section
/// dominates the archive, so this matters for Table 3's 1e-6 rows.
/// Span form sorts the caller's storage in place — callers with a
/// reusable scratch list (pipeline hot path) avoid the by-value copy.
inline std::vector<u8> pack_outliers(std::span<kernels::outlier> outliers) {
  std::sort(outliers.begin(), outliers.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });
  std::vector<u8> out;
  out.reserve(outliers.size() * 4);
  u64 prev = 0;
  for (const auto& o : outliers) {
    put_varint(out, o.index - prev);
    prev = o.index;
    put_varint(out, zigzag_encode64(o.value));
  }
  return out;
}

inline std::vector<u8> pack_outliers(
    std::vector<kernels::outlier> outliers) {
  return pack_outliers(std::span<kernels::outlier>(outliers));
}

inline std::vector<kernels::outlier> unpack_outliers(
    std::span<const u8> bytes, u64 count) {
  std::vector<kernels::outlier> out;
  out.reserve(count);
  const u8* p = bytes.data();
  const u8* end = p + bytes.size();
  u64 prev = 0;
  for (u64 k = 0; k < count; ++k) {
    prev += get_varint(p, end);
    const i64 value = zigzag_decode64(get_varint(p, end));
    out.push_back({prev, value});
  }
  return out;
}

}  // namespace fzmod::core::fmt
