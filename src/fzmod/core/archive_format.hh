// FZModules — on-disk archive layout (internal, shared by the synchronous
// pipeline driver and the experimental STF pipeline so both produce and
// consume the same format). docs/FORMAT.md is the normative description.
//
// Layout:
//   outer_header | body
// where body is either the inner archive or (outer.secondary == 1) an LZ
// blob of it, and the inner archive is
//   inner_header | codec blob | outliers | value outliers | anchors.
//
// Version history:
//   v1 ("FZM0" outer, inner version 1): no integrity digests; structural
//      fields are validated, but payload corruption can decode to wrong
//      values. Still fully readable.
//   v2 ("FZM2" outer, inner version 2): the inner header carries one
//      xxhash64 digest per section plus a self-digest, and the outer
//      header carries a sealed whole-body digest for secondary-wrapped
//      archives (verified *before* the LZ decoder touches the blob). With
//      verification on — the default; see `verify_enabled` — any payload
//      corruption surfaces as a deterministic status::corrupt_archive.
//   v3 ("FZM3" chunk container): an outer chunk directory framing whole
//      v1/v2 archives as independently decodable chunks of one field —
//      parallel decompression, decompress_range() random access, and
//      streaming compression (core/chunked.hh). Single-chunk compressions
//      bypass the container entirely and stay byte-identical to v2.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fzmod/common/bits.hh"
#include "fzmod/common/error.hh"
#include "fzmod/common/hash.hh"
#include "fzmod/common/types.hh"
#include "fzmod/kernels/chunked_hash.hh"
#include "fzmod/kernels/compact.hh"

namespace fzmod::core::fmt {

inline constexpr u32 outer_magic = 0x465a4d30;     // "FZM0" (format v1)
inline constexpr u32 outer_magic_v2 = 0x465a4d32;  // "FZM2"
inline constexpr u32 chunk_magic_v3 = 0x465a4d33;  // "FZM3" (chunk container)
inline constexpr u32 inner_magic = 0x465a4d44;     // "FZMD"
inline constexpr u16 archive_version = 2;          // what we write per chunk
inline constexpr u16 chunk_container_version = 3;

#pragma pack(push, 1)
/// v1 outer header (8 bytes). Still accepted on read.
struct outer_header {
  u32 magic;
  u8 secondary;  // 1 = body is an LZ blob of the inner archive
  u8 pad[3];
};

/// v2 outer header (16 bytes). `body_digest` is the sealed digest of the
/// *stored* body bytes when secondary == 1 (see `seal_digest`), and must
/// be zero otherwise (plain bodies are covered by the inner digests).
struct outer_header_v2 {
  u32 magic;
  u8 secondary;
  u8 pad[3];  // must be zero
  u64 body_digest;
};

/// Inner header. The v1 header is the byte-exact prefix of the v2 header:
/// v2 appends the five digest words and bumps `version`.
struct inner_header {
  u32 magic;
  u16 version;
  u8 type;  // dtype
  u8 mode;  // eb_mode
  f64 eb_user;
  f64 ebx2;
  u64 dims[3];
  i32 radius;
  u8 hist;  // histogram_kind (informational)
  u8 pad[3];
  char preprocessor[16];
  char predictor[16];
  char codec[16];
  u64 n_outliers;
  u64 n_value_outliers;
  u64 n_anchors;
  u64 anchor_stride;
  u64 codec_bytes;
  u64 outlier_bytes;  // packed (varint) size of the outlier section
  // --- v2 fields below; absent from v1 archives ---
  u64 digest_codec;
  u64 digest_outliers;
  u64 digest_value_outliers;
  u64 digest_anchors;
  u64 digest_header;  // digest of this header with this field zeroed
};
#pragma pack(pop)

inline constexpr std::size_t inner_header_v1_bytes =
    sizeof(inner_header) - 5 * sizeof(u64);
static_assert(inner_header_v1_bytes == 152,
              "v1 inner header layout must stay byte-stable");

[[nodiscard]] inline std::size_t inner_header_bytes(u16 version) {
  return version >= 2 ? sizeof(inner_header) : inner_header_v1_bytes;
}

/// Value outliers serialize as (u64 index, f64 value) pairs.
#pragma pack(push, 1)
struct vo_record {
  u64 index;
  f64 value;
};
#pragma pack(pop)

// --- verification policy -------------------------------------------------

/// Decode-side digest verification is on by default; FZMOD_VERIFY=0 opts
/// out at startup, and `set_verify_enabled` is the runtime A/B switch
/// (benches measure the overhead with it, tests exercise both paths).
/// Structural validation is never switchable — only digest comparisons.
/// Atomic: chunk-parallel decoders read this from many streams at once,
/// possibly while a bench thread toggles it.
[[nodiscard]] inline std::atomic<bool>& verify_flag() {
  static std::atomic<bool> on = [] {
    const char* v = std::getenv("FZMOD_VERIFY");
    return !(v && v[0] == '0' && v[1] == '\0');
  }();
  return on;
}

inline void set_verify_enabled(bool on) {
  verify_flag().store(on, std::memory_order_relaxed);
}
[[nodiscard]] inline bool verify_enabled() {
  return verify_flag().load(std::memory_order_relaxed);
}

// --- digests --------------------------------------------------------------

/// Seal a whole-body digest together with the secondary flag, so a bit
/// flip that toggles `secondary` cannot leave a matching digest behind.
[[nodiscard]] inline u64 seal_digest(u64 body_digest, u8 secondary) {
  u8 buf[9];
  std::memcpy(buf, &body_digest, sizeof(body_digest));
  buf[8] = secondary;
  return common::xxhash64(buf, sizeof(buf), 0);
}

/// Digest of a v2 inner header (by value: the self-digest slot is zeroed
/// before hashing).
[[nodiscard]] inline u64 header_digest(inner_header hdr) {
  hdr.digest_header = 0;
  return common::xxhash64(&hdr, sizeof(hdr), 0);
}

// --- outer layer ----------------------------------------------------------

/// Parsed outer header plus the body bytes exactly as stored (the LZ blob
/// when secondary). Structural checks (magic, flag range, padding) happen
/// here unconditionally; digest checks are `verify_outer`'s job.
struct outer_view {
  bool v2 = false;
  bool secondary = false;
  u64 body_digest = 0;
  std::span<const u8> stored_body;
};

[[nodiscard]] inline outer_view parse_outer(std::span<const u8> archive) {
  FZMOD_REQUIRE(archive.size() >= sizeof(outer_header),
                status::corrupt_archive, "archive too small");
  u32 magic;
  std::memcpy(&magic, archive.data(), sizeof(magic));
  outer_view ov;
  if (magic == outer_magic) {
    outer_header h;
    std::memcpy(&h, archive.data(), sizeof(h));
    ov.secondary = h.secondary != 0;
    ov.stored_body = archive.subspan(sizeof(h));
    return ov;
  }
  FZMOD_REQUIRE(magic == outer_magic_v2, status::corrupt_archive,
                "bad archive magic");
  FZMOD_REQUIRE(archive.size() >= sizeof(outer_header_v2),
                status::corrupt_archive, "archive too small");
  outer_header_v2 h;
  std::memcpy(&h, archive.data(), sizeof(h));
  FZMOD_REQUIRE(h.secondary <= 1, status::corrupt_archive,
                "archive: bad secondary flag");
  FZMOD_REQUIRE(h.pad[0] == 0 && h.pad[1] == 0 && h.pad[2] == 0,
                status::corrupt_archive, "archive: nonzero outer padding");
  ov.v2 = true;
  ov.secondary = h.secondary == 1;
  ov.body_digest = h.body_digest;
  ov.stored_body = archive.subspan(sizeof(h));
  return ov;
}

/// Whole-body digest check (v2 + verification on). For secondary archives
/// this hashes the stored LZ blob — i.e. corruption is caught before the
/// LZ decoder ever parses hostile bytes. Plain v2 bodies must carry a
/// zero slot; their coverage comes from the inner digests.
inline void verify_outer(const outer_view& ov) {
  if (!ov.v2 || !verify_enabled()) return;
  if (ov.secondary) {
    FZMOD_REQUIRE(
        seal_digest(kernels::chunked_hash(ov.stored_body), 1) ==
            ov.body_digest,
        status::corrupt_archive, "archive: body digest mismatch");
  } else {
    FZMOD_REQUIRE(ov.body_digest == 0, status::corrupt_archive,
                  "archive: unexpected body digest");
  }
}

// --- inner layer ----------------------------------------------------------

/// Parse the inner header, negotiating v1 vs v2 by the version field (v1
/// reads leave the digest words zero). Rejects unknown versions.
[[nodiscard]] inline inner_header parse_inner(std::span<const u8> body) {
  FZMOD_REQUIRE(body.size() >= inner_header_v1_bytes,
                status::corrupt_archive, "archive body truncated");
  inner_header hdr{};
  std::memcpy(&hdr, body.data(), inner_header_v1_bytes);
  FZMOD_REQUIRE(hdr.magic == inner_magic &&
                    (hdr.version == 1 || hdr.version == archive_version),
                status::corrupt_archive, "bad inner header");
  if (hdr.version >= 2) {
    FZMOD_REQUIRE(body.size() >= sizeof(inner_header),
                  status::corrupt_archive, "archive body truncated");
    std::memcpy(&hdr, body.data(), sizeof(inner_header));
  }
  return hdr;
}

/// Header self-digest check. Runs before any header field (dtype, counts,
/// bounds) is *interpreted*, so a flipped header bit is always reported as
/// corruption rather than as a misleading downstream error.
inline void verify_inner_header(const inner_header& hdr) {
  if (hdr.version < 2 || !verify_enabled()) return;
  FZMOD_REQUIRE(header_digest(hdr) == hdr.digest_header,
                status::corrupt_archive,
                "archive: header digest mismatch");
}

/// Dims validation shared by every decode driver: reject overflowing or
/// zero extents, and bodies too small for their declared element count
/// (no codec packs more than ~8192 values per byte — the Huffman
/// chunk-offset table is the loosest floor).
[[nodiscard]] inline dims3 validate_dims(const inner_header& hdr,
                                         std::size_t body_size) {
  const dims3 dims{hdr.dims[0], hdr.dims[1], hdr.dims[2]};
  FZMOD_REQUIRE(!dims.len_invalid(), status::corrupt_archive,
                "archive dims out of supported range");
  FZMOD_REQUIRE(dims.len() / 8192 <= body_size, status::corrupt_archive,
                "archive too small for its declared dims");
  return dims;
}

/// Anchor geometry validation: a zero stride would loop the anchor walk
/// forever, and a count inconsistent with dims/stride either truncates or
/// overruns the lattice. (Archives without anchors leave both fields
/// meaningless.)
inline void validate_anchor_geometry(const inner_header& hdr, dims3 dims) {
  if (hdr.n_anchors == 0) return;
  FZMOD_REQUIRE(hdr.anchor_stride >= 1, status::corrupt_archive,
                "archive: zero anchor stride");
  const u64 expected = ((dims.x - 1) / hdr.anchor_stride + 1) *
                       ((dims.y - 1) / hdr.anchor_stride + 1) *
                       ((dims.z - 1) / hdr.anchor_stride + 1);
  FZMOD_REQUIRE(hdr.n_anchors == expected, status::corrupt_archive,
                "archive: anchor lattice inconsistent with dims/stride");
}

/// The four payload sections in declaration order.
struct section_view {
  std::span<const u8> codec;
  std::span<const u8> outliers;
  std::span<const u8> value_outliers;
  std::span<const u8> anchors;
};

/// Structural validation of the declared section geometry against the
/// actual body, then slicing. Every plausibility guard fires before any
/// count-sized allocation happens downstream.
[[nodiscard]] inline section_view slice_sections(std::span<const u8> body,
                                                 const inner_header& hdr) {
  FZMOD_REQUIRE(hdr.codec_bytes <= body.size() &&
                    hdr.outlier_bytes <= body.size(),
                status::corrupt_archive, "archive section size overflow");
  FZMOD_REQUIRE(hdr.n_outliers <= hdr.outlier_bytes / 2 + 1,
                status::corrupt_archive, "outlier count implausible");
  FZMOD_REQUIRE(hdr.n_value_outliers <= body.size() / sizeof(vo_record),
                status::corrupt_archive, "value outlier count implausible");
  FZMOD_REQUIRE(hdr.n_anchors <= body.size() / sizeof(i32),
                status::corrupt_archive, "anchor count implausible");
  const u64 vo_bytes = hdr.n_value_outliers * sizeof(vo_record);
  const u64 anchor_bytes = hdr.n_anchors * sizeof(i32);
  const std::size_t hb = inner_header_bytes(hdr.version);
  FZMOD_REQUIRE(body.size() >= hb + hdr.codec_bytes + hdr.outlier_bytes +
                                   vo_bytes + anchor_bytes,
                status::corrupt_archive, "archive payload truncated");
  section_view sv;
  std::size_t off = hb;
  sv.codec = body.subspan(off, hdr.codec_bytes);
  off += hdr.codec_bytes;
  sv.outliers = body.subspan(off, hdr.outlier_bytes);
  off += hdr.outlier_bytes;
  sv.value_outliers = body.subspan(off, vo_bytes);
  off += vo_bytes;
  sv.anchors = body.subspan(off, anchor_bytes);
  return sv;
}

/// Per-section digest check (v2 + verification on). Runs before any
/// section is decoded, so the codec / varint / anchor parsers only ever
/// see bytes that match what the compressor wrote.
inline void verify_sections(const inner_header& hdr,
                            const section_view& sv) {
  if (hdr.version < 2 || !verify_enabled()) return;
  FZMOD_REQUIRE(kernels::chunked_hash(sv.codec) == hdr.digest_codec,
                status::corrupt_archive,
                "archive: codec section digest mismatch");
  FZMOD_REQUIRE(kernels::chunked_hash(sv.outliers) == hdr.digest_outliers,
                status::corrupt_archive,
                "archive: outlier section digest mismatch");
  FZMOD_REQUIRE(
      kernels::chunked_hash(sv.value_outliers) == hdr.digest_value_outliers,
      status::corrupt_archive,
      "archive: value outlier section digest mismatch");
  FZMOD_REQUIRE(kernels::chunked_hash(sv.anchors) == hdr.digest_anchors,
                status::corrupt_archive,
                "archive: anchor section digest mismatch");
}

// --- embedded pipeline spec section ---------------------------------------
//
// v2 archives may carry a trailing section after the anchors: the
// canonical `fzmod::spec` text of the pipeline that wrote them, so a
// consumer can rebuild the exact configuration (modules, radius, knobs)
// from the archive alone. `slice_sections` has always tolerated trailing
// bytes (the forward-compat hook), so archives with the section are
// readable by older parsers and archives without it (v1, pre-spec v2,
// STF-assembled) parse as "no spec". The section is self-delimiting and
// digest-protected:
//
//   spec_section := spec_section_header | len text bytes | u64 digest
//
// where digest = xxhash64(header + text). Structural checks (magic,
// version, exact length) always run; the digest comparison is gated on
// `verify_enabled()` like every other digest. A tail that is nonempty
// but not exactly one well-formed section is corruption — so the
// bit-flip fuzz contract (ANY single flipped bit in a v2 archive throws
// corrupt_archive) extends over the appended bytes.

inline constexpr u32 spec_magic = 0x465a5350;  // "FZSP"
inline constexpr u16 spec_section_version = 1;
/// Specs are one short line; anything bigger is forged.
inline constexpr std::size_t spec_max_bytes = 4096;

#pragma pack(push, 1)
struct spec_section_header {
  u32 magic;    // spec_magic
  u16 version;  // spec_section_version
  u16 len;      // text bytes following the header
};
#pragma pack(pop)

static_assert(sizeof(spec_section_header) == 8,
              "spec section layout must stay byte-stable");

/// Serialize a spec text into a section (header + text + digest).
[[nodiscard]] inline std::vector<u8> build_spec_section(
    std::string_view text) {
  FZMOD_REQUIRE(!text.empty() && text.size() <= spec_max_bytes,
                status::invalid_argument,
                "pipeline spec text must be 1..4096 bytes");
  spec_section_header h{};
  h.magic = spec_magic;
  h.version = spec_section_version;
  h.len = static_cast<u16>(text.size());
  std::vector<u8> out(sizeof(h) + text.size() + sizeof(u64));
  std::memcpy(out.data(), &h, sizeof(h));
  std::memcpy(out.data() + sizeof(h), text.data(), text.size());
  const u64 digest =
      common::xxhash64(out.data(), sizeof(h) + text.size(), 0);
  std::memcpy(out.data() + sizeof(h) + text.size(), &digest,
              sizeof(digest));
  return out;
}

/// The bytes after the last declared section. Defensive about the header
/// fields (inspect_archive calls this without slice_sections' screening):
/// a declared geometry that oversteps the body throws instead of slicing
/// out of bounds.
[[nodiscard]] inline std::span<const u8> section_tail(
    std::span<const u8> body, const inner_header& hdr) {
  u64 used = inner_header_bytes(hdr.version);
  for (const u64 part : {hdr.codec_bytes, hdr.outlier_bytes,
                         hdr.n_value_outliers * sizeof(vo_record),
                         hdr.n_anchors * sizeof(i32)}) {
    used += part;
    FZMOD_REQUIRE(used >= part && used <= body.size(),
                  status::corrupt_archive,
                  "archive: section geometry overruns the body");
  }
  return body.subspan(static_cast<std::size_t>(used));
}

/// Parse a section tail: empty means "no spec" (older archives), a
/// nonempty tail must be exactly one well-formed spec section. Returns
/// the spec text. `check_digest` gates only the digest comparison.
[[nodiscard]] inline std::string parse_spec_section(
    std::span<const u8> tail, bool check_digest) {
  if (tail.empty()) return {};
  FZMOD_REQUIRE(tail.size() >= sizeof(spec_section_header) + sizeof(u64),
                status::corrupt_archive, "archive: truncated spec section");
  spec_section_header h;
  std::memcpy(&h, tail.data(), sizeof(h));
  FZMOD_REQUIRE(h.magic == spec_magic && h.version == spec_section_version,
                status::corrupt_archive, "archive: bad spec section header");
  FZMOD_REQUIRE(h.len >= 1 && h.len <= spec_max_bytes,
                status::corrupt_archive,
                "archive: implausible spec section length");
  FZMOD_REQUIRE(
      tail.size() == sizeof(h) + h.len + sizeof(u64),
      status::corrupt_archive,
      "archive: spec section length inconsistent with the body tail");
  if (check_digest) {
    u64 stored = 0;
    std::memcpy(&stored, tail.data() + sizeof(h) + h.len, sizeof(stored));
    FZMOD_REQUIRE(common::xxhash64(tail.data(), sizeof(h) + h.len, 0) ==
                      stored,
                  status::corrupt_archive,
                  "archive: spec section digest mismatch");
  }
  return std::string(reinterpret_cast<const char*>(tail.data()) + sizeof(h),
                     h.len);
}

// --- varint / outlier packing --------------------------------------------

inline void put_varint(std::vector<u8>& out, u64 v) {
  while (v >= 0x80) {
    out.push_back(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<u8>(v));
}

inline u64 get_varint(const u8*& p, const u8* end) {
  u64 v = 0;
  int shift = 0;
  for (;;) {
    FZMOD_REQUIRE(p < end, status::corrupt_archive,
                  "archive: truncated varint");
    const u8 b = *p++;
    // The 10th byte holds bit 63 only: any higher payload bit would be
    // shifted out silently, decoding a different value than was encoded.
    FZMOD_REQUIRE(shift < 63 || (b & 0x7e) == 0, status::corrupt_archive,
                  "archive: varint overflow");
    v |= static_cast<u64>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    FZMOD_REQUIRE(shift < 64, status::corrupt_archive,
                  "archive: varint overflow");
  }
}

/// Pack an outlier list compactly: sorted by index, indices delta+varint
/// coded, values zigzag+varint coded (~3-5 bytes per outlier instead of
/// the in-memory 16). At tight bounds on hard data the outlier section
/// dominates the archive, so this matters for Table 3's 1e-6 rows.
/// Span form sorts the caller's storage in place — callers with a
/// reusable scratch list (pipeline hot path) avoid the by-value copy.
inline std::vector<u8> pack_outliers(std::span<kernels::outlier> outliers) {
  std::sort(outliers.begin(), outliers.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });
  std::vector<u8> out;
  out.reserve(outliers.size() * 4);
  u64 prev = 0;
  for (const auto& o : outliers) {
    put_varint(out, o.index - prev);
    prev = o.index;
    put_varint(out, zigzag_encode64(o.value));
  }
  return out;
}

inline std::vector<u8> pack_outliers(
    std::vector<kernels::outlier> outliers) {
  return pack_outliers(std::span<kernels::outlier>(outliers));
}

// --- v3 chunk container ---------------------------------------------------
//
// Layout (docs/FORMAT.md is normative):
//   container := chunk_header_v3 | chunk archives | directory | u64 dir_digest
// Chunk archives are whole v1/v2 archives of contiguous sub-extents of the
// field, concatenated back-to-back in raw order. The directory trails the
// payload so a streaming compressor can emit chunk archives as they finish
// (their sizes are unknown up front) and still write strictly in order; its
// location is computable from the header alone (fixed entry size, nchunks
// in the header), so readers need no footer.

#pragma pack(push, 1)
/// Fixed-size container header (56 bytes). Every field is known before the
/// first chunk is compressed, so a streaming writer emits it immediately.
struct chunk_header_v3 {
  u32 magic;        // chunk_magic_v3
  u16 version;      // chunk_container_version
  u8 type;          // dtype of the field
  u8 pad;           // must be zero
  u64 dims[3];      // full-field extents
  u64 nchunks;      // >= 2 (single-chunk output bypasses the container)
  u64 chunk_elems;  // nominal elements per chunk (last chunk may be ragged)
  u64 digest_header;  // self-digest with this slot zeroed
};

/// One directory entry (40 bytes). `archive_offset` is relative to the end
/// of the container header, so entries are independent of header size.
struct chunk_dir_entry {
  u64 raw_offset;      // first element of this chunk in the full field
  u64 raw_len;         // elements in this chunk
  u64 archive_offset;  // chunk archive start, bytes past chunk_header_v3
  u64 archive_bytes;   // chunk archive size
  u64 digest;          // chunked_hash of the chunk archive bytes
};
#pragma pack(pop)

static_assert(sizeof(chunk_header_v3) == 56 && sizeof(chunk_dir_entry) == 40,
              "v3 container layout must stay byte-stable");

[[nodiscard]] inline u64 chunk_header_digest(chunk_header_v3 hdr) {
  hdr.digest_header = 0;
  return common::xxhash64(&hdr, sizeof(hdr), 0);
}

/// Cheap dispatch: does this blob carry the v3 container magic? v1/v2
/// archives (and garbage) answer false and flow to the plain parsers.
[[nodiscard]] inline bool is_chunk_container(std::span<const u8> archive) {
  if (archive.size() < sizeof(u32)) return false;
  u32 magic;
  std::memcpy(&magic, archive.data(), sizeof(magic));
  return magic == chunk_magic_v3;
}

/// Validate that a chunk directory tiles the field contiguously in raw
/// order and tiles a `payload_bytes`-sized payload contiguously — any
/// gap, overlap, or overrun is corruption. Factored out of
/// parse_chunk_container so a directory imported from a `.fzx` sidecar
/// index gets the exact same structural screening: a forged index entry
/// can never produce an out-of-bounds chunk_archive() slice.
inline void validate_chunk_directory(std::span<const chunk_dir_entry> entries,
                                     u64 field_len, u64 payload_bytes) {
  u64 raw_at = 0, arch_at = 0;
  for (const chunk_dir_entry& e : entries) {
    FZMOD_REQUIRE(e.raw_offset == raw_at && e.raw_len >= 1 &&
                      e.raw_len <= field_len - raw_at,
                  status::corrupt_archive,
                  "chunk container: directory does not tile the field");
    FZMOD_REQUIRE(e.archive_offset == arch_at &&
                      e.archive_bytes <= payload_bytes - arch_at,
                  status::corrupt_archive,
                  "chunk container: directory does not tile the payload");
    raw_at += e.raw_len;
    arch_at += e.archive_bytes;
  }
  FZMOD_REQUIRE(raw_at == field_len && arch_at == payload_bytes,
                status::corrupt_archive,
                "chunk container: directory leaves a tail uncovered");
}

/// Parsed container: header, directory, and the payload region the
/// directory's archive offsets index into.
struct chunk_container_view {
  chunk_header_v3 hdr{};
  dims3 dims;
  std::span<const u8> payload;  // between header and directory
  std::vector<chunk_dir_entry> entries;
};

/// Parse + structurally validate a v3 container. The directory must tile
/// the field contiguously in raw order and the archive extents must tile
/// the payload contiguously — any gap, overlap, or overrun is corruption.
/// Digest checks (header self-digest, directory digest) run when
/// `check_digests` is set (pass `verify_enabled()`; verify_chunked passes
/// false and reports mismatches instead); per-chunk archive digests are
/// the decode driver's job so it can report *which* chunk is damaged.
[[nodiscard]] inline chunk_container_view parse_chunk_container(
    std::span<const u8> archive, bool check_digests) {
  FZMOD_REQUIRE(archive.size() >= sizeof(chunk_header_v3),
                status::corrupt_archive, "chunk container too small");
  chunk_container_view cv;
  std::memcpy(&cv.hdr, archive.data(), sizeof(cv.hdr));
  FZMOD_REQUIRE(cv.hdr.magic == chunk_magic_v3 &&
                    cv.hdr.version == chunk_container_version,
                status::corrupt_archive, "bad chunk container header");
  FZMOD_REQUIRE(cv.hdr.pad == 0, status::corrupt_archive,
                "chunk container: nonzero padding");
  if (check_digests) {
    FZMOD_REQUIRE(chunk_header_digest(cv.hdr) == cv.hdr.digest_header,
                  status::corrupt_archive,
                  "chunk container: header digest mismatch");
  }
  cv.dims = dims3{cv.hdr.dims[0], cv.hdr.dims[1], cv.hdr.dims[2]};
  FZMOD_REQUIRE(!cv.dims.len_invalid(), status::corrupt_archive,
                "chunk container dims out of supported range");
  const u64 n = cv.dims.len();
  FZMOD_REQUIRE(cv.hdr.nchunks >= 1 && cv.hdr.nchunks <= n,
                status::corrupt_archive,
                "chunk container: implausible chunk count");
  const u64 dir_bytes = cv.hdr.nchunks * sizeof(chunk_dir_entry);
  FZMOD_REQUIRE(
      archive.size() >= sizeof(chunk_header_v3) + dir_bytes + sizeof(u64),
      status::corrupt_archive, "chunk container: directory truncated");
  const std::size_t dir_at = archive.size() - sizeof(u64) - dir_bytes;
  cv.payload = archive.subspan(sizeof(chunk_header_v3),
                               dir_at - sizeof(chunk_header_v3));
  const std::span<const u8> dir = archive.subspan(dir_at, dir_bytes);
  if (check_digests) {
    u64 dir_digest;
    std::memcpy(&dir_digest, archive.data() + dir_at + dir_bytes,
                sizeof(dir_digest));
    FZMOD_REQUIRE(kernels::chunked_hash(dir) == dir_digest,
                  status::corrupt_archive,
                  "chunk container: directory digest mismatch");
  }
  cv.entries.resize(cv.hdr.nchunks);
  std::memcpy(cv.entries.data(), dir.data(), dir_bytes);
  validate_chunk_directory(cv.entries, n, cv.payload.size());
  return cv;
}

[[nodiscard]] inline chunk_container_view parse_chunk_container(
    std::span<const u8> archive) {
  return parse_chunk_container(archive, verify_enabled());
}

/// One chunk's archive bytes within a parsed container.
[[nodiscard]] inline std::span<const u8> chunk_archive(
    const chunk_container_view& cv, const chunk_dir_entry& e) {
  return cv.payload.subspan(e.archive_offset, e.archive_bytes);
}

/// Per-chunk archive digest check (gated like every digest comparison).
/// Returns false instead of throwing so callers can name the chunk.
[[nodiscard]] inline bool chunk_digest_ok(const chunk_container_view& cv,
                                          const chunk_dir_entry& e) {
  if (!verify_enabled()) return true;
  return kernels::chunked_hash(chunk_archive(cv, e)) == e.digest;
}

// --- .fzx sidecar index ----------------------------------------------------
//
// An exportable copy of a v3 container's chunk directory, indexed_bzip2
// style: reopening a huge archive imports the sidecar and skips the
// trailing-directory scan entirely. Layout (docs/FORMAT.md is normative):
//   fzx := fzx_header | nchunks x chunk_dir_entry | u64 self_digest
// The header binds the index to one exact container: `container_bytes` +
// `container_digest` (chunked_hash of the whole container) detect a stale
// or swapped container; `self_digest` (hash of everything before it)
// detects sidecar damage. A mismatch anywhere must degrade to a normal
// directory scan — never a crash, never silently-wrong reads.

inline constexpr u32 fzx_magic = 0x465a5831;  // "FZX1"
inline constexpr u16 fzx_index_version = 1;

#pragma pack(push, 1)
/// Fixed-size sidecar header (64 bytes). Mirrors chunk_header_v3's field
/// identity (type/dims/nchunks/chunk_elems) so an index/container pairing
/// is checkable without hashing anything.
struct fzx_header {
  u32 magic;          // fzx_magic
  u16 version;        // fzx_index_version
  u8 type;            // dtype of the field
  u8 pad;             // must be zero
  u64 dims[3];        // full-field extents
  u64 nchunks;        // directory entry count
  u64 chunk_elems;    // nominal elements per chunk
  u64 container_bytes;   // exact size of the container this index describes
  u64 container_digest;  // chunked_hash of the whole container
};
#pragma pack(pop)

static_assert(sizeof(fzx_header) == 64,
              "fzx sidecar layout must stay byte-stable");

/// Parsed sidecar index.
struct fzx_view {
  fzx_header hdr{};
  dims3 dims;
  std::vector<chunk_dir_entry> entries;
};

/// Serialize a sidecar index for a parsed container. `container_bytes` /
/// `container_digest` describe the exact container bytes the directory
/// came from.
[[nodiscard]] inline std::vector<u8> build_index(
    const chunk_container_view& cv, u64 container_bytes,
    u64 container_digest) {
  fzx_header h{};
  h.magic = fzx_magic;
  h.version = fzx_index_version;
  h.type = cv.hdr.type;
  h.pad = 0;
  h.dims[0] = cv.hdr.dims[0];
  h.dims[1] = cv.hdr.dims[1];
  h.dims[2] = cv.hdr.dims[2];
  h.nchunks = cv.hdr.nchunks;
  h.chunk_elems = cv.hdr.chunk_elems;
  h.container_bytes = container_bytes;
  h.container_digest = container_digest;
  std::vector<u8> out(sizeof(h) +
                      cv.entries.size() * sizeof(chunk_dir_entry) +
                      sizeof(u64));
  std::memcpy(out.data(), &h, sizeof(h));
  std::memcpy(out.data() + sizeof(h), cv.entries.data(),
              cv.entries.size() * sizeof(chunk_dir_entry));
  const u64 self = kernels::chunked_hash(
      std::span<const u8>(out.data(), out.size() - sizeof(u64)));
  std::memcpy(out.data() + out.size() - sizeof(u64), &self, sizeof(self));
  return out;
}

/// Parse + structurally validate a sidecar index in isolation (magic,
/// version, dims, entry-count geometry, self-digest — always checked; the
/// sidecar exists to be cheap). Pairing it with a concrete container
/// (digest + directory tiling) is the reader's job, because only the
/// reader knows the container bytes.
[[nodiscard]] inline fzx_view parse_index(std::span<const u8> index) {
  FZMOD_REQUIRE(index.size() >= sizeof(fzx_header) + sizeof(u64),
                status::corrupt_archive, "fzx index too small");
  fzx_view fv;
  std::memcpy(&fv.hdr, index.data(), sizeof(fv.hdr));
  FZMOD_REQUIRE(fv.hdr.magic == fzx_magic &&
                    fv.hdr.version == fzx_index_version,
                status::corrupt_archive, "bad fzx index header");
  FZMOD_REQUIRE(fv.hdr.pad == 0, status::corrupt_archive,
                "fzx index: nonzero padding");
  fv.dims = dims3{fv.hdr.dims[0], fv.hdr.dims[1], fv.hdr.dims[2]};
  FZMOD_REQUIRE(!fv.dims.len_invalid(), status::corrupt_archive,
                "fzx index dims out of supported range");
  FZMOD_REQUIRE(fv.hdr.nchunks >= 1 && fv.hdr.nchunks <= fv.dims.len(),
                status::corrupt_archive,
                "fzx index: implausible chunk count");
  const u64 dir_bytes = fv.hdr.nchunks * sizeof(chunk_dir_entry);
  FZMOD_REQUIRE(index.size() == sizeof(fzx_header) + dir_bytes + sizeof(u64),
                status::corrupt_archive,
                "fzx index: size does not match its chunk count");
  u64 self = 0;
  std::memcpy(&self, index.data() + index.size() - sizeof(u64),
              sizeof(self));
  FZMOD_REQUIRE(kernels::chunked_hash(index.first(index.size() -
                                                  sizeof(u64))) == self,
                status::corrupt_archive, "fzx index: self digest mismatch");
  fv.entries.resize(fv.hdr.nchunks);
  std::memcpy(fv.entries.data(), index.data() + sizeof(fzx_header),
              dir_bytes);
  return fv;
}

// --- multi-field container ("FZMF") ----------------------------------------
//
// One archive, many named fields: a dataset snapshot written by the
// streaming layer (core/stream_io.hh). Layout mirrors the v3 container's
// streaming-friendly design — fixed header first, payload as it is
// produced, directory at the tail so field archive sizes need not be
// known up front (docs/FORMAT.md and docs/STREAMING.md are normative):
//
//   multi := multi_header | field archives | field directory | u64 dir_digest
//
// Each field archive is a complete, self-contained v2 archive or v3 chunk
// container, byte-identical to what a single-field compression of that
// field would produce — `select_field()` hands back a span any existing
// decoder accepts unchanged. Old single-field archives are unaffected:
// every consumer dispatches on the outer magic first, and "FZMF" is a new
// magic, not a change to v1/v2/v3. The in-memory `core::snapshot`
// container (TOC at the front, loads everything) remains for small
// snapshots; this container is the out-of-core variant.

inline constexpr u32 multi_magic = 0x465a4d46;  // "FZMF"
inline constexpr u16 multi_container_version = 1;
inline constexpr std::size_t multi_name_bytes = 40;  // incl. NUL
/// Field-count ceiling: a directory is read whole before validation, so
/// an implausible count must not drive a giant allocation.
inline constexpr u64 multi_max_fields = 4096;

#pragma pack(push, 1)
/// Fixed-size container header (16 bytes), written before the first field
/// compresses. The field count is known up front (callers pass the full
/// field list); everything variable-length lives in the tail directory.
struct multi_header {
  u32 magic;    // multi_magic
  u16 version;  // multi_container_version
  u16 nfields;  // >= 1
  u64 digest_header;  // self-digest with this slot zeroed
};

/// One field directory entry (96 bytes). `archive_offset` is relative to
/// the end of multi_header, so entries are independent of header size.
struct field_dir_entry {
  char name[multi_name_bytes];  // NUL-terminated, nonempty, unique
  u8 type;                      // dtype of the field
  u8 pad[7];                    // must be zero
  u64 dims[3];                  // field extents
  u64 archive_offset;           // field archive start, bytes past header
  u64 archive_bytes;            // field archive size
  u64 digest;                   // chunked_hash of the field archive bytes
};
#pragma pack(pop)

static_assert(sizeof(multi_header) == 16 && sizeof(field_dir_entry) == 96,
              "multi-field container layout must stay byte-stable");

[[nodiscard]] inline u64 multi_header_digest(multi_header hdr) {
  hdr.digest_header = 0;
  return common::xxhash64(&hdr, sizeof(hdr), 0);
}

/// Cheap dispatch: does this blob carry the multi-field magic? Single-
/// field archives (v1/v2/v3) and garbage answer false.
[[nodiscard]] inline bool is_multi_container(std::span<const u8> archive) {
  if (archive.size() < sizeof(u32)) return false;
  u32 magic;
  std::memcpy(&magic, archive.data(), sizeof(magic));
  return magic == multi_magic;
}

/// Validate an out-of-band field directory against a payload size: names
/// well-formed and unique, dims/dtype plausible, archive extents tiling
/// the payload contiguously. Shared by the span parse and the streaming
/// reader open, so a forged directory can never slice out of bounds.
inline void validate_field_directory(
    std::span<const field_dir_entry> entries, u64 payload_bytes) {
  u64 arch_at = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const field_dir_entry& e = entries[i];
    const std::size_t nlen =
        ::strnlen(e.name, multi_name_bytes);
    FZMOD_REQUIRE(nlen >= 1 && nlen < multi_name_bytes,
                  status::corrupt_archive,
                  "multi container: field name not NUL-terminated or empty");
    for (const u8 p : e.pad) {
      FZMOD_REQUIRE(p == 0, status::corrupt_archive,
                    "multi container: nonzero entry padding");
    }
    FZMOD_REQUIRE(e.type <= 1, status::corrupt_archive,
                  "multi container: unknown field dtype");
    const dims3 fd{e.dims[0], e.dims[1], e.dims[2]};
    FZMOD_REQUIRE(!fd.len_invalid(), status::corrupt_archive,
                  "multi container: field dims out of supported range");
    FZMOD_REQUIRE(e.archive_offset == arch_at &&
                      e.archive_bytes >= 1 &&
                      e.archive_bytes <= payload_bytes - arch_at,
                  status::corrupt_archive,
                  "multi container: directory does not tile the payload");
    arch_at += e.archive_bytes;
    for (std::size_t j = 0; j < i; ++j) {
      FZMOD_REQUIRE(std::string_view(entries[j].name) !=
                        std::string_view(e.name),
                    status::corrupt_archive,
                    "multi container: duplicate field name");
    }
  }
  FZMOD_REQUIRE(arch_at == payload_bytes, status::corrupt_archive,
                "multi container: directory leaves a tail uncovered");
}

/// Parsed multi-field container: header, directory, and the payload
/// region the directory's archive offsets index into.
struct multi_view {
  multi_header hdr{};
  std::span<const u8> payload;  // between header and directory
  std::vector<field_dir_entry> entries;
};

/// Parse + structurally validate a multi-field container. Digest checks
/// (header self-digest, directory digest) are gated on `check_digests`;
/// per-field archive digests are checked by `select_field` so the caller
/// learns *which* field is damaged.
[[nodiscard]] inline multi_view parse_multi_container(
    std::span<const u8> archive, bool check_digests) {
  FZMOD_REQUIRE(archive.size() >= sizeof(multi_header),
                status::corrupt_archive, "multi container too small");
  multi_view mv;
  std::memcpy(&mv.hdr, archive.data(), sizeof(mv.hdr));
  FZMOD_REQUIRE(mv.hdr.magic == multi_magic &&
                    mv.hdr.version == multi_container_version,
                status::corrupt_archive, "bad multi container header");
  if (check_digests) {
    FZMOD_REQUIRE(multi_header_digest(mv.hdr) == mv.hdr.digest_header,
                  status::corrupt_archive,
                  "multi container: header digest mismatch");
  }
  FZMOD_REQUIRE(mv.hdr.nfields >= 1 && mv.hdr.nfields <= multi_max_fields,
                status::corrupt_archive,
                "multi container: implausible field count");
  const u64 dir_bytes =
      static_cast<u64>(mv.hdr.nfields) * sizeof(field_dir_entry);
  FZMOD_REQUIRE(
      archive.size() >= sizeof(multi_header) + dir_bytes + sizeof(u64),
      status::corrupt_archive, "multi container: directory truncated");
  const std::size_t dir_at = archive.size() - sizeof(u64) -
                             static_cast<std::size_t>(dir_bytes);
  mv.payload = archive.subspan(sizeof(multi_header),
                               dir_at - sizeof(multi_header));
  const std::span<const u8> dir =
      archive.subspan(dir_at, static_cast<std::size_t>(dir_bytes));
  if (check_digests) {
    u64 dir_digest;
    std::memcpy(&dir_digest, archive.data() + dir_at + dir_bytes,
                sizeof(dir_digest));
    FZMOD_REQUIRE(kernels::chunked_hash(dir) == dir_digest,
                  status::corrupt_archive,
                  "multi container: directory digest mismatch");
  }
  mv.entries.resize(mv.hdr.nfields);
  std::memcpy(mv.entries.data(), dir.data(), dir.size());
  validate_field_directory(mv.entries, mv.payload.size());
  return mv;
}

[[nodiscard]] inline multi_view parse_multi_container(
    std::span<const u8> archive) {
  return parse_multi_container(archive, verify_enabled());
}

/// One field's archive bytes within a parsed container.
[[nodiscard]] inline std::span<const u8> field_archive(
    const multi_view& mv, const field_dir_entry& e) {
  return mv.payload.subspan(static_cast<std::size_t>(e.archive_offset),
                            static_cast<std::size_t>(e.archive_bytes));
}

/// Format a container's field names for an error message ("a, b, c").
[[nodiscard]] inline std::string field_name_list(const multi_view& mv) {
  std::string out;
  for (const field_dir_entry& e : mv.entries) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

/// Find a field by name; null when absent.
[[nodiscard]] inline const field_dir_entry* find_field(
    const multi_view& mv, std::string_view name) {
  for (const field_dir_entry& e : mv.entries) {
    if (std::string_view(e.name) == name) return &e;
  }
  return nullptr;
}

/// Resolve a (possibly multi-field) archive span to one field's archive
/// bytes, which any existing v1/v2/v3 decoder accepts unchanged. The
/// returned span aliases `archive`. Selection rules: a single-field
/// archive requires an empty name (naming a field there is a caller
/// error); a multi-field container with exactly one field tolerates an
/// empty name; otherwise the name must match and errors list what is
/// available. The field's archive digest is checked here (gated like
/// every digest) so damage is pinned to the named field.
[[nodiscard]] inline std::span<const u8> select_field(
    std::span<const u8> archive, std::string_view name) {
  if (!is_multi_container(archive)) {
    FZMOD_REQUIRE(name.empty(), status::invalid_argument,
                  "field selection: archive is single-field; --field only "
                  "applies to multi-field containers");
    return archive;
  }
  const multi_view mv = parse_multi_container(archive);
  const field_dir_entry* e = nullptr;
  if (name.empty()) {
    FZMOD_REQUIRE(mv.entries.size() == 1, status::invalid_argument,
                  "multi-field archive holds " +
                      std::to_string(mv.entries.size()) +
                      " fields; pick one with --field (available: " +
                      field_name_list(mv) + ")");
    e = &mv.entries[0];
  } else {
    e = find_field(mv, name);
    FZMOD_REQUIRE(e != nullptr, status::invalid_argument,
                  "multi-field archive: no field named '" +
                      std::string(name) + "' (available: " +
                      field_name_list(mv) + ")");
  }
  const std::span<const u8> fa = field_archive(mv, *e);
  if (verify_enabled()) {
    FZMOD_REQUIRE(kernels::chunked_hash(fa) == e->digest,
                  status::corrupt_archive,
                  "multi container: field '" + std::string(e->name) +
                      "' archive digest mismatch");
  }
  return fa;
}

// --- resume journal ("FZR1") ------------------------------------------------
//
// Crash-safe streaming compression writes a sidecar journal next to the
// output (`out + ".fzr"`): a header binding the journal to one exact
// compression configuration, then one appended record per committed
// chunk. After a crash (SIGKILL included), `--resume` replays the journal
// against the partial output file: a record counts only while its
// directory entry is in-range for the file, its per-record digest checks
// out, AND the chunk bytes on disk hash to the entry's digest — so the
// kernel's independent flush ordering of the two files cannot corrupt a
// resume, only shorten the salvaged prefix. Compression restarts from the
// first chunk that fails this validation. The journal is deleted when the
// archive finalizes; its presence marks an interrupted run.

inline constexpr u32 fzr_magic = 0x465a5231;  // "FZR1"
inline constexpr u16 fzr_journal_version = 1;

#pragma pack(push, 1)
/// Fixed-size journal header (64 bytes). `config_digest` hashes the full
/// pipeline identity (canonical spec text + error bound + mode + dtype +
/// dims + chunk_elems): resuming with ANY differing knob must recompress
/// from scratch rather than splice incompatible chunks.
struct fzr_header {
  u32 magic;          // fzr_magic
  u16 version;        // fzr_journal_version
  u8 type;            // dtype of the field
  u8 pad;             // must be zero
  u64 dims[3];        // full-field extents
  u64 nchunks;        // planned chunk count
  u64 chunk_elems;    // nominal elements per chunk
  u64 config_digest;  // pipeline identity digest
  u64 digest_header;  // self-digest with this slot zeroed
};

/// One committed-chunk record (48 bytes). `record_digest` covers the
/// entry seeded with the record's index, so a record replayed at the
/// wrong position fails validation.
struct fzr_record {
  chunk_dir_entry entry;
  u64 record_digest;
};
#pragma pack(pop)

static_assert(sizeof(fzr_header) == 64 && sizeof(fzr_record) == 48,
              "resume journal layout must stay byte-stable");

[[nodiscard]] inline u64 fzr_header_digest(fzr_header hdr) {
  hdr.digest_header = 0;
  return common::xxhash64(&hdr, sizeof(hdr), 0);
}

[[nodiscard]] inline u64 fzr_record_digest(const chunk_dir_entry& e,
                                           u64 index) {
  return common::xxhash64(&e, sizeof(e), index);
}

/// Parse a journal defensively: a damaged or torn journal yields the
/// longest valid record prefix, never an exception — resume then simply
/// salvages less. Returns false only if the header itself is unusable.
struct fzr_view {
  fzr_header hdr{};
  std::vector<chunk_dir_entry> records;  // validated prefix, in order
};

[[nodiscard]] inline bool parse_resume_journal(std::span<const u8> bytes,
                                               fzr_view& out) {
  if (bytes.size() < sizeof(fzr_header)) return false;
  std::memcpy(&out.hdr, bytes.data(), sizeof(out.hdr));
  if (out.hdr.magic != fzr_magic ||
      out.hdr.version != fzr_journal_version || out.hdr.pad != 0 ||
      fzr_header_digest(out.hdr) != out.hdr.digest_header) {
    return false;
  }
  const std::size_t nrec =
      (bytes.size() - sizeof(fzr_header)) / sizeof(fzr_record);
  out.records.reserve(nrec);
  for (std::size_t i = 0; i < nrec && i < out.hdr.nchunks; ++i) {
    fzr_record r;
    std::memcpy(&r, bytes.data() + sizeof(fzr_header) +
                        i * sizeof(fzr_record),
                sizeof(r));
    if (fzr_record_digest(r.entry, i) != r.record_digest) break;
    out.records.push_back(r.entry);
  }
  return true;
}

// --- varint / outlier unpacking (continued) -------------------------------

/// Unpack a delta-coded outlier list. `index_limit` bounds every decoded
/// index (pass the field length): a delta that wraps the u64 accumulator
/// or lands outside the field throws instead of producing an index a
/// scatter loop could write through.
inline std::vector<kernels::outlier> unpack_outliers(
    std::span<const u8> bytes, u64 count, u64 index_limit) {
  std::vector<kernels::outlier> out;
  out.reserve(count);
  const u8* p = bytes.data();
  const u8* end = p + bytes.size();
  u64 prev = 0;
  for (u64 k = 0; k < count; ++k) {
    const u64 delta = get_varint(p, end);
    // prev < index_limit holds inductively, so this also rules out u64
    // wraparound of the accumulated index.
    FZMOD_REQUIRE(delta < index_limit - prev, status::corrupt_archive,
                  "archive: outlier index out of range");
    prev += delta;
    const i64 value = zigzag_decode64(get_varint(p, end));
    out.push_back({prev, value});
  }
  return out;
}

}  // namespace fzmod::core::fmt
