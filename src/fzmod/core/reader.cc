// FZModules — seekable reader implementation. See reader.hh for the model:
// one directory parse per open (container scan or imported .fzx sidecar),
// an LRU cache of decoded chunks under a byte budget, and an N-way
// stride prefetcher feeding a bounded worker pool. All shared state lives
// under one mutex; decoded chunks publish as immutable shared_ptrs, so
// copies out of the cache run outside the lock.

#include "fzmod/core/reader.hh"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <list>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "fzmod/common/env.hh"
#include "fzmod/data/io.hh"
#include "fzmod/kernels/chunked_hash.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod::core {

namespace {

template <class T>
[[nodiscard]] dtype dtype_of();
template <>
dtype dtype_of<f32>() {
  return dtype::f32;
}
template <>
dtype dtype_of<f64>() {
  return dtype::f64;
}

}  // namespace

std::size_t reader_options::resolve_cache_bytes() const {
  if (cache_bytes) return cache_bytes;
  std::size_t mb =
      cache_mb ? cache_mb
               : static_cast<std::size_t>(
                     common::env_u64("FZMOD_READER_CACHE_MB", 256));
  if (mb == 0) mb = 1;
  return mb << 20;
}

unsigned reader_options::resolve_prefetch() const {
  const u64 ways =
      prefetch >= 0 ? static_cast<u64>(prefetch)
                    : common::env_u64("FZMOD_READER_PREFETCH", 2);
  return static_cast<unsigned>(std::min<u64>(ways, 64));
}

unsigned reader_options::resolve_jobs() const {
  std::size_t j = jobs ? jobs
                       : static_cast<std::size_t>(
                             common::env_u64("FZMOD_JOBS", 4));
  if (j == 0) j = 1;
  return static_cast<unsigned>(std::min<std::size_t>(j, 64));
}

template <class T>
struct reader<T>::impl {
  // --- immutable after open ------------------------------------------------
  pipeline_config cfg;
  std::size_t cache_budget = 0;
  unsigned ways = 0;
  unsigned njobs = 1;
  byte_source fetch;        // unified byte access (span, file, or stream)
  u64 total_bytes = 0;      // container size
  std::vector<u8> owned;    // backing storage for file opens
  bool plain = false;       // v1/v2 archive: one implicit chunk, no digest
  dims3 fdims;
  u64 n = 0;                // field elements
  u64 payload_off = 0;      // byte offset of the chunk payload region
  fmt::chunk_header_v3 chdr{};
  std::vector<fmt::chunk_dir_entry> entries;

  // --- shared state (everything below lives under `mu`) --------------------
  struct entry {
    std::shared_ptr<const std::vector<T>> data;  // null while decoding
    std::exception_ptr err;   // sticky decode failure
    bool ready = false;
    bool speculative = false;  // prefetched, not yet consumed by a read
    unsigned pinned = 0;       // reads waiting on it (blocks eviction)
    bool in_lru = false;
    std::list<std::size_t>::iterator lru_it{};
  };

  std::mutex mu;
  std::condition_variable cv_ready;  // an entry became ready
  std::condition_variable cv_work;   // a queue became nonempty / shutdown
  std::unordered_map<std::size_t, entry> cache;
  std::list<std::size_t> lru;  // front = most recently used
  std::size_t cached_bytes = 0;
  std::deque<std::size_t> demand_q;    // served first
  std::deque<std::size_t> prefetch_q;  // speculation, served when idle
  bool shutdown = false;
  reader_stats st;
  bool have_prev = false;     // stride predictor state
  std::size_t prev_first = 0;
  i64 last_delta = 0;

  std::vector<std::thread> workers;

  ~impl() {
    {
      std::lock_guard lk(mu);
      shutdown = true;
    }
    cv_work.notify_all();
    for (auto& w : workers) w.join();
  }

  // --- open ----------------------------------------------------------------

  void open(std::span<const u8> index, const reader_options& opt) {
    cache_budget = opt.resolve_cache_bytes();
    ways = opt.resolve_prefetch();
    njobs = opt.resolve_jobs();
    // Resolve module names up front so a bad config throws here, not on a
    // worker thread mid-read (same contract as chunked_pipeline).
    pipeline<T> probe(cfg);
    (void)probe;

    FZMOD_REQUIRE(total_bytes >= sizeof(u32), status::corrupt_archive,
                  "reader: archive too small");
    u32 magic = 0;
    fetch(reinterpret_cast<u8*>(&magic), 0, sizeof(magic));
    if (magic == fmt::chunk_magic_v3) {
      open_container(index, opt);
    } else {
      open_plain();
    }
    workers.reserve(njobs);
    for (unsigned w = 0; w < njobs; ++w) {
      workers.emplace_back([this] { worker(); });
    }
  }

  /// v3 container open: validate the 56-byte header, then source the
  /// directory from the sidecar index (when given and it checks out
  /// against this exact container) or from the trailing directory scan.
  void open_container(std::span<const u8> index,
                      const reader_options& opt) {
    FZMOD_REQUIRE(total_bytes >= sizeof(fmt::chunk_header_v3),
                  status::corrupt_archive, "chunk container too small");
    fetch(reinterpret_cast<u8*>(&chdr), 0, sizeof(chdr));
    FZMOD_REQUIRE(chdr.magic == fmt::chunk_magic_v3 &&
                      chdr.version == fmt::chunk_container_version,
                  status::corrupt_archive, "bad chunk container header");
    FZMOD_REQUIRE(chdr.pad == 0, status::corrupt_archive,
                  "chunk container: nonzero padding");
    if (fmt::verify_enabled()) {
      FZMOD_REQUIRE(fmt::chunk_header_digest(chdr) == chdr.digest_header,
                    status::corrupt_archive,
                    "chunk container: header digest mismatch");
    }
    fdims = dims3{chdr.dims[0], chdr.dims[1], chdr.dims[2]};
    FZMOD_REQUIRE(!fdims.len_invalid(), status::corrupt_archive,
                  "chunk container dims out of supported range");
    FZMOD_REQUIRE(chdr.type == static_cast<u8>(dtype_of<T>()),
                  status::invalid_argument,
                  "reader: chunk container holds a different dtype");
    n = fdims.len();
    FZMOD_REQUIRE(chdr.nchunks >= 1 && chdr.nchunks <= n,
                  status::corrupt_archive,
                  "chunk container: implausible chunk count");
    const u64 dir_bytes = chdr.nchunks * sizeof(fmt::chunk_dir_entry);
    FZMOD_REQUIRE(total_bytes >= sizeof(fmt::chunk_header_v3) + dir_bytes +
                                     sizeof(u64),
                  status::corrupt_archive,
                  "chunk container: directory truncated");
    payload_off = sizeof(fmt::chunk_header_v3);
    const u64 payload_bytes =
        total_bytes - payload_off - dir_bytes - sizeof(u64);

    if (!index.empty()) {
      // Any fzmod::error while vetting the index — damaged sidecar, a
      // container that has since been rewritten, a forged directory —
      // degrades to the scan below. Never a crash, never trusted blindly.
      try {
        import_index(index, payload_bytes, opt);
        st.index_used = true;
        trace::instant("reader", "open.index");
        return;
      } catch (const error&) {
        trace::instant("reader", "index.rejected");
      }
    }
    scan_directory(dir_bytes, payload_bytes);
    trace::instant("reader", "open.dirscan");
  }

  /// Vet a sidecar index against this container: identity fields, exact
  /// container size, whole-container digest (the stale detector; gated by
  /// check_index_digest), and full structural screening of the imported
  /// directory — a forged entry must not be able to slice out of bounds.
  void import_index(std::span<const u8> index, u64 payload_bytes,
                    const reader_options& opt) {
    const fmt::fzx_view fv = fmt::parse_index(index);
    FZMOD_REQUIRE(fv.hdr.type == chdr.type &&
                      fv.hdr.dims[0] == chdr.dims[0] &&
                      fv.hdr.dims[1] == chdr.dims[1] &&
                      fv.hdr.dims[2] == chdr.dims[2] &&
                      fv.hdr.nchunks == chdr.nchunks &&
                      fv.hdr.chunk_elems == chdr.chunk_elems,
                  status::corrupt_archive,
                  "fzx index: field identity does not match the container");
    FZMOD_REQUIRE(fv.hdr.container_bytes == total_bytes,
                  status::corrupt_archive,
                  "fzx index: container size mismatch (stale index)");
    if (opt.check_index_digest) {
      FZMOD_REQUIRE(container_digest() == fv.hdr.container_digest,
                    status::corrupt_archive,
                    "fzx index: container digest mismatch (stale index)");
    }
    fmt::validate_chunk_directory(fv.entries, n, payload_bytes);
    entries = fv.entries;
  }

  void scan_directory(u64 dir_bytes, u64 payload_bytes) {
    std::vector<u8> dir(static_cast<std::size_t>(dir_bytes) + sizeof(u64));
    fetch(dir.data(), total_bytes - dir.size(), dir.size());
    if (fmt::verify_enabled()) {
      u64 dir_digest = 0;
      std::memcpy(&dir_digest, dir.data() + dir_bytes, sizeof(dir_digest));
      FZMOD_REQUIRE(
          kernels::chunked_hash(std::span<const u8>(dir.data(),
                                                    dir_bytes)) ==
              dir_digest,
          status::corrupt_archive,
          "chunk container: directory digest mismatch");
    }
    entries.resize(chdr.nchunks);
    std::memcpy(entries.data(), dir.data(), dir_bytes);
    fmt::validate_chunk_directory(entries, n, payload_bytes);
  }

  /// v1/v2 archive: the whole archive is one implicit chunk. Streaming
  /// sources are materialized (plain archives are not the huge-container
  /// case the streaming open exists for).
  void open_plain() {
    std::vector<u8> buf;
    std::span<const u8> whole;
    if (owned.size() == total_bytes) {
      whole = owned;
    } else {
      buf.resize(static_cast<std::size_t>(total_bytes));
      fetch(buf.data(), 0, buf.size());
      whole = buf;
    }
    const archive_info ai = inspect_archive(whole);
    FZMOD_REQUIRE(ai.type == dtype_of<T>(), status::invalid_argument,
                  "reader: archive holds a different dtype");
    plain = true;
    fdims = ai.dims;
    n = fdims.len();
    payload_off = 0;
    fmt::chunk_dir_entry e{};
    e.raw_offset = 0;
    e.raw_len = n;
    e.archive_offset = 0;
    e.archive_bytes = total_bytes;
    e.digest = 0;  // the inner archive carries its own digests
    entries.push_back(e);
  }

  [[nodiscard]] u64 container_digest() const {
    return kernels::chunked_hash_stream(
        total_bytes,
        [this](u8* dst, u64 off, std::size_t len) { fetch(dst, off, len); });
  }

  // --- cache machinery (all *_locked methods require `mu`) -----------------

  [[nodiscard]] std::size_t find_chunk(u64 elem) const {
    std::size_t at = 0;
    // Entries tile the field contiguously; binary search the run start.
    std::size_t lo = 0, hi = entries.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries[mid].raw_offset + entries[mid].raw_len <= elem) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    at = lo;
    return at;
  }

  /// Record interest in a chunk. Demand requests pin the entry (the
  /// caller must wait_locked or unpin it) and count hit/miss; speculative
  /// requests only enqueue if the chunk is absent.
  void request_locked(std::size_t id, bool demand) {
    auto it = cache.find(id);
    if (it != cache.end()) {
      entry& e = it->second;
      if (demand) {
        ++st.hits;
        ++e.pinned;
        if (e.speculative) {
          e.speculative = false;
          ++st.prefetch_used;
        }
        if (e.in_lru) lru.splice(lru.begin(), lru, e.lru_it);
      }
      return;
    }
    if (!demand) {
      entry e;
      e.speculative = true;
      cache.emplace(id, std::move(e));
      prefetch_q.push_back(id);
      ++st.prefetch_issued;
      return;
    }
    ++st.misses;
    entry e;
    e.pinned = 1;
    cache.emplace(id, std::move(e));
    demand_q.push_back(id);
  }

  /// Stride predictor: speculate only on a confirmed pattern (two equal
  /// consecutive first-chunk deltas), plus plain sequential-ahead on the
  /// very first read — random access then costs nothing, scans prefetch
  /// from the second read onward.
  void issue_prefetch_locked(std::size_t first, std::size_t last) {
    if (ways == 0 || entries.size() <= 1) return;
    i64 step = 0;
    if (!have_prev) {
      step = 1;
    } else {
      const i64 d = static_cast<i64>(first) - static_cast<i64>(prev_first);
      if (d != 0 && d == last_delta) step = d;
      last_delta = d;
    }
    have_prev = true;
    prev_first = first;
    if (step == 0) return;
    if (step == static_cast<i64>(last - first)) {
      // Contiguous forward scan: the next reads touch every chunk past
      // the current run, so speculate densely.
      for (unsigned k = 0; k < ways; ++k) {
        const std::size_t t = last + k;
        if (t >= entries.size()) break;
        request_locked(t, /*demand=*/false);
      }
    } else {
      // Strided access: speculate on the predicted first chunks of the
      // next reads (forward or backward).
      for (unsigned k = 1; k <= ways; ++k) {
        const i64 t = static_cast<i64>(first) + static_cast<i64>(k) * step;
        if (t < 0 || t >= static_cast<i64>(entries.size())) break;
        request_locked(static_cast<std::size_t>(t), /*demand=*/false);
      }
    }
  }

  /// Wait for a demand-requested chunk, unpin it, and hand back its data.
  /// Sticky decode failures rethrow here (and on every retry).
  [[nodiscard]] std::shared_ptr<const std::vector<T>> wait_locked(
      std::unique_lock<std::mutex>& lk, std::size_t id) {
    cv_ready.wait(lk, [&] {
      auto it = cache.find(id);
      return it != cache.end() && it->second.ready;
    });
    entry& e = cache.find(id)->second;
    if (e.pinned) --e.pinned;
    if (e.err) std::rethrow_exception(e.err);
    return e.data;
  }

  void unpin_locked(std::size_t id) {
    auto it = cache.find(id);
    if (it != cache.end() && it->second.pinned) --it->second.pinned;
  }

  /// Drop least-recently-used chunks until the budget holds. Pinned
  /// entries (a read is between request and copy) are skipped; evicting a
  /// never-consumed speculative chunk counts as wasted prefetch.
  void evict_locked() {
    while (cached_bytes > cache_budget && !lru.empty()) {
      auto it = std::prev(lru.end());
      while (cache.find(*it)->second.pinned) {
        if (it == lru.begin()) return;  // everything pinned: over budget
        --it;
      }
      const std::size_t id = *it;
      entry& e = cache.find(id)->second;
      cached_bytes -= e.data->size() * sizeof(T);
      ++st.evictions;
      if (e.speculative) ++st.prefetch_wasted;
      lru.erase(it);
      cache.erase(id);
    }
  }

  void sample_counters_locked() {
    if (!trace::enabled()) return;
    trace::counter("reader.cache.hit", static_cast<f64>(st.hits));
    trace::counter("reader.cache.miss", static_cast<f64>(st.misses));
    trace::counter("reader.cache.evict", static_cast<f64>(st.evictions));
    trace::counter("reader.prefetch.issued",
                   static_cast<f64>(st.prefetch_issued));
    trace::counter("reader.prefetch.used",
                   static_cast<f64>(st.prefetch_used));
    trace::counter("reader.prefetch.wasted",
                   static_cast<f64>(st.prefetch_wasted));
  }

  // --- decode workers ------------------------------------------------------

  void worker() {
    // Per-slot working set, chunk-scheduler shape: the stream is declared
    // last so it drains before the slot's buffers free on unwind.
    device::buffer<T> dev;
    std::vector<u8> scratch;
    pipeline<T> pipe(cfg);
    device::stream s;
    std::unique_lock lk(mu);
    for (;;) {
      cv_work.wait(lk, [&] {
        return shutdown || !demand_q.empty() || !prefetch_q.empty();
      });
      if (shutdown) break;
      std::size_t id;
      if (!demand_q.empty()) {
        id = demand_q.front();
        demand_q.pop_front();
      } else {
        id = prefetch_q.front();
        prefetch_q.pop_front();
      }
      auto it = cache.find(id);
      if (it == cache.end() || it->second.ready) continue;
      lk.unlock();
      std::shared_ptr<std::vector<T>> data;
      std::exception_ptr err;
      const u64 t0 = trace::enabled() ? trace::now_ns() : 0;
      try {
        data = decode_one(id, dev, scratch, pipe, s);
      } catch (...) {
        err = std::current_exception();
      }
      if (t0) {
        trace::complete("reader", "decode#" + std::to_string(id), t0,
                        trace::now_ns() - t0, 0,
                        static_cast<f64>(entries[id].raw_len));
      }
      lk.lock();
      it = cache.find(id);
      if (it == cache.end()) continue;  // cancelled while decoding
      entry& e = it->second;
      e.ready = true;
      if (err) {
        e.err = err;
      } else {
        e.data = std::move(data);
        cached_bytes += e.data->size() * sizeof(T);
        lru.push_front(id);
        e.lru_it = lru.begin();
        e.in_lru = true;
        evict_locked();
      }
      cv_ready.notify_all();
    }
  }

  [[nodiscard]] std::shared_ptr<std::vector<T>> decode_one(
      std::size_t id, device::buffer<T>& dev, std::vector<u8>& scratch,
      pipeline<T>& pipe, device::stream& s) {
    const fmt::chunk_dir_entry& e = entries[id];
    scratch.resize(static_cast<std::size_t>(e.archive_bytes));
    fetch(scratch.data(), payload_off + e.archive_offset, scratch.size());
    const std::span<const u8> bytes(scratch.data(), scratch.size());
    if (!plain && fmt::verify_enabled()) {
      FZMOD_REQUIRE(kernels::chunked_hash(bytes) == e.digest,
                    status::corrupt_archive,
                    "reader: chunk " + std::to_string(id) +
                        " archive digest mismatch");
    }
    auto out = std::make_shared<std::vector<T>>(
        static_cast<std::size_t>(e.raw_len));
    dev.ensure(e.raw_len, device::space::device);
    pipe.decompress(bytes, dev, s);
    device::memcpy_async(out->data(), dev.data(), e.raw_len * sizeof(T),
                         device::copy_kind::d2h, s);
    s.sync();
    return out;
  }
};

// --- public surface --------------------------------------------------------

template <class T>
reader<T>::reader(std::unique_ptr<impl> pimpl) : impl_(std::move(pimpl)) {}

namespace {

template <class T>
[[nodiscard]] typename reader<T>::byte_source span_source(
    std::span<const u8> archive) {
  return [archive](u8* dst, u64 off, std::size_t len) {
    std::memcpy(dst, archive.data() + off, len);
  };
}

}  // namespace

template <class T>
reader<T>::reader(std::span<const u8> archive, reader_options opt,
                  pipeline_config cfg)
    : reader(archive, std::span<const u8>{}, std::move(opt),
             std::move(cfg)) {}

template <class T>
reader<T>::reader(std::span<const u8> archive, std::span<const u8> index,
                  reader_options opt, pipeline_config cfg)
    : impl_(std::make_unique<impl>()) {
  impl_->cfg = std::move(cfg);
  impl_->fetch = span_source<T>(archive);
  impl_->total_bytes = archive.size();
  impl_->open(index, opt);
}

template <class T>
reader<T>::reader(std::span<const u8> archive, std::string_view field,
                  reader_options opt, pipeline_config cfg)
    : reader(fmt::select_field(archive, field), std::move(opt),
             std::move(cfg)) {}

template <class T>
reader<T>::reader(byte_source src, u64 container_bytes, reader_options opt,
                  pipeline_config cfg)
    : reader(std::move(src), container_bytes, std::span<const u8>{},
             std::move(opt), std::move(cfg)) {}

template <class T>
reader<T>::reader(byte_source src, u64 container_bytes,
                  std::span<const u8> index, reader_options opt,
                  pipeline_config cfg)
    : impl_(std::make_unique<impl>()) {
  impl_->cfg = std::move(cfg);
  impl_->fetch = std::move(src);
  impl_->total_bytes = container_bytes;
  impl_->open(index, opt);
}

template <class T>
reader<T> reader<T>::open_field(byte_source src, u64 container_bytes,
                                std::string_view field, reader_options opt,
                                pipeline_config cfg) {
  FZMOD_REQUIRE(container_bytes >= sizeof(u32), status::corrupt_archive,
                "reader: archive too small");
  u32 magic = 0;
  src(reinterpret_cast<u8*>(&magic), 0, sizeof(magic));
  if (magic != fmt::multi_magic) {
    FZMOD_REQUIRE(field.empty(), status::invalid_argument,
                  "field selection: archive is single-field; --field only "
                  "applies to multi-field containers");
    return reader(std::move(src), container_bytes, std::move(opt),
                  std::move(cfg));
  }

  fmt::multi_view mv;
  FZMOD_REQUIRE(container_bytes >= sizeof(fmt::multi_header),
                status::corrupt_archive, "multi container too small");
  src(reinterpret_cast<u8*>(&mv.hdr), 0, sizeof(mv.hdr));
  FZMOD_REQUIRE(mv.hdr.version == fmt::multi_container_version,
                status::corrupt_archive, "bad multi container header");
  if (fmt::verify_enabled()) {
    FZMOD_REQUIRE(fmt::multi_header_digest(mv.hdr) == mv.hdr.digest_header,
                  status::corrupt_archive,
                  "multi container: header digest mismatch");
  }
  FZMOD_REQUIRE(mv.hdr.nfields >= 1 &&
                    mv.hdr.nfields <= fmt::multi_max_fields,
                status::corrupt_archive,
                "multi container: implausible field count");
  const u64 dir_bytes =
      static_cast<u64>(mv.hdr.nfields) * sizeof(fmt::field_dir_entry);
  FZMOD_REQUIRE(container_bytes >=
                    sizeof(fmt::multi_header) + dir_bytes + sizeof(u64),
                status::corrupt_archive,
                "multi container: directory truncated");
  std::vector<u8> tail(static_cast<std::size_t>(dir_bytes) + sizeof(u64));
  src(tail.data(), container_bytes - tail.size(), tail.size());
  if (fmt::verify_enabled()) {
    u64 dir_digest = 0;
    std::memcpy(&dir_digest, tail.data() + dir_bytes, sizeof(dir_digest));
    FZMOD_REQUIRE(kernels::chunked_hash(std::span<const u8>(
                      tail.data(), static_cast<std::size_t>(dir_bytes))) ==
                      dir_digest,
                  status::corrupt_archive,
                  "multi container: directory digest mismatch");
  }
  mv.entries.resize(mv.hdr.nfields);
  std::memcpy(mv.entries.data(), tail.data(),
              static_cast<std::size_t>(dir_bytes));
  const u64 payload_bytes =
      container_bytes - sizeof(fmt::multi_header) - dir_bytes - sizeof(u64);
  fmt::validate_field_directory(mv.entries, payload_bytes);

  const fmt::field_dir_entry* e = nullptr;
  if (field.empty()) {
    FZMOD_REQUIRE(mv.entries.size() == 1, status::invalid_argument,
                  "multi-field archive holds " +
                      std::to_string(mv.entries.size()) +
                      " fields; pick one with --field (available: " +
                      fmt::field_name_list(mv) + ")");
    e = &mv.entries[0];
  } else {
    e = fmt::find_field(mv, field);
    FZMOD_REQUIRE(e != nullptr, status::invalid_argument,
                  "multi-field archive: no field named '" +
                      std::string(field) + "' (available: " +
                      fmt::field_name_list(mv) + ")");
  }
  const u64 base = sizeof(fmt::multi_header) + e->archive_offset;
  const u64 bytes = e->archive_bytes;
  if (fmt::verify_enabled()) {
    const u64 got = kernels::chunked_hash_stream(
        bytes, [&](u8* dst, u64 off, std::size_t len) {
          src(dst, base + off, len);
        });
    FZMOD_REQUIRE(got == e->digest, status::corrupt_archive,
                  "multi container: field '" + std::string(e->name) +
                      "' archive digest mismatch");
  }
  byte_source sub = [src = std::move(src), base](u8* dst, u64 off,
                                                 std::size_t len) {
    src(dst, base + off, len);
  };
  return reader(std::move(sub), bytes, std::move(opt), std::move(cfg));
}

template <class T>
reader<T> reader<T>::open_file(const std::string& path, reader_options opt,
                               pipeline_config cfg) {
  return open_file(path, std::string{}, std::move(opt), std::move(cfg));
}

template <class T>
reader<T> reader<T>::open_file(const std::string& path,
                               const std::string& index_path,
                               reader_options opt, pipeline_config cfg) {
  auto pimpl = std::make_unique<impl>();
  pimpl->cfg = std::move(cfg);
  pimpl->owned = data::read_file(path);
  pimpl->total_bytes = pimpl->owned.size();
  const std::vector<u8>& o = pimpl->owned;
  pimpl->fetch = [&o](u8* dst, u64 off, std::size_t len) {
    std::memcpy(dst, o.data() + off, len);
  };
  std::vector<u8> index;
  if (!index_path.empty()) index = data::read_file(index_path);
  pimpl->open(index, opt);
  return reader(std::move(pimpl));
}

template <class T>
reader<T>::reader(reader&&) noexcept = default;
template <class T>
reader<T>& reader<T>::operator=(reader&&) noexcept = default;
template <class T>
reader<T>::~reader() = default;

template <class T>
dims3 reader<T>::dims() const {
  return impl_->fdims;
}
template <class T>
u64 reader<T>::size() const {
  return impl_->n;
}
template <class T>
u64 reader<T>::nchunks() const {
  return impl_->entries.size();
}

template <class T>
std::vector<T> reader<T>::read(u64 elem_offset, u64 elem_count) {
  impl& im = *impl_;
  require_range(elem_offset, elem_count, im.n, "reader::read");
  FZMOD_TRACE_SPAN("reader", "read");
  const u64 lo = elem_offset, hi = elem_offset + elem_count;
  const std::size_t first = im.find_chunk(lo);
  std::size_t last = first;
  while (last < im.entries.size() && im.entries[last].raw_offset < hi)
    ++last;

  std::vector<std::shared_ptr<const std::vector<T>>> datas(last - first);
  {
    std::unique_lock lk(im.mu);
    ++im.st.reads;
    for (std::size_t id = first; id < last; ++id) {
      im.request_locked(id, /*demand=*/true);
    }
    im.issue_prefetch_locked(first, last);
    im.cv_work.notify_all();
    std::size_t at = first;
    try {
      for (; at < last; ++at) {
        datas[at - first] = im.wait_locked(lk, at);
      }
    } catch (...) {
      for (std::size_t id = at + 1; id < last; ++id) im.unpin_locked(id);
      im.sample_counters_locked();
      throw;
    }
    im.sample_counters_locked();
  }

  // Slice copies run outside the lock: the shared_ptrs keep the decoded
  // chunks alive even if the cache evicts them meanwhile.
  std::vector<T> out(static_cast<std::size_t>(elem_count));
  for (std::size_t id = first; id < last; ++id) {
    const fmt::chunk_dir_entry& e = im.entries[id];
    const u64 a = std::max(lo, e.raw_offset);
    const u64 b = std::min(hi, e.raw_offset + e.raw_len);
    std::memcpy(out.data() + (a - lo),
                datas[id - first]->data() + (a - e.raw_offset),
                static_cast<std::size_t>(b - a) * sizeof(T));
  }
  return out;
}

template <class T>
std::shared_ptr<const std::vector<T>> reader<T>::fetch_chunk(
    std::size_t id) {
  impl& im = *impl_;
  FZMOD_TRACE_SPAN("reader", "cursor-step");
  std::unique_lock lk(im.mu);
  ++im.st.reads;
  im.request_locked(id, /*demand=*/true);
  // Cursor walks are sequential by construction: prefetch straight ahead.
  for (unsigned k = 1; k <= im.ways; ++k) {
    if (id + k >= im.entries.size()) break;
    im.request_locked(id + k, /*demand=*/false);
  }
  im.cv_work.notify_all();
  auto data = im.wait_locked(lk, id);
  im.sample_counters_locked();
  return data;
}

template <class T>
reader<T>::chunk_cursor::chunk_cursor(reader& r, u64 lo, u64 hi,
                                      std::size_t first_chunk)
    : r_(&r), lo_(lo), hi_(hi), at_(first_chunk) {}

template <class T>
bool reader<T>::chunk_cursor::next(chunk_view& out) {
  const auto& entries = r_->impl_->entries;
  if (at_ >= entries.size() || entries[at_].raw_offset >= hi_) {
    held_.reset();
    return false;
  }
  held_ = r_->fetch_chunk(at_);
  const fmt::chunk_dir_entry& e = entries[at_];
  const u64 a = std::max(lo_, e.raw_offset);
  const u64 b = std::min(hi_, e.raw_offset + e.raw_len);
  out.index = at_;
  out.offset = a;
  out.data = std::span<const T>(held_->data() + (a - e.raw_offset),
                                static_cast<std::size_t>(b - a));
  ++at_;
  return true;
}

template <class T>
typename reader<T>::chunk_cursor reader<T>::chunks(u64 elem_offset,
                                                   u64 elem_count) {
  require_range(elem_offset, elem_count, impl_->n, "reader::chunks");
  return chunk_cursor(*this, elem_offset, elem_offset + elem_count,
                      impl_->find_chunk(elem_offset));
}

template <class T>
std::vector<u8> reader<T>::export_index() const {
  const impl& im = *impl_;
  FZMOD_REQUIRE(!im.plain, status::unsupported,
                "export_index: plain v1/v2 archives have no chunk "
                "directory to index");
  fmt::chunk_container_view cv;
  cv.hdr = im.chdr;
  cv.entries = im.entries;
  return fmt::build_index(cv, im.total_bytes, im.container_digest());
}

template <class T>
reader_stats reader<T>::stats() const {
  std::lock_guard lk(impl_->mu);
  return impl_->st;
}

template class reader<f32>;
template class reader<f64>;

}  // namespace fzmod::core
