// FZModules — built-in stage modules wrapping the algorithm kernels, plus
// the registry singletons that register them on first use.
#include <atomic>
#include <cmath>
#include <cstring>

#include "fzmod/core/registry.hh"
#include "fzmod/encoders/fixed_length.hh"
#include "fzmod/encoders/fzg.hh"
#include "fzmod/encoders/huffman.hh"
#include "fzmod/encoders/szx_block.hh"
#include "fzmod/kernels/histogram.hh"
#include "fzmod/kernels/stats.hh"
#include "fzmod/predictors/delta.hh"
#include "fzmod/predictors/interp.hh"
#include "fzmod/predictors/lorenzo.hh"

namespace fzmod::core {
namespace {

// ---- Stage 1: preprocessors -------------------------------------------

/// Pass-through: the user bound is already absolute.
template <class T>
class none_preprocessor final : public preprocessor_module<T> {
 public:
  [[nodiscard]] std::string_view name() const override {
    return preprocess_none;
  }
  [[nodiscard]] f64 resolve_ebx2(const device::buffer<T>&,
                                 const eb_config& eb,
                                 device::stream&) override {
    return 2.0 * eb.eb;
  }
};

/// Value-range normalization: scan min/max on the device and scale the
/// bound by the range (paper §3.2's main preprocessing use case). Works
/// for absolute bounds too (the scan is skipped).
template <class T>
class value_range_preprocessor final : public preprocessor_module<T> {
 public:
  [[nodiscard]] std::string_view name() const override {
    return preprocess_value_range;
  }
  [[nodiscard]] f64 resolve_ebx2(const device::buffer<T>& data,
                                 const eb_config& eb,
                                 device::stream& s) override {
    if (eb.mode == eb_mode::abs) return 2.0 * eb.eb;
    kernels::minmax_result<T> mm;
    kernels::minmax_async(data, &mm, s);
    s.sync();
    return 2.0 * eb.resolve(mm.range());
  }
};

/// Log transform: compress log(x) under an *absolute* bound eb, which
/// guarantees the pointwise-relative bound |x - x̂| <= (e^eb - 1)·|x| ≈
/// eb·|x| in the original domain. The standard treatment for fields with
/// huge positive dynamic range (Nyx baryon density). Requires strictly
/// positive, finite inputs — validated during forward().
template <class T>
class log_preprocessor final : public preprocessor_module<T> {
 public:
  [[nodiscard]] std::string_view name() const override {
    return preprocess_log;
  }

  [[nodiscard]] f64 resolve_ebx2(const device::buffer<T>& data,
                                 const eb_config& eb,
                                 device::stream& s) override {
    if (eb.mode == eb_mode::abs) return 2.0 * eb.eb;
    // Relative mode composes: scale by the range *of the log field*.
    kernels::minmax_result<T> mm;
    kernels::minmax_async(data, &mm, s);
    s.sync();
    return 2.0 * eb.resolve(mm.range());
  }

  [[nodiscard]] bool transforms() const override { return true; }

  void forward(const device::buffer<T>& in, device::buffer<T>& out,
               device::stream& s) override {
    in.assert_space(device::space::device);
    out.assert_space(device::space::device);
    const T* ip = in.data();
    T* op = out.data();
    s.enqueue([ip, op, n = in.size()] {
      auto& rt = device::runtime::instance();
      rt.stats().kernels_launched += 1;
      std::atomic<bool> bad{false};
      rt.pool().parallel_for(n, rt.default_block(),
                             [&](std::size_t lo, std::size_t hi) {
                               for (std::size_t i = lo; i < hi; ++i) {
                                 const f64 x = static_cast<f64>(ip[i]);
                                 if (!(x > 0) || !std::isfinite(x)) {
                                   bad.store(true,
                                             std::memory_order_relaxed);
                                   return;
                                 }
                                 op[i] = static_cast<T>(std::log(x));
                               }
                             });
      FZMOD_REQUIRE(!bad.load(), status::invalid_argument,
                    "log preprocessor requires strictly positive finite "
                    "values");
    });
  }

  void inverse(device::buffer<T>& data, device::stream& s) override {
    T* p = data.data();
    device::launch(s, data.size(), [p](std::size_t i) {
      p[i] = static_cast<T>(std::exp(static_cast<f64>(p[i])));
    });
  }
};

// ---- Stage 2: predictors ----------------------------------------------

template <class T>
class lorenzo_module final : public predictor_module<T> {
 public:
  [[nodiscard]] std::string_view name() const override {
    return predictor_lorenzo;
  }
  void compress(const device::buffer<T>& data, dims3 dims, f64 ebx2,
                int radius, const pipeline_config& cfg,
                predictors::quant_field& out,
                predictors::interp_anchors& anchors,
                device::stream& s) override {
    anchors.lattice.clear();
    predictors::lorenzo_compress_async(
        data, dims, ebx2, radius, out, s,
        device::effective_kernel_tier(cfg.kernel_tier));
  }
  void decompress(const predictors::quant_field& field,
                  const predictors::interp_anchors&, device::buffer<T>& out,
                  device::stream& s) override {
    predictors::lorenzo_decompress_async(field, out, s);
  }
};

template <class T>
class spline_module final : public predictor_module<T> {
 public:
  [[nodiscard]] std::string_view name() const override {
    return predictor_spline;
  }
  void compress(const device::buffer<T>& data, dims3 dims, f64 ebx2,
                int radius, const pipeline_config&,
                predictors::quant_field& out,
                predictors::interp_anchors& anchors,
                device::stream& s) override {
    predictors::interp_compress_async(data, dims, ebx2, radius, out, anchors,
                                      s);
  }
  void decompress(const predictors::quant_field& field,
                  const predictors::interp_anchors& anchors,
                  device::buffer<T>& out, device::stream& s) override {
    predictors::interp_decompress_async(field, anchors, out, s);
  }
};

/// Time-series delta: predict each value from the same site in the prior
/// frame (frame stride derived from the dims). Built for checkpoint
/// stacks where the z axis is time.
template <class T>
class delta_module final : public predictor_module<T> {
 public:
  [[nodiscard]] std::string_view name() const override {
    return predictor_delta;
  }
  void compress(const device::buffer<T>& data, dims3 dims, f64 ebx2,
                int radius, const pipeline_config&,
                predictors::quant_field& out,
                predictors::interp_anchors& anchors,
                device::stream& s) override {
    anchors.lattice.clear();
    predictors::delta_compress_async(data, dims, ebx2, radius, out, s);
  }
  void decompress(const predictors::quant_field& field,
                  const predictors::interp_anchors&, device::buffer<T>& out,
                  device::stream& s) override {
    predictors::delta_decompress_async(field, out, s);
  }
};

// ---- Stage 3: primary codecs ------------------------------------------

/// Hybrid CPU Huffman: GPU histogram (standard or top-k per config), D2H
/// transfer of the raw code stream, CPU encode. The D2H of 2 bytes/value
/// is this codec's throughput tax — FZMod-Default accepts it for ratio.
class huffman_codec final : public codec_module {
 public:
  [[nodiscard]] std::string_view name() const override {
    return codec_huffman;
  }

  [[nodiscard]] std::vector<u8> encode(const device::buffer<u16>& codes,
                                       int radius,
                                       const pipeline_config& cfg,
                                       device::stream& s) override {
    const std::size_t nbins = 2 * static_cast<std::size_t>(radius);
    bins_.ensure(nbins, device::space::device);
    kernels::histogram_dispatch_async(
        cfg.histogram, codes, bins_, s,
        device::effective_kernel_tier(cfg.kernel_tier));

    host_codes_.ensure(codes.size(), device::space::host);
    host_bins_.ensure(nbins, device::space::host);
    device::copy_async(host_codes_, codes, s);
    device::copy_async(host_bins_, bins_, s);
    s.sync();

    return encoders::huffman_encode(host_codes_.span(), host_bins_.span());
  }

  void decode(std::span<const u8> blob, int /*radius*/,
              const pipeline_config& cfg, device::buffer<u16>& codes,
              device::stream& s) override {
    host_codes_.ensure(codes.size(), device::space::host);
    if (cfg.huff_tier == encoders::huffman_tier::auto_select) {
      encoders::huffman_decode(blob, host_codes_.span());
    } else {
      encoders::huffman_decode(blob, host_codes_.span(), cfg.huff_tier);
    }
    device::copy_async(codes, host_codes_, s);
    s.sync();
  }

 private:
  // Staging scratch retained across calls (a codec instance belongs to one
  // pipeline and is driven by one call at a time).
  device::buffer<u32> bins_;
  device::buffer<u16> host_codes_;
  device::buffer<u32> host_bins_;
};

/// Device-resident FZ-GPU encoder: bitshuffle + dictionary on the device,
/// only the compressed payload crosses D2H.
class fzg_codec final : public codec_module {
 public:
  [[nodiscard]] std::string_view name() const override { return codec_fzg; }

  [[nodiscard]] std::vector<u8> encode(const device::buffer<u16>& codes,
                                       int radius, const pipeline_config&,
                                       device::stream& s) override {
    encoders::fzg_result enc;
    encoders::fzg_encode_async(codes, radius, enc, s);
    s.sync();

    struct fzg_blob_header {
      u64 n_codes;
      u64 bitmap_words;
      u64 packed_words;
    };
    const fzg_blob_header hdr{enc.n_codes, enc.bitmap_words,
                              enc.packed_words};
    std::vector<u8> blob(sizeof(hdr) + enc.bytes());
    std::memcpy(blob.data(), &hdr, sizeof(hdr));
    device::memcpy_async(blob.data() + sizeof(hdr), enc.payload.data(),
                         enc.bytes(), device::copy_kind::d2h, s);
    s.sync();
    return blob;
  }

  void decode(std::span<const u8> blob, int radius,
              const pipeline_config&, device::buffer<u16>& codes,
              device::stream& s) override {
    struct fzg_blob_header {
      u64 n_codes;
      u64 bitmap_words;
      u64 packed_words;
    };
    FZMOD_REQUIRE(blob.size() >= sizeof(fzg_blob_header),
                  status::corrupt_archive, "fzg: blob too small");
    fzg_blob_header hdr;
    std::memcpy(&hdr, blob.data(), sizeof(hdr));
    // Guard each term before summing (overflow) and before allocating.
    FZMOD_REQUIRE(hdr.bitmap_words <= blob.size() / sizeof(u32) &&
                      hdr.packed_words <= blob.size() / sizeof(u32),
                  status::corrupt_archive, "fzg: implausible word counts");
    FZMOD_REQUIRE(hdr.n_codes == codes.size(), status::corrupt_archive,
                  "fzg: code count does not match archive dims");
    const u64 words = hdr.bitmap_words + hdr.packed_words;
    FZMOD_REQUIRE(blob.size() >= sizeof(hdr) + words * sizeof(u32),
                  status::corrupt_archive, "fzg: truncated payload");
    encoders::fzg_result enc;
    enc.n_codes = hdr.n_codes;
    enc.bitmap_words = hdr.bitmap_words;
    enc.packed_words = hdr.packed_words;
    enc.radius = radius;
    enc.payload = device::buffer<u32>(words, device::space::device);
    device::memcpy_async(enc.payload.data(), blob.data() + sizeof(hdr),
                         words * sizeof(u32), device::copy_kind::h2d, s);
    encoders::fzg_decode_async(enc, codes, s);
    s.sync();
  }
};

/// Blockwise fixed-length codec (cuSZp2's lossless stage) as a modular
/// option: host-side like Huffman (pays the D2H of raw codes) but with a
/// branch-light single pass — between Huffman and FZG on both axes.
class flen_codec final : public codec_module {
 public:
  [[nodiscard]] std::string_view name() const override {
    return codec_flen;
  }

  [[nodiscard]] std::vector<u8> encode(const device::buffer<u16>& codes,
                                       int radius, const pipeline_config&,
                                       device::stream& s) override {
    host_codes_.ensure(codes.size(), device::space::host);
    device::copy_async(host_codes_, codes, s);
    s.sync();
    return encoders::fixed_length_encode(host_codes_.span(), radius);
  }

  void decode(std::span<const u8> blob, int radius,
              const pipeline_config&, device::buffer<u16>& codes,
              device::stream& s) override {
    host_codes_.ensure(codes.size(), device::space::host);
    encoders::fixed_length_decode(blob, radius, host_codes_.span());
    device::copy_async(codes, host_codes_, s);
    s.sync();
  }

 private:
  device::buffer<u16> host_codes_;  // D2H staging, retained across calls
};

/// SZx-style fixed-block codec: constant-block detection plus per-block
/// fixed-length packing. Host-side like flen, but collapses the long
/// constant runs of smooth fields to one flag byte per 128 codes.
class szx_codec final : public codec_module {
 public:
  [[nodiscard]] std::string_view name() const override {
    return codec_fixed_block;
  }

  [[nodiscard]] std::vector<u8> encode(const device::buffer<u16>& codes,
                                       int radius, const pipeline_config&,
                                       device::stream& s) override {
    host_codes_.ensure(codes.size(), device::space::host);
    device::copy_async(host_codes_, codes, s);
    s.sync();
    return encoders::szx_block_encode(host_codes_.span(), radius);
  }

  void decode(std::span<const u8> blob, int radius,
              const pipeline_config&, device::buffer<u16>& codes,
              device::stream& s) override {
    host_codes_.ensure(codes.size(), device::space::host);
    encoders::szx_block_decode(blob, radius, host_codes_.span());
    device::copy_async(codes, host_codes_, s);
    s.sync();
  }

 private:
  device::buffer<u16> host_codes_;  // D2H staging, retained across calls
};

template <class T>
void register_builtins(module_registry<T>& reg) {
  reg.register_preprocessor(
      preprocess_none,
      [] { return std::make_unique<none_preprocessor<T>>(); },
      "pass-through; the user bound is already absolute");
  reg.register_preprocessor(
      preprocess_value_range,
      [] { return std::make_unique<value_range_preprocessor<T>>(); },
      "scale a relative bound by the field's value range");
  reg.register_preprocessor(
      preprocess_log,
      [] { return std::make_unique<log_preprocessor<T>>(); },
      "log transform for pointwise-relative bounds on positive fields");
  reg.register_predictor(
      predictor_lorenzo,
      [] { return std::make_unique<lorenzo_module<T>>(); },
      "multidimensional Lorenzo prediction (fused quantize+predict)");
  reg.register_predictor(
      predictor_spline,
      [] { return std::make_unique<spline_module<T>>(); },
      "cubic-spline interpolation on an anchor lattice");
  reg.register_predictor(
      predictor_delta,
      [] { return std::make_unique<delta_module<T>>(); },
      "time-series delta vs the same site in the prior frame");
  reg.register_codec(
      codec_huffman, [] { return std::make_unique<huffman_codec>(); },
      "canonical Huffman over the quant codes (best ratio, host encode)");
  reg.register_codec(
      codec_fzg, [] { return std::make_unique<fzg_codec>(); },
      "FZ-GPU bitshuffle + dictionary, fully device-resident");
  reg.register_codec(
      codec_flen, [] { return std::make_unique<flen_codec>(); },
      "blockwise fixed-length packing (cuSZp2-style lossless stage)");
  reg.register_codec(
      codec_fixed_block, [] { return std::make_unique<szx_codec>(); },
      "SZx-style constant-block detection + fixed-length encoding");
}

}  // namespace

template <class T>
module_registry<T>& module_registry<T>::instance() {
  static module_registry<T>* reg = [] {
    auto* r = new module_registry<T>();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

template class module_registry<f32>;
template class module_registry<f64>;

}  // namespace fzmod::core
