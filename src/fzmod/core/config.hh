// FZModules — pipeline configuration.
//
// A pipeline is described by *names* of modules for each of the paper's
// four stages (preprocessing, prediction, lossless encoding, secondary
// lossless encoding) plus the quantizer settings. Names resolve through
// the module registry, so user-registered modules participate on equal
// footing with the built-ins (the extensibility contribution of §3.2).
#pragma once

#include <cstdlib>
#include <string>
#include <string_view>

#include "fzmod/common/error.hh"
#include "fzmod/common/types.hh"
#include "fzmod/device/kernel_tier.hh"
#include "fzmod/encoders/huffman.hh"
#include "fzmod/kernels/histogram.hh"

namespace fzmod::core {

/// Built-in module names.
inline constexpr const char* predictor_lorenzo = "lorenzo";
inline constexpr const char* predictor_spline = "spline";
inline constexpr const char* predictor_delta = "delta";
inline constexpr const char* codec_huffman = "huffman";
inline constexpr const char* codec_fzg = "fzg";
inline constexpr const char* codec_flen = "fixed-length";
inline constexpr const char* codec_fixed_block = "fixed-block";
inline constexpr const char* preprocess_none = "none";
inline constexpr const char* preprocess_value_range = "value-range";
inline constexpr const char* preprocess_log = "log";

struct pipeline_config {
  eb_config eb;
  int radius = 512;
  std::string preprocessor = preprocess_value_range;
  std::string predictor = predictor_lorenzo;
  std::string codec = codec_huffman;
  kernels::histogram_kind histogram = kernels::histogram_kind::standard;
  bool secondary = false;  // run the LZ secondary encoder over the archive
  /// Which implementation tier the hot device kernels run in (Lorenzo
  /// prediction, histogram, outlier compaction). `auto_probe` defers to
  /// the process-wide policy (FZMOD_KERNEL_TIER, else a one-time measured
  /// probe); `portable`/`vector` pin this pipeline's launches. Purely an
  /// execution-strategy knob: both tiers produce identical archives.
  device::kernel_tier_policy kernel_tier =
      device::kernel_tier_policy::auto_probe;
  /// Which Huffman decoder tier this pipeline forces (`auto_select`
  /// defers to FZMOD_HUFF_TIER, then to the per-chunk heuristic).
  /// Execution strategy only: every tier decodes every blob identically.
  encoders::huffman_tier huff_tier = encoders::huffman_tier::auto_select;

  /// FZMod-Default (paper §3.3): Lorenzo + standard histogram + CPU
  /// Huffman. Balances throughput, ratio and quality.
  [[nodiscard]] static pipeline_config preset_default(
      eb_config eb = {1e-4, eb_mode::rel});

  /// FZMod-Speed: Lorenzo + FZ-GPU bitshuffle/dictionary encoder; trades
  /// ratio for throughput and keeps the whole pipeline device-resident.
  [[nodiscard]] static pipeline_config preset_speed(
      eb_config eb = {1e-4, eb_mode::rel});

  /// FZMod-Quality: spline interpolation predictor + top-k histogram +
  /// Huffman; best rate-distortion of the family.
  [[nodiscard]] static pipeline_config preset_quality(
      eb_config eb = {1e-4, eb_mode::rel});

  /// Look a preset up by name ("default" | "speed" | "quality"); throws
  /// invalid_argument on anything else. The one preset dispatch every
  /// call site (CLI, daemon, baselines) shares.
  [[nodiscard]] static pipeline_config preset(std::string_view name,
                                              eb_config eb = {1e-4,
                                                              eb_mode::rel});
};

/// Apply the process-environment execution-strategy overrides to a
/// config: FZMOD_KERNEL_TIER and FZMOD_HUFF_TIER. Every construction
/// path (presets, the spec layer, direct configs passed through the CLI)
/// routes here so the env knobs mean the same thing everywhere. Garbage
/// values throw — same strictness as the rest of the FZMOD_* surface.
[[nodiscard]] inline pipeline_config resolved(pipeline_config cfg) {
  if (const char* v = std::getenv("FZMOD_KERNEL_TIER")) {
    cfg.kernel_tier = device::parse_kernel_tier_policy(v);
  }
  if (const char* v = std::getenv("FZMOD_HUFF_TIER")) {
    cfg.huff_tier = encoders::parse_huffman_tier(v);
  }
  return cfg;
}

inline pipeline_config pipeline_config::preset_default(eb_config eb) {
  pipeline_config c;
  c.eb = eb;
  return resolved(std::move(c));
}

inline pipeline_config pipeline_config::preset_speed(eb_config eb) {
  pipeline_config c;
  c.eb = eb;
  c.codec = codec_fzg;
  return resolved(std::move(c));
}

inline pipeline_config pipeline_config::preset_quality(eb_config eb) {
  pipeline_config c;
  c.eb = eb;
  c.predictor = predictor_spline;
  c.histogram = kernels::histogram_kind::topk;
  return resolved(std::move(c));
}

inline pipeline_config pipeline_config::preset(std::string_view name,
                                               eb_config eb) {
  if (name == "default") return preset_default(eb);
  if (name == "speed") return preset_speed(eb);
  if (name == "quality") return preset_quality(eb);
  throw error(status::invalid_argument,
              "unknown preset '" + std::string(name) +
                  "' (expected default|speed|quality)");
}

}  // namespace fzmod::core
