// FZModules — pipeline configuration.
//
// A pipeline is described by *names* of modules for each of the paper's
// four stages (preprocessing, prediction, lossless encoding, secondary
// lossless encoding) plus the quantizer settings. Names resolve through
// the module registry, so user-registered modules participate on equal
// footing with the built-ins (the extensibility contribution of §3.2).
#pragma once

#include <string>

#include "fzmod/common/types.hh"
#include "fzmod/kernels/histogram.hh"

namespace fzmod::core {

/// Built-in module names.
inline constexpr const char* predictor_lorenzo = "lorenzo";
inline constexpr const char* predictor_spline = "spline";
inline constexpr const char* codec_huffman = "huffman";
inline constexpr const char* codec_fzg = "fzg";
inline constexpr const char* codec_flen = "fixed-length";
inline constexpr const char* preprocess_none = "none";
inline constexpr const char* preprocess_value_range = "value-range";
inline constexpr const char* preprocess_log = "log";

struct pipeline_config {
  eb_config eb;
  int radius = 512;
  std::string preprocessor = preprocess_value_range;
  std::string predictor = predictor_lorenzo;
  std::string codec = codec_huffman;
  kernels::histogram_kind histogram = kernels::histogram_kind::standard;
  bool secondary = false;  // run the LZ secondary encoder over the archive
  /// Which implementation tier the hot device kernels run in (Lorenzo
  /// prediction, histogram, outlier compaction). `auto_probe` defers to
  /// the process-wide policy (FZMOD_KERNEL_TIER, else a one-time measured
  /// probe); `portable`/`vector` pin this pipeline's launches. Purely an
  /// execution-strategy knob: both tiers produce identical archives.
  device::kernel_tier_policy kernel_tier =
      device::kernel_tier_policy::auto_probe;

  /// FZMod-Default (paper §3.3): Lorenzo + standard histogram + CPU
  /// Huffman. Balances throughput, ratio and quality.
  [[nodiscard]] static pipeline_config preset_default(
      eb_config eb = {1e-4, eb_mode::rel}) {
    pipeline_config c;
    c.eb = eb;
    return c;
  }

  /// FZMod-Speed: Lorenzo + FZ-GPU bitshuffle/dictionary encoder; trades
  /// ratio for throughput and keeps the whole pipeline device-resident.
  [[nodiscard]] static pipeline_config preset_speed(
      eb_config eb = {1e-4, eb_mode::rel}) {
    pipeline_config c;
    c.eb = eb;
    c.codec = codec_fzg;
    return c;
  }

  /// FZMod-Quality: spline interpolation predictor + top-k histogram +
  /// Huffman; best rate-distortion of the family.
  [[nodiscard]] static pipeline_config preset_quality(
      eb_config eb = {1e-4, eb_mode::rel}) {
    pipeline_config c;
    c.eb = eb;
    c.predictor = predictor_spline;
    c.histogram = kernels::histogram_kind::topk;
    return c;
  }
};

}  // namespace fzmod::core
