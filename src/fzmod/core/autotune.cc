#include "fzmod/core/autotune.hh"

#include <algorithm>
#include <cmath>

#include "fzmod/common/error.hh"

namespace fzmod::core {
namespace {

/// Number of sampled positions (strided, deterministic).
constexpr std::size_t sample_target = 65536;

}  // namespace

autotune_report autotune(std::span<const f32> data, dims3 dims,
                         eb_config eb, objective goal) {
  FZMOD_REQUIRE(data.size() == dims.len(), status::invalid_argument,
                "autotune: data size does not match dims");
  FZMOD_REQUIRE(!data.empty(), status::invalid_argument,
                "autotune: empty input");

  autotune_report rep;
  rep.config.eb = eb;

  // Pass 1: sampled range (needed to resolve relative bounds). A strided
  // sample under-estimates the true range slightly; for tuning that is
  // irrelevant (the real preprocessor re-resolves exactly).
  const std::size_t stride =
      std::max<std::size_t>(1, data.size() / sample_target);
  f64 lo = data[0], hi = data[0];
  for (std::size_t i = 0; i < data.size(); i += stride) {
    lo = std::min<f64>(lo, data[i]);
    hi = std::max<f64>(hi, data[i]);
  }
  rep.sampled_range = hi - lo;
  const f64 ebx2 = 2.0 * eb.resolve(rep.sampled_range);

  // Pass 2: quantized-neighbour-delta statistics along the contiguous
  // dimension (the cheapest honest proxy for predictor behaviour).
  const int radius = rep.config.radius;
  u64 samples = 0, within_radius = 0, zeros = 0;
  const f64 r_ebx2 = 1.0 / ebx2;
  for (std::size_t i = stride; i < data.size(); i += stride) {
    // Use genuinely adjacent pairs (i-1, i), sampled sparsely.
    const f64 a = static_cast<f64>(data[i - 1]) * r_ebx2;
    const f64 b = static_cast<f64>(data[i]) * r_ebx2;
    if (!(std::fabs(a) < 9e15 && std::fabs(b) < 9e15)) continue;
    const i64 delta = std::llrint(b) - std::llrint(a);
    ++samples;
    within_radius += (delta > -radius && delta < radius);
    zeros += (delta == 0);
  }
  rep.predictability =
      samples ? static_cast<f64>(within_radius) / samples : 1.0;
  rep.concentration = samples ? static_cast<f64>(zeros) / samples : 1.0;

  // Decision procedure. Mirrors the manual guidance of paper §3.2/§4.3:
  //  - unpredictable data wastes the spline's extra work: prefer Lorenzo;
  //  - concentrated code distributions favour the top-k histogram;
  //  - the FZG codec buys throughput at ratio cost; Huffman the reverse;
  //  - the secondary pass only pays when the primary output stays
  //    redundant (high concentration) or ratio is the sole objective.
  auto& cfg = rep.config;
  switch (goal) {
    case objective::throughput:
      cfg = pipeline_config::preset_speed(eb);
      rep.rationale = "objective=throughput: Lorenzo + device-resident FZG "
                      "codec (no D2H of raw codes, no CPU Huffman)";
      break;
    case objective::quality:
      cfg = pipeline_config::preset_quality(eb);
      if (rep.predictability < 0.5) {
        // Spline cannot beat Lorenzo when even adjacent deltas blow the
        // radius; fall back so quality doesn't cost ratio for nothing.
        cfg.predictor = predictor_lorenzo;
        cfg.histogram = kernels::histogram_kind::standard;
        rep.rationale = "objective=quality, but sampled predictability " +
                        std::to_string(rep.predictability) +
                        " < 0.5: spline would mostly emit outliers; "
                        "using Lorenzo + Huffman instead";
      } else {
        rep.rationale = "objective=quality: spline predictor + top-k "
                        "histogram + Huffman";
      }
      break;
    case objective::ratio:
      cfg = pipeline_config::preset_default(eb);
      cfg.secondary = true;
      if (rep.predictability >= 0.5 && rep.concentration >= 0.4) {
        cfg.predictor = predictor_spline;
        cfg.histogram = kernels::histogram_kind::topk;
        rep.rationale = "objective=ratio: predictable + concentrated "
                        "sample -> spline + top-k + Huffman + secondary LZ";
      } else {
        rep.rationale = "objective=ratio: Lorenzo + Huffman + secondary "
                        "LZ (sample too rough for spline to pay)";
      }
      break;
    case objective::balanced:
      cfg = pipeline_config::preset_default(eb);
      if (rep.concentration >= 0.6) {
        cfg.histogram = kernels::histogram_kind::topk;
        rep.rationale = "objective=balanced: Lorenzo + Huffman; sampled "
                        "concentration " +
                        std::to_string(rep.concentration) +
                        " >= 0.6 -> top-k histogram";
      } else {
        rep.rationale =
            "objective=balanced: Lorenzo + standard histogram + Huffman";
      }
      break;
  }
  return rep;
}

}  // namespace fzmod::core
