// FZModules — stage-module interfaces (the framework's extension points).
//
// The paper decomposes a compressor into four stages. Each stage is a
// small virtual interface; implementations wrap the algorithm kernels in
// src/predictors, src/encoders, src/kernels. A custom module is: derive,
// implement, register under a name (see examples/custom_module.cc), then
// reference the name from a pipeline_config. Archives record module names,
// so decompression re-resolves through the registry.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fzmod/core/config.hh"
#include "fzmod/device/runtime.hh"
#include "fzmod/predictors/interp.hh"
#include "fzmod/predictors/quant_field.hh"

namespace fzmod::core {

/// Stage 1 — preprocessing. Two responsibilities:
///  - resolve the user's error bound to an absolute quantizer step (the
///    paper's main use: value-range relative bounds need the field range);
///  - optionally transform values before prediction (and invert after
///    reconstruction). The built-in "log" module uses this to deliver
///    pointwise-relative error bounds: an absolute bound in log space is
///    a relative bound in linear space.
///
/// A transforming preprocessor's bound applies in the *transformed*
/// domain; decompression re-resolves the module by name from the archive
/// and applies the inverse after the predictor reconstructs.
template <class T>
class preprocessor_module {
 public:
  virtual ~preprocessor_module() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Resolve the user bound to an absolute ebx2 (= 2 * abs bound), with
  /// respect to the (transformed, if transforms()) data. May launch
  /// device work; must sync `s` before returning the value.
  [[nodiscard]] virtual f64 resolve_ebx2(const device::buffer<T>& data,
                                         const eb_config& eb,
                                         device::stream& s) = 0;

  /// Whether forward()/inverse() apply a value transform.
  [[nodiscard]] virtual bool transforms() const { return false; }

  /// Transform values into `out` (presized, device) before prediction.
  virtual void forward(const device::buffer<T>& in, device::buffer<T>& out,
                       device::stream& s) {
    (void)in;
    (void)out;
    (void)s;
    throw error(status::unsupported,
                "preprocessor does not implement forward()");
  }

  /// Invert the transform in place after reconstruction.
  virtual void inverse(device::buffer<T>& data, device::stream& s) {
    (void)data;
    (void)s;
    throw error(status::unsupported,
                "preprocessor does not implement inverse()");
  }
};

/// Stage 2 — prediction + quantization. Produces the quant_field IR (and
/// an anchor payload, which non-hierarchical predictors leave empty).
/// compress() receives the pipeline_config (like codec_module::encode)
/// so execution-strategy knobs — today the kernel_tier policy — reach
/// the kernels without widening the signature per knob.
template <class T>
class predictor_module {
 public:
  virtual ~predictor_module() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  virtual void compress(const device::buffer<T>& data, dims3 dims, f64 ebx2,
                        int radius, const pipeline_config& cfg,
                        predictors::quant_field& out,
                        predictors::interp_anchors& anchors,
                        device::stream& s) = 0;

  virtual void decompress(const predictors::quant_field& field,
                          const predictors::interp_anchors& anchors,
                          device::buffer<T>& out, device::stream& s) = 0;
};

/// Stage 3 — primary lossless codec over the quantization-code stream.
/// encode() returns a self-contained host blob (archives are host bytes);
/// where the work runs — and therefore what crosses the PCIe boundary —
/// is the module's defining characteristic (Huffman moves raw codes D2H
/// and encodes on the CPU; FZG encodes on the device and moves only the
/// compressed payload).
class codec_module {
 public:
  virtual ~codec_module() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;

  [[nodiscard]] virtual std::vector<u8> encode(
      const device::buffer<u16>& codes, int radius,
      const pipeline_config& cfg, device::stream& s) = 0;

  /// Decode a blob into a presized device code buffer. Receives the
  /// consumer's pipeline_config for execution-strategy knobs (today the
  /// Huffman decoder tier) — like encode(), the config never changes the
  /// decoded bytes, only how they are produced.
  virtual void decode(std::span<const u8> blob, int radius,
                      const pipeline_config& cfg, device::buffer<u16>& codes,
                      device::stream& s) = 0;
};

}  // namespace fzmod::core
