#include "fzmod/core/pipeline.hh"

#include <cstring>

#include "fzmod/common/timer.hh"
#include "fzmod/core/archive_format.hh"
#include "fzmod/device/runtime.hh"
#include "fzmod/lossless/lz.hh"
#include "fzmod/spec/spec.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod::core {
namespace {

/// Record a "pipeline"-category span for a stage whose duration the stage
/// stopwatch just measured: the span ends now and extends `secs` back.
/// Repeated segments of one stage (e.g. the split verify work) emit
/// multiple spans under the same name; the trace summary aggregates them.
void trace_stage(std::string_view name, f64 secs) {
  if (!trace::enabled()) return;
  const u64 end = trace::now_ns();
  const u64 dur = static_cast<u64>(secs * 1e9);
  trace::complete("pipeline", name, end - dur, dur);
}

using fmt::archive_version;
using fmt::inner_header;
using fmt::inner_magic;
using vo_record = fmt::vo_record;

void put_name(char (&dst)[16], std::string_view name) {
  FZMOD_REQUIRE(name.size() < 16, status::invalid_argument,
                "module name too long for archive header (15 chars max)");
  std::memset(dst, 0, sizeof(dst));
  std::memcpy(dst, name.data(), name.size());
}

[[nodiscard]] std::string get_name(const char (&src)[16]) {
  return std::string(src, strnlen(src, sizeof(src)));
}

template <class T>
[[nodiscard]] dtype dtype_of();
template <>
dtype dtype_of<f32>() {
  return dtype::f32;
}
template <>
dtype dtype_of<f64>() {
  return dtype::f64;
}

}  // namespace

archive_info inspect_archive(std::span<const u8> archive) {
  // Metadata-only by contract: no digest verification and no section
  // decode happens here (verify_archive is the integrity entry point).
  const fmt::outer_view ov = fmt::parse_outer(archive);
  std::vector<u8> body_storage;
  std::span<const u8> body = ov.stored_body;
  if (ov.secondary) {
    body_storage = lossless::decompress(body);
    body = body_storage;
  }
  const inner_header hdr = fmt::parse_inner(body);
  archive_info info;
  info.dims = fmt::validate_dims(hdr, body.size());
  info.version = hdr.version;
  info.type = static_cast<dtype>(hdr.type);
  info.eb_user = hdr.eb_user;
  info.mode = static_cast<eb_mode>(hdr.mode);
  info.ebx2 = hdr.ebx2;
  info.radius = hdr.radius;
  info.preprocessor = get_name(hdr.preprocessor);
  info.predictor = get_name(hdr.predictor);
  info.codec = get_name(hdr.codec);
  info.secondary = ov.secondary;
  info.n_outliers = hdr.n_outliers;
  info.n_value_outliers = hdr.n_value_outliers;
  // Best-effort spec extraction, keeping the metadata-only contract:
  // inspect stays tolerant of payload damage (no digest checks, no
  // section decode), so a malformed tail reads as "no spec" here and the
  // strict rejection happens on decompress/verify.
  if (hdr.version >= 2) {
    try {
      info.spec = fmt::parse_spec_section(fmt::section_tail(body, hdr),
                                          /*check_digest=*/false);
    } catch (const error&) {
    }
  }
  return info;
}

archive_verify_report verify_archive(std::span<const u8> archive) {
  archive_verify_report rep;
  const fmt::outer_view ov = fmt::parse_outer(archive);
  rep.secondary = ov.secondary;
  std::vector<u8> body_storage;
  std::span<const u8> body = ov.stored_body;
  if (ov.v2) {
    if (ov.secondary) {
      rep.body_ok = fmt::seal_digest(kernels::chunked_hash(ov.stored_body),
                                     1) == ov.body_digest;
    } else {
      rep.body_ok = ov.body_digest == 0;
    }
  }
  if (ov.secondary) {
    if (ov.v2 && !rep.body_ok) {
      // The sealed digest already failed; don't hand the untrusted blob
      // to the LZ parser — report what we know.
      rep.header_ok = rep.codec_ok = rep.outliers_ok = false;
      rep.value_outliers_ok = rep.anchors_ok = false;
      rep.version = 2;
      return rep;
    }
    body_storage = lossless::decompress(body);
    body = body_storage;
  }
  const inner_header hdr = fmt::parse_inner(body);
  rep.version = hdr.version;
  if (hdr.version < 2) return rep;  // v1: nothing to verify against
  rep.header_ok = fmt::header_digest(hdr) == hdr.digest_header;
  const fmt::section_view sv = fmt::slice_sections(body, hdr);
  rep.codec_ok = kernels::chunked_hash(sv.codec) == hdr.digest_codec;
  rep.outliers_ok =
      kernels::chunked_hash(sv.outliers) == hdr.digest_outliers;
  rep.value_outliers_ok = kernels::chunked_hash(sv.value_outliers) ==
                          hdr.digest_value_outliers;
  rep.anchors_ok = kernels::chunked_hash(sv.anchors) == hdr.digest_anchors;
  try {
    (void)fmt::parse_spec_section(fmt::section_tail(body, hdr),
                                  /*check_digest=*/true);
  } catch (const error&) {
    rep.spec_ok = false;
  }
  return rep;
}

template <class T>
pipeline<T>::pipeline(pipeline_config cfg) : cfg_(std::move(cfg)) {
  auto& reg = module_registry<T>::instance();
  preprocessor_ = reg.make_preprocessor(cfg_.preprocessor);
  predictor_ = reg.make_predictor(cfg_.predictor);
  codec_ = reg.make_codec(cfg_.codec);
  FZMOD_REQUIRE(cfg_.radius > 1 && cfg_.radius <= 16384,
                status::invalid_argument,
                "quantizer radius out of supported range (2..16384)");
  spec_section_ =
      fmt::build_spec_section(spec::to_string(spec::from_config(cfg_)));
}

template <class T>
pipeline<T>::~pipeline() = default;

template <class T>
std::vector<u8> pipeline<T>::compress(const device::buffer<T>& data,
                                      dims3 dims, device::stream& s) {
  const detail::busy_scope in_call(busy_);
  FZMOD_REQUIRE(data.size() == dims.len(), status::invalid_argument,
                "pipeline: data size does not match dims");
  FZMOD_TRACE_SPAN("pipeline", "compress");
  stopwatch sw;

  // Stage 1: preprocess — optional value transform, then bound
  // resolution (against the transformed values, where the bound applies).
  // All stage scratch (the transformed field, the quant_field IR, the
  // anchors) is retained in members across calls, so steady-state
  // invocations reuse their working set instead of reallocating it.
  const device::buffer<T>* src = &data;
  if (preprocessor_->transforms()) {
    transformed_scratch_.ensure(data.size(), device::space::device);
    preprocessor_->forward(data, transformed_scratch_, s);
    src = &transformed_scratch_;
  }
  const f64 ebx2 = preprocessor_->resolve_ebx2(*src, cfg_.eb, s);
  compress_timings_.preprocess = sw.seconds();
  trace_stage("preprocess", compress_timings_.preprocess);

  // Stage 2: predict + quantize.
  sw.reset();
  predictors::quant_field& field = compress_field_;
  predictors::interp_anchors& anchors = compress_anchors_;
  predictor_->compress(*src, dims, ebx2, cfg_.radius, cfg_, field, anchors,
                       s);
  s.sync();
  compress_timings_.predict = sw.seconds();
  trace_stage("predict", compress_timings_.predict);

  // Stage 3: primary lossless codec.
  sw.reset();
  std::vector<u8> codec_blob =
      codec_->encode(field.codes, cfg_.radius, cfg_, s);
  compress_timings_.encode = sw.seconds();
  trace_stage("encode", compress_timings_.encode);

  // Serialize: header | codec blob | outliers | value outliers | anchors.
  inner_header hdr{};
  hdr.magic = inner_magic;
  hdr.version = archive_version;
  hdr.type = static_cast<u8>(dtype_of<T>());
  hdr.mode = static_cast<u8>(cfg_.eb.mode);
  hdr.eb_user = cfg_.eb.eb;
  hdr.ebx2 = ebx2;
  hdr.dims[0] = dims.x;
  hdr.dims[1] = dims.y;
  hdr.dims[2] = dims.z;
  hdr.radius = cfg_.radius;
  hdr.hist = static_cast<u8>(cfg_.histogram);
  put_name(hdr.preprocessor, preprocessor_->name());
  put_name(hdr.predictor, predictor_->name());
  put_name(hdr.codec, codec_->name());
  hdr.n_outliers = field.n_outliers;
  hdr.n_value_outliers = field.value_outliers.size();
  hdr.n_anchors = anchors.lattice.size();
  hdr.anchor_stride = anchors.stride;
  hdr.codec_bytes = codec_blob.size();

  // Outliers cross D2H raw (into retained scratch), then pack to the
  // varint wire format.
  outlier_scratch_.resize(field.n_outliers);
  if (field.n_outliers) {
    device::memcpy_async(outlier_scratch_.data(), field.outliers.data(),
                         field.n_outliers * sizeof(kernels::outlier),
                         device::copy_kind::d2h, s);
    s.sync();
  }
  const std::vector<u8> packed_outliers =
      fmt::pack_outliers(std::span<kernels::outlier>(outlier_scratch_));
  hdr.outlier_bytes = packed_outliers.size();

  // Value outliers are collected from concurrent kernels in scheduling
  // order; sort so archives are byte-deterministic.
  std::sort(field.value_outliers.begin(), field.value_outliers.end());

  const u64 vo_bytes = hdr.n_value_outliers * sizeof(vo_record);
  const u64 anchor_bytes = hdr.n_anchors * sizeof(i32);
  std::vector<u8> inner(sizeof(hdr) + codec_blob.size() +
                        packed_outliers.size() + vo_bytes + anchor_bytes +
                        spec_section_.size());
  u8* p = inner.data() + sizeof(hdr);  // header lands last (after digests)
  std::memcpy(p, codec_blob.data(), codec_blob.size());
  p += codec_blob.size();
  if (!packed_outliers.empty()) {
    std::memcpy(p, packed_outliers.data(), packed_outliers.size());
  }
  p += packed_outliers.size();
  for (const auto& [idx, val] : field.value_outliers) {
    const vo_record r{idx, val};
    std::memcpy(p, &r, sizeof(r));
    p += sizeof(r);
  }
  if (anchor_bytes) {
    std::memcpy(p, anchors.lattice.data(), anchor_bytes);
    p += anchor_bytes;
  }
  // Trailing self-describing spec section (its own digest; see
  // archive_format.hh). Inside the inner body, so the secondary path's
  // sealed whole-body digest covers it too.
  std::memcpy(p, spec_section_.data(), spec_section_.size());
  p += spec_section_.size();

  // Section digests (v2): hash the serialized sections in place, then the
  // header's self-digest, then write the completed header.
  sw.reset();
  {
    const u8* sec = inner.data() + sizeof(hdr);
    hdr.digest_codec = kernels::chunked_hash({sec, codec_blob.size()});
    sec += codec_blob.size();
    hdr.digest_outliers =
        kernels::chunked_hash({sec, packed_outliers.size()});
    sec += packed_outliers.size();
    hdr.digest_value_outliers = kernels::chunked_hash({sec, vo_bytes});
    sec += vo_bytes;
    hdr.digest_anchors = kernels::chunked_hash({sec, anchor_bytes});
    hdr.digest_header = fmt::header_digest(hdr);
  }
  std::memcpy(inner.data(), &hdr, sizeof(hdr));
  compress_timings_.verify = sw.seconds();
  trace_stage("verify", compress_timings_.verify);

  // Stage 4: optional secondary lossless encoder over the whole body. The
  // outer header seals a whole-body digest over the stored LZ blob so the
  // decode side can verify before LZ-parsing it.
  sw.reset();
  fmt::outer_header_v2 outer{fmt::outer_magic_v2,
                             static_cast<u8>(cfg_.secondary ? 1 : 0),
                             {},
                             0};
  std::vector<u8> archive;
  if (cfg_.secondary) {
    std::vector<u8> packed = lossless::compress(inner);
    const f64 lz_s = sw.seconds();
    sw.reset();
    outer.body_digest = fmt::seal_digest(kernels::chunked_hash(packed), 1);
    compress_timings_.verify += sw.seconds();
    trace_stage("verify", sw.seconds());
    sw.reset();
    archive.resize(sizeof(outer) + packed.size());
    std::memcpy(archive.data(), &outer, sizeof(outer));
    std::memcpy(archive.data() + sizeof(outer), packed.data(),
                packed.size());
    compress_timings_.secondary = lz_s + sw.seconds();
    trace_stage("secondary", compress_timings_.secondary);
  } else {
    archive.resize(sizeof(outer) + inner.size());
    std::memcpy(archive.data(), &outer, sizeof(outer));
    std::memcpy(archive.data() + sizeof(outer), inner.data(), inner.size());
    compress_timings_.secondary = sw.seconds();
    trace_stage("secondary", compress_timings_.secondary);
  }
  device::sample_trace_counters();
  return archive;
}

template <class T>
std::vector<u8> pipeline<T>::compress(std::span<const T> host_data,
                                      dims3 dims) {
  // The stream is declared after the buffer so it drains (dtor syncs)
  // before the buffer can return its block to the pool — if compress
  // throws past a queued copy, the copy must not land in freed memory.
  device::buffer<T> dev(host_data.size(), device::space::device);
  device::stream s;
  device::memcpy_async(dev.data(), host_data.data(), host_data.size_bytes(),
                       device::copy_kind::h2d, s);
  return compress(dev, dims, s);
}

template <class T>
void pipeline<T>::decompress(std::span<const u8> archive,
                             device::buffer<T>& out, device::stream& s) {
  const detail::busy_scope in_call(busy_);
  FZMOD_TRACE_SPAN("pipeline", "decompress");
  stopwatch sw;
  const fmt::outer_view ov = fmt::parse_outer(archive);
  fmt::verify_outer(ov);  // whole-body digest, before LZ parses the blob
  decompress_timings_.verify = sw.seconds();
  trace_stage("verify", decompress_timings_.verify);
  sw.reset();
  std::vector<u8> body_storage;
  std::span<const u8> body = ov.stored_body;
  if (ov.secondary) {
    body_storage = lossless::decompress(body);
    body = body_storage;
  }
  decompress_timings_.secondary = sw.seconds();
  trace_stage("secondary", decompress_timings_.secondary);

  sw.reset();
  const inner_header hdr = fmt::parse_inner(body);
  fmt::verify_inner_header(hdr);
  decompress_timings_.verify += sw.seconds();
  trace_stage("verify", sw.seconds());
  FZMOD_REQUIRE(hdr.type == static_cast<u8>(dtype_of<T>()),
                status::invalid_argument,
                "archive dtype does not match pipeline element type");
  const dims3 dims = fmt::validate_dims(hdr, body.size());
  FZMOD_REQUIRE(out.size() == dims.len(), status::invalid_argument,
                "pipeline: output size does not match archive dims");
  fmt::validate_anchor_geometry(hdr, dims);
  const fmt::section_view sections = fmt::slice_sections(body, hdr);
  sw.reset();
  fmt::verify_sections(hdr, sections);  // before any section is decoded
  if (hdr.version >= 2) {
    // The body tail must be empty (pre-spec archive) or exactly one
    // well-formed spec section — structural checks always, digest when
    // verification is on. Extends the any-flipped-bit-throws contract
    // over the appended bytes.
    (void)fmt::parse_spec_section(fmt::section_tail(body, hdr),
                                  fmt::verify_enabled());
  }
  decompress_timings_.verify += sw.seconds();
  trace_stage("verify", sw.seconds());

  // Resolve the modules the archive names (may be custom, user-registered).
  auto& reg = module_registry<T>::instance();
  auto preprocessor = reg.make_preprocessor(get_name(hdr.preprocessor));
  auto predictor = reg.make_predictor(get_name(hdr.predictor));
  auto codec = reg.make_codec(get_name(hdr.codec));

  // Rebuild the quant_field IR into retained scratch.
  sw.reset();
  predictors::quant_field& field = decompress_field_;
  field.dims = dims;
  field.radius = hdr.radius;
  field.ebx2 = hdr.ebx2;
  field.codes.ensure(dims.len(), device::space::device);
  codec->decode(sections.codec, hdr.radius, cfg_, field.codes, s);
  decompress_timings_.encode = sw.seconds();
  trace_stage("encode", decompress_timings_.encode);

  sw.reset();
  field.n_outliers = hdr.n_outliers;
  field.outliers.ensure(hdr.n_outliers, device::space::device);
  if (hdr.n_outliers) {
    const auto unpacked = fmt::unpack_outliers(sections.outliers,
                                               hdr.n_outliers, dims.len());
    device::memcpy_async(field.outliers.data(), unpacked.data(),
                         hdr.n_outliers * sizeof(kernels::outlier),
                         device::copy_kind::h2d, s);
    s.sync();
  }
  const u8* p = sections.value_outliers.data();
  field.value_outliers.resize(hdr.n_value_outliers);
  for (auto& [idx, val] : field.value_outliers) {
    vo_record r;
    std::memcpy(&r, p, sizeof(r));
    FZMOD_REQUIRE(r.index < dims.len(), status::corrupt_archive,
                  "archive: value outlier index out of range");
    idx = r.index;
    val = r.value;
    p += sizeof(r);
  }
  predictors::interp_anchors& anchors = decompress_anchors_;
  anchors.stride = hdr.anchor_stride;
  anchors.lattice.resize(hdr.n_anchors);
  if (!sections.anchors.empty()) {
    std::memcpy(anchors.lattice.data(), sections.anchors.data(),
                sections.anchors.size());
  }

  // Stage 2 inverse: reconstruct, then stage 1 inverse (value transform).
  predictor->decompress(field, anchors, out, s);
  s.sync();
  decompress_timings_.predict = sw.seconds();
  trace_stage("predict", decompress_timings_.predict);
  sw.reset();
  if (preprocessor->transforms()) {
    preprocessor->inverse(out, s);
    s.sync();
  }
  decompress_timings_.preprocess = sw.seconds();
  trace_stage("preprocess", decompress_timings_.preprocess);
  device::sample_trace_counters();
}

template <class T>
std::vector<T> pipeline<T>::decompress(std::span<const u8> archive) {
  // inspect_archive is metadata-only and will LZ-parse a secondary body
  // to reach the inner header; check the sealed whole-body digest first
  // so a corrupted blob is rejected before any parser touches it.
  fmt::verify_outer(fmt::parse_outer(archive));
  const archive_info info = inspect_archive(archive);
  device::buffer<T> dev(info.dims.len(), device::space::device);
  device::stream s;  // declared after dev: drains before dev frees
  decompress(archive, dev, s);
  std::vector<T> host(info.dims.len());
  device::memcpy_async(host.data(), dev.data(), dev.bytes(),
                       device::copy_kind::d2h, s);
  s.sync();
  return host;
}

template class pipeline<f32>;
template class pipeline<f64>;

}  // namespace fzmod::core
