#include "fzmod/core/pipeline.hh"

#include <cstring>

#include "fzmod/common/timer.hh"
#include "fzmod/core/archive_format.hh"
#include "fzmod/lossless/lz.hh"

namespace fzmod::core {
namespace {

using fmt::archive_version;
using fmt::inner_header;
using fmt::inner_magic;
using fmt::outer_header;
using fmt::outer_magic;
using vo_record = fmt::vo_record;

void put_name(char (&dst)[16], std::string_view name) {
  FZMOD_REQUIRE(name.size() < 16, status::invalid_argument,
                "module name too long for archive header (15 chars max)");
  std::memset(dst, 0, sizeof(dst));
  std::memcpy(dst, name.data(), name.size());
}

[[nodiscard]] std::string get_name(const char (&src)[16]) {
  return std::string(src, strnlen(src, sizeof(src)));
}

template <class T>
[[nodiscard]] dtype dtype_of();
template <>
dtype dtype_of<f32>() {
  return dtype::f32;
}
template <>
dtype dtype_of<f64>() {
  return dtype::f64;
}

}  // namespace

archive_info inspect_archive(std::span<const u8> archive) {
  FZMOD_REQUIRE(archive.size() >= sizeof(outer_header),
                status::corrupt_archive, "archive too small");
  outer_header outer;
  std::memcpy(&outer, archive.data(), sizeof(outer));
  FZMOD_REQUIRE(outer.magic == outer_magic, status::corrupt_archive,
                "bad archive magic");
  std::vector<u8> body_storage;
  std::span<const u8> body = archive.subspan(sizeof(outer));
  if (outer.secondary) {
    body_storage = lossless::decompress(body);
    body = body_storage;
  }
  FZMOD_REQUIRE(body.size() >= sizeof(inner_header), status::corrupt_archive,
                "archive body truncated");
  inner_header hdr;
  std::memcpy(&hdr, body.data(), sizeof(hdr));
  FZMOD_REQUIRE(hdr.magic == inner_magic && hdr.version == archive_version,
                status::corrupt_archive, "bad inner header");
  archive_info info;
  info.dims = {hdr.dims[0], hdr.dims[1], hdr.dims[2]};
  FZMOD_REQUIRE(!info.dims.len_invalid(), status::corrupt_archive,
                "archive dims out of supported range");
  FZMOD_REQUIRE(info.dims.len() / 8192 <= body.size(),
                status::corrupt_archive,
                "archive too small for its declared dims");
  info.type = static_cast<dtype>(hdr.type);
  info.eb_user = hdr.eb_user;
  info.mode = static_cast<eb_mode>(hdr.mode);
  info.ebx2 = hdr.ebx2;
  info.radius = hdr.radius;
  info.preprocessor = get_name(hdr.preprocessor);
  info.predictor = get_name(hdr.predictor);
  info.codec = get_name(hdr.codec);
  info.secondary = outer.secondary != 0;
  info.n_outliers = hdr.n_outliers;
  info.n_value_outliers = hdr.n_value_outliers;
  return info;
}

template <class T>
pipeline<T>::pipeline(pipeline_config cfg) : cfg_(std::move(cfg)) {
  auto& reg = module_registry<T>::instance();
  preprocessor_ = reg.make_preprocessor(cfg_.preprocessor);
  predictor_ = reg.make_predictor(cfg_.predictor);
  codec_ = reg.make_codec(cfg_.codec);
  FZMOD_REQUIRE(cfg_.radius > 1 && cfg_.radius <= 16384,
                status::invalid_argument,
                "quantizer radius out of supported range (2..16384)");
}

template <class T>
pipeline<T>::~pipeline() = default;

template <class T>
std::vector<u8> pipeline<T>::compress(const device::buffer<T>& data,
                                      dims3 dims, device::stream& s) {
  FZMOD_REQUIRE(data.size() == dims.len(), status::invalid_argument,
                "pipeline: data size does not match dims");
  stopwatch sw;

  // Stage 1: preprocess — optional value transform, then bound
  // resolution (against the transformed values, where the bound applies).
  // All stage scratch (the transformed field, the quant_field IR, the
  // anchors) is retained in members across calls, so steady-state
  // invocations reuse their working set instead of reallocating it.
  const device::buffer<T>* src = &data;
  if (preprocessor_->transforms()) {
    transformed_scratch_.ensure(data.size(), device::space::device);
    preprocessor_->forward(data, transformed_scratch_, s);
    src = &transformed_scratch_;
  }
  const f64 ebx2 = preprocessor_->resolve_ebx2(*src, cfg_.eb, s);
  compress_timings_.preprocess = sw.seconds();

  // Stage 2: predict + quantize.
  sw.reset();
  predictors::quant_field& field = compress_field_;
  predictors::interp_anchors& anchors = compress_anchors_;
  predictor_->compress(*src, dims, ebx2, cfg_.radius, field, anchors, s);
  s.sync();
  compress_timings_.predict = sw.seconds();

  // Stage 3: primary lossless codec.
  sw.reset();
  std::vector<u8> codec_blob =
      codec_->encode(field.codes, cfg_.radius, cfg_, s);
  compress_timings_.encode = sw.seconds();

  // Serialize: header | codec blob | outliers | value outliers | anchors.
  inner_header hdr{};
  hdr.magic = inner_magic;
  hdr.version = archive_version;
  hdr.type = static_cast<u8>(dtype_of<T>());
  hdr.mode = static_cast<u8>(cfg_.eb.mode);
  hdr.eb_user = cfg_.eb.eb;
  hdr.ebx2 = ebx2;
  hdr.dims[0] = dims.x;
  hdr.dims[1] = dims.y;
  hdr.dims[2] = dims.z;
  hdr.radius = cfg_.radius;
  hdr.hist = static_cast<u8>(cfg_.histogram);
  put_name(hdr.preprocessor, preprocessor_->name());
  put_name(hdr.predictor, predictor_->name());
  put_name(hdr.codec, codec_->name());
  hdr.n_outliers = field.n_outliers;
  hdr.n_value_outliers = field.value_outliers.size();
  hdr.n_anchors = anchors.lattice.size();
  hdr.anchor_stride = anchors.stride;
  hdr.codec_bytes = codec_blob.size();

  // Outliers cross D2H raw (into retained scratch), then pack to the
  // varint wire format.
  outlier_scratch_.resize(field.n_outliers);
  if (field.n_outliers) {
    device::memcpy_async(outlier_scratch_.data(), field.outliers.data(),
                         field.n_outliers * sizeof(kernels::outlier),
                         device::copy_kind::d2h, s);
    s.sync();
  }
  const std::vector<u8> packed_outliers =
      fmt::pack_outliers(std::span<kernels::outlier>(outlier_scratch_));
  hdr.outlier_bytes = packed_outliers.size();

  // Value outliers are collected from concurrent kernels in scheduling
  // order; sort so archives are byte-deterministic.
  std::sort(field.value_outliers.begin(), field.value_outliers.end());

  const u64 vo_bytes = hdr.n_value_outliers * sizeof(vo_record);
  const u64 anchor_bytes = hdr.n_anchors * sizeof(i32);
  std::vector<u8> inner(sizeof(hdr) + codec_blob.size() +
                        packed_outliers.size() + vo_bytes + anchor_bytes);
  u8* p = inner.data();
  std::memcpy(p, &hdr, sizeof(hdr));
  p += sizeof(hdr);
  std::memcpy(p, codec_blob.data(), codec_blob.size());
  p += codec_blob.size();
  std::memcpy(p, packed_outliers.data(), packed_outliers.size());
  p += packed_outliers.size();
  for (const auto& [idx, val] : field.value_outliers) {
    const vo_record r{idx, val};
    std::memcpy(p, &r, sizeof(r));
    p += sizeof(r);
  }
  if (anchor_bytes) {
    std::memcpy(p, anchors.lattice.data(), anchor_bytes);
    p += anchor_bytes;
  }

  // Stage 4: optional secondary lossless encoder over the whole body.
  sw.reset();
  outer_header outer{outer_magic, static_cast<u8>(cfg_.secondary ? 1 : 0),
                     {}};
  std::vector<u8> archive;
  if (cfg_.secondary) {
    std::vector<u8> packed = lossless::compress(inner);
    archive.resize(sizeof(outer) + packed.size());
    std::memcpy(archive.data(), &outer, sizeof(outer));
    std::memcpy(archive.data() + sizeof(outer), packed.data(),
                packed.size());
  } else {
    archive.resize(sizeof(outer) + inner.size());
    std::memcpy(archive.data(), &outer, sizeof(outer));
    std::memcpy(archive.data() + sizeof(outer), inner.data(), inner.size());
  }
  compress_timings_.secondary = sw.seconds();
  return archive;
}

template <class T>
std::vector<u8> pipeline<T>::compress(std::span<const T> host_data,
                                      dims3 dims) {
  device::stream s;
  device::buffer<T> dev(host_data.size(), device::space::device);
  device::memcpy_async(dev.data(), host_data.data(), host_data.size_bytes(),
                       device::copy_kind::h2d, s);
  return compress(dev, dims, s);
}

template <class T>
void pipeline<T>::decompress(std::span<const u8> archive,
                             device::buffer<T>& out, device::stream& s) {
  FZMOD_REQUIRE(archive.size() >= sizeof(outer_header),
                status::corrupt_archive, "archive too small");
  stopwatch sw;
  outer_header outer;
  std::memcpy(&outer, archive.data(), sizeof(outer));
  FZMOD_REQUIRE(outer.magic == outer_magic, status::corrupt_archive,
                "bad archive magic");
  std::vector<u8> body_storage;
  std::span<const u8> body = archive.subspan(sizeof(outer));
  if (outer.secondary) {
    body_storage = lossless::decompress(body);
    body = body_storage;
  }
  decompress_timings_.secondary = sw.seconds();

  FZMOD_REQUIRE(body.size() >= sizeof(inner_header), status::corrupt_archive,
                "archive body truncated");
  inner_header hdr;
  std::memcpy(&hdr, body.data(), sizeof(hdr));
  FZMOD_REQUIRE(hdr.magic == inner_magic && hdr.version == archive_version,
                status::corrupt_archive, "bad inner header");
  FZMOD_REQUIRE(hdr.type == static_cast<u8>(dtype_of<T>()),
                status::invalid_argument,
                "archive dtype does not match pipeline element type");
  const dims3 dims{hdr.dims[0], hdr.dims[1], hdr.dims[2]};
  FZMOD_REQUIRE(!dims.len_invalid(), status::corrupt_archive,
                "archive dims out of supported range");
  FZMOD_REQUIRE(out.size() == dims.len(), status::invalid_argument,
                "pipeline: output size does not match archive dims");
  // Resource guards before any header-sized allocation: no codec packs
  // more than ~8192 values per byte (the Huffman chunk-offset table is
  // the loosest floor), and each packed outlier costs >= 2 bytes.
  FZMOD_REQUIRE(dims.len() / 8192 <= body.size(), status::corrupt_archive,
                "archive too small for its declared dims");
  FZMOD_REQUIRE(hdr.codec_bytes <= body.size() &&
                    hdr.outlier_bytes <= body.size(),
                status::corrupt_archive, "archive section size overflow");
  FZMOD_REQUIRE(hdr.n_outliers <= hdr.outlier_bytes / 2 + 1,
                status::corrupt_archive, "outlier count implausible");
  FZMOD_REQUIRE(hdr.n_value_outliers <= body.size() / sizeof(vo_record),
                status::corrupt_archive, "value outlier count implausible");
  FZMOD_REQUIRE(hdr.n_anchors <= body.size() / sizeof(i32),
                status::corrupt_archive, "anchor count implausible");

  const u64 vo_bytes = hdr.n_value_outliers * sizeof(vo_record);
  const u64 anchor_bytes = hdr.n_anchors * sizeof(i32);
  FZMOD_REQUIRE(body.size() >= sizeof(hdr) + hdr.codec_bytes +
                                   hdr.outlier_bytes + vo_bytes +
                                   anchor_bytes,
                status::corrupt_archive, "archive payload truncated");

  // Resolve the modules the archive names (may be custom, user-registered).
  auto& reg = module_registry<T>::instance();
  auto preprocessor = reg.make_preprocessor(get_name(hdr.preprocessor));
  auto predictor = reg.make_predictor(get_name(hdr.predictor));
  auto codec = reg.make_codec(get_name(hdr.codec));

  // Rebuild the quant_field IR into retained scratch.
  sw.reset();
  predictors::quant_field& field = decompress_field_;
  field.dims = dims;
  field.radius = hdr.radius;
  field.ebx2 = hdr.ebx2;
  field.codes.ensure(dims.len(), device::space::device);
  const u8* p = body.data() + sizeof(hdr);
  codec->decode({p, hdr.codec_bytes}, hdr.radius, field.codes, s);
  p += hdr.codec_bytes;
  decompress_timings_.encode = sw.seconds();

  sw.reset();
  field.n_outliers = hdr.n_outliers;
  field.outliers.ensure(hdr.n_outliers, device::space::device);
  if (hdr.n_outliers) {
    const auto unpacked =
        fmt::unpack_outliers({p, hdr.outlier_bytes}, hdr.n_outliers);
    device::memcpy_async(field.outliers.data(), unpacked.data(),
                         hdr.n_outliers * sizeof(kernels::outlier),
                         device::copy_kind::h2d, s);
    s.sync();
  }
  p += hdr.outlier_bytes;
  field.value_outliers.resize(hdr.n_value_outliers);
  for (auto& [idx, val] : field.value_outliers) {
    vo_record r;
    std::memcpy(&r, p, sizeof(r));
    idx = r.index;
    val = r.value;
    p += sizeof(r);
  }
  predictors::interp_anchors& anchors = decompress_anchors_;
  anchors.stride = hdr.anchor_stride;
  anchors.lattice.resize(hdr.n_anchors);
  if (anchor_bytes) std::memcpy(anchors.lattice.data(), p, anchor_bytes);

  // Stage 2 inverse: reconstruct, then stage 1 inverse (value transform).
  predictor->decompress(field, anchors, out, s);
  s.sync();
  decompress_timings_.predict = sw.seconds();
  sw.reset();
  if (preprocessor->transforms()) {
    preprocessor->inverse(out, s);
    s.sync();
  }
  decompress_timings_.preprocess = sw.seconds();
}

template <class T>
std::vector<T> pipeline<T>::decompress(std::span<const u8> archive) {
  const archive_info info = inspect_archive(archive);
  device::stream s;
  device::buffer<T> dev(info.dims.len(), device::space::device);
  decompress(archive, dev, s);
  std::vector<T> host(info.dims.len());
  device::memcpy_async(host.data(), dev.data(), dev.bytes(),
                       device::copy_kind::d2h, s);
  s.sync();
  return host;
}

template class pipeline<f32>;
template class pipeline<f64>;

}  // namespace fzmod::core
