#include "fzmod/core/snapshot.hh"

#include <algorithm>
#include <cstring>

namespace fzmod::core {
namespace {

constexpr u32 snapshot_magic = 0x465a534e;  // "FZSN"

#pragma pack(push, 1)
struct snap_header {
  u32 magic;
  u32 count;
  u64 toc_bytes;
};

struct toc_record {
  u64 dims[3];
  u64 offset;
  u64 bytes;
  u8 type;
  u8 name_len;
};
#pragma pack(pop)

}  // namespace

snapshot_writer::snapshot_writer(pipeline_config defaults)
    : defaults_(std::move(defaults)) {}

void snapshot_writer::add(std::string_view name, std::span<const f32> data,
                          dims3 dims,
                          std::optional<pipeline_config> override) {
  FZMOD_REQUIRE(!name.empty() && name.size() <= 255,
                status::invalid_argument,
                "snapshot: field name must be 1..255 bytes");
  for (const auto& e : entries_) {
    FZMOD_REQUIRE(e.name != name, status::invalid_argument,
                  "snapshot: duplicate field name: " + std::string(name));
  }
  if (chunking_) {
    chunked_pipeline<f32> pipe(override.value_or(defaults_), *chunking_);
    archives_.push_back(pipe.compress(data, dims));
  } else {
    pipeline<f32> pipe(override.value_or(defaults_));
    archives_.push_back(pipe.compress(data, dims));
  }
  snapshot_entry e;
  e.name = std::string(name);
  e.dims = dims;
  e.type = dtype::f32;
  e.bytes = archives_.back().size();
  entries_.push_back(std::move(e));
}

std::vector<u8> snapshot_writer::finish() const {
  // TOC size: fixed records + names.
  u64 toc_bytes = 0;
  for (const auto& e : entries_) {
    toc_bytes += sizeof(toc_record) + e.name.size();
  }
  u64 total = sizeof(snap_header) + toc_bytes;
  const u64 payload_start = total;
  for (const auto& a : archives_) total += a.size();

  std::vector<u8> blob(total);
  const snap_header hdr{snapshot_magic,
                        static_cast<u32>(entries_.size()), toc_bytes};
  u8* p = blob.data();
  std::memcpy(p, &hdr, sizeof(hdr));
  p += sizeof(hdr);
  u64 offset = payload_start;
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    const auto& e = entries_[k];
    toc_record rec{{e.dims.x, e.dims.y, e.dims.z},
                   offset,
                   e.bytes,
                   static_cast<u8>(e.type),
                   static_cast<u8>(e.name.size())};
    std::memcpy(p, &rec, sizeof(rec));
    p += sizeof(rec);
    std::memcpy(p, e.name.data(), e.name.size());
    p += e.name.size();
    offset += e.bytes;
  }
  for (const auto& a : archives_) {
    std::memcpy(p, a.data(), a.size());
    p += a.size();
  }
  return blob;
}

snapshot_reader::snapshot_reader(std::span<const u8> blob) : blob_(blob) {
  FZMOD_REQUIRE(blob.size() >= sizeof(snap_header), status::corrupt_archive,
                "snapshot: blob too small");
  snap_header hdr;
  std::memcpy(&hdr, blob.data(), sizeof(hdr));
  FZMOD_REQUIRE(hdr.magic == snapshot_magic, status::corrupt_archive,
                "snapshot: bad magic");
  FZMOD_REQUIRE(blob.size() >= sizeof(hdr) + hdr.toc_bytes,
                status::corrupt_archive, "snapshot: truncated TOC");
  const u8* p = blob.data() + sizeof(hdr);
  const u8* toc_end = p + hdr.toc_bytes;
  entries_.reserve(hdr.count);
  for (u32 k = 0; k < hdr.count; ++k) {
    FZMOD_REQUIRE(p + sizeof(toc_record) <= toc_end,
                  status::corrupt_archive, "snapshot: TOC overrun");
    toc_record rec;
    std::memcpy(&rec, p, sizeof(rec));
    p += sizeof(rec);
    FZMOD_REQUIRE(p + rec.name_len <= toc_end, status::corrupt_archive,
                  "snapshot: TOC name overrun");
    snapshot_entry e;
    e.name.assign(reinterpret_cast<const char*>(p), rec.name_len);
    p += rec.name_len;
    e.dims = {rec.dims[0], rec.dims[1], rec.dims[2]};
    e.type = static_cast<dtype>(rec.type);
    e.offset = rec.offset;
    e.bytes = rec.bytes;
    FZMOD_REQUIRE(e.offset + e.bytes <= blob.size(),
                  status::corrupt_archive,
                  "snapshot: archive extent out of range");
    entries_.push_back(std::move(e));
  }
}

bool snapshot_reader::contains(std::string_view name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& e) { return e.name == name; });
}

const snapshot_entry& snapshot_reader::find(std::string_view name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return e;
  }
  throw error(status::invalid_argument,
              "snapshot: no such field: " + std::string(name));
}

std::span<const u8> snapshot_reader::archive(std::string_view name) const {
  const auto& e = find(name);
  return blob_.subspan(e.offset, e.bytes);
}

std::vector<f32> snapshot_reader::read(std::string_view name) const {
  // Version-agnostic: plain v1/v2 archives and v3 chunk containers (the
  // latter decode chunk-parallel) both come back as the full field.
  return decompress_any<f32>(archive(name));
}

std::vector<f32> snapshot_reader::read_range(std::string_view name,
                                             u64 elem_offset,
                                             u64 elem_count) const {
  chunked_pipeline<f32> pipe{pipeline_config{}};
  return pipe.decompress_range(archive(name), elem_offset, elem_count);
}

reader<f32> snapshot_reader::make_reader(std::string_view name,
                                         reader_options opt,
                                         pipeline_config cfg) const {
  return reader<f32>(archive(name), std::move(opt), std::move(cfg));
}

namespace {

/// Collapse a chunked report into the flat per-section shape: each flag is
/// the AND over the corresponding flag of every chunk, and container-level
/// digests fold into header_ok. `.ok()` is preserved exactly.
archive_verify_report collapse(const chunked_verify_report& rep) {
  archive_verify_report out;
  out.version = fmt::chunk_container_version;
  out.header_ok = rep.container_ok;
  for (const auto& c : rep.chunks) {
    out.secondary = out.secondary || c.inner.secondary;
    out.body_ok = out.body_ok && c.digest_ok && c.inner.body_ok;
    out.header_ok = out.header_ok && c.inner.header_ok;
    out.codec_ok = out.codec_ok && c.inner.codec_ok;
    out.outliers_ok = out.outliers_ok && c.inner.outliers_ok;
    out.value_outliers_ok =
        out.value_outliers_ok && c.inner.value_outliers_ok;
    out.anchors_ok = out.anchors_ok && c.inner.anchors_ok;
  }
  return out;
}

}  // namespace

archive_verify_report snapshot_reader::verify(std::string_view name) const {
  const std::span<const u8> ab = archive(name);
  if (!fmt::is_chunk_container(ab)) return verify_archive(ab);
  return collapse(verify_chunked(ab));
}

bool snapshot_reader::verify_all() const {
  return std::all_of(entries_.begin(), entries_.end(), [&](const auto& e) {
    return verify_chunked(blob_.subspan(e.offset, e.bytes)).ok();
  });
}

}  // namespace fzmod::core
