// FZModules — pipeline composer: assembles stage modules per a
// pipeline_config and drives end-to-end error-bounded compression and
// decompression, producing/consuming self-contained archives.
//
// The archive records module names, dims, dtype and quantizer settings, so
// any process that has the named modules registered can decompress it.
//
// When tracing is enabled (FZMOD_TRACE=1 / trace::set_enabled), each call
// emits a whole-call span plus one "pipeline"-category span per stage —
// see docs/OBSERVABILITY.md. Disabled cost is one atomic load per site.
#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "fzmod/common/error.hh"
#include "fzmod/core/config.hh"
#include "fzmod/core/registry.hh"

namespace fzmod::core {

namespace detail {
/// Movable atomic flag for the pipeline's concurrent-use guard. Moving a
/// pipeline cannot race an in-flight call on it (that would be UB anyway),
/// so the flag simply resets on move.
struct busy_flag {
  std::atomic<bool> v{false};
  busy_flag() = default;
  busy_flag(busy_flag&&) noexcept {}
  busy_flag& operator=(busy_flag&&) noexcept { return *this; }

  /// One-shot entry attempt; false means another call is in flight.
  [[nodiscard]] bool try_enter() {
    return !v.exchange(true, std::memory_order_acquire);
  }
  void leave() { v.store(false, std::memory_order_release); }
};

/// RAII over a busy_flag: every compress/decompress entry point holds one
/// of these for its whole duration, so a throwing call releases the flag
/// on unwind and can never leave a pipeline permanently "busy" — the
/// property the serving layer's pipeline pool depends on to reuse a
/// pipeline after a failed request. Entering while another call is in
/// flight throws instead of corrupting the shared member scratch.
class busy_scope {
 public:
  explicit busy_scope(busy_flag& f) : flag_(f) {
    FZMOD_REQUIRE(flag_.try_enter(), status::invalid_argument,
                  "pipeline: concurrent call on one pipeline object — use "
                  "one pipeline per thread");
  }
  ~busy_scope() { flag_.leave(); }
  busy_scope(const busy_scope&) = delete;
  busy_scope& operator=(const busy_scope&) = delete;

 private:
  busy_flag& flag_;
};
}  // namespace detail

/// Per-stage wall-clock timings of the last compress()/decompress() call,
/// in seconds. Benches read these to attribute time (Fig. 1 ablations).
struct stage_timings {
  f64 preprocess = 0;
  f64 predict = 0;
  f64 encode = 0;
  f64 secondary = 0;
  f64 verify = 0;  ///< digest computation (compress) / verification (decode)
  [[nodiscard]] f64 total() const {
    return preprocess + predict + encode + secondary + verify;
  }
};

/// Archive introspection without full decode.
struct archive_info {
  dims3 dims;
  dtype type = dtype::f32;
  f64 eb_user = 0;
  eb_mode mode = eb_mode::rel;
  f64 ebx2 = 0;
  int radius = 0;
  std::string preprocessor;
  std::string predictor;
  std::string codec;
  bool secondary = false;
  u64 n_outliers = 0;
  u64 n_value_outliers = 0;
  u16 version = 1;  ///< archive format version (1 = pre-checksum, 2 = v2)
  /// Canonical `fzmod::spec` text embedded by the compressor; empty for
  /// archives that predate the spec section (and STF-assembled ones).
  std::string spec;
};

/// Parse an archive's headers into archive_info. Validates structure
/// (throws status::corrupt_archive) but decodes no payload bytes.
[[nodiscard]] archive_info inspect_archive(std::span<const u8> archive);

/// Result of verify_archive(): per-section digest checks of a v2 archive.
/// A v1 archive carries no digests, so every field reports true and
/// `version` tells the caller nothing was actually checked.
struct archive_verify_report {
  u16 version = 1;
  bool secondary = false;
  bool body_ok = true;     ///< outer whole-body digest (sealed; secondary)
  bool header_ok = true;   ///< inner-header self-digest
  bool codec_ok = true;    ///< codec blob section digest
  bool outliers_ok = true; ///< packed-outlier section digest
  bool value_outliers_ok = true;
  bool anchors_ok = true;
  bool spec_ok = true;     ///< trailing pipeline-spec section (if present)
  [[nodiscard]] bool ok() const {
    return body_ok && header_ok && codec_ok && outliers_ok &&
           value_outliers_ok && anchors_ok && spec_ok;
  }
};

/// Check every digest a v2 archive carries without decoding its payload.
/// Structural corruption (bad magic, truncation, implausible counts) still
/// throws status::corrupt_archive; digest mismatches are reported, not
/// thrown, so the CLI can print which section is damaged. Runs regardless
/// of the FZMOD_VERIFY switch — calling this *is* opting in.
[[nodiscard]] archive_verify_report verify_archive(std::span<const u8> archive);

template <class T>
class pipeline {
 public:
  /// Resolve the config's module names through the registry; throws
  /// status::unsupported on an unknown name.
  explicit pipeline(pipeline_config cfg);

  pipeline(pipeline&&) noexcept = default;
  pipeline& operator=(pipeline&&) noexcept = default;
  ~pipeline();

  /// Compress a device-resident field. Synchronous (drives `s` internally);
  /// returns the self-contained archive in host memory.
  [[nodiscard]] std::vector<u8> compress(const device::buffer<T>& data,
                                         dims3 dims, device::stream& s);

  /// Convenience: host data in, archive out (pays the H2D transfer, which
  /// is part of the end-to-end cost the paper measures).
  [[nodiscard]] std::vector<u8> compress(std::span<const T> host_data,
                                         dims3 dims);

  /// Decompress into a presized device buffer.
  void decompress(std::span<const u8> archive, device::buffer<T>& out,
                  device::stream& s);

  /// Convenience: archive in, host vector out.
  [[nodiscard]] std::vector<T> decompress(std::span<const u8> archive);

  [[nodiscard]] const pipeline_config& config() const { return cfg_; }

  /// Per-stage timings of the most recent compress()/decompress() on this
  /// object. Not synchronized — read from the thread that made the call.
  [[nodiscard]] const stage_timings& last_compress_timings() const {
    return compress_timings_;
  }
  [[nodiscard]] const stage_timings& last_decompress_timings() const {
    return decompress_timings_;
  }

 private:
  pipeline_config cfg_;
  std::unique_ptr<preprocessor_module<T>> preprocessor_;
  std::unique_ptr<predictor_module<T>> predictor_;
  std::unique_ptr<codec_module> codec_;
  stage_timings compress_timings_;
  stage_timings decompress_timings_;

  // Per-call scratch, retained across invocations: a pipeline serving
  // repeated same-shaped requests re-acquires this whole working set via
  // capacity checks (buffer::ensure) instead of allocations, which —
  // together with the runtime's caching pools — is the zero-steady-state-
  // allocation contract documented in docs/RUNTIME.md. A pipeline object
  // is not thread-safe across concurrent calls (it never was: stage
  // timings are members); use one pipeline per serving thread. `busy_`
  // turns accidental sharing — silent scratch corruption — into an
  // immediate invalid_argument (the chunked scheduler relies on this
  // one-pipeline-per-slot rule).
  detail::busy_flag busy_;
  /// Serialized trailing spec section appended to every archive this
  /// pipeline writes. Built once in the constructor from the canonical
  /// spec text of cfg_, so equal configs keep producing byte-identical
  /// archives (the determinism + batch-demux contracts).
  std::vector<u8> spec_section_;
  device::buffer<T> transformed_scratch_;
  predictors::quant_field compress_field_;
  predictors::interp_anchors compress_anchors_;
  predictors::quant_field decompress_field_;
  predictors::interp_anchors decompress_anchors_;
  std::vector<kernels::outlier> outlier_scratch_;
};

}  // namespace fzmod::core
