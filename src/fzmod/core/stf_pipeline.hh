// FZModules — experimental CUDASTF-style pipeline (paper §3.3.1).
//
// Re-expresses the FZMod-Default pipeline as a task graph over the
// fzmod::stf library: tasks declare data dependencies, the runtime derives
// the DAG, schedules independent branches concurrently, and moves data
// between host and device automatically.
//
// The concurrency the paper highlights:
//  - compression: the GPU histogram feeding Huffman and the outlier
//    compaction share no data dependency, so they overlap; the CPU Huffman
//    encode overlaps the device-side outlier packaging.
//  - decompression: "one task scattering the outliers to the reconstructed
//    output data from the compressed data, and another task can
//    simultaneously decompress the Huffman encoded data" — exactly the two
//    branches of the graph here.
//
// Archives are byte-compatible with the synchronous pipeline (predictor
// "lorenzo", codec "huffman"), so the two drivers interoperate. Like the
// paper, this is a programmability demonstration, not the performance
// path.
#pragma once

#include <span>
#include <vector>

#include "fzmod/common/types.hh"

namespace fzmod::core {

/// Compress with the STF task-graph driver (FZMod-Default stages).
[[nodiscard]] std::vector<u8> stf_compress(std::span<const f32> data,
                                           dims3 dims, eb_config eb,
                                           int radius = 512);

/// Decompress a lorenzo+huffman archive with the STF task-graph driver.
[[nodiscard]] std::vector<f32> stf_decompress(std::span<const u8> archive);

}  // namespace fzmod::core
