// FZModules — out-of-core streaming compression (docs/STREAMING.md).
//
// `chunked_pipeline::compress_stream` accepts any source/sink pair but
// runs them synchronously on scheduler threads: a slow disk stalls
// compute and nothing bounds the file-side buffering. This layer is the
// double-buffered file driver around it:
//
//   - a **reader thread** fills slab-aligned staging buffers ahead of the
//     chunk scheduler (`staged` slots, demand fetches block only when the
//     prefetch has not reached the chunk yet — counted as a read stall);
//   - a **writer thread** drains ordered-commit output through a bounded
//     byte-budget queue (a full queue blocks the committing worker —
//     counted as a write stall), so compute overlaps both file ends;
//   - an explicit **peak-memory cap** (`FZMOD_STREAM_MEM_MB` /
//     `--stream-mem-mb`, `chunked_options::stream_mem_mb`) throttles the
//     in-flight window, the staging depth, and the write queue together
//     (core::resolve_stream_budget) instead of letting footprint scale
//     with `jobs` — fields arbitrarily larger than the cap stream through;
//   - **crash-safe resume**: every committed chunk appends a digested
//     record to a sidecar journal (`out + ".fzr"`); after a crash,
//     `resume = true` salvages the longest prefix of chunks whose bytes
//     on disk still hash to their directory entries and recompresses only
//     the rest. Output bytes are identical to an uninterrupted run.
//   - a **multi-field container** (`compress_files_stream`): one "FZMF"
//     archive holding many named fields, each a complete single-field
//     archive selectable by name (`fmt::select_field`, `--field`).
//
// Cumulative run counters come back as `stream_io_stats` and surface as
// `stream.stall.{read,write}` / `stream.peak_bytes` trace counters.
#pragma once

#include <span>
#include <string>

#include "fzmod/core/chunked.hh"

namespace fzmod::core {

/// Knobs for a streaming file compression. Chunking/jobs/memory-cap
/// resolution is `chunked_options`' (zero = environment, then default).
struct stream_options {
  chunked_options chunk;
  /// Salvage a prior interrupted run of the same output path (validated
  /// against the resume journal; any mismatch recompresses from scratch).
  bool resume = false;
  /// Leave the resume journal behind after a successful finalize. Only
  /// the crash-recovery tests and the CI resume smoke want this.
  bool keep_journal = false;
};

/// One named input field for the multi-field container. The path holds a
/// headerless little-endian raw field of `dims.len()` elements.
struct field_input {
  std::string name;
  std::string path;
  dims3 dims;
};

/// The sidecar journal path for an output archive (`out + ".fzr"`).
[[nodiscard]] std::string resume_journal_path(const std::string& out_path);

/// Stream-compress one raw field file into a single-field archive
/// (v3 container, or plain v2 for single-chunk plans) without ever
/// holding the field in memory. IO overlaps compute on both ends; peak
/// footprint obeys the resolved stream budget.
template <class T>
stream_io_stats compress_file_stream(const std::string& in_path, dims3 dims,
                                     const std::string& out_path,
                                     const pipeline_config& cfg,
                                     const stream_options& opt = {});

/// Stream-compress many named fields into one "FZMF" multi-field
/// container, sequentially (the memory cap holds per field). Resume is
/// single-field only and rejected here.
template <class T>
stream_io_stats compress_files_stream(std::span<const field_input> fields,
                                      const std::string& out_path,
                                      const pipeline_config& cfg,
                                      const stream_options& opt = {});

}  // namespace fzmod::core
