// FZModules — chunk-parallel driver implementation. See chunked.hh for the
// scheduling model and docs/FORMAT.md for the v3 container layout.

#include "fzmod/core/chunked.hh"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "fzmod/common/env.hh"
#include "fzmod/kernels/chunked_hash.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod::core {

namespace {

template <class T>
[[nodiscard]] dtype dtype_of();
template <>
dtype dtype_of<f32>() {
  return dtype::f32;
}
template <>
dtype dtype_of<f64>() {
  return dtype::f64;
}

void append_bytes(std::vector<u8>& out, const void* p, std::size_t n) {
  const u8* b = static_cast<const u8*>(p);
  out.insert(out.end(), b, b + n);
}

/// Decode a set of container chunks across up to `jobs` worker threads,
/// each with its own stream + pipeline (per-slot scratch, no sharing).
/// `emit(entry, decoded_device_buffer, stream)` runs on the worker thread
/// after the chunk decodes; it typically enqueues a D2H copy of some or
/// all of the chunk. The worker syncs the stream after emit.
template <class T, class Emit>
void decode_chunks(const fmt::chunk_container_view& cv,
                   std::span<const fmt::chunk_dir_entry> entries,
                   const pipeline_config& cfg, unsigned jobs, Emit emit) {
  const std::size_t total = entries.size();
  if (total == 0) return;
  const unsigned nworkers =
      static_cast<unsigned>(std::min<std::size_t>(std::max(1u, jobs), total));
  trace::counter("chunked.slots", static_cast<f64>(nworkers));

  std::atomic<u64> next{0};
  std::atomic<int> active{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::exception_ptr err;

  auto worker = [&] {
    // Stream declared last: its dtor drains before the slot's buffers
    // free, so an exception mid-chunk can't strand a queued copy into a
    // block the pool has already rebinned.
    device::buffer<T> dev;
    pipeline<T> pipe(cfg);
    device::stream s;
    for (;;) {
      const u64 i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total || failed.load(std::memory_order_relaxed)) break;
      const fmt::chunk_dir_entry& e = entries[i];
      const u64 t0 = trace::enabled() ? trace::now_ns() : 0;
      if (t0) {
        trace::counter("chunked.inflight",
                       static_cast<f64>(1 + active.fetch_add(
                                                1, std::memory_order_relaxed)));
      }
      try {
        FZMOD_REQUIRE(fmt::chunk_digest_ok(cv, e), status::corrupt_archive,
                      "chunk at element " + std::to_string(e.raw_offset) +
                          ": archive digest mismatch");
        dev.ensure(e.raw_len, device::space::device);
        pipe.decompress(fmt::chunk_archive(cv, e), dev, s);
        emit(e, dev, s);
        s.sync();
        if (t0) {
          trace::complete("chunked", "dechunk#" + std::to_string(i), t0,
                          trace::now_ns() - t0, 0,
                          static_cast<f64>(e.raw_len));
          trace::counter(
              "chunked.inflight",
              static_cast<f64>(active.fetch_sub(
                                   1, std::memory_order_relaxed) -
                               1));
        }
      } catch (...) {
        if (t0) active.fetch_sub(1, std::memory_order_relaxed);
        std::lock_guard lk(err_mu);
        if (!err) err = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(nworkers);
  for (unsigned w = 0; w < nworkers; ++w) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  if (err) std::rethrow_exception(err);
}

}  // namespace

std::size_t chunked_options::resolve_chunk_elems(std::size_t elem_size) const {
  if (chunk_elems) return chunk_elems;
  std::size_t mb = chunk_mb ? chunk_mb
                            : static_cast<std::size_t>(
                                  common::env_u64("FZMOD_CHUNK_MB", 16));
  if (mb == 0) mb = 16;
  return std::max<std::size_t>(1, mb * (std::size_t{1} << 20) / elem_size);
}

unsigned chunked_options::resolve_jobs() const {
  std::size_t j = jobs ? jobs
                       : static_cast<std::size_t>(
                             common::env_u64("FZMOD_JOBS", 4));
  if (j == 0) j = 1;
  return static_cast<unsigned>(std::min<std::size_t>(j, 64));
}

u64 chunked_options::resolve_stream_mem_bytes() const {
  const u64 mb = stream_mem_mb
                     ? stream_mem_mb
                     : common::env_u64("FZMOD_STREAM_MEM_MB", 0);
  return mb << 20;
}

stream_budget resolve_stream_budget(u64 cap_bytes, u64 chunk_bytes,
                                    unsigned jobs) {
  if (jobs == 0) jobs = 1;
  if (chunk_bytes == 0) chunk_bytes = 1;
  stream_budget b;
  if (cap_bytes == 0) {
    // Uncapped: the legacy shape — window scales with jobs, staging one
    // slot per worker plus a fill-ahead, writer queue bounded only as a
    // slow-disk backstop.
    b.window = 2 * static_cast<u64>(jobs);
    b.workers = jobs;
    b.read_slots = static_cast<u64>(jobs) + 1;
    b.write_bytes = u64{256} << 20;
    return b;
  }
  // Capped: each in-flight chunk is charged 4x its raw bytes; the cap
  // splits C/2 compute window, C/4 read staging, C/4 write queue. The
  // window never exceeds the uncapped 2*jobs (a cap only shrinks), never
  // drops below 1 (a cap smaller than one chunk degrades to serial
  // streaming rather than failing).
  const u64 per_chunk = 4 * chunk_bytes;
  b.window = std::clamp<u64>((cap_bytes / 2) / per_chunk, 1,
                             2 * static_cast<u64>(jobs));
  b.workers = static_cast<unsigned>(
      std::min<u64>(static_cast<u64>(jobs), b.window));
  b.read_slots =
      std::clamp<u64>((cap_bytes / 4) / chunk_bytes, 1, b.window + 1);
  b.write_bytes = std::max<u64>(cap_bytes / 4, u64{1} << 20);
  return b;
}

std::vector<chunk_extent> plan_chunks(dims3 dims, std::size_t chunk_elems) {
  FZMOD_REQUIRE(!dims.len_invalid(), status::invalid_argument,
                "plan_chunks: invalid dims");
  FZMOD_REQUIRE(chunk_elems >= 1, status::invalid_argument,
                "plan_chunks: chunk_elems must be >= 1");
  // Slab unit: whole extents of the slowest-varying dimension, so every
  // chunk is contiguous in memory and a well-formed dims3 field.
  const int r = dims.rank();
  u64 slab = 1, nslabs = dims.x;
  if (r == 3) {
    slab = static_cast<u64>(dims.x) * dims.y;
    nslabs = dims.z;
  } else if (r == 2) {
    slab = dims.x;
    nslabs = dims.y;
  }
  const u64 per = std::max<u64>(1, chunk_elems / slab);
  std::vector<chunk_extent> out;
  out.reserve(static_cast<std::size_t>((nslabs + per - 1) / per));
  for (u64 s0 = 0; s0 < nslabs; s0 += per) {
    const u64 sc = std::min(per, nslabs - s0);
    chunk_extent e;
    e.offset = s0 * slab;
    e.len = sc * slab;
    e.dims = r == 3   ? dims3{dims.x, dims.y, sc}
             : r == 2 ? dims3{dims.x, sc, 1}
                      : dims3{sc, 1, 1};
    out.push_back(e);
  }
  return out;
}

chunked_info inspect_chunked(std::span<const u8> archive) {
  chunked_info info;
  if (!fmt::is_chunk_container(archive)) {
    const archive_info ai = inspect_archive(archive);
    info.chunked = false;
    info.dims = ai.dims;
    info.type = ai.type;
    info.nchunks = 1;
    info.chunk_elems = ai.dims.len();
    return info;
  }
  const fmt::chunk_container_view cv = fmt::parse_chunk_container(archive);
  info.chunked = true;
  info.dims = cv.dims;
  FZMOD_REQUIRE(cv.hdr.type <= static_cast<u8>(dtype::f64),
                status::corrupt_archive, "chunk container: unknown dtype");
  info.type = static_cast<dtype>(cv.hdr.type);
  info.nchunks = cv.hdr.nchunks;
  info.chunk_elems = cv.hdr.chunk_elems;
  info.chunks = cv.entries;
  return info;
}

chunked_verify_report verify_chunked(std::span<const u8> archive) {
  chunked_verify_report rep;
  if (!fmt::is_chunk_container(archive)) {
    chunk_verify_entry e;
    e.index = 0;
    e.digest_ok = true;
    e.inner = verify_archive(archive);
    rep.chunks.push_back(std::move(e));
    return rep;
  }
  // Structural corruption still throws (same contract as verify_archive);
  // digest mismatches — container-level and per-chunk — are reported.
  const fmt::chunk_container_view cv =
      fmt::parse_chunk_container(archive, /*check_digests=*/false);
  rep.container_ok =
      fmt::chunk_header_digest(cv.hdr) == cv.hdr.digest_header;
  const u64 dir_bytes = cv.hdr.nchunks * sizeof(fmt::chunk_dir_entry);
  const std::size_t dir_at = archive.size() - sizeof(u64) - dir_bytes;
  u64 dir_digest = 0;
  std::memcpy(&dir_digest, archive.data() + dir_at + dir_bytes,
              sizeof(dir_digest));
  if (kernels::chunked_hash(archive.subspan(dir_at, dir_bytes)) !=
      dir_digest) {
    rep.container_ok = false;
  }
  rep.chunks.reserve(cv.entries.size());
  for (u64 i = 0; i < cv.entries.size(); ++i) {
    chunk_verify_entry ce;
    ce.index = i;
    const std::span<const u8> ab = fmt::chunk_archive(cv, cv.entries[i]);
    ce.digest_ok = kernels::chunked_hash(ab) == cv.entries[i].digest;
    ce.inner = verify_archive(ab);
    rep.chunks.push_back(std::move(ce));
  }
  return rep;
}

template <class T>
chunked_pipeline<T>::chunked_pipeline(pipeline_config cfg, chunked_options opt)
    : cfg_(std::move(cfg)), opt_(opt) {
  // Resolve module names once up front so a bad config throws here, not
  // on a scheduler worker thread mid-stream.
  pipeline<T> probe(cfg_);
  (void)probe;
}

template <class T>
std::vector<u8> chunked_pipeline<T>::compress(std::span<const T> data,
                                              dims3 dims) {
  FZMOD_REQUIRE(!dims.len_invalid() && data.size() == dims.len(),
                status::invalid_argument,
                "chunked compress: data size does not match dims");
  std::vector<u8> out;
  compress_stream(
      [&](T* dst, u64 elem_offset, std::size_t n) {
        std::memcpy(dst, data.data() + elem_offset, n * sizeof(T));
      },
      dims,
      [&](std::span<const u8> bytes) {
        out.insert(out.end(), bytes.begin(), bytes.end());
      });
  return out;
}

namespace {

/// Accounted-memory ledger for the streaming peak counter: every byte a
/// streaming compression holds (stage copies, device lattices, finished
/// archives awaiting commit) is added while held; the high-water mark is
/// the `stream.peak_bytes` surface. Lock-free so workers account from
/// any thread.
struct mem_ledger {
  std::atomic<u64> cur{0};
  std::atomic<u64> peak{0};
  void add(u64 n) {
    const u64 c = cur.fetch_add(n, std::memory_order_relaxed) + n;
    u64 p = peak.load(std::memory_order_relaxed);
    while (c > p &&
           !peak.compare_exchange_weak(p, c, std::memory_order_relaxed)) {
    }
  }
  void sub(u64 n) { cur.fetch_sub(n, std::memory_order_relaxed); }
};

}  // namespace

template <class T>
void chunked_pipeline<T>::compress_stream(const source_fn& src, dims3 dims,
                                          const sink_fn& sink) {
  compress_stream(src, dims, sink, stream_progress{});
}

template <class T>
void chunked_pipeline<T>::compress_stream(const source_fn& src, dims3 dims,
                                          const sink_fn& sink,
                                          stream_progress progress) {
  FZMOD_REQUIRE(!dims.len_invalid(), status::invalid_argument,
                "chunked compress: invalid dims");
  const std::size_t chunk_elems = opt_.resolve_chunk_elems(sizeof(T));
  const std::vector<chunk_extent> extents = plan_chunks(dims, chunk_elems);
  const u64 nchunks = extents.size();
  FZMOD_REQUIRE(progress.first_chunk <= nchunks &&
                    progress.committed.size() == progress.first_chunk,
                status::invalid_argument,
                "compress_stream: resume state inconsistent with the plan");

  if (nchunks == 1) {
    FZMOD_REQUIRE(progress.first_chunk == 0, status::invalid_argument,
                  "compress_stream: cannot resume a single-chunk plan");
  }
  if (nchunks == 1) {
    // Single-chunk plan: bypass the container so the output is the plain
    // v2 archive, byte-identical to core::pipeline.
    std::vector<T> field(dims.len());
    src(field.data(), 0, field.size());
    pipeline<T> pipe(cfg_);
    const std::vector<u8> arch =
        pipe.compress(std::span<const T>(field), dims);
    sink(arch);
    return;
  }

  if (progress.emit_header) {
    fmt::chunk_header_v3 hdr{};
    hdr.magic = fmt::chunk_magic_v3;
    hdr.version = fmt::chunk_container_version;
    hdr.type = static_cast<u8>(dtype_of<T>());
    hdr.pad = 0;
    hdr.dims[0] = dims.x;
    hdr.dims[1] = dims.y;
    hdr.dims[2] = dims.z;
    hdr.nchunks = nchunks;
    hdr.chunk_elems = chunk_elems;
    hdr.digest_header = fmt::chunk_header_digest(hdr);
    sink(std::span<const u8>(reinterpret_cast<const u8*>(&hdr),
                             sizeof(hdr)));
  }

  // Bounded in-flight window: a slot may only claim chunk c while
  // c < committed + window, so a slow chunk cannot let the finished-but-
  // uncommitted backlog (and therefore memory) grow without bound. With a
  // memory cap (FZMOD_STREAM_MEM_MB) the window shrinks to fit the cap
  // instead of scaling with jobs — resolve_stream_budget is the model.
  const stream_budget budget = resolve_stream_budget(
      opt_.resolve_stream_mem_bytes(),
      static_cast<u64>(chunk_elems) * sizeof(T), opt_.resolve_jobs());
  const u64 window = budget.window;
  const u64 remaining = nchunks - progress.first_chunk;
  const unsigned nworkers = static_cast<unsigned>(
      std::min<u64>(budget.workers, std::max<u64>(remaining, 1)));
  trace::counter("chunked.slots", static_cast<f64>(nworkers));
  if (progress.io) {
    progress.io->window = window;
    progress.io->workers = nworkers;
    progress.io->chunks_total = nchunks;
    progress.io->chunks_resumed = progress.first_chunk;
  }

  struct shared_state {
    std::mutex mu;
    std::condition_variable cv;
    u64 next = 0;       // next chunk index to claim
    u64 committed = 0;  // chunks already pushed to the sink, in order
    u64 arch_at = 0;    // payload bytes emitted so far
    std::map<u64, std::vector<u8>> done;  // finished, awaiting commit
    std::vector<fmt::chunk_dir_entry> entries;
    std::exception_ptr err;
  } sh;
  sh.entries.resize(nchunks);
  sh.next = progress.first_chunk;
  sh.committed = progress.first_chunk;
  for (u64 k = 0; k < progress.first_chunk; ++k) {
    sh.entries[k] = progress.committed[k];
    sh.arch_at += progress.committed[k].archive_bytes;
  }
  mem_ledger ledger;

  auto worker = [&] {
    // Per-slot working set: the chunk pipelines never share scratch. The
    // stream is declared last so it drains before the slot's buffers
    // free on an exception path.
    device::buffer<T> dev;
    std::vector<T> stage;
    pipeline<T> pipe(cfg_);
    device::stream s;
    for (;;) {
      u64 c;
      u64 inflight = 0;
      {
        std::unique_lock lk(sh.mu);
        sh.cv.wait(lk, [&] {
          return sh.err || sh.next >= nchunks ||
                 sh.next < sh.committed + window;
        });
        if (sh.err || sh.next >= nchunks) break;
        c = sh.next++;
        inflight = sh.next - sh.committed;  // claimed-but-uncommitted
      }
      const u64 t0 = trace::enabled() ? trace::now_ns() : 0;
      if (t0) trace::counter("chunked.inflight", static_cast<f64>(inflight));
      const chunk_extent& e = extents[c];
      try {
        // Ledger: the stage copy + device lattice while compressing, plus
        // the finished archive until its commit releases all three.
        ledger.add(2 * e.len * sizeof(T));
        stage.resize(e.len);
        src(stage.data(), e.offset, e.len);
        dev.ensure(e.len, device::space::device);
        device::memcpy_async(dev.data(), stage.data(), e.len * sizeof(T),
                             device::copy_kind::h2d, s);
        std::vector<u8> arch = pipe.compress(dev, e.dims, s);
        ledger.add(arch.size());
        if (t0) {
          trace::complete("chunked", "chunk#" + std::to_string(c), t0,
                          trace::now_ns() - t0, 0, static_cast<f64>(e.len));
        }

        std::unique_lock lk(sh.mu);
        sh.done.emplace(c, std::move(arch));
        // Commit every consecutive finished chunk. Holding the lock
        // through the sink keeps the output strictly ordered; commit work
        // is small next to per-chunk compression.
        for (auto it = sh.done.find(sh.committed);
             it != sh.done.end() && !sh.err;
             it = sh.done.find(sh.committed)) {
          const std::vector<u8> bytes = std::move(it->second);
          sh.done.erase(it);
          const chunk_extent& ce = extents[sh.committed];
          fmt::chunk_dir_entry de;
          de.raw_offset = ce.offset;
          de.raw_len = ce.len;
          de.archive_offset = sh.arch_at;
          de.archive_bytes = bytes.size();
          de.digest = kernels::chunked_hash(bytes);
          sh.entries[sh.committed] = de;
          sh.arch_at += bytes.size();
          sink(bytes);
          if (progress.on_commit) progress.on_commit(sh.committed, de);
          ledger.sub(2 * ce.len * sizeof(T) + bytes.size());
          trace::instant("chunked", "commit", 0,
                         static_cast<f64>(sh.committed));
          ++sh.committed;
        }
        if (t0) {
          trace::counter("chunked.inflight",
                         static_cast<f64>(sh.next - sh.committed));
        }
        sh.cv.notify_all();
      } catch (...) {
        std::lock_guard lk(sh.mu);
        if (!sh.err) sh.err = std::current_exception();
        sh.cv.notify_all();
        break;
      }
    }
  };

  if (remaining > 0) {
    std::vector<std::thread> threads;
    threads.reserve(nworkers);
    for (unsigned w = 0; w < nworkers; ++w) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }
  if (sh.err) std::rethrow_exception(sh.err);
  const u64 peak = ledger.peak.load(std::memory_order_relaxed);
  trace::counter("stream.peak_bytes", static_cast<f64>(peak));
  if (progress.io) {
    progress.io->peak_bytes = std::max(progress.io->peak_bytes, peak);
  }

  std::vector<u8> dir(nchunks * sizeof(fmt::chunk_dir_entry));
  std::memcpy(dir.data(), sh.entries.data(), dir.size());
  sink(dir);
  const u64 dir_digest = kernels::chunked_hash(dir);
  std::vector<u8> tail;
  append_bytes(tail, &dir_digest, sizeof(dir_digest));
  sink(tail);
}

template <class T>
std::vector<T> chunked_pipeline<T>::decompress(std::span<const u8> archive) {
  if (!fmt::is_chunk_container(archive)) {
    pipeline<T> pipe(cfg_);
    return pipe.decompress(archive);
  }
  const fmt::chunk_container_view cv = fmt::parse_chunk_container(archive);
  FZMOD_REQUIRE(cv.hdr.type == static_cast<u8>(dtype_of<T>()),
                status::invalid_argument,
                "chunk container holds a different dtype");
  std::vector<T> out(cv.dims.len());
  decode_chunks<T>(
      cv, cv.entries, cfg_, opt_.resolve_jobs(),
      [&](const fmt::chunk_dir_entry& e, device::buffer<T>& dev,
          device::stream& s) {
        device::memcpy_async(out.data() + e.raw_offset, dev.data(),
                             e.raw_len * sizeof(T), device::copy_kind::d2h,
                             s);
      });
  return out;
}

template <class T>
std::vector<T> chunked_pipeline<T>::decompress_range(
    std::span<const u8> archive, u64 elem_offset, u64 elem_count) {
  if (!fmt::is_chunk_container(archive)) {
    // Validate against the header's declared dims before decoding: the
    // whole-field decode is the expensive part, and a decode failure must
    // not shadow a bad-range diagnosis.
    const archive_info ai = inspect_archive(archive);
    require_range(elem_offset, elem_count, ai.dims.len(),
                  "decompress_range");
    pipeline<T> pipe(cfg_);
    const std::vector<T> full = pipe.decompress(archive);
    return std::vector<T>(full.begin() + elem_offset,
                          full.begin() + elem_offset + elem_count);
  }
  const fmt::chunk_container_view cv = fmt::parse_chunk_container(archive);
  FZMOD_REQUIRE(cv.hdr.type == static_cast<u8>(dtype_of<T>()),
                status::invalid_argument,
                "chunk container holds a different dtype");
  require_range(elem_offset, elem_count, cv.dims.len(), "decompress_range");
  std::vector<T> out(elem_count);

  // Entries are sorted by raw_offset (parse enforces contiguous tiling);
  // the covering chunks are a contiguous directory run.
  const u64 lo = elem_offset, hi = elem_offset + elem_count;
  std::size_t first = 0;
  while (cv.entries[first].raw_offset + cv.entries[first].raw_len <= lo)
    ++first;
  std::size_t last = first;
  while (last < cv.entries.size() && cv.entries[last].raw_offset < hi)
    ++last;
  const std::span<const fmt::chunk_dir_entry> covering(
      cv.entries.data() + first, last - first);

  decode_chunks<T>(
      cv, covering, cfg_, opt_.resolve_jobs(),
      [&](const fmt::chunk_dir_entry& e, device::buffer<T>& dev,
          device::stream& s) {
        const u64 a = std::max(lo, e.raw_offset);
        const u64 b = std::min(hi, e.raw_offset + e.raw_len);
        device::memcpy_async(out.data() + (a - lo),
                             dev.data() + (a - e.raw_offset),
                             (b - a) * sizeof(T), device::copy_kind::d2h, s);
      });
  return out;
}

template <class T>
std::vector<T> decompress_any(std::span<const u8> archive,
                              const chunked_options& opt) {
  chunked_pipeline<T> p(pipeline_config{}, opt);
  return p.decompress(archive);
}

template class chunked_pipeline<f32>;
template class chunked_pipeline<f64>;
template std::vector<f32> decompress_any<f32>(std::span<const u8>,
                                              const chunked_options&);
template std::vector<f64> decompress_any<f64>(std::span<const u8>,
                                              const chunked_options&);

}  // namespace fzmod::core
