// FZModules — seekable reader: the serving-side view of a compressed field.
//
// `decompress_range()` is a one-shot: every call re-parses the container
// directory, decodes its covering chunks cold, and throws the work away.
// A read-heavy consumer (visualization slicing a field, a query engine
// fetching extents) needs the opposite — parse once, cache decoded
// chunks, and predict what gets read next. This reader is that primitive,
// shaped after rapidgzip's ParallelGzipReader / chunk-fetcher split and
// indexed_bzip2's exportable block index:
//
//   - **open once** — the chunk directory is parsed and validated exactly
//     once per reader, from the container itself or from an imported
//     `.fzx` sidecar index (archive_format.hh) that skips the trailing
//     directory scan entirely; a stale or forged index (container digest
//     mismatch, damaged sidecar) degrades to a normal scan, never a crash;
//   - **LRU chunk cache** — decoded chunks are kept under a byte budget
//     (`reader_options::cache_mb` / `FZMOD_READER_CACHE_MB`), keyed by
//     chunk id; repeated or overlapping reads hit memory instead of the
//     decoder;
//   - **N-way prefetcher** — each read predicts the next chunks from its
//     access pattern (sequential or strided at chunk granularity) and
//     decodes them speculatively on the reader's worker slots
//     (`reader_options::prefetch` / `FZMOD_READER_PREFETCH`), so a scan
//     streams at decode throughput without ever blocking on a cold chunk;
//   - **bounded decode pool** — `jobs` worker threads (the chunk
//     scheduler's slot shape: one pipeline + one stream + one device
//     buffer each) serve demand misses ahead of speculation.
//
// Reads are byte-identical to `chunked_pipeline::decompress_range` on the
// same archive; plain v1/v2 archives open as one implicit chunk. Under
// FZMOD_TRACE=1 every read emits a span and cumulative
// `reader.cache.{hit,miss,evict}` / `reader.prefetch.{issued,used,wasted}`
// counters, and opens emit an `open.index` / `open.dirscan` instant —
// docs/OBSERVABILITY.md documents the surface, docs/RUNTIME.md the knobs.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fzmod/core/chunked.hh"

namespace fzmod::core {

/// Reader knobs. Zero (or -1 for prefetch) means "resolve from the
/// environment, then fall back to the default"; the explicit byte budget
/// wins over the MiB knob (tests use it to force tiny caches).
struct reader_options {
  std::size_t cache_mb = 0;     ///< decoded-chunk budget in MiB
  std::size_t cache_bytes = 0;  ///< explicit byte budget (wins)
  int prefetch = -1;   ///< chunks to decode ahead; 0 disables speculation
  unsigned jobs = 0;   ///< decode worker threads
  /// Check the container's whole-body digest before trusting a sidecar
  /// index (the stale-index detector). Costs one streaming hash of the
  /// container on open; opting out trusts the pairing blindly.
  bool check_index_digest = true;

  [[nodiscard]] std::size_t resolve_cache_bytes() const;
  [[nodiscard]] unsigned resolve_prefetch() const;
  [[nodiscard]] unsigned resolve_jobs() const;
};

/// Cumulative per-reader counters (a value snapshot; see stats()).
/// Cache hits/misses count per covering chunk, not per read() call.
struct reader_stats {
  u64 reads = 0;            ///< read() / cursor-step calls served
  u64 hits = 0;             ///< covering chunk was cached or in flight
  u64 misses = 0;           ///< covering chunk needed a demand decode
  u64 evictions = 0;        ///< chunks dropped to fit the byte budget
  u64 prefetch_issued = 0;  ///< speculative decodes enqueued
  u64 prefetch_used = 0;    ///< speculative chunks later consumed by a read
  u64 prefetch_wasted = 0;  ///< speculative chunks evicted unconsumed
  bool index_used = false;  ///< directory came from a `.fzx` sidecar

  [[nodiscard]] f64 hit_rate() const {
    const u64 total = hits + misses;
    return total ? static_cast<f64>(hits) / static_cast<f64>(total) : 0.0;
  }
};

template <class T>
class reader {
 public:
  /// Pull `n` container bytes starting at byte `offset` into `dst`.
  /// Called from reader worker threads, possibly concurrently for
  /// disjoint ranges — sources must be thread-safe for reads.
  using byte_source =
      std::function<void(u8* dst, u64 offset, std::size_t n)>;

  /// Open a memory-resident container (borrowed; must outlive the
  /// reader). Accepts v3 containers and plain v1/v2 archives (one
  /// implicit chunk).
  explicit reader(std::span<const u8> archive, reader_options opt = {},
                  pipeline_config cfg = {});

  /// Same, importing a `.fzx` sidecar index: when the index matches the
  /// container it replaces the directory scan; on any mismatch the reader
  /// falls back to scanning (stats().index_used tells which happened).
  reader(std::span<const u8> archive, std::span<const u8> index,
         reader_options opt = {}, pipeline_config cfg = {});

  /// Open one named field of a (possibly multi-field) archive. Selection
  /// follows fmt::select_field: single-field archives require an empty
  /// name, a one-field container tolerates one, and errors list what is
  /// available. The selected span aliases `archive`.
  reader(std::span<const u8> archive, std::string_view field,
         reader_options opt = {}, pipeline_config cfg = {});

  /// Open a streaming source of `container_bytes` total bytes (a file a
  /// reader must not map whole, a remote object). Only the directory and
  /// the chunks a read touches are ever fetched.
  reader(byte_source src, u64 container_bytes, reader_options opt = {},
         pipeline_config cfg = {});
  reader(byte_source src, u64 container_bytes, std::span<const u8> index,
         reader_options opt = {}, pipeline_config cfg = {});

  /// Streaming-source analogue of the field-selecting open: for a
  /// multi-field container only the 16-byte header and the tail directory
  /// are fetched up front (plus, when digests are enabled, one streaming
  /// hash of the selected field), then the reader sees the field archive
  /// through an offset view of `src` — the other fields are never read.
  [[nodiscard]] static reader open_field(byte_source src,
                                         u64 container_bytes,
                                         std::string_view field,
                                         reader_options opt = {},
                                         pipeline_config cfg = {});

  /// Open a container file (whole-file read; the reader owns the bytes).
  [[nodiscard]] static reader open_file(const std::string& path,
                                        reader_options opt = {},
                                        pipeline_config cfg = {});
  [[nodiscard]] static reader open_file(const std::string& path,
                                        const std::string& index_path,
                                        reader_options opt = {},
                                        pipeline_config cfg = {});

  reader(reader&&) noexcept;
  reader& operator=(reader&&) noexcept;
  reader(const reader&) = delete;
  reader& operator=(const reader&) = delete;
  ~reader();

  [[nodiscard]] dims3 dims() const;
  [[nodiscard]] u64 size() const;     ///< field length in elements
  [[nodiscard]] u64 nchunks() const;

  /// Read `elem_count` elements starting at `elem_offset`. Byte-identical
  /// to decompress_range on the same archive; validation matches it too
  /// (zero-length and out-of-range requests throw invalid_argument before
  /// any decode). A damaged covering chunk throws corrupt_archive naming
  /// the chunk — and keeps throwing on retry; chunks the range does not
  /// cover are never read, so damage elsewhere is invisible.
  [[nodiscard]] std::vector<T> read(u64 elem_offset, u64 elem_count);

  /// One decoded chunk's worth of a cursor walk: `data` is the chunk's
  /// intersection with the requested range, `offset` its position in the
  /// field. The span stays valid until the next next()/destruction.
  struct chunk_view {
    u64 index = 0;   ///< chunk id
    u64 offset = 0;  ///< first field element of `data`
    std::span<const T> data;
  };

  /// Forward cursor over the chunks covering a range: decodes one chunk
  /// per step (prefetching ahead), so walking a huge extent holds one
  /// chunk plus the prefetch window instead of the whole range.
  class chunk_cursor {
   public:
    /// Advance to the next covering chunk. Returns false when done.
    [[nodiscard]] bool next(chunk_view& out);

   private:
    friend class reader;
    chunk_cursor(reader& r, u64 lo, u64 hi, std::size_t first_chunk);
    reader* r_;
    u64 lo_, hi_;
    std::size_t at_;  // next chunk id to decode
    std::shared_ptr<const std::vector<T>> held_;  // keeps the span alive
  };

  /// Cursor over the chunks covering [elem_offset, elem_offset +
  /// elem_count). Range validation matches read().
  [[nodiscard]] chunk_cursor chunks(u64 elem_offset, u64 elem_count);

  /// Serialize the `.fzx` sidecar index for this container (hashes the
  /// whole container to bind the pairing). Plain v1/v2 archives have no
  /// directory to index — throws status::unsupported.
  [[nodiscard]] std::vector<u8> export_index() const;

  /// Snapshot of the cumulative counters (thread-safe value copy).
  [[nodiscard]] reader_stats stats() const;

 private:
  struct impl;
  explicit reader(std::unique_ptr<impl> pimpl);
  std::shared_ptr<const std::vector<T>> fetch_chunk(std::size_t id);
  std::unique_ptr<impl> impl_;
};

}  // namespace fzmod::core

namespace fzmod {
using core::reader;
using core::reader_options;
using core::reader_stats;
}  // namespace fzmod
