// FZModules — pipeline auto-selection (the paper's future-work item (3):
// "an auto-selection mechanism for compression modules based on data
// characteristics, intended hardware environment, and needed quality
// metrics of the end user").
//
// The tuner samples a sparse, stratified subset of the field, quantizes
// it at the requested bound, and estimates two cheap statistics:
//
//  - predictability: the fraction of sampled neighbour deltas that fall
//    inside the quantizer radius (would Lorenzo-class prediction work at
//    this bound at all?);
//  - concentration: the share of quantized deltas that are exactly zero
//    (is the code distribution dominated by a few symbols — the regime
//    where the top-k histogram and zero-eliminating codecs shine?).
//
// Together with the user's objective (throughput / ratio / quality /
// balanced) these pick the stage modules. The sample pass costs ~1% of a
// compression pass, so the tuner can run per snapshot.
#pragma once

#include <span>
#include <string>

#include "fzmod/core/config.hh"

namespace fzmod::core {

/// What the user optimizes for (the "needed quality metrics" axis).
enum class objective : u8 { balanced, throughput, ratio, quality };

[[nodiscard]] inline const char* to_string(objective o) {
  switch (o) {
    case objective::balanced: return "balanced";
    case objective::throughput: return "throughput";
    case objective::ratio: return "ratio";
    case objective::quality: return "quality";
  }
  return "?";
}

struct autotune_report {
  pipeline_config config;   // the chosen pipeline
  f64 predictability = 0;   // fraction of sampled deltas within radius
  f64 concentration = 0;    // fraction of sampled deltas quantizing to 0
  f64 sampled_range = 0;    // min..max seen in the sample
  std::string rationale;    // human-readable decision trace
};

/// Sample `data` and choose a pipeline configuration for the bound and
/// objective. Deterministic (strided sampling).
[[nodiscard]] autotune_report autotune(std::span<const f32> data,
                                       dims3 dims, eb_config eb,
                                       objective goal = objective::balanced);

}  // namespace fzmod::core
