// FZModules — module registry.
//
// Maps stage-module names to factories. Built-ins self-register on first
// use; user code registers custom modules at startup and references them
// from pipeline_config by name. Archives store names, so a process that
// registered the same modules can decompress any archive it can name.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fzmod/common/error.hh"
#include "fzmod/core/module.hh"

namespace fzmod::core {

/// Which pipeline stage a registered module implements.
enum class module_kind : u8 { preprocessor = 0, predictor = 1, codec = 2 };

[[nodiscard]] inline const char* to_string(module_kind k) {
  switch (k) {
    case module_kind::preprocessor: return "preprocessor";
    case module_kind::predictor: return "predictor";
    case module_kind::codec: return "codec";
  }
  return "?";
}

/// One row of the registry listing (`fzmod modules`, docs/PIPELINES.md).
struct module_info {
  std::string name;
  module_kind kind = module_kind::codec;
  std::string description;  ///< one line; empty for undescribed modules
};

template <class T>
class module_registry {
 public:
  using preprocessor_factory =
      std::function<std::unique_ptr<preprocessor_module<T>>()>;
  using predictor_factory =
      std::function<std::unique_ptr<predictor_module<T>>()>;
  using codec_factory = std::function<std::unique_ptr<codec_module>()>;

  static module_registry& instance();

  void register_preprocessor(const std::string& name, preprocessor_factory f,
                             const std::string& description = "") {
    std::lock_guard lk(mu_);
    preprocessors_[name] = std::move(f);
    if (!description.empty()) descriptions_[name] = description;
  }
  void register_predictor(const std::string& name, predictor_factory f,
                          const std::string& description = "") {
    std::lock_guard lk(mu_);
    predictors_[name] = std::move(f);
    if (!description.empty()) descriptions_[name] = description;
  }
  void register_codec(const std::string& name, codec_factory f,
                      const std::string& description = "") {
    std::lock_guard lk(mu_);
    codecs_[name] = std::move(f);
    if (!description.empty()) descriptions_[name] = description;
  }

  [[nodiscard]] std::unique_ptr<preprocessor_module<T>> make_preprocessor(
      const std::string& name) {
    std::lock_guard lk(mu_);
    auto it = preprocessors_.find(name);
    FZMOD_REQUIRE(it != preprocessors_.end(), status::unsupported,
                  "unknown preprocessor module: " + name);
    return it->second();
  }
  [[nodiscard]] std::unique_ptr<predictor_module<T>> make_predictor(
      const std::string& name) {
    std::lock_guard lk(mu_);
    auto it = predictors_.find(name);
    FZMOD_REQUIRE(it != predictors_.end(), status::unsupported,
                  "unknown predictor module: " + name);
    return it->second();
  }
  [[nodiscard]] std::unique_ptr<codec_module> make_codec(
      const std::string& name) {
    std::lock_guard lk(mu_);
    auto it = codecs_.find(name);
    FZMOD_REQUIRE(it != codecs_.end(), status::unsupported,
                  "unknown codec module: " + name);
    return it->second();
  }

  [[nodiscard]] std::vector<std::string> preprocessor_names() {
    std::lock_guard lk(mu_);
    std::vector<std::string> names;
    for (const auto& [k, v] : preprocessors_) names.push_back(k);
    return names;
  }
  [[nodiscard]] std::vector<std::string> predictor_names() {
    std::lock_guard lk(mu_);
    std::vector<std::string> names;
    for (const auto& [k, v] : predictors_) names.push_back(k);
    return names;
  }
  [[nodiscard]] std::vector<std::string> codec_names() {
    std::lock_guard lk(mu_);
    std::vector<std::string> names;
    for (const auto& [k, v] : codecs_) names.push_back(k);
    return names;
  }

  [[nodiscard]] bool has_preprocessor(const std::string& name) {
    std::lock_guard lk(mu_);
    return preprocessors_.count(name) != 0;
  }
  [[nodiscard]] bool has_predictor(const std::string& name) {
    std::lock_guard lk(mu_);
    return predictors_.count(name) != 0;
  }
  [[nodiscard]] bool has_codec(const std::string& name) {
    std::lock_guard lk(mu_);
    return codecs_.count(name) != 0;
  }

  /// Every registered module (stage order, then by name) with its kind
  /// and one-line description — drives `fzmod modules` and keeps specs
  /// discoverable without reading source.
  [[nodiscard]] std::vector<module_info> list() {
    std::lock_guard lk(mu_);
    std::vector<module_info> rows;
    const auto desc = [&](const std::string& n) {
      auto it = descriptions_.find(n);
      return it == descriptions_.end() ? std::string() : it->second;
    };
    for (const auto& [k, v] : preprocessors_) {
      rows.push_back({k, module_kind::preprocessor, desc(k)});
    }
    for (const auto& [k, v] : predictors_) {
      rows.push_back({k, module_kind::predictor, desc(k)});
    }
    for (const auto& [k, v] : codecs_) {
      rows.push_back({k, module_kind::codec, desc(k)});
    }
    return rows;
  }

 private:
  module_registry() = default;
  std::mutex mu_;
  std::map<std::string, preprocessor_factory> preprocessors_;
  std::map<std::string, predictor_factory> predictors_;
  std::map<std::string, codec_factory> codecs_;
  std::map<std::string, std::string> descriptions_;
};

}  // namespace fzmod::core
