#include "fzmod/core/stf_pipeline.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>

#include "fzmod/common/error.hh"
#include "fzmod/core/archive_format.hh"
#include "fzmod/encoders/huffman.hh"
#include "fzmod/kernels/histogram.hh"
#include "fzmod/kernels/scan.hh"
#include "fzmod/kernels/stats.hh"
#include "fzmod/lossless/lz.hh"
#include "fzmod/predictors/quant_field.hh"
#include "fzmod/stf/stf.hh"

namespace fzmod::core {
namespace {

/// Shared side-channel collected by tasks whose output size is dynamic
/// (outlier lists, the Huffman blob). Ordering is still enforced by the
/// STF dependencies on the dense logical data these tasks also touch.
struct side_state {
  std::mutex mu;
  std::vector<kernels::outlier> outliers;
  std::vector<fmt::vo_record> value_outliers;
  std::vector<u8> huffman_blob;
};

}  // namespace

std::vector<u8> stf_compress(std::span<const f32> data, dims3 dims,
                             eb_config eb, int radius) {
  const std::size_t n = data.size();
  FZMOD_REQUIRE(n == dims.len(), status::invalid_argument,
                "stf: data size does not match dims");

  // Preprocessing (bound resolution) happens before graph construction —
  // every downstream task needs the scalar.
  f64 ebx2 = 2.0 * eb.eb;
  if (eb.mode == eb_mode::rel) {
    const auto mm = kernels::minmax_host<f32>(data);
    ebx2 = 2.0 * eb.resolve(mm.range());
  }
  const std::size_t nbins = 2 * static_cast<std::size_t>(radius);

  auto side = std::make_shared<side_state>();
  stf::context ctx;
  auto ld_data = ctx.import(data, "data");
  auto ld_q = ctx.make_data<i32>(n, "quant");
  auto ld_codes = ctx.make_data<u16>(n, "codes");
  auto ld_oflag = ctx.make_data<u8>(n, "oflag");
  auto ld_odelta = ctx.make_data<i32>(n, "odelta");
  auto ld_bins = ctx.make_data<u32>(nbins, "bins");

  // Task 1 (device): pre-quantize to the integer lattice.
  ctx.submit(
      "prequant", stf::place::device,
      [ebx2, side](device::stream& s, device::buffer<f32>& in,
                   device::buffer<i32>& q) {
        const f32* ip = in.data();
        i32* qp = q.data();
        const f64 r_ebx2 = 1.0 / ebx2;
        const std::size_t count = in.size();
        device::launch_blocks(
            s, count, device::runtime::instance().default_block(),
            [ip, qp, r_ebx2, side](std::size_t, std::size_t lo,
                                   std::size_t hi) {
              for (std::size_t i = lo; i < hi; ++i) {
                const f64 scaled = static_cast<f64>(ip[i]) * r_ebx2;
                if (!(std::fabs(scaled) <
                      static_cast<f64>(predictors::value_outlier_limit))) {
                  std::lock_guard lk(side->mu);
                  side->value_outliers.push_back(
                      {i, static_cast<f64>(ip[i])});
                  qp[i] = 0;
                } else {
                  qp[i] = static_cast<i32>(std::llrint(scaled));
                }
              }
            });
      },
      stf::read(ld_data), stf::write(ld_q));

  // Task 2 (device): Lorenzo difference + quantization codes + outlier
  // flags/deltas.
  ctx.submit(
      "lorenzo-quantize", stf::place::device,
      [dims, radius](device::stream& s, device::buffer<i32>& q,
                     device::buffer<u16>& codes, device::buffer<u8>& oflag,
                     device::buffer<i32>& odelta) {
        const i32* qp = q.data();
        u16* cp = codes.data();
        u8* fp = oflag.data();
        i32* dp = odelta.data();
        const int rank = dims.rank();
        const std::size_t count = q.size();
        device::launch(s, count, [=](std::size_t i) {
          const std::size_t x = i % dims.x;
          const std::size_t y = (i / dims.x) % dims.y;
          const std::size_t z = i / (dims.x * dims.y);
          const std::size_t sx = 1, sy = dims.x, sz = dims.x * dims.y;
          i64 pred = 0;
          if (rank == 1) {
            pred = x ? qp[i - sx] : 0;
          } else if (rank == 2) {
            const i64 w = x ? qp[i - sx] : 0;
            const i64 nn = y ? qp[i - sy] : 0;
            const i64 nw = (x && y) ? qp[i - sx - sy] : 0;
            pred = w + nn - nw;
          } else {
            const i64 vx = x ? qp[i - sx] : 0;
            const i64 vy = y ? qp[i - sy] : 0;
            const i64 vz = z ? qp[i - sz] : 0;
            const i64 vxy = (x && y) ? qp[i - sx - sy] : 0;
            const i64 vxz = (x && z) ? qp[i - sx - sz] : 0;
            const i64 vyz = (y && z) ? qp[i - sy - sz] : 0;
            const i64 vxyz = (x && y && z) ? qp[i - sx - sy - sz] : 0;
            pred = vx + vy + vz - vxy - vxz - vyz + vxyz;
          }
          const i64 delta = static_cast<i64>(qp[i]) - pred;
          const i64 code = delta + radius;
          if (code > 0 && code < 2 * radius) {
            cp[i] = static_cast<u16>(code);
            fp[i] = 0;
            dp[i] = 0;
          } else {
            cp[i] = 0;
            fp[i] = 1;
            dp[i] = static_cast<i32>(delta);
          }
        });
      },
      stf::read(ld_q), stf::write(ld_codes), stf::write(ld_oflag),
      stf::write(ld_odelta));

  // Task 3 (device): histogram of the codes. Independent of the outlier
  // branch below — the scheduler runs them concurrently.
  ctx.submit(
      "histogram", stf::place::device,
      [](device::stream& s, device::buffer<u16>& codes,
         device::buffer<u32>& bins) {
        kernels::histogram_async(codes, bins, s);
      },
      stf::read(ld_codes), stf::write(ld_bins));

  // Task 4 (device->side): compact the outlier list. Concurrent with the
  // histogram/Huffman branch.
  ctx.submit(
      "compact-outliers", stf::place::device,
      [side](device::stream& s, device::buffer<u8>& oflag,
             device::buffer<i32>& odelta) {
        const u8* fp = oflag.data();
        const i32* dp = odelta.data();
        const std::size_t count = oflag.size();
        device::host_task(s, [fp, dp, count, side] {
          std::vector<kernels::outlier> local;
          for (std::size_t i = 0; i < count; ++i) {
            if (fp[i]) local.push_back({i, dp[i]});
          }
          std::lock_guard lk(side->mu);
          side->outliers = std::move(local);
        });
      },
      stf::read(ld_oflag), stf::read(ld_odelta));

  // Task 5 (host): CPU Huffman over codes + histogram. The STF runtime
  // inserts the D2H transfers (codes, bins) this hybrid stage needs.
  ctx.submit(
      "huffman-encode", stf::place::host,
      [side](device::stream&, device::buffer<u16>& codes,
             device::buffer<u32>& bins) {
        auto blob = encoders::huffman_encode(codes.span(), bins.span());
        std::lock_guard lk(side->mu);
        side->huffman_blob = std::move(blob);
      },
      stf::read(ld_codes), stf::read(ld_bins));

  ctx.finalize();

  // Assemble the standard archive (identical layout to core::pipeline).
  fmt::inner_header hdr{};
  hdr.magic = fmt::inner_magic;
  hdr.version = fmt::archive_version;
  hdr.type = static_cast<u8>(dtype::f32);
  hdr.mode = static_cast<u8>(eb.mode);
  hdr.eb_user = eb.eb;
  hdr.ebx2 = ebx2;
  hdr.dims[0] = dims.x;
  hdr.dims[1] = dims.y;
  hdr.dims[2] = dims.z;
  hdr.radius = radius;
  std::memcpy(hdr.preprocessor, "value-range", 12);
  std::memcpy(hdr.predictor, "lorenzo", 8);
  std::memcpy(hdr.codec, "huffman", 8);
  hdr.n_outliers = side->outliers.size();
  hdr.n_value_outliers = side->value_outliers.size();
  hdr.codec_bytes = side->huffman_blob.size();

  const std::vector<u8> packed_outliers =
      fmt::pack_outliers(std::move(side->outliers));
  hdr.outlier_bytes = packed_outliers.size();

  // Value outliers are collected under a lock in scheduling order; sort
  // so archives are byte-deterministic (matches core::pipeline).
  std::sort(side->value_outliers.begin(), side->value_outliers.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });

  const u64 vo_bytes = hdr.n_value_outliers * sizeof(fmt::vo_record);
  const fmt::outer_header_v2 outer{fmt::outer_magic_v2, 0, {}, 0};
  std::vector<u8> archive(sizeof(outer) + sizeof(hdr) +
                          side->huffman_blob.size() +
                          packed_outliers.size() + vo_bytes);
  u8* p = archive.data();
  std::memcpy(p, &outer, sizeof(outer));
  u8* const header_slot = p + sizeof(outer);
  p = header_slot + sizeof(hdr);  // header lands last (after digests)
  const u8* const codec_at = p;
  std::memcpy(p, side->huffman_blob.data(), side->huffman_blob.size());
  p += side->huffman_blob.size();
  const u8* const outliers_at = p;
  if (!packed_outliers.empty()) {
    std::memcpy(p, packed_outliers.data(), packed_outliers.size());
  }
  p += packed_outliers.size();
  const u8* const vo_at = p;
  if (vo_bytes != 0) {
    std::memcpy(p, side->value_outliers.data(), vo_bytes);
  }

  hdr.digest_codec =
      kernels::chunked_hash({codec_at, side->huffman_blob.size()});
  hdr.digest_outliers =
      kernels::chunked_hash({outliers_at, packed_outliers.size()});
  hdr.digest_value_outliers = kernels::chunked_hash({vo_at, vo_bytes});
  hdr.digest_anchors = kernels::chunked_hash({});  // stf writes no anchors
  hdr.digest_header = fmt::header_digest(hdr);
  std::memcpy(header_slot, &hdr, sizeof(hdr));
  return archive;
}

std::vector<f32> stf_decompress(std::span<const u8> archive) {
  // Same version negotiation + verification policy as core::pipeline —
  // both drivers read the one format, via the shared fmt helpers.
  const fmt::outer_view ov = fmt::parse_outer(archive);
  fmt::verify_outer(ov);
  std::vector<u8> body_storage;
  std::span<const u8> body = ov.stored_body;
  if (ov.secondary) {
    body_storage = lossless::decompress(body);
    body = body_storage;
  }
  const fmt::inner_header hdr = fmt::parse_inner(body);
  fmt::verify_inner_header(hdr);
  FZMOD_REQUIRE(std::string_view(hdr.predictor) == "lorenzo" &&
                    std::string_view(hdr.codec) == "huffman",
                status::unsupported,
                "stf driver only supports lorenzo+huffman archives");
  FZMOD_REQUIRE(std::string_view(hdr.preprocessor) == "value-range" ||
                    std::string_view(hdr.preprocessor) == "none",
                status::unsupported,
                "stf driver does not support transforming preprocessors");
  const dims3 dims = fmt::validate_dims(hdr, body.size());
  const std::size_t n = dims.len();
  const int radius = hdr.radius;
  const f64 ebx2 = hdr.ebx2;
  fmt::validate_anchor_geometry(hdr, dims);
  const fmt::section_view sections = fmt::slice_sections(body, hdr);
  fmt::verify_sections(hdr, sections);

  // Stage the variable payloads (shared_ptr: tasks outlive this frame's
  // locals only through captures).
  auto blob = std::make_shared<std::vector<u8>>(sections.codec.begin(),
                                                sections.codec.end());
  auto outliers = std::make_shared<std::vector<kernels::outlier>>(
      fmt::unpack_outliers(sections.outliers, hdr.n_outliers, n));
  std::vector<fmt::vo_record> value_outliers(hdr.n_value_outliers);
  std::memcpy(value_outliers.data(), sections.value_outliers.data(),
              sections.value_outliers.size());

  stf::context ctx;
  auto ld_codes = ctx.make_data<u16>(n, "codes");
  auto ld_odelta = ctx.make_data<i32>(n, "odelta");
  auto ld_out = ctx.make_data<f32>(n, "out");

  // Branch A (host): Huffman decode. Branch B (device): outlier scatter.
  // No data dependency between them — the paper's showcase overlap.
  ctx.submit(
      "huffman-decode", stf::place::host,
      [blob](device::stream&, device::buffer<u16>& codes) {
        encoders::huffman_decode(*blob, codes.span());
      },
      stf::write(ld_codes));

  ctx.submit(
      "outlier-scatter", stf::place::device,
      [outliers](device::stream& s, device::buffer<i32>& odelta) {
        i32* dp = odelta.data();
        const std::size_t count = odelta.size();
        odelta.fill_zero_async(s);
        const auto* src = outliers->data();
        device::launch(s, outliers->size(),
                       [src, dp, count, outliers](std::size_t k) {
                         const auto& o = src[k];
                         FZMOD_REQUIRE(o.index < count,
                                       status::corrupt_archive,
                                       "stf: outlier index out of range");
                         dp[o.index] = static_cast<i32>(o.value);
                       });
      },
      stf::write(ld_odelta));

  // Join: combine code deltas with outlier deltas, invert the Lorenzo
  // transform (prefix sums), dequantize.
  ctx.submit(
      "combine-invert", stf::place::device,
      [dims, radius, ebx2](device::stream& s, device::buffer<u16>& codes,
                           device::buffer<i32>& odelta,
                           device::buffer<f32>& out) {
        const u16* cp = codes.data();
        i32* dp = odelta.data();
        device::launch(s, codes.size(), [cp, dp, radius](std::size_t i) {
          if (cp[i]) dp[i] += static_cast<i32>(cp[i]) - radius;
        });
        kernels::inclusive_scan_rows_async(odelta, dims, s);
        if (dims.rank() >= 2) {
          kernels::inclusive_scan_cols_async(odelta, dims, s);
        }
        if (dims.rank() >= 3) {
          kernels::inclusive_scan_slices_async(odelta, dims, s);
        }
        f32* op = out.data();
        device::launch(s, codes.size(), [dp, op, ebx2](std::size_t i) {
          op[i] = static_cast<f32>(static_cast<f64>(dp[i]) * ebx2);
        });
      },
      stf::read(ld_codes), stf::rw(ld_odelta), stf::write(ld_out));

  ctx.finalize();

  const auto host = ld_out.fetch_host();
  std::vector<f32> out(host.begin(), host.end());
  for (const auto& vo : value_outliers) {
    FZMOD_REQUIRE(vo.index < n, status::corrupt_archive,
                  "stf: value outlier index out of range");
    out[vo.index] = static_cast<f32>(vo.value);
  }
  return out;
}

}  // namespace fzmod::core
