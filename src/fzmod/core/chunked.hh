// FZModules — chunk-parallel execution layer (the rapidgzip-shaped driver).
//
// Both classic drivers (`core::pipeline`, `core::stf_pipeline`) process a
// field as one monolithic unit: one stream, stages serialized along the
// critical path, peak memory proportional to the field. This driver slices
// the field into independent chunks, runs every chunk through the full
// predict→quantize→encode→secondary pipeline on its own `device::stream`
// (each slot drawing scratch from the caching memory pool), and overlaps
// stages *across* chunks through a bounded in-flight window — chunk B
// predicts while chunk A Huffman-encodes. The output is the v3 chunk
// container (archive_format.hh / docs/FORMAT.md), which buys three things
// block-parallel codecs like rapidgzip and indexed_bzip2 demonstrate:
//
//   (a) parallel decompression — chunks decode concurrently on their own
//       streams;
//   (b) random access — `decompress_range()` reads a sub-extent touching
//       only the chunks that cover it;
//   (c) streaming compression — `compress_stream()` holds at most the
//       in-flight window of chunks in memory, so inputs larger than
//       memory compress through a source/sink pair.
//
// Chunks are whole slabs of the slowest-varying dimension (x-y planes of a
// 3-D field, rows of a 2-D field, element runs of a 1-D field), so every
// chunk is a contiguous linear range AND a well-formed dims3 field — the
// predictor keeps its full dimensionality inside a chunk and only loses
// cross-chunk prediction at slab boundaries. A relative error bound
// resolves per chunk against the chunk's own value range, which is at most
// the field's range: every chunk therefore satisfies the field-level bound.
//
// When the plan yields a single chunk the container is bypassed entirely
// and the output is the standard v2 archive, byte-identical to
// `core::pipeline` — existing readers and tests see no difference.
//
// Under FZMOD_TRACE=1 the scheduler emits per-chunk "chunk#N"/"dechunk#N"
// spans, commit instants, and "chunked.inflight" window-occupancy counter
// samples (docs/OBSERVABILITY.md) — the trace summary's occupancy line is
// how the bounded window is observed in practice.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "fzmod/core/archive_format.hh"
#include "fzmod/core/pipeline.hh"

namespace fzmod::core {

/// Chunking/scheduling knobs. Zero means "resolve from the environment,
/// then fall back to the default": FZMOD_CHUNK_MB (default 16) sizes
/// chunks, FZMOD_JOBS (default 4) bounds concurrent streams. The explicit
/// element override wins over the byte knob (tests use it to force ragged
/// tails and 1-element chunks).
struct chunked_options {
  std::size_t chunk_mb = 0;     // nominal chunk size in MiB
  std::size_t chunk_elems = 0;  // explicit element override (wins)
  unsigned jobs = 0;            // max concurrent per-chunk streams
  /// Peak-memory cap for streaming compression in MiB (FZMOD_STREAM_MEM_MB;
  /// 0 = uncapped). When set, the in-flight window is throttled to fit the
  /// cap instead of scaling with `jobs` — see docs/STREAMING.md.
  std::size_t stream_mem_mb = 0;

  [[nodiscard]] std::size_t resolve_chunk_elems(std::size_t elem_size) const;
  [[nodiscard]] unsigned resolve_jobs() const;
  [[nodiscard]] u64 resolve_stream_mem_bytes() const;
};

/// Resolved streaming-memory plan. The budget model charges each in-flight
/// chunk ~4x its raw bytes (staging slot, host stage copy, device lattice,
/// compressed output) and splits a cap C as C/2 compute window, C/4 read
/// staging, C/4 write queue; docs/STREAMING.md derives the arithmetic.
/// Pure function of its inputs so tests pin the semantics directly.
struct stream_budget {
  u64 window = 0;       // max claimed-but-uncommitted chunks
  unsigned workers = 0; // scheduler worker threads
  u64 read_slots = 0;   // staging buffers the file source fills ahead
  u64 write_bytes = 0;  // writer queue byte budget
};

[[nodiscard]] stream_budget resolve_stream_budget(u64 cap_bytes,
                                                  u64 chunk_bytes,
                                                  unsigned jobs);

/// Cumulative counters for one streaming-compression run, filled by the
/// scheduler and the file IO threads (core/stream_io.hh). The stall
/// counters also surface as `stream.stall.{read,write}` trace counters
/// and the accounted peak as `stream.peak_bytes` (docs/OBSERVABILITY.md).
struct stream_io_stats {
  u64 window = 0;          // resolved in-flight window
  unsigned workers = 0;    // resolved scheduler threads
  u64 read_slots = 0;      // resolved staging depth
  u64 chunks_total = 0;    // planned chunks
  u64 chunks_resumed = 0;  // chunks salvaged from a prior interrupted run
  u64 read_stalls = 0;     // consumer waits on an unfilled staging slot
  u64 write_stalls = 0;    // sink waits on a full writer queue
  u64 bytes_read = 0;      // raw field bytes pulled from the source
  u64 bytes_written = 0;   // archive bytes pushed to the sink
  u64 peak_bytes = 0;      // accounted peak of scheduler+staging+queue
};

/// One planned chunk: a contiguous element range plus the dims3 shape the
/// per-chunk pipeline sees.
struct chunk_extent {
  u64 offset = 0;  // first element in the full field
  u64 len = 0;     // element count
  dims3 dims;      // chunk shape (slab-aligned)
};

/// Slab-aligned chunk plan for a field. Chunks cover [0, dims.len())
/// contiguously; all but the last hold the same whole number of slabs.
[[nodiscard]] std::vector<chunk_extent> plan_chunks(dims3 dims,
                                                    std::size_t chunk_elems);

/// Container introspection without decoding. For v1/v2 archives reports
/// one implicit chunk covering the whole field (`chunked == false`).
struct chunked_info {
  bool chunked = false;
  dims3 dims;
  dtype type = dtype::f32;
  u64 nchunks = 1;
  u64 chunk_elems = 0;
  std::vector<fmt::chunk_dir_entry> chunks;  // empty for v1/v2
};

[[nodiscard]] chunked_info inspect_chunked(std::span<const u8> archive);

/// Element-range validation shared by decompress_range and the seekable
/// reader. Runs BEFORE any decode work: a malformed request must fail as
/// invalid_argument with the numbers in the message — never cost a decode
/// first, and never get masked by a corruption error from a chunk the
/// request should not have touched. Zero-length ranges are rejected (a
/// serving read of nothing is a caller bug), as is an offset at or past
/// the field end. The subtraction form of the end check is immune to
/// elem_offset + elem_count wrapping u64.
inline void require_range(u64 elem_offset, u64 elem_count, u64 field_len,
                          const char* who) {
  FZMOD_REQUIRE(elem_count >= 1, status::invalid_argument,
                std::string(who) + ": zero-length range at offset " +
                    std::to_string(elem_offset));
  FZMOD_REQUIRE(elem_offset < field_len, status::invalid_argument,
                std::string(who) + ": offset " +
                    std::to_string(elem_offset) +
                    " is at or past the field end (" +
                    std::to_string(field_len) + " elements)");
  FZMOD_REQUIRE(elem_count <= field_len - elem_offset,
                status::invalid_argument,
                std::string(who) + ": range [" +
                    std::to_string(elem_offset) + ", " +
                    std::to_string(elem_offset) + "+" +
                    std::to_string(elem_count) +
                    ") overruns the field (" + std::to_string(field_len) +
                    " elements)");
}

/// verify_archive's container analogue: per-chunk digest + inner report.
struct chunk_verify_entry {
  u64 index = 0;
  bool digest_ok = true;             // directory-level archive digest
  archive_verify_report inner;       // the chunk archive's own digests
  [[nodiscard]] bool ok() const { return digest_ok && inner.ok(); }
};

struct chunked_verify_report {
  bool container_ok = true;  // header/directory digests + structure
  std::vector<chunk_verify_entry> chunks;
  [[nodiscard]] bool ok() const {
    if (!container_ok) return false;
    for (const auto& c : chunks) {
      if (!c.ok()) return false;
    }
    return true;
  }
};

/// Check every digest a v3 container carries (and, per chunk, every digest
/// the chunk archive carries) without decoding payloads. Works on v1/v2
/// archives too — the report then holds one entry wrapping verify_archive.
[[nodiscard]] chunked_verify_report verify_chunked(
    std::span<const u8> archive);

template <class T>
class chunked_pipeline {
 public:
  /// Pull `n` elements starting at `elem_offset` into `dst`. Called from
  /// scheduler worker threads, possibly concurrently for different chunks:
  /// sources must be safe for concurrent reads of disjoint ranges.
  using source_fn =
      std::function<void(T* dst, u64 elem_offset, std::size_t n)>;
  /// Ordered output writer: receives the container bytes front to back.
  using sink_fn = std::function<void(std::span<const u8>)>;

  explicit chunked_pipeline(pipeline_config cfg, chunked_options opt = {});

  /// Compress a host-resident field. Single-chunk plans return the plain
  /// v2 archive (byte-identical to core::pipeline); larger fields return
  /// the v3 container.
  [[nodiscard]] std::vector<u8> compress(std::span<const T> data,
                                         dims3 dims);

  /// Streaming compression: chunks are pulled from `src` on demand (at
  /// most the in-flight window is resident) and container bytes are pushed
  /// to `sink` strictly in order. On error the sink's output is invalid.
  void compress_stream(const source_fn& src, dims3 dims,
                       const sink_fn& sink);

  /// Resume/observability hooks for the out-of-core driver
  /// (core/stream_io.hh). Compression starts at chunk `first_chunk` with
  /// `committed` holding the directory entries of chunks [0, first_chunk)
  /// salvaged from a prior run; the final directory covers both. The
  /// header is suppressed when resuming (it is already on disk).
  struct stream_progress {
    u64 first_chunk = 0;
    std::vector<fmt::chunk_dir_entry> committed;
    /// Called under the commit lock, after the sink, once per chunk in
    /// commit order — the resume journal append point.
    std::function<void(u64 index, const fmt::chunk_dir_entry&)> on_commit;
    bool emit_header = true;
    stream_io_stats* io = nullptr;  // optional counter sink
  };

  /// Streaming compression with resume + counters. The plain overload is
  /// equivalent to a default-constructed progress. Requires a multi-chunk
  /// plan when first_chunk > 0 (single-chunk outputs have no directory to
  /// splice into).
  void compress_stream(const source_fn& src, dims3 dims,
                       const sink_fn& sink, stream_progress progress);

  /// Decompress any archive version: v3 containers decode chunk-parallel,
  /// v1/v2 delegate to core::pipeline.
  [[nodiscard]] std::vector<T> decompress(std::span<const u8> archive);

  /// Random access: decode only the chunks covering
  /// [elem_offset, elem_offset + elem_count) and return that sub-extent.
  /// Bytes of other chunks are never read, so damage elsewhere in the
  /// container does not affect the result. v1/v2 archives decode fully
  /// (they are one chunk) and slice.
  [[nodiscard]] std::vector<T> decompress_range(std::span<const u8> archive,
                                                u64 elem_offset,
                                                u64 elem_count);

  [[nodiscard]] const pipeline_config& config() const { return cfg_; }
  [[nodiscard]] const chunked_options& options() const { return opt_; }

 private:
  pipeline_config cfg_;
  chunked_options opt_;
};

/// Version-agnostic one-shot decode (snapshot/CLI entry point): v3 chunk
/// containers and plain v1/v2 archives both come back as the full field.
template <class T>
[[nodiscard]] std::vector<T> decompress_any(std::span<const u8> archive,
                                            const chunked_options& opt = {});

}  // namespace fzmod::core
