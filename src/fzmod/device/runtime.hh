// FZModules — software device runtime (the CUDA substitute).
//
// This reproduction runs on machines without GPUs, so the heterogeneous
// substrate the paper builds on is simulated: there is a distinct "device"
// memory space with its own allocator and accounting, asynchronous streams
// that order work the way CUDA streams do, events for cross-stream
// synchronization, and a data-parallel kernel launcher that decomposes an
// index space over the worker pool the way a grid of thread blocks is
// decomposed over SMs.
//
// The discipline is enforced dynamically: host code must not dereference
// device buffers (and vice versa); transfers between the spaces are
// explicit, byte-copying, stream-ordered operations whose volume is
// tracked, so pipelines pay — and benches can report — real movement costs.
//
// Allocation in both spaces goes through stream-ordered caching pools
// (memory_pool.hh), so steady-state pipeline runs reuse their scratch
// blocks in O(1) instead of round-tripping the system allocator per call.
// See docs/RUNTIME.md for the pool design and the zero-steady-state-
// allocation contract.
//
// Every stream op (memcpy, kernel, memset, host_task) is a trace span when
// FZMOD_TRACE=1, tagged with its stream id and byte count; see
// docs/OBSERVABILITY.md. Disabled cost is one relaxed atomic load per op.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>

#include "fzmod/common/error.hh"
#include "fzmod/common/types.hh"
#include "fzmod/device/memory_pool.hh"
#include "fzmod/device/task.hh"
#include "fzmod/device/thread_pool.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod::device {

/// Which memory space a buffer lives in (the host/device divide the
/// runtime enforces dynamically).
enum class space : u8 { host, device };

[[nodiscard]] inline const char* to_string(space s) {
  return s == space::host ? "host" : "device";
}

/// Direction of a stream-ordered copy; each direction is tallied
/// separately in runtime_stats.
enum class copy_kind : u8 { h2h, h2d, d2h, d2d };

[[nodiscard]] inline const char* to_string(copy_kind k) {
  switch (k) {
    case copy_kind::h2h: return "memcpy.h2h";
    case copy_kind::h2d: return "memcpy.h2d";
    case copy_kind::d2h: return "memcpy.d2h";
    case copy_kind::d2d: return "memcpy.d2d";
  }
  return "memcpy";
}

/// Torn-free plain-value copy of runtime_stats (see
/// runtime::stats_snapshot): pool sections are taken under each pool's
/// mutex, and the in-use/peak pair is clamped so peak >= in_use always
/// holds. This is what the trace counter sampler reads — it can never
/// observe a mid-update pair.
struct runtime_stats_snapshot {
  u64 h2d_bytes = 0;
  u64 d2h_bytes = 0;
  u64 d2d_bytes = 0;
  u64 kernels_launched = 0;
  u64 device_bytes_in_use = 0;
  u64 device_bytes_peak = 0;
  pool_stats_snapshot device_pool;
  pool_stats_snapshot host_pool;
};

/// Cumulative transfer/launch counters, readable by benches and tests.
/// Pool counters are per memory space (device and host caching pools).
/// Individual atomics are safe to read directly; for a consistent
/// multi-field view use runtime::stats_snapshot().
struct runtime_stats {
  std::atomic<u64> h2d_bytes{0};
  std::atomic<u64> d2h_bytes{0};
  std::atomic<u64> d2d_bytes{0};
  std::atomic<u64> kernels_launched{0};
  std::atomic<u64> device_bytes_in_use{0};
  std::atomic<u64> device_bytes_peak{0};
  pool_stats device_pool;
  pool_stats host_pool;

  void reset_transfers() {
    h2d_bytes = 0;
    d2h_bytes = 0;
    d2d_bytes = 0;
    kernels_launched = 0;
  }

  /// Rebase the device high-water mark to the memory currently live.
  /// Benches/tests that reset counters between sections call this so one
  /// section's peak does not leak into the next section's report.
  void reset_peak() {
    device_bytes_peak = device_bytes_in_use.load();
  }

  void reset_pool_counters() {
    device_pool.reset_counters();
    host_pool.reset_counters();
  }
};

/// Process-wide runtime: owns the worker pool, the device heap accounting,
/// and the per-space caching memory pools. Thread-safe.
class runtime {
 public:
  static runtime& instance() {
    static runtime rt;
    return rt;
  }

  thread_pool& pool() { return pool_; }
  runtime_stats& stats() { return stats_; }
  memory_pool& device_pool() { return device_pool_; }
  memory_pool& host_pool() { return host_pool_; }

  [[nodiscard]] void* device_alloc(std::size_t bytes) {
    void* p = device_pool_.allocate(bytes);
    // Accounting charges the caller's exact request; bin rounding is the
    // pool's internal capacity and never reaches these counters.
    const u64 in_use =
        stats_.device_bytes_in_use.fetch_add(bytes) + bytes;
    u64 peak = stats_.device_bytes_peak.load();
    while (in_use > peak &&
           !stats_.device_bytes_peak.compare_exchange_weak(peak, in_use)) {
    }
    return p;
  }

  void device_free(void* p, std::size_t bytes) {
    device_pool_.deallocate(p, bytes);
    stats_.device_bytes_in_use.fetch_sub(bytes);
  }

  [[nodiscard]] void* host_alloc(std::size_t bytes) {
    return host_pool_.allocate(bytes);
  }

  void host_free(void* p, std::size_t bytes) {
    host_pool_.deallocate(p, bytes);
  }

  /// Release every cached block in both pools back to the system;
  /// returns the total bytes released.
  u64 trim_pools() { return device_pool_.trim() + host_pool_.trim(); }

  /// Runtime A/B switch for both pools (FZMOD_POOL=0 sets the startup
  /// default; benches toggle this to measure pool-on vs pool-off).
  void set_pool_enabled(bool on) {
    device_pool_.set_enabled(on);
    host_pool_.set_enabled(on);
  }

  [[nodiscard]] bool pool_enabled() const { return device_pool_.enabled(); }

  /// Grain used when decomposing kernel launches ("block size").
  [[nodiscard]] std::size_t default_block() const { return 1u << 14; }

  /// Torn-free multi-field view of the cumulative counters (see
  /// runtime_stats_snapshot). Pool sections are copied under each pool's
  /// mutex; the peak is clamped so `peak >= in_use` holds even while
  /// allocations race the read.
  [[nodiscard]] runtime_stats_snapshot stats_snapshot() {
    runtime_stats_snapshot s;
    s.device_pool = device_pool_.snapshot();
    s.host_pool = host_pool_.snapshot();
    s.h2d_bytes = stats_.h2d_bytes.load(std::memory_order_relaxed);
    s.d2h_bytes = stats_.d2h_bytes.load(std::memory_order_relaxed);
    s.d2d_bytes = stats_.d2d_bytes.load(std::memory_order_relaxed);
    s.kernels_launched =
        stats_.kernels_launched.load(std::memory_order_relaxed);
    s.device_bytes_in_use =
        stats_.device_bytes_in_use.load(std::memory_order_relaxed);
    s.device_bytes_peak =
        std::max(stats_.device_bytes_peak.load(std::memory_order_relaxed),
                 s.device_bytes_in_use);
    return s;
  }

 private:
  [[nodiscard]] static bool pool_env_enabled() {
    const char* v = std::getenv("FZMOD_POOL");
    return !(v && v[0] == '0' && v[1] == '\0');
  }

  runtime()
      : device_pool_(stats_.device_pool, pool_env_enabled()),
        host_pool_(stats_.host_pool, pool_env_enabled()) {}

  // Declaration order fixes destruction order: the worker pool is declared
  // last so its destructor joins every worker before the memory pools (or
  // the stats they record into) are torn down.
  runtime_stats stats_;
  memory_pool device_pool_;
  memory_pool host_pool_;
  thread_pool pool_;
};

class stream;

/// Typed allocation pinned to one memory space. RAII; movable, not
/// copyable. Element access from the "wrong" side is a programming error
/// that `assert_space` makes loud in tests.
///
/// A buffer remembers its allocated capacity separately from its logical
/// size: `ensure()` shrinks/regrows the view in place whenever the
/// existing block is large enough, which (together with the caching pools)
/// is what lets pipeline scratch reach zero steady-state allocations.
template <class T>
class buffer {
 public:
  buffer() = default;

  explicit buffer(std::size_t n, space sp = space::device)
      : n_(n), space_(sp) {
    if (n_ == 0) return;
    cap_bytes_ = n_ * sizeof(T);
    if (space_ == space::device) {
      ptr_ = static_cast<T*>(runtime::instance().device_alloc(cap_bytes_));
    } else {
      ptr_ = static_cast<T*>(runtime::instance().host_alloc(cap_bytes_));
    }
  }

  buffer(buffer&& o) noexcept { swap(o); }
  buffer& operator=(buffer&& o) noexcept {
    if (this != &o) {
      release();
      swap(o);
    }
    return *this;
  }
  buffer(const buffer&) = delete;
  buffer& operator=(const buffer&) = delete;

  ~buffer() { release(); }

  [[nodiscard]] T* data() { return ptr_; }
  [[nodiscard]] const T* data() const { return ptr_; }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] std::size_t bytes() const { return n_ * sizeof(T); }
  [[nodiscard]] std::size_t capacity_bytes() const { return cap_bytes_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] space where() const { return space_; }

  [[nodiscard]] std::span<T> span() { return {ptr_, n_}; }
  [[nodiscard]] std::span<const T> span() const { return {ptr_, n_}; }

  /// Resize-discard: make the buffer view n elements in `sp`, reusing the
  /// current allocation when it is big enough and in the right space.
  /// Contents are unspecified afterwards (like a fresh buffer). This is
  /// the hot-path primitive for per-call scratch: steady-state calls with
  /// stable sizes never release or acquire memory.
  void ensure(std::size_t n, space sp = space::device) {
    if (ptr_ && space_ == sp && n * sizeof(T) <= cap_bytes_) {
      n_ = n;
      return;
    }
    *this = buffer<T>(n, sp);
  }

  void assert_space(space expected) const {
    FZMOD_REQUIRE(space_ == expected, status::invalid_argument,
                  std::string("buffer is in ") + to_string(space_) +
                      " memory, expected " + to_string(expected));
  }

  /// Immediate host-side zeroing. Host buffers only: zeroing a device
  /// buffer from the host thread would bypass stream ordering — use
  /// fill_zero_async for device-resident data.
  void fill_zero() {
    if (ptr_) std::memset(ptr_, 0, bytes());
  }

  /// Stream-ordered zeroing (the cudaMemsetAsync analogue). Counted as a
  /// kernel launch in runtime_stats. Defined after `launch` below.
  void fill_zero_async(stream& s);

 private:
  void release() {
    if (!ptr_) return;
    if (space_ == space::device) {
      runtime::instance().device_free(ptr_, cap_bytes_);
    } else {
      runtime::instance().host_free(ptr_, cap_bytes_);
    }
    ptr_ = nullptr;
    n_ = 0;
    cap_bytes_ = 0;
  }

  void swap(buffer& o) noexcept {
    std::swap(ptr_, o.ptr_);
    std::swap(n_, o.n_);
    std::swap(cap_bytes_, o.cap_bytes_);
    std::swap(space_, o.space_);
  }

  T* ptr_ = nullptr;
  std::size_t n_ = 0;
  std::size_t cap_bytes_ = 0;
  space space_ = space::device;
};

/// In-order asynchronous work queue, semantically a CUDA stream: operations
/// enqueue immediately and execute FIFO on the pool; `sync()` blocks until
/// the queue drains. Distinct streams run concurrently. Ops are SBO tasks
/// in a capacity-retaining ring — enqueueing a kernel is allocation-free
/// once the stream has warmed up.
class stream {
 public:
  stream() : id_(next_id()) {}
  stream(const stream&) = delete;
  stream& operator=(const stream&) = delete;

  ~stream() { sync(); }

  /// Small process-unique id (1-based); trace events carry it so the
  /// exporter can lay work out on per-stream tracks and the summary can
  /// compute cross-stream overlap.
  [[nodiscard]] u32 id() const { return id_; }

  template <class F>
  void enqueue(F&& op) {
    trace::instant("stream", "enqueue", id_);
    std::unique_lock lk(mu_);
    ops_.push(unique_task(std::forward<F>(op)));
    if (!running_) {
      running_ = true;
      lk.unlock();
      runtime::instance().pool().submit_detached([this] { drain(); });
    }
  }

  void sync() {
    std::unique_lock lk(mu_);
    idle_cv_.wait(lk, [this] { return ops_.empty() && !running_; });
    if (pending_error_) {
      auto e = pending_error_;
      pending_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void drain() {
    for (;;) {
      unique_task op;
      {
        std::lock_guard lk(mu_);
        if (ops_.empty()) {
          running_ = false;
          idle_cv_.notify_all();
          return;
        }
        op = ops_.pop();
      }
      try {
        op();
      } catch (...) {
        std::lock_guard lk(mu_);
        // First error wins; later ops are abandoned (queue is cleared) so a
        // failed kernel does not feed garbage into its successors.
        if (!pending_error_) pending_error_ = std::current_exception();
        ops_.clear();
      }
    }
  }

  [[nodiscard]] static u32 next_id() {
    static std::atomic<u32> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  u32 id_ = 0;
  std::mutex mu_;
  std::condition_variable idle_cv_;
  task_ring ops_;
  std::exception_ptr pending_error_ = nullptr;
  bool running_ = false;
};

/// One-shot completion marker, semantically a CUDA event: `record` enqueues
/// the marker onto a stream, `wait` blocks a host thread, and
/// `stream_wait` makes another stream's subsequent work wait on it.
class event {
 public:
  event() : state_(std::make_shared<state>()) {}

  void record(stream& s) {
    auto st = state_;
    {
      std::lock_guard lk(st->mu);
      st->done = false;
    }
    s.enqueue([st] {
      std::lock_guard lk(st->mu);
      st->done = true;
      st->cv.notify_all();
    });
  }

  void wait() const {
    auto st = state_;
    std::unique_lock lk(st->mu);
    st->cv.wait(lk, [&] { return st->done; });
  }

  void stream_wait(stream& s) const {
    auto st = state_;
    s.enqueue([st] {
      std::unique_lock lk(st->mu);
      st->cv.wait(lk, [&] { return st->done; });
    });
  }

  [[nodiscard]] bool query() const {
    std::lock_guard lk(state_->mu);
    return state_->done;
  }

 private:
  struct state {
    std::mutex mu;
    std::condition_variable cv;
    bool done = true;  // unrecorded events are trivially complete
  };
  std::shared_ptr<state> state_;
};

/// Stream-ordered byte copy between spaces. The copy really moves bytes,
/// so D2H/H2D costs show up in wall-clock measurements; volumes are
/// tallied per direction in runtime_stats.
inline void memcpy_async(void* dst, const void* src, std::size_t bytes,
                         copy_kind kind, stream& s) {
  s.enqueue([=, sid = s.id()] {
    // t0 == 0 doubles as "tracing off": now_ns() is 0 only at the trace
    // epoch itself, so the disabled path costs exactly one branch here.
    const u64 t0 = trace::enabled() ? trace::now_ns() : 0;
    std::memcpy(dst, src, bytes);
    auto& st = runtime::instance().stats();
    switch (kind) {
      case copy_kind::h2d: st.h2d_bytes += bytes; break;
      case copy_kind::d2h: st.d2h_bytes += bytes; break;
      case copy_kind::d2d: st.d2d_bytes += bytes; break;
      case copy_kind::h2h: break;
    }
    if (t0) {
      trace::complete("stream", to_string(kind), t0, trace::now_ns() - t0,
                      sid, static_cast<f64>(bytes));
    }
  });
}

template <class T>
void copy_async(buffer<T>& dst, const buffer<T>& src, stream& s) {
  FZMOD_REQUIRE(dst.size() >= src.size(), status::invalid_argument,
                "copy_async: destination too small");
  const copy_kind kind =
      src.where() == space::host
          ? (dst.where() == space::host ? copy_kind::h2h : copy_kind::h2d)
          : (dst.where() == space::host ? copy_kind::d2h : copy_kind::d2d);
  memcpy_async(dst.data(), src.data(), src.bytes(), kind, s);
}

/// Data-parallel kernel launch: `body(i)` for each i in [0, n), decomposed
/// into block-sized chunks over the pool, stream-ordered. This is the shape
/// every "GPU" kernel in this repo is written against — the CUDA versions
/// would be grid-stride loops with the same bodies.
template <class F>
void launch(stream& s, std::size_t n, F body) {
  s.enqueue([n, body = std::move(body), sid = s.id()] {
    const u64 t0 = trace::enabled() ? trace::now_ns() : 0;
    auto& rt = runtime::instance();
    rt.stats().kernels_launched += 1;
    rt.pool().parallel_for(n, rt.default_block(),
                           [&](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i) body(i);
                           });
    if (t0) {
      trace::complete("stream", "kernel", t0, trace::now_ns() - t0, sid,
                      static_cast<f64>(n));
    }
  });
}

/// Block-cooperative launch: `body(block_index, lo, hi)` once per block.
/// Kernels that keep block-local state (histogram privatization, per-tile
/// bitshuffle, per-chunk Huffman) use this form.
template <class F>
void launch_blocks(stream& s, std::size_t n, std::size_t block, F body) {
  s.enqueue([n, block, body = std::move(body), sid = s.id()] {
    const u64 t0 = trace::enabled() ? trace::now_ns() : 0;
    auto& rt = runtime::instance();
    rt.stats().kernels_launched += 1;
    const std::size_t nblocks = block ? (n + block - 1) / block : 0;
    rt.pool().parallel_for(
        nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
          for (std::size_t b = blo; b < bhi; ++b) {
            body(b, b * block, std::min(n, (b + 1) * block));
          }
        });
    if (t0) {
      trace::complete("stream", "kernel.blocks", t0, trace::now_ns() - t0,
                      sid, static_cast<f64>(n));
    }
  });
}

/// Run arbitrary host-side work stream-ordered (CPU stages of a hybrid
/// pipeline — e.g. FZMod-Default's CPU Huffman encode).
template <class F>
void host_task(stream& s, F body) {
  s.enqueue([body = std::move(body), sid = s.id()]() mutable {
    const u64 t0 = trace::enabled() ? trace::now_ns() : 0;
    body();
    if (t0) {
      trace::complete("stream", "host_task", t0, trace::now_ns() - t0, sid);
    }
  });
}

template <class T>
void buffer<T>::fill_zero_async(stream& s) {
  if (!ptr_) return;
  auto* p = reinterpret_cast<unsigned char*>(ptr_);
  const std::size_t nbytes = bytes();
  s.enqueue([p, nbytes, sid = s.id()] {
    const u64 t0 = trace::enabled() ? trace::now_ns() : 0;
    auto& rt = runtime::instance();
    rt.stats().kernels_launched += 1;
    rt.pool().parallel_for(nbytes, rt.default_block() * sizeof(T),
                           [p](std::size_t lo, std::size_t hi) {
                             std::memset(p + lo, 0, hi - lo);
                           });
    if (t0) {
      trace::complete("stream", "memset", t0, trace::now_ns() - t0, sid,
                      static_cast<f64>(nbytes));
    }
  });
}

/// Sample the runtime's cumulative counters into the trace as counter
/// tracks (one torn-free stats_snapshot per call). Instrumented drivers
/// call this at stage/commit boundaries; it is a single branch when
/// tracing is disabled.
inline void sample_trace_counters() {
  if (!trace::enabled()) return;
  const runtime_stats_snapshot s = runtime::instance().stats_snapshot();
  trace::counter("pool.device.hits", static_cast<f64>(s.device_pool.hits));
  trace::counter("pool.device.misses",
                 static_cast<f64>(s.device_pool.misses));
  trace::counter("pool.device.bytes_cached",
                 static_cast<f64>(s.device_pool.bytes_cached));
  trace::counter("pool.host.hits", static_cast<f64>(s.host_pool.hits));
  trace::counter("pool.host.misses", static_cast<f64>(s.host_pool.misses));
  trace::counter("runtime.kernels_launched",
                 static_cast<f64>(s.kernels_launched));
  trace::counter("runtime.device_bytes_in_use",
                 static_cast<f64>(s.device_bytes_in_use));
  trace::counter("runtime.h2d_bytes", static_cast<f64>(s.h2d_bytes));
  trace::counter("runtime.d2h_bytes", static_cast<f64>(s.d2h_bytes));
}

}  // namespace fzmod::device
