// FZModules — move-only callable with small-buffer optimization, plus a
// capacity-retaining FIFO of them.
//
// `std::function` requires copyable targets and heap-allocates once a
// closure outgrows its (implementation-defined, small) inline buffer; the
// stream/pool hot path enqueues one closure per kernel launch, so those
// heap hits dominate small-request serving workloads. `unique_task` keeps a
// 128-byte inline slot — sized for launch closures that carry a kernel body
// with a handful of captured pointers — accepts move-only captures
// (promises, buffers), and only falls back to the heap for oversized
// bodies. `task_ring` is the matching queue: a vector with a head cursor,
// so steady-state push/pop touches no allocator once capacity is reached.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace fzmod::device {

class unique_task {
 public:
  static constexpr std::size_t inline_size = 128;
  static constexpr std::size_t inline_align = 16;

  unique_task() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, unique_task>>>
  unique_task(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (storage_) Fn(std::forward<F>(f));
      vt_ = &inline_vtable<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      vt_ = &heap_vtable<Fn>;
    }
  }

  unique_task(unique_task&& o) noexcept : vt_(o.vt_) {
    if (vt_) vt_->relocate(storage_, o.storage_);
    o.vt_ = nullptr;
  }

  unique_task& operator=(unique_task&& o) noexcept {
    if (this != &o) {
      reset();
      vt_ = o.vt_;
      if (vt_) vt_->relocate(storage_, o.storage_);
      o.vt_ = nullptr;
    }
    return *this;
  }

  unique_task(const unique_task&) = delete;
  unique_task& operator=(const unique_task&) = delete;

  ~unique_task() { reset(); }

  void operator()() { vt_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

 private:
  struct vtable {
    void (*invoke)(void*);
    // Move-construct into dst from src, then destroy src's payload.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <class Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= inline_size && alignof(Fn) <= inline_align &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <class Fn>
  static constexpr vtable inline_vtable = {
      [](void* s) { (*static_cast<Fn*>(static_cast<void*>(s)))(); },
      [](void* dst, void* src) noexcept {
        auto* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
  };

  template <class Fn>
  static constexpr vtable heap_vtable = {
      [](void* s) { (**static_cast<Fn**>(s))(); },
      [](void* dst, void* src) noexcept {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* s) noexcept { delete *static_cast<Fn**>(s); },
  };

  void reset() noexcept {
    if (vt_) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  alignas(inline_align) unsigned char storage_[inline_size];
  const vtable* vt_ = nullptr;
};

/// FIFO over a vector with a head cursor: pops advance the cursor and the
/// backing storage is reclaimed wholesale when the queue drains (the
/// common steady state for streams and the worker pool), so no per-element
/// allocator traffic. If a queue never fully drains, the consumed prefix
/// is compacted once it dominates the buffer, bounding growth.
class task_ring {
 public:
  [[nodiscard]] bool empty() const { return head_ == buf_.size(); }
  [[nodiscard]] std::size_t size() const { return buf_.size() - head_; }

  void push(unique_task t) {
    if (head_ > compact_threshold && head_ * 2 > buf_.size()) {
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    buf_.push_back(std::move(t));
  }

  [[nodiscard]] unique_task pop() {
    unique_task t = std::move(buf_[head_++]);
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    }
    return t;
  }

  void clear() {
    buf_.clear();
    head_ = 0;
  }

 private:
  static constexpr std::size_t compact_threshold = 64;
  std::vector<unique_task> buf_;
  std::size_t head_ = 0;
};

}  // namespace fzmod::device
