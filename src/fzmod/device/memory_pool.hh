// FZModules — stream-ordered caching memory pool.
//
// The software device runtime used to forward every buffer allocation to
// the system allocator, which is exactly the per-call overhead that
// `cudaMallocAsync`-style stream-ordered pools exist to eliminate on real
// GPUs: a serving workload making many small compress/decompress calls
// pays an allocator round-trip (lock, size-class search, possibly an mmap)
// per scratch buffer per call. This pool keeps freed blocks in power-of-two
// size-binned free lists, so a steady-state pipeline re-acquires its whole
// scratch set in O(1) per buffer without touching `::operator new`.
//
// Semantics mirror the CUDA default memory pool:
//   - blocks are cached on free and reused for any request that rounds to
//     the same bin; reuse preserves the 64-byte alignment guarantee,
//   - `trim()` (aka `release_cached()`) returns every cached block to the
//     system — the `cudaMemPoolTrimTo(0)` / malloc_trim analogue,
//   - per-pool counters (hits, misses, bytes served, bytes cached) are
//     exposed through `runtime_stats` so benches can report hit rates.
//
// The pool can be disabled (pass-through to the system allocator) with the
// environment variable `FZMOD_POOL=0` or at runtime via `set_enabled` —
// the A/B knob bench_serving_alloc uses. Blocks are *always* sized to
// their bin, even while disabled, so toggling mid-run can never cache a
// block smaller than its bin claims.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <mutex>
#include <new>
#include <vector>

#include "fzmod/common/types.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod::device {

/// Plain-value copy of pool_stats, taken atomically with respect to every
/// multi-field update (under the pool mutex): a reader can never observe
/// e.g. hits incremented but bytes_served not yet — the torn-pair hazard
/// the trace counter sampler would otherwise hit.
struct pool_stats_snapshot {
  u64 hits = 0;
  u64 misses = 0;
  u64 bytes_served = 0;
  u64 bytes_cached = 0;
  u64 trims = 0;
  u64 bytes_trimmed = 0;

  [[nodiscard]] f64 hit_rate() const {
    return hits + misses
               ? static_cast<f64>(hits) / static_cast<f64>(hits + misses)
               : 0.0;
  }
};

/// Cumulative counters for one memory pool. Monotonic except bytes_cached
/// (the current cache footprint). Individual fields stay readable as
/// atomics, but a *consistent* multi-field read must go through
/// memory_pool::snapshot() — every mutation happens under the pool mutex,
/// so the snapshot is torn-free.
struct pool_stats {
  std::atomic<u64> hits{0};          // allocations served from the cache
  std::atomic<u64> misses{0};        // allocations that hit the system
  std::atomic<u64> bytes_served{0};  // total bytes handed out (hits+misses)
  std::atomic<u64> bytes_cached{0};  // bytes currently held in free lists
  std::atomic<u64> trims{0};         // trim() calls
  std::atomic<u64> bytes_trimmed{0};  // total bytes returned by trim()

  [[nodiscard]] f64 hit_rate() const {
    const u64 h = hits.load(), m = misses.load();
    return h + m ? static_cast<f64>(h) / static_cast<f64>(h + m) : 0.0;
  }

  void reset_counters() {
    hits = 0;
    misses = 0;
    bytes_served = 0;
    trims = 0;
    bytes_trimmed = 0;
    // bytes_cached is live state, not a counter; it survives resets.
  }
};

class memory_pool {
 public:
  static constexpr std::size_t alignment = 64;
  /// Smallest bin: one cache line. Largest cached bin: 1 GiB — anything
  /// bigger passes straight through (caching multi-GiB one-offs would pin
  /// memory for little reuse benefit).
  static constexpr std::size_t min_bin_bytes = 64;
  static constexpr std::size_t max_bin_bytes = std::size_t{1} << 30;

  memory_pool(pool_stats& stats, bool enabled)
      : stats_(stats), enabled_(enabled) {}

  memory_pool(const memory_pool&) = delete;
  memory_pool& operator=(const memory_pool&) = delete;

  ~memory_pool() { trim(); }

  /// Requests round up to the bin size (callers still account their exact
  /// request; the rounding is pool-internal capacity).
  [[nodiscard]] static std::size_t bin_bytes(std::size_t bytes) {
    if (bytes <= min_bin_bytes) return min_bin_bytes;
    return std::bit_ceil(bytes);
  }

  [[nodiscard]] void* allocate(std::size_t bytes) {
    const std::size_t rounded = bin_bytes(bytes);
    if (enabled_.load(std::memory_order_relaxed) &&
        rounded <= max_bin_bytes) {
      const int b = bin_index(rounded);
      void* p = nullptr;
      {
        std::lock_guard lk(mu_);
        auto& list = bins_[b];
        if (!list.empty()) {
          p = list.back();
          list.pop_back();
          stats_.hits.fetch_add(1, std::memory_order_relaxed);
          stats_.bytes_served.fetch_add(rounded, std::memory_order_relaxed);
          stats_.bytes_cached.fetch_sub(rounded, std::memory_order_relaxed);
        }
      }
      if (p) {
        // Traced outside the critical section: the recorder takes its own
        // per-thread lock and must not nest inside the pool mutex.
        trace::instant("pool", "hit", 0, static_cast<f64>(rounded));
        return p;
      }
    }
    // Every path that reaches the system allocator counts as a miss — a
    // disabled pool misses everything — so `misses` always equals the
    // runtime allocator's system-allocation count, which is what the
    // serving bench reports for pool-on vs pool-off. The paired update
    // takes the mutex so snapshot() never sees a mid-update state; the
    // cost is noise next to the ::operator new this path is about to pay.
    {
      std::lock_guard lk(mu_);
      stats_.misses.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_served.fetch_add(rounded, std::memory_order_relaxed);
    }
    trace::instant("pool", "miss", 0, static_cast<f64>(rounded));
    // Bin-sized even on the pass-through path so a later pooled free can
    // trust the bin capacity regardless of when the pool was toggled.
    return ::operator new(rounded, std::align_val_t{alignment});
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    if (!p) return;
    const std::size_t rounded = bin_bytes(bytes);
    if (enabled_.load(std::memory_order_relaxed) &&
        rounded <= max_bin_bytes) {
      const int b = bin_index(rounded);
      std::lock_guard lk(mu_);
      bins_[b].push_back(p);
      stats_.bytes_cached.fetch_add(rounded, std::memory_order_relaxed);
      return;
    }
    ::operator delete(p, std::align_val_t{alignment});
  }

  /// Release every cached block to the system allocator; returns the byte
  /// count released. The malloc_trim / cudaMemPoolTrimTo(0) analogue.
  u64 trim() {
    std::vector<void*> victims;
    u64 released = 0;
    {
      std::lock_guard lk(mu_);
      for (int b = 0; b < n_bins; ++b) {
        const std::size_t sz = std::size_t{1} << b;
        released += static_cast<u64>(sz) * bins_[b].size();
        victims.insert(victims.end(), bins_[b].begin(), bins_[b].end());
        bins_[b].clear();
      }
      // Counter updates stay inside the critical section so snapshot()
      // sees the cache emptied and the trim tallied as one transition.
      stats_.bytes_cached.fetch_sub(released, std::memory_order_relaxed);
      stats_.trims.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_trimmed.fetch_add(released, std::memory_order_relaxed);
    }
    for (void* p : victims) {
      ::operator delete(p, std::align_val_t{alignment});
    }
    return released;
  }

  /// Consistent copy of this pool's counters (see pool_stats_snapshot).
  [[nodiscard]] pool_stats_snapshot snapshot() {
    std::lock_guard lk(mu_);
    pool_stats_snapshot s;
    s.hits = stats_.hits.load(std::memory_order_relaxed);
    s.misses = stats_.misses.load(std::memory_order_relaxed);
    s.bytes_served = stats_.bytes_served.load(std::memory_order_relaxed);
    s.bytes_cached = stats_.bytes_cached.load(std::memory_order_relaxed);
    s.trims = stats_.trims.load(std::memory_order_relaxed);
    s.bytes_trimmed = stats_.bytes_trimmed.load(std::memory_order_relaxed);
    return s;
  }

  /// Alias matching the mallopt-style naming used in the docs.
  u64 release_cached() { return trim(); }

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Runtime A/B switch (benches compare pool on/off in one process).
  /// Disabling trims so a "pool off" measurement starts cold.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
    if (!on) trim();
  }

 private:
  // Bin b holds blocks of exactly 2^b bytes; 2^30 is the largest cached.
  static constexpr int n_bins = 31;

  [[nodiscard]] static int bin_index(std::size_t rounded) {
    return std::bit_width(rounded) - 1;
  }

  pool_stats& stats_;
  std::atomic<bool> enabled_;
  std::mutex mu_;
  std::vector<void*> bins_[n_bins];
};

}  // namespace fzmod::device
