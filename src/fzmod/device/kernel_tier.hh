// FZModules — the kernel tier policy: portable vs. vectorized variants.
//
// The hottest kernels (Lorenzo predict/quantize, histogram, outlier
// compaction) ship in two tiers:
//
//  - `portable`: the original grid-stride bodies — straightforward loops
//    with per-element branches, correct everywhere, the reference tier;
//  - `vector`: explicitly vectorization-friendly rewrites — branch-free
//    gather-free inner loops, conflict-free sub-histogram privatization,
//    row-structured boundary handling — the shapes a SIMD unit (or a GPU
//    warp without divergence) executes at full width.
//
// Both tiers produce identical results; dispatch picks one per launch.
// The policy comes from `FZMOD_KERNEL_TIER` (auto|portable|vector),
// overridable per pipeline (`core::pipeline_config::kernel_tier`) and at
// runtime (`set_kernel_tier_policy`). `auto` resolves once per process
// via a tiny measured probe: both histogram inner loops run on a
// synthetic input and the faster tier wins — the CPU-substrate analogue
// of a CUDA occupancy/architecture probe at first dispatch.
//
// Every dispatch records which tier ran (cumulative totals +
// `kernel_tier.*` trace counters; see docs/OBSERVABILITY.md).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "fzmod/common/error.hh"
#include "fzmod/common/types.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod::device {

/// A concrete tier a launch runs in.
enum class kernel_tier : u8 { portable = 0, vector = 1 };

/// What the user asked for; `auto_probe` defers to the one-time probe.
enum class kernel_tier_policy : u8 { auto_probe = 0, portable = 1, vector = 2 };

[[nodiscard]] inline const char* to_string(kernel_tier t) {
  return t == kernel_tier::vector ? "vector" : "portable";
}

[[nodiscard]] inline const char* to_string(kernel_tier_policy p) {
  switch (p) {
    case kernel_tier_policy::portable: return "portable";
    case kernel_tier_policy::vector: return "vector";
    case kernel_tier_policy::auto_probe: break;
  }
  return "auto";
}

/// Parse a policy name (the FZMOD_KERNEL_TIER / --kernel-tier values).
/// Throws on unknown names so typos fail loudly instead of silently
/// running the wrong tier.
[[nodiscard]] inline kernel_tier_policy parse_kernel_tier_policy(
    std::string_view v) {
  if (v == "auto" || v.empty()) return kernel_tier_policy::auto_probe;
  if (v == "portable") return kernel_tier_policy::portable;
  if (v == "vector") return kernel_tier_policy::vector;
  throw error(status::invalid_argument,
              "kernel tier must be auto|portable|vector, got '" +
                  std::string(v) + "'");
}

namespace detail {

/// One-time measured probe: run both histogram inner-loop shapes over a
/// deterministic synthetic symbol stream and return the faster tier.
/// Single-threaded and tiny (~256 KiB touched) so first dispatch pays
/// well under a millisecond.
[[nodiscard]] inline kernel_tier probe_kernel_tier() {
  constexpr std::size_t n = 1u << 16;
  constexpr std::size_t nbins = 1024;
  std::array<u16, n>& codes = *new std::array<u16, n>;
  u64 lcg = 0x9e3779b97f4a7c15ULL;
  for (auto& c : codes) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    c = static_cast<u16>((lcg >> 33) & (nbins - 1));
  }
  std::vector<u32> bins(nbins * 4, 0);
  const auto time_reps = [&](auto&& body) {
    // Best of 3: the probe must not be fooled by one cold-cache rep.
    u64 best = ~u64{0};
    for (int rep = 0; rep < 3; ++rep) {
      std::memset(bins.data(), 0, bins.size() * sizeof(u32));
      const auto t0 = std::chrono::steady_clock::now();
      body();
      const auto t1 = std::chrono::steady_clock::now();
      best = std::min<u64>(
          best, static_cast<u64>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t1 - t0)
                        .count()));
    }
    return best;
  };
  volatile u32 sink = 0;
  const u64 t_portable = time_reps([&] {
    for (std::size_t i = 0; i < n; ++i) bins[codes[i]]++;
    sink = bins[0];
  });
  const u64 t_vector = time_reps([&] {
    // 4-way sub-histograms: breaks the same-bin store-to-load dependency
    // chain that serializes the scalar loop on concentrated inputs.
    u32* b = bins.data();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      b[0 * nbins + codes[i + 0]]++;
      b[1 * nbins + codes[i + 1]]++;
      b[2 * nbins + codes[i + 2]]++;
      b[3 * nbins + codes[i + 3]]++;
    }
    for (; i < n; ++i) b[codes[i]]++;
    sink = b[0];
  });
  (void)sink;
  delete &codes;
  return t_vector <= t_portable ? kernel_tier::vector
                                : kernel_tier::portable;
}

inline std::atomic<u8>& policy_slot() {
  static std::atomic<u8> slot{[] {
    const char* v = std::getenv("FZMOD_KERNEL_TIER");
    return static_cast<u8>(v ? parse_kernel_tier_policy(v)
                             : kernel_tier_policy::auto_probe);
  }()};
  return slot;
}

}  // namespace detail

/// Process-wide policy switch (benches/tests/CLI flip it at runtime; the
/// startup default honours FZMOD_KERNEL_TIER).
inline void set_kernel_tier_policy(kernel_tier_policy p) {
  detail::policy_slot().store(static_cast<u8>(p),
                              std::memory_order_relaxed);
}

[[nodiscard]] inline kernel_tier_policy current_kernel_tier_policy() {
  return static_cast<kernel_tier_policy>(
      detail::policy_slot().load(std::memory_order_relaxed));
}

/// Resolve a policy to a concrete tier. `auto_probe` runs the measured
/// probe exactly once per process and caches the verdict.
[[nodiscard]] inline kernel_tier resolve_kernel_tier(kernel_tier_policy p) {
  switch (p) {
    case kernel_tier_policy::portable: return kernel_tier::portable;
    case kernel_tier_policy::vector: return kernel_tier::vector;
    case kernel_tier_policy::auto_probe: break;
  }
  static const kernel_tier probed = detail::probe_kernel_tier();
  return probed;
}

/// The tier dispatch uses when no per-pipeline override applies.
[[nodiscard]] inline kernel_tier active_kernel_tier() {
  return resolve_kernel_tier(current_kernel_tier_policy());
}

/// Resolve a per-pipeline policy (core::pipeline_config::kernel_tier):
/// explicit tiers win; `auto_probe` defers to the process-wide policy
/// (FZMOD_KERNEL_TIER / set_kernel_tier_policy / the probe).
[[nodiscard]] inline kernel_tier effective_kernel_tier(kernel_tier_policy p) {
  if (p == kernel_tier_policy::auto_probe) return active_kernel_tier();
  return resolve_kernel_tier(p);
}

/// Cumulative per-tier launch totals (tests and the trace sampler read
/// these; dispatch sites bump them via note_kernel_tier_launch).
struct kernel_tier_totals {
  u64 portable = 0;
  u64 vector = 0;
};

namespace detail {
inline std::atomic<u64>& tier_counter(kernel_tier t) {
  static std::atomic<u64> counts[2]{};
  return counts[t == kernel_tier::vector ? 1 : 0];
}
}  // namespace detail

/// Record that a tiered kernel dispatched as `t`: bumps the cumulative
/// total and, while tracing, emits a `kernel_tier.<name>` counter sample.
inline void note_kernel_tier_launch(kernel_tier t) {
  const u64 total =
      detail::tier_counter(t).fetch_add(1, std::memory_order_relaxed) + 1;
  if (trace::enabled()) {
    trace::counter(t == kernel_tier::vector ? "kernel_tier.vector"
                                            : "kernel_tier.portable",
                   static_cast<f64>(total));
  }
}

[[nodiscard]] inline kernel_tier_totals kernel_tier_launch_totals() {
  return {detail::tier_counter(kernel_tier::portable)
              .load(std::memory_order_relaxed),
          detail::tier_counter(kernel_tier::vector)
              .load(std::memory_order_relaxed)};
}

}  // namespace fzmod::device
