// FZModules — worker pool backing the software device runtime.
//
// The pool plays the role of the GPU's SM array in this reproduction: kernel
// launches are decomposed into block-sized chunks and executed by pool
// workers. It is deliberately small and boring — fixed worker count, one
// shared FIFO, condition-variable wakeup — because the interesting
// scheduling lives a layer up (streams order work; the STF layer builds
// DAGs).
//
// The job queue and completion signalling are allocation-free in steady
// state: jobs are `unique_task`s (small-buffer optimized, move-only) held
// in a capacity-retaining ring, and `parallel_for` recycles its completion
// blocks through a free list instead of make_shared-ing one per call.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "fzmod/common/types.hh"
#include "fzmod/device/task.hh"

namespace fzmod::device {

class thread_pool {
 public:
  /// `workers == 0` picks a default: hardware_concurrency, but at least 4
  /// so concurrency paths (streams, STF overlap) are exercised even on the
  /// single-core CI machines this reproduction targets.
  explicit thread_pool(unsigned workers = 0) {
    if (workers == 0) {
      workers = std::thread::hardware_concurrency();
      if (workers < 4) workers = 4;
    }
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  ~thread_pool() {
    {
      std::lock_guard lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
    pf_state* st = pf_free_;
    while (st) {
      pf_state* next = st->free_next;
      delete st;
      st = next;
    }
  }

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a job. The returned future completes when the job finishes;
  /// exceptions propagate through it. (The promise's shared state is the
  /// one allocation — submit() is the cold, observable path; the hot paths
  /// use submit_detached.)
  template <class F>
  std::future<void> submit(F&& fn) {
    std::promise<void> pr;
    std::future<void> fut = pr.get_future();
    submit_detached(
        [pr = std::move(pr), fn = std::forward<F>(fn)]() mutable {
          try {
            fn();
            pr.set_value();
          } catch (...) {
            pr.set_exception(std::current_exception());
          }
        });
    return fut;
  }

  /// Fire-and-forget variant for internal continuations that manage their
  /// own completion signalling (stream ops, STF tasks). Move-only
  /// closures are fine; small ones stay inline in the ring.
  template <class F>
  void submit_detached(F&& fn) {
    {
      std::lock_guard lk(mu_);
      queue_.push(unique_task(std::forward<F>(fn)));
    }
    cv_.notify_one();
  }

  /// Blocking parallel-for: split [0, n) into ~grain-sized chunks, run them
  /// on the pool, and also help from the calling thread (so nested use from
  /// a pool worker cannot deadlock on a saturated queue).
  template <class F>
  void parallel_for(std::size_t n, std::size_t grain, F&& body) {
    if (n == 0) return;
    const std::size_t nchunks =
        grain == 0 ? 1 : (n + grain - 1) / grain;
    if (nchunks <= 1) {
      body(std::size_t{0}, n);
      return;
    }
    const unsigned helpers =
        static_cast<unsigned>(std::min<std::size_t>(size(), nchunks - 1));
    // The completion block outlives this frame (detached helpers can wake
    // after all chunks are claimed and must still find valid counters), so
    // it cannot live on the stack — but it need not be a fresh heap
    // object either: blocks are refcounted and recycled through pf_free_.
    pf_state* st = pf_acquire(static_cast<int>(helpers) + 1);
    auto run_chunks = [st, nchunks, grain, n, &body] {
      for (;;) {
        const std::size_t c =
            st->next.fetch_add(1, std::memory_order_relaxed);
        if (c >= nchunks) break;
        const std::size_t lo = c * grain;
        const std::size_t hi = std::min(n, lo + grain);
        // A throwing chunk must still count as done, or the caller waits
        // forever; the first error is rethrown on the caller's thread.
        try {
          body(lo, hi);
        } catch (...) {
          std::lock_guard lk(st->mu);
          if (!st->error) st->error = std::current_exception();
        }
        if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            nchunks) {
          std::lock_guard lk(st->mu);
          st->cv.notify_all();
        }
      }
    };
    // Helpers must not touch `body` after completion is signalled: the
    // caller's frame (and body) may be gone. They claim chunks first and
    // only run body for claimed chunks, which is safe because completion
    // is only reached when every chunk has finished. Each helper holds a
    // reference on the block, so recycling waits for the last straggler.
    for (unsigned i = 0; i < helpers; ++i) {
      submit_detached([this, st, run_chunks] {
        run_chunks();
        pf_release(st);
      });
    }
    run_chunks();
    {
      std::unique_lock lk(st->mu);
      st->cv.wait(lk, [&] {
        return st->done.load(std::memory_order_acquire) == nchunks;
      });
    }
    std::exception_ptr err = st->error;
    pf_release(st);
    if (err) std::rethrow_exception(err);
  }

 private:
  /// Completion block for one parallel_for. Pooled: acquire resets the
  /// counters, release returns the block to the free list once the caller
  /// and every helper have dropped their reference.
  struct pf_state {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // first chunk failure, guarded by mu
    std::atomic<int> refs{0};
    pf_state* free_next = nullptr;
  };

  [[nodiscard]] pf_state* pf_acquire(int refs) {
    pf_state* st = nullptr;
    {
      std::lock_guard lk(pf_mu_);
      if (pf_free_) {
        st = pf_free_;
        pf_free_ = st->free_next;
      }
    }
    if (!st) st = new pf_state;
    st->next.store(0, std::memory_order_relaxed);
    st->done.store(0, std::memory_order_relaxed);
    st->error = nullptr;
    st->refs.store(refs, std::memory_order_relaxed);
    st->free_next = nullptr;
    return st;
  }

  void pf_release(pf_state* st) {
    if (st->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lk(pf_mu_);
      st->free_next = pf_free_;
      pf_free_ = st;
    }
  }

  void worker_loop() {
    for (;;) {
      unique_task job;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        job = queue_.pop();
      }
      // Detached jobs are expected to contain their own errors (streams,
      // STF tasks, parallel_for chunks all do); anything that escapes
      // would terminate the process, so trap it as a last resort.
      try {
        job();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fzmod: uncaught error in pool worker: %s\n",
                     e.what());
      } catch (...) {
        std::fprintf(stderr, "fzmod: uncaught error in pool worker\n");
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  task_ring queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;

  std::mutex pf_mu_;
  pf_state* pf_free_ = nullptr;
};

}  // namespace fzmod::device
