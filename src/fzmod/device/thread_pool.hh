// FZModules — worker pool backing the software device runtime.
//
// The pool plays the role of the GPU's SM array in this reproduction: kernel
// launches are decomposed into block-sized chunks and executed by pool
// workers. It is deliberately small and boring — fixed worker count, one
// shared FIFO, condition-variable wakeup — because the interesting
// scheduling lives a layer up (streams order work; the STF layer builds
// DAGs).
#pragma once

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "fzmod/common/types.hh"

namespace fzmod::device {

class thread_pool {
 public:
  /// `workers == 0` picks a default: hardware_concurrency, but at least 4
  /// so concurrency paths (streams, STF overlap) are exercised even on the
  /// single-core CI machines this reproduction targets.
  explicit thread_pool(unsigned workers = 0) {
    if (workers == 0) {
      workers = std::thread::hardware_concurrency();
      if (workers < 4) workers = 4;
    }
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  ~thread_pool() {
    {
      std::lock_guard lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a job. The returned future completes when the job finishes;
  /// exceptions propagate through it.
  template <class F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lk(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Fire-and-forget variant for internal continuations that manage their
  /// own completion signalling (stream ops, STF tasks).
  void submit_detached(std::function<void()> fn) {
    {
      std::lock_guard lk(mu_);
      queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
  }

  /// Blocking parallel-for: split [0, n) into ~grain-sized chunks, run them
  /// on the pool, and also help from the calling thread (so nested use from
  /// a pool worker cannot deadlock on a saturated queue).
  template <class F>
  void parallel_for(std::size_t n, std::size_t grain, F&& body) {
    if (n == 0) return;
    const std::size_t nchunks =
        grain == 0 ? 1 : (n + grain - 1) / grain;
    if (nchunks <= 1) {
      body(std::size_t{0}, n);
      return;
    }
    // Shared state lives on the heap: detached helpers can wake after this
    // frame has returned (all chunks already claimed) and must still find
    // valid counters.
    struct shared_state {
      std::atomic<std::size_t> next{0};
      std::atomic<std::size_t> done{0};
      std::mutex mu;
      std::condition_variable cv;
      std::exception_ptr error;  // first chunk failure, guarded by mu
    };
    auto st = std::make_shared<shared_state>();
    auto run_chunks = [st, nchunks, grain, n, &body] {
      for (;;) {
        const std::size_t c =
            st->next.fetch_add(1, std::memory_order_relaxed);
        if (c >= nchunks) break;
        const std::size_t lo = c * grain;
        const std::size_t hi = std::min(n, lo + grain);
        // A throwing chunk must still count as done, or the caller waits
        // forever; the first error is rethrown on the caller's thread.
        try {
          body(lo, hi);
        } catch (...) {
          std::lock_guard lk(st->mu);
          if (!st->error) st->error = std::current_exception();
        }
        if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            nchunks) {
          std::lock_guard lk(st->mu);
          st->cv.notify_all();
        }
      }
    };
    // Helpers must not touch `body` after completion is signalled: the
    // caller's frame (and body) may be gone. They claim chunks first and
    // only run body for claimed chunks, which is safe because completion
    // is only reached when every chunk has finished.
    const unsigned helpers =
        static_cast<unsigned>(std::min<std::size_t>(size(), nchunks - 1));
    for (unsigned i = 0; i < helpers; ++i) submit_detached(run_chunks);
    run_chunks();
    std::unique_lock lk(st->mu);
    st->cv.wait(lk, [&] {
      return st->done.load(std::memory_order_acquire) == nchunks;
    });
    if (st->error) std::rethrow_exception(st->error);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      // Detached jobs are expected to contain their own errors (streams,
      // STF tasks, parallel_for chunks all do); anything that escapes
      // would terminate the process, so trap it as a last resort.
      try {
        job();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "fzmod: uncaught error in pool worker: %s\n",
                     e.what());
      } catch (...) {
        std::fprintf(stderr, "fzmod: uncaught error in pool worker\n");
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace fzmod::device
