#include "fzmod/predictors/delta.hh"

#include <cmath>
#include <memory>
#include <mutex>
#include <vector>

#include "fzmod/common/error.hh"

namespace fzmod::predictors {

template <class T>
void delta_compress_async(const device::buffer<T>& data, dims3 dims,
                          f64 ebx2, int radius, quant_field& out,
                          device::stream& s) {
  const std::size_t n = dims.len();
  const u64 stride = delta_frame_stride(dims);
  out.dims = dims;
  out.radius = radius;
  out.ebx2 = ebx2;
  out.value_outliers.clear();
  out.codes.ensure(n, device::space::device);
  out.lattice_scratch.ensure(n, device::space::device);

  // Pass 1: pre-quantize into the retained integer lattice. Values beyond
  // the safe lattice become exact value outliers (the built-in contract),
  // with q = 0 at their sites so both sides predict from the same lattice.
  auto side = std::make_shared<std::mutex>();
  {
    const T* in = data.data();
    i32* qp = out.lattice_scratch.data();
    auto* vo = &out.value_outliers;
    const f64 r_ebx2 = 1.0 / ebx2;
    device::launch_blocks(
        s, n, device::runtime::instance().default_block(),
        [in, qp, vo, side, r_ebx2](std::size_t, std::size_t lo,
                                   std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const f64 scaled = static_cast<f64>(in[i]) * r_ebx2;
            if (!(std::fabs(scaled) <
                  static_cast<f64>(value_outlier_limit))) {
              std::lock_guard lk(*side);
              vo->emplace_back(i, static_cast<f64>(in[i]));
              qp[i] = 0;
            } else {
              qp[i] = static_cast<i32>(std::llrint(scaled));
            }
          }
        });
  }

  // Pass 2: frame-to-frame delta, embarrassingly parallel (every
  // prediction reads the already-final lattice, not reconstructed codes).
  auto outliers = std::make_shared<std::vector<kernels::outlier>>();
  {
    const i32* qp = out.lattice_scratch.data();
    u16* codes = out.codes.data();
    device::launch_blocks(
        s, n, device::runtime::instance().default_block(),
        [qp, codes, radius, stride, outliers, side](std::size_t,
                                                    std::size_t lo,
                                                    std::size_t hi) {
          std::vector<kernels::outlier> local;
          for (std::size_t i = lo; i < hi; ++i) {
            const i64 pred = i >= stride ? qp[i - stride]
                             : i >= 1    ? qp[i - 1]
                                         : 0;
            const i64 delta = static_cast<i64>(qp[i]) - pred;
            const i64 code = delta + radius;
            if (code > 0 && code < 2 * static_cast<i64>(radius)) {
              codes[i] = static_cast<u16>(code);
            } else {
              codes[i] = 0;
              local.push_back({i, delta});
            }
          }
          if (!local.empty()) {
            std::lock_guard lk(*side);
            outliers->insert(outliers->end(), local.begin(), local.end());
          }
        });
  }
  device::host_task(s, [outliers, &out] {
    out.n_outliers = outliers->size();
    out.outliers.ensure(outliers->size(), device::space::device);
    std::copy(outliers->begin(), outliers->end(), out.outliers.data());
  });
}

template <class T>
void delta_decompress_async(const quant_field& field, device::buffer<T>& out,
                            device::stream& s) {
  const std::size_t n = field.dims.len();
  const u64 stride = delta_frame_stride(field.dims);
  const u16* codes = field.codes.data();
  const auto* ol = field.outliers.data();
  const u64 n_ol = field.n_outliers;
  const int radius = field.radius;
  const f64 ebx2 = field.ebx2;
  T* op = out.data();
  const auto* vo = &field.value_outliers;
  device::host_task(s, [=] {
    std::vector<i64> q(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (codes[i]) q[i] = static_cast<i64>(codes[i]) - radius;
    }
    for (u64 k = 0; k < n_ol; ++k) {
      FZMOD_REQUIRE(ol[k].index < n, status::corrupt_archive,
                    "delta: outlier index out of range");
      q[ol[k].index] = ol[k].value;
    }
    // In index order every predecessor (i - stride, or i - 1 inside the
    // first frame) is already reconstructed — one sequential sweep.
    for (std::size_t i = 0; i < n; ++i) {
      const i64 pred = i >= stride ? q[i - stride] : i >= 1 ? q[i - 1] : 0;
      q[i] += pred;
      op[i] = static_cast<T>(static_cast<f64>(q[i]) * ebx2);
    }
    for (const auto& [idx, val] : *vo) {
      FZMOD_REQUIRE(idx < n, status::corrupt_archive,
                    "delta: value outlier index out of range");
      op[idx] = static_cast<T>(val);
    }
  });
}

template void delta_compress_async<f32>(const device::buffer<f32>&, dims3,
                                        f64, int, quant_field&,
                                        device::stream&);
template void delta_compress_async<f64>(const device::buffer<f64>&, dims3,
                                        f64, int, quant_field&,
                                        device::stream&);
template void delta_decompress_async<f32>(const quant_field&,
                                          device::buffer<f32>&,
                                          device::stream&);
template void delta_decompress_async<f64>(const quant_field&,
                                          device::buffer<f64>&,
                                          device::stream&);

}  // namespace fzmod::predictors
