#include "fzmod/predictors/interp.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace fzmod::predictors {
namespace {

/// Count of lattice points {0, m, 2m, ...} inside [0, ext).
[[nodiscard]] std::size_t lattice_count(std::size_t ext, std::size_t m) {
  return (ext - 1) / m + 1;
}

/// Count of odd multiples of h ({h, 3h, 5h, ...}) inside [0, ext).
[[nodiscard]] std::size_t odd_count(std::size_t ext, std::size_t h) {
  return ext > h ? (ext - h - 1) / (2 * h) + 1 : 0;
}

/// Cubic (fallback linear / nearest) interpolation along one axis of the
/// evolving reconstruction. `c` is the target coordinate, `h` the current
/// half-spacing, `stride` the element stride of the axis, `ext` its extent.
/// Neighbours at c±h and c±3h are even multiples of h, hence already
/// reconstructed; c-h >= 0 always holds because targets start at h.
[[nodiscard]] f64 interp_1d(const f64* rec, std::size_t base_idx,
                            std::size_t c, std::size_t h, std::size_t stride,
                            std::size_t ext) {
  const f64 a = rec[base_idx - h * stride];
  if (c + h >= ext) return a;
  const f64 b = rec[base_idx + h * stride];
  if (c >= 3 * h && c + 3 * h < ext) {
    const f64 a2 = rec[base_idx - 3 * h * stride];
    const f64 b2 = rec[base_idx + 3 * h * stride];
    return (-a2 + 9.0 * a + 9.0 * b - b2) * (1.0 / 16.0);
  }
  return 0.5 * (a + b);
}

/// Walk every (level, dimension) sub-step coarse-to-fine, invoking
/// `visit(linear_index, prediction)` for each target point exactly once.
/// Both compression and decompression run this identical traversal, so a
/// prediction mismatch between the two sides is structurally impossible.
///
/// `visit` is called concurrently from pool workers; it must write
/// rec[idx] before returning and synchronize any side channels itself.
template <class Visit>
void traverse(dims3 d, const f64* rec, Visit&& visit) {
  auto& rt = device::runtime::instance();
  const std::size_t ext[3] = {d.x, d.y, d.z};
  const std::size_t stride[3] = {1, d.x, d.x * d.y};
  const int rank = d.rank();

  int top_level = 0;
  while ((std::size_t{1} << (top_level + 1)) <= interp_anchor_stride) {
    ++top_level;
  }

  for (int l = top_level; l >= 1; --l) {
    const std::size_t s = std::size_t{1} << l;
    const std::size_t h = s >> 1;
    // Sub-step order: slowest dimension first (z, y, x), matching cuSZ-i.
    for (int di = rank - 1; di >= 0; --di) {
      // Lattice spacing per axis for this sub-step: the refined axis takes
      // odd multiples of h; axes already processed this level sit on the h
      // lattice; axes still pending sit on the s lattice.
      std::size_t count[3] = {1, 1, 1};
      std::size_t spacing[3] = {0, 0, 0};
      for (int dj = 0; dj < 3; ++dj) {
        if (dj == di) {
          spacing[dj] = 2 * h;  // offset h applied below
          count[dj] = odd_count(ext[dj], h);
        } else if (dj > di) {
          spacing[dj] = h;
          count[dj] = lattice_count(ext[dj], h);
        } else {
          spacing[dj] = s;
          count[dj] = lattice_count(ext[dj], s);
        }
      }
      const std::size_t total = count[0] * count[1] * count[2];
      if (total == 0) continue;
      rt.stats().kernels_launched += 1;
      rt.pool().parallel_for(
          total, 1u << 12, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t t = lo; t < hi; ++t) {
              const std::size_t t0 = t % count[0];
              const std::size_t t1 = (t / count[0]) % count[1];
              const std::size_t t2 = t / (count[0] * count[1]);
              std::size_t coord[3] = {t0 * spacing[0], t1 * spacing[1],
                                      t2 * spacing[2]};
              coord[di] += h;
              const std::size_t idx = coord[0] * stride[0] +
                                      coord[1] * stride[1] +
                                      coord[2] * stride[2];
              const f64 pred = interp_1d(rec, idx, coord[di], h,
                                         stride[di], ext[di]);
              visit(idx, pred);
            }
          });
    }
  }
}

/// Enumerate anchor-lattice points (all coords multiples of the stride) in
/// row-major anchor order; returns linear field indices.
void for_each_anchor(dims3 d, std::size_t stride,
                     const std::function<void(std::size_t)>& fn) {
  for (std::size_t z = 0; z < d.z; z += stride) {
    for (std::size_t y = 0; y < d.y; y += stride) {
      for (std::size_t x = 0; x < d.x; x += stride) {
        fn(d.at(x, y, z));
      }
    }
  }
}

}  // namespace

template <class T>
void interp_compress_async(const device::buffer<T>& data, dims3 dims,
                           f64 ebx2, int radius, quant_field& out,
                           interp_anchors& anchors, device::stream& s) {
  data.assert_space(device::space::device);
  FZMOD_REQUIRE(data.size() == dims.len(), status::invalid_argument,
                "interp: data size does not match dims");
  FZMOD_REQUIRE(ebx2 > 0, status::invalid_argument,
                "interp: error bound must be positive");

  const std::size_t n = dims.len();
  out.dims = dims;
  out.radius = radius;
  out.ebx2 = ebx2;
  out.codes.ensure(n, device::space::device);
  out.value_outliers.clear();
  anchors.stride = interp_anchor_stride;
  anchors.lattice.clear();

  const T* in = data.data();
  u16* codes = out.codes.data();

  device::host_task(s, [in, codes, dims, ebx2, radius, n, &out, &anchors] {
    const f64 r_ebx2 = 1.0 / ebx2;
    std::vector<f64> rec(n, 0.0);
    std::memset(codes, 0, n * sizeof(u16));

    // Anchors: snap to the quantization lattice (error <= eb) and record.
    for_each_anchor(dims, anchors.stride, [&](std::size_t idx) {
      const f64 x = static_cast<f64>(in[idx]);
      const f64 scaled = x * r_ebx2;
      if (!(std::fabs(scaled) < static_cast<f64>(value_outlier_limit))) {
        out.value_outliers.emplace_back(idx, x);
        rec[idx] = x;
        anchors.lattice.push_back(0);
      } else {
        const i64 q = std::llrint(scaled);
        rec[idx] = static_cast<f64>(q) * ebx2;
        anchors.lattice.push_back(static_cast<i32>(q));
      }
    });

    // Predicted points: quantize the prediction error, reconstruct
    // immediately so finer levels predict from bounded values.
    std::mutex side_mu;
    std::vector<kernels::outlier> outliers;
    traverse(dims, rec.data(), [&](std::size_t idx, f64 pred) {
      const f64 x = static_cast<f64>(in[idx]);
      const f64 scaled = x * r_ebx2;
      if (!(std::fabs(scaled) < static_cast<f64>(value_outlier_limit))) {
        // Magnitude beyond the safe lattice: keep raw (exact), sentinel 0.
        std::lock_guard lk(side_mu);
        out.value_outliers.emplace_back(idx, x);
        rec[idx] = x;
        return;
      }
      const i64 c = std::llrint((x - pred) * r_ebx2);
      if (c > -radius && c < radius) {
        codes[idx] = static_cast<u16>(c + radius);
        rec[idx] = pred + static_cast<f64>(c) * ebx2;
      } else {
        // Prediction failed: fall back to lattice-exact storage.
        const i64 q = std::llrint(scaled);
        rec[idx] = static_cast<f64>(q) * ebx2;
        std::lock_guard lk(side_mu);
        outliers.push_back({static_cast<u64>(idx), q});
      }
    });

    out.n_outliers = outliers.size();
    out.outliers.ensure(outliers.size(), device::space::device);
    std::copy(outliers.begin(), outliers.end(), out.outliers.data());
    device::runtime::instance().stats().h2d_bytes +=
        outliers.size() * sizeof(kernels::outlier);
  });
}

template <class T>
void interp_decompress_async(const quant_field& field,
                             const interp_anchors& anchors,
                             device::buffer<T>& data, device::stream& s) {
  data.assert_space(device::space::device);
  const std::size_t n = field.dims.len();
  FZMOD_REQUIRE(data.size() == n, status::invalid_argument,
                "interp: output size does not match dims");
  FZMOD_REQUIRE(field.ebx2 > 0, status::corrupt_archive,
                "interp: archive has non-positive error bound");

  T* outp = data.data();
  device::host_task(s, [outp, &field, &anchors, n] {
    const f64 ebx2 = field.ebx2;
    const dims3 dims = field.dims;
    const u16* codes = field.codes.data();
    std::vector<f64> rec(n, 0.0);

    // Scatter side channels up front so the traversal can resolve sentinel
    // codes by direct lookup.
    std::vector<i32> fallback(n, 0);
    for (u64 k = 0; k < field.n_outliers; ++k) {
      const auto& o = field.outliers.data()[k];
      FZMOD_REQUIRE(o.index < n, status::corrupt_archive,
                    "interp: outlier index out of range");
      fallback[o.index] = static_cast<i32>(o.value);
    }
    std::unordered_map<u64, f64> raw;
    raw.reserve(field.value_outliers.size());
    for (const auto& [idx, val] : field.value_outliers) {
      FZMOD_REQUIRE(idx < n, status::corrupt_archive,
                    "interp: value outlier index out of range");
      raw.emplace(idx, val);
    }

    // Anchors. A zero stride would pin the lattice walk in place; the
    // drivers validate anchor geometry against the header, this guard is
    // for direct (non-archive) callers.
    FZMOD_REQUIRE(anchors.stride >= 1, status::corrupt_archive,
                  "interp: zero anchor stride");
    std::size_t a = 0;
    for_each_anchor(dims, anchors.stride, [&](std::size_t idx) {
      FZMOD_REQUIRE(a < anchors.lattice.size(), status::corrupt_archive,
                    "interp: anchor payload truncated");
      if (auto it = raw.find(idx); it != raw.end()) {
        rec[idx] = it->second;
      } else {
        rec[idx] = static_cast<f64>(anchors.lattice[a]) * ebx2;
      }
      ++a;
    });

    const int radius = field.radius;
    traverse(dims, rec.data(), [&](std::size_t idx, f64 pred) {
      const u16 c = codes[idx];
      if (c != 0) {
        rec[idx] = pred + static_cast<f64>(static_cast<i32>(c) - radius) *
                              ebx2;
      } else if (auto it = raw.find(idx); it != raw.end()) {
        rec[idx] = it->second;
      } else {
        rec[idx] = static_cast<f64>(fallback[idx]) * ebx2;
      }
    });

    for (std::size_t i = 0; i < n; ++i) outp[i] = static_cast<T>(rec[i]);
  });
}

template void interp_compress_async<f32>(const device::buffer<f32>&, dims3,
                                         f64, int, quant_field&,
                                         interp_anchors&, device::stream&);
template void interp_compress_async<f64>(const device::buffer<f64>&, dims3,
                                         f64, int, quant_field&,
                                         interp_anchors&, device::stream&);
template void interp_decompress_async<f32>(const quant_field&,
                                           const interp_anchors&,
                                           device::buffer<f32>&,
                                           device::stream&);
template void interp_decompress_async<f64>(const quant_field&,
                                           const interp_anchors&,
                                           device::buffer<f64>&,
                                           device::stream&);

}  // namespace fzmod::predictors
