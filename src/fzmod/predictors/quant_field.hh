// FZModules — the intermediate representation every predictor produces and
// every primary lossless codec consumes.
//
// A predictor turns a floating-point field into:
//   - a dense stream of bounded quantization codes (u16, centred on
//     `radius`, with 0 reserved as the outlier sentinel),
//   - a compact list of integer outliers (points whose prediction delta
//     did not fit the code range),
//   - a (practically empty) list of value outliers: points whose magnitude
//     is too large to pre-quantize at all; their raw value is kept exactly
//     so the error bound holds unconditionally.
//
// This is the seam of the framework: any predictor module and any codec
// module that agree on this struct compose into a pipeline.
#pragma once

#include <utility>
#include <vector>

#include "fzmod/common/types.hh"
#include "fzmod/device/runtime.hh"
#include "fzmod/kernels/compact.hh"

namespace fzmod::predictors {

/// Default quantizer radius: codes live in [0, 2*radius), bin 0 is the
/// outlier sentinel. 512 matches cuSZ's default (1024-entry codebooks).
inline constexpr int default_radius = 512;

/// Pre-quantized values are clamped to |q| < value_outlier_limit so that
/// every downstream integer (prediction deltas, partial prefix sums) fits
/// comfortably in i32. Values beyond it are stored raw.
inline constexpr i64 value_outlier_limit = i64{1} << 27;

struct quant_field {
  device::buffer<u16> codes;                 // length dims.len(), device
  device::buffer<kernels::outlier> outliers; // device, first n_outliers used
  u64 n_outliers = 0;
  std::vector<std::pair<u64, f64>> value_outliers;  // host, exact raw values
  dims3 dims;
  int radius = default_radius;
  f64 ebx2 = 0;  // 2 * absolute error bound used at quantization

  // Predictor-internal scratch (the pre-quantized integer lattice). Lives
  // here so a pipeline that reuses its quant_field across calls reaches
  // zero steady-state allocations; callers never read it. Like `codes`,
  // it is only valid once the stream that filled it has been synced.
  device::buffer<i32> lattice_scratch;
};

}  // namespace fzmod::predictors
