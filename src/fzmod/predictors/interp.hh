// FZModules — multi-level interpolation predictor (the G-Interp module of
// cuSZ-i; Liu, Tian et al., SC'24 — itself derived from SZ3's dynamic
// spline interpolation).
//
// The field is reconstructed coarse-to-fine: anchor points on a stride-A
// lattice are stored (quantized to the error-bound lattice, so they also
// honour the bound), then each level halves the spacing, predicting the
// new points by cubic (fallback linear) interpolation along one dimension
// at a time from already-reconstructed values. Prediction errors are
// quantized exactly like Lorenzo deltas, so the same codec modules apply.
//
// Within a level+dimension sub-step every target point depends only on the
// previous sub-step, which is what makes the GPU parallelization of
// cuSZ-i possible — and what our kernel launches exploit.
//
// Compared to Lorenzo this predictor is slower (multiple passes, gather
// patterns) but markedly more accurate, which is exactly the trade
// FZMod-Quality makes (paper §3.3).
#pragma once

#include "fzmod/device/runtime.hh"
#include "fzmod/predictors/quant_field.hh"

namespace fzmod::predictors {

/// Anchor lattice stride (2^6): one raw-lattice anchor per 64^rank points.
inline constexpr std::size_t interp_anchor_stride = 64;

/// Anchor payload produced by the interpolation predictor, carried next to
/// the quant_field through the codec stage (it is tiny and incompressible).
struct interp_anchors {
  std::vector<i32> lattice;  // host; q = round(x / ebx2) per anchor point
  std::size_t stride = interp_anchor_stride;
};

template <class T>
void interp_compress_async(const device::buffer<T>& data, dims3 dims,
                           f64 ebx2, int radius, quant_field& out,
                           interp_anchors& anchors, device::stream& s);

template <class T>
void interp_decompress_async(const quant_field& field,
                             const interp_anchors& anchors,
                             device::buffer<T>& data, device::stream& s);

}  // namespace fzmod::predictors
