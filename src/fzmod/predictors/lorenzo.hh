// FZModules — multidimensional Lorenzo predictor with dual quantization
// (the cuSZ compression kernel; Tian et al., PACT'20).
//
// Dual quantization first snaps every value to the integer lattice
// q = round(x / 2eb), then takes the exact integer Lorenzo finite
// difference of q. Because the difference operates on already-quantized
// integers, compression is embarrassingly parallel (no dependence on
// reconstructed neighbours) and decompression is a chain of inclusive
// prefix sums — one per dimension — which is exactly the operator inverse.
//
// Error bound: |x - q*2eb| <= eb holds per element by construction;
// everything after the pre-quantization is lossless in integer arithmetic.
#pragma once

#include "fzmod/device/kernel_tier.hh"
#include "fzmod/device/runtime.hh"
#include "fzmod/predictors/quant_field.hh"

namespace fzmod::predictors {

/// Compress `data` (device) into a quant_field. `ebx2` is 2x the resolved
/// absolute error bound. Asynchronous: complete after `s.sync()`.
/// `tier` selects the kernel implementation (portable grid-stride loops
/// vs. branch-free vectorized rows); both tiers produce identical codes
/// and the same outlier set.
template <class T>
void lorenzo_compress_async(
    const device::buffer<T>& data, dims3 dims, f64 ebx2, int radius,
    quant_field& out, device::stream& s,
    device::kernel_tier tier = device::active_kernel_tier());

/// Reconstruct into `data` (device, presized to field.dims.len()).
template <class T>
void lorenzo_decompress_async(const quant_field& field,
                              device::buffer<T>& data, device::stream& s);

}  // namespace fzmod::predictors
