// FZModules — time-series delta predictor for append-style simulation
// checkpoints.
//
// A checkpoint stream is a stack of frames of one spatial field; values
// move slowly frame to frame, so the previous frame's value at the same
// site is an excellent predictor. On the pre-quantized lattice:
//
//   pred[i] = q[i - stride]   for i >= stride   (same site, prior frame)
//   pred[i] = q[i - 1]        for 0 < i < stride (first frame: 1-D chain)
//   pred[0] = 0
//
// where stride is the frame size (x*y for rank-3 fields stacked along z,
// x for rank-2, 1 for rank-1 — which degenerates to plain 1-D delta
// coding). Compression is fully parallel (both passes are grid-stride
// launches); reconstruction is a sequential recurrence, the same
// asymmetry the poly2 example documents.
#pragma once

#include "fzmod/device/runtime.hh"
#include "fzmod/predictors/quant_field.hh"

namespace fzmod::predictors {

/// The inter-frame prediction stride for a field shape.
[[nodiscard]] inline u64 delta_frame_stride(dims3 dims) {
  if (dims.z > 1) return dims.x * dims.y;
  if (dims.y > 1) return dims.x;
  return 1;
}

template <class T>
void delta_compress_async(const device::buffer<T>& data, dims3 dims,
                          f64 ebx2, int radius, quant_field& out,
                          device::stream& s);

template <class T>
void delta_decompress_async(const quant_field& field, device::buffer<T>& out,
                            device::stream& s);

}  // namespace fzmod::predictors
