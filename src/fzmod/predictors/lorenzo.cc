#include "fzmod/predictors/lorenzo.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <vector>

#include "fzmod/kernels/scan.hh"

namespace fzmod::predictors {
namespace {

/// Lorenzo prediction of q[idx] from already-prequantized neighbours.
/// Out-of-bounds neighbours contribute 0 (the field is implicitly padded
/// with zeros, as in cuSZ).
inline i64 lorenzo_pred(const i32* q, dims3 d, std::size_t x, std::size_t y,
                        std::size_t z, int rank) {
  const std::size_t i = d.at(x, y, z);
  switch (rank) {
    case 1:
      return x ? q[i - 1] : 0;
    case 2: {
      const i64 w = x ? q[i - 1] : 0;
      const i64 n = y ? q[i - d.x] : 0;
      const i64 nw = (x && y) ? q[i - d.x - 1] : 0;
      return w + n - nw;
    }
    default: {
      const std::size_t sx = 1, sy = d.x, sz = d.x * d.y;
      const i64 vx = x ? q[i - sx] : 0;
      const i64 vy = y ? q[i - sy] : 0;
      const i64 vz = z ? q[i - sz] : 0;
      const i64 vxy = (x && y) ? q[i - sx - sy] : 0;
      const i64 vxz = (x && z) ? q[i - sx - sz] : 0;
      const i64 vyz = (y && z) ? q[i - sy - sz] : 0;
      const i64 vxyz = (x && y && z) ? q[i - sx - sy - sz] : 0;
      return vx + vy + vz - vxy - vxz - vyz + vxyz;
    }
  }
}

}  // namespace

template <class T>
void lorenzo_compress_async(const device::buffer<T>& data, dims3 dims,
                            f64 ebx2, int radius, quant_field& out,
                            device::stream& s, device::kernel_tier tier) {
  data.assert_space(device::space::device);
  device::note_kernel_tier_launch(tier);
  FZMOD_REQUIRE(data.size() == dims.len(), status::invalid_argument,
                "lorenzo: data size does not match dims");
  FZMOD_REQUIRE(ebx2 > 0, status::invalid_argument,
                "lorenzo: error bound must be positive");

  const std::size_t n = dims.len();
  out.dims = dims;
  out.radius = radius;
  out.ebx2 = ebx2;
  out.codes.ensure(n, device::space::device);
  out.lattice_scratch.ensure(n, device::space::device);
  out.value_outliers.clear();

  // Pass 1 (kernel): pre-quantize to the integer lattice. Values whose
  // lattice coordinate would overflow the safe range are recorded as raw
  // value outliers and contribute q = 0 to their neighbours' predictions —
  // which stays correct because reconstruction overwrites those points.
  // The lattice lives in `out` (reused across calls); `out` must outlive
  // the stream, which the existing `&out` capture below already requires.
  auto vo_mu = std::make_shared<std::mutex>();
  if (tier == device::kernel_tier::vector) {
    // Vector tier: the hot loop is branch-free — every element stores its
    // index into a staging slot and only out-of-range values advance the
    // cursor, so the common path is multiply/compare/select with no
    // data-dependent branch; the rare exact-value gather runs after.
    const T* in = data.data();
    i32* q = out.lattice_scratch.data();
    auto* vo = &out.value_outliers;
    const f64 r_ebx2 = 1.0 / ebx2;
    device::launch_blocks(
        s, n, device::runtime::instance().default_block(),
        [in, q, vo, vo_mu, r_ebx2](std::size_t, std::size_t lo,
                                   std::size_t hi) {
          std::vector<u64> idx(hi - lo + 1);
          std::size_t cnt = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            const f64 scaled = static_cast<f64>(in[i]) * r_ebx2;
            const bool oob =
                !(std::fabs(scaled) < static_cast<f64>(value_outlier_limit));
            idx[cnt] = i;
            cnt += oob;
            q[i] = oob ? 0 : static_cast<i32>(std::llrint(scaled));
          }
          if (cnt) {
            std::lock_guard lk(*vo_mu);
            for (std::size_t j = 0; j < cnt; ++j) {
              vo->emplace_back(idx[j], static_cast<f64>(in[idx[j]]));
            }
          }
        });
  } else {
    const T* in = data.data();
    i32* q = out.lattice_scratch.data();
    auto* vo = &out.value_outliers;
    const f64 r_ebx2 = 1.0 / ebx2;
    device::launch_blocks(
        s, n, device::runtime::instance().default_block(),
        [in, q, vo, vo_mu, r_ebx2](std::size_t, std::size_t lo,
                                   std::size_t hi) {
          std::vector<std::pair<u64, f64>> local;
          for (std::size_t i = lo; i < hi; ++i) {
            const f64 scaled = static_cast<f64>(in[i]) * r_ebx2;
            if (!(std::fabs(scaled) <
                  static_cast<f64>(value_outlier_limit))) {
              local.emplace_back(i, static_cast<f64>(in[i]));
              q[i] = 0;
            } else {
              q[i] = static_cast<i32>(std::llrint(scaled));
            }
          }
          if (!local.empty()) {
            std::lock_guard lk(*vo_mu);
            vo->insert(vo->end(), local.begin(), local.end());
          }
        });
  }

  // Pass 2 (kernel): integer Lorenzo difference + code emission + per-block
  // outlier collection, merged into one compact device list.
  struct collect_state {
    std::mutex mu;
    std::vector<kernels::outlier> all;
  };
  auto coll = std::make_shared<collect_state>();
  if (tier == device::kernel_tier::vector) {
    // Vector tier: row-structured sweep. Interior rows get a specialized
    // stencil with zero boundary checks in the inner loop (the x==0
    // element is peeled; first-row/first-plane rows — a vanishing
    // fraction — fall back to the generic guarded predictor), and code
    // emission is branch-free with the same staged outlier collection as
    // the compaction kernel.
    const i32* q = out.lattice_scratch.data();
    u16* codes = out.codes.data();
    const int rank = dims.rank();
    const std::size_t nrows = dims.y * dims.z;
    const std::size_t rows_per_block = std::max<std::size_t>(
        1, device::runtime::instance().default_block() /
               std::max<std::size_t>(1, dims.x));
    device::launch_blocks(
        s, nrows, rows_per_block,
        [q, codes, dims, radius, rank, coll](std::size_t, std::size_t rlo,
                                             std::size_t rhi) {
          std::vector<kernels::outlier> local;
          std::vector<kernels::outlier> stage(dims.x + 1);
          const std::size_t sy = dims.x, sz = dims.x * dims.y;
          for (std::size_t r = rlo; r < rhi; ++r) {
            const std::size_t y = r % dims.y;
            const std::size_t z = r / dims.y;
            const std::size_t base = r * dims.x;
            std::size_t cnt = 0;
            const auto emit = [&](std::size_t i, i64 delta) {
              const i64 code = delta + radius;
              const bool ok = code > 0 && code < 2 * radius;
              codes[i] = ok ? static_cast<u16>(code) : u16{0};
              stage[cnt] = {static_cast<u64>(i), delta};
              cnt += !ok;
            };
            const bool interior = (rank == 1) || (rank == 2 && y > 0) ||
                                  (rank == 3 && y > 0 && z > 0);
            if (!interior) {
              for (std::size_t x = 0; x < dims.x; ++x) {
                const std::size_t i = base + x;
                emit(i, static_cast<i64>(q[i]) -
                            lorenzo_pred(q, dims, x, y, z, rank));
              }
            } else if (rank == 1) {
              emit(base, static_cast<i64>(q[base]));
              for (std::size_t x = 1; x < dims.x; ++x) {
                const std::size_t i = base + x;
                emit(i, static_cast<i64>(q[i]) - static_cast<i64>(q[i - 1]));
              }
            } else if (rank == 2) {
              emit(base, static_cast<i64>(q[base]) -
                             static_cast<i64>(q[base - sy]));
              for (std::size_t x = 1; x < dims.x; ++x) {
                const std::size_t i = base + x;
                const i64 pred = static_cast<i64>(q[i - 1]) +
                                 static_cast<i64>(q[i - sy]) -
                                 static_cast<i64>(q[i - sy - 1]);
                emit(i, static_cast<i64>(q[i]) - pred);
              }
            } else {
              emit(base, static_cast<i64>(q[base]) -
                             (static_cast<i64>(q[base - sy]) +
                              static_cast<i64>(q[base - sz]) -
                              static_cast<i64>(q[base - sy - sz])));
              for (std::size_t x = 1; x < dims.x; ++x) {
                const std::size_t i = base + x;
                const i64 pred = static_cast<i64>(q[i - 1]) +
                                 static_cast<i64>(q[i - sy]) +
                                 static_cast<i64>(q[i - sz]) -
                                 static_cast<i64>(q[i - sy - 1]) -
                                 static_cast<i64>(q[i - sy - sz]) -
                                 static_cast<i64>(q[i - sz - 1]) +
                                 static_cast<i64>(q[i - sy - sz - 1]);
                emit(i, static_cast<i64>(q[i]) - pred);
              }
            }
            if (cnt) {
              local.insert(local.end(), stage.begin(),
                           stage.begin() + static_cast<std::ptrdiff_t>(cnt));
            }
          }
          if (!local.empty()) {
            std::lock_guard lk(coll->mu);
            coll->all.insert(coll->all.end(), local.begin(), local.end());
          }
        });
  } else {
    const i32* q = out.lattice_scratch.data();
    u16* codes = out.codes.data();
    const int rank = dims.rank();
    device::launch_blocks(
        s, n, device::runtime::instance().default_block(),
        [q, codes, dims, radius, rank, coll](std::size_t, std::size_t lo,
                                             std::size_t hi) {
          std::vector<kernels::outlier> local;
          // Convert the linear chunk back to coordinates incrementally.
          std::size_t x = lo % dims.x;
          std::size_t y = (lo / dims.x) % dims.y;
          std::size_t z = lo / (dims.x * dims.y);
          for (std::size_t i = lo; i < hi; ++i) {
            const i64 delta =
                static_cast<i64>(q[i]) - lorenzo_pred(q, dims, x, y, z, rank);
            const i64 code = delta + radius;
            if (code > 0 && code < 2 * radius) {
              codes[i] = static_cast<u16>(code);
            } else {
              codes[i] = 0;
              local.push_back({static_cast<u64>(i), delta});
            }
            if (++x == dims.x) {
              x = 0;
              if (++y == dims.y) {
                y = 0;
                ++z;
              }
            }
          }
          if (!local.empty()) {
            std::lock_guard lk(coll->mu);
            coll->all.insert(coll->all.end(), local.begin(), local.end());
          }
        });
  }

  // Finalize (stream-ordered host op): move collected outliers into the
  // device-resident compact list, reusing the field's outlier buffer when
  // its capacity suffices.
  device::host_task(s, [coll, &out] {
    out.n_outliers = coll->all.size();
    out.outliers.ensure(coll->all.size(), device::space::device);
    std::copy(coll->all.begin(), coll->all.end(), out.outliers.data());
    device::runtime::instance().stats().h2d_bytes +=
        coll->all.size() * sizeof(kernels::outlier);
  });
}

template <class T>
void lorenzo_decompress_async(const quant_field& field,
                              device::buffer<T>& data, device::stream& s) {
  data.assert_space(device::space::device);
  const std::size_t n = field.dims.len();
  FZMOD_REQUIRE(data.size() == n, status::invalid_argument,
                "lorenzo: output size does not match dims");
  FZMOD_REQUIRE(field.ebx2 > 0, status::corrupt_archive,
                "lorenzo: archive has non-positive error bound");

  auto deltas = std::make_shared<device::buffer<i32>>(n,
                                                      device::space::device);

  // Codes -> centred deltas (outlier sentinel becomes 0, overwritten by the
  // scatter below).
  {
    const u16* codes = field.codes.data();
    i32* d = deltas->data();
    const int radius = field.radius;
    device::launch(s, n, [codes, d, radius](std::size_t i) {
      const u16 c = codes[i];
      d[i] = c ? static_cast<i32>(c) - radius : 0;
    });
  }

  // Scatter compacted outliers into the delta field.
  {
    const kernels::outlier* src = field.outliers.data();
    const u64 count = field.n_outliers;
    i32* d = deltas->data();
    device::launch(s, count, [src, d, n](std::size_t i) {
      const auto& o = src[i];
      FZMOD_REQUIRE(o.index < n, status::corrupt_archive,
                    "lorenzo: outlier index out of range");
      d[o.index] = static_cast<i32>(o.value);
    });
  }

  // Invert the Lorenzo difference: one inclusive prefix sum per dimension.
  const int rank = field.dims.rank();
  kernels::inclusive_scan_rows_async(*deltas, field.dims, s);
  if (rank >= 2) kernels::inclusive_scan_cols_async(*deltas, field.dims, s);
  if (rank >= 3) kernels::inclusive_scan_slices_async(*deltas, field.dims, s);

  // Lattice -> values, then restore raw value outliers exactly.
  {
    const i32* q = deltas->data();
    T* outp = data.data();
    const f64 ebx2 = field.ebx2;
    device::launch(s, n, [q, outp, ebx2, deltas](std::size_t i) {
      outp[i] = static_cast<T>(static_cast<f64>(q[i]) * ebx2);
    });
  }
  if (!field.value_outliers.empty()) {
    const auto* vo = &field.value_outliers;
    T* outp = data.data();
    device::host_task(s, [vo, outp, n] {
      for (const auto& [idx, val] : *vo) {
        FZMOD_REQUIRE(idx < n, status::corrupt_archive,
                      "lorenzo: value outlier index out of range");
        outp[idx] = static_cast<T>(val);
      }
    });
  }
}

template void lorenzo_compress_async<f32>(const device::buffer<f32>&, dims3,
                                          f64, int, quant_field&,
                                          device::stream&,
                                          device::kernel_tier);
template void lorenzo_compress_async<f64>(const device::buffer<f64>&, dims3,
                                          f64, int, quant_field&,
                                          device::stream&,
                                          device::kernel_tier);
template void lorenzo_decompress_async<f32>(const quant_field&,
                                            device::buffer<f32>&,
                                            device::stream&);
template void lorenzo_decompress_async<f64>(const quant_field&,
                                            device::buffer<f64>&,
                                            device::stream&);

}  // namespace fzmod::predictors
