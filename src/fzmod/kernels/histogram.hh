// FZModules — histogram kernels feeding the Huffman encoder.
//
// The paper (§3.2) calls out that modules may need "GPU-accelerated data
// analysis" and supports two interchangeable histogram modules:
//
//  - `standard`: classic privatized histogram — each block counts into a
//    block-local array, then the partials are reduced.
//  - `top-k`: a sparsity-aware variant that first identifies the k most
//    frequent symbols from a sample, counts those on a dedicated fast path
//    (contiguous counters, no scatter), and routes the remaining cold
//    symbols through the standard path. It wins when the code distribution
//    is highly concentrated — which better predictors (the spline
//    interpolator) produce, hence FZMod-Quality pairs spline + top-k.
//
// Both produce the exact same counts; only the work distribution differs.
#pragma once

#include <algorithm>
#include <array>
#include <vector>

#include "fzmod/device/kernel_tier.hh"
#include "fzmod/device/runtime.hh"

namespace fzmod::kernels {

enum class histogram_kind : u8 { standard = 0, topk = 1 };

[[nodiscard]] inline const char* to_string(histogram_kind k) {
  return k == histogram_kind::standard ? "hist-standard" : "hist-topk";
}

/// Standard privatized histogram of u16 symbols into `nbins` counters.
/// Symbols >= nbins are a caller bug (quantizer radius bounds them).
inline void histogram_async(const device::buffer<u16>& codes,
                            device::buffer<u32>& bins, device::stream& s) {
  codes.assert_space(device::space::device);
  bins.assert_space(device::space::device);
  const u16* in = codes.data();
  const std::size_t n = codes.size();
  u32* out = bins.data();
  const std::size_t nbins = bins.size();
  s.enqueue([in, n, out, nbins] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    const std::size_t block = rt.default_block() * 4;
    const std::size_t nblocks = n ? (n + block - 1) / block : 0;
    std::fill(out, out + nbins, 0u);
    std::mutex merge_mu;
    rt.pool().parallel_for(nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
      std::vector<u32> local(nbins, 0);
      for (std::size_t b = blo; b < bhi; ++b) {
        const std::size_t end = std::min(n, (b + 1) * block);
        for (std::size_t i = b * block; i < end; ++i) local[in[i]]++;
      }
      std::lock_guard lk(merge_mu);
      for (std::size_t k = 0; k < nbins; ++k) out[k] += local[k];
    });
  });
}

/// Vector-tier standard histogram: identical privatized block structure,
/// but each block counts into 4 interleaved sub-histograms. A scalar
/// privatized loop serializes on the store-to-load dependency whenever
/// consecutive symbols hit the same bin — exactly the concentrated
/// distributions good predictors produce. Four independent counter banks
/// break that chain (the CPU analogue of per-warp sub-histograms in
/// shared memory), at the cost of 4x the private footprint.
inline void histogram_vector_async(const device::buffer<u16>& codes,
                                   device::buffer<u32>& bins,
                                   device::stream& s) {
  codes.assert_space(device::space::device);
  bins.assert_space(device::space::device);
  const u16* in = codes.data();
  const std::size_t n = codes.size();
  u32* out = bins.data();
  const std::size_t nbins = bins.size();
  s.enqueue([in, n, out, nbins] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    const std::size_t block = rt.default_block() * 4;
    const std::size_t nblocks = n ? (n + block - 1) / block : 0;
    std::fill(out, out + nbins, 0u);
    std::mutex merge_mu;
    rt.pool().parallel_for(nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
      std::vector<u32> local(nbins * 4, 0);
      u32* b0 = local.data();
      u32* b1 = b0 + nbins;
      u32* b2 = b1 + nbins;
      u32* b3 = b2 + nbins;
      for (std::size_t b = blo; b < bhi; ++b) {
        const std::size_t end = std::min(n, (b + 1) * block);
        std::size_t i = b * block;
        for (; i + 4 <= end; i += 4) {
          b0[in[i + 0]]++;
          b1[in[i + 1]]++;
          b2[in[i + 2]]++;
          b3[in[i + 3]]++;
        }
        for (; i < end; ++i) b0[in[i]]++;
      }
      std::lock_guard lk(merge_mu);
      for (std::size_t k = 0; k < nbins; ++k) {
        out[k] += b0[k] + b1[k] + b2[k] + b3[k];
      }
    });
  });
}

/// Top-k histogram: sample ~1% of the input to nominate the k hottest
/// symbols, count those via a tiny direct-mapped table (the fast path a GPU
/// would keep in registers/shared memory), and fall back to privatized
/// bins for everything else. Output counts are exact.
inline void histogram_topk_async(const device::buffer<u16>& codes,
                                 device::buffer<u32>& bins,
                                 device::stream& s, u32 k = 8) {
  codes.assert_space(device::space::device);
  bins.assert_space(device::space::device);
  const u16* in = codes.data();
  const std::size_t n = codes.size();
  u32* out = bins.data();
  const std::size_t nbins = bins.size();
  s.enqueue([in, n, out, nbins, k = std::min(k, 16u)] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    std::fill(out, out + nbins, 0u);
    if (n == 0) return;

    // Phase 1: nominate candidates from a strided sample.
    std::vector<u32> sample_counts(nbins, 0);
    const std::size_t stride = std::max<std::size_t>(1, n / 65536);
    for (std::size_t i = 0; i < n; i += stride) sample_counts[in[i]]++;
    std::vector<u16> hot;
    hot.reserve(k);
    for (u32 kk = 0; kk < k; ++kk) {
      const auto it =
          std::max_element(sample_counts.begin(), sample_counts.end());
      if (*it == 0) break;
      hot.push_back(static_cast<u16>(it - sample_counts.begin()));
      *it = 0;
    }
    // Direct-mapped lookup: symbol -> hot slot (or k = cold).
    std::vector<u8> slot_of(nbins, static_cast<u8>(hot.size()));
    for (std::size_t hk = 0; hk < hot.size(); ++hk) {
      slot_of[hot[hk]] = static_cast<u8>(hk);
    }

    // Phase 2: exact counting. Hot symbols hit a handful of contiguous
    // counters — on a GPU these live in registers/shared memory and dodge
    // the global-atomic contention that throttles the standard histogram
    // on heavily repeating inputs (the effect cuSZ-i exploits). On this
    // CPU substrate there is no atomic contention, so the module is at
    // parity on concentrated inputs and slower on dispersed ones (where
    // it should not be selected anyway — see bench_ablation_histogram);
    // the structural difference and the concentration-based selection
    // criterion are what carry over.
    const std::size_t block = rt.default_block() * 4;
    const std::size_t nblocks = (n + block - 1) / block;
    std::mutex merge_mu;
    rt.pool().parallel_for(nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
      std::array<u32, 16> hot_counts{};
      std::vector<u32> cold(nbins, 0);
      for (std::size_t b = blo; b < bhi; ++b) {
        const std::size_t end = std::min(n, (b + 1) * block);
        for (std::size_t i = b * block; i < end; ++i) {
          const u16 sym = in[i];
          const u8 slot = slot_of[sym];
          if (slot < hot.size()) {
            hot_counts[slot]++;
          } else {
            cold[sym]++;
          }
        }
      }
      std::lock_guard lk(merge_mu);
      for (std::size_t hk = 0; hk < hot.size(); ++hk) {
        out[hot[hk]] += hot_counts[hk];
      }
      for (std::size_t sym = 0; sym < nbins; ++sym) out[sym] += cold[sym];
    });
  });
}

/// Dispatch by module kind and kernel tier (pipeline composition uses
/// this). The tier defaults to the process policy; pipelines resolve
/// their config override and pass it down. top-k has no vector variant
/// (its hot path is already contention-free), so it always records a
/// portable launch.
inline void histogram_dispatch_async(
    histogram_kind kind, const device::buffer<u16>& codes,
    device::buffer<u32>& bins, device::stream& s,
    device::kernel_tier tier = device::active_kernel_tier()) {
  if (kind == histogram_kind::topk) {
    device::note_kernel_tier_launch(device::kernel_tier::portable);
    histogram_topk_async(codes, bins, s);
  } else if (tier == device::kernel_tier::vector) {
    device::note_kernel_tier_launch(tier);
    histogram_vector_async(codes, bins, s);
  } else {
    device::note_kernel_tier_launch(tier);
    histogram_async(codes, bins, s);
  }
}

}  // namespace fzmod::kernels
