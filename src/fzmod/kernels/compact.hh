// FZModules — outlier compaction and scatter kernels.
//
// Predictors mark unpredictable points as outliers: the quantization code
// stream stores a sentinel and the (index, value) pair is appended to a
// compact side list. Compaction on the device uses the standard
// count+scan+write pattern; scatter is its inverse and is the task the
// paper's STF decompression example runs concurrently with Huffman decode.
#pragma once

#include <algorithm>
#include <vector>

#include "fzmod/device/kernel_tier.hh"
#include "fzmod/device/runtime.hh"

namespace fzmod::kernels {

/// One compacted outlier: position in the field and the exact signed
/// quantization delta that did not fit the code range.
struct outlier {
  u64 index;
  i64 value;
};

/// Device-side compaction: collect (i, values[i]) for every i with
/// flags[i] != 0 into `out`, preserving index order. The count lands in
/// *count when the stream op runs; `out` must be presized to the worst
/// case by the caller (predictors know their outlier cap).
inline void compact_async(const device::buffer<u8>& flags,
                          const device::buffer<i64>& values,
                          device::buffer<outlier>& out, u64* count,
                          device::stream& s) {
  flags.assert_space(device::space::device);
  values.assert_space(device::space::device);
  out.assert_space(device::space::device);
  const u8* f = flags.data();
  const i64* v = values.data();
  const std::size_t n = flags.size();
  outlier* dst = out.data();
  const std::size_t cap = out.size();
  s.enqueue([f, v, n, dst, cap, count] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    const std::size_t block = rt.default_block();
    const std::size_t nblocks = n ? (n + block - 1) / block : 0;
    std::vector<u64> block_counts(nblocks, 0);
    rt.pool().parallel_for(nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t b = blo; b < bhi; ++b) {
        u64 c = 0;
        const std::size_t end = std::min(n, (b + 1) * block);
        for (std::size_t i = b * block; i < end; ++i) c += (f[i] != 0);
        block_counts[b] = c;
      }
    });
    u64 acc = 0;
    for (auto& c : block_counts) {
      const u64 t = c;
      c = acc;
      acc += t;
    }
    FZMOD_REQUIRE(acc <= cap, status::internal,
                  "outlier compaction overflow: capacity too small");
    if (count) *count = acc;
    rt.pool().parallel_for(nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t b = blo; b < bhi; ++b) {
        u64 pos = block_counts[b];
        const std::size_t end = std::min(n, (b + 1) * block);
        for (std::size_t i = b * block; i < end; ++i) {
          if (f[i]) dst[pos++] = {static_cast<u64>(i), v[i]};
        }
      }
    });
  });
}

/// Vector-tier compaction: same count+scan+write plan, but both hot loops
/// are branch-free. The count phase accumulates flag sums in 4
/// independent lanes; the write phase first collects flagged indices into
/// a block-local staging array with unconditional stores (`buf[cnt] = i;
/// cnt += flag` — the staging array is sized block+1 so the dead store
/// past the last hit is always in-bounds), then emits exactly `cnt`
/// (index, value) pairs. Gathers on `values` happen only for actual
/// outliers, which are sparse by construction.
inline void compact_vector_async(const device::buffer<u8>& flags,
                                 const device::buffer<i64>& values,
                                 device::buffer<outlier>& out, u64* count,
                                 device::stream& s) {
  flags.assert_space(device::space::device);
  values.assert_space(device::space::device);
  out.assert_space(device::space::device);
  const u8* f = flags.data();
  const i64* v = values.data();
  const std::size_t n = flags.size();
  outlier* dst = out.data();
  const std::size_t cap = out.size();
  s.enqueue([f, v, n, dst, cap, count] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    const std::size_t block = rt.default_block();
    const std::size_t nblocks = n ? (n + block - 1) / block : 0;
    std::vector<u64> block_counts(nblocks, 0);
    rt.pool().parallel_for(nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t b = blo; b < bhi; ++b) {
        const std::size_t end = std::min(n, (b + 1) * block);
        std::size_t i = b * block;
        u64 c0 = 0, c1 = 0, c2 = 0, c3 = 0;
        for (; i + 4 <= end; i += 4) {
          c0 += (f[i + 0] != 0);
          c1 += (f[i + 1] != 0);
          c2 += (f[i + 2] != 0);
          c3 += (f[i + 3] != 0);
        }
        for (; i < end; ++i) c0 += (f[i] != 0);
        block_counts[b] = c0 + c1 + c2 + c3;
      }
    });
    u64 acc = 0;
    for (auto& c : block_counts) {
      const u64 t = c;
      c = acc;
      acc += t;
    }
    FZMOD_REQUIRE(acc <= cap, status::internal,
                  "outlier compaction overflow: capacity too small");
    if (count) *count = acc;
    rt.pool().parallel_for(nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
      std::vector<u64> buf(block + 1);
      for (std::size_t b = blo; b < bhi; ++b) {
        const std::size_t beg = b * block;
        const std::size_t end = std::min(n, beg + block);
        std::size_t cnt = 0;
        for (std::size_t i = beg; i < end; ++i) {
          buf[cnt] = i;
          cnt += (f[i] != 0);
        }
        outlier* o = dst + block_counts[b];
        for (std::size_t j = 0; j < cnt; ++j) {
          o[j] = {buf[j], v[buf[j]]};
        }
      }
    });
  });
}

/// Tier dispatch for compaction (predictors call this).
inline void compact_dispatch_async(
    const device::buffer<u8>& flags, const device::buffer<i64>& values,
    device::buffer<outlier>& out, u64* count, device::stream& s,
    device::kernel_tier tier = device::active_kernel_tier()) {
  device::note_kernel_tier_launch(tier);
  if (tier == device::kernel_tier::vector) {
    compact_vector_async(flags, values, out, count, s);
  } else {
    compact_async(flags, values, out, count, s);
  }
}

/// Scatter compacted outliers back into a full-length i32 delta array
/// (decompression). `n_outliers` is read when the op executes, so it can be
/// produced by an earlier op on the same stream.
inline void scatter_async(const device::buffer<outlier>& outliers,
                          const u64* n_outliers, device::buffer<i32>& deltas,
                          device::stream& s) {
  outliers.assert_space(device::space::device);
  deltas.assert_space(device::space::device);
  const outlier* src = outliers.data();
  i32* dst = deltas.data();
  const std::size_t cap = deltas.size();
  s.enqueue([src, n_outliers, dst, cap] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    const u64 n = *n_outliers;
    rt.pool().parallel_for(n, rt.default_block(),
                           [&](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i) {
                               const auto& o = src[i];
                               FZMOD_REQUIRE(o.index < cap,
                                             status::corrupt_archive,
                                             "outlier index out of range");
                               dst[o.index] =
                                   static_cast<i32>(o.value);
                             }
                           });
  });
}

}  // namespace fzmod::kernels
