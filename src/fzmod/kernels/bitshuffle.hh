// FZModules — bitshuffle (bit-plane transpose) kernel.
//
// FZ-GPU's key lossless trick: after dual-quantized Lorenzo, quantization
// codes are small integers, so their high bit-planes are almost entirely
// zero. Transposing tiles of codes into bit-plane order turns "many small
// values" into "long runs of zero machine words", which the dictionary
// stage then eliminates with a bitmap.
//
// Layout: input is u16 symbols processed in tiles of 512. Each tile emits
// 16 bit-planes of 512 bits = 16 x 16 u32 words, plane-major. A partial
// final tile is zero-padded (decoder truncates by total count).
#pragma once

#include <algorithm>
#include <bit>
#include <cstring>

#include "fzmod/device/runtime.hh"

namespace fzmod::kernels {

inline constexpr std::size_t bitshuffle_tile = 512;       // symbols per tile
inline constexpr std::size_t bitshuffle_words_per_plane =
    bitshuffle_tile / 32;                                 // 16
inline constexpr std::size_t bitshuffle_words_per_tile =
    16 * bitshuffle_words_per_plane;                      // 256 u32

[[nodiscard]] constexpr std::size_t bitshuffle_tiles(std::size_t n) {
  return (n + bitshuffle_tile - 1) / bitshuffle_tile;
}

[[nodiscard]] constexpr std::size_t bitshuffle_words(std::size_t n) {
  return bitshuffle_tiles(n) * bitshuffle_words_per_tile;
}

/// Host-side single tile forward shuffle (also used by the fused FZ-GPU
/// baseline so the modular and fused paths share one proven core).
inline void bitshuffle_tile_fwd(const u16* in, std::size_t count, u32* out) {
  std::memset(out, 0, bitshuffle_words_per_tile * sizeof(u32));
  for (std::size_t i = 0; i < count; ++i) {
    const u16 v = in[i];
    if (v == 0) continue;
    const std::size_t word = i >> 5;   // which u32 within a plane
    const u32 bit = u32{1} << (i & 31);
    u16 rest = v;
    while (rest) {
      const int plane = std::countr_zero(static_cast<u32>(rest));
      out[static_cast<std::size_t>(plane) * bitshuffle_words_per_plane +
          word] |= bit;
      rest = static_cast<u16>(rest & (rest - 1));
    }
  }
}

/// Host-side single tile inverse shuffle.
inline void bitshuffle_tile_inv(const u32* in, std::size_t count, u16* out) {
  std::memset(out, 0, count * sizeof(u16));
  for (int plane = 0; plane < 16; ++plane) {
    const u32* row = in + static_cast<std::size_t>(plane) *
                              bitshuffle_words_per_plane;
    const u16 pbit = static_cast<u16>(1u << plane);
    for (std::size_t w = 0; w < bitshuffle_words_per_plane; ++w) {
      u32 bits = row[w];
      while (bits) {
        const std::size_t i = (w << 5) + std::countr_zero(bits);
        if (i < count) out[i] = static_cast<u16>(out[i] | pbit);
        bits &= bits - 1;
      }
    }
  }
}

/// Device kernel: shuffle all tiles of `codes` into `planes`
/// (bitshuffle_words(codes.size()) u32 long).
inline void bitshuffle_fwd_async(const device::buffer<u16>& codes,
                                 device::buffer<u32>& planes,
                                 device::stream& s) {
  codes.assert_space(device::space::device);
  planes.assert_space(device::space::device);
  const u16* in = codes.data();
  const std::size_t n = codes.size();
  u32* out = planes.data();
  device::launch_blocks(
      s, bitshuffle_tiles(n), 1, [in, n, out](std::size_t t, std::size_t,
                                              std::size_t) {
        const std::size_t base = t * bitshuffle_tile;
        const std::size_t count = std::min(bitshuffle_tile, n - base);
        bitshuffle_tile_fwd(in + base, count,
                            out + t * bitshuffle_words_per_tile);
      });
}

/// Device kernel: inverse of bitshuffle_fwd_async.
inline void bitshuffle_inv_async(const device::buffer<u32>& planes,
                                 device::buffer<u16>& codes,
                                 device::stream& s) {
  planes.assert_space(device::space::device);
  codes.assert_space(device::space::device);
  const u32* in = planes.data();
  u16* out = codes.data();
  const std::size_t n = codes.size();
  device::launch_blocks(
      s, bitshuffle_tiles(n), 1, [in, n, out](std::size_t t, std::size_t,
                                              std::size_t) {
        const std::size_t base = t * bitshuffle_tile;
        const std::size_t count = std::min(bitshuffle_tile, n - base);
        bitshuffle_tile_inv(in + t * bitshuffle_words_per_tile, count,
                            out + base);
      });
}

}  // namespace fzmod::kernels
