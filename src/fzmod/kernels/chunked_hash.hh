// FZModules — data-parallel chunked payload hashing (archive integrity).
//
// Digest definition (fixed by docs/FORMAT.md, independent of thread count
// and launch geometry):
//   - payloads up to one chunk (64 KiB) hash as a single xxhash64 with
//     seed 0 (the empty payload has a well-defined digest);
//   - larger payloads are cut into fixed 64 KiB chunks, each chunk hashed
//     independently (this is the data-parallel part — on a GPU each chunk
//     is one block's grid-stride slice), and the little-endian array of
//     chunk digests is hashed with the chunk count as seed.
//
// Both sides of the format use the same definition, so the CUDA port only
// has to reproduce per-chunk xxhash64, not any reduction-order detail.
#pragma once

#include <algorithm>
#include <vector>

#include "fzmod/common/hash.hh"
#include "fzmod/device/runtime.hh"

namespace fzmod::kernels {

/// Fixed chunk size of the parallel digest. Part of the on-disk format —
/// changing it changes every v2 digest.
inline constexpr std::size_t hash_chunk_bytes = 64 * 1024;

/// Stream-ordered chunked hash of `n` raw bytes into *out. The pointer may
/// live in either memory space (the kernel only reads bytes); the caller
/// keeps `data` and `out` alive until the stream op has run.
inline void chunked_hash_async(const u8* data, std::size_t n, u64* out,
                               device::stream& s) {
  s.enqueue([data, n, out] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    const std::size_t nchunks =
        n ? (n + hash_chunk_bytes - 1) / hash_chunk_bytes : 0;
    if (nchunks <= 1) {
      *out = common::xxhash64(data, n, 0);
      return;
    }
    std::vector<u64> partial(nchunks);
    rt.pool().parallel_for(
        nchunks, 1, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t c = lo; c < hi; ++c) {
            const std::size_t beg = c * hash_chunk_bytes;
            partial[c] = common::xxhash64(
                data + beg, std::min(hash_chunk_bytes, n - beg), 0);
          }
        });
    *out = common::xxhash64(partial.data(), nchunks * sizeof(u64), nchunks);
  });
}

/// Synchronous form for serialization paths that already own the host
/// thread (archive assembly, decode-side verification). Same digest as the
/// async kernel; still data-parallel over the worker pool.
[[nodiscard]] inline u64 chunked_hash(std::span<const u8> bytes) {
  auto& rt = device::runtime::instance();
  rt.stats().kernels_launched += 1;
  const std::size_t n = bytes.size();
  const std::size_t nchunks =
      n ? (n + hash_chunk_bytes - 1) / hash_chunk_bytes : 0;
  if (nchunks <= 1) return common::xxhash64(bytes.data(), n, 0);
  std::vector<u64> partial(nchunks);
  rt.pool().parallel_for(nchunks, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      const std::size_t beg = c * hash_chunk_bytes;
      partial[c] = common::xxhash64(bytes.data() + beg,
                                    std::min(hash_chunk_bytes, n - beg), 0);
    }
  });
  return common::xxhash64(partial.data(), nchunks * sizeof(u64), nchunks);
}

/// Incremental form for byte sources that cannot expose one contiguous
/// span (the seekable reader's streaming open). `fetch(dst, offset, len)`
/// pulls raw bytes; the payload is consumed one 64 KiB digest chunk at a
/// time, so peak memory is hash_chunk_bytes regardless of `n`. Produces
/// exactly the span form's digest — the definition above is per-chunk, so
/// the windowing is invisible.
template <class Fetch>
[[nodiscard]] u64 chunked_hash_stream(u64 n, Fetch&& fetch) {
  auto& rt = device::runtime::instance();
  rt.stats().kernels_launched += 1;
  const u64 nchunks = n ? (n + hash_chunk_bytes - 1) / hash_chunk_bytes : 0;
  std::vector<u8> window(std::min<u64>(n, hash_chunk_bytes));
  if (nchunks <= 1) {
    if (n) fetch(window.data(), u64{0}, static_cast<std::size_t>(n));
    return common::xxhash64(window.data(), static_cast<std::size_t>(n), 0);
  }
  std::vector<u64> partial(static_cast<std::size_t>(nchunks));
  for (u64 c = 0; c < nchunks; ++c) {
    const u64 beg = c * hash_chunk_bytes;
    const std::size_t len =
        static_cast<std::size_t>(std::min<u64>(hash_chunk_bytes, n - beg));
    fetch(window.data(), beg, len);
    partial[static_cast<std::size_t>(c)] =
        common::xxhash64(window.data(), len, 0);
  }
  return common::xxhash64(partial.data(),
                          static_cast<std::size_t>(nchunks) * sizeof(u64),
                          static_cast<std::size_t>(nchunks));
}

}  // namespace fzmod::kernels
