// FZModules — data-statistics kernels (preprocessing stage support).
//
// The paper's preprocessing stage exists mainly to resolve value-range
// relative error bounds: rel-eb needs the field's min/max before the
// predictor can quantize. These are classic two-level reductions: each
// block reduces privately, then a host-side (trivially small) combine.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "fzmod/device/runtime.hh"

namespace fzmod::kernels {

template <class T>
struct minmax_result {
  T min = std::numeric_limits<T>::max();
  T max = std::numeric_limits<T>::lowest();
  [[nodiscard]] f64 range() const {
    return static_cast<f64>(max) - static_cast<f64>(min);
  }
};

/// Block-parallel min/max reduction over a device buffer. Synchronous with
/// respect to `s` completing; the result lands in `*out` (host memory)
/// when the stream op runs.
template <class T>
void minmax_async(const device::buffer<T>& in, minmax_result<T>* out,
                  device::stream& s) {
  in.assert_space(device::space::device);
  const T* p = in.data();
  const std::size_t n = in.size();
  s.enqueue([p, n, out] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    const std::size_t block = rt.default_block();
    const std::size_t nblocks = n ? (n + block - 1) / block : 0;
    std::vector<minmax_result<T>> partial(nblocks);
    rt.pool().parallel_for(nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t b = blo; b < bhi; ++b) {
        T lo = std::numeric_limits<T>::max();
        T hi = std::numeric_limits<T>::lowest();
        const std::size_t end = std::min(n, (b + 1) * block);
        for (std::size_t i = b * block; i < end; ++i) {
          lo = std::min(lo, p[i]);
          hi = std::max(hi, p[i]);
        }
        partial[b] = {lo, hi};
      }
    });
    minmax_result<T> r;
    for (const auto& pr : partial) {
      r.min = std::min(r.min, pr.min);
      r.max = std::max(r.max, pr.max);
    }
    *out = r;
  });
}

/// Host-side convenience (used by CPU baselines and tests).
template <class T>
[[nodiscard]] minmax_result<T> minmax_host(std::span<const T> in) {
  minmax_result<T> r;
  for (const T v : in) {
    r.min = std::min(r.min, v);
    r.max = std::max(r.max, v);
  }
  return r;
}

}  // namespace fzmod::kernels
