// FZModules — prefix-scan kernels.
//
// Two roles in the framework:
//  - exclusive scans over per-block compressed sizes (stream compaction of
//    variable-length encoder output — Huffman chunks, FZG tiles, cuSZp2
//    blocks all need it);
//  - inclusive scans over quantization deltas, which is exactly the inverse
//    of the Lorenzo transform (decompression runs one scan per dimension).
//
// The device form is the classic two-pass block scan: per-block local scan
// + block totals, scan of totals, then a uniform add.
#pragma once

#include <algorithm>
#include <vector>

#include "fzmod/device/runtime.hh"

namespace fzmod::kernels {

/// Host exclusive scan (tiny inputs: segment tables, block offsets).
template <class T>
void exclusive_scan_host(std::span<const T> in, std::span<T> out) {
  T acc{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc = static_cast<T>(acc + in[i]);
  }
}

/// Device-side exclusive scan; returns the grand total via `*total` when
/// the stream op completes.
template <class T>
void exclusive_scan_async(const device::buffer<T>& in, device::buffer<T>& out,
                          T* total, device::stream& s) {
  in.assert_space(device::space::device);
  out.assert_space(device::space::device);
  const T* src = in.data();
  T* dst = out.data();
  const std::size_t n = in.size();
  s.enqueue([src, dst, n, total] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    const std::size_t block = rt.default_block();
    const std::size_t nblocks = n ? (n + block - 1) / block : 0;
    std::vector<T> block_totals(nblocks);
    // Pass 1: local exclusive scan per block, record block totals.
    rt.pool().parallel_for(nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t b = blo; b < bhi; ++b) {
        const std::size_t end = std::min(n, (b + 1) * block);
        T acc{};
        for (std::size_t i = b * block; i < end; ++i) {
          dst[i] = acc;
          acc = static_cast<T>(acc + src[i]);
        }
        block_totals[b] = acc;
      }
    });
    // Scan of block totals (small, sequential).
    T acc{};
    for (std::size_t b = 0; b < nblocks; ++b) {
      const T t = block_totals[b];
      block_totals[b] = acc;
      acc = static_cast<T>(acc + t);
    }
    if (total) *total = acc;
    // Pass 2: uniform add.
    rt.pool().parallel_for(nblocks, 1, [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t b = blo; b < bhi; ++b) {
        const T offset = block_totals[b];
        const std::size_t end = std::min(n, (b + 1) * block);
        for (std::size_t i = b * block; i < end; ++i) {
          dst[i] = static_cast<T>(dst[i] + offset);
        }
      }
    });
  });
}

/// Inclusive scan along the x (contiguous) dimension of a `dims`-shaped
/// i32 field: out[i] = sum of in[row start .. i]. Rows are independent,
/// so parallelism is across y*z lines. This is the 1-D Lorenzo inverse.
inline void inclusive_scan_rows_async(device::buffer<i32>& data, dims3 dims,
                                      device::stream& s) {
  data.assert_space(device::space::device);
  i32* p = data.data();
  s.enqueue([p, dims] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    const std::size_t nrows = dims.y * dims.z;
    rt.pool().parallel_for(nrows, 4, [&](std::size_t rlo, std::size_t rhi) {
      for (std::size_t r = rlo; r < rhi; ++r) {
        i32* row = p + r * dims.x;
        // Accumulate in u32: corrupt quant codes (hostile/bit-flipped
        // archives) can sum past INT32_MAX, and signed overflow is UB.
        // Unsigned wraparound matches two's complement, so valid data is
        // bit-identical and garbage stays contained for digest rejection.
        u32 acc = 0;
        for (std::size_t i = 0; i < dims.x; ++i) {
          acc += static_cast<u32>(row[i]);
          row[i] = static_cast<i32>(acc);
        }
      }
    });
  });
}

/// Inclusive scan along y: out(x,y,z) = sum_{j<=y} in(x,j,z). Columns are
/// independent; iterate y outer / x inner for contiguous access.
inline void inclusive_scan_cols_async(device::buffer<i32>& data, dims3 dims,
                                      device::stream& s) {
  data.assert_space(device::space::device);
  i32* p = data.data();
  s.enqueue([p, dims] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    rt.pool().parallel_for(dims.z, 1, [&](std::size_t zlo, std::size_t zhi) {
      for (std::size_t z = zlo; z < zhi; ++z) {
        i32* plane = p + z * dims.x * dims.y;
        for (std::size_t y = 1; y < dims.y; ++y) {
          i32* cur = plane + y * dims.x;
          const i32* prev = cur - dims.x;
          for (std::size_t x = 0; x < dims.x; ++x) {
            cur[x] = static_cast<i32>(static_cast<u32>(cur[x]) +
                                      static_cast<u32>(prev[x]));
          }
        }
      }
    });
  });
}

/// Inclusive scan along z: out(x,y,z) = sum_{k<=z} in(x,y,k).
inline void inclusive_scan_slices_async(device::buffer<i32>& data, dims3 dims,
                                        device::stream& s) {
  data.assert_space(device::space::device);
  i32* p = data.data();
  s.enqueue([p, dims] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    const std::size_t plane = dims.x * dims.y;
    rt.pool().parallel_for(dims.y, 1, [&](std::size_t ylo, std::size_t yhi) {
      for (std::size_t y = ylo; y < yhi; ++y) {
        for (std::size_t z = 1; z < dims.z; ++z) {
          i32* cur = p + z * plane + y * dims.x;
          const i32* prev = cur - plane;
          for (std::size_t x = 0; x < dims.x; ++x) {
            cur[x] = static_cast<i32>(static_cast<u32>(cur[x]) +
                                      static_cast<u32>(prev[x]));
          }
        }
      }
    });
  });
}

}  // namespace fzmod::kernels
