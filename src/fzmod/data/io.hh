// FZModules — raw binary field I/O (SDRBench convention: headerless
// little-endian f32/f64 arrays, dims supplied out of band).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fzmod/common/types.hh"

namespace fzmod::data {

/// Read a whole binary file. Throws on missing/unreadable files.
[[nodiscard]] std::vector<u8> read_file(const std::string& path);

/// Write a whole binary file (overwrites). Throws on failure.
void write_file(const std::string& path, std::span<const u8> bytes);

/// Load a headerless f32 field of exactly dims.len() values.
[[nodiscard]] std::vector<f32> load_f32_field(const std::string& path,
                                              dims3 dims);

/// Store a field as raw f32 bytes.
void store_f32_field(const std::string& path, std::span<const f32> values);

}  // namespace fzmod::data
