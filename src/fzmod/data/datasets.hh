// FZModules — synthetic SDRBench-like dataset generators.
//
// The paper evaluates on four SDRBench datasets (Table 2). The real files
// are not available offline, so this module synthesizes fields with the
// same dimensionality and the statistical character that drives compressor
// behaviour (see DESIGN.md §1 for the substitution argument):
//
//  - CESM-ATM  (climate, 3600x1800x26): smooth multi-scale lat-lon fields
//    with a latitudinal trend — very compressible at loose bounds.
//  - HACC      (cosmology particles, 1-D): unsorted clustered particle
//    coordinates/velocities — nearly unpredictable pointwise, the hardest
//    dataset in Table 3.
//  - HURR      (hurricane, 500x500x100): a translating vortex plus
//    multi-octave turbulence — moderately smooth.
//  - Nyx       (cosmology grid, 512^3): log-normal density field with
//    multi-scale structure and huge dynamic range — extreme CRs at loose
//    relative bounds, exactly the regime of the paper's Nyx column.
//
// All generators are deterministic in (dataset, field index, dims) and
// parallelized over the worker pool. `FZMOD_FULLSCALE=1` switches the
// catalog from bench-friendly scaled dims to the paper's dims.
#pragma once

#include <string>
#include <vector>

#include "fzmod/common/types.hh"

namespace fzmod::data {

enum class dataset_id : u8 { cesm, hacc, hurr, nyx };

struct dataset_desc {
  dataset_id id;
  std::string name;     // "CESM-ATM", ...
  dims3 dims;           // per-field dims actually generated
  dims3 paper_dims;     // dims reported in the paper's Table 2
  int n_fields;         // fields available from the generator
  int paper_n_fields;   // field count in the paper's Table 2
  std::string kind;     // "climate simulation", ...
};

/// The four-dataset catalog. Scaled-down dims by default (single-core
/// machine); paper dims when `fullscale`.
[[nodiscard]] std::vector<dataset_desc> catalog(bool fullscale = false);

/// Whether FZMOD_FULLSCALE=1 is set in the environment.
[[nodiscard]] bool fullscale_requested();

/// Generate field `field_idx` (0-based, < n_fields) of a dataset.
[[nodiscard]] std::vector<f32> generate(const dataset_desc& ds,
                                        int field_idx);

/// Convenience: look up a dataset by id in the default catalog.
[[nodiscard]] dataset_desc describe(dataset_id id, bool fullscale = false);

}  // namespace fzmod::data
