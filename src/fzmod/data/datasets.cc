#include "fzmod/data/datasets.hh"

#include <cmath>
#include <cstdlib>

#include "fzmod/common/error.hh"
#include "fzmod/common/rng.hh"
#include "fzmod/device/runtime.hh"

namespace fzmod::data {
namespace {

// ---- lattice value noise ------------------------------------------------

[[nodiscard]] u64 hash_coords(i64 x, i64 y, i64 z, u64 seed) {
  u64 h = seed;
  h ^= static_cast<u64>(x) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<u64>(y) * 0xc2b2ae3d27d4eb4fULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= static_cast<u64>(z) * 0x165667b19e3779f9ULL;
  h = (h ^ (h >> 31)) * 0xd6e8feb86659fd93ULL;
  return h ^ (h >> 32);
}

/// Lattice value in [-1, 1].
[[nodiscard]] f64 lattice(i64 x, i64 y, i64 z, u64 seed) {
  return static_cast<f64>(hash_coords(x, y, z, seed) >> 11) * 0x1.0p-52 -
         1.0;
}

[[nodiscard]] f64 smooth(f64 t) { return t * t * (3.0 - 2.0 * t); }

/// Trilinearly interpolated value noise at (x, y, z) in lattice units.
[[nodiscard]] f64 value_noise(f64 x, f64 y, f64 z, u64 seed) {
  const i64 x0 = static_cast<i64>(std::floor(x));
  const i64 y0 = static_cast<i64>(std::floor(y));
  const i64 z0 = static_cast<i64>(std::floor(z));
  const f64 fx = smooth(x - static_cast<f64>(x0));
  const f64 fy = smooth(y - static_cast<f64>(y0));
  const f64 fz = smooth(z - static_cast<f64>(z0));
  f64 c[2][2][2];
  for (int dz = 0; dz < 2; ++dz) {
    for (int dy = 0; dy < 2; ++dy) {
      for (int dx = 0; dx < 2; ++dx) {
        c[dz][dy][dx] = lattice(x0 + dx, y0 + dy, z0 + dz, seed);
      }
    }
  }
  auto lerp = [](f64 a, f64 b, f64 t) { return a + (b - a) * t; };
  const f64 x00 = lerp(c[0][0][0], c[0][0][1], fx);
  const f64 x01 = lerp(c[0][1][0], c[0][1][1], fx);
  const f64 x10 = lerp(c[1][0][0], c[1][0][1], fx);
  const f64 x11 = lerp(c[1][1][0], c[1][1][1], fx);
  const f64 y0v = lerp(x00, x01, fy);
  const f64 y1v = lerp(x10, x11, fy);
  return lerp(y0v, y1v, fz);
}

/// Fractal (multi-octave) noise; `roughness` in (0,1] is the per-octave
/// amplitude persistence — higher = rougher field.
[[nodiscard]] f64 fractal_noise(f64 x, f64 y, f64 z, u64 seed, int octaves,
                                f64 base_freq, f64 roughness) {
  f64 sum = 0, amp = 1, norm = 0, freq = base_freq;
  for (int o = 0; o < octaves; ++o) {
    sum += amp * value_noise(x * freq, y * freq, z * freq,
                             seed + static_cast<u64>(o) * 7919);
    norm += amp;
    amp *= roughness;
    freq *= 2.0;
  }
  return sum / norm;
}

/// Octave count that keeps the finest noise lattice at >= ~3 grid cells:
/// real simulation output is smooth at the grid scale (the solver's
/// dissipation guarantees it), and compressor behaviour — especially
/// prediction accuracy at tight bounds — hinges on that property.
[[nodiscard]] int octaves_for(f64 base_freq, std::size_t cells) {
  int octaves = 1;
  f64 freq = base_freq;
  while (octaves < 8 && freq * 2.0 * 3.0 <= static_cast<f64>(cells)) {
    freq *= 2.0;
    ++octaves;
  }
  return octaves;
}

// ---- per-dataset field synthesis -----------------------------------------

using field_fn = f64 (*)(f64, f64, f64, u64, int);

template <class F>
std::vector<f32> fill_field(dims3 d, F&& fn) {
  std::vector<f32> out(d.len());
  auto& pool = device::runtime::instance().pool();
  pool.parallel_for(d.len(), 1u << 14, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t x = i % d.x;
      const std::size_t y = (i / d.x) % d.y;
      const std::size_t z = i / (d.x * d.y);
      // Normalized coordinates in [0, 1).
      const f64 u = static_cast<f64>(x) / static_cast<f64>(d.x);
      const f64 v = static_cast<f64>(y) / static_cast<f64>(d.y);
      const f64 w = static_cast<f64>(z) / static_cast<f64>(d.z);
      out[i] = static_cast<f32>(fn(u, v, w));
    }
  });
  return out;
}

/// CESM-ATM-like field: smooth zonal structure + mild multi-scale detail.
/// Field index varies the variable "type": amplitude, offset, roughness.
std::vector<f32> gen_cesm(dims3 d, int field) {
  const u64 seed = 0xce5a0000 + static_cast<u64>(field);
  const int oct = octaves_for(8.0, d.x);
  if (field % 3 == 1) {
    // Precipitation/flux-like variable: exactly zero over most of the
    // globe, localized smooth storm systems elsewhere. A third of CESM's
    // 33 fields behave this way, and they are what pushes the
    // zero-eliminating compressors' (PFPL's) dataset averages so high at
    // loose bounds.
    return fill_field(d, [=](f64 u, f64 v, f64 w) {
      const f64 g = fractal_noise(u * 6, v * 3, w, seed, oct, 1.0, 0.4);
      const f64 x = g - 0.35;
      return x > 0 ? 5e-5 * x * x * (1.0 + 0.5 * w) : 0.0;
    });
  }
  const f64 rough = 0.30 + 0.05 * (field % 4);  // mostly smooth
  const f64 amp = 40.0 + 15.0 * (field % 5);
  const f64 offset = 240.0 + 10.0 * field;  // temperature-like
  return fill_field(d, [=](f64 u, f64 v, f64 w) {
    // Latitudinal trend (v is latitude), plus a vertical lapse (w level).
    const f64 trend = -std::cos(v * 3.14159265358979) * 0.8 - 0.6 * w;
    const f64 detail =
        fractal_noise(u * 8, v * 4, w * 2, seed, oct, 1.0, rough);
    return offset + amp * (trend + 0.15 * detail);
  });
}

/// HACC-like 1-D particle field. Particles are stored in simulation order:
/// halo by halo (halo finders and tree codes emit spatially grouped
/// chunks), so *nearby array entries are spatially correlated* — runs of a
/// few hundred particles share a halo — but the stream is not sorted and
/// halo-to-halo jumps are large. This is what makes real HACC hard but
/// not impossible for pointwise predictors (Table 3's low-but->1 CRs).
/// Velocity fields (field >= 3) are Gaussian with halo-dependent
/// dispersion.
std::vector<f32> gen_hacc(dims3 d, int field) {
  const std::size_t n = d.len();
  std::vector<f32> out(n);
  const u64 base_seed = 0xacc00000 + static_cast<u64>(field % 3);
  const bool velocity = field >= 3;
  const f64 box = 256.0;
  // ~512 particles per halo chunk; a diffuse 20% background is emitted as
  // interleaved chunks with box-scale spread.
  constexpr std::size_t chunk = 512;
  auto& pool = device::runtime::instance().pool();
  const std::size_t nchunks = n ? (n - 1) / chunk + 1 : 0;
  pool.parallel_for(nchunks, 8, [&](std::size_t clo, std::size_t chi) {
    for (std::size_t c = clo; c < chi; ++c) {
      rng r(base_seed * 1315423911ULL + c * 2654435761ULL);
      const u64 h = hash_coords(static_cast<i64>(c), 17, 23, base_seed);
      const bool background = (h & 0xff) < 26;  // ~10% of chunks
      const f64 center =
          box * (static_cast<f64>(hash_coords(static_cast<i64>(c), 3, 5,
                                              base_seed)) /
                 1.8446744073709552e19);
      const f64 radius = background ? box * 0.15
                                    : 0.15 + 0.6 * (static_cast<f64>(h % 97) /
                                                    97.0);
      const f64 dispersion = background ? 120.0 : 250.0 + (h % 400);
      const std::size_t lo = c * chunk;
      const std::size_t hi_i = std::min(n, lo + chunk);
      for (std::size_t i = lo; i < hi_i; ++i) {
        // ~8% of halo members sit in ejected substructure (splashback /
        // infalling clumps): heavy-tailed offsets that break blockwise
        // fixed-width encoders while bit-plane + entropy coders absorb
        // them — the mechanism behind PFPL's and Huffman's HACC lead
        // over cuSZp2 in Table 3.
        const bool ejected = !background && r.next_below(12) == 0;
        const f64 spread = ejected ? radius * 25.0 : radius;
        if (!velocity) {
          f64 pos = center + spread * r.normal();
          pos = pos - box * std::floor(pos / box);  // periodic wrap
          out[i] = static_cast<f32>(pos);
        } else {
          out[i] = static_cast<f32>(dispersion * (ejected ? 4.0 : 1.0) *
                                    r.normal());
        }
      }
    }
  });
  return out;
}

/// Hurricane-ISABEL-like field: translating vortex + multi-octave
/// turbulence. Field index picks variable class (wind / scalar) and
/// roughness.
std::vector<f32> gen_hurr(dims3 d, int field) {
  const u64 seed = 0x15abe100 + static_cast<u64>(field);
  const f64 rough = 0.38 + 0.04 * (field % 5);
  const f64 eye_u = 0.45 + 0.02 * (field % 3);
  const f64 eye_v = 0.55 - 0.02 * (field % 3);
  const bool wind = (field % 2) == 0;
  const int oct = octaves_for(12.0, d.x);
  return fill_field(d, [=](f64 u, f64 v, f64 w) {
    const f64 du = u - eye_u;
    const f64 dv = v - eye_v;
    const f64 rr = std::sqrt(du * du + dv * dv) + 1e-6;
    // Rankine-like vortex profile decaying with altitude.
    const f64 vort = 60.0 * (rr / 0.08) * std::exp(1.0 - rr / 0.08) *
                     (1.0 - 0.5 * w);
    const f64 turb =
        fractal_noise(u * 12, v * 12, w * 6, seed, oct, 1.0, rough);
    if (wind) {
      const f64 tangential = vort * (-dv / rr);
      return tangential + 2.5 * turb;
    }
    return 900.0 - 0.4 * vort + 8.0 * turb - 300.0 * w;
  });
}

/// Nyx-like field: log-normal "baryon density" with multi-scale structure
/// and several orders of magnitude of dynamic range (fields 0-2), or
/// smoother temperature/velocity fields (3-5).
std::vector<f32> gen_nyx(dims3 d, int field) {
  const u64 seed = 0x00ba5eed + static_cast<u64>(field);
  if (field < 3) {
    // Log-normal density: cosmic structure is void-dominated, with a few
    // filaments/halos carrying the dynamic range (10^4-10^5 in real Nyx
    // baryon density). At loose relative bounds almost everything
    // quantizes to zero — the regime behind the paper's Nyx 1e-2 column.
    const f64 contrast = 20.0 + 1.0 * field;
    const int oct = octaves_for(4.0, d.x);
    return fill_field(d, [=](f64 u, f64 v, f64 w) {
      const f64 g =
          fractal_noise(u * 4, v * 4, w * 4, seed, oct, 1.0, 0.5);
      // Shift so the median sits deep in the void regime: only the top
      // few percent of cells survive a 1e-2 relative quantization.
      return std::exp(contrast * (g - 0.3));
    });
  }
  const f64 rough = 0.35 + 0.05 * (field % 3);
  const int oct = octaves_for(5.0, d.x);
  return fill_field(d, [=](f64 u, f64 v, f64 w) {
    return 1e4 * fractal_noise(u * 5, v * 5, w * 5, seed, oct, 1.0, rough) +
           3e4;
  });
}

}  // namespace

bool fullscale_requested() {
  const char* env = std::getenv("FZMOD_FULLSCALE");
  return env != nullptr && env[0] == '1';
}

std::vector<dataset_desc> catalog(bool fullscale) {
  const dims3 cesm_paper{3600, 1800, 26};
  const dims3 hacc_paper{280953867, 1, 1};
  const dims3 hurr_paper{500, 500, 100};
  const dims3 nyx_paper{512, 512, 512};
  std::vector<dataset_desc> cat{
      {dataset_id::cesm, "CESM-ATM",
       fullscale ? cesm_paper : dims3{450, 225, 13}, cesm_paper, 33, 33,
       "climate simulation"},
      {dataset_id::hacc, "HACC",
       fullscale ? hacc_paper : dims3{2097152, 1, 1}, hacc_paper, 6, 6,
       "cosmology: particle"},
      {dataset_id::hurr, "HURR",
       fullscale ? hurr_paper : dims3{250, 250, 50}, hurr_paper, 20, 20,
       "hurricane simulation"},
      {dataset_id::nyx, "Nyx", fullscale ? nyx_paper : dims3{128, 128, 128},
       nyx_paper, 6, 6, "cosmology simulation"},
  };
  return cat;
}

dataset_desc describe(dataset_id id, bool fullscale) {
  for (auto& d : catalog(fullscale)) {
    if (d.id == id) return d;
  }
  throw error(status::invalid_argument, "unknown dataset id");
}

std::vector<f32> generate(const dataset_desc& ds, int field_idx) {
  FZMOD_REQUIRE(field_idx >= 0 && field_idx < ds.n_fields,
                status::invalid_argument, "field index out of range");
  switch (ds.id) {
    case dataset_id::cesm: return gen_cesm(ds.dims, field_idx);
    case dataset_id::hacc: return gen_hacc(ds.dims, field_idx);
    case dataset_id::hurr: return gen_hurr(ds.dims, field_idx);
    case dataset_id::nyx: return gen_nyx(ds.dims, field_idx);
  }
  throw error(status::internal, "unreachable dataset id");
}

}  // namespace fzmod::data
