#include "fzmod/data/io.hh"

#include <cstring>
#include <fstream>
#include <span>

#include "fzmod/common/error.hh"

namespace fzmod::data {

std::vector<u8> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  FZMOD_REQUIRE(f.good(), status::invalid_argument,
                "cannot open file: " + path);
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  std::vector<u8> bytes(size);
  f.read(reinterpret_cast<char*>(bytes.data()),
         static_cast<std::streamsize>(size));
  FZMOD_REQUIRE(f.good() || f.eof(), status::invalid_argument,
                "short read: " + path);
  return bytes;
}

void write_file(const std::string& path, std::span<const u8> bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  FZMOD_REQUIRE(f.good(), status::invalid_argument,
                "cannot create file: " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  FZMOD_REQUIRE(f.good(), status::invalid_argument,
                "short write: " + path);
}

std::vector<f32> load_f32_field(const std::string& path, dims3 dims) {
  const std::vector<u8> bytes = read_file(path);
  FZMOD_REQUIRE(bytes.size() == dims.len() * sizeof(f32),
                status::invalid_argument,
                "field size mismatch for " + path);
  std::vector<f32> values(dims.len());
  std::memcpy(values.data(), bytes.data(), bytes.size());
  return values;
}

void store_f32_field(const std::string& path, std::span<const f32> values) {
  write_file(path,
             {reinterpret_cast<const u8*>(values.data()),
              values.size() * sizeof(f32)});
}

}  // namespace fzmod::data
