// FZModules — declarative pipeline specs (docs/PIPELINES.md).
//
// The paper's pitch is *customizable* pipelines, but assembling one used
// to mean writing C++ against `pipeline_config`. A `pipeline_spec` is the
// same information as a compact, validated, printable description with
// two interchangeable surfaces:
//
//   - a one-line CLI grammar:  lorenzo+huffman(tier=double)+lz
//   - a JSON object:           {"predictor":"lorenzo","codec":"huffman",...}
//
// parse() auto-detects the surface (JSON starts with '{'), to_string()
// prints the canonical one-liner and parse(to_string(s)) == s — the
// round-trip identity the tests pin. Specs resolve against the module
// registry, so a user-registered module is addressable by name the moment
// it registers, and validation errors name the unknown token, its byte
// position, and the candidate module names.
//
// The spec deliberately excludes the error bound: a spec describes the
// *shape* of a pipeline (which modules, which execution knobs), while the
// bound is a per-invocation quantity — the same spec serves many bounds.
//
// `pipeline<T>::compress` embeds the canonical spec text in a trailing,
// digest-protected archive section, so any v2+ archive decompresses
// self-describingly with zero caller-side configuration (see
// archive_format.hh; v1 archives and older v2 archives without the
// section are unchanged and still readable).
#pragma once

#include <string>
#include <string_view>

#include "fzmod/core/config.hh"

namespace fzmod::spec {

/// The declarative pipeline description. Field-for-field the module/knob
/// subset of `core::pipeline_config` (everything except the error bound).
struct pipeline_spec {
  std::string preprocessor = core::preprocess_value_range;
  std::string predictor = core::predictor_lorenzo;
  std::string codec = core::codec_huffman;
  int radius = 512;
  kernels::histogram_kind histogram = kernels::histogram_kind::standard;
  bool secondary = false;
  device::kernel_tier_policy kernel_tier =
      device::kernel_tier_policy::auto_probe;
  encoders::huffman_tier huff_tier = encoders::huffman_tier::auto_select;

  bool operator==(const pipeline_spec&) const = default;
};

/// Parse either surface (leading '{' selects JSON, anything else the
/// one-line grammar). Stage names are classified against the f32 module
/// registry; errors are status::invalid_argument and carry the offending
/// token, its byte position, and candidate lists. The grammar:
///
///   spec  := stage ('+' stage)*
///   stage := name [ '(' key '=' value { ',' key '=' value } ')' ]
///   name  := [A-Za-z0-9_.-]+           (module name, or 'lz' = secondary)
///
/// Stage order is preprocessor? predictor codec, each at most once;
/// params: predictor takes radius=N and tier=auto|portable|vector, the
/// huffman codec takes tier=auto|canonical|single|double and
/// hist=standard|topk.
[[nodiscard]] pipeline_spec parse(std::string_view text);

/// Canonical one-line form: parse(to_string(s)) == s, and equal specs
/// print identically (the archive-embedded text is this form, so equal
/// configs produce byte-identical archives).
[[nodiscard]] std::string to_string(const pipeline_spec& s);

/// JSON form with every field explicit (stable key order).
[[nodiscard]] std::string to_json(const pipeline_spec& s);

/// Project a config onto its spec (drops the error bound).
[[nodiscard]] pipeline_spec from_config(const core::pipeline_config& cfg);

/// Materialize a config from a spec plus a per-invocation bound. Routes
/// through core::resolved(), so FZMOD_KERNEL_TIER / FZMOD_HUFF_TIER
/// apply to spec-built pipelines exactly as they do to the presets
/// (the env override wins, as everywhere else).
[[nodiscard]] core::pipeline_config to_config(const pipeline_spec& s,
                                              eb_config eb);

/// Check every module name against module_registry<T>; throws
/// status::unsupported naming the unknown module and listing candidates.
/// parse() already validates against the f32 registry — call this for
/// the other element type before constructing a pipeline<T> from a spec.
template <class T>
void validate(const pipeline_spec& s);

extern template void validate<f32>(const pipeline_spec&);
extern template void validate<f64>(const pipeline_spec&);

}  // namespace fzmod::spec
