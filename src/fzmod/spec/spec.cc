// FZModules — pipeline spec parsing, printing and resolution.
//
// Two parsers share one validation path: the one-line grammar carries
// byte positions through every error, the JSON surface names the key
// instead. Both classify stage names against the live f32 registry, so
// error messages list exactly the modules this process can build.

#include "fzmod/spec/spec.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <charconv>
#include <sstream>

#include "fzmod/core/registry.hh"

namespace fzmod::spec {

namespace {

using core::module_registry;

[[noreturn]] void fail(const std::string& msg) {
  throw error(status::invalid_argument, "pipeline spec: " + msg);
}

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out.empty() ? "(none)" : out;
}

/// The candidate listing appended to unknown-module errors.
std::string candidates() {
  auto& reg = module_registry<f32>::instance();
  return "; known preprocessors: " + join(reg.preprocessor_names()) +
         "; predictors: " + join(reg.predictor_names()) +
         "; codecs: " + join(reg.codec_names()) +
         "; plus 'lz' (secondary compression)";
}

[[noreturn]] void fail_unknown(const std::string& name, std::size_t pos) {
  fail("unknown module '" + name + "' at position " + std::to_string(pos) +
       candidates());
}

bool name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '-';
}

int parse_radius(std::string_view v, std::size_t pos) {
  int r = 0;
  const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), r);
  if (ec != std::errc{} || p != v.data() + v.size() || r < 2 || r > 16384) {
    fail("radius must be an integer in [2, 16384], got '" + std::string(v) +
         "' at position " + std::to_string(pos));
  }
  return r;
}

kernels::histogram_kind parse_hist(std::string_view v, std::size_t pos) {
  if (v == "standard") return kernels::histogram_kind::standard;
  if (v == "topk") return kernels::histogram_kind::topk;
  fail("hist must be standard|topk, got '" + std::string(v) +
       "' at position " + std::to_string(pos));
}

const char* hist_name(kernels::histogram_kind k) {
  return k == kernels::histogram_kind::topk ? "topk" : "standard";
}

struct stage_tok {
  std::string name;
  std::size_t pos = 0;  // byte offset of the name in the input
  std::vector<std::array<std::string, 2>> params;  // {key, value}
  std::vector<std::size_t> param_pos;              // offset of each key
};

/// Tokenize `text` into '+'-separated stages with optional (k=v,...)
/// parameter lists. Purely lexical — classification happens after.
std::vector<stage_tok> lex(std::string_view text) {
  std::vector<stage_tok> stages;
  std::size_t i = 0;
  const auto bad = [&](const std::string& what) {
    fail(what + " at position " + std::to_string(i) + " in '" +
         std::string(text) + "'");
  };
  while (true) {
    stage_tok st;
    st.pos = i;
    while (i < text.size() && name_char(text[i])) ++i;
    st.name.assign(text.substr(st.pos, i - st.pos));
    if (st.name.empty()) bad("expected a module name");
    if (i < text.size() && text[i] == '(') {
      ++i;
      while (true) {
        const std::size_t kpos = i;
        while (i < text.size() && name_char(text[i])) ++i;
        std::string key(text.substr(kpos, i - kpos));
        if (key.empty() || i >= text.size() || text[i] != '=') {
          bad("expected 'key=value' in parameter list");
        }
        ++i;  // '='
        const std::size_t vpos = i;
        while (i < text.size() && name_char(text[i])) ++i;
        std::string val(text.substr(vpos, i - vpos));
        if (val.empty()) bad("expected a parameter value");
        st.params.push_back({std::move(key), std::move(val)});
        st.param_pos.push_back(kpos);
        if (i < text.size() && text[i] == ',') {
          ++i;
          continue;
        }
        if (i < text.size() && text[i] == ')') {
          ++i;
          break;
        }
        bad("expected ',' or ')' in parameter list");
      }
    }
    stages.push_back(std::move(st));
    if (i == text.size()) break;
    if (text[i] != '+') bad("expected '+' between stages");
    ++i;  // '+'
    if (i == text.size()) bad("trailing '+'");
  }
  return stages;
}

pipeline_spec parse_grammar(std::string_view text) {
  auto& reg = module_registry<f32>::instance();
  pipeline_spec s;
  bool have_pre = false, have_pred = false, have_codec = false;
  const auto dup = [&](const stage_tok& st, const char* kind) {
    fail(std::string("duplicate ") + kind + " stage '" + st.name +
         "' at position " + std::to_string(st.pos));
  };
  const auto no_params = [&](const stage_tok& st) {
    if (!st.params.empty()) {
      fail("stage '" + st.name + "' takes no parameters (at position " +
           std::to_string(st.param_pos[0]) + ")");
    }
  };
  for (const auto& st : lex(text)) {
    if (s.secondary && st.name != "lz") {
      fail("stage '" + st.name + "' at position " + std::to_string(st.pos) +
           " comes after 'lz'; secondary compression is always last");
    }
    if (st.name == "lz") {
      if (s.secondary) dup(st, "lz");
      no_params(st);
      s.secondary = true;
    } else if (reg.has_preprocessor(st.name)) {
      if (have_pre) dup(st, "preprocessor");
      if (have_pred || have_codec) {
        fail("preprocessor '" + st.name + "' at position " +
             std::to_string(st.pos) + " must come before the predictor");
      }
      no_params(st);
      s.preprocessor = st.name;
      have_pre = true;
    } else if (reg.has_predictor(st.name)) {
      if (have_pred) dup(st, "predictor");
      if (have_codec) {
        fail("predictor '" + st.name + "' at position " +
             std::to_string(st.pos) + " must come before the codec");
      }
      s.predictor = st.name;
      have_pred = true;
      for (std::size_t k = 0; k < st.params.size(); ++k) {
        const auto& [key, val] = st.params[k];
        const std::size_t pos = st.param_pos[k];
        if (key == "radius") {
          s.radius = parse_radius(val, pos);
        } else if (key == "tier") {
          s.kernel_tier = device::parse_kernel_tier_policy(val);
        } else {
          fail("predictor parameter must be radius|tier, got '" + key +
               "' at position " + std::to_string(pos));
        }
      }
    } else if (reg.has_codec(st.name)) {
      if (have_codec) dup(st, "codec");
      s.codec = st.name;
      have_codec = true;
      for (std::size_t k = 0; k < st.params.size(); ++k) {
        const auto& [key, val] = st.params[k];
        const std::size_t pos = st.param_pos[k];
        if (key == "tier") {
          s.huff_tier = encoders::parse_huffman_tier(val);
        } else if (key == "hist") {
          s.histogram = parse_hist(val, pos);
        } else {
          fail("codec parameter must be tier|hist, got '" + key +
               "' at position " + std::to_string(pos));
        }
      }
    } else {
      fail_unknown(st.name, st.pos);
    }
  }
  return s;
}

// ---- minimal JSON surface ------------------------------------------------
//
// A flat object of known keys with string / integer / boolean values is
// all the spec needs; a full JSON library would be a dependency for no
// expressive power. Strictly validating: unknown keys, duplicate keys,
// trailing garbage and malformed literals all throw.

struct json_cursor {
  std::string_view text;
  std::size_t i = 0;

  void skip_ws() {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  }
  [[noreturn]] void bad(const std::string& what) {
    fail(what + " at position " + std::to_string(i) + " in JSON spec");
  }
  char peek() {
    skip_ws();
    if (i >= text.size()) bad("unexpected end of input");
    return text[i];
  }
  void expect(char c) {
    if (peek() != c) bad(std::string("expected '") + c + "'");
    ++i;
  }
  std::string string_lit() {
    expect('"');
    std::string out;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') bad("escape sequences are not supported");
      out += text[i++];
    }
    if (i >= text.size()) bad("unterminated string");
    ++i;  // closing quote
    return out;
  }
};

pipeline_spec parse_json(std::string_view text) {
  auto& reg = module_registry<f32>::instance();
  pipeline_spec s;
  json_cursor c{text};
  c.expect('{');
  std::vector<std::string> seen;
  if (c.peek() != '}') {
    while (true) {
      const std::size_t key_pos = c.i;
      std::string key = c.string_lit();
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
        fail("duplicate key \"" + key + "\" at position " +
             std::to_string(key_pos) + " in JSON spec");
      }
      seen.push_back(key);
      c.expect(':');
      if (key == "preprocessor" || key == "predictor" || key == "codec" ||
          key == "histogram" || key == "kernel_tier" || key == "huff_tier") {
        const std::size_t vpos = c.i;
        const std::string v = c.string_lit();
        if (key == "preprocessor") {
          s.preprocessor = v;
        } else if (key == "predictor") {
          s.predictor = v;
        } else if (key == "codec") {
          s.codec = v;
        } else if (key == "histogram") {
          s.histogram = parse_hist(v, vpos);
        } else if (key == "kernel_tier") {
          s.kernel_tier = device::parse_kernel_tier_policy(v);
        } else {
          s.huff_tier = encoders::parse_huffman_tier(v);
        }
      } else if (key == "radius") {
        c.skip_ws();
        const std::size_t vpos = c.i;
        while (c.i < c.text.size() &&
               (std::isdigit(static_cast<unsigned char>(c.text[c.i])) ||
                c.text[c.i] == '-')) {
          ++c.i;
        }
        s.radius = parse_radius(c.text.substr(vpos, c.i - vpos), vpos);
      } else if (key == "secondary") {
        c.skip_ws();
        if (c.text.substr(c.i, 4) == "true") {
          s.secondary = true;
          c.i += 4;
        } else if (c.text.substr(c.i, 5) == "false") {
          s.secondary = false;
          c.i += 5;
        } else {
          c.bad("\"secondary\" must be true or false");
        }
      } else {
        fail("unknown key \"" + key + "\" at position " +
             std::to_string(key_pos) +
             " in JSON spec (expected preprocessor|predictor|codec|radius|"
             "histogram|secondary|kernel_tier|huff_tier)");
      }
      if (c.peek() == ',') {
        ++c.i;
        continue;
      }
      break;
    }
  }
  c.expect('}');
  c.skip_ws();
  if (c.i != text.size()) c.bad("trailing characters after JSON object");

  // Same module resolution as the grammar path (positions are key-level).
  if (!reg.has_preprocessor(s.preprocessor)) {
    fail("unknown preprocessor '" + s.preprocessor + "'" + candidates());
  }
  if (!reg.has_predictor(s.predictor)) {
    fail("unknown predictor '" + s.predictor + "'" + candidates());
  }
  if (!reg.has_codec(s.codec)) {
    fail("unknown codec '" + s.codec + "'" + candidates());
  }
  return s;
}

}  // namespace

pipeline_spec parse(std::string_view text) {
  std::size_t b = 0;
  while (b < text.size() &&
         std::isspace(static_cast<unsigned char>(text[b]))) {
    ++b;
  }
  if (b == text.size()) fail("empty spec");
  std::size_t e = text.size();
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) {
    --e;
  }
  if (text[b] == '{') return parse_json(text.substr(b));
  return parse_grammar(text.substr(b, e - b));
}

std::string to_string(const pipeline_spec& s) {
  std::string out;
  if (s.preprocessor != core::preprocess_value_range) {
    out += s.preprocessor;
    out += '+';
  }
  out += s.predictor;
  {
    std::string params;
    if (s.radius != 512) params += "radius=" + std::to_string(s.radius);
    if (s.kernel_tier != device::kernel_tier_policy::auto_probe) {
      if (!params.empty()) params += ',';
      params += std::string("tier=") + device::to_string(s.kernel_tier);
    }
    if (!params.empty()) out += '(' + params + ')';
  }
  out += '+';
  out += s.codec;
  {
    std::string params;
    if (s.huff_tier != encoders::huffman_tier::auto_select) {
      params += std::string("tier=") + encoders::to_string(s.huff_tier);
    }
    if (s.histogram != kernels::histogram_kind::standard) {
      if (!params.empty()) params += ',';
      params += std::string("hist=") + hist_name(s.histogram);
    }
    if (!params.empty()) out += '(' + params + ')';
  }
  if (s.secondary) out += "+lz";
  return out;
}

std::string to_json(const pipeline_spec& s) {
  std::ostringstream o;
  o << "{\"preprocessor\":\"" << s.preprocessor << "\",\"predictor\":\""
    << s.predictor << "\",\"codec\":\"" << s.codec
    << "\",\"radius\":" << s.radius << ",\"histogram\":\""
    << hist_name(s.histogram) << "\",\"secondary\":"
    << (s.secondary ? "true" : "false") << ",\"kernel_tier\":\""
    << device::to_string(s.kernel_tier) << "\",\"huff_tier\":\""
    << encoders::to_string(s.huff_tier) << "\"}";
  return o.str();
}

pipeline_spec from_config(const core::pipeline_config& cfg) {
  pipeline_spec s;
  s.preprocessor = cfg.preprocessor;
  s.predictor = cfg.predictor;
  s.codec = cfg.codec;
  s.radius = cfg.radius;
  s.histogram = cfg.histogram;
  s.secondary = cfg.secondary;
  s.kernel_tier = cfg.kernel_tier;
  s.huff_tier = cfg.huff_tier;
  return s;
}

core::pipeline_config to_config(const pipeline_spec& s, eb_config eb) {
  core::pipeline_config cfg;
  cfg.eb = eb;
  cfg.preprocessor = s.preprocessor;
  cfg.predictor = s.predictor;
  cfg.codec = s.codec;
  cfg.radius = s.radius;
  cfg.histogram = s.histogram;
  cfg.secondary = s.secondary;
  cfg.kernel_tier = s.kernel_tier;
  cfg.huff_tier = s.huff_tier;
  return core::resolved(std::move(cfg));
}

template <class T>
void validate(const pipeline_spec& s) {
  auto& reg = module_registry<T>::instance();
  const char* type = sizeof(T) == 4 ? "f32" : "f64";
  if (!reg.has_preprocessor(s.preprocessor)) {
    throw error(status::unsupported,
                "pipeline spec: no " + std::string(type) +
                    " preprocessor named '" + s.preprocessor + "'" +
                    candidates());
  }
  if (!reg.has_predictor(s.predictor)) {
    throw error(status::unsupported,
                "pipeline spec: no " + std::string(type) +
                    " predictor named '" + s.predictor + "'" + candidates());
  }
  if (!reg.has_codec(s.codec)) {
    throw error(status::unsupported, "pipeline spec: no " +
                                         std::string(type) +
                                         " codec named '" + s.codec + "'" +
                                         candidates());
  }
}

template void validate<f32>(const pipeline_spec&);
template void validate<f64>(const pipeline_spec&);

}  // namespace fzmod::spec
