// FZModules — serving daemon implementation (see daemon.hh for the wire
// format). POSIX-only socket plumbing; the protocol handler itself is
// platform-neutral and unit-tested directly.

#include "fzmod/serve/daemon.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace fzmod::serve {

namespace {

template <class T>
bool take(std::span<const u8>& in, T& out) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(&out, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return true;
}

void put_bytes(std::vector<u8>& out, const void* p, std::size_t n) {
  const u8* b = static_cast<const u8*>(p);
  out.insert(out.end(), b, b + n);
}

std::vector<u8> status_body(u8 status, std::string_view text) {
  std::vector<u8> body;
  body.reserve(1 + text.size());
  body.push_back(status);
  put_bytes(body, text.data(), text.size());
  return body;
}

}  // namespace

std::vector<u8> handle_request_body(server& srv, std::span<const u8> body,
                                    bool& want_shutdown) {
  u8 op = 0, tenant_len = 0;
  if (!take(body, op) || !take(body, tenant_len) ||
      body.size() < tenant_len) {
    return status_body(static_cast<u8>(reject_reason::bad_request),
                       "truncated frame header");
  }
  request r;
  r.tenant.assign(reinterpret_cast<const char*>(body.data()), tenant_len);
  body = body.subspan(tenant_len);

  switch (op) {
    case op_ping:
      return status_body(wire_ok, "");
    case op_shutdown:
      want_shutdown = true;
      return status_body(wire_ok, "");
    case op_compress_spec: {
      u16 spec_len = 0;
      if (!take(body, spec_len) || body.size() < spec_len) {
        return status_body(static_cast<u8>(reject_reason::bad_request),
                           "compress frame: truncated pipeline spec");
      }
      r.spec.assign(reinterpret_cast<const char*>(body.data()), spec_len);
      body = body.subspan(spec_len);
      [[fallthrough]];  // the rest of the frame is a plain compress
    }
    case op_compress: {
      u64 x = 0, y = 0, z = 0;
      if (!take(body, x) || !take(body, y) || !take(body, z)) {
        return status_body(static_cast<u8>(reject_reason::bad_request),
                           "compress frame: truncated dims");
      }
      r.kind = request::op::compress;
      r.dims = dims3{static_cast<std::size_t>(x),
                     static_cast<std::size_t>(y),
                     static_cast<std::size_t>(z)};
      if (r.dims.len_invalid() || body.size() != r.dims.len() * sizeof(f32)) {
        return status_body(static_cast<u8>(reject_reason::bad_request),
                           "compress frame: payload does not match dims");
      }
      r.data.resize(r.dims.len());
      std::memcpy(r.data.data(), body.data(), body.size());
      break;
    }
    case op_decompress: {
      if (body.empty()) {
        return status_body(static_cast<u8>(reject_reason::bad_request),
                           "decompress frame: empty archive");
      }
      r.kind = request::op::decompress;
      r.archive.assign(body.begin(), body.end());
      break;
    }
    default:
      return status_body(static_cast<u8>(reject_reason::bad_request),
                         "unknown op");
  }

  response resp = srv.execute(std::move(r));
  if (!resp.ok) {
    if (resp.reason != reject_reason::none) {
      // The server's detail text (e.g. a spec parse error with the
      // offending token) beats the generic reason name when it has one.
      return status_body(static_cast<u8>(resp.reason),
                         resp.error.empty() ? to_string(resp.reason)
                                            : resp.error);
    }
    return status_body(wire_error, resp.error);
  }
  std::vector<u8> out;
  if (op == op_compress || op == op_compress_spec) {
    out.reserve(1 + resp.archive.size());
    out.push_back(wire_ok);
    put_bytes(out, resp.archive.data(), resp.archive.size());
  } else {
    out.reserve(1 + resp.data.size() * sizeof(f32));
    out.push_back(wire_ok);
    put_bytes(out, resp.data.data(), resp.data.size() * sizeof(f32));
  }
  return out;
}

#ifndef _WIN32

namespace {

bool read_exact(int fd, void* buf, std::size_t n) {
  u8* p = static_cast<u8*>(buf);
  while (n) {
    const ssize_t got = ::read(fd, p, n);
    if (got == 0) return false;  // clean EOF
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const u8* p = static_cast<const u8*>(buf);
  while (n) {
    const ssize_t put = ::write(fd, p, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

/// One framed request/response exchange. Returns false when the
/// connection should close (EOF, protocol violation, write failure).
bool serve_one_frame(server& srv, int in_fd, int out_fd,
                     bool& want_shutdown) {
  u64 body_len = 0;
  if (!read_exact(in_fd, &body_len, sizeof(body_len))) return false;
  if (body_len == 0 || body_len > max_frame_bytes) {
    std::fprintf(stderr, "fzmod serve: dropping connection: frame of %llu"
                         " bytes exceeds the %llu-byte cap\n",
                 static_cast<unsigned long long>(body_len),
                 static_cast<unsigned long long>(max_frame_bytes));
    return false;
  }
  std::vector<u8> body(static_cast<std::size_t>(body_len));
  if (!read_exact(in_fd, body.data(), body.size())) return false;
  const std::vector<u8> out = handle_request_body(srv, body, want_shutdown);
  const u64 out_len = out.size();
  if (!write_all(out_fd, &out_len, sizeof(out_len))) return false;
  if (!write_all(out_fd, out.data(), out.size())) return false;
  return !want_shutdown;
}

int run_stdio(server& srv) {
  bool want_shutdown = false;
  while (serve_one_frame(srv, 0, 1, want_shutdown)) {
  }
  srv.stop();
  return 0;
}

int run_socket(server& srv, const std::string& path) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("fzmod serve: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "fzmod serve: socket path too long: %s\n",
                 path.c_str());
    ::close(listen_fd);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 16) < 0) {
    std::perror("fzmod serve: bind/listen");
    ::close(listen_fd);
    return 1;
  }
  std::fprintf(stderr, "fzmod serve: listening on %s\n", path.c_str());

  std::mutex conn_mu;
  std::vector<int> open_conns;
  std::atomic<bool> stopping{false};

  std::vector<std::thread> conns;
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by the shutdown path below
    }
    if (stopping.load()) {
      ::close(fd);
      break;
    }
    {
      std::lock_guard lk(conn_mu);
      open_conns.push_back(fd);
    }
    conns.emplace_back([&, fd] {
      bool want_shutdown = false;
      while (serve_one_frame(srv, fd, fd, want_shutdown)) {
      }
      ::close(fd);
      if (want_shutdown && !stopping.exchange(true)) {
        // Unblock accept() and poke every open connection so their
        // threads observe the closed socket and join promptly.
        ::shutdown(listen_fd, SHUT_RDWR);
        std::lock_guard lk(conn_mu);
        for (const int c : open_conns) {
          if (c != fd) ::shutdown(c, SHUT_RDWR);
        }
      }
    });
  }
  for (auto& t : conns) t.join();
  ::close(listen_fd);
  ::unlink(path.c_str());
  srv.stop();
  std::fprintf(stderr, "fzmod serve: shut down cleanly\n");
  return 0;
}

}  // namespace

int run_daemon(const daemon_options& opt) {
  server srv(opt.cfg, opt.server);
  if (opt.warm_dims.x && !opt.warm_dims.len_invalid()) {
    srv.warm(opt.warm_dims);
  }
  if (opt.socket_path.empty()) return run_stdio(srv);
  return run_socket(srv, opt.socket_path);
}

#else  // _WIN32: no AF_UNIX plumbing; the serving API itself is portable.

int run_daemon(const daemon_options&) {
  std::fprintf(stderr, "fzmod serve: daemon mode requires POSIX sockets\n");
  return 1;
}

#endif

}  // namespace fzmod::serve
