// FZModules — concurrent serving layer (docs/SERVING.md).
//
// A single `core::pipeline<T>` is deliberately not thread-safe: its stage
// scratch is retained in members so steady-state requests run at zero
// allocations, and its busy-flag guard turns accidental sharing into an
// immediate error. Production traffic (ROADMAP north star) needs many
// compress/decompress requests in flight at once, which this layer
// provides without giving up the zero-allocation contract:
//
//   - `pipeline_pool<T>` keeps a set of pre-warmed pipelines resident.
//     Checkout/checkin is an RAII `lease`; each pooled pipeline retains
//     its scratch (and its blocks in the runtime's caching allocator)
//     across requests, so a warm pool serves steady-state requests with
//     zero runtime allocations per op — the PR 1 contract, now concurrent.
//
//   - `server` puts a bounded, admission-controlled request queue in
//     front of the pool: configurable depth (`FZMOD_SERVE_QUEUE`),
//     per-request deadlines (`FZMOD_SERVE_DEADLINE_MS`), and
//     reject-with-reason when the queue is full, the deadline has passed,
//     or the server is shutting down. Scheduling across tenants (named
//     fields / users sharing the device runtime) is fair: one FIFO per
//     tenant, served round-robin, so one tenant's flood cannot starve
//     another's trickle.
//
//   - Small compress requests (at most `batch_elems` elements) that are
//     queued together and share a shape are coalesced into ONE
//     `core::chunked_pipeline` run — the same amortization FZ-GPU and
//     cuSZ make for batching kernel work. Each request becomes exactly
//     one chunk of the combined field, so the demuxed per-chunk archives
//     are byte-identical to compressing each request individually
//     (chunk archives are standalone v2 archives; a relative bound
//     resolves against the chunk's own value range, which IS the
//     request's data).
//
// Everything is observable through the trace subsystem: per-request
// "serve" spans, `serve.queue.depth` occupancy samples, and cumulative
// `serve.admitted` / `serve.rejected` / `serve.batched` counters
// (docs/OBSERVABILITY.md).
#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fzmod/core/pipeline.hh"

namespace fzmod::serve {

// ---------------------------------------------------------------------------
// Pipeline pool

/// Pool sizing. Zero means "resolve from the environment, then fall back
/// to the default": FZMOD_SERVE_POOL caps resident pipelines (default 4),
/// FZMOD_SERVE_WARM pre-constructs that many at pool creation (default 1,
/// clamped to the cap).
struct pool_options {
  std::size_t cap = 0;
  std::size_t warm = 0;

  [[nodiscard]] std::size_t resolve_cap() const;
  [[nodiscard]] std::size_t resolve_warm() const;
};

/// Process-wide count of leases that outlived their pool (a served
/// request holding a pipeline past server shutdown is a bug; the pool
/// detects it instead of crashing). Monotonic; tests read deltas.
[[nodiscard]] u64 pool_leaked_leases();

template <class T>
class pipeline_pool {
 public:
  /// Construct with the pipeline configuration every pooled instance
  /// shares. Resolves module names eagerly for the warm set, so a bad
  /// config throws here rather than on first checkout.
  explicit pipeline_pool(core::pipeline_config cfg, pool_options opt = {});

  /// Destruction detects leaked leases (outstanding checkouts) rather
  /// than blocking on them: the shared state keeps their pipelines alive
  /// until the lease drops, and `pool_leaked_leases()` counts them.
  ~pipeline_pool();

  pipeline_pool(const pipeline_pool&) = delete;
  pipeline_pool& operator=(const pipeline_pool&) = delete;

  struct state;  // shared with leases so a lease can outlive the pool

  /// RAII checkout: holds exclusive use of one pooled pipeline, returns
  /// it on destruction. Movable; a moved-from lease is empty.
  class lease {
   public:
    lease() = default;
    lease(lease&&) noexcept = default;
    lease& operator=(lease&& other) noexcept {
      if (this != &other) {
        release();
        st_ = std::move(other.st_);
        p_ = std::move(other.p_);
      }
      return *this;
    }
    ~lease() { release(); }

    [[nodiscard]] core::pipeline<T>& operator*() const { return *p_; }
    [[nodiscard]] core::pipeline<T>* operator->() const { return p_.get(); }
    [[nodiscard]] explicit operator bool() const { return p_ != nullptr; }

   private:
    friend class pipeline_pool;
    lease(std::shared_ptr<state> st, std::unique_ptr<core::pipeline<T>> p)
        : st_(std::move(st)), p_(std::move(p)) {}
    void release();

    std::shared_ptr<state> st_;
    std::unique_ptr<core::pipeline<T>> p_;
  };

  /// Check out a pipeline: reuse an idle one, lazily construct while the
  /// pool is below its cap, otherwise block until a lease returns.
  /// Throws status::invalid_argument after the pool is destroyed.
  [[nodiscard]] lease acquire();

  /// Non-blocking acquire: empty optional when the pool is at its cap
  /// with every pipeline checked out.
  [[nodiscard]] std::optional<lease> try_acquire();

  /// Run one synthetic compress+decompress of shape `dims` on every idle
  /// pipeline, populating its retained scratch and the caching allocator
  /// so the first real requests already hit warm paths.
  void warm_up(dims3 dims);

  struct stats_snapshot {
    u64 created = 0;       ///< pipelines constructed over the pool's life
    u64 reuses = 0;        ///< checkouts served by an idle pipeline
    u64 outstanding = 0;   ///< leases currently held
    u64 peak_outstanding = 0;
  };
  [[nodiscard]] stats_snapshot stats() const;

  [[nodiscard]] std::size_t capacity() const;

  [[nodiscard]] const core::pipeline_config& config() const;

 private:
  std::shared_ptr<state> st_;
};

// ---------------------------------------------------------------------------
// Server: admission-controlled request queue over the pool

/// Why a request was not served. `none` on success.
enum class reject_reason : u8 {
  none = 0,
  queue_full,   ///< bounded queue at FZMOD_SERVE_QUEUE depth
  deadline,     ///< expired in the queue before a worker picked it up
  shutdown,     ///< server stopping; no new admissions
  bad_request,  ///< malformed (size/dims mismatch, empty archive)
};
[[nodiscard]] const char* to_string(reject_reason r);

struct request {
  enum class op : u8 { compress, decompress };
  op kind = op::compress;
  /// Admission is FIFO within a tenant and round-robin across tenants;
  /// "" is the default tenant.
  std::string tenant;
  std::vector<f32> data;     ///< compress payload (owned)
  dims3 dims;                ///< compress shape; data.size() must match
  std::vector<u8> archive;   ///< decompress payload (owned)
  /// Optional per-request pipeline spec (docs/PIPELINES.md grammar or
  /// JSON) for compress: overrides the server's configured stages while
  /// keeping its error bound. A malformed or unknown-module spec is a
  /// bad_request whose response carries the parse error. Decompression
  /// never needs one — archives are self-describing.
  std::string spec;
  /// Per-request deadline override in ms from submission; 0 uses the
  /// server default (which may be "none").
  u64 deadline_ms = 0;
};

struct response {
  bool ok = false;
  reject_reason reason = reject_reason::none;
  std::string error;         ///< exception text when execution failed
  std::vector<u8> archive;   ///< compress result
  std::vector<f32> data;     ///< decompress result
  f64 queue_ms = 0;          ///< admission -> worker pickup
  f64 exec_ms = 0;           ///< pipeline execution
  bool batched = false;      ///< served by a coalesced chunked run
  u64 order = 0;             ///< global completion sequence number
};

/// Serving knobs. Zero means "resolve from the environment, then fall
/// back to the default" (all FZMOD_SERVE_* variables parse through the
/// strict common::env_u64 path — garbage throws, docs/SERVING.md):
///   queue_depth  FZMOD_SERVE_QUEUE        default 64
///   deadline_ms  FZMOD_SERVE_DEADLINE_MS  default 0 (no deadline)
///   batch_elems  FZMOD_SERVE_BATCH        default 65536 elements
///   batch_max    FZMOD_SERVE_BATCH_MAX    default 8 requests (1 disables
///                                         batching)
///   workers      FZMOD_SERVE_WORKERS      default 2
struct server_options {
  pool_options pool;
  std::size_t queue_depth = 0;
  u64 deadline_ms = 0;
  std::size_t batch_elems = 0;
  std::size_t batch_max = 0;
  unsigned workers = 0;

  [[nodiscard]] std::size_t resolve_queue_depth() const;
  [[nodiscard]] u64 resolve_deadline_ms() const;
  [[nodiscard]] std::size_t resolve_batch_elems() const;
  [[nodiscard]] std::size_t resolve_batch_max() const;
  [[nodiscard]] unsigned resolve_workers() const;
};

/// The serving front end: N worker threads drain the admission queue
/// through a pipeline_pool. The payload type is f32 — the type every
/// SDRBench field and the wire protocol use; decompression accepts any
/// archive version (v3 containers route through the chunked driver).
class server {
 public:
  explicit server(core::pipeline_config cfg, server_options opt = {});
  /// Stops admissions, drains queued work, joins the workers.
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Admission control happens here, synchronously: a rejected request's
  /// future is already satisfied when submit returns. Admitted requests
  /// complete when a worker serves them.
  [[nodiscard]] std::future<response> submit(request r);

  /// Convenience for closed-loop callers: submit and wait.
  [[nodiscard]] response execute(request r) { return submit(std::move(r)).get(); }

  /// Stop admitting, serve everything already queued, then park the
  /// workers. Idempotent; the destructor calls it.
  void stop();

  /// Deterministic pre-warm for requests of shape `d`: grows the pool to
  /// its cap and runs a synthetic compress+decompress on every pipeline,
  /// then — with the whole pool still checked out — replicates the
  /// worst-case coalesced-batch load (`workers` concurrent chunked runs
  /// of `batch_max` stacked requests). After this, the caching allocator
  /// holds at least the peak block demand any admissible traffic of this
  /// shape can create, so steady-state serving runs at zero runtime
  /// allocations per op. Call before taking traffic; requests submitted
  /// concurrently just queue behind it.
  void warm(dims3 d);

  struct stats_snapshot {
    u64 admitted = 0;
    u64 rejected_full = 0;
    u64 rejected_deadline = 0;
    u64 rejected_shutdown = 0;
    u64 rejected_bad = 0;
    u64 completed = 0;      ///< requests answered (served or failed)
    u64 batched = 0;        ///< requests served via a coalesced run
    u64 batches = 0;        ///< coalesced runs executed
    u64 spec_requests = 0;  ///< compresses served with a per-request spec
    u64 queue_depth = 0;    ///< currently queued
    u64 peak_depth = 0;
  };
  [[nodiscard]] stats_snapshot stats() const;

  [[nodiscard]] pipeline_pool<f32>& pool();
  [[nodiscard]] const core::pipeline_config& config() const;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace fzmod::serve
