// FZModules — serving layer implementation. See serve.hh for the model
// and docs/SERVING.md for the operational guide.

#include "fzmod/serve/serve.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "fzmod/common/env.hh"
#include "fzmod/core/chunked.hh"
#include "fzmod/spec/spec.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod::serve {

namespace {
std::atomic<u64> g_leaked_leases{0};
}  // namespace

u64 pool_leaked_leases() { return g_leaked_leases.load(); }

const char* to_string(reject_reason r) {
  switch (r) {
    case reject_reason::none: return "none";
    case reject_reason::queue_full: return "queue_full";
    case reject_reason::deadline: return "deadline";
    case reject_reason::shutdown: return "shutdown";
    case reject_reason::bad_request: return "bad_request";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// pool_options / server_options resolution (strict env path: a malformed
// FZMOD_SERVE_* value throws naming the variable, common/env.hh semantics)

std::size_t pool_options::resolve_cap() const {
  const u64 c = cap ? cap : common::env_u64("FZMOD_SERVE_POOL", 4);
  return static_cast<std::size_t>(std::max<u64>(1, std::min<u64>(c, 256)));
}

std::size_t pool_options::resolve_warm() const {
  const u64 w = warm ? warm : common::env_u64("FZMOD_SERVE_WARM", 1);
  return static_cast<std::size_t>(std::min<u64>(w, resolve_cap()));
}

std::size_t server_options::resolve_queue_depth() const {
  const u64 d = queue_depth ? queue_depth
                            : common::env_u64("FZMOD_SERVE_QUEUE", 64);
  return static_cast<std::size_t>(std::max<u64>(1, d));
}

u64 server_options::resolve_deadline_ms() const {
  return deadline_ms ? deadline_ms
                     : common::env_u64("FZMOD_SERVE_DEADLINE_MS", 0);
}

std::size_t server_options::resolve_batch_elems() const {
  const u64 b = batch_elems ? batch_elems
                            : common::env_u64("FZMOD_SERVE_BATCH", 65536);
  return static_cast<std::size_t>(b);
}

std::size_t server_options::resolve_batch_max() const {
  const u64 m = batch_max ? batch_max
                          : common::env_u64("FZMOD_SERVE_BATCH_MAX", 8);
  return static_cast<std::size_t>(std::max<u64>(1, m));
}

unsigned server_options::resolve_workers() const {
  const u64 w = workers ? workers
                        : common::env_u64("FZMOD_SERVE_WORKERS", 2);
  return static_cast<unsigned>(std::max<u64>(1, std::min<u64>(w, 64)));
}

// ---------------------------------------------------------------------------
// pipeline_pool

template <class T>
struct pipeline_pool<T>::state {
  std::mutex mu;
  std::condition_variable cv;
  core::pipeline_config cfg;
  std::size_t cap = 1;
  bool closed = false;
  std::vector<std::unique_ptr<core::pipeline<T>>> idle;
  u64 created = 0;
  u64 reuses = 0;
  u64 outstanding = 0;
  u64 peak_outstanding = 0;
};

template <class T>
pipeline_pool<T>::pipeline_pool(core::pipeline_config cfg, pool_options opt)
    : st_(std::make_shared<state>()) {
  st_->cfg = std::move(cfg);
  st_->cap = opt.resolve_cap();
  const std::size_t warm = opt.resolve_warm();
  for (std::size_t i = 0; i < warm; ++i) {
    st_->idle.push_back(std::make_unique<core::pipeline<T>>(st_->cfg));
    ++st_->created;
  }
}

template <class T>
pipeline_pool<T>::~pipeline_pool() {
  u64 leaked = 0;
  {
    std::lock_guard lk(st_->mu);
    st_->closed = true;
    leaked = st_->outstanding;  // leases now orphaned: counted here, once
  }
  if (leaked) {
    g_leaked_leases.fetch_add(leaked, std::memory_order_relaxed);
    trace::instant("serve", "pool.leaked", 0, static_cast<f64>(leaked));
  }
  st_->cv.notify_all();
}

template <class T>
void pipeline_pool<T>::lease::release() {
  if (!p_) return;
  std::unique_ptr<core::pipeline<T>> p = std::move(p_);
  std::shared_ptr<state> st = std::move(st_);
  std::lock_guard lk(st->mu);
  --st->outstanding;
  // A checkin after the pool died was already counted as leaked by the
  // pool destructor; the pipeline just gets destroyed instead of reused.
  if (!st->closed) {
    st->idle.push_back(std::move(p));
    st->cv.notify_one();
  }
}

template <class T>
typename pipeline_pool<T>::lease pipeline_pool<T>::acquire() {
  std::unique_lock lk(st_->mu);
  for (;;) {
    FZMOD_REQUIRE(!st_->closed, status::invalid_argument,
                  "pipeline_pool: acquire after close");
    if (!st_->idle.empty()) {
      auto p = std::move(st_->idle.back());
      st_->idle.pop_back();
      ++st_->reuses;
      st_->peak_outstanding =
          std::max(st_->peak_outstanding, ++st_->outstanding);
      return lease(st_, std::move(p));
    }
    if (st_->created < st_->cap) {
      ++st_->created;
      st_->peak_outstanding =
          std::max(st_->peak_outstanding, ++st_->outstanding);
      // Construction is cheap (module-name resolution) but need not hold
      // the pool lock; on failure the slot is returned.
      lk.unlock();
      std::unique_ptr<core::pipeline<T>> p;
      try {
        p = std::make_unique<core::pipeline<T>>(st_->cfg);
      } catch (...) {
        std::lock_guard lg(st_->mu);
        --st_->created;
        --st_->outstanding;
        st_->cv.notify_one();
        throw;
      }
      return lease(st_, std::move(p));
    }
    st_->cv.wait(lk);
  }
}

template <class T>
std::optional<typename pipeline_pool<T>::lease> pipeline_pool<T>::try_acquire() {
  {
    std::lock_guard lk(st_->mu);
    FZMOD_REQUIRE(!st_->closed, status::invalid_argument,
                  "pipeline_pool: acquire after close");
    if (st_->idle.empty() && st_->created >= st_->cap) return std::nullopt;
  }
  return acquire();  // an idle pipeline or headroom existed; may block only
                     // on the rare race, which acquire resolves correctly
}

template <class T>
void pipeline_pool<T>::warm_up(dims3 dims) {
  FZMOD_REQUIRE(!dims.len_invalid(), status::invalid_argument,
                "pipeline_pool: warm_up dims invalid");
  std::vector<std::unique_ptr<core::pipeline<T>>> taken;
  {
    std::lock_guard lk(st_->mu);
    taken.swap(st_->idle);
  }
  std::vector<T> field(dims.len());
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = static_cast<T>(std::sin(0.05 * static_cast<f64>(i % 977)));
  }
  for (auto& p : taken) {
    const std::vector<u8> arch = p->compress(std::span<const T>(field), dims);
    (void)p->decompress(arch);
  }
  {
    std::lock_guard lk(st_->mu);
    for (auto& p : taken) st_->idle.push_back(std::move(p));
  }
  st_->cv.notify_all();
}

template <class T>
typename pipeline_pool<T>::stats_snapshot pipeline_pool<T>::stats() const {
  std::lock_guard lk(st_->mu);
  stats_snapshot s;
  s.created = st_->created;
  s.reuses = st_->reuses;
  s.outstanding = st_->outstanding;
  s.peak_outstanding = st_->peak_outstanding;
  return s;
}

template <class T>
const core::pipeline_config& pipeline_pool<T>::config() const {
  return st_->cfg;
}

template <class T>
std::size_t pipeline_pool<T>::capacity() const {
  return st_->cap;
}

template class pipeline_pool<f32>;
template class pipeline_pool<f64>;

// ---------------------------------------------------------------------------
// server

namespace {

using clock = std::chrono::steady_clock;

struct queued_item {
  request req;
  std::promise<response> prom;
  clock::time_point enqueued;
  clock::time_point deadline;  // time_point::max() when none
  // Per-request spec, resolved at admission so malformed specs are
  // rejected synchronously and workers never parse.
  bool has_spec = false;
  std::string spec_key;        // canonical spec text (pool map key)
  core::pipeline_config cfg;   // meaningful only when has_spec
};

f64 ms_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration<f64, std::milli>(b - a).count();
}

}  // namespace

struct server::impl {
  core::pipeline_config cfg;
  pipeline_pool<f32> pool;
  std::size_t queue_depth_cap;
  u64 default_deadline_ms;
  std::size_t batch_elems;
  std::size_t batch_max;
  unsigned nworkers;

  std::mutex mu;
  std::condition_variable cv;
  bool stopping = false;
  // One FIFO per tenant, served round-robin: rr holds the tenants that
  // currently have queued work, in service order.
  std::map<std::string, std::deque<queued_item>> queues;
  std::deque<std::string> rr;
  std::size_t depth = 0;

  // Cumulative counters (atomics so stats() never contends the queue).
  std::atomic<u64> admitted{0};
  std::atomic<u64> rejected_full{0};
  std::atomic<u64> rejected_deadline{0};
  std::atomic<u64> rejected_shutdown{0};
  std::atomic<u64> rejected_bad{0};
  std::atomic<u64> completed{0};
  std::atomic<u64> batched{0};
  std::atomic<u64> batches{0};
  std::atomic<u64> spec_requests{0};
  std::atomic<u64> peak_depth{0};
  std::atomic<u64> completion_order{0};

  std::vector<std::thread> workers;

  // Spec-carrying requests get a pipeline pool per canonical spec, built
  // lazily: the spec names the stages, the server's eb/radius knobs carry
  // over. Pools live for the server's lifetime so repeated specs reuse
  // warm pipelines.
  std::mutex spec_mu;
  std::map<std::string, std::unique_ptr<pipeline_pool<f32>>> spec_pools;
  pool_options pool_opt;

  explicit impl(core::pipeline_config c, const server_options& opt)
      : cfg(std::move(c)),
        pool(cfg, opt.pool),
        queue_depth_cap(opt.resolve_queue_depth()),
        default_deadline_ms(opt.resolve_deadline_ms()),
        batch_elems(opt.resolve_batch_elems()),
        batch_max(opt.resolve_batch_max()),
        nworkers(opt.resolve_workers()),
        pool_opt(opt.pool) {
    workers.reserve(nworkers);
    for (unsigned w = 0; w < nworkers; ++w) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  ~impl() {
    stop();
    for (auto& t : workers) t.join();
  }

  void stop() {
    {
      std::lock_guard lk(mu);
      stopping = true;
    }
    cv.notify_all();
  }

  /// See server::warm. Holding every pool lease while the synthetic batch
  /// runs execute makes the allocator pressure here an upper bound on any
  /// later admissible traffic of this shape: at most `cap` pooled
  /// pipelines and `nworkers` coalesced runs can ever be live at once.
  void warm(dims3 d) {
    FZMOD_REQUIRE(!d.len_invalid(), status::invalid_argument,
                  "server: warm dims invalid");
    std::vector<f32> field(d.len());
    for (std::size_t i = 0; i < field.size(); ++i) {
      field[i] =
          static_cast<f32>(std::sin(0.05 * static_cast<f64>(i % 977)));
    }
    std::vector<typename pipeline_pool<f32>::lease> leases;
    for (std::size_t i = 0; i < pool.capacity(); ++i) {
      leases.push_back(pool.acquire());
      const auto archive =
          leases.back()->compress(std::span<const f32>(field), d);
      (void)leases.back()->decompress(archive);
    }
    if (batch_max > 1 && d.len() <= batch_elems) {
      const std::size_t k = batch_max;
      dims3 combined = d;
      switch (d.rank()) {
        case 3: combined.z *= k; break;
        case 2: combined.y *= k; break;
        default: combined.x *= k; break;
      }
      if (!combined.len_invalid()) {
        std::vector<std::thread> runs;
        for (unsigned w = 0; w < nworkers; ++w) {
          runs.emplace_back([&] {
            core::chunked_options copt;
            copt.chunk_elems = d.len();
            copt.jobs = static_cast<unsigned>(
                std::min<std::size_t>(k, pool.capacity() + 1));
            core::chunked_pipeline<f32> pipe(cfg, copt);
            pipe.compress_stream(
                [&](f32* dst, u64 elem_offset, std::size_t n) {
                  while (n) {
                    const std::size_t at = elem_offset % d.len();
                    const std::size_t take = std::min(n, d.len() - at);
                    std::copy_n(field.data() + at, take, dst);
                    dst += take;
                    elem_offset += take;
                    n -= take;
                  }
                },
                combined, [](std::span<const u8>) {});
          });
        }
        for (auto& t : runs) t.join();
      }
    }
  }

  void count_reject(reject_reason r) {
    switch (r) {
      case reject_reason::queue_full: ++rejected_full; break;
      case reject_reason::deadline: ++rejected_deadline; break;
      case reject_reason::shutdown: ++rejected_shutdown; break;
      case reject_reason::bad_request: ++rejected_bad; break;
      case reject_reason::none: break;
    }
    trace::counter("serve.rejected",
                   static_cast<f64>(rejected_full + rejected_deadline +
                                    rejected_shutdown + rejected_bad));
  }

  void finish(queued_item& it, response&& resp) {
    resp.order = ++completion_order;
    ++completed;
    it.prom.set_value(std::move(resp));
  }

  void reject(queued_item& it, reject_reason r,
              const std::string& detail = "") {
    count_reject(r);
    response resp;
    resp.ok = false;
    resp.reason = r;
    resp.error = detail.empty() ? to_string(r) : detail;
    finish(it, std::move(resp));
  }

  std::future<response> submit(request r) {
    queued_item it;
    it.prom = std::promise<response>();
    std::future<response> fut = it.prom.get_future();
    it.enqueued = clock::now();
    const u64 dl = r.deadline_ms ? r.deadline_ms : default_deadline_ms;
    it.deadline = dl ? it.enqueued + std::chrono::milliseconds(dl)
                     : clock::time_point::max();

    const bool valid =
        r.kind == request::op::compress
            ? (!r.dims.len_invalid() && r.data.size() == r.dims.len())
            : !r.archive.empty();
    it.req = std::move(r);
    if (!valid) {
      reject(it, reject_reason::bad_request);
      return fut;
    }
    if (it.req.kind == request::op::compress && !it.req.spec.empty()) {
      // Resolve the spec at admission: malformed specs answer
      // synchronously with the parse error, and workers never parse.
      try {
        const auto sp = spec::parse(it.req.spec);
        spec::validate<f32>(sp);
        it.cfg = spec::to_config(sp, cfg.eb);
        it.spec_key = spec::to_string(sp);
        it.has_spec = true;
      } catch (const error& e) {
        reject(it, reject_reason::bad_request, e.what());
        return fut;
      }
      ++spec_requests;
    }
    {
      std::lock_guard lk(mu);
      if (stopping) {
        reject(it, reject_reason::shutdown);
        return fut;
      }
      if (depth >= queue_depth_cap) {
        reject(it, reject_reason::queue_full);
        return fut;
      }
      const std::string tenant = it.req.tenant;
      auto& q = queues[tenant];
      if (q.empty()) rr.push_back(tenant);
      q.push_back(std::move(it));
      ++depth;
      u64 pk = peak_depth.load(std::memory_order_relaxed);
      while (depth > pk &&
             !peak_depth.compare_exchange_weak(pk, depth)) {
      }
      ++admitted;
      trace::counter("serve.admitted", static_cast<f64>(admitted.load()));
      trace::counter("serve.queue.depth", static_cast<f64>(depth));
    }
    cv.notify_one();
    return fut;
  }

  /// Pop the next item in tenant-fair order. Caller holds the lock and
  /// guarantees depth > 0.
  queued_item pop_next() {
    const std::string tenant = rr.front();
    rr.pop_front();
    auto& q = queues[tenant];
    queued_item it = std::move(q.front());
    q.pop_front();
    if (q.empty()) {
      queues.erase(tenant);
    } else {
      rr.push_back(tenant);
    }
    --depth;
    trace::counter("serve.queue.depth", static_cast<f64>(depth));
    return it;
  }

  [[nodiscard]] bool batchable(const queued_item& it, dims3 d) const {
    // Spec-carrying requests are never coalesced: a batch runs one config.
    return it.req.kind == request::op::compress && !it.has_spec &&
           it.req.dims == d && it.req.data.size() <= batch_elems;
  }

  /// The lazily-built pool for one canonical spec. Same sizing knobs as
  /// the main pool.
  pipeline_pool<f32>& spec_pool(const std::string& key,
                                const core::pipeline_config& scfg) {
    std::lock_guard lk(spec_mu);
    auto it = spec_pools.find(key);
    if (it == spec_pools.end()) {
      it = spec_pools
               .emplace(key,
                        std::make_unique<pipeline_pool<f32>>(scfg, pool_opt))
               .first;
    }
    return *it->second;
  }

  /// Gather further same-shaped small compress requests for a coalesced
  /// run. Only queue fronts are popped (per-tenant FIFO holds) and at
  /// most one per tenant per sweep (fairness holds). Expired fronts are
  /// rejected on the spot. Caller holds the lock.
  std::vector<queued_item> gather_batch(dims3 d, clock::time_point now,
                                        std::vector<queued_item>& expired) {
    std::vector<queued_item> more;
    bool progress = true;
    while (more.size() + 1 < batch_max && progress) {
      progress = false;
      for (std::size_t i = 0;
           i < rr.size() && more.size() + 1 < batch_max;) {
        auto& q = queues[rr[i]];
        if (!q.empty() && batchable(q.front(), d)) {
          queued_item it = std::move(q.front());
          q.pop_front();
          --depth;
          progress = true;
          if (now > it.deadline) {
            expired.push_back(std::move(it));
          } else {
            more.push_back(std::move(it));
          }
          if (q.empty()) {
            queues.erase(rr[i]);
            rr.erase(rr.begin() + static_cast<std::ptrdiff_t>(i));
            continue;  // same index now names the next tenant
          }
        }
        ++i;
      }
    }
    if (!more.empty() || !expired.empty()) {
      trace::counter("serve.queue.depth", static_cast<f64>(depth));
    }
    return more;
  }

  void worker_loop() {
    for (;;) {
      std::vector<queued_item> batch;
      std::vector<queued_item> expired;
      queued_item head;
      {
        std::unique_lock lk(mu);
        cv.wait(lk, [&] { return stopping || depth > 0; });
        if (depth == 0) return;  // stopping and drained
        head = pop_next();
        const clock::time_point now = clock::now();
        if (now > head.deadline) {
          lk.unlock();
          reject(head, reject_reason::deadline);
          continue;
        }
        if (batch_max > 1 && batchable(head, head.req.dims)) {
          batch = gather_batch(head.req.dims, now, expired);
        }
      }
      for (auto& it : expired) reject(it, reject_reason::deadline);
      if (batch.empty()) {
        serve_single(head);
      } else {
        batch.insert(batch.begin(), std::move(head));
        serve_batch(batch);
      }
      cv.notify_one();  // a batch may have freed queue slots for others
    }
  }

  void serve_single(queued_item& it) {
    const clock::time_point picked = clock::now();
    response resp;
    resp.queue_ms = ms_between(it.enqueued, picked);
    const u64 t0 = trace::enabled() ? trace::now_ns() : 0;
    const bool is_compress = it.req.kind == request::op::compress;
    try {
      if (is_compress && it.has_spec) {
        auto lease = spec_pool(it.spec_key, it.cfg).acquire();
        resp.archive = lease->compress(
            std::span<const f32>(it.req.data), it.req.dims);
      } else if (is_compress) {
        auto lease = pool.acquire();
        resp.archive = lease->compress(
            std::span<const f32>(it.req.data), it.req.dims);
      } else if (core::fmt::is_chunk_container(it.req.archive)) {
        // v3 containers carry their own parallel decode path; pooled
        // pipelines only speak v1/v2.
        core::chunked_pipeline<f32> pipe(cfg);
        resp.data = pipe.decompress(it.req.archive);
      } else {
        auto lease = pool.acquire();
        resp.data = lease->decompress(it.req.archive);
      }
      resp.ok = true;
    } catch (const std::exception& e) {
      resp.ok = false;
      resp.error = e.what();
    }
    resp.exec_ms = ms_between(picked, clock::now());
    if (t0) {
      trace::complete("serve", is_compress ? "compress" : "decompress", t0,
                      trace::now_ns() - t0, 0,
                      static_cast<f64>(is_compress ? it.req.data.size()
                                                   : it.req.archive.size()));
    }
    finish(it, std::move(resp));
  }

  /// One coalesced chunked_pipeline run over K same-shaped requests: the
  /// requests stack along the slowest-varying axis and chunk_elems is one
  /// request's length, so chunk k IS request k and the demuxed per-chunk
  /// archive is byte-identical to an individual compress.
  void serve_batch(std::vector<queued_item>& items) {
    const clock::time_point picked = clock::now();
    const dims3 d = items[0].req.dims;
    const std::size_t k = items.size();
    dims3 combined = d;
    switch (d.rank()) {
      case 3: combined.z *= k; break;
      case 2: combined.y *= k; break;
      default: combined.x *= k; break;
    }
    if (combined.len_invalid()) {
      // Absurdly large coalition (can only happen with a huge batch_elems
      // knob); serve individually rather than fail.
      for (auto& it : items) serve_single(it);
      return;
    }
    const u64 t0 = trace::enabled() ? trace::now_ns() : 0;
    const std::size_t per = d.len();
    try {
      core::chunked_options copt;
      copt.chunk_elems = per;
      copt.jobs = static_cast<unsigned>(
          std::min<std::size_t>(k, pool.stats().created + 1));
      core::chunked_pipeline<f32> pipe(cfg, copt);
      std::vector<u8> container;
      pipe.compress_stream(
          [&](f32* dst, u64 elem_offset, std::size_t n) {
            // Chunk pulls are whole requests by construction, but copy
            // generally so a future planner change cannot corrupt data.
            while (n) {
              const std::size_t ri = elem_offset / per;
              const std::size_t at = elem_offset % per;
              const std::size_t take = std::min(n, per - at);
              std::copy_n(items[ri].req.data.data() + at, take, dst);
              dst += take;
              elem_offset += take;
              n -= take;
            }
          },
          combined,
          [&](std::span<const u8> bytes) {
            container.insert(container.end(), bytes.begin(), bytes.end());
          });

      const core::fmt::chunk_container_view cv =
          core::fmt::parse_chunk_container(container);
      FZMOD_REQUIRE(cv.entries.size() == k, status::internal,
                    "serve: batch produced a different chunk count");
      // Count the batch before fulfilling any promise: a client that has
      // already seen a batched=true response must also see it in stats().
      batched += k;
      ++batches;
      trace::counter("serve.batched", static_cast<f64>(batched.load()));
      for (std::size_t i = 0; i < k; ++i) {
        const std::span<const u8> ab =
            core::fmt::chunk_archive(cv, cv.entries[i]);
        response resp;
        resp.ok = true;
        resp.batched = true;
        resp.archive.assign(ab.begin(), ab.end());
        resp.queue_ms = ms_between(items[i].enqueued, picked);
        resp.exec_ms = ms_between(picked, clock::now());
        finish(items[i], std::move(resp));
      }
    } catch (const std::exception& e) {
      for (auto& it : items) {
        response resp;
        resp.ok = false;
        resp.batched = true;
        resp.error = e.what();
        resp.queue_ms = ms_between(it.enqueued, picked);
        resp.exec_ms = ms_between(picked, clock::now());
        finish(it, std::move(resp));
      }
    }
    if (t0) {
      trace::complete("serve", "batch", t0, trace::now_ns() - t0, 0,
                      static_cast<f64>(k));
    }
  }
};

server::server(core::pipeline_config cfg, server_options opt)
    : impl_(std::make_unique<impl>(std::move(cfg), opt)) {}

server::~server() = default;

std::future<response> server::submit(request r) {
  return impl_->submit(std::move(r));
}

void server::stop() { impl_->stop(); }

void server::warm(dims3 d) { impl_->warm(d); }

server::stats_snapshot server::stats() const {
  stats_snapshot s;
  s.admitted = impl_->admitted.load();
  s.rejected_full = impl_->rejected_full.load();
  s.rejected_deadline = impl_->rejected_deadline.load();
  s.rejected_shutdown = impl_->rejected_shutdown.load();
  s.rejected_bad = impl_->rejected_bad.load();
  s.completed = impl_->completed.load();
  s.batched = impl_->batched.load();
  s.batches = impl_->batches.load();
  s.spec_requests = impl_->spec_requests.load();
  {
    std::lock_guard lk(impl_->mu);
    s.queue_depth = impl_->depth;
  }
  s.peak_depth = impl_->peak_depth.load();
  return s;
}

pipeline_pool<f32>& server::pool() { return impl_->pool; }

const core::pipeline_config& server::config() const { return impl_->cfg; }

}  // namespace fzmod::serve
