// FZModules — long-running serving daemon: the `fzmod serve` CLI mode.
//
// Speaks a minimal length-prefixed binary protocol over either a Unix
// domain socket (many concurrent client connections, one in-flight
// request per connection) or the process's stdin/stdout (single client,
// e.g. driven by a supervisor through a pipe pair). Every request funnels
// into one `serve::server`, so admission control, tenant fairness and
// small-request batching apply across all connections.
//
// Wire format (little-endian; full spec + a worked example in
// docs/SERVING.md):
//
//   request  = [u64 body_len][u8 op][u8 tenant_len][tenant bytes][...]
//     op 1 compress   : [u64 x][u64 y][u64 z][x*y*z f32 payload]
//     op 2 decompress : [archive bytes]
//     op 3 ping       : (empty)
//     op 4 shutdown   : (empty) — drain, respond, exit cleanly
//     op 5 compress with pipeline spec (protocol extension; older daemons
//          answer it with a bad_request, older clients never send it):
//          [u16 spec_len][spec bytes][u64 x][u64 y][u64 z][payload]
//          where spec is a docs/PIPELINES.md pipeline description
//
//   response = [u64 body_len][u8 status][payload]
//     status 0 = ok (payload: archive / raw f32 / empty)
//     status 1..4 = serve::reject_reason (payload: reason text — for a
//                   bad_request with detail, e.g. a malformed spec, the
//                   text is the parse error itself)
//     status 5 = execution error (payload: error text)
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fzmod/serve/serve.hh"

namespace fzmod::serve {

inline constexpr u8 op_compress = 1;
inline constexpr u8 op_decompress = 2;
inline constexpr u8 op_ping = 3;
inline constexpr u8 op_shutdown = 4;
inline constexpr u8 op_compress_spec = 5;  ///< v2 extension (PIPELINES.md)

inline constexpr u8 wire_ok = 0;
inline constexpr u8 wire_error = 5;  ///< 1..4 mirror reject_reason

/// Frames above this are a protocol violation (or an attack) and close
/// the connection — the daemon must not size an allocation from an
/// untrusted length without a cap.
inline constexpr u64 max_frame_bytes = u64{1} << 30;

struct daemon_options {
  std::string socket_path;  ///< AF_UNIX path; empty = stdin/stdout framing
  core::pipeline_config cfg;
  server_options server;
  dims3 warm_dims{0, 0, 0};  ///< nonzero: warm the pool at startup
};

/// Serve until a shutdown frame (or EOF in stdio mode). Returns a process
/// exit code. Blocks the calling thread for the daemon's lifetime.
int run_daemon(const daemon_options& opt);

/// Handle one decoded request body (everything after the length prefix)
/// and produce the response body (status byte + payload). Sets
/// `want_shutdown` on an op_shutdown frame. Exposed for tests — the
/// socket plumbing is untestable in-process, the protocol itself is not.
[[nodiscard]] std::vector<u8> handle_request_body(
    server& srv, std::span<const u8> body, bool& want_shutdown);

}  // namespace fzmod::serve
