// FZModules — canonical Huffman codec for quantization codes.
//
// This is the high-ratio primary lossless codec (cuSZ's Huffman stage). The
// paper's FZMod-Default and FZMod-Quality pipelines run it on the CPU
// ("CPU-based Huffman encoding due to low GPU performance of Huffman
// encoders", §3.3), so the API here is host-side: the pipeline pays an
// explicit D2H transfer for the code stream first, exactly like the hybrid
// design in the paper.
//
// Properties:
//  - canonical, length-limited codes (max 24 bits) built from the
//    histogram module's output, so codebook transmission is just one code
//    length per symbol;
//  - coarse-grained chunking (8192 symbols): chunks encode and decode
//    independently in parallel, mirroring cuSZ's coarse-grained GPU
//    Huffman layout;
//  - fully self-contained archive blob (header + lengths + chunk offsets +
//    bitstream), validated on decode.
#pragma once

#include <span>
#include <vector>

#include "fzmod/common/types.hh"

namespace fzmod::encoders {

inline constexpr u32 huffman_max_code_len = 24;
inline constexpr std::size_t huffman_chunk = 8192;

/// Canonical codebook: assignment of (code, length) per symbol.
struct huffman_codebook {
  std::vector<u32> code;  // canonical code value, MSB-first semantics
  std::vector<u8> len;    // 0 = symbol absent

  /// Build length-limited canonical codes from symbol frequencies.
  /// Throws on an all-zero histogram.
  static huffman_codebook build(std::span<const u32> freq);

  /// Average code length in bits under `freq` (the entropy-coder's
  /// achieved rate; used by tests and the ablation bench).
  [[nodiscard]] f64 expected_bits(std::span<const u32> freq) const;
};

/// Encode `codes` (symbols < nbins) given their histogram. Returns a
/// self-contained blob.
[[nodiscard]] std::vector<u8> huffman_encode(std::span<const u16> codes,
                                             std::span<const u32> hist);

/// Decode a blob produced by huffman_encode. Returns the symbol count
/// decoded into `out` (out must be presized to the original count, which
/// callers know from the pipeline header).
void huffman_decode(std::span<const u8> blob, std::span<u16> out);

/// Number of symbols stored in a blob (for callers sizing `out`).
[[nodiscard]] u64 huffman_decoded_count(std::span<const u8> blob);

}  // namespace fzmod::encoders
