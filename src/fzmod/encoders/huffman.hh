// FZModules — canonical Huffman codec for quantization codes.
//
// This is the high-ratio primary lossless codec (cuSZ's Huffman stage). The
// paper's FZMod-Default and FZMod-Quality pipelines run it on the CPU
// ("CPU-based Huffman encoding due to low GPU performance of Huffman
// encoders", §3.3), so the API here is host-side: the pipeline pays an
// explicit D2H transfer for the code stream first, exactly like the hybrid
// design in the paper.
//
// Properties:
//  - canonical, length-limited codes (max 24 bits) built from the
//    histogram module's output, so codebook transmission is just one code
//    length per symbol;
//  - coarse-grained chunking (8192 symbols): chunks encode and decode
//    independently in parallel, mirroring cuSZ's coarse-grained GPU
//    Huffman layout;
//  - fully self-contained archive blob (header + lengths + chunk offsets +
//    bitstream), validated on decode.
#pragma once

#include <span>
#include <vector>

#include "fzmod/common/types.hh"

namespace fzmod::encoders {

inline constexpr u32 huffman_max_code_len = 24;
inline constexpr std::size_t huffman_chunk = 8192;

/// Canonical codebook: assignment of (code, length) per symbol.
struct huffman_codebook {
  std::vector<u32> code;  // canonical code value, MSB-first semantics
  std::vector<u8> len;    // 0 = symbol absent

  /// Build length-limited canonical codes from symbol frequencies.
  /// Throws on an all-zero histogram.
  static huffman_codebook build(std::span<const u32> freq);

  /// Average code length in bits under `freq` (the entropy-coder's
  /// achieved rate; used by tests and the ablation bench).
  [[nodiscard]] f64 expected_bits(std::span<const u32> freq) const;
};

/// Encode `codes` (symbols < nbins) given their histogram. Returns a
/// self-contained blob.
[[nodiscard]] std::vector<u8> huffman_encode(std::span<const u16> codes,
                                             std::span<const u32> hist);

// ---- decoder tiers ------------------------------------------------------
//
// The decode fast path is a family of table-cached decoders over one
// 64-bit bit-reservoir reader (common/bits.hh), the rapidgzip playbook:
//
//  - `canonical`      the seed per-symbol canonical walk (reference tier
//                     and fallback for pathological codebooks);
//  - `single_cached`  one LUT[peek(max_len)] lookup resolves any symbol
//                     (requires max code length <= huffman_single_table_bits);
//  - `double_cached`  one LUT[peek(12)] lookup resolves up to TWO short
//                     codes at once; codes longer than the table fall back
//                     to the canonical walk per miss.
//
// The variant is selected **per 8192-symbol chunk** by
// `huffman_select_tier` from the codebook's maximum code length and the
// chunk's achieved bits/symbol (chunks encode independently, so their bit
// densities differ). `FZMOD_HUFF_TIER=auto|canonical|single|double`
// forces a tier process-wide; the explicit-tier overload forces it per
// call (benches and tests). The wire format is unchanged — every blob,
// including pre-existing archives, decodes through any tier.

enum class huffman_tier : u8 {
  canonical = 0,
  single_cached = 1,
  double_cached = 2,
  auto_select = 255,
};

[[nodiscard]] const char* to_string(huffman_tier t);

/// Parse a tier name ("auto"|"canonical"|"single"|"double" — the
/// FZMOD_HUFF_TIER values). Throws invalid_argument on anything else so
/// typos fail loudly instead of silently decoding in the wrong tier.
[[nodiscard]] huffman_tier parse_huffman_tier(std::string_view v);

/// LUT width caps: `single` builds 2^max_len entries (so max_len must be
/// small); `double` always builds 2^12 entries and uses the canonical
/// walk for codes that don't fit.
inline constexpr u32 huffman_single_table_bits = 14;
inline constexpr u32 huffman_double_table_bits = 12;

/// Per-chunk tier choice from the codebook's maximum code length and the
/// chunk's achieved average code length (chunk payload bits / symbols).
/// Pure — unit-tested directly.
[[nodiscard]] huffman_tier huffman_select_tier(u32 max_code_len,
                                               f64 chunk_avg_bits);

/// Cumulative count of chunks decoded by each tier (process-wide).
/// Tests read deltas; while tracing each decode also publishes them as
/// `huffman.chunks.<tier>` counter samples.
struct huffman_tier_counts {
  u64 canonical = 0;
  u64 single_cached = 0;
  u64 double_cached = 0;
};
[[nodiscard]] huffman_tier_counts huffman_tier_totals();

/// Decode a blob produced by huffman_encode into `out` (presized to the
/// original count, which callers know from the pipeline header). The
/// 2-arg form selects the decoder tier per chunk (or honours
/// FZMOD_HUFF_TIER); the 3-arg form forces one tier for every chunk —
/// a forced tier the codebook cannot support falls back to `canonical`.
void huffman_decode(std::span<const u8> blob, std::span<u16> out);
void huffman_decode(std::span<const u8> blob, std::span<u16> out,
                    huffman_tier tier);

/// Number of symbols stored in a blob (for callers sizing `out`).
/// Validates the full blob structure — magic, alphabet size, chunk table
/// extent and monotonic offsets, payload extent — so a truncated or
/// forged blob throws `status::corrupt_archive` here instead of returning
/// a count that reads past the span downstream.
[[nodiscard]] u64 huffman_decoded_count(std::span<const u8> blob);

}  // namespace fzmod::encoders
