// FZModules — FZ-GPU's bitshuffle + dictionary lossless encoder
// (Zhang et al., HPDC'23), adapted as a modular FZModules codec.
//
// Stage shape:
//   1. re-centre + zigzag the quantization codes so magnitudes are small;
//   2. bitshuffle tiles into bit-plane order (kernels/bitshuffle.hh) — the
//      high planes become all-zero machine words;
//   3. dictionary stage: a bitmap marks nonzero u32 words, only nonzero
//      words are stored.
//
// The whole codec is device-resident — this is the encoder FZMod-Speed
// swaps in to avoid the D2H transfer + CPU Huffman of FZMod-Default.
// It trades compression ratio for throughput (paper §3.2: "very extreme
// compression metrics").
#pragma once

#include "fzmod/device/runtime.hh"

namespace fzmod::encoders {

/// Encoded representation, device-resident. `payload` holds the bitmap
/// followed by the compacted nonzero words; only the first
/// `bitmap_words + packed_words` entries are meaningful.
struct fzg_result {
  device::buffer<u32> payload;
  u64 n_codes = 0;       // original symbol count
  u64 bitmap_words = 0;  // ceil(plane_words / 32)
  u64 packed_words = 0;  // nonzero plane words stored
  int radius = 0;

  [[nodiscard]] u64 payload_words() const {
    return bitmap_words + packed_words;
  }
  [[nodiscard]] u64 bytes() const { return payload_words() * sizeof(u32); }
};

/// Encode a device code stream. Complete after `s.sync()`.
void fzg_encode_async(const device::buffer<u16>& codes, int radius,
                      fzg_result& out, device::stream& s);

/// Decode back into a presized device code buffer.
void fzg_decode_async(const fzg_result& enc, device::buffer<u16>& codes,
                      device::stream& s);

/// Lower-level entry points operating on already-centred (small-magnitude)
/// u16 symbols — the fused FZ-GPU baseline performs its own re-centring
/// inside its prediction kernel and shares the shuffle+dictionary core
/// through these.
void fzg_pack_async(const device::buffer<u16>& symbols, fzg_result& out,
                    device::stream& s);
void fzg_unpack_async(const fzg_result& enc, device::buffer<u16>& symbols,
                      device::stream& s);

}  // namespace fzmod::encoders
