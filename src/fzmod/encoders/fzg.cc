#include "fzmod/encoders/fzg.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "fzmod/common/bits.hh"
#include "fzmod/kernels/bitshuffle.hh"

namespace fzmod::encoders {
namespace {

/// Re-centre a code around the radius and zigzag it; the outlier sentinel
/// (0) maps to 0 so it stays maximally sparse. Bijective on [0, 2*radius).
[[nodiscard]] inline u16 recentre(u16 code, int radius) {
  if (code == 0) return 0;
  return static_cast<u16>(
      zigzag_encode(static_cast<i32>(code) - radius) + 1);
}

[[nodiscard]] inline u16 uncentre(u16 t, int radius) {
  if (t == 0) return 0;
  return static_cast<u16>(zigzag_decode(static_cast<u32>(t) - 1) + radius);
}

}  // namespace

void fzg_pack_async(const device::buffer<u16>& symbols, fzg_result& out,
                    device::stream& s) {
  symbols.assert_space(device::space::device);
  const std::size_t n = symbols.size();
  const std::size_t plane_words = kernels::bitshuffle_words(n);
  const std::size_t bitmap_words = (plane_words + 31) / 32;

  out.n_codes = n;
  out.bitmap_words = bitmap_words;
  out.payload = device::buffer<u32>(bitmap_words + plane_words,
                                    device::space::device);

  auto planes = std::make_shared<device::buffer<u32>>(plane_words,
                                                      device::space::device);

  // 1. Bit-plane transpose.
  kernels::bitshuffle_fwd_async(symbols, *planes, s);

  // 2. Dictionary: bitmap of nonzero words + compaction. Runs as one
  // stream op with an internal count/scan/write, the same structure the
  // fused FZ-GPU kernel uses across thread blocks.
  const u32* pw = planes->data();
  u32* payload = out.payload.data();
  fzg_result* res = &out;
  s.enqueue([pw, payload, plane_words, bitmap_words, res, planes] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    // Block size is a multiple of 32, so no two blocks share a bitmap
    // word and the |= below is race-free.
    const std::size_t block = rt.default_block();
    const std::size_t nblocks =
        plane_words ? (plane_words + block - 1) / block : 0;
    std::fill(payload, payload + bitmap_words, 0u);
    std::vector<u64> counts(nblocks, 0);
    // Pass A: bitmap + per-block nonzero counts.
    rt.pool().parallel_for(nblocks, 1,
                           [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t b = blo; b < bhi; ++b) {
        u64 c = 0;
        const std::size_t end = std::min(plane_words, (b + 1) * block);
        for (std::size_t w = b * block; w < end; ++w) {
          if (pw[w]) {
            payload[w >> 5] |= u32{1} << (w & 31);
            ++c;
          }
        }
        counts[b] = c;
      }
    });
    u64 acc = 0;
    for (auto& c : counts) {
      const u64 t = c;
      c = acc;
      acc += t;
    }
    res->packed_words = acc;
    // Pass B: compact nonzero words after the bitmap.
    u32* packed = payload + bitmap_words;
    rt.pool().parallel_for(nblocks, 1,
                           [&](std::size_t blo, std::size_t bhi) {
      for (std::size_t b = blo; b < bhi; ++b) {
        u64 pos = counts[b];
        const std::size_t end = std::min(plane_words, (b + 1) * block);
        for (std::size_t w = b * block; w < end; ++w) {
          if (pw[w]) packed[pos++] = pw[w];
        }
      }
    });
  });
}

void fzg_unpack_async(const fzg_result& enc, device::buffer<u16>& symbols,
                      device::stream& s) {
  symbols.assert_space(device::space::device);
  enc.payload.assert_space(device::space::device);
  const std::size_t n = enc.n_codes;
  FZMOD_REQUIRE(symbols.size() >= n, status::invalid_argument,
                "fzg: output buffer too small");
  const std::size_t plane_words = kernels::bitshuffle_words(n);
  FZMOD_REQUIRE(enc.bitmap_words == (plane_words + 31) / 32,
                status::corrupt_archive, "fzg: bitmap size mismatch");

  auto planes = std::make_shared<device::buffer<u32>>(plane_words,
                                                      device::space::device);

  // 1. Expand the dictionary: popcount-scan the bitmap for offsets, then
  // scatter packed words back to their plane positions.
  const u32* payload = enc.payload.data();
  const u64 bitmap_words = enc.bitmap_words;
  const u64 packed_words = enc.packed_words;
  u32* pw = planes->data();
  s.enqueue([payload, bitmap_words, packed_words, pw, plane_words, planes] {
    auto& rt = device::runtime::instance();
    rt.stats().kernels_launched += 1;
    // Exclusive popcount scan over bitmap words (small, sequential).
    std::vector<u64> offset(bitmap_words + 1, 0);
    for (u64 b = 0; b < bitmap_words; ++b) {
      offset[b + 1] = offset[b] + std::popcount(payload[b]);
    }
    FZMOD_REQUIRE(offset[bitmap_words] == packed_words,
                  status::corrupt_archive,
                  "fzg: bitmap/payload population mismatch");
    const u32* packed = payload + bitmap_words;
    rt.pool().parallel_for(
        bitmap_words, 1u << 12, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t b = lo; b < hi; ++b) {
            u32 bits = payload[b];
            u64 pos = offset[b];
            const std::size_t base = b << 5;
            const std::size_t gend = std::min(plane_words, base + 32);
            for (std::size_t w = base; w < gend; ++w) pw[w] = 0;
            while (bits) {
              const std::size_t w = base + std::countr_zero(bits);
              pw[w] = packed[pos++];
              bits &= bits - 1;
            }
          }
        });
  });

  // 2. Inverse transpose into the symbol stream. The trailing no-op
  // anchors `planes` until the transpose (which captures only raw
  // pointers) has consumed it.
  kernels::bitshuffle_inv_async(*planes, symbols, s);
  s.enqueue([planes] {});
}

void fzg_encode_async(const device::buffer<u16>& codes, int radius,
                      fzg_result& out, device::stream& s) {
  codes.assert_space(device::space::device);
  const std::size_t n = codes.size();
  out.radius = radius;

  auto centred =
      std::make_shared<device::buffer<u16>>(n, device::space::device);
  {
    const u16* in = codes.data();
    u16* t = centred->data();
    device::launch(s, n, [in, t, radius](std::size_t i) {
      t[i] = recentre(in[i], radius);
    });
  }
  fzg_pack_async(*centred, out, s);
  // Keep `centred` alive until the pack's stream ops consumed it.
  s.enqueue([centred] {});
}

void fzg_decode_async(const fzg_result& enc, device::buffer<u16>& codes,
                      device::stream& s) {
  const std::size_t n = enc.n_codes;
  auto centred =
      std::make_shared<device::buffer<u16>>(n, device::space::device);
  fzg_unpack_async(enc, *centred, s);
  {
    const u16* t = centred->data();
    u16* outp = codes.data();
    const int radius = enc.radius;
    device::launch(s, n, [t, outp, radius, centred](std::size_t i) {
      outp[i] = uncentre(t[i], radius);
    });
  }
}

}  // namespace fzmod::encoders
