// FZModules — blockwise fixed-length ("fix-length") encoder, the lossless
// stage of cuSZp2 (Huang et al., SC'24) exposed as a modular codec.
//
// Codes are zigzagged, grouped into blocks of 32, and each block stores a
// single width byte followed by all 32 values packed at that width. An
// all-zero block costs exactly one byte. Simple, branch-light, one pass —
// this is why the fused compressor built on it tops the throughput charts.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "fzmod/common/bits.hh"
#include "fzmod/common/error.hh"
#include "fzmod/common/types.hh"

namespace fzmod::encoders {

inline constexpr std::size_t flen_block = 32;

/// Encode re-centred codes (u16 stream, radius-centred with 0 sentinel,
/// same convention as the Huffman/FZG inputs). Returns a self-contained
/// blob: [u64 count][width bytes][packed payload].
[[nodiscard]] inline std::vector<u8> fixed_length_encode(
    std::span<const u16> codes, int radius) {
  const std::size_t n = codes.size();
  const std::size_t nblocks = n ? (n - 1) / flen_block + 1 : 0;
  std::vector<u8> widths(nblocks, 0);
  std::vector<u32> zz(n);
  for (std::size_t i = 0; i < n; ++i) {
    zz[i] = codes[i] == 0
                ? 0u
                : zigzag_encode(static_cast<i32>(codes[i]) - radius) + 1;
  }
  for (std::size_t b = 0; b < nblocks; ++b) {
    u32 ored = 0;
    const std::size_t end = std::min(n, (b + 1) * flen_block);
    for (std::size_t i = b * flen_block; i < end; ++i) ored |= zz[i];
    widths[b] = static_cast<u8>(bit_width_u32(ored));
  }
  u64 payload_bits = 0;
  for (const u8 w : widths) payload_bits += static_cast<u64>(w) * flen_block;

  std::vector<u8> blob(sizeof(u64) + nblocks + (payload_bits + 7) / 8 + 8,
                       0);
  const u64 count = n;
  std::memcpy(blob.data(), &count, sizeof(u64));
  std::memcpy(blob.data() + sizeof(u64), widths.data(), nblocks);
  bit_writer bw(blob.data() + sizeof(u64) + nblocks);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const u8 w = widths[b];
    if (w == 0) continue;
    const std::size_t end = std::min(n, (b + 1) * flen_block);
    for (std::size_t i = b * flen_block; i < end; ++i) bw.put(zz[i], w);
    // Pad the final partial block so decode strides uniformly.
    for (std::size_t i = end; i < (b + 1) * flen_block; ++i) bw.put(0, w);
  }
  blob.resize(sizeof(u64) + nblocks + bw.bytes_written() + 8);
  return blob;
}

/// Decode a fixed_length_encode blob back into radius-centred codes.
inline void fixed_length_decode(std::span<const u8> blob, int radius,
                                std::span<u16> out) {
  FZMOD_REQUIRE(blob.size() >= sizeof(u64), status::corrupt_archive,
                "fixed-length: blob too small");
  u64 count;
  std::memcpy(&count, blob.data(), sizeof(u64));
  FZMOD_REQUIRE(out.size() >= count, status::invalid_argument,
                "fixed-length: output too small");
  const std::size_t nblocks = count ? (count - 1) / flen_block + 1 : 0;
  FZMOD_REQUIRE(blob.size() >= sizeof(u64) + nblocks,
                status::corrupt_archive, "fixed-length: truncated widths");
  const u8* widths = blob.data() + sizeof(u64);
  // Copy the bit payload into a padded buffer: bit_reader reads 8 bytes
  // past the cursor and callers may hand us a tightly-sized subspan.
  std::vector<u8> payload(blob.size() - sizeof(u64) - nblocks + 8, 0);
  std::memcpy(payload.data(), blob.data() + sizeof(u64) + nblocks,
              blob.size() - sizeof(u64) - nblocks);
  bit_reader br(payload.data());
  for (std::size_t b = 0; b < nblocks; ++b) {
    const u8 w = widths[b];
    const std::size_t end = std::min<std::size_t>(count,
                                                  (b + 1) * flen_block);
    if (w == 0) {
      for (std::size_t i = b * flen_block; i < end; ++i) out[i] = 0;
      continue;
    }
    FZMOD_REQUIRE(w <= 32, status::corrupt_archive,
                  "fixed-length: invalid width");
    for (std::size_t i = b * flen_block; i < end; ++i) {
      const u32 zzv = static_cast<u32>(br.get(w));
      out[i] = zzv == 0 ? u16{0}
                        : static_cast<u16>(zigzag_decode(zzv - 1) + radius);
    }
    br.skip(static_cast<u32>(((b + 1) * flen_block - end) * w));
  }
}

}  // namespace fzmod::encoders
