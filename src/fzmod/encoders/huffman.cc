#include "fzmod/encoders/huffman.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <optional>
#include <queue>
#include <string_view>

#include "fzmod/common/bits.hh"
#include "fzmod/common/error.hh"
#include "fzmod/device/runtime.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod::encoders {
namespace {

struct blob_header {
  u32 magic;
  u32 nbins;
  u64 count;
  u32 nchunks;
  u32 chunk;
};
constexpr u32 blob_magic = 0x48554646;  // "HUFF"

/// Compute unrestricted code lengths by Huffman tree construction.
std::vector<u8> tree_lengths(std::span<const u32> freq) {
  struct node {
    u64 weight;
    i32 left;    // -1 for leaf
    i32 right;
    u16 symbol;
  };
  std::vector<node> nodes;
  nodes.reserve(freq.size() * 2);
  using heap_item = std::pair<u64, i32>;  // (weight, node index)
  std::priority_queue<heap_item, std::vector<heap_item>, std::greater<>> heap;
  for (std::size_t sym = 0; sym < freq.size(); ++sym) {
    if (freq[sym] == 0) continue;
    nodes.push_back({freq[sym], -1, -1, static_cast<u16>(sym)});
    heap.emplace(freq[sym], static_cast<i32>(nodes.size() - 1));
  }
  FZMOD_REQUIRE(!heap.empty(), status::invalid_argument,
                "huffman: empty histogram");
  if (heap.size() == 1) {
    // Degenerate single-symbol alphabet: assign a 1-bit code.
    std::vector<u8> lens(freq.size(), 0);
    lens[nodes[0].symbol] = 1;
    return lens;
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b, 0});
    heap.emplace(wa + wb, static_cast<i32>(nodes.size() - 1));
  }
  std::vector<u8> lens(freq.size(), 0);
  // Iterative depth-first walk assigning depths to leaves.
  std::vector<std::pair<i32, u8>> stack{{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [ni, depth] = stack.back();
    stack.pop_back();
    const node& nd = nodes[static_cast<std::size_t>(ni)];
    if (nd.left < 0) {
      lens[nd.symbol] = std::max<u8>(depth, 1);
    } else {
      stack.emplace_back(nd.left, static_cast<u8>(depth + 1));
      stack.emplace_back(nd.right, static_cast<u8>(depth + 1));
    }
  }
  return lens;
}

/// Enforce the 24-bit cap: clamp overlong codes, then repair the Kraft sum
/// by lengthening the cheapest short codes (zlib's classic adjustment).
void limit_lengths(std::vector<u8>& lens, u32 cap) {
  u64 kraft = 0;  // scaled by 2^cap
  bool clamped = false;
  for (auto& l : lens) {
    if (l == 0) continue;
    if (l > cap) {
      l = static_cast<u8>(cap);
      clamped = true;
    }
    kraft += u64{1} << (cap - l);
  }
  if (!clamped) return;
  // While over-subscribed, demote one max-length slot's sibling: find a
  // code with length < cap and increase it; each increment frees
  // 2^(cap-l) - 2^(cap-l-1) units.
  while (kraft > (u64{1} << cap)) {
    // Prefer lengthening the longest code below the cap (cheapest CR hit).
    u8 best = 0;
    std::size_t best_sym = 0;
    for (std::size_t sym = 0; sym < lens.size(); ++sym) {
      if (lens[sym] != 0 && lens[sym] < cap && lens[sym] > best) {
        best = lens[sym];
        best_sym = sym;
      }
    }
    FZMOD_REQUIRE(best != 0, status::internal,
                  "huffman: cannot satisfy length cap");
    kraft -= u64{1} << (cap - lens[best_sym] - 1);
    lens[best_sym] += 1;
  }
}

/// Canonical code assignment from lengths (shorter lengths first, ties by
/// symbol order).
void assign_codes(const std::vector<u8>& lens, std::vector<u32>& codes) {
  codes.assign(lens.size(), 0);
  std::array<u32, huffman_max_code_len + 2> count{};
  for (const u8 l : lens) count[l]++;
  count[0] = 0;
  std::array<u32, huffman_max_code_len + 2> next{};
  u32 code = 0;
  for (u32 l = 1; l <= huffman_max_code_len; ++l) {
    code = (code + count[l - 1]) << 1;
    next[l] = code;
  }
  for (std::size_t sym = 0; sym < lens.size(); ++sym) {
    if (lens[sym]) codes[sym] = next[lens[sym]]++;
  }
}

/// Canonical decode tables derived from lengths alone.
struct decode_table {
  std::array<u32, huffman_max_code_len + 2> first_code{};
  std::array<u32, huffman_max_code_len + 2> first_index{};
  std::array<u32, huffman_max_code_len + 2> count{};
  std::vector<u16> symbols;  // sorted by (len, symbol)
  // Fast path: direct lookup of the top `fast_bits` of the window.
  static constexpr u32 fast_bits = 12;
  std::vector<u32> fast;  // (symbol << 8) | len, or 0 for slow path

  explicit decode_table(std::span<const u8> lens) {
    for (const u8 l : lens) {
      FZMOD_REQUIRE(l <= huffman_max_code_len, status::corrupt_archive,
                    "huffman: code length exceeds cap");
      count[l]++;
    }
    count[0] = 0;
    u32 code = 0, index = 0;
    for (u32 l = 1; l <= huffman_max_code_len; ++l) {
      code = (code + count[l - 1]) << 1;
      first_code[l] = code;
      first_index[l] = index;
      index += count[l];
    }
    symbols.resize(index);
    std::array<u32, huffman_max_code_len + 2> next{};
    next = first_index;
    for (std::size_t sym = 0; sym < lens.size(); ++sym) {
      if (lens[sym]) symbols[next[lens[sym]]++] = static_cast<u16>(sym);
    }
    // Validate the Kraft inequality so corrupt lengths can't walk us out
    // of the symbol table during decode.
    u64 kraft = 0;
    for (u32 l = 1; l <= huffman_max_code_len; ++l) {
      kraft += static_cast<u64>(count[l]) << (huffman_max_code_len - l);
    }
    FZMOD_REQUIRE(kraft <= (u64{1} << huffman_max_code_len),
                  status::corrupt_archive,
                  "huffman: invalid code lengths (Kraft violation)");

    fast.assign(std::size_t{1} << fast_bits, 0);
    std::vector<u32> codes;
    std::vector<u8> lens_copy(lens.begin(), lens.end());
    assign_codes(lens_copy, codes);
    for (std::size_t sym = 0; sym < lens.size(); ++sym) {
      const u8 l = lens[sym];
      if (l == 0 || l > fast_bits) continue;
      const u32 prefix = codes[sym] << (fast_bits - l);
      for (u32 fill = 0; fill < (u32{1} << (fast_bits - l)); ++fill) {
        fast[prefix | fill] = (static_cast<u32>(sym) << 8) | l;
      }
    }
  }

  /// Decode one symbol from an MSB-first window of fast_bits..cap bits.
  [[nodiscard]] std::pair<u16, u32> decode(u64 window_msb_first) const {
    const u32 f = fast[window_msb_first >> (huffman_max_code_len - fast_bits)];
    if (f) return {static_cast<u16>(f >> 8), f & 0xff};
    u32 code = 0;
    for (u32 l = 1; l <= huffman_max_code_len; ++l) {
      code = static_cast<u32>(window_msb_first >>
                              (huffman_max_code_len - l));
      if (count[l] &&
          code - first_code[l] < count[l]) {
        return {symbols[first_index[l] + (code - first_code[l])], l};
      }
    }
    throw error(status::corrupt_archive, "huffman: undecodable window");
  }
};

// ---- cached decoder tiers ----------------------------------------------

/// Single-cached tier: LUT wide enough for the longest code, so one
/// lookup always resolves a full symbol. Entry = (sym << 8) | len; 0
/// marks a window no code matches (incomplete books leave holes — a
/// hostile bitstream landing there throws instead of desyncing).
struct single_cached_table {
  u32 bits = 1;
  std::vector<u32> lut;

  single_cached_table(std::span<const u8> lens, std::span<const u32> codes,
                      u32 max_len) {
    bits = std::max<u32>(max_len, 1);
    lut.assign(std::size_t{1} << bits, 0);
    for (std::size_t sym = 0; sym < lens.size(); ++sym) {
      const u32 l = lens[sym];
      if (l == 0) continue;
      const u32 prefix = codes[sym] << (bits - l);
      const u32 fills = u32{1} << (bits - l);
      for (u32 f = 0; f < fills; ++f) {
        lut[prefix | f] = (static_cast<u32>(sym) << 8) | l;
      }
    }
  }
};

/// Double-cached tier: fixed 2^12 LUT whose entries resolve up to TWO
/// complete codes per lookup. Entry = (sym0 << 32) | (sym1 << 16) |
/// (len0 << 8) | len_total; len_total == len0 means only one code fit
/// the window; 0 means the first code is longer than the table and the
/// caller walks the canonical tables instead. Build cost is bounded by
/// the Kraft sum: total pair fills <= 2^12.
struct double_cached_table {
  static constexpr u32 bits = huffman_double_table_bits;
  std::vector<u64> lut;

  double_cached_table(std::span<const u8> lens, std::span<const u32> codes) {
    lut.assign(std::size_t{1} << bits, 0);
    std::array<std::vector<u16>, bits + 1> by_len{};
    for (std::size_t sym = 0; sym < lens.size(); ++sym) {
      if (lens[sym] && lens[sym] <= bits) {
        by_len[lens[sym]].push_back(static_cast<u16>(sym));
      }
    }
    // Pass 1: every short-enough first code as a single-symbol entry.
    for (u32 l0 = 1; l0 <= bits; ++l0) {
      for (const u16 sym0 : by_len[l0]) {
        const u32 prefix = codes[sym0] << (bits - l0);
        const u64 e = (static_cast<u64>(sym0) << 32) |
                      (static_cast<u64>(l0) << 8) | l0;
        for (u32 f = 0; f < (u32{1} << (bits - l0)); ++f) lut[prefix | f] = e;
      }
    }
    // Pass 2: where a complete second code also fits, upgrade to a pair.
    for (u32 l0 = 1; l0 < bits; ++l0) {
      for (const u16 sym0 : by_len[l0]) {
        const u32 prefix0 = codes[sym0] << (bits - l0);
        for (u32 l1 = 1; l1 + l0 <= bits; ++l1) {
          for (const u16 sym1 : by_len[l1]) {
            const u32 prefix = prefix0 | (codes[sym1] << (bits - l0 - l1));
            const u64 e = (static_cast<u64>(sym0) << 32) |
                          (static_cast<u64>(sym1) << 16) |
                          (static_cast<u64>(l0) << 8) | (l0 + l1);
            for (u32 f = 0; f < (u32{1} << (bits - l0 - l1)); ++f) {
              lut[prefix | f] = e;
            }
          }
        }
      }
    }
  }
};

// ---- per-chunk decode loops ---------------------------------------------
//
// All three loops share the seed's safety posture: the cursor is checked
// against the chunk's bit extent before every step, and the payload copy
// is padded so reservoir reloads past the last real byte read zeros.

void decode_chunk_canonical(const decode_table& table, const u8* src,
                            u64 bit_limit, std::span<u16> out, u64 beg_sym,
                            u64 end_sym) {
  u64 bitpos = 0;
  for (u64 i = beg_sym; i < end_sym; ++i) {
    FZMOD_REQUIRE(bitpos <= bit_limit, status::corrupt_archive,
                  "huffman: chunk bitstream overrun");
    // Assemble a 24-bit MSB-first window at bitpos.
    u64 window = 0;
    const u64 byte = bitpos >> 3;
    for (int b = 0; b < 4; ++b) {
      window = (window << 8) | src[byte + static_cast<u64>(b)];
    }
    window = (window >> (8 - (bitpos & 7))) &
             ((u64{1} << huffman_max_code_len) - 1);
    const auto [sym, len] = table.decode(window);
    out[i] = sym;
    bitpos += len;
  }
}

void decode_chunk_single(const single_cached_table& t, const u8* src,
                         u64 bit_limit, std::span<u16> out, u64 beg_sym,
                         u64 end_sym) {
  msb_bit_reservoir br(src);
  for (u64 i = beg_sym; i < end_sym; ++i) {
    FZMOD_REQUIRE(br.position() <= bit_limit, status::corrupt_archive,
                  "huffman: chunk bitstream overrun");
    br.ensure(t.bits);
    const u32 e = t.lut[br.peek(t.bits)];
    FZMOD_REQUIRE(e != 0, status::corrupt_archive,
                  "huffman: undecodable window");
    out[i] = static_cast<u16>(e >> 8);
    br.consume(e & 0xffu);
  }
}

void decode_chunk_double(const double_cached_table& t,
                         const decode_table& walk, const u8* src,
                         u64 bit_limit, std::span<u16> out, u64 beg_sym,
                         u64 end_sym) {
  msb_bit_reservoir br(src);
  u64 i = beg_sym;
  while (i < end_sym) {
    FZMOD_REQUIRE(br.position() <= bit_limit, status::corrupt_archive,
                  "huffman: chunk bitstream overrun");
    br.ensure(huffman_max_code_len);
    const u64 e = t.lut[br.peek(double_cached_table::bits)];
    if (e == 0) {
      // First code longer than the table: one canonical walk.
      const auto [sym, len] = walk.decode(br.peek(huffman_max_code_len));
      out[i++] = sym;
      br.consume(len);
      continue;
    }
    const u32 l0 = static_cast<u32>((e >> 8) & 0xff);
    const u32 ltot = static_cast<u32>(e & 0xff);
    out[i++] = static_cast<u16>(e >> 32);
    if (ltot != l0 && i < end_sym) {
      out[i++] = static_cast<u16>((e >> 16) & 0xffff);
      br.consume(ltot);
    } else {
      br.consume(l0);
    }
  }
}

// ---- blob validation (shared by decode and decoded_count) ---------------

struct parsed_blob {
  blob_header hdr;
  std::span<const u8> lens;
  std::vector<u64> offsets;
  std::size_t payload_off = 0;
};

/// Validate every structural invariant an attacker-controlled blob could
/// violate — magic, chunk geometry, alphabet size, metadata extent,
/// offset monotonicity, payload extent — before anything downstream
/// sizes a buffer or walks a table from it.
parsed_blob parse_blob(std::span<const u8> blob) {
  parsed_blob pb;
  FZMOD_REQUIRE(blob.size() >= sizeof(blob_header), status::corrupt_archive,
                "huffman: blob too small");
  std::memcpy(&pb.hdr, blob.data(), sizeof(pb.hdr));
  const blob_header& hdr = pb.hdr;
  FZMOD_REQUIRE(hdr.magic == blob_magic, status::corrupt_archive,
                "huffman: bad magic");
  FZMOD_REQUIRE(hdr.chunk == huffman_chunk, status::corrupt_archive,
                "huffman: unsupported chunk size");
  FZMOD_REQUIRE(hdr.nchunks ==
                    (hdr.count ? (hdr.count - 1) / hdr.chunk + 1 : 0),
                status::corrupt_archive, "huffman: chunk count mismatch");
  FZMOD_REQUIRE(hdr.nbins <= 65536, status::corrupt_archive,
                "huffman: implausible alphabet size");
  const std::size_t meta =
      sizeof(hdr) + hdr.nbins + (hdr.nchunks + std::size_t{1}) * sizeof(u64);
  FZMOD_REQUIRE(blob.size() >= meta, status::corrupt_archive,
                "huffman: truncated metadata");
  pb.lens = blob.subspan(sizeof(hdr), hdr.nbins);
  pb.offsets.resize(hdr.nchunks + std::size_t{1});
  std::memcpy(pb.offsets.data(), blob.data() + sizeof(hdr) + hdr.nbins,
              pb.offsets.size() * sizeof(u64));
  // Offsets are data: enforce monotonicity so no chunk can point outside
  // the payload.
  for (u32 c = 0; c < hdr.nchunks; ++c) {
    FZMOD_REQUIRE(pb.offsets[c] <= pb.offsets[c + 1], status::corrupt_archive,
                  "huffman: non-monotonic chunk offsets");
  }
  FZMOD_REQUIRE(pb.offsets[hdr.nchunks] <= blob.size() &&
                    blob.size() >= meta + pb.offsets[hdr.nchunks],
                status::corrupt_archive, "huffman: truncated payload");
  pb.payload_off = meta;
  return pb;
}

// ---- tier selection plumbing --------------------------------------------

std::atomic<u64> g_tier_chunks[3]{};  // canonical, single_cached, double_cached

huffman_tier env_default_tier() {
  const char* v = std::getenv("FZMOD_HUFF_TIER");
  if (!v || !*v) return huffman_tier::auto_select;
  return parse_huffman_tier(v);
}

/// Encode one chunk MSB-first into `dst` (sized worst case); returns bits.
u64 encode_chunk(std::span<const u16> chunk, const huffman_codebook& book,
                 u8* dst) {
  u64 bitpos = 0;
  for (const u16 sym : chunk) {
    const u8 l = book.len[sym];
    FZMOD_REQUIRE(l != 0, status::internal,
                  "huffman: symbol missing from codebook");
    const u32 c = book.code[sym];
    // MSB-first append.
    for (u32 b = 0; b < l; ++b, ++bitpos) {
      if ((c >> (l - 1 - b)) & 1u) dst[bitpos >> 3] |= u8(1u << (7 - (bitpos & 7)));
    }
  }
  return bitpos;
}

}  // namespace

huffman_codebook huffman_codebook::build(std::span<const u32> freq) {
  huffman_codebook book;
  book.len = tree_lengths(freq);
  limit_lengths(book.len, huffman_max_code_len);
  assign_codes(book.len, book.code);
  return book;
}

f64 huffman_codebook::expected_bits(std::span<const u32> freq) const {
  u64 total = 0, bits = 0;
  for (std::size_t sym = 0; sym < freq.size(); ++sym) {
    total += freq[sym];
    bits += static_cast<u64>(freq[sym]) * len[sym];
  }
  return total ? static_cast<f64>(bits) / static_cast<f64>(total) : 0.0;
}

std::vector<u8> huffman_encode(std::span<const u16> codes,
                               std::span<const u32> hist) {
  const auto book = huffman_codebook::build(hist);
  const std::size_t n = codes.size();
  const std::size_t nchunks = n ? (n - 1) / huffman_chunk + 1 : 0;

  // Encode chunks in parallel into scratch buffers.
  std::vector<std::vector<u8>> scratch(nchunks);
  std::vector<u64> chunk_bytes(nchunks, 0);
  device::runtime::instance().pool().parallel_for(
      nchunks, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          const std::size_t beg = c * huffman_chunk;
          const std::size_t end = std::min(n, beg + huffman_chunk);
          auto& buf = scratch[c];
          buf.assign((end - beg) * (huffman_max_code_len / 8 + 1) + 8, 0);
          const u64 bits =
              encode_chunk(codes.subspan(beg, end - beg), book, buf.data());
          chunk_bytes[c] = (bits + 7) / 8;
        }
      });

  // Assemble the blob: header | lens | offsets | payload.
  std::vector<u64> offsets(nchunks + 1, 0);
  for (std::size_t c = 0; c < nchunks; ++c) {
    offsets[c + 1] = offsets[c] + chunk_bytes[c];
  }
  const blob_header hdr{blob_magic, static_cast<u32>(hist.size()),
                        static_cast<u64>(n), static_cast<u32>(nchunks),
                        static_cast<u32>(huffman_chunk)};
  std::vector<u8> blob(sizeof(hdr) + hist.size() +
                       (nchunks + 1) * sizeof(u64) + offsets[nchunks] + 8);
  u8* p = blob.data();
  std::memcpy(p, &hdr, sizeof(hdr));
  p += sizeof(hdr);
  std::memcpy(p, book.len.data(), book.len.size());
  p += book.len.size();
  std::memcpy(p, offsets.data(), (nchunks + 1) * sizeof(u64));
  p += (nchunks + 1) * sizeof(u64);
  for (std::size_t c = 0; c < nchunks; ++c) {
    std::memcpy(p + offsets[c], scratch[c].data(), chunk_bytes[c]);
  }
  blob.resize(static_cast<std::size_t>(p - blob.data()) + offsets[nchunks]);
  return blob;
}

u64 huffman_decoded_count(std::span<const u8> blob) {
  // Full structural validation: a truncated or forged blob fails here,
  // not after a caller has sized an output span from the bogus count.
  return parse_blob(blob).hdr.count;
}

const char* to_string(huffman_tier t) {
  switch (t) {
    case huffman_tier::canonical: return "canonical";
    case huffman_tier::single_cached: return "single";
    case huffman_tier::double_cached: return "double";
    case huffman_tier::auto_select: break;
  }
  return "auto";
}

huffman_tier parse_huffman_tier(std::string_view v) {
  if (v == "auto" || v.empty()) return huffman_tier::auto_select;
  if (v == "canonical") return huffman_tier::canonical;
  if (v == "single") return huffman_tier::single_cached;
  if (v == "double") return huffman_tier::double_cached;
  throw error(status::invalid_argument,
              "FZMOD_HUFF_TIER must be auto|canonical|single|double, got '" +
                  std::string(v) + "'");
}

huffman_tier huffman_select_tier(u32 max_code_len, f64 chunk_avg_bits) {
  // Double pays off when one 12-bit window usually holds two complete
  // codes, i.e. twice the chunk's achieved rate fits the table.
  if (chunk_avg_bits > 0.0 &&
      2.0 * chunk_avg_bits <= static_cast<f64>(huffman_double_table_bits)) {
    return huffman_tier::double_cached;
  }
  if (max_code_len <= huffman_single_table_bits) {
    return huffman_tier::single_cached;
  }
  return huffman_tier::canonical;
}

huffman_tier_counts huffman_tier_totals() {
  return {g_tier_chunks[0].load(std::memory_order_relaxed),
          g_tier_chunks[1].load(std::memory_order_relaxed),
          g_tier_chunks[2].load(std::memory_order_relaxed)};
}

void huffman_decode(std::span<const u8> blob, std::span<u16> out,
                    huffman_tier tier) {
  const parsed_blob pb = parse_blob(blob);
  const blob_header& hdr = pb.hdr;
  FZMOD_REQUIRE(out.size() >= hdr.count, status::invalid_argument,
                "huffman: output span too small");
  // Canonical tables always build: they validate the lengths (cap +
  // Kraft) and back the double tier's slow path.
  const decode_table table(pb.lens);
  if (hdr.count == 0) return;

  u32 max_len = 0;
  for (const u8 l : pb.lens) max_len = std::max<u32>(max_len, l);

  // Choose a tier per chunk. The achieved bits/symbol falls straight out
  // of the offsets table, so selection is per chunk without any format
  // change — dense chunks and sparse chunks of one blob can take
  // different paths.
  std::vector<u8> chunk_tier(hdr.nchunks);
  u64 tier_chunks[3] = {0, 0, 0};
  for (u32 c = 0; c < hdr.nchunks; ++c) {
    const u64 beg_sym = u64{c} * hdr.chunk;
    const u64 nsyms = std::min<u64>(hdr.count, beg_sym + hdr.chunk) - beg_sym;
    huffman_tier t = tier;
    if (t == huffman_tier::auto_select) {
      const f64 avg =
          nsyms ? static_cast<f64>((pb.offsets[c + 1] - pb.offsets[c]) * 8) /
                      static_cast<f64>(nsyms)
                : 0.0;
      t = huffman_select_tier(max_len, avg);
    }
    if (t == huffman_tier::single_cached &&
        max_len > huffman_single_table_bits) {
      t = huffman_tier::canonical;  // forced tier the book can't support
    }
    chunk_tier[c] = static_cast<u8>(t);
    tier_chunks[static_cast<u8>(t)]++;
  }

  // Build only the cached tables some chunk actually picked.
  std::optional<single_cached_table> single_tab;
  std::optional<double_cached_table> double_tab;
  if (tier_chunks[1] || tier_chunks[2]) {
    std::vector<u32> codes;
    std::vector<u8> lens_copy(pb.lens.begin(), pb.lens.end());
    assign_codes(lens_copy, codes);
    if (tier_chunks[1]) single_tab.emplace(pb.lens, codes, max_len);
    if (tier_chunks[2]) double_tab.emplace(pb.lens, codes);
  }

  // Pad the payload copy so reservoir and window reads never run off the
  // end (the per-symbol bit_limit check bounds how far the cursor gets).
  std::vector<u8> payload(pb.offsets[hdr.nchunks] + 16, 0);
  std::memcpy(payload.data(), blob.data() + pb.payload_off,
              pb.offsets[hdr.nchunks]);

  device::runtime::instance().pool().parallel_for(
      hdr.nchunks, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          const u64 beg_sym = c * hdr.chunk;
          const u64 end_sym = std::min<u64>(hdr.count, beg_sym + hdr.chunk);
          const u8* src = payload.data() + pb.offsets[c];
          // A corrupt bitstream must not walk the cursor past this
          // chunk's extent (the +16 padding then covers window reads).
          const u64 bit_limit = (pb.offsets[c + 1] - pb.offsets[c]) * 8;
          switch (static_cast<huffman_tier>(chunk_tier[c])) {
            case huffman_tier::single_cached:
              decode_chunk_single(*single_tab, src, bit_limit, out, beg_sym,
                                  end_sym);
              break;
            case huffman_tier::double_cached:
              decode_chunk_double(*double_tab, table, src, bit_limit, out,
                                  beg_sym, end_sym);
              break;
            default:
              decode_chunk_canonical(table, src, bit_limit, out, beg_sym,
                                     end_sym);
              break;
          }
        }
      });

  for (int t = 0; t < 3; ++t) {
    if (tier_chunks[t]) {
      g_tier_chunks[t].fetch_add(tier_chunks[t], std::memory_order_relaxed);
    }
  }
  if (trace::enabled()) {
    const auto totals = huffman_tier_totals();
    trace::counter("huffman.chunks.canonical",
                   static_cast<f64>(totals.canonical));
    trace::counter("huffman.chunks.single",
                   static_cast<f64>(totals.single_cached));
    trace::counter("huffman.chunks.double",
                   static_cast<f64>(totals.double_cached));
  }
}

void huffman_decode(std::span<const u8> blob, std::span<u16> out) {
  huffman_decode(blob, out, env_default_tier());
}

}  // namespace fzmod::encoders
