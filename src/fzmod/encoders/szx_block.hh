// FZModules — SZx-style fixed-block encoder (Yu et al.: ultra-fast
// error-bounded compression built on constant-block detection plus
// fixed-length encoding of the rest).
//
// The quantization-code stream of a smooth field is dominated by long
// runs of the zero-delta code; SZx's observation is that whole blocks of
// it collapse to a single flag. Each 128-code block stores one flag byte:
//
//   0x00          all codes in the block are the outlier sentinel (0);
//   0xFF          all codes equal one nonzero value — the value goes to a
//                 side stream of u16 constants (SZx's "constant block");
//   w in 1..17    the block's zigzagged deltas packed at w bits each.
//
// Blob: [u64 count][nblocks flag bytes][u16 x n_const][packed payload][pad]
// where n_const is derived by scanning the flags. Zigzag mapping matches
// fixed_length.hh (0 stays the sentinel; max zz = 65537 needs 17 bits).
// Strictly validated on decode: a flag outside {0, 1..17, 0xFF}, a
// truncated constants stream, or a short payload throws corrupt_archive.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "fzmod/common/bits.hh"
#include "fzmod/common/error.hh"
#include "fzmod/common/types.hh"

namespace fzmod::encoders {

inline constexpr std::size_t szx_block = 128;
inline constexpr u8 szx_flag_const = 0xFF;
inline constexpr u8 szx_max_width = 17;  // zigzag(code - radius) + 1 <= 2^17

/// Encode radius-centred codes (the quant_field convention: 0 is the
/// outlier sentinel). Returns a self-contained blob.
[[nodiscard]] inline std::vector<u8> szx_block_encode(
    std::span<const u16> codes, int radius) {
  const std::size_t n = codes.size();
  const std::size_t nblocks = n ? (n - 1) / szx_block + 1 : 0;
  std::vector<u8> flags(nblocks, 0);
  std::vector<u16> constants;
  std::vector<u32> zz(n);
  for (std::size_t i = 0; i < n; ++i) {
    zz[i] = codes[i] == 0
                ? 0u
                : zigzag_encode(static_cast<i32>(codes[i]) - radius) + 1;
  }
  u64 payload_bits = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const std::size_t beg = b * szx_block;
    const std::size_t end = std::min(n, beg + szx_block);
    bool constant = true;
    u32 ored = 0;
    for (std::size_t i = beg; i < end; ++i) {
      constant = constant && codes[i] == codes[beg];
      ored |= zz[i];
    }
    if (constant && codes[beg] == 0) {
      flags[b] = 0;
    } else if (constant) {
      flags[b] = szx_flag_const;
      constants.push_back(codes[beg]);
    } else {
      flags[b] = static_cast<u8>(bit_width_u32(ored));
      payload_bits += static_cast<u64>(flags[b]) * szx_block;
    }
  }

  const u64 count = n;
  const std::size_t const_bytes = constants.size() * sizeof(u16);
  std::vector<u8> blob(
      sizeof(u64) + nblocks + const_bytes + (payload_bits + 7) / 8 + 8, 0);
  std::memcpy(blob.data(), &count, sizeof(u64));
  std::memcpy(blob.data() + sizeof(u64), flags.data(), nblocks);
  if (const_bytes) {
    std::memcpy(blob.data() + sizeof(u64) + nblocks, constants.data(),
                const_bytes);
  }
  bit_writer bw(blob.data() + sizeof(u64) + nblocks + const_bytes);
  for (std::size_t b = 0; b < nblocks; ++b) {
    const u8 w = flags[b];
    if (w == 0 || w == szx_flag_const) continue;
    const std::size_t beg = b * szx_block;
    const std::size_t end = std::min(n, beg + szx_block);
    for (std::size_t i = beg; i < end; ++i) bw.put(zz[i], w);
    // Pad the final partial block so decode strides uniformly.
    for (std::size_t i = end; i < beg + szx_block; ++i) bw.put(0, w);
  }
  blob.resize(sizeof(u64) + nblocks + const_bytes + bw.bytes_written() + 8);
  return blob;
}

/// Decode a szx_block_encode blob back into radius-centred codes.
inline void szx_block_decode(std::span<const u8> blob, int radius,
                             std::span<u16> out) {
  FZMOD_REQUIRE(blob.size() >= sizeof(u64), status::corrupt_archive,
                "fixed-block: blob too small");
  u64 count;
  std::memcpy(&count, blob.data(), sizeof(u64));
  FZMOD_REQUIRE(count == out.size(), status::corrupt_archive,
                "fixed-block: count does not match archive dims");
  const std::size_t nblocks = count ? (count - 1) / szx_block + 1 : 0;
  FZMOD_REQUIRE(blob.size() >= sizeof(u64) + nblocks,
                status::corrupt_archive, "fixed-block: truncated flags");
  const u8* flags = blob.data() + sizeof(u64);
  std::size_t n_const = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const u8 f = flags[b];
    FZMOD_REQUIRE(f <= szx_max_width || f == szx_flag_const,
                  status::corrupt_archive, "fixed-block: invalid flag");
    n_const += f == szx_flag_const;
  }
  const std::size_t const_bytes = n_const * sizeof(u16);
  FZMOD_REQUIRE(blob.size() >= sizeof(u64) + nblocks + const_bytes,
                status::corrupt_archive,
                "fixed-block: truncated constants");
  const u8* const_p = blob.data() + sizeof(u64) + nblocks;
  // Padded payload copy: bit_reader reads 8 bytes past its cursor and the
  // caller may hand a tightly-sized subspan.
  const std::size_t payload_off = sizeof(u64) + nblocks + const_bytes;
  std::vector<u8> payload(blob.size() - payload_off + 8, 0);
  std::memcpy(payload.data(), blob.data() + payload_off,
              blob.size() - payload_off);
  const u64 payload_bits = (blob.size() - payload_off) * 8;
  bit_reader br(payload.data());
  u64 bits_used = 0;
  std::size_t const_at = 0;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const u8 f = flags[b];
    const std::size_t beg = b * szx_block;
    const std::size_t end = std::min<std::size_t>(count, beg + szx_block);
    if (f == 0) {
      for (std::size_t i = beg; i < end; ++i) out[i] = 0;
      continue;
    }
    if (f == szx_flag_const) {
      u16 v;
      std::memcpy(&v, const_p + const_at * sizeof(u16), sizeof(v));
      ++const_at;
      FZMOD_REQUIRE(v != 0 && v < 2 * static_cast<u32>(radius),
                    status::corrupt_archive,
                    "fixed-block: constant out of code range");
      for (std::size_t i = beg; i < end; ++i) out[i] = v;
      continue;
    }
    bits_used += static_cast<u64>(f) * szx_block;
    FZMOD_REQUIRE(bits_used <= payload_bits, status::corrupt_archive,
                  "fixed-block: truncated payload");
    for (std::size_t i = beg; i < end; ++i) {
      const u32 zzv = static_cast<u32>(br.get(f));
      out[i] = zzv == 0 ? u16{0}
                        : static_cast<u16>(zigzag_decode(zzv - 1) + radius);
    }
    br.skip(static_cast<u32>((beg + szx_block - end) * f));
  }
}

}  // namespace fzmod::encoders
