// FZModules — pipeline tracing & counters subsystem.
//
// The runtime layers built so far (device streams, the STF task graph,
// the chunk-window scheduler) execute as a black box: `runtime_stats`
// reports cumulative totals and `stage_timings` per-stage wall time, but
// nothing shows *when* work ran, on which stream, or how much of it
// overlapped. This recorder makes the schedule observable the way cuSZ
// and FZ-GPU justify their designs with per-kernel timelines:
//
//   - **spans** — named intervals (a kernel execution, a pipeline stage,
//     one chunk's compression) with begin timestamp + duration;
//   - **instant events** — points in time (an op enqueued, a pool miss);
//   - **counter samples** — named time-series values (kernels launched,
//     pool hit/miss totals, chunk-window occupancy).
//
// Recording is thread-safe and low-overhead: each thread appends to its
// own fixed-capacity ring buffer (oldest events overwritten, drops are
// counted), registered once with a process-wide collector that outlives
// the producing threads — chunk-scheduler workers are transient, their
// events are not. Event names are copied inline (no lifetime coupling to
// the caller's strings).
//
// Tracing is compiled in but **off by default**: every record call first
// checks one relaxed atomic flag, so the disabled-mode cost is a single
// predictable branch (bench_trace_overhead measures it at < 1% on the
// end-to-end throughput bench). Enable with the environment variable
// `FZMOD_TRACE=1` or at runtime via `set_enabled(true)`; per-thread ring
// capacity is `FZMOD_TRACE_BUF` events (default 65536).
//
// Export surfaces (see docs/OBSERVABILITY.md for how to read them):
//   - `export_chrome_json()` — Chrome `chrome://tracing` / Perfetto
//     "Trace Event Format" JSON;
//   - `summary_report()` / `compute_summary()` — plain-text (and
//     machine-readable) rollup: per-stage wall time, stream overlap %,
//     pool hit rate, chunk-window occupancy;
//   - `last_dag()` — the Graphviz DOT dump of the most recent STF task
//     graph (`stf::context` publishes it on finalize while tracing).
#pragma once

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "fzmod/common/types.hh"

namespace fzmod::trace {

/// What an `event` records. `span`s carry `dur_ns`; `counter`s carry
/// `value`; `instant`s are a point in time (value optionally annotates,
/// e.g. the byte count of a pool miss).
enum class kind : u8 { span, instant, counter };

/// One recorded trace event. Fixed-size POD so ring buffers never chase
/// pointers; names/categories are truncated copies.
struct event {
  static constexpr std::size_t name_cap = 64;
  static constexpr std::size_t cat_cap = 16;

  kind k = kind::instant;
  u32 tid = 0;        ///< small stable id of the recording thread
  u32 stream_id = 0;  ///< device::stream id (0 = not stream-bound)
  u64 ts_ns = 0;      ///< nanoseconds since the trace epoch (span begin)
  u64 dur_ns = 0;     ///< span duration (spans only)
  f64 value = 0;      ///< counter value / optional annotation (e.g. bytes)
  char name[name_cap] = {};
  char cat[cat_cap] = {};
};

/// Resolve the per-thread ring capacity from `FZMOD_TRACE_BUF` (default
/// 65536). Strict parse: a malformed value or one below the minimum of 16
/// throws status::invalid_argument naming the variable — no silent
/// fallback (common/env.hh semantics). The collector calls this once at
/// first use; exposed so tests can pin the parse contract directly.
[[nodiscard]] std::size_t resolve_ring_cap();

/// Whether recording is currently on (one relaxed atomic load — this is
/// the disabled-mode fast path every instrumentation site starts with).
[[nodiscard]] bool enabled();

/// Runtime switch; the startup default honours `FZMOD_TRACE` (unset/0 =
/// off, anything else = on).
void set_enabled(bool on);

/// Nanoseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] u64 now_ns();

/// Record an instant event. No-op (single branch) while disabled.
void instant(std::string_view cat, std::string_view name, u32 stream_id = 0,
             f64 value = 0);

/// Record a counter sample. Counter events with the same name form a
/// time series; exporters render them as Perfetto counter tracks.
void counter(std::string_view name, f64 value);

/// Record a completed span after the fact (begin + duration already
/// measured, e.g. by a stage stopwatch).
void complete(std::string_view cat, std::string_view name, u64 begin_ns,
              u64 dur_ns, u32 stream_id = 0, f64 value = 0);

/// RAII span: marks its construction..destruction interval. If tracing
/// is disabled at construction, destruction does nothing (zero events).
/// The name is copied at construction, so dynamic strings are safe.
class span_scope {
 public:
  span_scope(std::string_view cat, std::string_view name, u32 stream_id = 0,
             f64 value = 0);
  ~span_scope();
  span_scope(const span_scope&) = delete;
  span_scope& operator=(const span_scope&) = delete;

 private:
  bool active_ = false;
  u32 stream_id_ = 0;
  u64 begin_ns_ = 0;
  f64 value_ = 0;
  char name_[event::name_cap] = {};
  char cat_[event::cat_cap] = {};
};

// RAII span macros (unique local per line). Usage:
//   FZMOD_TRACE_SPAN("pipeline", "compress");
//   FZMOD_TRACE_SPAN_ID("stream", "kernel", stream_id);
#define FZMOD_TRACE_CONCAT_(a, b) a##b
#define FZMOD_TRACE_CONCAT(a, b) FZMOD_TRACE_CONCAT_(a, b)
#define FZMOD_TRACE_SPAN(cat, name)                          \
  ::fzmod::trace::span_scope FZMOD_TRACE_CONCAT(fzmod_trace_span_, \
                                                __LINE__)(cat, name)
#define FZMOD_TRACE_SPAN_ID(cat, name, sid)                  \
  ::fzmod::trace::span_scope FZMOD_TRACE_CONCAT(fzmod_trace_span_, \
                                                __LINE__)(cat, name, sid)

/// Drop every recorded event (ring contents and drop counters) and the
/// stored DAG. Does not change the enabled switch.
void clear();

/// Events currently held across all thread rings (capped by capacity).
[[nodiscard]] u64 event_count();

/// Events overwritten because a thread's ring was full.
[[nodiscard]] u64 dropped_count();

/// Copy out every held event, sorted by timestamp.
[[nodiscard]] std::vector<event> snapshot();

/// Chrome "Trace Event Format" JSON (the object form:
/// {"traceEvents":[...]}). Loadable in chrome://tracing and Perfetto.
/// Spans export as ph:"X" complete events, instants as ph:"i", counters
/// as ph:"C"; stream-bound events carry args.stream.
[[nodiscard]] std::string export_chrome_json();

/// Aggregate of one span name within a category (see summary::stages).
struct stage_stat {
  std::string name;
  u64 count = 0;
  f64 total_s = 0;
};

/// Machine-readable rollup of the recorded events; `summary_report()`
/// formats it, benches embed it as the `trace` section of their JSON.
struct summary {
  u64 events = 0;
  u64 dropped = 0;
  f64 wall_s = 0;  ///< first-event to last-event span
  std::vector<stage_stat> stages;  ///< cat=="pipeline" spans by name
  f64 stream_busy_s = 0;     ///< sum of per-stream busy (unioned) time
  f64 stream_overlap_pct = 0;  ///< % of busy time concurrent with another stream
  u64 h2d_bytes = 0, d2h_bytes = 0, d2d_bytes = 0;  ///< traced memcpy volume
  f64 pool_hit_rate = -1;  ///< from the latest pool counter samples; -1 unknown
  u64 pool_misses = 0;     ///< traced pool-miss instants
  f64 max_inflight = 0;    ///< peak of the chunked.inflight counter
  f64 mean_inflight = 0;   ///< mean of chunked.inflight samples
};

[[nodiscard]] summary compute_summary();

/// Human-readable report over compute_summary(): per-stage wall time,
/// stream overlap %, pool hit rate, chunk-window occupancy.
[[nodiscard]] std::string summary_report();

/// The STF task-graph DOT dump slot: `stf::context::finalize()` publishes
/// its inferred DAG here while tracing is enabled; the CLI's
/// `--trace-dot` writes it out. Empty when no graph ran since clear().
void set_last_dag(std::string dot);
[[nodiscard]] std::string last_dag();

}  // namespace fzmod::trace
