// FZModules — trace recorder implementation. See trace.hh for the model.

#include "fzmod/trace/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "fzmod/common/env.hh"

namespace fzmod::trace {
namespace {

void copy_trunc(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// One thread's event ring. The producing thread and the collector both
/// take `mu`; producers only contend with a snapshot/clear in flight.
struct thread_ring {
  std::mutex mu;
  u32 tid = 0;
  std::size_t cap = 0;
  std::size_t head = 0;  // next write position
  u64 pushed = 0;        // lifetime pushes (dropped = pushed - held)
  std::vector<event> ring;

  void push(const event& e) {
    std::lock_guard lk(mu);
    if (ring.size() < cap) {
      ring.push_back(e);
    } else {
      ring[head] = e;
      head = (head + 1) % cap;
    }
    ++pushed;
  }
};

/// Process-wide collector: owns the registry of thread rings (shared_ptr
/// so rings survive their threads — chunk-scheduler workers are
/// transient) and the DAG slot.
struct collector {
  std::atomic<bool> enabled;
  std::chrono::steady_clock::time_point epoch;
  std::size_t ring_cap;

  std::mutex reg_mu;
  std::vector<std::shared_ptr<thread_ring>> rings;
  u32 next_tid = 1;

  std::mutex dag_mu;
  std::string dag;

  collector() : epoch(std::chrono::steady_clock::now()) {
    const char* v = std::getenv("FZMOD_TRACE");
    enabled.store(v && *v && !(v[0] == '0' && v[1] == '\0'),
                  std::memory_order_relaxed);
    ring_cap = resolve_ring_cap();
  }

  static collector& instance() {
    static collector c;
    return c;
  }

  std::shared_ptr<thread_ring> make_ring() {
    auto r = std::make_shared<thread_ring>();
    r->cap = ring_cap;
    std::lock_guard lk(reg_mu);
    r->tid = next_tid++;
    rings.push_back(r);
    return r;
  }
};

thread_ring& local_ring() {
  thread_local std::shared_ptr<thread_ring> ring =
      collector::instance().make_ring();
  return *ring;
}

void push_event(kind k, std::string_view cat, std::string_view name,
                u64 ts_ns, u64 dur_ns, u32 stream_id, f64 value) {
  thread_ring& r = local_ring();
  event e;
  e.k = k;
  e.tid = r.tid;
  e.stream_id = stream_id;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.value = value;
  copy_trunc(e.name, event::name_cap, name);
  copy_trunc(e.cat, event::cat_cap, cat);
  r.push(e);
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

/// Merge [begin, end) intervals and return the union length in ns.
u64 union_ns(std::vector<std::pair<u64, u64>>& iv) {
  if (iv.empty()) return 0;
  std::sort(iv.begin(), iv.end());
  u64 total = 0, lo = iv[0].first, hi = iv[0].second;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first > hi) {
      total += hi - lo;
      lo = iv[i].first;
      hi = iv[i].second;
    } else {
      hi = std::max(hi, iv[i].second);
    }
  }
  return total + (hi - lo);
}

}  // namespace

std::size_t resolve_ring_cap() {
  const std::size_t cap =
      static_cast<std::size_t>(common::env_u64("FZMOD_TRACE_BUF", 65536));
  FZMOD_REQUIRE(cap >= 16, status::invalid_argument,
                "FZMOD_TRACE_BUF: ring capacity must be >= 16, got " +
                    std::to_string(cap));
  return cap;
}

bool enabled() {
  return collector::instance().enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  collector::instance().enabled.store(on, std::memory_order_relaxed);
}

u64 now_ns() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - collector::instance().epoch)
          .count());
}

void instant(std::string_view cat, std::string_view name, u32 stream_id,
             f64 value) {
  if (!enabled()) return;
  push_event(kind::instant, cat, name, now_ns(), 0, stream_id, value);
}

void counter(std::string_view name, f64 value) {
  if (!enabled()) return;
  push_event(kind::counter, "counter", name, now_ns(), 0, 0, value);
}

void complete(std::string_view cat, std::string_view name, u64 begin_ns,
              u64 dur_ns, u32 stream_id, f64 value) {
  if (!enabled()) return;
  push_event(kind::span, cat, name, begin_ns, dur_ns, stream_id, value);
}

span_scope::span_scope(std::string_view cat, std::string_view name,
                       u32 stream_id, f64 value) {
  if (!enabled()) return;  // zero-event fast path: stays inactive
  active_ = true;
  stream_id_ = stream_id;
  value_ = value;
  begin_ns_ = now_ns();
  copy_trunc(name_, event::name_cap, name);
  copy_trunc(cat_, event::cat_cap, cat);
}

span_scope::~span_scope() {
  if (!active_) return;
  // Record even if tracing was switched off mid-span: the begin time is
  // committed, and a half-observed schedule is worse than one extra event.
  push_event(kind::span, cat_, name_, begin_ns_, now_ns() - begin_ns_,
             stream_id_, value_);
}

void clear() {
  collector& c = collector::instance();
  std::lock_guard reg(c.reg_mu);
  for (auto& r : c.rings) {
    std::lock_guard lk(r->mu);
    r->ring.clear();
    r->head = 0;
    r->pushed = 0;
  }
  std::lock_guard dag(c.dag_mu);
  c.dag.clear();
}

u64 event_count() {
  collector& c = collector::instance();
  std::lock_guard reg(c.reg_mu);
  u64 n = 0;
  for (auto& r : c.rings) {
    std::lock_guard lk(r->mu);
    n += r->ring.size();
  }
  return n;
}

u64 dropped_count() {
  collector& c = collector::instance();
  std::lock_guard reg(c.reg_mu);
  u64 n = 0;
  for (auto& r : c.rings) {
    std::lock_guard lk(r->mu);
    n += r->pushed - r->ring.size();
  }
  return n;
}

std::vector<event> snapshot() {
  collector& c = collector::instance();
  std::vector<event> out;
  {
    std::lock_guard reg(c.reg_mu);
    for (auto& r : c.rings) {
      std::lock_guard lk(r->mu);
      out.insert(out.end(), r->ring.begin(), r->ring.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const event& a, const event& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

std::string export_chrome_json() {
  const std::vector<event> evs = snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const event& e : evs) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json_escape_into(out, e.name);
    out += "\",\"cat\":\"";
    json_escape_into(out, e.cat);
    out += "\"";
    // Timestamps are microseconds (fractional allowed) in the format.
    const f64 ts_us = static_cast<f64>(e.ts_ns) / 1e3;
    switch (e.k) {
      case kind::span: {
        const f64 dur_us = static_cast<f64>(e.dur_ns) / 1e3;
        std::snprintf(buf, sizeof(buf),
                      ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                      "\"tid\":%u",
                      ts_us, dur_us, e.tid);
        out += buf;
        break;
      }
      case kind::instant:
        std::snprintf(buf, sizeof(buf),
                      ",\"ph\":\"i\",\"ts\":%.3f,\"s\":\"t\",\"pid\":1,"
                      "\"tid\":%u",
                      ts_us, e.tid);
        out += buf;
        break;
      case kind::counter:
        // Counters are per-name tracks; pin tid 0 so samples from
        // different threads merge into one series.
        std::snprintf(buf, sizeof(buf),
                      ",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":0",
                      ts_us);
        out += buf;
        break;
    }
    if (e.k == kind::counter) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.6g}", e.value);
      out += buf;
    } else if (e.stream_id != 0 || e.value != 0) {
      std::snprintf(buf, sizeof(buf),
                    ",\"args\":{\"stream\":%u,\"bytes\":%.6g}", e.stream_id,
                    e.value);
      out += buf;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

summary compute_summary() {
  const std::vector<event> evs = snapshot();
  summary s;
  s.events = evs.size();
  s.dropped = dropped_count();
  if (evs.empty()) return s;
  u64 t_min = ~u64{0}, t_max = 0;

  std::map<std::string, stage_stat> stages;
  // Per-stream interval sets for the overlap computation: same-stream
  // nesting must not count as overlap, so each stream unions first.
  std::map<u32, std::vector<std::pair<u64, u64>>> per_stream;
  f64 last_pool_hits = -1, last_pool_misses = -1;
  f64 inflight_sum = 0;
  u64 inflight_n = 0;

  for (const event& e : evs) {
    t_min = std::min(t_min, e.ts_ns);
    t_max = std::max(t_max, e.ts_ns + e.dur_ns);
    if (e.k == kind::span && std::strcmp(e.cat, "pipeline") == 0) {
      stage_stat& st = stages[e.name];
      st.name = e.name;
      st.count += 1;
      st.total_s += static_cast<f64>(e.dur_ns) / 1e9;
    }
    if (e.k == kind::span && std::strcmp(e.cat, "stream") == 0 &&
        e.stream_id != 0) {
      per_stream[e.stream_id].emplace_back(e.ts_ns, e.ts_ns + e.dur_ns);
      if (std::strncmp(e.name, "memcpy.h2d", 10) == 0) {
        s.h2d_bytes += static_cast<u64>(e.value);
      } else if (std::strncmp(e.name, "memcpy.d2h", 10) == 0) {
        s.d2h_bytes += static_cast<u64>(e.value);
      } else if (std::strncmp(e.name, "memcpy.d2d", 10) == 0) {
        s.d2d_bytes += static_cast<u64>(e.value);
      }
    }
    if (e.k == kind::instant && std::strcmp(e.cat, "pool") == 0 &&
        std::strcmp(e.name, "miss") == 0) {
      s.pool_misses += 1;
    }
    if (e.k == kind::counter) {
      if (std::strcmp(e.name, "pool.device.hits") == 0) {
        last_pool_hits = e.value;
      } else if (std::strcmp(e.name, "pool.device.misses") == 0) {
        last_pool_misses = e.value;
      } else if (std::strcmp(e.name, "chunked.inflight") == 0) {
        s.max_inflight = std::max(s.max_inflight, e.value);
        inflight_sum += e.value;
        inflight_n += 1;
      }
    }
  }
  s.wall_s = static_cast<f64>(t_max - t_min) / 1e9;
  for (auto& [k, v] : stages) s.stages.push_back(std::move(v));

  // Overlap: busy = sum over streams of that stream's unioned intervals;
  // union = one union across all streams. busy - union is time at least
  // two streams were simultaneously executing.
  u64 busy = 0;
  std::vector<std::pair<u64, u64>> all;
  for (auto& [sid, iv] : per_stream) {
    busy += union_ns(iv);
    all.insert(all.end(), iv.begin(), iv.end());
  }
  const u64 un = union_ns(all);
  s.stream_busy_s = static_cast<f64>(busy) / 1e9;
  if (busy > 0) {
    s.stream_overlap_pct =
        100.0 * static_cast<f64>(busy - un) / static_cast<f64>(busy);
  }
  if (last_pool_hits >= 0 && last_pool_misses >= 0 &&
      last_pool_hits + last_pool_misses > 0) {
    s.pool_hit_rate = last_pool_hits / (last_pool_hits + last_pool_misses);
  }
  if (inflight_n > 0) {
    s.mean_inflight = inflight_sum / static_cast<f64>(inflight_n);
  }
  return s;
}

std::string summary_report() {
  const summary s = compute_summary();
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "trace: %llu events (%llu dropped), %.3f ms observed\n",
                static_cast<unsigned long long>(s.events),
                static_cast<unsigned long long>(s.dropped), s.wall_s * 1e3);
  out += buf;
  if (!s.stages.empty()) {
    out += "per-stage wall time (cat=pipeline):\n";
    for (const stage_stat& st : s.stages) {
      std::snprintf(buf, sizeof(buf), "  %-28s %6llu calls  %10.3f ms\n",
                    st.name.c_str(),
                    static_cast<unsigned long long>(st.count),
                    st.total_s * 1e3);
      out += buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "stream busy %.3f ms, overlap %.1f%% (time >=2 streams "
                "concurrent)\n",
                s.stream_busy_s * 1e3, s.stream_overlap_pct);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "traced memcpy: h2d %llu B, d2h %llu B, d2d %llu B\n",
      static_cast<unsigned long long>(s.h2d_bytes),
      static_cast<unsigned long long>(s.d2h_bytes),
      static_cast<unsigned long long>(s.d2d_bytes));
  out += buf;
  if (s.pool_hit_rate >= 0) {
    std::snprintf(buf, sizeof(buf),
                  "device pool hit rate %.1f%% (%llu traced misses)\n",
                  100.0 * s.pool_hit_rate,
                  static_cast<unsigned long long>(s.pool_misses));
    out += buf;
  }
  if (s.max_inflight > 0) {
    std::snprintf(buf, sizeof(buf),
                  "chunk window occupancy: max %.0f, mean %.2f\n",
                  s.max_inflight, s.mean_inflight);
    out += buf;
  }
  return out;
}

void set_last_dag(std::string dot) {
  collector& c = collector::instance();
  std::lock_guard lk(c.dag_mu);
  c.dag = std::move(dot);
}

std::string last_dag() {
  collector& c = collector::instance();
  std::lock_guard lk(c.dag_mu);
  return c.dag;
}

}  // namespace fzmod::trace
