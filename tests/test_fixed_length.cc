// Unit + property tests: blockwise fixed-length encoder (cuSZp2's lossless
// stage as a modular codec).
#include <gtest/gtest.h>

#include <algorithm>

#include "fzmod/common/rng.hh"
#include "fzmod/encoders/fixed_length.hh"

namespace fzmod::encoders {
namespace {

void roundtrip_expect(const std::vector<u16>& codes, int radius = 512) {
  const auto blob = fixed_length_encode(codes, radius);
  std::vector<u16> out(codes.size());
  fixed_length_decode(blob, radius, out);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ASSERT_EQ(out[i], codes[i]) << i;
  }
}

TEST(FixedLength, RoundTripMixed) {
  rng r(50);
  std::vector<u16> codes(100000);
  for (auto& c : codes) {
    c = static_cast<u16>(std::clamp(r.normal() * 4.0 + 512.0, 0.0, 1023.0));
  }
  roundtrip_expect(codes);
}

TEST(FixedLength, ZeroBlocksCostOneByte) {
  std::vector<u16> codes(3200, 512);  // all center -> zz == 2 (non-zero)
  std::vector<u16> sentinel(3200, 0);  // all sentinel -> zz == 0
  const auto blob_center = fixed_length_encode(codes, 512);
  const auto blob_zero = fixed_length_encode(sentinel, 512);
  // All-sentinel blocks: header + one width byte per block + pad.
  EXPECT_LE(blob_zero.size(), sizeof(u64) + 3200 / flen_block + 16);
  EXPECT_GT(blob_center.size(), blob_zero.size());
}

TEST(FixedLength, WidthAdaptsPerBlock) {
  std::vector<u16> codes(64, 512);
  // Second block has one large deviation: its width grows, first's stays.
  codes[40] = 1000;
  const auto blob = fixed_length_encode(codes, 512);
  std::vector<u16> out(codes.size());
  fixed_length_decode(blob, 512, out);
  EXPECT_EQ(out[40], 1000);
  EXPECT_EQ(out[0], 512);
}

TEST(FixedLength, PartialFinalBlock) {
  for (const std::size_t n : {1u, 31u, 32u, 33u, 1000u}) {
    rng r(51 + n);
    std::vector<u16> codes(n);
    for (auto& c : codes) {
      c = static_cast<u16>(std::clamp(r.normal() * 3.0 + 512.0, 0.0,
                                      1023.0));
    }
    roundtrip_expect(codes);
  }
}

TEST(FixedLength, SentinelsPreserved) {
  rng r(52);
  std::vector<u16> codes(5000);
  for (auto& c : codes) {
    c = r.next_below(50) == 0 ? u16{0}
                              : static_cast<u16>(500 + r.next_below(24));
  }
  roundtrip_expect(codes);
}

TEST(FixedLength, RejectsTruncatedBlob) {
  std::vector<u16> codes(1000, 512);
  auto blob = fixed_length_encode(codes, 512);
  blob.resize(4);
  std::vector<u16> out(1000);
  EXPECT_THROW(fixed_length_decode(blob, 512, out), error);
}

TEST(FixedLength, RejectsUndersizedOutput) {
  std::vector<u16> codes(1000, 512);
  const auto blob = fixed_length_encode(codes, 512);
  std::vector<u16> out(10);
  EXPECT_THROW(fixed_length_decode(blob, 512, out), error);
}

TEST(FixedLength, EmptyInput) {
  std::vector<u16> codes;
  const auto blob = fixed_length_encode(codes, 512);
  std::vector<u16> out;
  fixed_length_decode(blob, 512, out);
}

}  // namespace
}  // namespace fzmod::encoders
