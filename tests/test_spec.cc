// fzmod::spec — declarative pipeline descriptions: grammar and JSON
// parsing, the canonical round-trip identity, registry-backed validation
// errors, archive embedding (self-describing decode with zero caller
// config), and hostile-spec-section fuzzing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "fzmod/core/archive_format.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/metrics/metrics.hh"
#include "fzmod/spec/spec.hh"

namespace fzmod::spec {
namespace {

std::vector<f32> smooth_field(std::size_t n) {
  std::vector<f32> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<f32>(std::sin(0.01 * static_cast<f64>(i)) * 40.0 +
                            0.2 * std::cos(0.3 * static_cast<f64>(i)));
  }
  return v;
}

// ---- grammar ------------------------------------------------------------

TEST(SpecGrammar, RoundTripIdentityTable) {
  // {input, canonical}: parse(input) prints canonical, and
  // parse(canonical) == parse(input) — the round-trip identity.
  const struct {
    const char* input;
    const char* canonical;
  } table[] = {
      {"lorenzo+huffman", "lorenzo+huffman"},
      {"value-range+lorenzo+huffman", "lorenzo+huffman"},
      {"none+lorenzo+huffman", "none+lorenzo+huffman"},
      {"log+spline+fzg+lz", "log+spline+fzg+lz"},
      {"delta+fixed-block", "delta+fixed-block"},
      {"delta(radius=256)+fixed-length", "delta(radius=256)+fixed-length"},
      {"lorenzo(tier=vector)+huffman(tier=double,hist=topk)+lz",
       "lorenzo(tier=vector)+huffman(tier=double,hist=topk)+lz"},
      {"lorenzo(radius=1024,tier=portable)+huffman(hist=topk)",
       "lorenzo(radius=1024,tier=portable)+huffman(hist=topk)"},
      {"  lorenzo+huffman  ", "lorenzo+huffman"},
      {"huffman", "lorenzo+huffman"},  // predictor defaults to lorenzo
  };
  for (const auto& row : table) {
    const pipeline_spec s = parse(row.input);
    EXPECT_EQ(to_string(s), row.canonical) << row.input;
    EXPECT_EQ(parse(to_string(s)), s) << row.input;
  }
}

TEST(SpecGrammar, JsonRoundTrip) {
  for (const char* text :
       {"lorenzo+huffman", "log+spline+fzg+lz", "delta(radius=128)+fixed-block",
        "lorenzo(tier=vector)+huffman(tier=single,hist=topk)+lz"}) {
    const pipeline_spec s = parse(text);
    const std::string json = to_json(s);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(parse(json), s) << json;
  }
}

TEST(SpecGrammar, UnknownModuleNamesTokenPositionAndCandidates) {
  try {
    (void)parse("lorenzo+hufman");
    FAIL() << "expected invalid_argument";
  } catch (const error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("hufman"), std::string::npos) << msg;
    EXPECT_NE(msg.find("position 8"), std::string::npos) << msg;
    EXPECT_NE(msg.find("huffman"), std::string::npos) << msg;  // candidate
    EXPECT_NE(msg.find("delta"), std::string::npos) << msg;    // candidate
  }
}

TEST(SpecGrammar, MalformedSpecsThrow) {
  const char* bad[] = {
      "",                              // nothing
      "+lorenzo",                      // leading separator
      "lorenzo+",                      // trailing separator
      "lorenzo++huffman",              // empty stage
      "huffman+lorenzo",               // codec before predictor
      "lorenzo+lorenzo",               // duplicate stage kind
      "lz+lorenzo+huffman",            // lz must come last
      "lorenzo(radius=1)+huffman",     // radius below minimum
      "lorenzo(radius=99999)+huffman", // radius above maximum
      "lorenzo(radius=12x)+huffman",   // trailing garbage in number
      "lorenzo(bogus=1)+huffman",      // unknown predictor param
      "lorenzo+huffman(radius=8)",     // radius is not a codec param
      "lorenzo+huffman(hist=bogus)",   // unknown hist value
      "lorenzo+huffman(tier=triple)",  // unknown tier value
      "lorenzo+huffman(",              // unclosed parameter list
      "lorenzo+huffman)",              // trailing garbage
      "lorenzo+huffman(tier)",         // missing =value
      "lz(level=3)",                   // lz takes no params
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)parse(text), error) << "'" << text << "'";
  }
}

TEST(SpecGrammar, MalformedJsonThrows) {
  const char* bad[] = {
      "{",                                       // truncated
      "{}garbage",                               // trailing garbage
      R"({"predictor":"lorenzo","predictor":"spline"})",  // duplicate key
      R"({"warp":"9"})",                         // unknown key
      R"({"radius":"512"})",                     // radius must be a number
      R"({"secondary":"yes"})",                  // secondary must be a bool
      R"({"predictor":"hufman"})",               // unknown module
      R"({"codec":"lorenzo"})",                  // predictor is not a codec
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)parse(text), error) << text;
  }
}

TEST(SpecGrammar, ValidateChecksBothElementTypes) {
  pipeline_spec s;
  EXPECT_NO_THROW(validate<f32>(s));
  EXPECT_NO_THROW(validate<f64>(s));
  s.codec = "nonexistent-codec";
  EXPECT_THROW(validate<f32>(s), error);
  EXPECT_THROW(validate<f64>(s), error);
}

// ---- config projection --------------------------------------------------

TEST(SpecConfig, FromConfigToConfigInverse) {
  for (const char* text :
       {"lorenzo+huffman", "log+spline+fzg+lz",
        "delta(radius=256)+fixed-block",
        "lorenzo(tier=portable)+huffman(tier=double,hist=topk)"}) {
    const pipeline_spec s = parse(text);
    const auto cfg = to_config(s, {1e-3, eb_mode::rel});
    EXPECT_EQ(from_config(cfg), s) << text;
    EXPECT_EQ(cfg.eb.eb, 1e-3);
  }
}

TEST(SpecConfig, PresetsProjectOntoSpecsAndBack) {
  for (const char* name : {"default", "speed", "quality"}) {
    const auto cfg = core::pipeline_config::preset(name, {1e-4, eb_mode::rel});
    const pipeline_spec s = from_config(cfg);
    const auto cfg2 = to_config(s, cfg.eb);
    EXPECT_EQ(cfg2.predictor, cfg.predictor) << name;
    EXPECT_EQ(cfg2.codec, cfg.codec) << name;
    EXPECT_EQ(cfg2.secondary, cfg.secondary) << name;
    EXPECT_EQ(cfg2.radius, cfg.radius) << name;
  }
  EXPECT_THROW((void)core::pipeline_config::preset("turbo"), error);
}

TEST(SpecConfig, EnvOverridesApplyToSpecBuiltConfigsLikePresets) {
  // The shared resolution helper (core::resolved) runs for both paths, so
  // FZMOD_HUFF_TIER / FZMOD_KERNEL_TIER behave identically everywhere.
  ::setenv("FZMOD_HUFF_TIER", "canonical", 1);
  ::setenv("FZMOD_KERNEL_TIER", "portable", 1);
  const auto from_spec = to_config(parse("lorenzo+huffman(tier=double)"),
                                   {1e-4, eb_mode::rel});
  const auto from_preset = core::pipeline_config::preset_default();
  ::unsetenv("FZMOD_HUFF_TIER");
  ::unsetenv("FZMOD_KERNEL_TIER");
  EXPECT_EQ(from_spec.huff_tier, encoders::huffman_tier::canonical);
  EXPECT_EQ(from_spec.kernel_tier, device::kernel_tier_policy::portable);
  EXPECT_EQ(from_preset.huff_tier, encoders::huffman_tier::canonical);
  EXPECT_EQ(from_preset.kernel_tier, device::kernel_tier_policy::portable);

  const auto plain = to_config(parse("lorenzo+huffman(tier=double)"),
                               {1e-4, eb_mode::rel});
  EXPECT_EQ(plain.huff_tier, encoders::huffman_tier::double_cached);
}

// ---- archive embedding --------------------------------------------------

TEST(SpecArchive, EmbeddedSpecDecodesWithZeroCallerConfig) {
  const dims3 d{96, 40, 2};
  const auto v = smooth_field(d.len());
  for (const char* text :
       {"lorenzo+huffman", "delta+fixed-block", "spline+fzg+lz",
        "lorenzo(tier=vector)+fixed-length"}) {
    const pipeline_spec s = parse(text);
    core::pipeline<f32> enc(to_config(s, {1e-4, eb_mode::rel}));
    const auto archive = enc.compress(v, d);

    // inspect reports the canonical embedded text without running modules.
    const auto info = core::inspect_archive(archive);
    EXPECT_EQ(info.spec, to_string(s)) << text;
    EXPECT_EQ(parse(info.spec), s) << text;

    // A default-constructed pipeline decodes it: fully self-describing.
    core::pipeline<f32> dec{core::pipeline_config{}};
    const auto rec = dec.decompress(archive);
    const auto err = metrics::compare(v, rec);
    EXPECT_LE(err.max_abs_err,
              metrics::f32_bound_slack(1e-4 * err.range, err.range))
        << text;

    const auto rep = core::verify_archive(archive);
    EXPECT_TRUE(rep.ok()) << text;
    EXPECT_TRUE(rep.spec_ok) << text;
  }
}

TEST(SpecArchive, EqualConfigsEmbedByteIdenticalArchives) {
  const dims3 d{64, 32};
  const auto v = smooth_field(d.len());
  const auto cfg = to_config(parse("delta+huffman"), {1e-4, eb_mode::rel});
  core::pipeline<f32> a(cfg), b(cfg);
  EXPECT_EQ(a.compress(v, d), b.compress(v, d));
}

// ---- hostile spec sections ----------------------------------------------

class SpecSectionFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    core::fmt::set_verify_enabled(true);
    const auto v = smooth_field(dims_.len());
    core::pipeline<f32> p(
        to_config(parse("lorenzo+huffman"), {1e-4, eb_mode::rel}));
    archive_ = p.compress(v, dims_);
    // Non-secondary v2: the spec section is the archive's trailing bytes.
    spec_text_ = core::inspect_archive(archive_).spec;
    ASSERT_FALSE(spec_text_.empty());
    section_bytes_ = sizeof(core::fmt::spec_section_header) +
                     spec_text_.size() + sizeof(u64);
    ASSERT_GT(archive_.size(), section_bytes_);
  }

  void expect_corrupt(const std::vector<u8>& damaged) {
    core::pipeline<f32> p{core::pipeline_config{}};
    try {
      (void)p.decompress(damaged);
      FAIL() << "damaged spec section went undetected";
    } catch (const error& e) {
      EXPECT_EQ(e.code(), status::corrupt_archive) << e.what();
    }
    EXPECT_FALSE(core::verify_archive(damaged).spec_ok);
  }

  dims3 dims_{64, 48};
  std::vector<u8> archive_;
  std::string spec_text_;
  std::size_t section_bytes_ = 0;
};

TEST_F(SpecSectionFuzz, TruncatedSectionIsDetected) {
  for (const std::size_t cut : {std::size_t{1}, sizeof(u64),
                                section_bytes_ - 1}) {
    std::vector<u8> damaged = archive_;
    damaged.resize(damaged.size() - cut);
    expect_corrupt(damaged);
  }
}

TEST_F(SpecSectionFuzz, OversizedTailIsDetected) {
  std::vector<u8> damaged = archive_;
  damaged.push_back(0);
  expect_corrupt(damaged);
  damaged.insert(damaged.end(), 64, 0xAB);
  expect_corrupt(damaged);
}

TEST_F(SpecSectionFuzz, ForgedHeaderFieldsAreDetectedStructurally) {
  // Magic / version / len live in the section header; forging any of
  // them is caught even with digest verification off.
  core::fmt::set_verify_enabled(false);
  const std::size_t hdr_at = archive_.size() - section_bytes_;
  for (const std::size_t off : {std::size_t{0}, std::size_t{4},
                                std::size_t{6}}) {
    std::vector<u8> damaged = archive_;
    damaged[hdr_at + off] ^= 0xFF;
    expect_corrupt(damaged);
  }
  core::fmt::set_verify_enabled(true);
}

TEST_F(SpecSectionFuzz, EverySingleBitFlipInTheSectionIsDetected) {
  // The whole-archive sweep lives in test_fuzz; this pins the contract
  // for the appended section specifically, including its digest word.
  const std::size_t start = archive_.size() - section_bytes_;
  for (std::size_t byte = start; byte < archive_.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<u8> damaged = archive_;
      damaged[byte] ^= static_cast<u8>(1u << bit);
      core::pipeline<f32> p{core::pipeline_config{}};
      EXPECT_THROW((void)p.decompress(damaged), error)
          << "byte " << (byte - start) << " bit " << bit;
    }
  }
}

TEST_F(SpecSectionFuzz, StrippedSectionStaysReadableForCompat) {
  // An archive whose tail is empty (pre-spec writer) must decode: the
  // header's module names still fully describe the pipeline.
  std::vector<u8> stripped = archive_;
  stripped.resize(stripped.size() - section_bytes_);
  EXPECT_TRUE(core::inspect_archive(stripped).spec.empty());
  core::pipeline<f32> p{core::pipeline_config{}};
  const auto v = smooth_field(dims_.len());
  const auto rec = p.decompress(stripped);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(1e-4 * err.range, err.range));
  EXPECT_TRUE(core::verify_archive(stripped).ok());
}

}  // namespace
}  // namespace fzmod::spec
