// Cross-cutting property suite: the error-bound contract (DESIGN.md §6)
// for every compressor, over a parameterized grid of (compressor, dataset
// character, bound) — the repo's strongest invariant check.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "fzmod/baselines/compressor.hh"
#include "fzmod/common/rng.hh"
#include "fzmod/kernels/stats.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod {
namespace {

enum class field_kind { smooth, rough, spiky, tiny_range, mixed_scale };

const char* to_string(field_kind k) {
  switch (k) {
    case field_kind::smooth: return "smooth";
    case field_kind::rough: return "rough";
    case field_kind::spiky: return "spiky";
    case field_kind::tiny_range: return "tiny_range";
    case field_kind::mixed_scale: return "mixed_scale";
  }
  return "?";
}

std::vector<f32> make_field(field_kind k, dims3 d) {
  rng r(static_cast<u64>(k) * 7919 + 3);
  std::vector<f32> v(d.len());
  switch (k) {
    case field_kind::smooth:
      for (std::size_t i = 0; i < v.size(); ++i) {
        const std::size_t x = i % d.x, y = (i / d.x) % d.y;
        v[i] = static_cast<f32>(std::sin(0.03 * x) * std::cos(0.05 * y) *
                                200);
      }
      break;
    case field_kind::rough:
      for (auto& x : v) x = static_cast<f32>(r.uniform(-500, 500));
      break;
    case field_kind::spiky:
      for (std::size_t i = 0; i < v.size(); ++i) {
        v[i] = static_cast<f32>(r.normal());
        if (r.next_below(200) == 0) {
          v[i] = static_cast<f32>(r.uniform(-1, 1) * 1e6);
        }
      }
      break;
    case field_kind::tiny_range:
      for (auto& x : v) x = static_cast<f32>(1.0 + 1e-6 * r.normal());
      break;
    case field_kind::mixed_scale:
      for (std::size_t i = 0; i < v.size(); ++i) {
        const f64 mag = std::pow(10.0, static_cast<f64>(i % 12) - 6.0);
        v[i] = static_cast<f32>(mag * r.normal());
      }
      break;
  }
  return v;
}

using BoundCase = std::tuple<std::string, field_kind, f64>;

class ErrorBoundContract : public ::testing::TestWithParam<BoundCase> {};

TEST_P(ErrorBoundContract, RelBoundHolds) {
  const auto& [name, kind, eb] = GetParam();
  const dims3 d{37, 29, 11};  // awkward (non-power-of-two) on purpose
  const auto v = make_field(kind, d);
  auto c = baselines::make(name);
  const auto archive = c->compress(v, d, {eb, eb_mode::rel});
  const auto rec = c->decompress(archive);
  ASSERT_EQ(rec.size(), v.size());
  const auto mm = kernels::minmax_host<f32>(v);
  const f64 bound = eb * mm.range();
  const f64 max_abs =
      std::max(std::fabs(static_cast<f64>(mm.min)),
               std::fabs(static_cast<f64>(mm.max)));
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err, metrics::f32_bound_slack(bound, max_abs))
      << name << " on " << to_string(kind) << " @ " << eb;
}

std::vector<BoundCase> all_cases() {
  std::vector<BoundCase> cases;
  for (const auto& name : baselines::all_names()) {
    for (const field_kind kind :
         {field_kind::smooth, field_kind::rough, field_kind::spiky,
          field_kind::tiny_range, field_kind::mixed_scale}) {
      for (const f64 eb : {1e-2, 1e-4}) {
        cases.emplace_back(name, kind, eb);
      }
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<BoundCase>& info) {
  std::string name = std::get<0>(info.param);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_" + to_string(std::get<1>(info.param)) +
         (std::get<2>(info.param) > 1e-3 ? "_loose" : "_tight");
}

INSTANTIATE_TEST_SUITE_P(Grid, ErrorBoundContract,
                         ::testing::ValuesIn(all_cases()), case_name);

TEST(ErrorBoundContract, Tight1e6BoundOnSmoothData) {
  // The paper's tightest evaluated bound; checked separately because it is
  // slow on rough data for every compressor.
  const dims3 d{64, 48, 8};
  const auto v = make_field(field_kind::smooth, d);
  for (const auto& name : baselines::all_names()) {
    auto c = baselines::make(name);
    const auto archive = c->compress(v, d, {1e-6, eb_mode::rel});
    const auto rec = c->decompress(archive);
    const auto mm = kernels::minmax_host<f32>(v);
    const auto err = metrics::compare(v, rec);
    EXPECT_LE(err.max_abs_err,
              metrics::f32_bound_slack(1e-6 * mm.range(), 200.0))
        << name;
  }
}

TEST(ErrorBoundContract, LosslessCompressorsAgreeOnDecodedLength) {
  const dims3 d{1000};
  const auto v = make_field(field_kind::smooth, d);
  for (const auto& name : baselines::all_names()) {
    auto c = baselines::make(name);
    const auto rec = c->decompress(c->compress(v, d, {1e-3, eb_mode::rel}));
    EXPECT_EQ(rec.size(), v.size()) << name;
  }
}

}  // namespace
}  // namespace fzmod
