// Integration tests: experimental STF task-graph pipeline (paper §3.3.1),
// including interoperability with the synchronous driver.
#include <gtest/gtest.h>

#include <cmath>

#include "fzmod/common/rng.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/core/stf_pipeline.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod::core {
namespace {

std::vector<f32> wave_field(dims3 d, u64 seed = 77) {
  rng r(seed);
  std::vector<f32> v(d.len());
  for (std::size_t z = 0; z < d.z; ++z) {
    for (std::size_t y = 0; y < d.y; ++y) {
      for (std::size_t x = 0; x < d.x; ++x) {
        v[d.at(x, y, z)] = static_cast<f32>(
            std::sin(0.06 * x) * 25 + std::cos(0.09 * y) * 10 + 0.3 * z +
            0.02 * r.normal());
      }
    }
  }
  return v;
}

TEST(StfPipeline, RoundTrip3D) {
  const dims3 d{50, 40, 12};
  const auto v = wave_field(d);
  const eb_config eb{1e-4, eb_mode::rel};
  const auto archive = stf_compress(v, d, eb);
  const auto rec = stf_decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(eb.eb * err.range, err.range));
}

TEST(StfPipeline, RoundTrip1D) {
  const dims3 d{20011};
  const auto v = wave_field(d, 78);
  const eb_config eb{1e-3, eb_mode::rel};
  const auto archive = stf_compress(v, d, eb);
  const auto rec = stf_decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(eb.eb * err.range, err.range));
}

TEST(StfPipeline, AbsoluteBound) {
  const dims3 d{64, 32};
  const auto v = wave_field(d, 79);
  const eb_config eb{5e-3, eb_mode::abs};
  const auto archive = stf_compress(v, d, eb);
  const auto rec = stf_decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err, metrics::f32_bound_slack(eb.eb, 40.0));
}

TEST(StfPipeline, ArchiveInteropStfToSync) {
  // STF-produced archives decode with the synchronous pipeline driver.
  const dims3 d{48, 36, 8};
  const auto v = wave_field(d, 80);
  const auto archive = stf_compress(v, d, {1e-4, eb_mode::rel});
  pipeline<f32> p(pipeline_config{});
  const auto rec = p.decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(1e-4 * err.range, err.range));
}

TEST(StfPipeline, ArchiveInteropSyncToStf) {
  // Archives from the synchronous FZMod-Default pipeline decode with the
  // STF driver.
  const dims3 d{48, 36, 8};
  const auto v = wave_field(d, 81);
  pipeline<f32> p(pipeline_config::preset_default({1e-4, eb_mode::rel}));
  const auto archive = p.compress(v, d);
  const auto rec = stf_decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(1e-4 * err.range, err.range));
}

TEST(StfPipeline, IdenticalReconstructionToSyncDriver) {
  // Same archive decoded by both drivers must agree bit-for-bit: they run
  // the same integer algorithms, just scheduled differently.
  const dims3 d{40, 30, 6};
  const auto v = wave_field(d, 82);
  const auto archive = stf_compress(v, d, {1e-3, eb_mode::rel});
  const auto rec_stf = stf_decompress(archive);
  pipeline<f32> p(pipeline_config{});
  const auto rec_sync = p.decompress(archive);
  ASSERT_EQ(rec_stf.size(), rec_sync.size());
  for (std::size_t i = 0; i < rec_stf.size(); ++i) {
    ASSERT_EQ(rec_stf[i], rec_sync[i]) << i;
  }
}

TEST(StfPipeline, RejectsForeignCodecArchives) {
  const dims3 d{32, 32};
  const auto v = wave_field(d, 83);
  pipeline<f32> p(pipeline_config::preset_speed({1e-3, eb_mode::rel}));
  const auto archive = p.compress(v, d);  // codec = fzg
  EXPECT_THROW((void)stf_decompress(archive), error);
}

TEST(StfPipeline, RejectsCorruptArchive) {
  std::vector<u8> junk(64, 0x5a);
  EXPECT_THROW((void)stf_decompress(junk), error);
}

TEST(StfPipeline, ValueOutliersSurviveTheGraph) {
  std::vector<f32> v(2000, 1.0f);
  v[1234] = 3.7e30f;
  const auto archive = stf_compress(v, dims3(v.size()), {1e-4, eb_mode::abs});
  const auto rec = stf_decompress(archive);
  EXPECT_EQ(rec[1234], 3.7e30f);
  EXPECT_NEAR(rec[0], 1.0f, 1e-4 * 1.01);
}

}  // namespace
}  // namespace fzmod::core
