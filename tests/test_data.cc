// Unit tests: synthetic dataset generators and raw field I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "fzmod/common/error.hh"
#include "fzmod/data/datasets.hh"
#include "fzmod/data/io.hh"
#include "fzmod/kernels/stats.hh"

namespace fzmod::data {
namespace {

TEST(Catalog, HasTheFourPaperDatasets) {
  const auto cat = catalog();
  ASSERT_EQ(cat.size(), 4u);
  EXPECT_EQ(cat[0].name, "CESM-ATM");
  EXPECT_EQ(cat[1].name, "HACC");
  EXPECT_EQ(cat[2].name, "HURR");
  EXPECT_EQ(cat[3].name, "Nyx");
  // Paper dims recorded (Table 2).
  EXPECT_EQ(cat[0].paper_dims, dims3(3600, 1800, 26));
  EXPECT_EQ(cat[1].paper_dims, dims3(280953867));
  EXPECT_EQ(cat[2].paper_dims, dims3(500, 500, 100));
  EXPECT_EQ(cat[3].paper_dims, dims3(512, 512, 512));
}

TEST(Catalog, FullscaleSwitchesToPaperDims) {
  for (const auto& ds : catalog(true)) {
    EXPECT_EQ(ds.dims, ds.paper_dims) << ds.name;
  }
  for (const auto& ds : catalog(false)) {
    EXPECT_LE(ds.dims.len(), ds.paper_dims.len()) << ds.name;
  }
}

TEST(Generate, DeterministicPerField) {
  const auto ds = describe(dataset_id::hurr);
  const auto a = generate(ds, 2);
  const auto b = generate(ds, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 1009) EXPECT_EQ(a[i], b[i]);
}

TEST(Generate, FieldsDiffer) {
  const auto ds = describe(dataset_id::cesm);
  const auto a = generate(ds, 0);
  const auto b = generate(ds, 1);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < a.size(); i += 101) diffs += (a[i] != b[i]);
  EXPECT_GT(diffs, a.size() / 101 / 2);
}

TEST(Generate, AllFiniteAcrossCatalog) {
  for (const auto& ds : catalog()) {
    const auto v = generate(ds, 0);
    ASSERT_EQ(v.size(), ds.dims.len()) << ds.name;
    for (std::size_t i = 0; i < v.size(); i += 317) {
      ASSERT_TRUE(std::isfinite(v[i])) << ds.name << " @ " << i;
    }
  }
}

TEST(Generate, OutOfRangeFieldThrows) {
  const auto ds = describe(dataset_id::nyx);
  EXPECT_THROW((void)generate(ds, ds.n_fields), error);
  EXPECT_THROW((void)generate(ds, -1), error);
}

TEST(Generate, NyxDensityHasHugeDynamicRange) {
  // The log-normal field drives the paper's extreme Nyx CRs.
  const auto ds = describe(dataset_id::nyx);
  const auto v = generate(ds, 0);
  const auto mm = kernels::minmax_host<f32>(v);
  EXPECT_GT(mm.max / std::max(mm.min, 1e-30f), 1e3);
  EXPECT_GT(mm.min, 0.0f);  // densities are positive
}

TEST(Generate, HaccParticlesRoughCesmSmooth) {
  // Fine-scale roughness separates the regimes that drive Table 3: a
  // climate field varies gently cell-to-cell, while consecutive particles
  // (even halo-grouped ones) jump by the halo radius. Mean |delta| as a
  // fraction of range is the quantizer's-eye view of that.
  auto rel_delta = [](const std::vector<f32>& v) {
    f64 lo = v[0], hi = v[0], sum = 0;
    for (const f32 x : v) {
      lo = std::min<f64>(lo, x);
      hi = std::max<f64>(hi, x);
    }
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
      sum += std::fabs(static_cast<f64>(v[i + 1]) - v[i]);
    }
    return sum / static_cast<f64>(v.size() - 1) / (hi - lo);
  };
  const auto cesm = generate(describe(dataset_id::cesm), 0);
  const auto hacc = generate(describe(dataset_id::hacc), 0);
  EXPECT_GT(rel_delta(hacc), 20 * rel_delta(cesm));
}

TEST(Generate, HaccVelocityFieldsCentredAtZero) {
  const auto ds = describe(dataset_id::hacc);
  const auto v = generate(ds, 3);
  f64 mean = 0;
  for (const f32 x : v) mean += x;
  mean /= static_cast<f64>(v.size());
  EXPECT_NEAR(mean, 0.0, 10.0);
}

TEST(Io, RoundTripRawField) {
  const auto path =
      (std::filesystem::temp_directory_path() / "fzmod_io_test.f32")
          .string();
  std::vector<f32> v{1.5f, -2.25f, 3.75f, 0.0f, 1e30f, -1e-30f};
  store_f32_field(path, v);
  const auto back = load_f32_field(path, dims3(v.size()));
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(back[i], v[i]);
  std::remove(path.c_str());
}

TEST(Io, SizeMismatchThrows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "fzmod_io_test2.f32")
          .string();
  std::vector<f32> v(10, 1.0f);
  store_f32_field(path, v);
  EXPECT_THROW((void)load_f32_field(path, dims3(11)), error);
  std::remove(path.c_str());
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW((void)read_file("/nonexistent/fzmod/path.bin"), error);
}

}  // namespace
}  // namespace fzmod::data
