// Unit tests: evaluation metrics (PSNR, CR, bit rate, Eq. 1 speedup).
#include <gtest/gtest.h>

#include <cmath>

#include "fzmod/common/error.hh"
#include "fzmod/common/rng.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod::metrics {
namespace {

TEST(Compare, IdenticalInputsAreLossless) {
  std::vector<f32> v{1, 2, 3, 4.5f, -2};
  const auto st = compare(v, v);
  EXPECT_EQ(st.max_abs_err, 0.0);
  EXPECT_EQ(st.mse, 0.0);
  EXPECT_TRUE(std::isinf(st.psnr));
  EXPECT_EQ(st.nrmse, 0.0);
}

TEST(Compare, KnownErrorStatistics) {
  std::vector<f32> a{0, 10};          // range 10
  std::vector<f32> b{1, 10};          // one error of 1
  const auto st = compare(a, b);
  EXPECT_DOUBLE_EQ(st.max_abs_err, 1.0);
  EXPECT_DOUBLE_EQ(st.mse, 0.5);
  EXPECT_DOUBLE_EQ(st.range, 10.0);
  // psnr = 20 log10(10) - 10 log10(0.5)
  EXPECT_NEAR(st.psnr, 20.0 + 3.0103, 1e-3);
  EXPECT_NEAR(st.nrmse, std::sqrt(0.5) / 10.0, 1e-12);
}

TEST(Compare, LargeInputParallelPathMatchesSerial) {
  rng r(200);
  std::vector<f32> a(300000), b(300000);
  f64 max_err = 0, sq = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<f32>(r.normal() * 10);
    b[i] = a[i] + static_cast<f32>(r.normal() * 0.01);
    const f64 d = static_cast<f64>(a[i]) - b[i];
    max_err = std::max(max_err, std::fabs(d));
    sq += d * d;
  }
  const auto st = compare(a, b);
  EXPECT_DOUBLE_EQ(st.max_abs_err, max_err);
  EXPECT_NEAR(st.mse, sq / a.size(), std::fabs(sq / a.size()) * 1e-9);
}

TEST(Compare, SizeMismatchThrows) {
  std::vector<f32> a(3), b(4);
  EXPECT_THROW(compare(a, b), error);
}

TEST(Ratios, CompressionRatioAndBitRate) {
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 100), 10.0);
  EXPECT_DOUBLE_EQ(compression_ratio(1000, 0), 0.0);
  // 4-byte floats at CR 16 -> 2 bits/value.
  EXPECT_DOUBLE_EQ(bit_rate(250, 1000), 2.0);
}

TEST(Speedup, MatchesPaperEquationAlgebra) {
  // speedup = 1 / (((BW*CR)^-1 + T^-1) * BW)
  const f64 bw = 35.7, cr = 10.0, t = 200.0;
  const f64 expected = 1.0 / ((1.0 / (bw * cr) + 1.0 / t) * bw);
  EXPECT_DOUBLE_EQ(overall_speedup(bw, cr, t), expected);
}

TEST(Speedup, InfiniteThroughputLimitIsCr) {
  // With T -> inf, speedup approaches CR (pure transfer win).
  EXPECT_NEAR(overall_speedup(10.0, 8.0, 1e12), 8.0, 1e-6);
}

TEST(Speedup, PaperExampleFromSection42) {
  // "when transferring over a 100GB/s network, a compressor with a CR of 2
  //  would need throughput higher than 200GB/s to achieve speedup" — at
  //  exactly 200 GB/s the speedup is 1.
  EXPECT_NEAR(overall_speedup(100.0, 2.0, 200.0), 1.0, 1e-12);
  EXPECT_GT(overall_speedup(100.0, 2.0, 300.0), 1.0);
  EXPECT_LT(overall_speedup(100.0, 2.0, 150.0), 1.0);
}

TEST(Speedup, DegenerateInputsReturnZero) {
  EXPECT_EQ(overall_speedup(0, 10, 10), 0.0);
  EXPECT_EQ(overall_speedup(10, 0, 10), 0.0);
  EXPECT_EQ(overall_speedup(10, 10, 0), 0.0);
}

TEST(Speedup, MonotoneInCrAndThroughput) {
  const f64 base = overall_speedup(35.7, 10, 100);
  EXPECT_GT(overall_speedup(35.7, 20, 100), base);
  EXPECT_GT(overall_speedup(35.7, 10, 200), base);
}

TEST(BoundSlack, AddsHalfUlpScale) {
  const f64 bound = 1e-3;
  EXPECT_GT(f32_bound_slack(bound, 100.0), bound);
  EXPECT_NEAR(f32_bound_slack(bound, 0.0), bound, 1e-18);
  // Slack is proportional to magnitude.
  EXPECT_GT(f32_bound_slack(bound, 1e6), f32_bound_slack(bound, 1.0));
}

}  // namespace
}  // namespace fzmod::metrics
