// Integration tests: the fixed-length codec module and the log-transform
// preprocessor (pointwise-relative bounds), exercising the widened
// stage-1 interface end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "fzmod/common/rng.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod::core {
namespace {

std::vector<f32> positive_lognormal_field(dims3 d, f64 contrast = 8.0) {
  rng r(555);
  std::vector<f32> v(d.len());
  f64 g = 0;
  for (auto& x : v) {
    g = 0.95 * g + 0.05 * r.normal() * 3;  // smooth AR(1) in log space
    x = static_cast<f32>(std::exp(contrast * 0.2 * g));
  }
  return v;
}

TEST(FlenCodec, RegisteredAndRoundTrips) {
  const dims3 d{80, 60};
  std::vector<f32> v(d.len());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.05 * static_cast<f64>(i % 80)) * 10);
  }
  pipeline_config cfg;
  cfg.codec = codec_flen;
  cfg.eb = {1e-4, eb_mode::rel};
  pipeline<f32> p(cfg);
  const auto archive = p.compress(v, d);
  EXPECT_EQ(inspect_archive(archive).codec, codec_flen);
  const auto rec = p.decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(1e-4 * err.range, err.range));
}

TEST(FlenCodec, RatioBetweenHuffmanAndFzg) {
  // The module's selling point: between the two extremes on ratio.
  const dims3 d{256, 128};
  std::vector<f32> v(d.len());
  for (std::size_t y = 0; y < d.y; ++y) {
    for (std::size_t x = 0; x < d.x; ++x) {
      v[d.at(x, y, 0)] =
          static_cast<f32>(std::sin(0.02 * x) * std::cos(0.03 * y) * 100);
    }
  }
  std::map<std::string, std::size_t> sizes;
  for (const char* codec : {codec_huffman, codec_flen, codec_fzg}) {
    pipeline_config cfg;
    cfg.codec = codec;
    cfg.eb = {1e-4, eb_mode::rel};
    pipeline<f32> p(cfg);
    sizes[codec] = p.compress(v, d).size();
  }
  EXPECT_LE(sizes[codec_huffman], sizes[codec_flen]);
  EXPECT_LE(sizes[codec_flen], sizes[codec_fzg]);
}

TEST(LogPreprocessor, DeliversPointwiseRelativeBound) {
  const dims3 d{40000};
  const auto v = positive_lognormal_field(d);
  // abs bound in log space = pointwise relative bound in linear space.
  const f64 eb = 1e-3;
  pipeline_config cfg;
  cfg.preprocessor = preprocess_log;
  cfg.eb = {eb, eb_mode::abs};
  pipeline<f32> p(cfg);
  const auto archive = p.compress(v, d);
  EXPECT_EQ(inspect_archive(archive).preprocessor, preprocess_log);
  const auto rec = p.decompress(archive);
  const f64 rel_tol = std::exp(eb) - 1.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const f64 rel =
        std::fabs(static_cast<f64>(rec[i]) - v[i]) / std::fabs(v[i]);
    ASSERT_LE(rel, rel_tol * (1 + 1e-4) + 1e-7) << i;
  }
}

TEST(LogPreprocessor, HugeDynamicRangeCompressesWell) {
  // The whole point of pw-rel: a field spanning 10 decades compresses to
  // a sane size at uniform *relative* fidelity, where a value-range
  // relative bound would either destroy small values or store big ones
  // raw.
  const dims3 d{60000};
  const auto v = positive_lognormal_field(d, 20.0);
  pipeline_config log_cfg;
  log_cfg.preprocessor = preprocess_log;
  log_cfg.eb = {1e-2, eb_mode::abs};
  pipeline<f32> with_log(log_cfg);
  const auto archive = with_log.compress(v, d);
  EXPECT_GT(metrics::compression_ratio(v.size() * 4, archive.size()), 4.0);
  // Small values keep relative fidelity.
  const auto rec = with_log.decompress(archive);
  for (std::size_t i = 0; i < v.size(); i += 503) {
    if (v[i] < 1e-3f) {
      ASSERT_GT(rec[i], 0.0f) << i;
      ASSERT_LT(std::fabs(rec[i] / v[i] - 1.0), 0.02) << i;
    }
  }
}

TEST(LogPreprocessor, RejectsNonPositiveValues) {
  std::vector<f32> v(1000, 1.0f);
  v[500] = 0.0f;
  pipeline_config cfg;
  cfg.preprocessor = preprocess_log;
  cfg.eb = {1e-3, eb_mode::abs};
  pipeline<f32> p(cfg);
  EXPECT_THROW((void)p.compress(v, dims3(v.size())), error);
  v[500] = -1.0f;
  EXPECT_THROW((void)p.compress(v, dims3(v.size())), error);
}

TEST(LogPreprocessor, WorksWithEveryCodecAndPredictor) {
  const dims3 d{10000};
  const auto v = positive_lognormal_field(d);
  for (const char* predictor : {predictor_lorenzo, predictor_spline}) {
    for (const char* codec : {codec_huffman, codec_fzg, codec_flen}) {
      pipeline_config cfg;
      cfg.preprocessor = preprocess_log;
      cfg.predictor = predictor;
      cfg.codec = codec;
      cfg.eb = {1e-3, eb_mode::abs};
      pipeline<f32> p(cfg);
      const auto rec = p.decompress(p.compress(v, d));
      for (std::size_t i = 0; i < v.size(); i += 997) {
        ASSERT_LT(std::fabs(rec[i] / v[i] - 1.0), 2e-3)
            << predictor << "+" << codec << " @ " << i;
      }
    }
  }
}

TEST(LogPreprocessor, RelativeModeComposes) {
  // rel mode under log: bound scales with the log-field's range.
  const dims3 d{20000};
  const auto v = positive_lognormal_field(d, 12.0);
  pipeline_config cfg;
  cfg.preprocessor = preprocess_log;
  cfg.eb = {1e-5, eb_mode::rel};
  pipeline<f32> p(cfg);
  const auto rec = p.decompress(p.compress(v, d));
  f64 log_lo = 1e300, log_hi = -1e300;
  for (const f32 x : v) {
    log_lo = std::min(log_lo, std::log(static_cast<f64>(x)));
    log_hi = std::max(log_hi, std::log(static_cast<f64>(x)));
  }
  const f64 bound = 1e-5 * (log_hi - log_lo);
  for (std::size_t i = 0; i < v.size(); i += 101) {
    const f64 log_err = std::fabs(std::log(static_cast<f64>(rec[i])) -
                                  std::log(static_cast<f64>(v[i])));
    ASSERT_LE(log_err, bound * (1 + 1e-3) + 1e-6) << i;
  }
}

}  // namespace
}  // namespace fzmod::core
