// Unit tests: fundamental types, error machinery, bit utilities, RNG,
// strict environment-variable parsing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fzmod/common/bits.hh"
#include "fzmod/common/env.hh"
#include "fzmod/common/error.hh"
#include "fzmod/common/rng.hh"
#include "fzmod/common/types.hh"

namespace fzmod {
namespace {

TEST(Dims3, LenAndRank) {
  EXPECT_EQ(dims3(10).len(), 10u);
  EXPECT_EQ(dims3(10).rank(), 1);
  EXPECT_EQ(dims3(4, 5).len(), 20u);
  EXPECT_EQ(dims3(4, 5).rank(), 2);
  EXPECT_EQ(dims3(4, 5, 6).len(), 120u);
  EXPECT_EQ(dims3(4, 5, 6).rank(), 3);
}

TEST(Dims3, LinearIndexing) {
  const dims3 d{7, 5, 3};
  EXPECT_EQ(d.at(0, 0, 0), 0u);
  EXPECT_EQ(d.at(1, 0, 0), 1u);
  EXPECT_EQ(d.at(0, 1, 0), 7u);
  EXPECT_EQ(d.at(0, 0, 1), 35u);
  EXPECT_EQ(d.at(6, 4, 2), d.len() - 1);
}

TEST(EbConfig, ResolveAbsolute) {
  eb_config eb{1e-3, eb_mode::abs};
  EXPECT_DOUBLE_EQ(eb.resolve(100.0), 1e-3);
  EXPECT_DOUBLE_EQ(eb.resolve(0.0), 1e-3);
}

TEST(EbConfig, ResolveRelative) {
  eb_config eb{1e-3, eb_mode::rel};
  EXPECT_DOUBLE_EQ(eb.resolve(100.0), 0.1);
  // Constant field degrades to the raw bound rather than zero.
  EXPECT_DOUBLE_EQ(eb.resolve(0.0), 1e-3);
}

TEST(Error, CarriesStatusAndMessage) {
  try {
    FZMOD_REQUIRE(false, status::corrupt_archive, "boom");
    FAIL() << "should have thrown";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::corrupt_archive);
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Bits, ZigZagRoundTrip32) {
  for (const i32 v : {0, 1, -1, 2, -2, 100, -100, 2147483647, -2147483647}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
  // Small magnitudes map to small codes.
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(Bits, ZigZagRoundTrip64) {
  for (const i64 v : {i64{0}, i64{-1}, i64{1}, i64{1} << 40, -(i64{1} << 40),
                      INT64_MAX, INT64_MIN + 1}) {
    EXPECT_EQ(zigzag_decode64(zigzag_encode64(v)), v) << v;
  }
}

TEST(Bits, BitWidth) {
  EXPECT_EQ(bit_width_u32(0), 0u);
  EXPECT_EQ(bit_width_u32(1), 1u);
  EXPECT_EQ(bit_width_u32(2), 2u);
  EXPECT_EQ(bit_width_u32(255), 8u);
  EXPECT_EQ(bit_width_u32(256), 9u);
  EXPECT_EQ(bit_width_u32(0xffffffffu), 32u);
}

TEST(Bits, WriterReaderRoundTrip) {
  std::vector<u8> buf(128, 0);
  bit_writer bw(buf.data());
  bw.put(0b101, 3);
  bw.put(0xbeef, 16);
  bw.put(1, 1);
  bw.put(0x123456789aULL, 40);
  EXPECT_EQ(bw.bits_written(), 60u);

  bit_reader br(buf.data());
  EXPECT_EQ(br.get(3), 0b101u);
  EXPECT_EQ(br.get(16), 0xbeefu);
  EXPECT_EQ(br.get(1), 1u);
  EXPECT_EQ(br.get(40), 0x123456789aULL);
}

TEST(Bits, ReaderPeekDoesNotConsume) {
  std::vector<u8> buf(64, 0);
  bit_writer bw(buf.data());
  bw.put(0x5a, 8);
  bit_reader br(buf.data());
  EXPECT_EQ(br.peek(8), 0x5au);
  EXPECT_EQ(br.position(), 0u);
  EXPECT_EQ(br.get(8), 0x5au);
  EXPECT_EQ(br.position(), 8u);
}

TEST(Env, ParseU64AcceptsOnlyStrictBase10) {
  EXPECT_EQ(common::parse_u64("0", "X"), 0u);
  EXPECT_EQ(common::parse_u64("123", "X"), 123u);
  EXPECT_EQ(common::parse_u64("18446744073709551615", "X"), ~u64{0});
  for (const char* bad :
       {"", "-1", "+5", "12x", " 12", "12 ", "0x10", "1.5", "four",
        "18446744073709551616", "99999999999999999999999"}) {
    try {
      (void)common::parse_u64(bad, "FZMOD_TEST_KNOB");
      FAIL() << "expected throw for '" << bad << "'";
    } catch (const error& e) {
      EXPECT_EQ(e.code(), status::invalid_argument);
      // The message names the knob so the user knows what to fix.
      EXPECT_NE(std::string(e.what()).find("FZMOD_TEST_KNOB"),
                std::string::npos);
    }
  }
}

TEST(Env, ParseU64PairIsStrictOnBothSides) {
  // Regression for the CLI `--range` parser: the old sscanf accepted
  // trailing garbage ("700,300junk"), extra fields ("1,2,3"), and
  // wrapped negative counts. Strict now.
  const auto [a, b] = common::parse_u64_pair("700,300", "--range");
  EXPECT_EQ(a, 700u);
  EXPECT_EQ(b, 300u);
  const auto [z0, z1] = common::parse_u64_pair("0,0", "--range");
  EXPECT_EQ(z0, 0u);
  EXPECT_EQ(z1, 0u);
  for (const char* bad : {"", ",", "700", "700,", ",300", "1,2,3",
                          "700;300", "700,300junk", "a,3", "5,-2",
                          " 7,2", "7, 2", "99999999999999999999999,1"}) {
    EXPECT_THROW((void)common::parse_u64_pair(bad, "--range"), error)
        << "accepted '" << bad << "'";
  }
}

TEST(Env, EnvU64FallsBackOnlyWhenUnsetOrEmpty) {
  unsetenv("FZMOD_TEST_KNOB");
  EXPECT_EQ(common::env_u64("FZMOD_TEST_KNOB", 42), 42u);
  setenv("FZMOD_TEST_KNOB", "", 1);
  EXPECT_EQ(common::env_u64("FZMOD_TEST_KNOB", 42), 42u);
  setenv("FZMOD_TEST_KNOB", "7", 1);
  EXPECT_EQ(common::env_u64("FZMOD_TEST_KNOB", 42), 7u);
  setenv("FZMOD_TEST_KNOB", "7seven", 1);
  EXPECT_THROW((void)common::env_u64("FZMOD_TEST_KNOB", 42), error);
  unsetenv("FZMOD_TEST_KNOB");
}

TEST(Rng, Deterministic) {
  rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformRange) {
  rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const f64 v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  rng r(13);
  f64 sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const f64 v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

}  // namespace
}  // namespace fzmod
