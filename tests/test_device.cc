// Unit tests: software device runtime — buffers, streams, events, kernel
// launches, transfer accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <thread>

#include "fzmod/device/runtime.hh"

namespace fzmod::device {
namespace {

TEST(Buffer, AllocatesInRequestedSpace) {
  buffer<f32> h(16, space::host);
  buffer<f32> d(16, space::device);
  EXPECT_EQ(h.where(), space::host);
  EXPECT_EQ(d.where(), space::device);
  EXPECT_EQ(h.size(), 16u);
  EXPECT_EQ(d.bytes(), 64u);
  EXPECT_NO_THROW(h.assert_space(space::host));
  EXPECT_THROW(h.assert_space(space::device), error);
}

TEST(Buffer, DeviceAccountingTracksPeak) {
  auto& st = runtime::instance().stats();
  const u64 before = st.device_bytes_in_use.load();
  {
    buffer<u8> d(1 << 20, space::device);
    EXPECT_EQ(st.device_bytes_in_use.load(), before + (1u << 20));
    EXPECT_GE(st.device_bytes_peak.load(), before + (1u << 20));
  }
  EXPECT_EQ(st.device_bytes_in_use.load(), before);
}

TEST(Buffer, MoveTransfersOwnership) {
  buffer<i32> a(8, space::host);
  a.data()[3] = 42;
  buffer<i32> b = std::move(a);
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b.data()[3], 42);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(Stream, OpsRunInFifoOrder) {
  stream s;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    s.enqueue([&order, i] { order.push_back(i); });
  }
  s.sync();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(Stream, SyncIsIdempotentAndReusable) {
  stream s;
  int x = 0;
  s.enqueue([&x] { x = 1; });
  s.sync();
  s.sync();
  s.enqueue([&x] { x = 2; });
  s.sync();
  EXPECT_EQ(x, 2);
}

TEST(Stream, ErrorPropagatesThroughSyncAndClearsQueue) {
  stream s;
  std::atomic<bool> later_ran{false};
  // Gate the first op so both later ops are enqueued before it throws —
  // otherwise "clears the queue" would race with enqueue timing.
  std::mutex gate;
  gate.lock();
  s.enqueue([&gate] { std::lock_guard lk(gate); });
  s.enqueue([] { throw error(status::internal, "kernel died"); });
  s.enqueue([&later_ran] { later_ran = true; });
  gate.unlock();
  EXPECT_THROW(s.sync(), error);
  EXPECT_FALSE(later_ran.load());
  // The stream is usable again after the error was consumed.
  int x = 0;
  s.enqueue([&x] { x = 7; });
  s.sync();
  EXPECT_EQ(x, 7);
}

TEST(Event, CrossStreamOrdering) {
  stream a, b;
  std::atomic<int> value{0};
  event ev;
  a.enqueue([&value] { value = 41; });
  ev.record(a);
  ev.stream_wait(b);
  int seen = -1;
  b.enqueue([&value, &seen] { seen = value.load(); });
  b.sync();
  EXPECT_EQ(seen, 41);
  a.sync();
}

TEST(Event, QueryAndHostWait) {
  stream s;
  event ev;
  ev.record(s);
  ev.wait();
  EXPECT_TRUE(ev.query());
}

TEST(Memcpy, MovesBytesAndCountsDirections) {
  auto& st = runtime::instance().stats();
  st.reset_transfers();
  buffer<u32> h(256, space::host);
  buffer<u32> d(256, space::device);
  std::iota(h.data(), h.data() + 256, 0u);
  stream s;
  copy_async(d, h, s);  // h2d
  buffer<u32> h2(256, space::host);
  copy_async(h2, d, s);  // d2h
  s.sync();
  for (u32 i = 0; i < 256; ++i) EXPECT_EQ(h2.data()[i], i);
  EXPECT_EQ(st.h2d_bytes.load(), 1024u);
  EXPECT_EQ(st.d2h_bytes.load(), 1024u);
}

TEST(Launch, CoversFullIndexSpace) {
  const std::size_t n = 100000;
  buffer<u32> d(n, space::device);
  stream s;
  u32* p = d.data();
  launch(s, n, [p](std::size_t i) { p[i] = static_cast<u32>(i * 2); });
  s.sync();
  for (std::size_t i = 0; i < n; i += 997) {
    EXPECT_EQ(d.data()[i], static_cast<u32>(i * 2));
  }
}

TEST(Launch, BlocksPartitionExactly) {
  const std::size_t n = 1000;
  std::atomic<std::size_t> covered{0};
  stream s;
  launch_blocks(s, n, 64,
                [&covered](std::size_t, std::size_t lo, std::size_t hi) {
                  covered += hi - lo;
                });
  s.sync();
  EXPECT_EQ(covered.load(), n);
}

TEST(Launch, KernelCounterIncrements) {
  auto& st = runtime::instance().stats();
  const u64 before = st.kernels_launched.load();
  stream s;
  launch(s, 10, [](std::size_t) {});
  launch(s, 10, [](std::size_t) {});
  s.sync();
  EXPECT_EQ(st.kernels_launched.load(), before + 2);
}

TEST(ThreadPool, ParallelForHandlesTinyAndHugeGrains) {
  auto& pool = runtime::instance().pool();
  std::atomic<u64> sum{0};
  pool.parallel_for(100, 1, [&sum](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 4950u);
  sum = 0;
  pool.parallel_for(100, 1000, [&sum](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  auto& pool = runtime::instance().pool();
  std::atomic<u64> total{0};
  pool.parallel_for(8, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      pool.parallel_for(100, 10, [&](std::size_t l2, std::size_t h2) {
        total += h2 - l2;
      });
    }
  });
  EXPECT_EQ(total.load(), 800u);
}

TEST(ThreadPool, SubmitReturnsFutureWithExceptions) {
  auto& pool = runtime::instance().pool();
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
  auto bad = pool.submit([] { throw std::runtime_error("nope"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(Pool, BinRounding) {
  EXPECT_EQ(memory_pool::bin_bytes(1), 64u);
  EXPECT_EQ(memory_pool::bin_bytes(64), 64u);
  EXPECT_EQ(memory_pool::bin_bytes(65), 128u);
  EXPECT_EQ(memory_pool::bin_bytes(1000), 1024u);
  EXPECT_EQ(memory_pool::bin_bytes(1024), 1024u);
}

TEST(Pool, BinReuseReturnsSamePointer) {
  pool_stats st;
  memory_pool pool(st, /*enabled=*/true);
  void* p1 = pool.allocate(100);  // bin 128
  pool.deallocate(p1, 100);
  void* p2 = pool.allocate(80);  // same bin -> cached block comes back
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(st.hits.load(), 1u);
  EXPECT_EQ(st.misses.load(), 1u);
  void* p3 = pool.allocate(200);  // different bin -> fresh block
  EXPECT_NE(p3, p2);
  pool.deallocate(p2, 80);
  pool.deallocate(p3, 200);
}

TEST(Pool, AlignmentPreservedOnFreshAndReusedBlocks) {
  pool_stats st;
  memory_pool pool(st, /*enabled=*/true);
  for (const std::size_t sz : {1u, 63u, 100u, 1000u, 4097u}) {
    void* fresh = pool.allocate(sz);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(fresh) % 64, 0u) << sz;
    pool.deallocate(fresh, sz);
    void* reused = pool.allocate(sz);
    EXPECT_EQ(reused, fresh);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(reused) % 64, 0u) << sz;
    pool.deallocate(reused, sz);
  }
}

TEST(Pool, TrimReturnsCachedBytesAndZeroesCounter) {
  pool_stats st;
  memory_pool pool(st, /*enabled=*/true);
  pool.deallocate(pool.allocate(100), 100);    // caches 128
  pool.deallocate(pool.allocate(1000), 1000);  // caches 1024
  EXPECT_EQ(st.bytes_cached.load(), 128u + 1024u);
  const u64 released = pool.trim();
  EXPECT_EQ(released, 128u + 1024u);
  EXPECT_EQ(st.bytes_cached.load(), 0u);
  EXPECT_EQ(st.bytes_trimmed.load(), 128u + 1024u);
  EXPECT_GE(st.trims.load(), 1u);
  // A second trim with nothing cached releases nothing.
  EXPECT_EQ(pool.trim(), 0u);
}

TEST(Pool, ConcurrentAllocFreeIsRaceFree) {
  pool_stats st;
  memory_pool pool(st, /*enabled=*/true);
  constexpr int n_threads = 8, iters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < iters; ++i) {
        const std::size_t sz = 64u << ((i + t) % 4);  // 64..512
        void* p = pool.allocate(sz);
        *static_cast<volatile char*>(p) = static_cast<char>(i);
        pool.deallocate(p, sz);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(st.hits.load() + st.misses.load(),
            static_cast<u64>(n_threads) * iters);
  // Everything was freed, so the cache holds exactly what trim releases.
  const u64 cached = st.bytes_cached.load();
  EXPECT_EQ(pool.trim(), cached);
  EXPECT_EQ(st.bytes_cached.load(), 0u);
}

TEST(Pool, DeviceAccountingStaysExactWithPoolEnabled) {
  // The pool rounds 1000 bytes up to a 1024-byte bin internally, but the
  // runtime ledger must charge the requested size only.
  auto& st = runtime::instance().stats();
  const u64 before = st.device_bytes_in_use.load();
  {
    buffer<u8> d(1000, space::device);
    EXPECT_EQ(st.device_bytes_in_use.load(), before + 1000);
  }
  EXPECT_EQ(st.device_bytes_in_use.load(), before);
}

TEST(Pool, RuntimeReusesBufferBlocks) {
  auto& rt = runtime::instance();
  if (!rt.pool_enabled()) GTEST_SKIP() << "FZMOD_POOL=0";
  auto& ps = rt.stats().device_pool;
  void* first = nullptr;
  {
    buffer<u8> d(4096, space::device);
    first = d.data();
  }
  const u64 hits_before = ps.hits.load();
  buffer<u8> d2(4096, space::device);
  EXPECT_EQ(d2.data(), first);
  EXPECT_EQ(ps.hits.load(), hits_before + 1);
}

TEST(RuntimeStats, ResetPeakRebasesToCurrentUse) {
  auto& st = runtime::instance().stats();
  {
    buffer<u8> big(1 << 20, space::device);
    EXPECT_GE(st.device_bytes_peak.load(), st.device_bytes_in_use.load());
  }
  // Peak still remembers the dead buffer...
  EXPECT_GE(st.device_bytes_peak.load(),
            st.device_bytes_in_use.load() + (1u << 20));
  st.reset_peak();
  // ...until rebased to what is actually live now.
  EXPECT_EQ(st.device_bytes_peak.load(), st.device_bytes_in_use.load());
  buffer<u8> d(1 << 10, space::device);
  EXPECT_GE(st.device_bytes_peak.load(), st.device_bytes_in_use.load());
}

TEST(Buffer, FillZeroAsyncZeroesDeviceDataAndCountsKernel) {
  auto& st = runtime::instance().stats();
  buffer<u32> d(100000, space::device);
  for (std::size_t i = 0; i < d.size(); ++i) d.data()[i] = 0xdeadbeefu;
  const u64 before = st.kernels_launched.load();
  stream s;
  d.fill_zero_async(s);
  s.sync();
  EXPECT_EQ(st.kernels_launched.load(), before + 1);
  for (std::size_t i = 0; i < d.size(); i += 499) {
    ASSERT_EQ(d.data()[i], 0u) << i;
  }
}

TEST(Buffer, EnsureReusesCapacityInPlace) {
  buffer<f32> b(100, space::device);
  f32* p = b.data();
  const std::size_t cap = b.capacity_bytes();
  b.ensure(50);  // shrink: same block, smaller view
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 50u);
  EXPECT_EQ(b.capacity_bytes(), cap);
  b.ensure(100);  // regrow within capacity: still the same block
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 100u);
  b.ensure(500);  // beyond capacity: reallocates
  EXPECT_EQ(b.size(), 500u);
  EXPECT_GE(b.capacity_bytes(), 500 * sizeof(f32));
  // Space change always reallocates.
  b.ensure(500, space::host);
  EXPECT_EQ(b.where(), space::host);
}

TEST(Streams, ConcurrentStreamsMakeIndependentProgress) {
  stream a, b;
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    a.enqueue([&done] { done++; });
    b.enqueue([&done] { done++; });
  }
  a.sync();
  b.sync();
  EXPECT_EQ(done.load(), 40);
}

}  // namespace
}  // namespace fzmod::device
