// Property suite: cross-cutting predictor invariants shared by Lorenzo
// and the spline interpolator — the guarantees pipeline composition
// relies on regardless of which predictor module a config names.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "fzmod/common/rng.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod::core {
namespace {

std::vector<f32> wavy(dims3 d, u64 seed) {
  rng r(seed);
  std::vector<f32> v(d.len());
  for (std::size_t z = 0; z < d.z; ++z) {
    for (std::size_t y = 0; y < d.y; ++y) {
      for (std::size_t x = 0; x < d.x; ++x) {
        v[d.at(x, y, z)] = static_cast<f32>(
            std::sin(0.04 * x + 0.1) * std::cos(0.06 * y) * 50 +
            0.4 * z + 0.02 * r.normal());
      }
    }
  }
  return v;
}

class PredictorProps : public ::testing::TestWithParam<const char*> {};

TEST_P(PredictorProps, DecompressionIsDeterministic) {
  const dims3 d{40, 30, 8};
  const auto v = wavy(d, 1);
  pipeline_config cfg;
  cfg.predictor = GetParam();
  cfg.eb = {1e-4, eb_mode::rel};
  pipeline<f32> p(cfg);
  const auto archive = p.compress(v, d);
  const auto a = p.decompress(archive);
  const auto b = p.decompress(archive);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << i;
}

TEST_P(PredictorProps, RecompressionOfReconstructionIsStable) {
  // Compressing the reconstruction again at the same bound must stay
  // within 2*eb of the original (idempotence up to one quantization) and
  // typically compresses better (already on the lattice).
  const dims3 d{64, 32};
  const auto v = wavy(d, 2);
  pipeline_config cfg;
  cfg.predictor = GetParam();
  cfg.eb = {1e-3, eb_mode::abs};
  pipeline<f32> p(cfg);
  const auto rec1 = p.decompress(p.compress(v, d));
  const auto rec2 = p.decompress(p.compress(rec1, d));
  const auto err = metrics::compare(v, rec2);
  EXPECT_LE(err.max_abs_err, metrics::f32_bound_slack(2e-3, 60.0));
}

TEST_P(PredictorProps, TighterBoundNeverWorsensAccuracy) {
  const dims3 d{50, 20, 5};
  const auto v = wavy(d, 3);
  f64 prev_err = 1e300;
  for (const f64 eb : {1e-2, 1e-3, 1e-4, 1e-5}) {
    pipeline_config cfg;
    cfg.predictor = GetParam();
    cfg.eb = {eb, eb_mode::abs};
    pipeline<f32> p(cfg);
    const auto rec = p.decompress(p.compress(v, d));
    const auto err = metrics::compare(v, rec);
    EXPECT_LE(err.max_abs_err, prev_err * (1 + 1e-9)) << eb;
    prev_err = std::max(err.max_abs_err, 1e-12);
  }
}

TEST_P(PredictorProps, RowVectorAndColumnVectorAgreeWith1D) {
  // {n,1,1} and a flat 1-D field are the same thing; predictors must not
  // care which way the caller spells it.
  const std::size_t n = 4096;
  std::vector<f32> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<f32>(std::sin(0.01 * static_cast<f64>(i)) * 7);
  }
  pipeline_config cfg;
  cfg.predictor = GetParam();
  cfg.eb = {1e-4, eb_mode::abs};
  pipeline<f32> p(cfg);
  const auto a = p.decompress(p.compress(v, dims3{n}));
  const auto b = p.decompress(p.compress(v, dims3{n, 1, 1}));
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(a[i], b[i]) << i;
}

TEST_P(PredictorProps, NegativeFieldsSymmetricToPositive) {
  // Quantization must be sign-symmetric: compressing -x reconstructs to
  // (approximately) the negation of compressing x.
  const dims3 d{60, 25};
  const auto v = wavy(d, 4);
  std::vector<f32> neg(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) neg[i] = -v[i];
  pipeline_config cfg;
  cfg.predictor = GetParam();
  cfg.eb = {1e-3, eb_mode::abs};
  pipeline<f32> p(cfg);
  const auto rec_pos = p.decompress(p.compress(v, d));
  const auto rec_neg = p.decompress(p.compress(neg, d));
  for (std::size_t i = 0; i < v.size(); i += 17) {
    ASSERT_NEAR(rec_pos[i], -rec_neg[i], 2e-3) << i;
  }
}

TEST_P(PredictorProps, ConstantOffsetsDontChangeResidualStructure) {
  // Adding a constant shifts the lattice but not prediction deltas; the
  // archive size should move by at most a few hundred bytes (header,
  // anchors, first-element outlier).
  const dims3 d{80, 40};
  const auto v = wavy(d, 5);
  std::vector<f32> shifted(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) shifted[i] = v[i] + 1000.0f;
  pipeline_config cfg;
  cfg.predictor = GetParam();
  cfg.eb = {1e-3, eb_mode::abs};
  pipeline<f32> p(cfg);
  const auto a = p.compress(v, d);
  const auto b = p.compress(shifted, d);
  // f32 addition perturbs low-order bits, so residuals are similar, not
  // identical; allow 10% + header-scale slack.
  EXPECT_LT(std::fabs(static_cast<f64>(a.size()) -
                      static_cast<f64>(b.size())),
            0.1 * static_cast<f64>(a.size()) + 2048.0);
}

INSTANTIATE_TEST_SUITE_P(BothPredictors, PredictorProps,
                         ::testing::Values(predictor_lorenzo,
                                           predictor_spline),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace fzmod::core
