// Unit + property tests: canonical length-limited Huffman codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "fzmod/common/error.hh"
#include "fzmod/common/rng.hh"
#include "fzmod/encoders/huffman.hh"

namespace fzmod::encoders {
namespace {

std::vector<u32> histogram_of(std::span<const u16> codes, std::size_t nbins) {
  std::vector<u32> h(nbins, 0);
  for (const u16 c : codes) h[c]++;
  return h;
}

void roundtrip_expect(const std::vector<u16>& codes, std::size_t nbins) {
  const auto hist = histogram_of(codes, nbins);
  const auto blob = huffman_encode(codes, hist);
  ASSERT_EQ(huffman_decoded_count(blob), codes.size());
  std::vector<u16> out(codes.size());
  huffman_decode(blob, out);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ASSERT_EQ(out[i], codes[i]) << "at " << i;
  }
  // Every decoder tier must reproduce the same stream (a forced tier the
  // codebook can't support falls back to canonical — still correct).
  for (const huffman_tier t :
       {huffman_tier::canonical, huffman_tier::single_cached,
        huffman_tier::double_cached}) {
    std::vector<u16> tier_out(codes.size());
    huffman_decode(blob, tier_out, t);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      ASSERT_EQ(tier_out[i], codes[i]) << "tier " << to_string(t) << " at "
                                       << i;
    }
  }
}

TEST(HuffmanCodebook, PrefixFreeAndCanonical) {
  std::vector<u32> freq{100, 50, 25, 12, 6, 3, 1, 1};
  const auto book = huffman_codebook::build(freq);
  // Kraft equality for a complete code.
  f64 kraft = 0;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    ASSERT_GT(book.len[s], 0u);
    kraft += std::pow(2.0, -static_cast<f64>(book.len[s]));
  }
  EXPECT_NEAR(kraft, 1.0, 1e-12);
  // More frequent symbols never get longer codes.
  for (std::size_t a = 0; a < freq.size(); ++a) {
    for (std::size_t b = 0; b < freq.size(); ++b) {
      if (freq[a] > freq[b]) {
        EXPECT_LE(book.len[a], book.len[b]);
      }
    }
  }
}

TEST(HuffmanCodebook, SingleSymbolAlphabet) {
  std::vector<u32> freq(16, 0);
  freq[7] = 1000;
  const auto book = huffman_codebook::build(freq);
  EXPECT_EQ(book.len[7], 1u);
  std::vector<u16> codes(5000, 7);
  roundtrip_expect(codes, freq.size());
}

TEST(HuffmanCodebook, EmptyHistogramThrows) {
  std::vector<u32> freq(8, 0);
  EXPECT_THROW(huffman_codebook::build(freq), error);
}

TEST(HuffmanCodebook, LengthCapEnforcedOnPathologicalInput) {
  // Fibonacci-like frequencies force maximal skew (unbounded depth).
  std::vector<u32> freq(48);
  u64 a = 1, b = 1;
  for (auto& f : freq) {
    f = static_cast<u32>(std::min<u64>(a, 0x7fffffff));
    const u64 c = a + b;
    a = b;
    b = c;
  }
  const auto book = huffman_codebook::build(freq);
  u8 maxlen = 0;
  f64 kraft = 0;
  for (std::size_t s = 0; s < freq.size(); ++s) {
    maxlen = std::max(maxlen, book.len[s]);
    if (book.len[s]) kraft += std::pow(2.0, -static_cast<f64>(book.len[s]));
  }
  EXPECT_LE(maxlen, huffman_max_code_len);
  EXPECT_LE(kraft, 1.0 + 1e-12);
  // And it still round-trips.
  rng r(30);
  std::vector<u16> codes(20000);
  for (auto& c : codes) c = static_cast<u16>(r.next_below(freq.size()));
  // Regenerate the histogram to match the actual stream.
  roundtrip_expect(codes, freq.size());
}

TEST(Huffman, RoundTripSkewedDistribution) {
  rng r(31);
  std::vector<u16> codes(200000);
  for (auto& c : codes) {
    const f64 g = r.normal() * 3.0 + 512.0;
    c = static_cast<u16>(std::clamp(g, 0.0, 1023.0));
  }
  roundtrip_expect(codes, 1024);
}

TEST(Huffman, RoundTripUniformDistribution) {
  rng r(32);
  std::vector<u16> codes(100000);
  for (auto& c : codes) c = static_cast<u16>(r.next_below(1024));
  roundtrip_expect(codes, 1024);
}

TEST(Huffman, RoundTripChunkBoundaries) {
  // Exactly one chunk, one chunk +/- 1, several chunks.
  for (const std::size_t n :
       {huffman_chunk - 1, huffman_chunk, huffman_chunk + 1,
        3 * huffman_chunk + 17, std::size_t{1}}) {
    rng r(33 + n);
    std::vector<u16> codes(n);
    for (auto& c : codes) c = static_cast<u16>(r.next_below(16));
    roundtrip_expect(codes, 16);
  }
}

TEST(Huffman, CompressionBeatsRawOnSkewedData) {
  rng r(34);
  std::vector<u16> codes(100000);
  for (auto& c : codes) {
    c = static_cast<u16>(512 + std::clamp(r.normal(), -2.0, 2.0));
  }
  const auto hist = histogram_of(codes, 1024);
  const auto blob = huffman_encode(codes, hist);
  EXPECT_LT(blob.size(), codes.size() * sizeof(u16) / 3);
}

TEST(Huffman, ExpectedBitsMatchesAchievedRate) {
  rng r(35);
  std::vector<u16> codes(131072);
  for (auto& c : codes) {
    const f64 g = r.normal() * 20.0 + 300.0;
    c = static_cast<u16>(std::clamp(g, 0.0, 1023.0));
  }
  const auto hist = histogram_of(codes, 1024);
  const auto book = huffman_codebook::build(hist);
  const f64 expected = book.expected_bits(hist);
  const auto blob = huffman_encode(codes, hist);
  // Blob carries ~1KB metadata + offsets; compare payload scale only.
  const f64 achieved =
      8.0 * static_cast<f64>(blob.size()) / static_cast<f64>(codes.size());
  EXPECT_NEAR(achieved, expected, expected * 0.15 + 0.4);
}

TEST(Huffman, DecodeRejectsCorruptMagic) {
  std::vector<u16> codes(100, 5);
  const auto hist = histogram_of(codes, 16);
  auto blob = huffman_encode(codes, hist);
  blob[0] ^= 0xff;
  std::vector<u16> out(100);
  EXPECT_THROW(huffman_decode(blob, out), error);
}

TEST(Huffman, DecodeRejectsTruncatedBlob) {
  std::vector<u16> codes(10000, 3);
  codes[5] = 9;
  const auto hist = histogram_of(codes, 16);
  auto blob = huffman_encode(codes, hist);
  blob.resize(blob.size() / 2);
  std::vector<u16> out(10000);
  EXPECT_THROW(huffman_decode(blob, out), error);
}

TEST(Huffman, DecodeRejectsUndersizedOutput) {
  std::vector<u16> codes(1000, 1);
  codes[0] = 0;
  const auto hist = histogram_of(codes, 4);
  const auto blob = huffman_encode(codes, hist);
  std::vector<u16> out(10);
  EXPECT_THROW(huffman_decode(blob, out), error);
}

TEST(Huffman, LargeAlphabet32k) {
  // The SZ3 baseline uses radius 16384 -> 32768-bin codebooks.
  rng r(36);
  std::vector<u16> codes(60000);
  for (auto& c : codes) {
    const f64 g = r.normal() * 100.0 + 16384.0;
    c = static_cast<u16>(std::clamp(g, 0.0, 32767.0));
  }
  roundtrip_expect(codes, 32768);
}

TEST(Huffman, RoundTripAllEqualFrequencies) {
  // A complete, perfectly balanced book: every window decodes, so the
  // cached tiers have zero invalid LUT holes.
  std::vector<u16> codes(3 * huffman_chunk + 5);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<u16>(i % 256);
  }
  roundtrip_expect(codes, 256);
}

TEST(HuffmanTiers, SelectionHeuristic) {
  // Short codes + dense chunks: two codes fit one 12-bit window.
  EXPECT_EQ(huffman_select_tier(8, 4.0), huffman_tier::double_cached);
  EXPECT_EQ(huffman_select_tier(24, 5.0), huffman_tier::double_cached);
  EXPECT_EQ(huffman_select_tier(10, 6.0), huffman_tier::double_cached);
  // Average too high for pairs, but the whole book fits a single LUT.
  EXPECT_EQ(huffman_select_tier(10, 6.5), huffman_tier::single_cached);
  EXPECT_EQ(huffman_select_tier(huffman_single_table_bits, 9.0),
            huffman_tier::single_cached);
  // Deep book and high average: only the canonical walk is safe.
  EXPECT_EQ(huffman_select_tier(huffman_single_table_bits + 1, 10.0),
            huffman_tier::canonical);
  EXPECT_EQ(huffman_select_tier(24, 16.0), huffman_tier::canonical);
}

TEST(HuffmanTiers, PerChunkCountersAdvance) {
  rng r(40);
  std::vector<u16> codes(4 * huffman_chunk);
  for (auto& c : codes) c = static_cast<u16>(r.next_below(16));
  const auto hist = histogram_of(codes, 16);
  const auto blob = huffman_encode(codes, hist);
  std::vector<u16> out(codes.size());

  const auto before = huffman_tier_totals();
  huffman_decode(blob, out, huffman_tier::double_cached);
  const auto after_double = huffman_tier_totals();
  EXPECT_EQ(after_double.double_cached - before.double_cached, 4u);

  huffman_decode(blob, out, huffman_tier::single_cached);
  const auto after_single = huffman_tier_totals();
  EXPECT_EQ(after_single.single_cached - after_double.single_cached, 4u);

  huffman_decode(blob, out, huffman_tier::canonical);
  const auto after_canon = huffman_tier_totals();
  EXPECT_EQ(after_canon.canonical - after_single.canonical, 4u);
}

TEST(HuffmanTiers, ForcedSingleFallsBackOnDeepBook) {
  // Fibonacci frequencies push codes past huffman_single_table_bits, so a
  // forced single tier must take the canonical fallback, not build an
  // infeasible LUT.
  std::vector<u32> freq(48);
  u64 a = 1, b = 1;
  for (auto& f : freq) {
    f = static_cast<u32>(std::min<u64>(a, 0x7fffffff));
    const u64 c = a + b;
    a = b;
    b = c;
  }
  const auto book = huffman_codebook::build(freq);
  u32 max_len = 0;
  for (const u8 l : book.len) max_len = std::max<u32>(max_len, l);
  ASSERT_GT(max_len, huffman_single_table_bits);

  rng r(41);
  std::vector<u16> codes(huffman_chunk + 100);
  for (auto& c : codes) c = static_cast<u16>(r.next_below(freq.size()));
  // Encode against the skewed Fibonacci frequencies, not the near-uniform
  // histogram of `codes`, so the blob really carries the deep book.
  const auto blob = huffman_encode(codes, freq);
  std::vector<u16> out(codes.size());

  const auto before = huffman_tier_totals();
  huffman_decode(blob, out, huffman_tier::single_cached);
  const auto after = huffman_tier_totals();
  EXPECT_EQ(after.single_cached, before.single_cached);
  EXPECT_EQ(after.canonical - before.canonical, 2u);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ASSERT_EQ(out[i], codes[i]) << "at " << i;
  }
}

TEST(HuffmanDecodedCount, RejectsTruncatedBlob) {
  std::vector<u16> codes(3 * huffman_chunk, 3);
  codes[7] = 9;
  const auto hist = histogram_of(codes, 16);
  const auto blob = huffman_encode(codes, hist);
  ASSERT_EQ(huffman_decoded_count(blob), codes.size());
  // Any truncation — mid-payload, mid-offsets, mid-lengths, mid-header —
  // must throw instead of returning a count the caller would size an
  // output span from.
  for (const std::size_t keep :
       {blob.size() - 1, blob.size() / 2, std::size_t{40}, std::size_t{10},
        std::size_t{0}}) {
    const std::span<const u8> cut(blob.data(), keep);
    EXPECT_THROW((void)huffman_decoded_count(cut), error) << "keep=" << keep;
  }
}

TEST(HuffmanDecodedCount, RejectsForgedCount) {
  std::vector<u16> codes(1000, 2);
  codes[1] = 7;
  const auto hist = histogram_of(codes, 16);
  auto blob = huffman_encode(codes, hist);
  // Forge the header's symbol count (bytes 8..16): the chunk table no
  // longer matches, so validation must reject it.
  const u64 forged = u64{1} << 40;
  std::memcpy(blob.data() + 8, &forged, sizeof(forged));
  EXPECT_THROW((void)huffman_decoded_count(blob), error);
}

class HuffmanSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HuffmanSizeSweep, RoundTrip) {
  rng r(37 + GetParam());
  std::vector<u16> codes(GetParam());
  for (auto& c : codes) c = static_cast<u16>(r.next_below(64));
  roundtrip_expect(codes, 64);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HuffmanSizeSweep,
                         ::testing::Values(1, 2, 17, 255, 4095, 65536));

}  // namespace
}  // namespace fzmod::encoders
