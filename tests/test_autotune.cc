// Unit tests: pipeline auto-selection (paper future-work item 3).
#include <gtest/gtest.h>

#include <cmath>

#include "fzmod/common/rng.hh"
#include "fzmod/core/autotune.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod::core {
namespace {

std::vector<f32> smooth_field(std::size_t n) {
  std::vector<f32> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<f32>(std::sin(0.002 * static_cast<f64>(i)) * 100);
  }
  return v;
}

std::vector<f32> rough_field(std::size_t n) {
  rng r(321);
  std::vector<f32> v(n);
  for (auto& x : v) x = static_cast<f32>(r.uniform(-1000, 1000));
  return v;
}

TEST(Autotune, ThroughputObjectivePicksSpeedPipeline) {
  const auto v = smooth_field(100000);
  const auto rep = autotune(v, dims3(v.size()), {1e-4, eb_mode::rel},
                            objective::throughput);
  EXPECT_EQ(rep.config.predictor, predictor_lorenzo);
  EXPECT_EQ(rep.config.codec, codec_fzg);
}

TEST(Autotune, QualityObjectiveOnSmoothDataPicksSpline) {
  const auto v = smooth_field(100000);
  const auto rep = autotune(v, dims3(v.size()), {1e-4, eb_mode::rel},
                            objective::quality);
  EXPECT_EQ(rep.config.predictor, predictor_spline);
  EXPECT_EQ(rep.config.histogram, kernels::histogram_kind::topk);
  EXPECT_GT(rep.predictability, 0.9);
}

TEST(Autotune, QualityObjectiveOnRoughDataFallsBackToLorenzo) {
  const auto v = rough_field(100000);
  // Tight bound on white noise: neighbour deltas blow the radius.
  const auto rep = autotune(v, dims3(v.size()), {1e-7, eb_mode::rel},
                            objective::quality);
  EXPECT_LT(rep.predictability, 0.5);
  EXPECT_EQ(rep.config.predictor, predictor_lorenzo);
}

TEST(Autotune, RatioObjectiveEnablesSecondary) {
  for (const auto* make : {"smooth", "rough"}) {
    const auto v =
        make[0] == 's' ? smooth_field(50000) : rough_field(50000);
    const auto rep = autotune(v, dims3(v.size()), {1e-3, eb_mode::rel},
                              objective::ratio);
    EXPECT_TRUE(rep.config.secondary) << make;
  }
}

TEST(Autotune, BalancedPicksTopkOnConcentratedData) {
  // Nearly constant data: almost all deltas quantize to zero.
  std::vector<f32> v(100000, 5.0f);
  for (std::size_t i = 0; i < v.size(); i += 1000) v[i] = 5.001f;
  const auto rep = autotune(v, dims3(v.size()), {1e-2, eb_mode::rel},
                            objective::balanced);
  EXPECT_GT(rep.concentration, 0.6);
  EXPECT_EQ(rep.config.histogram, kernels::histogram_kind::topk);
}

TEST(Autotune, ReportFieldsArePopulated) {
  const auto v = smooth_field(10000);
  const auto rep =
      autotune(v, dims3(v.size()), {1e-4, eb_mode::rel});
  EXPECT_GT(rep.sampled_range, 0.0);
  EXPECT_FALSE(rep.rationale.empty());
  EXPECT_GE(rep.predictability, 0.0);
  EXPECT_LE(rep.predictability, 1.0);
}

TEST(Autotune, ChosenConfigCompressesWithinBound) {
  const auto v = smooth_field(60000);
  for (const objective goal :
       {objective::balanced, objective::throughput, objective::ratio,
        objective::quality}) {
    const eb_config eb{1e-4, eb_mode::rel};
    const auto rep = autotune(v, dims3(v.size()), eb, goal);
    pipeline<f32> p(rep.config);
    const auto rec = p.decompress(p.compress(v, dims3(v.size())));
    const auto err = metrics::compare(v, rec);
    EXPECT_LE(err.max_abs_err,
              metrics::f32_bound_slack(eb.eb * err.range, err.range))
        << to_string(goal);
  }
}

TEST(Autotune, RejectsBadInput) {
  std::vector<f32> v(10);
  EXPECT_THROW((void)autotune(v, dims3(11), {1e-3, eb_mode::rel}), error);
  EXPECT_THROW(
      (void)autotune(std::span<const f32>{}, dims3{0, 1, 1},
                     {1e-3, eb_mode::rel}),
      error);
}

TEST(Autotune, HugeValuesDoNotPoisonStatistics) {
  auto v = smooth_field(50000);
  v[100] = 3e38f;
  const auto rep = autotune(v, dims3(v.size()), {1e-10, eb_mode::abs});
  EXPECT_TRUE(std::isfinite(rep.predictability));
  EXPECT_TRUE(std::isfinite(rep.concentration));
}

}  // namespace
}  // namespace fzmod::core
