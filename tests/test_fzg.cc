// Unit + property tests: FZ-GPU bitshuffle + dictionary codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "fzmod/common/rng.hh"
#include "fzmod/encoders/fzg.hh"

namespace fzmod::encoders {
namespace {

device::buffer<u16> to_device(const std::vector<u16>& v) {
  device::buffer<u16> d(v.size(), device::space::device);
  std::memcpy(d.data(), v.data(), v.size() * sizeof(u16));
  return d;
}

void roundtrip_expect(const std::vector<u16>& codes, int radius = 512) {
  auto dev = to_device(codes);
  fzg_result enc;
  device::stream s;
  fzg_encode_async(dev, radius, enc, s);
  s.sync();
  device::buffer<u16> back(codes.size(), device::space::device);
  fzg_decode_async(enc, back, s);
  s.sync();
  for (std::size_t i = 0; i < codes.size(); ++i) {
    ASSERT_EQ(back.data()[i], codes[i]) << i;
  }
}

TEST(Fzg, RoundTripConcentratedCodes) {
  rng r(40);
  std::vector<u16> codes(100000);
  for (auto& c : codes) {
    const f64 g = r.normal() * 2.0 + 512.0;
    c = static_cast<u16>(std::clamp(g, 1.0, 1023.0));
  }
  roundtrip_expect(codes);
}

TEST(Fzg, RoundTripWithOutlierSentinels) {
  rng r(41);
  std::vector<u16> codes(50000);
  for (auto& c : codes) {
    c = r.next_below(100) == 0
            ? u16{0}
            : static_cast<u16>(std::clamp(r.normal() * 3.0 + 512.0, 1.0,
                                          1023.0));
  }
  roundtrip_expect(codes);
}

TEST(Fzg, RoundTripAllSentinels) {
  std::vector<u16> codes(4096, 0);
  roundtrip_expect(codes);
}

TEST(Fzg, RoundTripUniformHard) {
  rng r(42);
  std::vector<u16> codes(30000);
  for (auto& c : codes) c = static_cast<u16>(r.next_below(1024));
  roundtrip_expect(codes);
}

TEST(Fzg, AllCenterCodesCompressNearNothing) {
  // delta == 0 everywhere -> recentre gives 1 -> only plane 0 non-empty.
  std::vector<u16> codes(65536, 512);
  auto dev = to_device(codes);
  fzg_result enc;
  device::stream s;
  fzg_encode_async(dev, 512, enc, s);
  s.sync();
  // One plane of 65536 bits = 2048 words payload, vs 128Kib raw.
  EXPECT_LT(enc.bytes(), codes.size() * sizeof(u16) / 8);
}

TEST(Fzg, ConcentratedBeatsUniformInSize) {
  rng r(43);
  std::vector<u16> tight(50000), loose(50000);
  for (auto& c : tight) {
    c = static_cast<u16>(std::clamp(r.normal() * 1.5 + 512.0, 1.0, 1023.0));
  }
  for (auto& c : loose) c = static_cast<u16>(1 + r.next_below(1023));
  auto dt = to_device(tight);
  auto dl = to_device(loose);
  fzg_result et, el;
  device::stream s;
  fzg_encode_async(dt, 512, et, s);
  fzg_encode_async(dl, 512, el, s);
  s.sync();
  EXPECT_LT(et.bytes(), el.bytes());
}

TEST(Fzg, LargeRadiusSymbols) {
  // SZ3-regime radius (16384): recentre output up to 32768 needs plane 15.
  rng r(44);
  std::vector<u16> codes(20000);
  for (auto& c : codes) {
    const f64 g = r.normal() * 2000.0 + 16384.0;
    c = static_cast<u16>(std::clamp(g, 1.0, 32767.0));
  }
  roundtrip_expect(codes, 16384);
}

TEST(Fzg, DecodeDetectsBitmapCorruption) {
  std::vector<u16> codes(10000, 512);
  auto dev = to_device(codes);
  fzg_result enc;
  device::stream s;
  fzg_encode_async(dev, 512, enc, s);
  s.sync();
  // Flip a bitmap bit: population no longer matches packed_words.
  enc.payload.data()[0] ^= 0x10u;
  device::buffer<u16> back(codes.size(), device::space::device);
  fzg_decode_async(enc, back, s);
  EXPECT_THROW(s.sync(), error);
}

class FzgSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FzgSizeSweep, RoundTrip) {
  rng r(45 + GetParam());
  std::vector<u16> codes(GetParam());
  for (auto& c : codes) {
    c = static_cast<u16>(std::clamp(r.normal() * 5.0 + 512.0, 0.0, 1023.0));
  }
  roundtrip_expect(codes);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FzgSizeSweep,
                         ::testing::Values(1, 2, 511, 512, 513, 12345));

}  // namespace
}  // namespace fzmod::encoders
