// Unit + property tests: LZ77 + Huffman secondary lossless codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>

#include "fzmod/common/error.hh"
#include "fzmod/common/rng.hh"
#include "fzmod/lossless/lz.hh"

namespace fzmod::lossless {
namespace {

void roundtrip_expect(const std::vector<u8>& raw) {
  const auto blob = compress(raw);
  EXPECT_EQ(decompressed_size(blob), raw.size());
  const auto back = decompress(blob);
  ASSERT_EQ(back.size(), raw.size());
  EXPECT_TRUE(std::equal(raw.begin(), raw.end(), back.begin()));
}

TEST(Lossless, RoundTripText) {
  const std::string s =
      "the quick brown fox jumps over the lazy dog; "
      "the quick brown fox jumps over the lazy dog again and again. ";
  std::vector<u8> raw;
  for (int i = 0; i < 200; ++i) raw.insert(raw.end(), s.begin(), s.end());
  roundtrip_expect(raw);
  const auto blob = compress(raw);
  EXPECT_LT(blob.size(), raw.size() / 5);  // highly repetitive
}

TEST(Lossless, RoundTripEmpty) { roundtrip_expect({}); }

TEST(Lossless, RoundTripTiny) {
  roundtrip_expect({1});
  roundtrip_expect({1, 2, 3});
  roundtrip_expect({0, 0, 0, 0});
}

TEST(Lossless, RoundTripAllZeros) {
  std::vector<u8> raw(1 << 18, 0);
  roundtrip_expect(raw);
  const auto blob = compress(raw);
  EXPECT_LT(blob.size(), raw.size() / 100);
}

TEST(Lossless, RoundTripRandomIncompressible) {
  rng r(60);
  std::vector<u8> raw(100000);
  for (auto& b : raw) b = static_cast<u8>(r.next_u64());
  roundtrip_expect(raw);
  const auto blob = compress(raw);
  // Stored-mode fallback bounds expansion.
  EXPECT_LE(blob.size(), raw.size() + 64);
}

TEST(Lossless, RoundTripRunLengthPatterns) {
  std::vector<u8> raw;
  rng r(61);
  for (int run = 0; run < 500; ++run) {
    const u8 byte = static_cast<u8>(r.next_below(4));
    const std::size_t len = 1 + r.next_below(300);
    raw.insert(raw.end(), len, byte);
  }
  roundtrip_expect(raw);
}

TEST(Lossless, RoundTripOverlappingMatches) {
  // "abcabcabc..." exercises dist < len copies.
  std::vector<u8> raw;
  for (int i = 0; i < 10000; ++i) raw.push_back(static_cast<u8>(i % 3 + 65));
  roundtrip_expect(raw);
}

TEST(Lossless, RoundTripMultiSegment) {
  // > 1 MiB input spans several independent segments.
  rng r(62);
  std::vector<u8> raw(3 * (1u << 20) + 12345);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<u8>((i / 100) % 251);
  }
  roundtrip_expect(raw);
}

TEST(Lossless, RoundTripFloatQuantCodes) {
  // Realistic payload: serialized u16 quant codes around a center.
  rng r(63);
  std::vector<u16> codes(200000);
  for (auto& c : codes) {
    c = static_cast<u16>(std::clamp(r.normal() * 2.0 + 512.0, 0.0, 1023.0));
  }
  std::vector<u8> raw(codes.size() * sizeof(u16));
  std::memcpy(raw.data(), codes.data(), raw.size());
  roundtrip_expect(raw);
  const auto blob = compress(raw);
  EXPECT_LT(blob.size(), raw.size() / 2);
}

TEST(Lossless, RejectsBadMagic) {
  auto blob = compress(std::vector<u8>{1, 2, 3, 4, 5});
  blob[0] ^= 0xff;
  EXPECT_THROW(decompress(blob), error);
}

TEST(Lossless, RejectsTruncatedBlob) {
  std::vector<u8> raw(10000, 7);
  raw[500] = 9;
  auto blob = compress(raw);
  blob.resize(blob.size() / 3);
  EXPECT_THROW(decompress(blob), error);
}

TEST(Lossless, RejectsTooSmallBlob) {
  std::vector<u8> blob(3, 0);
  EXPECT_THROW(decompress(blob), error);
  EXPECT_THROW(decompressed_size(blob), error);
}

class LosslessSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LosslessSizeSweep, RoundTripStructured) {
  rng r(64 + GetParam());
  std::vector<u8> raw(GetParam());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<u8>((i % 16 == 0) ? r.next_u64() : raw[i ? i - 1 : 0]);
  }
  roundtrip_expect(raw);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LosslessSizeSweep,
                         ::testing::Values(7, 64, 4096, 65537, 1 << 20));

}  // namespace
}  // namespace fzmod::lossless
