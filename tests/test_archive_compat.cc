// Integration tests: archive-format invariants and the full module
// compatibility matrix (every preprocessor x predictor x codec x
// secondary combination must round-trip and be decodable by a fresh
// process state).
#include <gtest/gtest.h>

#include <cmath>

#include "fzmod/common/rng.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod::core {
namespace {

std::vector<f32> positive_field(dims3 d) {
  rng r(888);
  std::vector<f32> v(d.len());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(
        std::exp(std::sin(0.01 * static_cast<f64>(i)) * 2 +
                 0.002 * r.normal()) +
        1.0);
  }
  return v;
}

struct combo {
  const char* preprocessor;
  const char* predictor;
  const char* codec;
  bool secondary;
};

std::vector<combo> all_combos() {
  std::vector<combo> out;
  for (const char* pre :
       {preprocess_none, preprocess_value_range, preprocess_log}) {
    for (const char* pred : {predictor_lorenzo, predictor_spline}) {
      for (const char* codec : {codec_huffman, codec_fzg, codec_flen}) {
        for (const bool sec : {false, true}) {
          out.push_back({pre, pred, codec, sec});
        }
      }
    }
  }
  return out;
}

class ComboMatrix : public ::testing::TestWithParam<combo> {};

TEST_P(ComboMatrix, RoundTripsAndSelfDescribes) {
  const auto& c = GetParam();
  const dims3 d{48, 24, 6};
  const auto v = positive_field(d);  // positive: log-compatible

  pipeline_config cfg;
  cfg.preprocessor = c.preprocessor;
  cfg.predictor = c.predictor;
  cfg.codec = c.codec;
  cfg.secondary = c.secondary;
  cfg.eb = {1e-4, std::string_view(c.preprocessor) == preprocess_log
                      ? eb_mode::abs
                      : eb_mode::rel};
  pipeline<f32> producer(cfg);
  const auto archive = producer.compress(v, d);

  const auto info = inspect_archive(archive);
  EXPECT_EQ(info.preprocessor, c.preprocessor);
  EXPECT_EQ(info.predictor, c.predictor);
  EXPECT_EQ(info.codec, c.codec);
  EXPECT_EQ(info.secondary, c.secondary);
  EXPECT_EQ(info.dims, d);

  // A pipeline with a *different* config decodes purely from the header.
  pipeline<f32> consumer(pipeline_config::preset_speed({1, eb_mode::abs}));
  const auto rec = consumer.decompress(archive);
  const auto err = metrics::compare(v, rec);
  if (std::string_view(c.preprocessor) == preprocess_log) {
    // Pointwise relative contract.
    for (std::size_t i = 0; i < v.size(); i += 37) {
      ASSERT_LT(std::fabs(rec[i] / v[i] - 1.0), 2.2e-4) << i;
    }
  } else {
    EXPECT_LE(err.max_abs_err,
              metrics::f32_bound_slack(1e-4 * err.range, err.range));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ComboMatrix, ::testing::ValuesIn(all_combos()),
    [](const auto& info) {
      std::string s = std::string(info.param.preprocessor) + "_" +
                      info.param.predictor + "_" + info.param.codec +
                      (info.param.secondary ? "_lz" : "");
      for (auto& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s;
    });

TEST(ArchiveFormat, HeaderRejectsWrongVersionMagic) {
  const dims3 d{100};
  const auto v = positive_field(d);
  pipeline<f32> p(pipeline_config{});
  auto archive = p.compress(v, d);
  // Outer magic at offset 0; inner magic right after the 16-byte v2 outer
  // header. Flip each and expect rejection.
  auto bad_outer = archive;
  bad_outer[0] ^= 0x01;
  EXPECT_THROW((void)p.decompress(bad_outer), error);
  auto bad_inner = archive;
  bad_inner[16] ^= 0x01;
  EXPECT_THROW((void)p.decompress(bad_inner), error);
  // The inner version field follows the inner magic; an unknown version
  // must be rejected, not guessed at.
  auto bad_version = archive;
  bad_version[20] = 7;
  EXPECT_THROW((void)p.decompress(bad_version), error);
}

TEST(ArchiveFormat, ArchiveSmallerThanRawForCompressibleData) {
  const dims3 d{128, 64};
  std::vector<f32> v(d.len());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.01 * static_cast<f64>(i)));
  }
  for (const char* codec : {codec_huffman, codec_fzg, codec_flen}) {
    pipeline_config cfg;
    cfg.codec = codec;
    cfg.eb = {1e-4, eb_mode::rel};
    pipeline<f32> p(cfg);
    EXPECT_LT(p.compress(v, d).size(), v.size() * 4) << codec;
  }
}

TEST(ArchiveFormat, DeterministicCompression) {
  // Same input + config twice -> byte-identical archives (no hidden
  // nondeterminism from the parallel runtime ends up in the format).
  const dims3 d{64, 32, 4};
  const auto v = positive_field(d);
  for (const char* pred : {predictor_lorenzo, predictor_spline}) {
    pipeline_config cfg;
    cfg.predictor = pred;
    cfg.eb = {1e-4, eb_mode::rel};
    pipeline<f32> p(cfg);
    const auto a = p.compress(v, d);
    const auto b = p.compress(v, d);
    ASSERT_EQ(a.size(), b.size()) << pred;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << pred;
  }
}

TEST(ArchiveFormat, InspectDoesNotRequireModulesToRun) {
  // inspect_archive parses metadata only — even for archives whose codec
  // payload is garbage (it must not attempt decode, and by contract it
  // does not verify digests either; verify_archive is the integrity
  // entry point).
  const dims3 d{500};
  const auto v = positive_field(d);
  pipeline<f32> p(pipeline_config{});
  auto archive = p.compress(v, d);
  // Stomp the codec payload region (after the 16-byte outer and 192-byte
  // v2 inner headers).
  for (std::size_t i = 208; i < std::min<std::size_t>(archive.size(), 248);
       ++i) {
    archive[i] = 0xAA;
  }
  EXPECT_NO_THROW({
    const auto info = inspect_archive(archive);
    EXPECT_EQ(info.dims, d);
    EXPECT_EQ(info.version, 2);
  });
  // The stomped section *is* flagged by the integrity checker...
  const auto rep = verify_archive(archive);
  EXPECT_EQ(rep.version, 2);
  EXPECT_FALSE(rep.codec_ok);
  EXPECT_TRUE(rep.header_ok);
  // ...and rejected by a verifying decode.
  try {
    (void)p.decompress(archive);
    FAIL() << "should have thrown";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::corrupt_archive);
  }
}

}  // namespace
}  // namespace fzmod::core
