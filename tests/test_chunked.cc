// Tests for the chunk-parallel driver and the v3 chunk container:
// chunk planning, ragged tails, v2 byte-identity for single-chunk plans,
// 1-element chunks, decompress_range() slice equality and read isolation
// (a bit flip in one chunk must only damage that chunk), streaming
// compression, snapshot integration, and the pipeline busy guard.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <set>
#include <string_view>
#include <thread>

#include "fzmod/common/rng.hh"
#include "fzmod/core/chunked.hh"
#include "fzmod/core/snapshot.hh"
#include "fzmod/metrics/metrics.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod::core {
namespace {

std::vector<f32> smooth_field(dims3 d, u64 seed = 7) {
  rng r(seed);
  std::vector<f32> v(d.len());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.003 * static_cast<f64>(i)) * 40 +
                            0.05 * r.normal());
  }
  return v;
}

void expect_within_bound(std::span<const f32> a, std::span<const f32> b,
                         f64 rel_eb) {
  ASSERT_EQ(a.size(), b.size());
  const auto err = metrics::compare(a, b);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(rel_eb * err.range, err.range));
}

TEST(ChunkPlan, SlabAlignedAndContiguous) {
  const dims3 d{16, 8, 10};  // slab = 128 elems, 10 slabs
  const auto plan = plan_chunks(d, 300);  // 2 slabs per chunk
  ASSERT_EQ(plan.size(), 5u);
  u64 at = 0;
  for (const auto& e : plan) {
    EXPECT_EQ(e.offset, at);
    EXPECT_EQ(e.len, 256u);
    EXPECT_EQ(e.dims.x, 16u);
    EXPECT_EQ(e.dims.y, 8u);
    EXPECT_EQ(e.dims.z, 2u);
    at += e.len;
  }
  EXPECT_EQ(at, d.len());
}

TEST(ChunkPlan, RaggedTail) {
  const dims3 d{10, 7, 1};  // rows of 10, 7 rows
  const auto plan = plan_chunks(d, 25);  // 2 rows per chunk -> 4 chunks
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.back().len, 10u);  // one leftover row
  EXPECT_EQ(plan.back().dims.y, 1u);
  u64 total = 0;
  for (const auto& e : plan) total += e.len;
  EXPECT_EQ(total, d.len());
}

TEST(ChunkPlan, ChunkSmallerThanSlabClampsToOneSlab) {
  const dims3 d{64, 64, 4};
  const auto plan = plan_chunks(d, 1);  // < one slab -> one slab per chunk
  ASSERT_EQ(plan.size(), 4u);
  for (const auto& e : plan) EXPECT_EQ(e.len, 64u * 64u);
}

TEST(ChunkedOptions, EnvAndOverrideResolution) {
  chunked_options o;
  o.chunk_elems = 123;
  EXPECT_EQ(o.resolve_chunk_elems(4), 123u);  // explicit override wins
  o.chunk_elems = 0;
  o.chunk_mb = 2;
  EXPECT_EQ(o.resolve_chunk_elems(4), (2u << 20) / 4);
  o.jobs = 3;
  EXPECT_EQ(o.resolve_jobs(), 3u);
}

TEST(ChunkedOptions, MalformedEnvThrowsInsteadOfSilentFallback) {
  // Regression: these used to fall back to the default on garbage (the
  // old atoi-style parse), silently masking typos like "16MB".
  chunked_options o;
  setenv("FZMOD_CHUNK_MB", "16MB", 1);
  EXPECT_THROW((void)o.resolve_chunk_elems(4), error);
  setenv("FZMOD_CHUNK_MB", "8", 1);
  EXPECT_EQ(o.resolve_chunk_elems(4), (8u << 20) / 4);
  unsetenv("FZMOD_CHUNK_MB");
  setenv("FZMOD_JOBS", "four", 1);
  EXPECT_THROW((void)o.resolve_jobs(), error);
  setenv("FZMOD_JOBS", "6", 1);
  EXPECT_EQ(o.resolve_jobs(), 6u);
  unsetenv("FZMOD_JOBS");
}

TEST(Chunked, SingleChunkIsByteIdenticalToV2) {
  const dims3 d{60, 40, 1};
  const auto v = smooth_field(d);
  pipeline<f32> plain(pipeline_config{});
  const auto v2 = plain.compress(v, d);

  chunked_options opt;
  opt.chunk_elems = d.len();  // chunk = whole field
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto out = cp.compress(v, d);
  ASSERT_EQ(out.size(), v2.size());
  EXPECT_EQ(out, v2);
  EXPECT_FALSE(fmt::is_chunk_container(out));
}

TEST(Chunked, RoundTrip3DWithRaggedTail) {
  const dims3 d{32, 16, 11};  // 11 slabs of 512
  chunked_options opt;
  opt.chunk_elems = 3 * 32 * 16;  // 3 slabs/chunk -> 4 chunks, ragged tail
  opt.jobs = 4;
  const auto v = smooth_field(d);
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto arch = cp.compress(v, d);
  ASSERT_TRUE(fmt::is_chunk_container(arch));
  const auto info = inspect_chunked(arch);
  EXPECT_TRUE(info.chunked);
  EXPECT_EQ(info.nchunks, 4u);
  EXPECT_EQ(info.chunks.back().raw_len, 2u * 32 * 16);
  const auto back = cp.decompress(arch);
  expect_within_bound(v, back, 1e-4);
}

TEST(Chunked, RoundTrip2D) {
  const dims3 d{100, 60, 1};
  chunked_options opt;
  opt.chunk_elems = 1700;  // 17 rows per chunk
  opt.jobs = 2;
  const auto v = smooth_field(d, 21);
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto arch = cp.compress(v, d);
  ASSERT_TRUE(fmt::is_chunk_container(arch));
  expect_within_bound(v, cp.decompress(arch), 1e-4);
}

TEST(Chunked, OneElementChunksOn1DField) {
  const dims3 d{17, 1, 1};
  chunked_options opt;
  opt.chunk_elems = 1;  // 17 chunks of one element each
  opt.jobs = 4;
  const auto v = smooth_field(d, 3);
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto arch = cp.compress(v, d);
  ASSERT_TRUE(fmt::is_chunk_container(arch));
  EXPECT_EQ(inspect_chunked(arch).nchunks, 17u);
  expect_within_bound(v, cp.decompress(arch), 1e-4);
}

TEST(Chunked, DecompressRangeEqualsFullDecodeSlice) {
  const dims3 d{64, 8, 9};
  chunked_options opt;
  opt.chunk_elems = 2 * 64 * 8;  // 2 slabs/chunk -> 5 chunks
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto v = smooth_field(d, 11);
  const auto arch = cp.compress(v, d);
  ASSERT_TRUE(fmt::is_chunk_container(arch));
  const auto full = cp.decompress(arch);

  // Ranges chosen to hit: chunk-interior, chunk-straddling, first & last
  // element, and the whole field.
  const std::pair<u64, u64> ranges[] = {
      {700, 300}, {64 * 8, 64 * 8}, {0, 1},  {d.len() - 1, 1},
      {0, d.len()}, {100, 2000},
  };
  for (const auto& [off, cnt] : ranges) {
    const auto part = cp.decompress_range(arch, off, cnt);
    ASSERT_EQ(part.size(), cnt);
    for (u64 i = 0; i < cnt; ++i) {
      ASSERT_EQ(part[i], full[off + i]) << "off=" << off << " i=" << i;
    }
  }
  EXPECT_THROW((void)cp.decompress_range(arch, d.len(), 1), error);
}

TEST(Chunked, DecompressRangeRejectsDegenerateRequests) {
  // Regression: zero-length ranges used to return an empty vector (hiding
  // caller bugs), offset+count overflow wrapped into a "valid" tiny
  // range, and a range at the field end slipped past validation on the
  // plain v1/v2 path. All must throw invalid_argument *before* decoding.
  const dims3 d{64, 8, 9};
  chunked_options opt;
  opt.chunk_elems = 2 * 64 * 8;
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto v = smooth_field(d, 11);
  const auto arch = cp.compress(v, d);

  const auto expect_invalid = [&](std::span<const u8> a, u64 off, u64 cnt) {
    try {
      (void)cp.decompress_range(a, off, cnt);
      FAIL() << "expected invalid_argument for off=" << off
             << " cnt=" << cnt;
    } catch (const error& e) {
      EXPECT_EQ(e.code(), status::invalid_argument);
    }
  };
  expect_invalid(arch, 1234, 0);           // zero-length
  expect_invalid(arch, d.len(), 1);        // at the field end
  expect_invalid(arch, d.len() + 7, 1);    // past the field end
  expect_invalid(arch, 0, d.len() + 1);    // overrun
  expect_invalid(arch, 5, ~u64{0});        // offset + count overflows u64
  expect_invalid(arch, ~u64{0}, 2);

  // Same contract on a plain v1/v2 archive — and validation must run
  // before any decode: a corrupt *payload* still yields invalid_argument
  // for an out-of-range request, not corrupt_archive.
  pipeline<f32> plain(pipeline_config{});
  const dims3 pd{40, 5, 1};
  auto parch = plain.compress(smooth_field(pd, 5), pd);
  chunked_pipeline<f32> pcp(pipeline_config{});
  expect_invalid(parch, pd.len(), 1);
  expect_invalid(parch, 10, 0);
  parch[parch.size() / 2] ^= 0x40;  // damage the payload
  expect_invalid(parch, pd.len() + 3, 4);
  expect_invalid(parch, 5, ~u64{0});
}

TEST(Chunked, RangeOnPlainV2ArchiveSlicesFullDecode) {
  const dims3 d{40, 5, 1};
  pipeline<f32> plain(pipeline_config{});
  const auto v = smooth_field(d, 5);
  const auto arch = plain.compress(v, d);
  chunked_pipeline<f32> cp(pipeline_config{});
  const auto full = cp.decompress(arch);
  const auto part = cp.decompress_range(arch, 30, 50);
  ASSERT_EQ(part.size(), 50u);
  for (u64 i = 0; i < 50; ++i) EXPECT_EQ(part[i], full[30 + i]);
}

TEST(Chunked, BitFlipDamagesOnlyItsChunk) {
  const dims3 d{256, 16, 6};
  chunked_options opt;
  opt.chunk_elems = 2 * 256 * 16;  // 3 chunks of 2 slabs
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto v = smooth_field(d, 31);
  auto arch = cp.compress(v, d);
  ASSERT_TRUE(fmt::is_chunk_container(arch));
  const auto info = inspect_chunked(arch);
  ASSERT_EQ(info.nchunks, 3u);

  // Flip one bit in the middle of chunk 0's archive bytes.
  const auto& e0 = info.chunks[0];
  arch[sizeof(fmt::chunk_header_v3) + e0.archive_offset +
       e0.archive_bytes / 2] ^= 0x10;

  // Full decode must fail: chunk 0's digest no longer matches.
  EXPECT_THROW((void)cp.decompress(arch), error);
  // verify_chunked reports exactly chunk 0 as damaged.
  const auto rep = verify_chunked(arch);
  EXPECT_TRUE(rep.container_ok);  // directory + header are intact
  ASSERT_EQ(rep.chunks.size(), 3u);
  EXPECT_FALSE(rep.chunks[0].digest_ok);
  EXPECT_TRUE(rep.chunks[1].ok());
  EXPECT_TRUE(rep.chunks[2].ok());

  // Random access to chunks 1 and 2 never reads chunk 0's bytes, so it
  // still succeeds and still matches the original data.
  const u64 lo = info.chunks[1].raw_offset;
  const u64 cnt = info.chunks[1].raw_len + info.chunks[2].raw_len;
  const auto part = cp.decompress_range(arch, lo, cnt);
  expect_within_bound(std::span<const f32>(v).subspan(lo, cnt), part, 1e-4);
  // ...while a range touching chunk 0 throws.
  EXPECT_THROW((void)cp.decompress_range(arch, 0, 16), error);
}

TEST(Chunked, StreamingEqualsInMemoryCompression) {
  const dims3 d{128, 32, 8};
  chunked_options opt;
  opt.chunk_elems = 3 * 128 * 32;
  opt.jobs = 3;
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto v = smooth_field(d, 99);
  const auto whole = cp.compress(v, d);

  std::vector<u8> streamed;
  std::atomic<std::size_t> pulls{0};
  cp.compress_stream(
      [&](f32* dst, u64 off, std::size_t n) {
        pulls.fetch_add(1, std::memory_order_relaxed);
        std::copy_n(v.data() + off, n, dst);
      },
      d, [&](std::span<const u8> b) {
        streamed.insert(streamed.end(), b.begin(), b.end());
      });
  EXPECT_EQ(whole, streamed);
  EXPECT_EQ(pulls.load(), 3u);  // one pull per chunk
}

TEST(Chunked, DecompressAnyHandlesBothForms) {
  const dims3 d{64, 24, 1};
  const auto v = smooth_field(d, 42);
  pipeline<f32> plain(pipeline_config{});
  const auto v2 = plain.compress(v, d);
  chunked_options opt;
  opt.chunk_elems = 64 * 6;
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto v3 = cp.compress(v, d);
  ASSERT_TRUE(fmt::is_chunk_container(v3));
  expect_within_bound(v, decompress_any<f32>(v2), 1e-4);
  expect_within_bound(v, decompress_any<f32>(v3), 1e-4);
}

TEST(Chunked, DtypeMismatchThrows) {
  const dims3 d{64, 24, 1};
  chunked_options opt;
  opt.chunk_elems = 64 * 6;
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto arch = cp.compress(smooth_field(d), d);
  chunked_pipeline<f64> cp64(pipeline_config{});
  EXPECT_THROW((void)cp64.decompress(arch), error);
}

TEST(Chunked, VerifyChunkedOnCleanContainerAndPlainArchive) {
  const dims3 d{64, 24, 1};
  chunked_options opt;
  opt.chunk_elems = 64 * 8;
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto v3 = cp.compress(smooth_field(d), d);
  EXPECT_TRUE(verify_chunked(v3).ok());

  pipeline<f32> plain(pipeline_config{});
  const auto v2 = plain.compress(smooth_field(d), d);
  const auto rep = verify_chunked(v2);
  EXPECT_TRUE(rep.ok());
  ASSERT_EQ(rep.chunks.size(), 1u);
  EXPECT_EQ(rep.chunks[0].inner.version, 2u);
}

TEST(Chunked, TruncatedContainerThrows) {
  const dims3 d{64, 24, 1};
  chunked_options opt;
  opt.chunk_elems = 64 * 6;
  chunked_pipeline<f32> cp(pipeline_config{}, opt);
  const auto arch = cp.compress(smooth_field(d), d);
  for (const std::size_t keep :
       {std::size_t{5}, sizeof(fmt::chunk_header_v3), arch.size() - 9}) {
    EXPECT_THROW(
        (void)cp.decompress(std::span<const u8>(arch.data(), keep)), error);
  }
}

TEST(Snapshot, ChunkedFieldsRoundTripThroughSnapshot) {
  const dims3 d{64, 16, 6};
  const auto v = smooth_field(d, 77);
  snapshot_writer w;
  chunked_options opt;
  opt.chunk_elems = 2 * 64 * 16;
  w.set_chunking(opt);
  w.add("temperature", v, d);
  const auto blob = w.finish();

  snapshot_reader r(blob);
  ASSERT_TRUE(fmt::is_chunk_container(r.archive("temperature")));
  EXPECT_TRUE(r.verify_all());
  EXPECT_TRUE(r.verify("temperature").ok());
  expect_within_bound(v, r.read("temperature"), 1e-4);
}

TEST(Pipeline, ConcurrentUseOfOnePipelineThrows) {
  const dims3 d{96, 64, 4};
  const auto v = smooth_field(d, 13);
  pipeline<f32> pipe(pipeline_config{});
  std::atomic<int> busy_errors{0};
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  // Hammer one pipeline from several threads: every call must either run
  // exclusively or throw the busy error — never corrupt scratch silently.
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int k = 0; k < 8; ++k) {
        try {
          const auto arch = pipe.compress(v, d);
          expect_within_bound(v, decompress_any<f32>(arch), 1e-4);
          successes.fetch_add(1);
        } catch (const error&) {
          busy_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(successes.load(), 1);
  EXPECT_EQ(successes.load() + busy_errors.load(), 32);
}

TEST(Chunked, TraceSlotOccupancyMatchesJobs) {
  // The slot scheduler publishes its occupancy through the trace
  // recorder: one "chunk#N" span per chunk, a chunked.slots counter
  // equal to the worker count, and chunked.inflight samples that never
  // exceed the claim window (2 x jobs).
  trace::set_enabled(true);
  trace::clear();
  const dims3 d{64, 16, 12};
  const auto v = smooth_field(d, 23);
  chunked_options opt;
  opt.chunk_elems = 2 * 64 * 16;  // 6 chunks of 2 slabs
  opt.jobs = 3;
  chunked_pipeline<f32> pipe(pipeline_config{}, opt);
  const auto arch = pipe.compress(v, d);
  const u64 nchunks = inspect_chunked(arch).nchunks;
  ASSERT_EQ(nchunks, 6u);

  const auto evs = trace::snapshot();
  std::set<std::string> chunk_spans;
  f64 slots = -1, max_inflight = 0;
  u64 commits = 0;
  for (const auto& e : evs) {
    if (e.k == trace::kind::span && std::string_view(e.cat) == "chunked") {
      chunk_spans.insert(e.name);
    } else if (e.k == trace::kind::counter &&
               std::string_view(e.name) == "chunked.slots") {
      slots = e.value;
    } else if (e.k == trace::kind::counter &&
               std::string_view(e.name) == "chunked.inflight") {
      max_inflight = std::max(max_inflight, e.value);
    } else if (e.k == trace::kind::instant &&
               std::string_view(e.cat) == "chunked" &&
               std::string_view(e.name) == "commit") {
      ++commits;
    }
  }
  trace::set_enabled(false);
  trace::clear();

  // One span per chunk, uniquely named chunk#0..chunk#5.
  EXPECT_EQ(chunk_spans.size(), nchunks);
  for (u64 c = 0; c < nchunks; ++c) {
    EXPECT_TRUE(chunk_spans.count("chunk#" + std::to_string(c)));
  }
  // Worker count = min(jobs, nchunks) = 3; every chunk commits once;
  // in-flight occupancy is bounded by the 2x window.
  EXPECT_EQ(slots, 3.0);
  EXPECT_EQ(commits, nchunks);
  EXPECT_GE(max_inflight, 1.0);
  EXPECT_LE(max_inflight, 2.0 * 3.0);

  // The traced run still round-trips.
  expect_within_bound(v, decompress_any<f32>(arch), 1e-4);
}

}  // namespace
}  // namespace fzmod::core
