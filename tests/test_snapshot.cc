// Integration tests: multi-field snapshot container.
#include <gtest/gtest.h>

#include <cmath>

#include "fzmod/common/rng.hh"
#include "fzmod/core/snapshot.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod::core {
namespace {

std::vector<f32> field_of(dims3 d, u64 seed) {
  rng r(seed);
  std::vector<f32> v(d.len());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.01 * static_cast<f64>(i)) * 10 +
                            0.01 * r.normal());
  }
  return v;
}

TEST(Snapshot, RoundTripsMultipleFields) {
  const dims3 da{50, 40};
  const dims3 db{3000};
  const auto a = field_of(da, 1);
  const auto b = field_of(db, 2);

  snapshot_writer w(pipeline_config::preset_default({1e-4, eb_mode::rel}));
  w.add("temperature", a, da);
  w.add("pressure", b, db);
  EXPECT_EQ(w.field_count(), 2u);
  const auto blob = w.finish();

  snapshot_reader r(blob);
  ASSERT_EQ(r.entries().size(), 2u);
  EXPECT_TRUE(r.contains("temperature"));
  EXPECT_TRUE(r.contains("pressure"));
  EXPECT_FALSE(r.contains("humidity"));

  const auto ra = r.read("temperature");
  const auto rb = r.read("pressure");
  const auto ea = metrics::compare(a, ra);
  const auto eb_ = metrics::compare(b, rb);
  EXPECT_LE(ea.max_abs_err,
            metrics::f32_bound_slack(1e-4 * ea.range, ea.range));
  EXPECT_LE(eb_.max_abs_err,
            metrics::f32_bound_slack(1e-4 * eb_.range, eb_.range));
}

TEST(Snapshot, PerFieldPipelineOverride) {
  const dims3 d{64, 64};
  const auto v = field_of(d, 3);
  snapshot_writer w(pipeline_config::preset_default({1e-4, eb_mode::rel}));
  w.add("default", v, d);
  w.add("speedy", v, d,
        pipeline_config::preset_speed({1e-4, eb_mode::rel}));
  const auto blob = w.finish();

  snapshot_reader r(blob);
  // Overridden field carries its own module names in its archive.
  EXPECT_EQ(inspect_archive(r.archive("default")).codec, codec_huffman);
  EXPECT_EQ(inspect_archive(r.archive("speedy")).codec, codec_fzg);
  // Both honour the bound.
  for (const char* name : {"default", "speedy"}) {
    const auto rec = r.read(name);
    const auto err = metrics::compare(v, rec);
    EXPECT_LE(err.max_abs_err,
              metrics::f32_bound_slack(1e-4 * err.range, err.range))
        << name;
  }
}

TEST(Snapshot, EntriesPreserveMetadata) {
  const dims3 d{10, 20, 30};
  snapshot_writer w;
  w.add("rho", field_of(d, 4), d);
  const auto blob = w.finish();
  snapshot_reader r(blob);
  const auto& e = r.entries().front();
  EXPECT_EQ(e.name, "rho");
  EXPECT_EQ(e.dims, d);
  EXPECT_EQ(e.type, dtype::f32);
  EXPECT_GT(e.bytes, 0u);
}

TEST(Snapshot, DuplicateNamesRejected) {
  const dims3 d{100};
  snapshot_writer w;
  w.add("x", field_of(d, 5), d);
  EXPECT_THROW(w.add("x", field_of(d, 6), d), error);
}

TEST(Snapshot, BadNamesRejected) {
  const dims3 d{10};
  snapshot_writer w;
  EXPECT_THROW(w.add("", field_of(d, 7), d), error);
  EXPECT_THROW(w.add(std::string(300, 'a'), field_of(d, 7), d), error);
}

TEST(Snapshot, UnknownFieldThrows) {
  snapshot_writer w;
  w.add("only", field_of(dims3{10}, 8), dims3{10});
  const auto blob = w.finish();
  snapshot_reader r(blob);
  EXPECT_THROW((void)r.read("other"), error);
  EXPECT_THROW((void)r.archive("other"), error);
}

TEST(Snapshot, CorruptBlobRejected) {
  std::vector<u8> junk(64, 0x11);
  EXPECT_THROW(snapshot_reader r(junk), error);
  std::vector<u8> tiny(4, 0);
  EXPECT_THROW(snapshot_reader r2(tiny), error);
}

TEST(Snapshot, TruncatedBlobRejected) {
  snapshot_writer w;
  w.add("f", field_of(dims3{5000}, 9), dims3{5000});
  auto blob = w.finish();
  blob.resize(blob.size() - 100);
  EXPECT_THROW(snapshot_reader r(blob), error);
}

TEST(Snapshot, FinishIsNonDestructive) {
  const dims3 d{200};
  snapshot_writer w;
  w.add("a", field_of(d, 10), d);
  const auto blob1 = w.finish();
  w.add("b", field_of(d, 11), d);
  const auto blob2 = w.finish();
  EXPECT_GT(blob2.size(), blob1.size());
  snapshot_reader r1(blob1), r2(blob2);
  EXPECT_EQ(r1.entries().size(), 1u);
  EXPECT_EQ(r2.entries().size(), 2u);
}

TEST(Snapshot, EmptySnapshotRoundTrips) {
  snapshot_writer w;
  const auto blob = w.finish();
  snapshot_reader r(blob);
  EXPECT_TRUE(r.entries().empty());
}

}  // namespace
}  // namespace fzmod::core
