// Unit tests: sequential task flow library — dependency inference, data
// coherence, transfer insertion, concurrency, error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "fzmod/stf/stf.hh"

namespace fzmod::stf {
namespace {

TEST(Stf, ImportMakesHostInstanceValid) {
  context ctx;
  std::vector<f32> v{1, 2, 3};
  auto ld = ctx.import<f32>(v);
  EXPECT_EQ(ld.size(), 3u);
  auto span = ld.fetch_host();
  EXPECT_EQ(span[2], 3.0f);
}

TEST(Stf, RawOrderingWriterThenReader) {
  context ctx;
  auto ld = ctx.make_data<i32>(100);
  ctx.submit(
      "producer", place::device,
      [](device::stream&, device::buffer<i32>& d) {
        for (std::size_t i = 0; i < d.size(); ++i) {
          d.data()[i] = static_cast<i32>(i);
        }
      },
      write(ld));
  i64 sum = 0;
  ctx.submit(
      "consumer", place::device,
      [&sum](device::stream&, device::buffer<i32>& d) {
        sum = std::accumulate(d.data(), d.data() + d.size(), i64{0});
      },
      read(ld));
  ctx.finalize();
  EXPECT_EQ(sum, 4950);
}

TEST(Stf, AutomaticDeviceToHostTransfer) {
  auto& st = device::runtime::instance().stats();
  context ctx;
  auto ld = ctx.make_data<u8>(1000);
  ctx.submit(
      "fill-on-device", place::device,
      [](device::stream&, device::buffer<u8>& d) {
        std::memset(d.data(), 7, d.size());
      },
      write(ld));
  st.reset_transfers();
  u8 seen = 0;
  ctx.submit(
      "read-on-host", place::host,
      [&seen](device::stream&, device::buffer<u8>& d) { seen = d.data()[99]; },
      read(ld));
  ctx.finalize();
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(st.d2h_bytes.load(), 1000u);
}

TEST(Stf, WriteAccessSkipsStaleFetch) {
  auto& st = device::runtime::instance().stats();
  context ctx;
  std::vector<f32> v(512, 1.0f);
  auto ld = ctx.import<f32>(v);
  st.reset_transfers();
  // Pure write on the device must not pay an H2D fetch of stale contents.
  ctx.submit(
      "overwrite", place::device,
      [](device::stream&, device::buffer<f32>& d) {
        for (std::size_t i = 0; i < d.size(); ++i) d.data()[i] = 2.0f;
      },
      write(ld));
  ctx.finalize();
  EXPECT_EQ(st.h2d_bytes.load(), 0u);
  EXPECT_EQ(ld.fetch_host()[0], 2.0f);
}

TEST(Stf, ReadersDoNotBlockEachOther) {
  context ctx;
  auto ld = ctx.make_data<i32>(4);
  ctx.submit(
      "init", place::host,
      [](device::stream&, device::buffer<i32>& d) {
        std::fill(d.data(), d.data() + d.size(), 5);
      },
      write(ld));
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int r = 0; r < 4; ++r) {
    ctx.submit(
        "reader", place::host,
        [&](device::stream&, device::buffer<i32>&) {
          const int now = ++concurrent;
          int p = peak.load();
          while (now > p && !peak.compare_exchange_weak(p, now)) {
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          --concurrent;
        },
        read(ld));
  }
  ctx.finalize();
  // With a >= 4-worker pool, at least two readers must have overlapped.
  EXPECT_GE(peak.load(), 2);
}

TEST(Stf, WarOrderingWriterWaitsForReaders) {
  context ctx;
  auto ld = ctx.make_data<i32>(1);
  std::vector<int> log;
  std::mutex log_mu;
  ctx.submit(
      "w0", place::host,
      [&](device::stream&, device::buffer<i32>& d) {
        d.data()[0] = 1;
        std::lock_guard lk(log_mu);
        log.push_back(0);
      },
      write(ld));
  for (int r = 1; r <= 3; ++r) {
    ctx.submit(
        "reader", place::host,
        [&, r](device::stream&, device::buffer<i32>& d) {
          EXPECT_EQ(d.data()[0], 1);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          std::lock_guard lk(log_mu);
          log.push_back(r);
        },
        read(ld));
  }
  ctx.submit(
      "w1", place::host,
      [&](device::stream&, device::buffer<i32>& d) {
        d.data()[0] = 2;
        std::lock_guard lk(log_mu);
        log.push_back(99);
      },
      write(ld));
  ctx.finalize();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log.front(), 0);
  EXPECT_EQ(log.back(), 99);  // the second writer ran after every reader
}

TEST(Stf, IndependentBranchesRunConcurrently) {
  context ctx;
  auto a = ctx.make_data<i32>(1);
  auto b = ctx.make_data<i32>(1);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  auto body = [&](device::stream&, device::buffer<i32>& d) {
    const int now = ++concurrent;
    int p = peak.load();
    while (now > p && !peak.compare_exchange_weak(p, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    d.data()[0] = 1;
    --concurrent;
  };
  ctx.submit("branch-a", place::host, body, write(a));
  ctx.submit("branch-b", place::host, body, write(b));
  ctx.finalize();
  EXPECT_GE(peak.load(), 2);
}

TEST(Stf, DiamondDependencyJoins) {
  context ctx;
  auto src = ctx.make_data<i32>(8);
  auto left = ctx.make_data<i32>(8);
  auto right = ctx.make_data<i32>(8);
  auto sink = ctx.make_data<i32>(8);
  ctx.submit(
      "src", place::host,
      [](device::stream&, device::buffer<i32>& d) {
        std::iota(d.data(), d.data() + d.size(), 0);
      },
      write(src));
  ctx.submit(
      "left", place::host,
      [](device::stream&, device::buffer<i32>& s, device::buffer<i32>& l) {
        for (std::size_t i = 0; i < s.size(); ++i) {
          l.data()[i] = s.data()[i] * 2;
        }
      },
      read(src), write(left));
  ctx.submit(
      "right", place::host,
      [](device::stream&, device::buffer<i32>& s, device::buffer<i32>& r) {
        for (std::size_t i = 0; i < s.size(); ++i) {
          r.data()[i] = s.data()[i] + 100;
        }
      },
      read(src), write(right));
  ctx.submit(
      "join", place::host,
      [](device::stream&, device::buffer<i32>& l, device::buffer<i32>& r,
         device::buffer<i32>& out) {
        for (std::size_t i = 0; i < l.size(); ++i) {
          out.data()[i] = l.data()[i] + r.data()[i];
        }
      },
      read(left), read(right), write(sink));
  ctx.finalize();
  const auto result = sink.fetch_host();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(result[i], static_cast<i32>(3 * i + 100));
  }
}

TEST(Stf, TaskErrorSurfacesAtFinalize) {
  context ctx;
  auto ld = ctx.make_data<i32>(4);
  ctx.submit(
      "boom", place::host,
      [](device::stream&, device::buffer<i32>&) {
        throw error(status::internal, "task failed");
      },
      write(ld));
  std::atomic<bool> successor_ran{false};
  ctx.submit(
      "after", place::host,
      [&](device::stream&, device::buffer<i32>&) { successor_ran = true; },
      read(ld));
  EXPECT_THROW(ctx.finalize(), error);
  // Poisoned graphs skip successor bodies rather than hanging.
  EXPECT_FALSE(successor_ran.load());
}

TEST(Stf, ReadOfUninitializedDataThrows) {
  context ctx;
  auto ld = ctx.make_data<i32>(4);
  ctx.submit(
      "read-garbage", place::host,
      [](device::stream&, device::buffer<i32>&) {}, read(ld));
  EXPECT_THROW(ctx.finalize(), error);
}

TEST(Stf, RwRoundTripAcrossPlaces) {
  context ctx;
  std::vector<i32> v(64, 1);
  auto ld = ctx.import<i32>(v);
  for (int pass = 0; pass < 4; ++pass) {
    const place p = pass % 2 ? place::host : place::device;
    ctx.submit(
        "increment", p,
        [](device::stream&, device::buffer<i32>& d) {
          for (std::size_t i = 0; i < d.size(); ++i) d.data()[i] += 1;
        },
        rw(ld));
  }
  ctx.finalize();
  EXPECT_EQ(ld.fetch_host()[0], 5);
  EXPECT_EQ(ld.fetch_host()[63], 5);
}

TEST(Stf, GraphvizDumpShowsInferredEdges) {
  context ctx;
  auto a = ctx.make_data<i32>(4);
  auto b = ctx.make_data<i32>(4);
  ctx.submit(
      "producer", place::host,
      [](device::stream&, device::buffer<i32>& d) { d.fill_zero(); },
      write(a));
  ctx.submit(
      "transform", place::host,
      [](device::stream&, device::buffer<i32>& s, device::buffer<i32>& d) {
        std::memcpy(d.data(), s.data(), s.bytes());
      },
      read(a), write(b));
  ctx.finalize();
  const std::string dot = ctx.dump_graphviz();
  EXPECT_NE(dot.find("digraph stf"), std::string::npos);
  EXPECT_NE(dot.find("producer#0"), std::string::npos);
  EXPECT_NE(dot.find("transform#1"), std::string::npos);
  // The RAW edge producer -> transform must be present.
  EXPECT_NE(dot.find("\"producer#0\" -> \"transform#1\""),
            std::string::npos);
}

TEST(Stf, ManyTasksChainCorrectly) {
  context ctx;
  auto ld = ctx.make_data<u64>(1);
  ctx.submit(
      "zero", place::host,
      [](device::stream&, device::buffer<u64>& d) { d.data()[0] = 0; },
      write(ld));
  for (int i = 0; i < 200; ++i) {
    ctx.submit(
        "inc", place::host,
        [](device::stream&, device::buffer<u64>& d) { d.data()[0] += 1; },
        rw(ld));
  }
  ctx.finalize();
  EXPECT_EQ(ld.fetch_host()[0], 200u);
}

}  // namespace
}  // namespace fzmod::stf
