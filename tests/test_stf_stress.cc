// Stress suite: randomized STF task graphs validated against a sequential
// oracle.
//
// We generate random programs over a set of logical arrays — each step
// reads one or two arrays and writes/updates another, at a random place —
// submit them as an STF graph, and replay the same steps sequentially on
// plain vectors. Whatever interleaving the scheduler picks, declared
// accesses force the same dataflow, so the results must match exactly.
#include <gtest/gtest.h>

#include <numeric>

#include "fzmod/common/rng.hh"
#include "fzmod/stf/stf.hh"

namespace fzmod::stf {
namespace {

struct step {
  int op;       // 0: dst = a + b; 1: dst += a; 2: dst = a * 3 + 1
  int dst, a, b;
  place where;
};

constexpr std::size_t array_len = 257;

std::vector<step> random_program(rng& r, int narrays, int nsteps) {
  std::vector<step> prog;
  prog.reserve(nsteps);
  for (int s = 0; s < nsteps; ++s) {
    step st;
    st.op = static_cast<int>(r.next_below(3));
    st.dst = static_cast<int>(r.next_below(narrays));
    st.a = static_cast<int>(r.next_below(narrays));
    st.b = static_cast<int>(r.next_below(narrays));
    st.where = r.next_below(2) ? place::host : place::device;
    prog.push_back(st);
  }
  return prog;
}

void apply_step_kernel(int op, std::span<i64> dst, std::span<const i64> a,
                       std::span<const i64> b) {
  for (std::size_t i = 0; i < dst.size(); ++i) {
    switch (op) {
      case 0: dst[i] = a[i] + b[i]; break;
      case 1: dst[i] += a[i]; break;
      default: dst[i] = a[i] * 3 + 1; break;
    }
  }
}

class StfStress : public ::testing::TestWithParam<int> {};

TEST_P(StfStress, RandomGraphMatchesSequentialOracle) {
  rng r(1000 + static_cast<u64>(GetParam()));
  const int narrays = 4 + static_cast<int>(r.next_below(4));
  const int nsteps = 30 + static_cast<int>(r.next_below(80));
  const auto prog = random_program(r, narrays, nsteps);

  // Oracle: sequential replay on plain vectors.
  std::vector<std::vector<i64>> oracle(narrays);
  for (int k = 0; k < narrays; ++k) {
    oracle[k].resize(array_len);
    std::iota(oracle[k].begin(), oracle[k].end(), k * 1000);
  }
  for (const auto& st : prog) {
    // Self-references are fine: the kernels read element-wise in order.
    auto a = oracle[st.a];
    auto b = oracle[st.b];
    apply_step_kernel(st.op, oracle[st.dst], a, b);
  }

  // STF execution of the same program.
  context ctx;
  std::vector<logical_data<i64>> arrays;
  for (int k = 0; k < narrays; ++k) {
    std::vector<i64> init(array_len);
    std::iota(init.begin(), init.end(), k * 1000);
    arrays.push_back(ctx.import<i64>(init));
  }
  for (const auto& st : prog) {
    const int op = st.op;
    if (st.a == st.dst || st.b == st.dst) {
      // Aliased operand: declare a single rw dependency and read the
      // destination's own (snapshotted) contents inside the task.
      const int other = st.a == st.dst ? st.b : st.a;
      const bool dst_is_a = st.a == st.dst;
      if (other == st.dst) {
        ctx.submit(
            "step-self", st.where,
            [op](device::stream&, device::buffer<i64>& d) {
              std::vector<i64> snapshot(d.data(), d.data() + d.size());
              apply_step_kernel(op, {d.data(), d.size()}, snapshot,
                                snapshot);
            },
            rw(arrays[static_cast<std::size_t>(st.dst)]));
      } else {
        ctx.submit(
            "step-alias", st.where,
            [op, dst_is_a](device::stream&, device::buffer<i64>& d,
                           device::buffer<i64>& o) {
              std::vector<i64> snapshot(d.data(), d.data() + d.size());
              if (dst_is_a) {
                apply_step_kernel(op, {d.data(), d.size()}, snapshot,
                                  {o.data(), o.size()});
              } else {
                apply_step_kernel(op, {d.data(), d.size()},
                                  {o.data(), o.size()}, snapshot);
              }
            },
            rw(arrays[static_cast<std::size_t>(st.dst)]),
            read(arrays[static_cast<std::size_t>(other)]));
      }
    } else {
      ctx.submit(
          "step", st.where,
          [op](device::stream&, device::buffer<i64>& d,
               device::buffer<i64>& a, device::buffer<i64>& b) {
            apply_step_kernel(op, {d.data(), d.size()},
                              {a.data(), a.size()}, {b.data(), b.size()});
          },
          rw(arrays[static_cast<std::size_t>(st.dst)]),
          read(arrays[static_cast<std::size_t>(st.a)]),
          read(arrays[static_cast<std::size_t>(st.b)]));
    }
  }
  ctx.finalize();

  for (int k = 0; k < narrays; ++k) {
    const auto got = arrays[static_cast<std::size_t>(k)].fetch_host();
    for (std::size_t i = 0; i < array_len; ++i) {
      ASSERT_EQ(got[i], oracle[k][i]) << "array " << k << " @ " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StfStress, ::testing::Range(0, 12));

TEST(StfStress, WideFanoutFanin) {
  // One producer, 64 concurrent consumers, one reducer.
  context ctx;
  auto src = ctx.make_data<i64>(128);
  ctx.submit(
      "produce", place::device,
      [](device::stream&, device::buffer<i64>& d) {
        std::iota(d.data(), d.data() + d.size(), 1);
      },
      write(src));
  std::vector<logical_data<i64>> partials;
  for (int k = 0; k < 64; ++k) {
    partials.push_back(ctx.make_data<i64>(1));
    ctx.submit(
        "consume", k % 2 ? place::host : place::device,
        [k](device::stream&, device::buffer<i64>& s,
            device::buffer<i64>& out) {
          out.data()[0] =
              std::accumulate(s.data(), s.data() + s.size(), i64{0}) + k;
        },
        read(src), write(partials.back()));
  }
  auto total = ctx.make_data<i64>(1);
  // The reducer reads all 64 partials; express as sequential accumulation
  // to keep the variadic arity small.
  ctx.submit(
      "zero", place::host,
      [](device::stream&, device::buffer<i64>& t) { t.data()[0] = 0; },
      write(total));
  for (auto& pk : partials) {
    ctx.submit(
        "reduce", place::host,
        [](device::stream&, device::buffer<i64>& t,
           device::buffer<i64>& p) { t.data()[0] += p.data()[0]; },
        rw(total), read(pk));
  }
  ctx.finalize();
  const i64 base = 128 * 129 / 2;
  const i64 expect = 64 * base + 63 * 64 / 2;
  EXPECT_EQ(total.fetch_host()[0], expect);
}

TEST(StfStress, ManyIndependentChains) {
  // 16 chains of 25 dependent increments each; chains interleave freely.
  context ctx;
  std::vector<logical_data<i64>> chains;
  for (int c = 0; c < 16; ++c) {
    chains.push_back(ctx.make_data<i64>(8));
    ctx.submit(
        "init", place::device,
        [c](device::stream&, device::buffer<i64>& d) {
          std::fill(d.data(), d.data() + d.size(), c);
        },
        write(chains.back()));
    for (int s = 0; s < 25; ++s) {
      ctx.submit(
          "bump", s % 2 ? place::host : place::device,
          [](device::stream&, device::buffer<i64>& d) {
            for (std::size_t i = 0; i < d.size(); ++i) d.data()[i] += 1;
          },
          rw(chains.back()));
    }
  }
  ctx.finalize();
  for (int c = 0; c < 16; ++c) {
    const auto got = chains[static_cast<std::size_t>(c)].fetch_host();
    EXPECT_EQ(got[0], c + 25);
    EXPECT_EQ(got[7], c + 25);
  }
}

}  // namespace
}  // namespace fzmod::stf
