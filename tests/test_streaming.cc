// Tests for the out-of-core streaming layer (core/stream_io.hh): budget
// resolution semantics, byte-identity of file streaming vs the in-memory
// chunked path, the multi-field container (round trip, selection errors,
// damage isolation), and crash-safe resume — truncation mid-chunk, at a
// clean chunk boundary, mid-directory, a torn journal record, and a
// config mismatch must all recover to a byte-identical archive.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "fzmod/common/rng.hh"
#include "fzmod/core/chunked.hh"
#include "fzmod/core/reader.hh"
#include "fzmod/core/stream_io.hh"
#include "fzmod/data/io.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod::core {
namespace {

namespace fs = std::filesystem;

std::vector<f32> smooth_field(dims3 d, u64 seed = 7) {
  rng r(seed);
  std::vector<f32> v(d.len());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.003 * static_cast<f64>(i)) * 40 +
                            0.05 * r.normal());
  }
  return v;
}

void expect_within_bound(std::span<const f32> a, std::span<const f32> b,
                         f64 rel_eb) {
  ASSERT_EQ(a.size(), b.size());
  const auto err = metrics::compare(a, b);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(rel_eb * err.range, err.range));
}

/// A scratch dir per fixture run; raw fields are stored through data::
/// so the streaming layer reads exactly what the in-memory path sees.
class StreamingFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fzmod_stream_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  [[nodiscard]] std::string store(const std::string& name,
                                  std::span<const f32> v) const {
    const std::string p = path(name);
    data::store_f32_field(p, v);
    return p;
  }

  fs::path dir_;
};

// --- budget resolution ------------------------------------------------------

TEST(StreamBudget, UncappedScalesWithJobs) {
  const auto b = resolve_stream_budget(0, 4 << 20, 4);
  EXPECT_EQ(b.window, 8u);       // 2 * jobs
  EXPECT_EQ(b.workers, 4u);
  EXPECT_EQ(b.read_slots, 5u);   // jobs + 1
  EXPECT_EQ(b.write_bytes, u64{256} << 20);
}

TEST(StreamBudget, CapSplitsHalfQuarterQuarter) {
  // C = 64 MiB, chunk = 2 MiB raw -> charged 8 MiB in flight.
  const u64 cap = u64{64} << 20, chunk = u64{2} << 20;
  const auto b = resolve_stream_budget(cap, chunk, 8);
  EXPECT_EQ(b.window, (cap / 2) / (4 * chunk));  // 4
  EXPECT_EQ(b.workers, 4u);                      // min(jobs, window)
  // (C/4)/B = 8 staging slots by budget, clamped to window+1 = 5: staging
  // deeper than the window plus one in-fill buys nothing.
  EXPECT_EQ(b.read_slots,
            std::min<u64>((cap / 4) / chunk, b.window + 1));
  EXPECT_EQ(b.read_slots, 5u);
  EXPECT_EQ(b.write_bytes, cap / 4);
}

TEST(StreamBudget, TinyCapStillMakesProgress) {
  // A cap smaller than one chunk must degrade, not deadlock or zero out.
  const auto b = resolve_stream_budget(1 << 20, u64{16} << 20, 4);
  EXPECT_EQ(b.window, 1u);
  EXPECT_EQ(b.workers, 1u);
  EXPECT_EQ(b.read_slots, 1u);
  EXPECT_GE(b.write_bytes, u64{1} << 20);
}

TEST(StreamBudget, WindowNeverExceedsUncapped) {
  // A huge cap behaves exactly like no cap.
  const auto capped = resolve_stream_budget(u64{1} << 40, 1 << 20, 4);
  const auto uncapped = resolve_stream_budget(0, 1 << 20, 4);
  EXPECT_EQ(capped.window, uncapped.window);
  EXPECT_EQ(capped.workers, uncapped.workers);
}

TEST(StreamBudget, DegenerateInputsGuarded) {
  const auto b = resolve_stream_budget(1 << 20, 0, 0);
  EXPECT_GE(b.window, 1u);
  EXPECT_GE(b.workers, 1u);
  EXPECT_GE(b.read_slots, 1u);
}

// --- file streaming vs in-memory path --------------------------------------

TEST_F(StreamingFiles, ByteIdenticalToInMemoryChunked) {
  const dims3 d{64, 32, 24};
  const auto v = smooth_field(d);
  const auto in = store("f.f32", v);

  pipeline_config cfg = pipeline_config::preset_default({1e-4, eb_mode::rel});
  chunked_options copt;
  copt.chunk_elems = 64 * 32 * 5;  // several chunks, ragged tail
  copt.jobs = 3;

  chunked_pipeline<f32> pipe(cfg, copt);
  const auto want = pipe.compress(v, d);

  stream_options sopt;
  sopt.chunk = copt;
  const auto out = path("f.fzmod");
  const auto st = compress_file_stream<f32>(in, d, out, cfg, sopt);
  EXPECT_EQ(st.chunks_total, plan_chunks(d, copt.chunk_elems).size());
  EXPECT_EQ(st.chunks_resumed, 0u);
  EXPECT_EQ(st.bytes_read, d.len() * sizeof(f32));
  EXPECT_EQ(st.bytes_written, want.size());
  EXPECT_GT(st.peak_bytes, 0u);
  EXPECT_EQ(data::read_file(out), want);
  // Successful finalize removes the journal.
  EXPECT_FALSE(fs::exists(resume_journal_path(out)));
}

TEST_F(StreamingFiles, MemoryCapThrottlesTheWindow) {
  const dims3 d{64, 64, 40};
  const auto v = smooth_field(d, 11);
  const auto in = store("f.f32", v);

  pipeline_config cfg = pipeline_config::preset_default({1e-4, eb_mode::rel});
  chunked_options copt;
  copt.chunk_elems = 64 * 64 * 4;  // 64 KiB chunks, 10 chunks
  copt.jobs = 8;

  // Cap tight enough that the resolved window must shrink below 2*jobs.
  stream_options sopt;
  sopt.chunk = copt;
  sopt.chunk.stream_mem_mb = 1;
  const auto out = path("f.fzmod");
  const auto st = compress_file_stream<f32>(in, d, out, cfg, sopt);
  EXPECT_LT(st.window, 16u);
  EXPECT_LE(st.workers, st.window);

  // The capped archive is still byte-identical to the uncapped one.
  chunked_pipeline<f32> pipe(cfg, copt);
  EXPECT_EQ(data::read_file(out), pipe.compress(v, d));
}

TEST_F(StreamingFiles, SingleChunkPlanEmitsPlainV2) {
  const dims3 d{32, 8, 1};
  const auto v = smooth_field(d, 3);
  const auto in = store("f.f32", v);
  pipeline_config cfg = pipeline_config::preset_default({1e-4, eb_mode::rel});
  chunked_options copt;
  copt.chunk_elems = d.len();  // one chunk

  stream_options sopt;
  sopt.chunk = copt;
  const auto out = path("f.fzmod");
  (void)compress_file_stream<f32>(in, d, out, cfg, sopt);
  const auto bytes = data::read_file(out);
  EXPECT_FALSE(fmt::is_chunk_container(bytes));
  pipeline<f32> plain(cfg);
  EXPECT_EQ(bytes, plain.compress(v, d));
}

TEST_F(StreamingFiles, SizeMismatchRejectedUpFront) {
  const dims3 d{64, 8, 1};
  const auto in = store("f.f32", smooth_field(d));
  const dims3 wrong{64, 8, 2};
  EXPECT_THROW((void)compress_file_stream<f32>(
                   in, wrong, path("f.fzmod"),
                   pipeline_config::preset_default({1e-4, eb_mode::rel})),
               error);
  EXPECT_FALSE(fs::exists(path("f.fzmod")));
}

// --- multi-field container --------------------------------------------------

TEST_F(StreamingFiles, MultiFieldRoundTrip) {
  const dims3 d{48, 16, 10};
  const auto u = smooth_field(d, 1), v = smooth_field(d, 2);
  const std::vector<field_input> fields{
      {"U", store("u.f32", u), d},
      {"V", store("v.f32", v), d},
  };
  pipeline_config cfg = pipeline_config::preset_default({1e-4, eb_mode::rel});
  stream_options sopt;
  sopt.chunk.chunk_elems = 48 * 16 * 3;

  const auto out = path("mf.fzmod");
  (void)compress_files_stream<f32>(fields, out, cfg, sopt);
  const auto bytes = data::read_file(out);
  ASSERT_TRUE(fmt::is_multi_container(bytes));

  const auto mv = fmt::parse_multi_container(bytes, /*check_digests=*/true);
  ASSERT_EQ(mv.entries.size(), 2u);
  EXPECT_STREQ(mv.entries[0].name, "U");
  EXPECT_STREQ(mv.entries[1].name, "V");

  chunked_pipeline<f32> pipe(cfg, sopt.chunk);
  expect_within_bound(u, pipe.decompress(fmt::select_field(bytes, "U")),
                      1e-4);
  expect_within_bound(v, pipe.decompress(fmt::select_field(bytes, "V")),
                      1e-4);

  // Each field archive is byte-identical to a single-field compression.
  EXPECT_EQ(std::vector<u8>(fmt::select_field(bytes, "U").begin(),
                            fmt::select_field(bytes, "U").end()),
            pipe.compress(u, d));

  // The seekable reader opens a named field too (span and byte_source).
  reader<f32> r(std::span<const u8>(bytes), std::string_view("V"));
  EXPECT_EQ(r.read(0, d.len()),
            pipe.decompress(fmt::select_field(bytes, "V")));
  auto src = [&bytes](u8* dst, u64 off, std::size_t len) {
    std::memcpy(dst, bytes.data() + off, len);
  };
  auto rs = reader<f32>::open_field(src, bytes.size(), "U");
  EXPECT_EQ(rs.read(0, d.len()),
            pipe.decompress(fmt::select_field(bytes, "U")));
}

TEST_F(StreamingFiles, FieldSelectionErrors) {
  const dims3 d{32, 8, 2};
  const auto v = smooth_field(d);
  const std::vector<field_input> fields{
      {"rho", store("a.f32", v), d},
      {"vx", store("b.f32", v), d},
  };
  pipeline_config cfg = pipeline_config::preset_default({1e-4, eb_mode::rel});
  const auto out = path("mf.fzmod");
  (void)compress_files_stream<f32>(fields, out, cfg);
  const auto bytes = data::read_file(out);

  // Ambiguous: two fields, no name. The error lists what is available.
  try {
    (void)fmt::select_field(bytes, "");
    FAIL() << "expected invalid_argument";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::invalid_argument);
    EXPECT_NE(std::string(e.what()).find("rho"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("vx"), std::string::npos);
  }
  // Unknown name.
  EXPECT_THROW((void)fmt::select_field(bytes, "nope"), error);

  // Single-field archives reject any --field name...
  pipeline<f32> plain(cfg);
  const auto single = plain.compress(v, d);
  EXPECT_THROW((void)fmt::select_field(single, "rho"), error);
  // ...but pass through untouched with an empty one.
  const auto sel = fmt::select_field(single, "");
  EXPECT_EQ(sel.data(), single.data());
  EXPECT_EQ(sel.size(), single.size());

  // A one-field container tolerates an empty name.
  const std::vector<field_input> one{{"rho", store("c.f32", v), d}};
  (void)compress_files_stream<f32>(one, path("one.fzmod"), cfg);
  const auto onebytes = data::read_file(path("one.fzmod"));
  EXPECT_NO_THROW((void)fmt::select_field(onebytes, ""));

  // Duplicate field names are rejected before any compression runs.
  const std::vector<field_input> dup{{"x", store("d.f32", v), d},
                                     {"x", store("e.f32", v), d}};
  EXPECT_THROW((void)compress_files_stream<f32>(dup, path("dup.fzmod"), cfg),
               error);
}

TEST_F(StreamingFiles, MultiFieldDamageIsolatedToOneField) {
  const dims3 d{32, 16, 4};
  const auto u = smooth_field(d, 1), v = smooth_field(d, 2);
  const std::vector<field_input> fields{
      {"U", store("u.f32", u), d},
      {"V", store("v.f32", v), d},
  };
  pipeline_config cfg = pipeline_config::preset_default({1e-4, eb_mode::rel});
  const auto out = path("mf.fzmod");
  (void)compress_files_stream<f32>(fields, out, cfg);
  auto bytes = data::read_file(out);

  // Flip one bit in the middle of field V's archive.
  const auto mv = fmt::parse_multi_container(bytes, true);
  const auto& ev = *fmt::find_field(mv, "V");
  bytes[sizeof(fmt::multi_header) + ev.archive_offset +
        ev.archive_bytes / 2] ^= 0x10;

  EXPECT_NO_THROW((void)fmt::select_field(bytes, "U"));
  try {
    (void)fmt::select_field(bytes, "V");
    FAIL() << "expected corrupt_archive";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::corrupt_archive);
    EXPECT_NE(std::string(e.what()).find("'V'"), std::string::npos);
  }
}

TEST_F(StreamingFiles, MultiFieldResumeUnsupported) {
  const dims3 d{32, 8, 1};
  const std::vector<field_input> fields{
      {"U", store("u.f32", smooth_field(d)), d}};
  stream_options sopt;
  sopt.resume = true;
  try {
    (void)compress_files_stream<f32>(
        fields, path("mf.fzmod"),
        pipeline_config::preset_default({1e-4, eb_mode::rel}), sopt);
    FAIL() << "expected unsupported";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::unsupported);
  }
}

// --- crash-safe resume ------------------------------------------------------

/// Shared scaffold: compress cleanly (keeping the journal), then hand the
/// (archive, journal) pair to `damage`, then resume and require the
/// result byte-identical to the clean run.
class StreamResume : public StreamingFiles {
 protected:
  void run_damage_and_resume(
      const std::function<void(const std::string& out,
                               const std::string& journal)>& damage) {
    const dims3 d{64, 32, 20};
    const auto v = smooth_field(d, 5);
    const auto in = store("f.f32", v);
    cfg_ = pipeline_config::preset_default({1e-4, eb_mode::rel});
    sopt_.chunk.chunk_elems = 64 * 32 * 3;  // 7 chunks
    sopt_.chunk.jobs = 2;
    sopt_.keep_journal = true;

    const auto clean = path("clean.fzmod");
    (void)compress_file_stream<f32>(in, d, clean, cfg_, sopt_);
    clean_ = data::read_file(clean);

    const auto out = path("crash.fzmod");
    (void)compress_file_stream<f32>(in, d, out, cfg_, sopt_);
    damage(out, resume_journal_path(out));

    stream_options ropt = sopt_;
    ropt.resume = true;
    ropt.keep_journal = false;
    last_ = compress_file_stream<f32>(in, d, out, cfg_, ropt);
    EXPECT_EQ(data::read_file(out), clean_);
    EXPECT_FALSE(fs::exists(resume_journal_path(out)));
  }

  static void truncate_to(const std::string& p, u64 size) {
    fs::resize_file(p, size);
  }

  pipeline_config cfg_;
  stream_options sopt_;
  std::vector<u8> clean_;
  stream_io_stats last_;
};

TEST_F(StreamResume, TruncatedMidChunkSalvagesThePrefix) {
  run_damage_and_resume([this](const std::string& out,
                               const std::string& journal) {
    // Cut the output mid-way through chunk 3's bytes; the journal still
    // lists it, so validation must reject 3 and keep 0..2.
    const auto bytes = data::read_file(journal);
    fmt::fzr_view jv;
    ASSERT_TRUE(fmt::parse_resume_journal(bytes, jv));
    ASSERT_GE(jv.records.size(), 4u);
    const auto& e = jv.records[3];
    truncate_to(out, sizeof(fmt::chunk_header_v3) + e.archive_offset +
                         e.archive_bytes / 2);
  });
  EXPECT_EQ(last_.chunks_resumed, 3u);
  EXPECT_EQ(last_.chunks_total, 7u);
}

TEST_F(StreamResume, TruncatedAtCleanChunkBoundary) {
  run_damage_and_resume([this](const std::string& out,
                               const std::string& journal) {
    const auto bytes = data::read_file(journal);
    fmt::fzr_view jv;
    ASSERT_TRUE(fmt::parse_resume_journal(bytes, jv));
    ASSERT_GE(jv.records.size(), 5u);
    const auto& e = jv.records[4];
    truncate_to(out, sizeof(fmt::chunk_header_v3) + e.archive_offset);
    // Journal also cut to exactly those records (the tidy-crash case).
    truncate_to(journal,
                sizeof(fmt::fzr_header) + 4 * sizeof(fmt::fzr_record));
  });
  EXPECT_EQ(last_.chunks_resumed, 4u);
}

TEST_F(StreamResume, TruncatedMidDirectoryRecompressesTail) {
  run_damage_and_resume([this](const std::string& out,
                               const std::string& journal) {
    // Crash while writing the trailing directory: every chunk's bytes are
    // intact, so the whole payload salvages and only the directory is
    // rebuilt.
    (void)journal;
    const auto sz = fs::file_size(out);
    truncate_to(out, sz - sizeof(fmt::chunk_dir_entry) - 3);
  });
  EXPECT_EQ(last_.chunks_resumed, 7u);
  EXPECT_EQ(last_.chunks_total, 7u);
}

TEST_F(StreamResume, TornJournalRecordShortensTheSalvage) {
  run_damage_and_resume([this](const std::string& out,
                               const std::string& journal) {
    (void)out;
    // Tear the journal mid-record: the partial record must be ignored,
    // salvaging only the complete ones.
    truncate_to(journal, sizeof(fmt::fzr_header) +
                             2 * sizeof(fmt::fzr_record) +
                             sizeof(fmt::fzr_record) / 2);
  });
  EXPECT_EQ(last_.chunks_resumed, 2u);
}

TEST_F(StreamResume, CorruptJournalHeaderRestartsFromScratch) {
  run_damage_and_resume([](const std::string& out,
                           const std::string& journal) {
    (void)out;
    auto bytes = data::read_file(journal);
    bytes[1] ^= 0xff;  // break the magic
    data::write_file(journal, bytes);
  });
  EXPECT_EQ(last_.chunks_resumed, 0u);
}

TEST_F(StreamResume, ConfigMismatchRecompressesFromScratch) {
  const dims3 d{64, 32, 20};
  const auto v = smooth_field(d, 5);
  const auto in = store("f.f32", v);
  pipeline_config cfg = pipeline_config::preset_default({1e-4, eb_mode::rel});
  stream_options sopt;
  sopt.chunk.chunk_elems = 64 * 32 * 3;
  sopt.keep_journal = true;
  const auto out = path("f.fzmod");
  (void)compress_file_stream<f32>(in, d, out, cfg, sopt);

  // Resume under a different error bound: the journal's config digest no
  // longer matches, so nothing is salvaged and the output is the clean
  // archive of the NEW config.
  pipeline_config cfg2 =
      pipeline_config::preset_default({1e-3, eb_mode::rel});
  stream_options ropt = sopt;
  ropt.resume = true;
  ropt.keep_journal = false;
  const auto st = compress_file_stream<f32>(in, d, out, cfg2, ropt);
  EXPECT_EQ(st.chunks_resumed, 0u);
  chunked_pipeline<f32> pipe(cfg2, sopt.chunk);
  EXPECT_EQ(data::read_file(out), pipe.compress(v, d));
}

TEST_F(StreamResume, ResumeOnMissingFilesStartsClean) {
  // --resume with no prior output or journal is just a normal run.
  const dims3 d{64, 32, 20};
  const auto v = smooth_field(d, 5);
  const auto in = store("f.f32", v);
  pipeline_config cfg = pipeline_config::preset_default({1e-4, eb_mode::rel});
  stream_options sopt;
  sopt.chunk.chunk_elems = 64 * 32 * 3;
  sopt.resume = true;
  const auto st =
      compress_file_stream<f32>(in, d, path("f.fzmod"), cfg, sopt);
  EXPECT_EQ(st.chunks_resumed, 0u);
  chunked_pipeline<f32> pipe(cfg, sopt.chunk);
  EXPECT_EQ(data::read_file(path("f.fzmod")), pipe.compress(v, d));
}

TEST(ResumeJournalParse, DefensiveOnGarbage) {
  fmt::fzr_view jv;
  EXPECT_FALSE(fmt::parse_resume_journal({}, jv));
  std::vector<u8> junk(200, 0xab);
  EXPECT_FALSE(fmt::parse_resume_journal(junk, jv));

  // A valid header with zero records parses to an empty salvage.
  fmt::fzr_header h{};
  h.magic = fmt::fzr_magic;
  h.version = fmt::fzr_journal_version;
  h.type = 0;
  h.dims[0] = 8;
  h.dims[1] = h.dims[2] = 1;
  h.nchunks = 4;
  h.chunk_elems = 2;
  h.config_digest = 42;
  h.digest_header = fmt::fzr_header_digest(h);
  std::vector<u8> bytes(sizeof(h));
  std::memcpy(bytes.data(), &h, sizeof(h));
  ASSERT_TRUE(fmt::parse_resume_journal(bytes, jv));
  EXPECT_TRUE(jv.records.empty());

  // A record with a wrong positional digest ends the prefix.
  fmt::chunk_dir_entry e{};
  e.raw_len = 2;
  e.archive_bytes = 10;
  fmt::fzr_record r{};
  r.entry = e;
  r.record_digest = fmt::fzr_record_digest(e, 1);  // wrong index (is 0)
  bytes.resize(sizeof(h) + sizeof(r));
  std::memcpy(bytes.data() + sizeof(h), &r, sizeof(r));
  ASSERT_TRUE(fmt::parse_resume_journal(bytes, jv));
  EXPECT_TRUE(jv.records.empty());

  r.record_digest = fmt::fzr_record_digest(e, 0);
  std::memcpy(bytes.data() + sizeof(h), &r, sizeof(r));
  ASSERT_TRUE(fmt::parse_resume_journal(bytes, jv));
  EXPECT_EQ(jv.records.size(), 1u);
}

}  // namespace
}  // namespace fzmod::core
