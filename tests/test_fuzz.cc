// Robustness suite: corrupted-archive fuzzing.
//
// Archives come from untrusted storage; a decompressor that crashes,
// loops, or silently fabricates data on a flipped bit is a production
// incident. For every compressor we take a valid archive and subject it
// to random bit flips, truncations, and byte stomps. The contract under
// test: decompress either throws fzmod::error or returns *some* output of
// the advertised size — it must never crash or hang. (Archives carry no
// checksums, so corruption inside a payload may decode to wrong values;
// structural fields are all validated.)
#include <gtest/gtest.h>

#include <cmath>

#include "fzmod/baselines/compressor.hh"
#include "fzmod/common/error.hh"
#include "fzmod/common/rng.hh"
#include "fzmod/core/snapshot.hh"
#include "fzmod/core/stf_pipeline.hh"

namespace fzmod {
namespace {

std::vector<f32> base_field(dims3 d) {
  rng r(777);
  std::vector<f32> v(d.len());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.03 * static_cast<f64>(i % 100)) * 20 +
                            0.1 * r.normal());
  }
  return v;
}

/// Decompress must not crash; throwing fzmod::error is a pass, as is a
/// clean (possibly wrong-valued) result.
template <class F>
void expect_contained(F&& decompress_fn) {
  try {
    (void)decompress_fn();
  } catch (const error&) {
    // contained failure: fine
  }
}

class FuzzAllCompressors : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzAllCompressors, RandomBitFlips) {
  const dims3 d{40, 30, 5};
  const auto v = base_field(d);
  auto c = baselines::make(GetParam());
  const auto archive = c->compress(v, d, {1e-3, eb_mode::rel});

  rng r(101);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = archive;
    const std::size_t nflips = 1 + r.next_below(8);
    for (std::size_t f = 0; f < nflips; ++f) {
      const std::size_t pos = r.next_below(mutated.size());
      mutated[pos] ^= static_cast<u8>(1u << r.next_below(8));
    }
    auto fresh = baselines::make(GetParam());
    expect_contained([&] { return fresh->decompress(mutated); });
  }
}

TEST_P(FuzzAllCompressors, TruncationSweep) {
  const dims3 d{64, 16};
  const auto v = base_field(d);
  auto c = baselines::make(GetParam());
  const auto archive = c->compress(v, d, {1e-3, eb_mode::rel});

  rng r(102);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t keep = r.next_below(archive.size());
    std::vector<u8> truncated(archive.begin(),
                              archive.begin() + static_cast<long>(keep));
    auto fresh = baselines::make(GetParam());
    expect_contained([&] { return fresh->decompress(truncated); });
  }
}

TEST_P(FuzzAllCompressors, ByteStompRegions) {
  const dims3 d{100, 20};
  const auto v = base_field(d);
  auto c = baselines::make(GetParam());
  const auto archive = c->compress(v, d, {1e-2, eb_mode::rel});

  rng r(103);
  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = archive;
    const std::size_t start = r.next_below(mutated.size());
    const std::size_t len =
        std::min<std::size_t>(1 + r.next_below(64), mutated.size() - start);
    for (std::size_t i = 0; i < len; ++i) {
      mutated[start + i] = static_cast<u8>(r.next_u64());
    }
    auto fresh = baselines::make(GetParam());
    expect_contained([&] { return fresh->decompress(mutated); });
  }
}

INSTANTIATE_TEST_SUITE_P(Everyone, FuzzAllCompressors,
                         ::testing::ValuesIn(baselines::all_names()),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

TEST(FuzzStf, CorruptedArchivesContained) {
  const dims3 d{50, 20};
  const auto v = base_field(d);
  const auto archive = core::stf_compress(v, d, {1e-3, eb_mode::rel});
  rng r(104);
  for (int trial = 0; trial < 100; ++trial) {
    auto mutated = archive;
    mutated[r.next_below(mutated.size())] ^=
        static_cast<u8>(1u << r.next_below(8));
    expect_contained([&] { return core::stf_decompress(mutated); });
  }
}

TEST(FuzzSnapshot, CorruptedTocContained) {
  core::snapshot_writer w;
  const dims3 d{500};
  w.add("a", base_field(d), d);
  w.add("b", base_field(d), d);
  const auto blob = w.finish();
  rng r(105);
  for (int trial = 0; trial < 150; ++trial) {
    auto mutated = blob;
    mutated[r.next_below(mutated.size())] ^=
        static_cast<u8>(1u << r.next_below(8));
    expect_contained([&] {
      core::snapshot_reader reader(mutated);
      std::vector<f32> out;
      for (const auto& e : reader.entries()) out = reader.read(e.name);
      return out;
    });
  }
}

TEST(FuzzLossless, SecondaryWrappedArchives) {
  // The LZ layer sits outermost when secondary is on; its framing and the
  // inner archive both get fuzzed through one entry point.
  const dims3 d{80, 25};
  const auto v = base_field(d);
  core::pipeline_config cfg;
  cfg.secondary = true;
  cfg.eb = {1e-3, eb_mode::rel};
  core::pipeline<f32> p(cfg);
  const auto archive = p.compress(v, d);
  rng r(106);
  for (int trial = 0; trial < 150; ++trial) {
    auto mutated = archive;
    const std::size_t nflips = 1 + r.next_below(4);
    for (std::size_t f = 0; f < nflips; ++f) {
      mutated[r.next_below(mutated.size())] ^=
          static_cast<u8>(1u << r.next_below(8));
    }
    core::pipeline<f32> fresh(core::pipeline_config{});
    expect_contained([&] { return fresh.decompress(mutated); });
  }
}

}  // namespace
}  // namespace fzmod
