// Robustness suite: corrupted-archive fuzzing.
//
// Archives come from untrusted storage; a decompressor that crashes,
// loops, or silently fabricates data on a flipped bit is a production
// incident. For every compressor we take a valid archive and subject it
// to random bit flips, truncations, and byte stomps. Two contracts are
// under test:
//   1. Containment (always, even with FZMOD_VERIFY=0): decompress either
//      throws fzmod::error or returns *some* output of the advertised
//      size — it must never crash or hang.
//   2. Detection (format v2, verification on — the default): any single
//      flipped bit anywhere in the archive is reported as a deterministic
//      status::corrupt_archive, never decoded to wrong values.
// The hostile-header tests go further: they forge structurally valid v2
// archives (digests refreshed after the forgery) so the semantic guards
// behind the digest wall get exercised directly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "fzmod/baselines/compressor.hh"
#include "fzmod/common/error.hh"
#include "fzmod/common/rng.hh"
#include "fzmod/core/archive_format.hh"
#include "fzmod/core/snapshot.hh"
#include "fzmod/core/stf_pipeline.hh"
#include "fzmod/encoders/huffman.hh"

namespace fzmod {
namespace {

std::vector<f32> base_field(dims3 d) {
  rng r(777);
  std::vector<f32> v(d.len());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.03 * static_cast<f64>(i % 100)) * 20 +
                            0.1 * r.normal());
  }
  return v;
}

/// Decompress must not crash; throwing fzmod::error is a pass, as is a
/// clean (possibly wrong-valued) result.
template <class F>
void expect_contained(F&& decompress_fn) {
  try {
    (void)decompress_fn();
  } catch (const error&) {
    // contained failure: fine
  }
}

class FuzzAllCompressors : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzAllCompressors, RandomBitFlips) {
  const dims3 d{40, 30, 5};
  const auto v = base_field(d);
  auto c = baselines::make(GetParam());
  const auto archive = c->compress(v, d, {1e-3, eb_mode::rel});

  rng r(101);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = archive;
    const std::size_t nflips = 1 + r.next_below(8);
    for (std::size_t f = 0; f < nflips; ++f) {
      const std::size_t pos = r.next_below(mutated.size());
      mutated[pos] ^= static_cast<u8>(1u << r.next_below(8));
    }
    auto fresh = baselines::make(GetParam());
    expect_contained([&] { return fresh->decompress(mutated); });
  }
}

TEST_P(FuzzAllCompressors, TruncationSweep) {
  const dims3 d{64, 16};
  const auto v = base_field(d);
  auto c = baselines::make(GetParam());
  const auto archive = c->compress(v, d, {1e-3, eb_mode::rel});

  rng r(102);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t keep = r.next_below(archive.size());
    std::vector<u8> truncated(archive.begin(),
                              archive.begin() + static_cast<long>(keep));
    auto fresh = baselines::make(GetParam());
    expect_contained([&] { return fresh->decompress(truncated); });
  }
}

TEST_P(FuzzAllCompressors, ByteStompRegions) {
  const dims3 d{100, 20};
  const auto v = base_field(d);
  auto c = baselines::make(GetParam());
  const auto archive = c->compress(v, d, {1e-2, eb_mode::rel});

  rng r(103);
  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = archive;
    const std::size_t start = r.next_below(mutated.size());
    const std::size_t len =
        std::min<std::size_t>(1 + r.next_below(64), mutated.size() - start);
    for (std::size_t i = 0; i < len; ++i) {
      mutated[start + i] = static_cast<u8>(r.next_u64());
    }
    auto fresh = baselines::make(GetParam());
    expect_contained([&] { return fresh->decompress(mutated); });
  }
}

INSTANTIATE_TEST_SUITE_P(Everyone, FuzzAllCompressors,
                         ::testing::ValuesIn(baselines::all_names()),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

TEST(FuzzStf, CorruptedArchivesContained) {
  const dims3 d{50, 20};
  const auto v = base_field(d);
  const auto archive = core::stf_compress(v, d, {1e-3, eb_mode::rel});
  rng r(104);
  for (int trial = 0; trial < 100; ++trial) {
    auto mutated = archive;
    mutated[r.next_below(mutated.size())] ^=
        static_cast<u8>(1u << r.next_below(8));
    expect_contained([&] { return core::stf_decompress(mutated); });
  }
}

TEST(FuzzSnapshot, CorruptedTocContained) {
  core::snapshot_writer w;
  const dims3 d{500};
  w.add("a", base_field(d), d);
  w.add("b", base_field(d), d);
  const auto blob = w.finish();
  rng r(105);
  for (int trial = 0; trial < 150; ++trial) {
    auto mutated = blob;
    mutated[r.next_below(mutated.size())] ^=
        static_cast<u8>(1u << r.next_below(8));
    expect_contained([&] {
      core::snapshot_reader reader(mutated);
      std::vector<f32> out;
      for (const auto& e : reader.entries()) out = reader.read(e.name);
      return out;
    });
  }
}

// ---------------------------------------------------------------------------
// Format v2 integrity: detection, version negotiation, hostile headers.

namespace fmt = core::fmt;

/// Scope guard: digest verification off for the structural-guard tests.
struct verify_off {
  verify_off() { fmt::set_verify_enabled(false); }
  ~verify_off() { fmt::set_verify_enabled(true); }
};

/// Recompute every digest of a plain (non-secondary) v2 archive after a
/// test has forged header fields or payload bytes. The result is a
/// structurally consistent, correctly checksummed — but hostile — archive,
/// which is exactly what an adversary with hash awareness would produce.
void refresh_digests(std::vector<u8>& archive) {
  constexpr std::size_t outer = sizeof(fmt::outer_header_v2);
  ASSERT_GE(archive.size(), outer + sizeof(fmt::inner_header));
  fmt::inner_header hdr;
  std::memcpy(&hdr, archive.data() + outer, sizeof(hdr));
  const std::span<const u8> body{archive.data() + outer,
                                 archive.size() - outer};
  const auto sv = fmt::slice_sections(body, hdr);
  hdr.digest_codec = kernels::chunked_hash(sv.codec);
  hdr.digest_outliers = kernels::chunked_hash(sv.outliers);
  hdr.digest_value_outliers = kernels::chunked_hash(sv.value_outliers);
  hdr.digest_anchors = kernels::chunked_hash(sv.anchors);
  hdr.digest_header = fmt::header_digest(hdr);
  std::memcpy(archive.data() + outer, &hdr, sizeof(hdr));
}

/// Down-convert a plain v2 archive to the v1 wire format: 8-byte outer
/// header, 152-byte inner header (digest words stripped), version 1.
/// This is byte-exact what the pre-checksum writer produced, so it stands
/// in for golden v1 fixtures (none were ever shipped; all tests build
/// archives in-process).
std::vector<u8> as_v1(std::span<const u8> v2_archive) {
  constexpr std::size_t outer2 = sizeof(fmt::outer_header_v2);
  fmt::inner_header hdr;
  std::memcpy(&hdr, v2_archive.data() + outer2, sizeof(hdr));
  hdr.version = 1;
  std::vector<u8> out;
  const fmt::outer_header outer1{fmt::outer_magic, 0, {}};
  const std::size_t payload =
      v2_archive.size() - outer2 - sizeof(fmt::inner_header);
  out.resize(sizeof(outer1) + fmt::inner_header_v1_bytes + payload);
  std::memcpy(out.data(), &outer1, sizeof(outer1));
  std::memcpy(out.data() + sizeof(outer1), &hdr,
              fmt::inner_header_v1_bytes);
  std::memcpy(out.data() + sizeof(outer1) + fmt::inner_header_v1_bytes,
              v2_archive.data() + outer2 + sizeof(fmt::inner_header),
              payload);
  return out;
}

void expect_corrupt(core::pipeline<f32>& p, std::span<const u8> archive,
                    std::size_t pos) {
  try {
    (void)p.decompress(archive);
    FAIL() << "flip at byte " << pos << " was not detected";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::corrupt_archive)
        << "flip at byte " << pos << ": " << e.what();
  }
}

TEST(FormatV2, SingleBitFlipSweepIsAlwaysDetected) {
  // The acceptance criterion verbatim: any single bit flip anywhere in a
  // v2 archive causes decompress to throw status::corrupt_archive. Sweep
  // every byte (rotating the flipped bit position so all 8 lanes get
  // coverage across the archive).
  const dims3 d{40, 20};
  const auto v = base_field(d);
  core::pipeline_config cfg;
  cfg.eb = {1e-2, eb_mode::rel};
  core::pipeline<f32> p(cfg);
  const auto archive = p.compress(v, d);
  for (std::size_t pos = 0; pos < archive.size(); ++pos) {
    auto mutated = archive;
    mutated[pos] ^= static_cast<u8>(1u << (pos % 8));
    expect_corrupt(p, mutated, pos);
  }
}

TEST(FormatV2, SingleBitFlipSweepSecondaryWrapped) {
  // Same sweep over an LZ-wrapped archive: flips inside the stored blob
  // must be caught by the sealed outer digest *before* the LZ decoder
  // parses the blob.
  const dims3 d{40, 20};
  const auto v = base_field(d);
  core::pipeline_config cfg;
  cfg.secondary = true;
  cfg.eb = {1e-2, eb_mode::rel};
  core::pipeline<f32> p(cfg);
  const auto archive = p.compress(v, d);
  for (std::size_t pos = 0; pos < archive.size(); ++pos) {
    auto mutated = archive;
    mutated[pos] ^= static_cast<u8>(1u << (pos % 8));
    expect_corrupt(p, mutated, pos);
  }
}

TEST(FormatV2, V1ArchivesStillDecode) {
  // Version negotiation: a v1 archive (pre-checksum layout) must decode
  // to exactly the same values as its v2 counterpart, and inspect must
  // report its version without complaint.
  const dims3 d{48, 16, 4};
  const auto v = base_field(d);
  core::pipeline<f32> p(core::pipeline_config{});
  const auto v2 = p.compress(v, d);
  const auto v1 = as_v1(v2);
  ASSERT_EQ(v1.size(), v2.size() - 8 - 5 * sizeof(u64));

  const auto info1 = core::inspect_archive(v1);
  const auto info2 = core::inspect_archive(v2);
  EXPECT_EQ(info1.version, 1);
  EXPECT_EQ(info2.version, 2);
  EXPECT_EQ(info1.dims, info2.dims);

  const auto rec1 = p.decompress(v1);
  const auto rec2 = p.decompress(v2);
  ASSERT_EQ(rec1.size(), rec2.size());
  EXPECT_TRUE(std::equal(rec1.begin(), rec1.end(), rec2.begin()));

  // verify_archive on v1: nothing to check, reports clean.
  const auto rep = core::verify_archive(v1);
  EXPECT_EQ(rep.version, 1);
  EXPECT_TRUE(rep.ok());
}

TEST(FormatV2, V1PayloadCorruptionStillContained) {
  // v1 carries no digests, so payload corruption may decode to wrong
  // values — but it must stay contained (the pre-existing contract).
  const dims3 d{50, 20};
  const auto v = base_field(d);
  core::pipeline<f32> p(core::pipeline_config{});
  const auto v1 = as_v1(p.compress(v, d));
  rng r(107);
  for (int trial = 0; trial < 100; ++trial) {
    auto mutated = v1;
    mutated[r.next_below(mutated.size())] ^=
        static_cast<u8>(1u << r.next_below(8));
    expect_contained([&] { return p.decompress(mutated); });
  }
}

TEST(FormatV2, VerifyOffCorruptionStillContained) {
  // FZMOD_VERIFY=0 trades detection for speed; containment must survive.
  const verify_off off;
  const dims3 d{50, 20};
  const auto v = base_field(d);
  core::pipeline<f32> p(core::pipeline_config{});
  const auto archive = p.compress(v, d);
  rng r(108);
  for (int trial = 0; trial < 150; ++trial) {
    auto mutated = archive;
    const std::size_t nflips = 1 + r.next_below(4);
    for (std::size_t f = 0; f < nflips; ++f) {
      mutated[r.next_below(mutated.size())] ^=
          static_cast<u8>(1u << r.next_below(8));
    }
    expect_contained([&] { return p.decompress(mutated); });
  }
}

TEST(FormatV2, ForgedDigestIsItselfDetected) {
  // Flipping a stored digest (rather than the data it covers) must also
  // surface as corruption — the digest words are not a blind spot.
  const dims3 d{300};
  const auto v = base_field(d);
  core::pipeline<f32> p(core::pipeline_config{});
  const auto archive = p.compress(v, d);
  const std::size_t digest_area =
      sizeof(fmt::outer_header_v2) + fmt::inner_header_v1_bytes;
  for (std::size_t k = 0; k < 5 * sizeof(u64); ++k) {
    auto mutated = archive;
    mutated[digest_area + k] ^= 0x10;
    expect_corrupt(p, mutated, digest_area + k);
  }
}

// --- hostile headers: structurally valid, digests refreshed ---------------

TEST(HostileHeader, OutOfRangeValueOutlierIndexRejected) {
  // Build a field guaranteed to carry a value outlier, then point its
  // index past the end of the field and re-checksum.
  const dims3 d{1000};
  auto v = base_field(d);
  v[123] = 3.0e38f;  // exceeds the quantizer's value_outlier_limit
  core::pipeline_config cfg;
  cfg.eb = {1e-6, eb_mode::abs};
  core::pipeline<f32> p(cfg);
  auto archive = p.compress(v, d);

  constexpr std::size_t outer = sizeof(fmt::outer_header_v2);
  fmt::inner_header hdr;
  std::memcpy(&hdr, archive.data() + outer, sizeof(hdr));
  ASSERT_GE(hdr.n_value_outliers, 1u) << "fixture lost its value outlier";
  const std::size_t vo_off =
      outer + sizeof(hdr) + hdr.codec_bytes + hdr.outlier_bytes;
  fmt::vo_record rec;
  std::memcpy(&rec, archive.data() + vo_off, sizeof(rec));
  rec.index = d.len() + 7;  // out of range, would be an OOB host write
  std::memcpy(archive.data() + vo_off, &rec, sizeof(rec));
  refresh_digests(archive);

  try {
    (void)p.decompress(archive);
    FAIL() << "should have thrown";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::corrupt_archive);
  }
}

TEST(HostileHeader, ZeroAnchorStrideRejected) {
  // Interp archives carry an anchor lattice; zero the stride (which used
  // to pin the anchor walk in place) and re-checksum.
  const dims3 d{128, 32};
  const auto v = base_field(d);
  core::pipeline_config cfg;
  cfg.predictor = core::predictor_spline;
  cfg.eb = {1e-3, eb_mode::rel};
  core::pipeline<f32> p(cfg);
  auto archive = p.compress(v, d);

  constexpr std::size_t outer = sizeof(fmt::outer_header_v2);
  fmt::inner_header hdr;
  std::memcpy(&hdr, archive.data() + outer, sizeof(hdr));
  ASSERT_GE(hdr.n_anchors, 1u);
  hdr.anchor_stride = 0;
  std::memcpy(archive.data() + outer, &hdr, sizeof(hdr));
  refresh_digests(archive);

  try {
    (void)p.decompress(archive);
    FAIL() << "should have thrown";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::corrupt_archive);
  }
}

TEST(HostileHeader, InconsistentAnchorCountRejected) {
  const dims3 d{128, 32};
  const auto v = base_field(d);
  core::pipeline_config cfg;
  cfg.predictor = core::predictor_spline;
  cfg.eb = {1e-3, eb_mode::rel};
  core::pipeline<f32> p(cfg);
  auto archive = p.compress(v, d);

  constexpr std::size_t outer = sizeof(fmt::outer_header_v2);
  fmt::inner_header hdr;
  std::memcpy(&hdr, archive.data() + outer, sizeof(hdr));
  ASSERT_GE(hdr.n_anchors, 2u);
  hdr.n_anchors -= 1;  // truncates the lattice the walk expects
  std::memcpy(archive.data() + outer, &hdr, sizeof(hdr));
  refresh_digests(archive);
  EXPECT_THROW((void)p.decompress(archive), error);
}

TEST(HostileHeader, ExtremeCountsRejected) {
  // Extreme section counts with refreshed digests: the structural
  // plausibility guards (not the digests) must hold the line.
  const dims3 d{2000};
  const auto v = base_field(d);
  core::pipeline<f32> p(core::pipeline_config{});
  const auto archive = p.compress(v, d);
  constexpr std::size_t outer = sizeof(fmt::outer_header_v2);

  const auto forge = [&](auto&& mutate) {
    auto mutated = archive;
    fmt::inner_header hdr;
    std::memcpy(&hdr, mutated.data() + outer, sizeof(hdr));
    mutate(hdr);
    hdr.digest_header = fmt::header_digest(hdr);
    std::memcpy(mutated.data() + outer, &hdr, sizeof(hdr));
    EXPECT_THROW((void)p.decompress(mutated), error);
  };
  forge([](fmt::inner_header& h) { h.n_outliers = u64{1} << 40; });
  forge([](fmt::inner_header& h) { h.n_value_outliers = u64{1} << 40; });
  forge([](fmt::inner_header& h) { h.n_anchors = u64{1} << 40; });
  forge([](fmt::inner_header& h) { h.codec_bytes = u64{1} << 50; });
  forge([](fmt::inner_header& h) { h.outlier_bytes = u64{1} << 50; });
  forge([](fmt::inner_header& h) { h.dims[0] = u64{1} << 60; });
}

TEST(FuzzLossless, SecondaryWrappedArchives) {
  // The LZ layer sits outermost when secondary is on; its framing and the
  // inner archive both get fuzzed through one entry point.
  const dims3 d{80, 25};
  const auto v = base_field(d);
  core::pipeline_config cfg;
  cfg.secondary = true;
  cfg.eb = {1e-3, eb_mode::rel};
  core::pipeline<f32> p(cfg);
  const auto archive = p.compress(v, d);
  rng r(106);
  for (int trial = 0; trial < 150; ++trial) {
    auto mutated = archive;
    const std::size_t nflips = 1 + r.next_below(4);
    for (std::size_t f = 0; f < nflips; ++f) {
      mutated[r.next_below(mutated.size())] ^=
          static_cast<u8>(1u << r.next_below(8));
    }
    core::pipeline<f32> fresh(core::pipeline_config{});
    expect_contained([&] { return fresh.decompress(mutated); });
  }
}

// ---------------------------------------------------------------------------
// Decoder-tier fuzz: the cached Huffman fast paths parse the same
// attacker-controlled blob as the canonical walk, so every tier gets the
// same bit-flip and truncation treatment — a corrupt chunk must throw
// (or decode to contained garbage), never read out of bounds or desync.

class FuzzHuffmanTiers
    : public ::testing::TestWithParam<encoders::huffman_tier> {};

TEST_P(FuzzHuffmanTiers, BitFlipSweepContained) {
  // Short codes so the single and double LUT paths genuinely engage;
  // several chunks so the offset table and chunk boundaries are in scope.
  rng r(910);
  std::vector<u16> codes(3 * encoders::huffman_chunk + 111);
  std::vector<u32> hist(64, 0);
  for (auto& c : codes) {
    c = static_cast<u16>(r.next_below(64));
    hist[c]++;
  }
  const auto blob = encoders::huffman_encode(codes, hist);

  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = blob;
    const std::size_t nflips = 1 + r.next_below(6);
    for (std::size_t f = 0; f < nflips; ++f) {
      mutated[r.next_below(mutated.size())] ^=
          static_cast<u8>(1u << r.next_below(8));
    }
    std::vector<u16> out(codes.size());
    expect_contained([&] {
      encoders::huffman_decode(mutated, out, GetParam());
      return 0;
    });
  }
}

TEST_P(FuzzHuffmanTiers, TruncationSweepContained) {
  rng r(911);
  std::vector<u16> codes(2 * encoders::huffman_chunk);
  std::vector<u32> hist(256, 0);
  for (auto& c : codes) {
    c = static_cast<u16>(r.next_below(256));
    hist[c]++;
  }
  const auto blob = encoders::huffman_encode(codes, hist);
  for (int trial = 0; trial < 120; ++trial) {
    const std::size_t keep = r.next_below(blob.size());
    const std::vector<u8> truncated(blob.begin(),
                                    blob.begin() + static_cast<long>(keep));
    std::vector<u16> out(codes.size());
    expect_contained([&] {
      encoders::huffman_decode(truncated, out, GetParam());
      return 0;
    });
  }
}

TEST_P(FuzzHuffmanTiers, StompedLengthsContained) {
  // The code-length table drives every LUT build; hostile lengths must be
  // rejected by the Kraft/cap validation, not walk a table OOB.
  rng r(912);
  std::vector<u16> codes(encoders::huffman_chunk + 7);
  std::vector<u32> hist(32, 0);
  for (auto& c : codes) {
    c = static_cast<u16>(r.next_below(32));
    hist[c]++;
  }
  const auto blob = encoders::huffman_encode(codes, hist);
  constexpr std::size_t lens_off = 24;  // blob_header is 24 bytes
  for (int trial = 0; trial < 150; ++trial) {
    auto mutated = blob;
    const std::size_t k = 1 + r.next_below(8);
    for (std::size_t j = 0; j < k; ++j) {
      mutated[lens_off + r.next_below(32)] = static_cast<u8>(r.next_u64());
    }
    std::vector<u16> out(codes.size());
    expect_contained([&] {
      encoders::huffman_decode(mutated, out, GetParam());
      return 0;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTiers, FuzzHuffmanTiers,
    ::testing::Values(encoders::huffman_tier::canonical,
                      encoders::huffman_tier::single_cached,
                      encoders::huffman_tier::double_cached,
                      encoders::huffman_tier::auto_select),
    [](const auto& info) { return encoders::to_string(info.param); });

}  // namespace
}  // namespace fzmod
