// Integration + property tests: the four reimplemented baselines (cuSZp2,
// FZ-GPU, PFPL, SZ3) and the uniform compressor harness.
#include <gtest/gtest.h>

#include <cmath>

#include "fzmod/common/error.hh"
#include "fzmod/baselines/compressor.hh"
#include "fzmod/common/rng.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod::baselines {
namespace {

std::vector<f32> test_field(dims3 d, u64 seed, f64 roughness) {
  rng r(seed);
  std::vector<f32> v(d.len());
  for (std::size_t z = 0; z < d.z; ++z) {
    for (std::size_t y = 0; y < d.y; ++y) {
      for (std::size_t x = 0; x < d.x; ++x) {
        v[d.at(x, y, z)] = static_cast<f32>(
            std::sin(0.05 * x) * std::cos(0.03 * y) * 100 + 0.1 * z +
            roughness * r.normal());
      }
    }
  }
  return v;
}

class AllCompressors : public ::testing::TestWithParam<std::string> {};

TEST_P(AllCompressors, RoundTripRelBound3D) {
  const dims3 d{40, 36, 10};
  const auto v = test_field(d, 100, 0.5);
  auto c = make(GetParam());
  const eb_config eb{1e-4, eb_mode::rel};
  const auto archive = c->compress(v, d, eb);
  const auto rec = c->decompress(archive);
  ASSERT_EQ(rec.size(), v.size());
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(eb.eb * err.range, err.range))
      << GetParam();
  EXPECT_GT(metrics::compression_ratio(v.size() * 4, archive.size()), 1.0)
      << GetParam();
}

TEST_P(AllCompressors, RoundTripAbsBound1D) {
  const dims3 d{30000};
  const auto v = test_field(d, 101, 1.0);
  auto c = make(GetParam());
  const eb_config eb{1e-2, eb_mode::abs};
  const auto archive = c->compress(v, d, eb);
  const auto rec = c->decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err, metrics::f32_bound_slack(eb.eb, 110.0))
      << GetParam();
}

TEST_P(AllCompressors, ConstantField) {
  const dims3 d{50, 50};
  std::vector<f32> v(d.len(), -3.5f);
  auto c = make(GetParam());
  const auto archive = c->compress(v, d, {1e-3, eb_mode::rel});
  const auto rec = c->decompress(archive);
  for (std::size_t i = 0; i < v.size(); i += 97) {
    EXPECT_NEAR(rec[i], -3.5f, 1e-3 * 1.01) << GetParam();
  }
}

TEST_P(AllCompressors, TightBoundRoughData) {
  rng r(102);
  const dims3 d{60, 60, 4};
  std::vector<f32> v(d.len());
  for (auto& x : v) x = static_cast<f32>(r.uniform(-1000, 1000));
  auto c = make(GetParam());
  const eb_config eb{1e-6, eb_mode::rel};
  const auto archive = c->compress(v, d, eb);
  const auto rec = c->decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(eb.eb * err.range, err.range))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Everyone, AllCompressors,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& info) {
                           std::string s = info.param;
                           for (auto& ch : s) {
                             if (ch == '-') ch = '_';
                           }
                           return s;
                         });

TEST(Harness, AllNamesResolveAndReportThemselves) {
  for (const auto& name : all_names()) {
    auto c = make(name);
    EXPECT_EQ(c->name(), name);
  }
  EXPECT_THROW(make("definitely-not-a-compressor"), error);
}

TEST(Harness, GpuNamesExcludeSz3) {
  const auto gpu = gpu_names();
  EXPECT_EQ(gpu.size(), all_names().size() - 1);
  for (const auto& n : gpu) EXPECT_NE(n, "SZ3");
}

TEST(Cuszp2, HugeValuesFallBackToRawBlocks) {
  std::vector<f32> v(100, 1.0f);
  v[40] = 3e33f;
  auto c = make_cuszp2();
  const auto archive = c->compress(v, dims3(v.size()), {1e-6, eb_mode::abs});
  const auto rec = c->decompress(archive);
  EXPECT_EQ(rec[40], 3e33f);  // raw block restores exactly
  EXPECT_NEAR(rec[0], 1.0f, 1e-6 * 1.01);
}

TEST(Pfpl, GuaranteeChannelCatchesEveryViolation) {
  // Adversarial mix: giant magnitudes, denormals, sign flips.
  rng r(103);
  std::vector<f32> v(5000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    switch (i % 5) {
      case 0: v[i] = static_cast<f32>(r.uniform(-1, 1) * 1e30); break;
      case 1: v[i] = static_cast<f32>(r.uniform(-1, 1) * 1e-30); break;
      default: v[i] = static_cast<f32>(r.normal() * 100); break;
    }
  }
  auto c = make_pfpl();
  const eb_config eb{1e-3, eb_mode::abs};
  const auto archive = c->compress(v, dims3(v.size()), eb);
  const auto rec = c->decompress(archive);
  for (std::size_t i = 0; i < v.size(); ++i) {
    // PFPL's defining property: the bound holds pointwise, period.
    ASSERT_LE(std::fabs(static_cast<f64>(v[i]) - rec[i]), eb.eb * (1 + 1e-9))
        << i;
  }
}

TEST(Sz3, BestRatioOnSmoothData) {
  // The paper's Table 3 headline: SZ3 tops CR across the board.
  const dims3 d{80, 80, 8};
  const auto v = test_field(d, 104, 0.05);
  const eb_config eb{1e-3, eb_mode::rel};
  const auto sz3_size = make_sz3()->compress(v, d, eb).size();
  for (const auto& name : gpu_names()) {
    const auto other = make(name)->compress(v, d, eb).size();
    EXPECT_LE(sz3_size, other) << "SZ3 vs " << name;
  }
}

TEST(Fzgpu, BeatsHuffmanPipelinesOnSpeedNotRatio) {
  // Qualitative Table 3 shape on smooth data: FZ-GPU's dictionary CR is
  // lower than the Huffman-based FZMod-Default CR.
  const dims3 d{64, 64, 16};
  const auto v = test_field(d, 105, 0.02);
  const eb_config eb{1e-4, eb_mode::rel};
  const auto a_fzgpu = make_fzgpu()->compress(v, d, eb);
  const auto a_default = make("FZMod-Default")->compress(v, d, eb);
  EXPECT_GT(a_fzgpu.size(), a_default.size() / 4);  // sanity
}

TEST(Baselines, ArchivesAreMutuallyUndecodable) {
  // Each archive format carries its own magic; feeding one compressor's
  // archive to another must fail loudly, not decode garbage.
  const dims3 d{32, 32};
  const auto v = test_field(d, 106, 0.1);
  const auto archive = make_cuszp2()->compress(v, d, {1e-3, eb_mode::rel});
  EXPECT_THROW((void)make_pfpl()->decompress(archive), error);
  EXPECT_THROW((void)make_fzgpu()->decompress(archive), error);
}

}  // namespace
}  // namespace fzmod::baselines
