// Unit tests: decoder resource guards and structural validation added
// after fuzzing (DESIGN.md inventory row 23). Each test forges a specific
// corruption the guards must catch *by name*, complementing the random
// fuzz suite.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "fzmod/baselines/compressor.hh"
#include "fzmod/common/error.hh"
#include "fzmod/core/archive_format.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/encoders/huffman.hh"
#include "fzmod/lossless/lz.hh"

namespace fzmod {
namespace {

std::vector<f32> field(std::size_t n) {
  std::vector<f32> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<f32>(std::sin(0.01 * static_cast<f64>(i)) * 10);
  }
  return v;
}

/// Scope guard that turns digest verification off, so tests exercise the
/// *structural* guards directly (with digests on, any header forgery is
/// caught by the header self-digest before the structural check runs).
struct verify_off {
  verify_off() { core::fmt::set_verify_enabled(false); }
  ~verify_off() { core::fmt::set_verify_enabled(true); }
};

// Forge an archive whose inner header declares absurd dims and verify the
// resource guard fires before any allocation-sized-by-dims happens.
TEST(Hardening, ForgedDimsRejected) {
  const verify_off off;
  const dims3 d{1000};
  const auto v = field(d.len());
  core::pipeline<f32> p(core::pipeline_config{});
  auto archive = p.compress(v, d);
  // inner_header.dims sits after outer(16) + magic(4)+ver(2)+type(1)+
  // mode(1)+eb(8)+ebx2(8) = offset 16+24 = 40.
  u64 huge = u64{1} << 60;
  std::memcpy(archive.data() + 40, &huge, sizeof(huge));
  try {
    (void)p.decompress(archive);
    FAIL() << "should have thrown";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::corrupt_archive);
  }
}

TEST(Hardening, ForgedOutlierCountRejected) {
  const verify_off off;
  const dims3 d{2000};
  const auto v = field(d.len());
  core::pipeline<f32> p(core::pipeline_config{});
  auto archive = p.compress(v, d);
  const auto info = core::inspect_archive(archive);
  // n_outliers field offset in the inner header: after outer(16) +
  // magic..radius+hist+pad (4+2+1+1+8+8+24+4+1+3 = 56) + 3 names (48) =
  // 16 + 56 + 48 = 120.
  u64 huge = u64{1} << 40;
  std::memcpy(archive.data() + 120, &huge, sizeof(huge));
  EXPECT_THROW((void)p.decompress(archive), error);
  (void)info;
}

TEST(Hardening, VarintOverflowRejected) {
  // A 10th varint byte may only hold bit 63; any higher payload bit used
  // to be shifted out silently, decoding a different value than encoded.
  const u8 bytes[] = {0x80, 0x80, 0x80, 0x80, 0x80,
                      0x80, 0x80, 0x80, 0x80, 0x02};
  const u8* p = bytes;
  try {
    (void)core::fmt::get_varint(p, bytes + sizeof(bytes));
    FAIL() << "should have thrown";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::corrupt_archive);
  }
  // Bit 63 alone is a legitimate encoding and must still decode.
  std::vector<u8> top;
  core::fmt::put_varint(top, u64{1} << 63);
  const u8* q = top.data();
  EXPECT_EQ(core::fmt::get_varint(q, top.data() + top.size()),
            u64{1} << 63);
}

TEST(Hardening, OutlierIndexWraparoundRejected) {
  // Delta-coded outlier indices accumulate in a u64; a hostile delta that
  // wraps the accumulator (or merely exits the field) must throw, not
  // hand a scatter loop an in-range-looking index.
  std::vector<u8> packed;
  core::fmt::put_varint(packed, 10);                   // index 10: fine
  core::fmt::put_varint(packed, zigzag_encode64(1));   // value
  core::fmt::put_varint(packed, ~u64{0} - 5);          // wrapping delta
  core::fmt::put_varint(packed, zigzag_encode64(2));
  try {
    (void)core::fmt::unpack_outliers(packed, 2, 1000);
    FAIL() << "should have thrown";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::corrupt_archive);
  }
  // In-range deltas still unpack.
  std::vector<u8> good;
  core::fmt::put_varint(good, 10);
  core::fmt::put_varint(good, zigzag_encode64(1));
  core::fmt::put_varint(good, 989);  // lands on index 999 < 1000
  core::fmt::put_varint(good, zigzag_encode64(2));
  const auto out = core::fmt::unpack_outliers(good, 2, 1000);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].index, 999u);
}

TEST(Hardening, ZeroAnchorStrideRejected) {
  // anchor_stride = 0 would pin the anchor lattice walk in place.
  core::fmt::inner_header hdr{};
  hdr.dims[0] = 100;
  hdr.dims[1] = hdr.dims[2] = 1;
  hdr.n_anchors = 4;
  hdr.anchor_stride = 0;
  try {
    core::fmt::validate_anchor_geometry(hdr, dims3{100});
    FAIL() << "should have thrown";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::corrupt_archive);
  }
  // A count inconsistent with dims/stride is equally hostile.
  hdr.anchor_stride = 64;
  hdr.n_anchors = 3;  // (100-1)/64+1 = 2 expected
  EXPECT_THROW(core::fmt::validate_anchor_geometry(hdr, dims3{100}), error);
  hdr.n_anchors = 2;
  EXPECT_NO_THROW(core::fmt::validate_anchor_geometry(hdr, dims3{100}));
}

TEST(Hardening, HuffmanNonMonotonicOffsetsRejected) {
  std::vector<u16> codes(3 * encoders::huffman_chunk, 5);
  codes[1] = 6;
  std::vector<u32> hist(16, 0);
  for (const u16 c : codes) hist[c]++;
  auto blob = encoders::huffman_encode(codes, hist);
  // Offsets table starts after header(24) + nbins(16) bytes.
  const std::size_t off_table = 24 + 16;
  u64 bogus = u64{1} << 50;
  std::memcpy(blob.data() + off_table + 8, &bogus, sizeof(bogus));
  std::vector<u16> out(codes.size());
  EXPECT_THROW(encoders::huffman_decode(blob, out), error);
}

TEST(Hardening, HuffmanChunkCountMismatchRejected) {
  std::vector<u16> codes(1000, 3);
  codes[0] = 2;
  std::vector<u32> hist(8, 0);
  for (const u16 c : codes) hist[c]++;
  auto blob = encoders::huffman_encode(codes, hist);
  // header: magic(4) nbins(4) count(8) nchunks(4) chunk(4); corrupt
  // nchunks at offset 16.
  u32 bogus = 77;
  std::memcpy(blob.data() + 16, &bogus, sizeof(bogus));
  std::vector<u16> out(codes.size());
  EXPECT_THROW(encoders::huffman_decode(blob, out), error);
}

TEST(Hardening, HuffmanKraftViolationRejected) {
  std::vector<u16> codes(1000);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<u16>(i % 8);
  }
  std::vector<u32> hist(8, 0);
  for (const u16 c : codes) hist[c]++;
  auto blob = encoders::huffman_encode(codes, hist);
  // Code lengths live right after the 24-byte header; setting them all to
  // 1 over-subscribes the code space.
  for (int k = 0; k < 8; ++k) blob[24 + k] = 1;
  std::vector<u16> out(codes.size());
  EXPECT_THROW(encoders::huffman_decode(blob, out), error);
}

TEST(Hardening, LzForgedRawSizeRejected) {
  std::vector<u8> raw(10000, 42);
  auto blob = lossless::compress(raw);
  // header: magic(4) mode(4) raw_size(8) at offset 8.
  u64 huge = u64{1} << 50;
  std::memcpy(blob.data() + 8, &huge, sizeof(huge));
  EXPECT_THROW((void)lossless::decompress(blob), error);
}

TEST(Hardening, BaselineForgedSizesRejected) {
  const dims3 d{5000};
  const auto v = field(d.len());
  for (const auto& name : {"cuSZp2", "PFPL", "FZ-GPU"}) {
    auto c = baselines::make(name);
    auto archive = c->compress(v, d, {1e-3, eb_mode::rel});
    // Every baseline header stores its element count / dims in the first
    // 48 bytes; blast that region with a huge value at every offset and
    // require containment (throw or clean result, never a crash).
    for (std::size_t off = 8; off + 8 <= 48; off += 8) {
      auto mutated = archive;
      u64 huge = u64{1} << 58;
      std::memcpy(mutated.data() + off, &huge, sizeof(huge));
      auto fresh = baselines::make(name);
      try {
        (void)fresh->decompress(mutated);
      } catch (const error&) {
        // contained
      }
    }
  }
  SUCCEED();
}

TEST(Hardening, GuardsDoNotRejectLegitimateLargeArchives) {
  // A real 1M-element field must still round-trip through all guards.
  const dims3 d{1u << 20};
  const auto v = field(d.len());
  core::pipeline<f32> p(core::pipeline_config{});
  const auto rec = p.decompress(p.compress(v, d));
  EXPECT_EQ(rec.size(), v.size());
}

}  // namespace
}  // namespace fzmod
