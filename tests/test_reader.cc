// Tests for the seekable reader (core/reader.hh): read() equality with
// decompress_range on random extents, cache hit-rate under a zipfian
// access trace, LRU eviction under a tiny byte budget, the sequential
// prefetcher, corrupted-chunk isolation (sticky errors), `.fzx` sidecar
// round-trip plus stale/forged index rejection, the chunk cursor,
// streaming byte_source opens, plain v2 archives, range validation, and
// concurrent readers (this test runs under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "fzmod/common/rng.hh"
#include "fzmod/core/chunked.hh"
#include "fzmod/core/reader.hh"
#include "fzmod/core/snapshot.hh"
#include "fzmod/data/io.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod::core {
namespace {

std::vector<f32> smooth_field(dims3 d, u64 seed = 7) {
  rng r(seed);
  std::vector<f32> v(d.len());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.003 * static_cast<f64>(i)) * 40 +
                            0.05 * r.normal());
  }
  return v;
}

/// A multi-chunk v3 container plus its full decode, shared across tests.
struct fixture {
  dims3 d;
  u64 chunk_elems;
  std::vector<f32> original;
  std::vector<u8> arch;
  std::vector<f32> full;

  explicit fixture(dims3 dims = {64, 8, 10}, u64 slabs_per_chunk = 2,
                   u64 seed = 11)
      : d(dims), chunk_elems(slabs_per_chunk * dims.x * dims.y) {
    chunked_options opt;
    opt.chunk_elems = chunk_elems;
    chunked_pipeline<f32> cp(pipeline_config{}, opt);
    original = smooth_field(d, seed);
    arch = cp.compress(original, d);
    EXPECT_TRUE(fmt::is_chunk_container(arch));
    full = cp.decompress(arch);
  }
};

/// Small deterministic reader: no prefetch, single worker, roomy cache.
reader_options quiet_opts() {
  reader_options o;
  o.cache_mb = 64;
  o.prefetch = 0;
  o.jobs = 1;
  return o;
}

TEST(Reader, RandomExtentsMatchFullDecodeSlice) {
  fixture fx;
  reader<f32> r(fx.arch, quiet_opts());
  EXPECT_EQ(r.size(), fx.d.len());
  EXPECT_EQ(r.dims().x, fx.d.x);
  EXPECT_EQ(r.nchunks(), 5u);

  rng rnd(101);
  for (int it = 0; it < 64; ++it) {
    const u64 off = rnd.next_below(fx.d.len());
    const u64 cnt = 1 + rnd.next_below(fx.d.len() - off);
    const auto part = r.read(off, cnt);
    ASSERT_EQ(part.size(), cnt);
    for (u64 i = 0; i < cnt; ++i) {
      ASSERT_EQ(part[i], fx.full[off + i]) << "off=" << off << " i=" << i;
    }
  }
  // Edge extents: single first/last element, whole field.
  for (const auto& [off, cnt] :
       {std::pair<u64, u64>{0, 1},
        {fx.d.len() - 1, 1},
        {0, fx.d.len()}}) {
    const auto part = r.read(off, cnt);
    for (u64 i = 0; i < cnt; ++i) ASSERT_EQ(part[i], fx.full[off + i]);
  }
}

TEST(Reader, RangeValidationMatchesDecompressRange) {
  fixture fx;
  reader<f32> r(fx.arch, quiet_opts());
  const u64 n = fx.d.len();
  EXPECT_THROW((void)r.read(100, 0), error);       // zero-length
  EXPECT_THROW((void)r.read(n, 1), error);         // offset at field end
  EXPECT_THROW((void)r.read(n + 5, 1), error);     // offset past field end
  EXPECT_THROW((void)r.read(0, n + 1), error);     // overrun
  EXPECT_THROW((void)r.read(n - 1, 2), error);     // tail overrun
  // offset + count u64 overflow must be caught, not wrap to a tiny range.
  EXPECT_THROW((void)r.read(5, ~u64{0}), error);
  EXPECT_THROW((void)r.read(~u64{0}, 2), error);
  // Same requests keep throwing from chunks() too.
  EXPECT_THROW((void)r.chunks(100, 0), error);
  EXPECT_THROW((void)r.chunks(5, ~u64{0}), error);
  // Nothing above decoded anything.
  EXPECT_EQ(r.stats().misses, 0u);
}

TEST(Reader, ZipfianTraceHitsCache) {
  // 20 chunks of one slab each; cache holds half of them. A zipfian
  // access pattern concentrates on the head ranks, so the hit rate must
  // clear the same floor the bench gates on (60%).
  fixture fx({64, 8, 20}, 1, 23);
  const u64 nchunks = 20;
  const std::size_t chunk_bytes = fx.chunk_elems * sizeof(f32);
  reader_options opt;
  opt.cache_bytes = 10 * chunk_bytes;
  opt.prefetch = 0;
  opt.jobs = 2;
  reader<f32> r(fx.arch, opt);

  // Zipf(s=1) CDF over chunk ranks.
  std::vector<f64> cdf(nchunks);
  f64 mass = 0;
  for (u64 k = 0; k < nchunks; ++k) {
    mass += 1.0 / static_cast<f64>(k + 1);
    cdf[k] = mass;
  }
  rng rnd(77);
  for (int it = 0; it < 400; ++it) {
    const f64 u = rnd.next_f64() * mass;
    u64 chunk = 0;
    while (chunk + 1 < nchunks && cdf[chunk] < u) ++chunk;
    const u64 off =
        chunk * fx.chunk_elems + rnd.next_below(fx.chunk_elems - 8);
    const auto part = r.read(off, 8);
    for (u64 i = 0; i < 8; ++i) ASSERT_EQ(part[i], fx.full[off + i]);
  }
  const auto st = r.stats();
  EXPECT_EQ(st.reads, 400u);
  EXPECT_GE(st.hit_rate(), 0.60) << "hits=" << st.hits
                                 << " misses=" << st.misses;
}

TEST(Reader, TinyCacheEvictsAndStaysCorrect) {
  fixture fx;
  reader_options opt;
  opt.cache_bytes = 1;  // nothing fits: every chunk evicts after its read
  opt.prefetch = 0;
  opt.jobs = 1;
  reader<f32> r(fx.arch, opt);
  for (int pass = 0; pass < 2; ++pass) {
    for (u64 c = 0; c < r.nchunks(); ++c) {
      const u64 off = c * fx.chunk_elems;
      const u64 cnt = std::min(fx.chunk_elems, fx.d.len() - off);
      const auto part = r.read(off, cnt);
      for (u64 i = 0; i < cnt; ++i) ASSERT_EQ(part[i], fx.full[off + i]);
    }
  }
  const auto st = r.stats();
  EXPECT_GT(st.evictions, 0u);
  // Second pass re-decodes everything: no room to hit.
  EXPECT_EQ(st.misses, 2 * r.nchunks());
}

TEST(Reader, SequentialScanUsesPrefetch) {
  fixture fx({64, 8, 12}, 1, 41);
  reader_options opt;
  opt.cache_mb = 64;
  opt.prefetch = 2;
  opt.jobs = 2;
  reader<f32> r(fx.arch, opt);
  for (u64 c = 0; c < r.nchunks(); ++c) {
    const u64 off = c * fx.chunk_elems;
    const auto part = r.read(off, fx.chunk_elems);
    for (u64 i = 0; i < fx.chunk_elems; ++i) {
      ASSERT_EQ(part[i], fx.full[off + i]);
    }
  }
  const auto st = r.stats();
  EXPECT_GT(st.prefetch_issued, 0u);
  EXPECT_GT(st.prefetch_used, 0u);
  // Every chunk past the first should have been speculated into the
  // cache before its demand read arrived (or was at least in flight).
  EXPECT_GT(st.hits, 0u);
}

TEST(Reader, CorruptChunkIsIsolatedAndSticky) {
  fixture fx({256, 16, 6}, 2, 31);  // 3 chunks
  auto arch = fx.arch;
  const auto info = inspect_chunked(arch);
  ASSERT_EQ(info.nchunks, 3u);
  const auto& e1 = info.chunks[1];
  arch[sizeof(fmt::chunk_header_v3) + e1.archive_offset +
       e1.archive_bytes / 2] ^= 0x10;

  reader<f32> r(arch, quiet_opts());
  // Chunks 0 and 2 never touch chunk 1's bytes.
  const auto head = r.read(0, info.chunks[0].raw_len);
  for (u64 i = 0; i < head.size(); ++i) ASSERT_EQ(head[i], fx.full[i]);
  const u64 off2 = info.chunks[2].raw_offset;
  const auto tail = r.read(off2, info.chunks[2].raw_len);
  for (u64 i = 0; i < tail.size(); ++i) {
    ASSERT_EQ(tail[i], fx.full[off2 + i]);
  }
  // A range covering chunk 1 throws — and keeps throwing on retry (the
  // error is sticky; no half-decoded data can ever be served).
  const u64 off1 = info.chunks[1].raw_offset;
  EXPECT_THROW((void)r.read(off1, 16), error);
  EXPECT_THROW((void)r.read(off1, 16), error);
  try {
    (void)r.read(0, fx.d.len());  // whole field covers the bad chunk
    FAIL() << "expected corrupt_archive";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::corrupt_archive);
  }
  // The good chunks still serve after the failures.
  const auto again = r.read(0, 64);
  for (u64 i = 0; i < 64; ++i) ASSERT_EQ(again[i], fx.full[i]);
}

TEST(Reader, ChunkCursorWalksCoveringChunksOnce) {
  fixture fx;
  reader<f32> r(fx.arch, quiet_opts());
  const u64 off = fx.chunk_elems / 2;
  const u64 cnt = 3 * fx.chunk_elems;  // straddles 4 chunks
  auto cur = r.chunks(off, cnt);
  std::vector<f32> got;
  reader<f32>::chunk_view v;
  u64 expect_at = off;
  std::size_t steps = 0;
  while (cur.next(v)) {
    EXPECT_EQ(v.offset, expect_at);  // contiguous, in order
    got.insert(got.end(), v.data.begin(), v.data.end());
    expect_at = v.offset + v.data.size();
    ++steps;
  }
  EXPECT_EQ(steps, 4u);
  ASSERT_EQ(got.size(), cnt);
  for (u64 i = 0; i < cnt; ++i) ASSERT_EQ(got[i], fx.full[off + i]);
  // Exhausted cursor stays exhausted.
  EXPECT_FALSE(cur.next(v));
}

TEST(Reader, SidecarIndexRoundTripSkipsDirectoryScan) {
  fixture fx;
  reader<f32> r1(fx.arch, quiet_opts());
  const std::vector<u8> idx = r1.export_index();
  EXPECT_FALSE(r1.stats().index_used);

  trace::set_enabled(true);
  trace::clear();
  reader<f32> r2(fx.arch, idx, quiet_opts());
  EXPECT_TRUE(r2.stats().index_used);
  bool saw_index = false, saw_dirscan = false;
  for (const auto& e : trace::snapshot()) {
    if (std::string_view(e.name) == "open.index") saw_index = true;
    if (std::string_view(e.name) == "open.dirscan") saw_dirscan = true;
  }
  trace::set_enabled(false);
  trace::clear();
  EXPECT_TRUE(saw_index);    // cold open served from the sidecar...
  EXPECT_FALSE(saw_dirscan);  // ...so the trailing directory never parsed
  const auto part = r2.read(100, 2000);
  for (u64 i = 0; i < 2000; ++i) ASSERT_EQ(part[i], fx.full[100 + i]);
}

TEST(Reader, StaleIndexFallsBackToDirectoryScan) {
  fixture fx;
  const std::vector<u8> idx = reader<f32>(fx.arch, quiet_opts())
                                  .export_index();
  // "New" container: same dims, different data — the sidecar is stale.
  fixture fresh({64, 8, 10}, 2, 999);
  trace::set_enabled(true);
  trace::clear();
  reader<f32> r(fresh.arch, idx, quiet_opts());
  EXPECT_FALSE(r.stats().index_used);
  bool saw_rejected = false;
  for (const auto& e : trace::snapshot()) {
    if (std::string_view(e.name) == "index.rejected") saw_rejected = true;
  }
  trace::set_enabled(false);
  trace::clear();
  EXPECT_TRUE(saw_rejected);
  // Degraded to a scan, not a crash — reads serve the *new* data.
  const auto part = r.read(0, 512);
  for (u64 i = 0; i < 512; ++i) ASSERT_EQ(part[i], fresh.full[i]);
}

TEST(Reader, ForgedIndexIsRejectedBySelfDigest) {
  fixture fx;
  std::vector<u8> idx =
      reader<f32>(fx.arch, quiet_opts()).export_index();
  // Tamper with a directory entry inside the sidecar: the self-digest
  // trailer no longer matches, so the import must fail closed.
  idx[sizeof(fmt::fzx_header) + 8] ^= 0xff;
  reader<f32> r(fx.arch, idx, quiet_opts());
  EXPECT_FALSE(r.stats().index_used);
  const auto part = r.read(700, 300);
  for (u64 i = 0; i < 300; ++i) ASSERT_EQ(part[i], fx.full[700 + i]);
  // Truncated sidecars fail closed too.
  std::vector<u8> stub(idx.begin(), idx.begin() + 16);
  reader<f32> r2(fx.arch, stub, quiet_opts());
  EXPECT_FALSE(r2.stats().index_used);
}

TEST(Reader, PlainV2ArchiveOpensAsOneChunk) {
  const dims3 d{40, 5, 1};
  pipeline<f32> plain(pipeline_config{});
  const auto v = smooth_field(d, 5);
  const auto arch = plain.compress(v, d);
  ASSERT_FALSE(fmt::is_chunk_container(arch));

  reader<f32> r(arch, quiet_opts());
  EXPECT_EQ(r.nchunks(), 1u);
  EXPECT_EQ(r.size(), d.len());
  const auto full = plain.decompress(arch);
  const auto part = r.read(30, 50);
  for (u64 i = 0; i < 50; ++i) ASSERT_EQ(part[i], full[30 + i]);
  // No chunk directory to index.
  try {
    (void)r.export_index();
    FAIL() << "expected unsupported";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::unsupported);
  }
}

TEST(Reader, StreamingByteSourceFetchesOnDemand) {
  fixture fx;
  std::atomic<u64> bytes_pulled{0};
  reader<f32>::byte_source src = [&](u8* dst, u64 off, std::size_t n) {
    ASSERT_LE(off + n, fx.arch.size());
    std::copy_n(fx.arch.data() + off, n, dst);
    bytes_pulled.fetch_add(n, std::memory_order_relaxed);
  };
  reader<f32> r(src, fx.arch.size(), quiet_opts());
  const auto part = r.read(0, fx.chunk_elems);  // one chunk's worth
  for (u64 i = 0; i < fx.chunk_elems; ++i) ASSERT_EQ(part[i], fx.full[i]);
  // Header + directory + one chunk archive — far less than the container.
  EXPECT_LT(bytes_pulled.load(), fx.arch.size());

  // Streaming open honors a sidecar too (the whole-container digest
  // check streams the body; reads still fetch only covering chunks).
  const std::vector<u8> idx = r.export_index();
  reader<f32> r2(src, fx.arch.size(), idx, quiet_opts());
  EXPECT_TRUE(r2.stats().index_used);
  const auto tail = r2.read(fx.d.len() - 100, 100);
  for (u64 i = 0; i < 100; ++i) {
    ASSERT_EQ(tail[i], fx.full[fx.d.len() - 100 + i]);
  }
}

TEST(Reader, OpenFileRoundTripsThroughDisk) {
  fixture fx;
  const std::string path = testing::TempDir() + "reader_rt.fzm";
  const std::string idx_path = testing::TempDir() + "reader_rt.fzx";
  data::write_file(path, fx.arch);
  auto r = reader<f32>::open_file(path, quiet_opts());
  data::write_file(idx_path, r.export_index());
  const auto part = r.read(64, 128);
  for (u64 i = 0; i < 128; ++i) ASSERT_EQ(part[i], fx.full[64 + i]);

  auto r2 = reader<f32>::open_file(path, idx_path, quiet_opts());
  EXPECT_TRUE(r2.stats().index_used);
  const auto part2 = r2.read(64, 128);
  for (u64 i = 0; i < 128; ++i) ASSERT_EQ(part2[i], fx.full[64 + i]);
}

TEST(Reader, ConcurrentReadersShareTheCache) {
  // Exercises the lock/cv protocol under contention: four threads hammer
  // overlapping extents while the prefetcher speculates. Runs under TSan
  // in CI, where any cache/LRU/pin race surfaces as a hard failure.
  fixture fx({64, 8, 16}, 1, 53);
  reader_options opt;
  opt.cache_bytes = 6 * fx.chunk_elems * sizeof(f32);  // force eviction
  opt.prefetch = 2;
  opt.jobs = 3;
  reader<f32> r(fx.arch, opt);

  std::atomic<int> failures{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&, t] {
      rng rnd(1000 + static_cast<u64>(t));
      for (int it = 0; it < 60; ++it) {
        const u64 off = rnd.next_below(fx.d.len() - 32);
        const auto part = r.read(off, 32);
        for (u64 i = 0; i < 32; ++i) {
          if (part[i] != fx.full[off + i]) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(r.stats().reads, 240u);
}

TEST(Reader, SnapshotMakeReaderMatchesReadRange) {
  const dims3 d{64, 8, 10};
  snapshot_writer w;
  chunked_options copt;
  copt.chunk_elems = 2 * 64 * 8;
  w.set_chunking(copt);
  const auto v = smooth_field(d, 71);
  w.add("density", v, d);
  const auto blob = w.finish();

  snapshot_reader snap(blob);
  const auto via_range = snap.read_range("density", 700, 300);
  auto r = snap.make_reader("density", quiet_opts());
  const auto via_reader = r.read(700, 300);
  ASSERT_EQ(via_range.size(), via_reader.size());
  for (u64 i = 0; i < 300; ++i) ASSERT_EQ(via_range[i], via_reader[i]);
  EXPECT_THROW((void)snap.read_range("density", 700, 0), error);
  EXPECT_THROW((void)snap.make_reader("missing"), error);
}

TEST(ReaderOptions, EnvResolutionAndOverrides) {
  reader_options o;
  o.cache_bytes = 4096;
  o.cache_mb = 7;
  EXPECT_EQ(o.resolve_cache_bytes(), 4096u);  // explicit bytes win
  o.cache_bytes = 0;
  EXPECT_EQ(o.resolve_cache_bytes(), 7u << 20);
  o.prefetch = 3;
  EXPECT_EQ(o.resolve_prefetch(), 3u);
  o.prefetch = 0;
  EXPECT_EQ(o.resolve_prefetch(), 0u);
  o.jobs = 5;
  EXPECT_EQ(o.resolve_jobs(), 5u);

  // Environment path: strict parse, garbage throws naming the variable.
  setenv("FZMOD_READER_CACHE_MB", "3", 1);
  setenv("FZMOD_READER_PREFETCH", "9", 1);
  reader_options env_opt;
  env_opt.prefetch = -1;
  EXPECT_EQ(env_opt.resolve_cache_bytes(), 3u << 20);
  EXPECT_EQ(env_opt.resolve_prefetch(), 9u);
  setenv("FZMOD_READER_CACHE_MB", "lots", 1);
  EXPECT_THROW((void)env_opt.resolve_cache_bytes(), error);
  setenv("FZMOD_READER_PREFETCH", "-2", 1);
  EXPECT_THROW((void)env_opt.resolve_prefetch(), error);
  unsetenv("FZMOD_READER_CACHE_MB");
  unsetenv("FZMOD_READER_PREFETCH");
  EXPECT_EQ(env_opt.resolve_cache_bytes(), 256u << 20);  // defaults
  EXPECT_EQ(env_opt.resolve_prefetch(), 2u);
}

}  // namespace
}  // namespace fzmod::core
