// Unit + property tests: multi-level interpolation (G-Interp) predictor.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "fzmod/common/rng.hh"
#include "fzmod/metrics/metrics.hh"
#include "fzmod/predictors/interp.hh"
#include "fzmod/predictors/lorenzo.hh"

namespace fzmod::predictors {
namespace {

template <class T>
device::buffer<T> to_device(const std::vector<T>& v) {
  device::buffer<T> d(v.size(), device::space::device);
  std::memcpy(d.data(), v.data(), v.size() * sizeof(T));
  return d;
}

struct interp_roundtrip_result {
  std::vector<f32> rec;
  quant_field field;
  interp_anchors anchors;
};

interp_roundtrip_result roundtrip(const std::vector<f32>& v, dims3 dims,
                                  f64 eb, int radius = default_radius) {
  interp_roundtrip_result out;
  auto dev = to_device(v);
  device::stream s;
  interp_compress_async(dev, dims, 2 * eb, radius, out.field, out.anchors,
                        s);
  s.sync();
  device::buffer<f32> rec(dims.len(), device::space::device);
  interp_decompress_async(out.field, out.anchors, rec, s);
  s.sync();
  out.rec.resize(dims.len());
  std::memcpy(out.rec.data(), rec.data(), rec.bytes());
  return out;
}

TEST(Interp, RoundTrip1D) {
  std::vector<f32> v(3001);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(std::sin(0.01 * static_cast<f64>(i)) * 20);
  }
  const f64 eb = 1e-4;
  const auto rt = roundtrip(v, dims3(v.size()), eb);
  const auto err = metrics::compare(v, rt.rec);
  EXPECT_LE(err.max_abs_err, metrics::f32_bound_slack(eb, 20.0));
}

TEST(Interp, RoundTrip2D) {
  const dims3 d{130, 121};
  std::vector<f32> v(d.len());
  for (std::size_t y = 0; y < d.y; ++y) {
    for (std::size_t x = 0; x < d.x; ++x) {
      v[d.at(x, y, 0)] = static_cast<f32>(
          std::sin(0.04 * x) * std::cos(0.05 * y) * 100 + 0.3 * x);
    }
  }
  const f64 eb = 1e-3;
  const auto rt = roundtrip(v, d, eb);
  const auto err = metrics::compare(v, rt.rec);
  EXPECT_LE(err.max_abs_err, metrics::f32_bound_slack(eb, 150.0));
}

TEST(Interp, RoundTrip3DNonPowerOfTwo) {
  const dims3 d{37, 41, 23};
  rng r(20);
  std::vector<f32> v(d.len());
  for (std::size_t z = 0; z < d.z; ++z) {
    for (std::size_t y = 0; y < d.y; ++y) {
      for (std::size_t x = 0; x < d.x; ++x) {
        v[d.at(x, y, z)] = static_cast<f32>(
            std::sin(0.1 * x) + std::cos(0.12 * y) + 0.05 * z +
            0.01 * r.normal());
      }
    }
  }
  const f64 eb = 1e-3;
  const auto rt = roundtrip(v, d, eb);
  const auto err = metrics::compare(v, rt.rec);
  EXPECT_LE(err.max_abs_err, metrics::f32_bound_slack(eb, 5.0));
}

TEST(Interp, AnchorsAreStoredOnStrideLattice) {
  const dims3 d{129, 129};
  std::vector<f32> v(d.len(), 0.0f);
  const auto rt = roundtrip(v, d, 1e-3);
  // ceil(129/64) = 3 anchor coordinates per dim (0, 64, 128).
  EXPECT_EQ(rt.anchors.stride, interp_anchor_stride);
  EXPECT_EQ(rt.anchors.lattice.size(), 9u);
}

TEST(Interp, SmootherFieldYieldsMoreConcentratedCodes) {
  // The spline predictor's selling point: on smooth data its codes cluster
  // at the radius (zero error) much more tightly than Lorenzo's.
  const dims3 d{200, 200};
  std::vector<f32> v(d.len());
  for (std::size_t y = 0; y < d.y; ++y) {
    for (std::size_t x = 0; x < d.x; ++x) {
      v[d.at(x, y, 0)] = static_cast<f32>(
          std::sin(0.02 * x) * std::cos(0.015 * y) * 1000);
    }
  }
  const f64 eb = 1e-5 * 2000;  // rel-1e-5-like

  const auto rt = roundtrip(v, d, eb);
  auto dev = to_device(v);
  quant_field lz;
  device::stream s;
  lorenzo_compress_async(dev, d, 2 * eb, default_radius, lz, s);
  s.sync();

  auto center_hits = [&](const quant_field& f) {
    u64 hits = 0;
    for (std::size_t i = 0; i < d.len(); ++i) {
      hits += (f.codes.data()[i] == static_cast<u16>(default_radius));
    }
    return hits;
  };
  EXPECT_GT(center_hits(rt.field), center_hits(lz));
}

TEST(Interp, ConstantField) {
  const dims3 d{65, 65, 65};
  std::vector<f32> v(d.len(), -7.5f);
  const auto rt = roundtrip(v, d, 1e-4);
  EXPECT_EQ(rt.field.n_outliers, 0u);
  for (std::size_t i = 0; i < d.len(); i += 1000) {
    EXPECT_NEAR(rt.rec[i], -7.5f, 1e-4);
  }
}

TEST(Interp, TinyFieldsSmallerThanAnchorStride) {
  for (const std::size_t n : {1u, 2u, 3u, 7u, 63u}) {
    std::vector<f32> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<f32>(i * i);
    const f64 eb = 1e-3;
    const auto rt = roundtrip(v, dims3(n), eb);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(rt.rec[i], v[i], eb * (1 + 1e-6)) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Interp, HugeMagnitudesGoThroughValueOutlierChannel) {
  std::vector<f32> v(100, 1.0f);
  v[37] = 4.2e30f;
  const f64 eb = 1e-4;
  const auto rt = roundtrip(v, dims3(v.size()), eb);
  EXPECT_EQ(rt.rec[37], 4.2e30f);
  EXPECT_NEAR(rt.rec[36], 1.0f, eb * 2);
}

TEST(Interp, RoughDataBoundStillHolds) {
  rng r(21);
  const dims3 d{64, 64, 16};
  std::vector<f32> v(d.len());
  for (auto& x : v) x = static_cast<f32>(r.uniform(-100, 100));
  const f64 eb = 1e-2;
  const auto rt = roundtrip(v, d, eb);
  const auto err = metrics::compare(v, rt.rec);
  EXPECT_LE(err.max_abs_err, metrics::f32_bound_slack(eb, 100.0));
  // Rough data must be funneled through outliers, not silently distorted.
  EXPECT_GT(rt.field.n_outliers, 0u);
}

class InterpEbSweep : public ::testing::TestWithParam<f64> {};

TEST_P(InterpEbSweep, BoundHolds) {
  const f64 eb = GetParam();
  const dims3 d{77, 53};
  rng r(22);
  std::vector<f32> v(d.len());
  for (std::size_t y = 0; y < d.y; ++y) {
    for (std::size_t x = 0; x < d.x; ++x) {
      v[d.at(x, y, 0)] =
          static_cast<f32>(std::sin(0.07 * x) * 40 + r.normal());
    }
  }
  const auto rt = roundtrip(v, d, eb);
  const auto err = metrics::compare(v, rt.rec);
  EXPECT_LE(err.max_abs_err, metrics::f32_bound_slack(eb, 50.0)) << eb;
}

INSTANTIATE_TEST_SUITE_P(Bounds, InterpEbSweep,
                         ::testing::Values(1.0, 1e-1, 1e-2, 1e-3, 1e-4));

TEST(Interp, HigherAccuracyThanLorenzoOnSmoothData) {
  // FZMod-Quality's premise (paper §3.3): interpolation predicts smooth
  // fields better, leaving fewer/narrower residuals.
  const dims3 d{150, 150};
  std::vector<f32> v(d.len());
  for (std::size_t y = 0; y < d.y; ++y) {
    for (std::size_t x = 0; x < d.x; ++x) {
      v[d.at(x, y, 0)] = static_cast<f32>(
          std::exp(-0.001 * ((x - 75.0) * (x - 75.0) +
                             (y - 75.0) * (y - 75.0))) *
          500);
    }
  }
  const f64 eb = 5e-4;
  const auto rt = roundtrip(v, d, eb);
  auto dev = to_device(v);
  quant_field lz;
  device::stream s;
  lorenzo_compress_async(dev, d, 2 * eb, default_radius, lz, s);
  s.sync();

  // Compare residual entropy proxies: sum of |code - radius|.
  auto residual_mass = [&](const quant_field& f) {
    u64 mass = 0;
    for (std::size_t i = 0; i < d.len(); ++i) {
      const u16 c = f.codes.data()[i];
      if (c) mass += static_cast<u64>(std::abs(c - default_radius));
    }
    return mass;
  };
  EXPECT_LT(residual_mass(rt.field), residual_mass(lz));
}

}  // namespace
}  // namespace fzmod::predictors
