// Unit tests: trace recorder — disabled fast path, cross-thread span
// nesting, counter series, Chrome JSON export (re-parsed here with a
// minimal validating JSON parser), the STF DAG DOT dump, the summary
// rollup, and torn-free runtime stats snapshots under contention.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "fzmod/core/pipeline.hh"
#include "fzmod/core/stf_pipeline.hh"
#include "fzmod/device/runtime.hh"
#include "fzmod/trace/trace.hh"

namespace fzmod {
namespace {

/// Every test owns the global recorder state for its duration.
struct trace_session {
  trace_session() {
    trace::set_enabled(true);
    trace::clear();
  }
  ~trace_session() {
    trace::set_enabled(false);
    trace::clear();
  }
};

// ---------------------------------------------------------------------------
// Minimal JSON DOM parser, just enough to re-parse the Chrome export: full
// syntax (objects, arrays, strings with escapes, numbers, literals), no
// extensions. Throws std::runtime_error on malformed input.

struct json_value;
using json_object = std::map<std::string, json_value>;
using json_array = std::vector<json_value>;

struct json_value {
  std::variant<std::nullptr_t, bool, f64, std::string,
               std::shared_ptr<json_array>, std::shared_ptr<json_object>>
      v;

  [[nodiscard]] const json_object& obj() const {
    return *std::get<std::shared_ptr<json_object>>(v);
  }
  [[nodiscard]] const json_array& arr() const {
    return *std::get<std::shared_ptr<json_array>>(v);
  }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] f64 num() const { return std::get<f64>(v); }
};

class json_parser {
 public:
  explicit json_parser(std::string_view s) : s_(s) {}

  json_value parse() {
    json_value v = value();
    ws();
    if (i_ != s_.size()) fail("trailing bytes after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json at byte " + std::to_string(i_) + ": " +
                             why);
  }
  void ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }
  char peek() {
    if (i_ >= s_.size()) fail("unexpected end");
    return s_[i_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  json_value value() {
    ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return {std::string(string())};
      case 't': literal("true"); return {true};
      case 'f': literal("false"); return {false};
      case 'n': literal("null"); return {nullptr};
      default: return {number()};
    }
  }
  void literal(std::string_view lit) {
    if (s_.substr(i_, lit.size()) != lit) fail("bad literal");
    i_ += lit.size();
  }
  json_value object() {
    auto o = std::make_shared<json_object>();
    expect('{');
    ws();
    if (peek() == '}') { ++i_; return {o}; }
    for (;;) {
      ws();
      std::string k = string();
      ws();
      expect(':');
      (*o)[std::move(k)] = value();
      ws();
      if (peek() == ',') { ++i_; continue; }
      expect('}');
      return {o};
    }
  }
  json_value array() {
    auto a = std::make_shared<json_array>();
    expect('[');
    ws();
    if (peek() == ']') { ++i_; return {a}; }
    for (;;) {
      a->push_back(value());
      ws();
      if (peek() == ',') { ++i_; continue; }
      expect(']');
      return {a};
    }
  }
  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (i_ >= s_.size()) fail("unterminated string");
      char c = s_[i_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char");
      if (c != '\\') { out += c; continue; }
      if (i_ >= s_.size()) fail("dangling escape");
      char e = s_[i_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) fail("short \\u escape");
          for (int k = 0; k < 4; ++k) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[i_ + k])))
              fail("bad \\u escape");
          }
          out += '?';  // codepoint value irrelevant to these tests
          i_ += 4;
          break;
        }
        default: fail("unknown escape");
      }
    }
  }
  f64 number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    if (i_ == start) fail("expected number");
    return std::stod(std::string(s_.substr(start, i_ - start)));
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

// ---------------------------------------------------------------------------

TEST(Trace, DisabledPathRecordsNothing) {
  trace::set_enabled(false);
  trace::clear();
  trace::instant("t", "instant");
  trace::counter("t.counter", 1);
  trace::complete("t", "complete", 0, 100);
  {
    FZMOD_TRACE_SPAN("t", "raii");
  }
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_EQ(trace::dropped_count(), 0u);
  EXPECT_TRUE(trace::snapshot().empty());
}

TEST(Trace, SpanDisabledAtOpenStaysSilentAcrossEnable) {
  trace::set_enabled(false);
  trace::clear();
  {
    trace::span_scope sp("t", "opened-while-off");
    trace::set_enabled(true);  // flips mid-span; the span must not record
  }
  EXPECT_EQ(trace::event_count(), 0u);
  trace::set_enabled(false);
  trace::clear();
}

TEST(Trace, SpanNestingAcrossThreads) {
  trace_session session;
  constexpr int nthreads = 4;
  std::vector<std::thread> ts;
  ts.reserve(nthreads);
  for (int t = 0; t < nthreads; ++t) {
    ts.emplace_back([t] {
      trace::span_scope outer("nest", "outer" + std::to_string(t));
      {
        trace::span_scope inner("nest", "inner" + std::to_string(t));
      }
    });
  }
  for (auto& t : ts) t.join();

  const std::vector<trace::event> ev = trace::snapshot();
  std::map<std::string, trace::event> by_name;
  std::set<u32> tids;
  for (const auto& e : ev) {
    ASSERT_EQ(e.k, trace::kind::span);
    by_name[e.name] = e;
    tids.insert(e.tid);
  }
  ASSERT_EQ(by_name.size(), 2u * nthreads);
  // Each thread recorded on its own ring under a distinct thread id.
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    const auto& outer = by_name.at("outer" + std::to_string(t));
    const auto& inner = by_name.at("inner" + std::to_string(t));
    EXPECT_EQ(outer.tid, inner.tid);
    // Inner nests inside outer: [inner.ts, inner.end] within
    // [outer.ts, outer.end].
    EXPECT_GE(inner.ts_ns, outer.ts_ns);
    EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);
  }
}

TEST(Trace, SnapshotIsTimestampSorted) {
  trace_session session;
  for (int i = 0; i < 100; ++i) trace::instant("t", "tick");
  const auto ev = trace::snapshot();
  ASSERT_EQ(ev.size(), 100u);
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i].ts_ns, ev[i - 1].ts_ns);
  }
}

TEST(Trace, RuntimeCounterSeriesIsMonotonic) {
  trace_session session;
  // Interleave real allocator traffic with counter samples; the sampled
  // cumulative series (hits, misses, kernels, h2d) must never decrease.
  for (int round = 0; round < 8; ++round) {
    device::buffer<f32> b(1024 + 512 * round, device::space::device);
    device::stream s;
    device::launch(s, b.size(), [p = b.data()](std::size_t i) {
      p[i] = static_cast<f32>(i);
    });
    s.sync();
    device::sample_trace_counters();
  }
  const auto ev = trace::snapshot();
  std::map<std::string, std::vector<f64>> series;
  for (const auto& e : ev) {
    if (e.k == trace::kind::counter) series[e.name].push_back(e.value);
  }
  for (const char* name :
       {"pool.device.hits", "pool.device.misses",
        "runtime.kernels_launched", "runtime.h2d_bytes"}) {
    ASSERT_TRUE(series.count(name)) << name;
    const auto& v = series[name];
    ASSERT_EQ(v.size(), 8u) << name;
    for (std::size_t i = 1; i < v.size(); ++i) {
      EXPECT_LE(v[i - 1], v[i]) << name << " sample " << i;
    }
  }
  // Kernel launches: one per round, so strictly increasing.
  const auto& k = series["runtime.kernels_launched"];
  EXPECT_GE(k.back() - k.front(), 7.0);
}

TEST(Trace, ChromeJsonReparsesWithExpectedShape) {
  trace_session session;
  // Produce a real mixed-kind trace: one full pipeline round trip.
  std::vector<f32> field(64 * 64);
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = std::sin(static_cast<f32>(i) * 0.01f);
  }
  core::pipeline<f32> pipe(
      core::pipeline_config::preset_default({1e-3, eb_mode::rel}));
  const auto archive = pipe.compress(field, {64, 64, 1});
  (void)pipe.decompress(archive);
  trace::counter("test.counter", 42);

  const std::string json = trace::export_chrome_json();
  const json_value doc = json_parser(json).parse();
  const auto& events = doc.obj().at("traceEvents").arr();
  EXPECT_EQ(events.size(), trace::event_count());
  ASSERT_GT(events.size(), 0u);

  std::set<std::string> phases;
  for (const auto& e : events) {
    const auto& o = e.obj();
    // Mandatory trace-event-format fields on every record.
    ASSERT_TRUE(o.count("ph"));
    ASSERT_TRUE(o.count("name"));
    ASSERT_TRUE(o.count("ts"));
    ASSERT_TRUE(o.count("pid"));
    ASSERT_TRUE(o.count("tid"));
    const std::string ph = o.at("ph").str();
    phases.insert(ph);
    if (ph == "X") {
      EXPECT_TRUE(o.count("dur"));
    } else if (ph == "C") {
      EXPECT_TRUE(o.at("args").obj().count("value"));
    } else {
      EXPECT_EQ(ph, "i");
    }
  }
  // The round trip exercised all three kinds.
  EXPECT_TRUE(phases.count("X"));
  EXPECT_TRUE(phases.count("C"));
  // Stage spans recorded by the pipeline appear by name.
  bool saw_compress = false;
  for (const auto& e : events) {
    if (e.obj().at("name").str() == "compress") saw_compress = true;
  }
  EXPECT_TRUE(saw_compress);
}

TEST(Trace, DotContainsEveryStfNodeExactlyOnce) {
  trace_session session;
  std::vector<f32> field(48 * 48);
  for (std::size_t i = 0; i < field.size(); ++i) {
    field[i] = static_cast<f32>(i % 97) * 0.5f;
  }
  const auto archive =
      core::stf_compress(field, {48, 48, 1}, {1e-3, eb_mode::rel}, 512);
  ASSERT_FALSE(archive.empty());
  const std::string dot = trace::last_dag();
  ASSERT_FALSE(dot.empty());

  // Node declarations are lines of the form: "name#id" [label="..."];
  // Collect them and every edge endpoint.
  std::map<std::string, int> decls;
  std::set<std::string> endpoints;
  std::size_t pos = 0;
  while (pos < dot.size()) {
    const std::size_t eol = dot.find('\n', pos);
    const std::string line =
        dot.substr(pos, eol == std::string::npos ? eol : eol - pos);
    pos = eol == std::string::npos ? dot.size() : eol + 1;
    const std::size_t q1 = line.find('"');
    if (q1 == std::string::npos) continue;
    const std::size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    const std::string name = line.substr(q1 + 1, q2 - q1 - 1);
    if (line.find("[label=") != std::string::npos) {
      ++decls[name];
    } else if (line.find("->") != std::string::npos) {
      endpoints.insert(name);
      const std::size_t q3 = line.find('"', q2 + 1);
      const std::size_t q4 = line.find('"', q3 + 1);
      ASSERT_NE(q4, std::string::npos) << line;
      endpoints.insert(line.substr(q3 + 1, q4 - q3 - 1));
    }
  }
  // The compression graph submits exactly these five tasks (ids are
  // per-context, so a fresh context numbers them 0..4).
  const std::set<std::string> expected = {
      "prequant#0", "lorenzo-quantize#1", "histogram#2",
      "compact-outliers#3", "huffman-encode#4"};
  ASSERT_EQ(decls.size(), expected.size());
  for (const auto& name : expected) {
    ASSERT_TRUE(decls.count(name)) << name << " not declared";
    EXPECT_EQ(decls.at(name), 1) << name << " declared more than once";
  }
  // Every edge endpoint refers to a declared node.
  for (const auto& name : endpoints) {
    EXPECT_TRUE(decls.count(name)) << "edge endpoint " << name
                                   << " has no node declaration";
  }
}

TEST(Trace, SummaryAggregatesFabricatedEvents) {
  trace_session session;
  const u64 ms = 1'000'000;
  // Two encode spans of 2 ms and 3 ms, one predict span of 5 ms.
  trace::complete("pipeline", "encode", 10 * ms, 2 * ms);
  trace::complete("pipeline", "encode", 20 * ms, 3 * ms);
  trace::complete("pipeline", "predict", 30 * ms, 5 * ms);
  // Streams 1 and 2 fully overlapped for 10 ms: overlap = 50% of busy.
  trace::complete("stream", "kernel", 40 * ms, 10 * ms, 1);
  trace::complete("stream", "kernel", 40 * ms, 10 * ms, 2);
  // Traced copies.
  trace::complete("stream", "memcpy.h2d", 60 * ms, ms, 1, 1000);
  trace::complete("stream", "memcpy.d2h", 62 * ms, ms, 1, 500);
  // Chunk-window occupancy samples: max 4, mean (2+4+3)/3 = 3.
  trace::counter("chunked.inflight", 2);
  trace::counter("chunked.inflight", 4);
  trace::counter("chunked.inflight", 3);

  const trace::summary s = trace::compute_summary();
  std::map<std::string, trace::stage_stat> stages;
  for (const auto& st : s.stages) stages[st.name] = st;
  ASSERT_TRUE(stages.count("encode"));
  ASSERT_TRUE(stages.count("predict"));
  EXPECT_EQ(stages["encode"].count, 2u);
  EXPECT_NEAR(stages["encode"].total_s, 5e-3, 1e-9);
  EXPECT_EQ(stages["predict"].count, 1u);
  EXPECT_NEAR(stages["predict"].total_s, 5e-3, 1e-9);
  // busy = 22 ms across streams, union = 12 ms -> overlap 10/22.
  EXPECT_NEAR(s.stream_busy_s, 22e-3, 1e-9);
  EXPECT_NEAR(s.stream_overlap_pct, 100.0 * 10 / 22, 1e-6);
  EXPECT_EQ(s.h2d_bytes, 1000u);
  EXPECT_EQ(s.d2h_bytes, 500u);
  EXPECT_NEAR(s.max_inflight, 4.0, 1e-12);
  EXPECT_NEAR(s.mean_inflight, 3.0, 1e-12);
}

TEST(Trace, ClearDropsEverything) {
  trace_session session;
  trace::instant("t", "a");
  trace::counter("t.c", 1);
  ASSERT_GT(trace::event_count(), 0u);
  trace::clear();
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_TRUE(trace::last_dag().empty());
}

TEST(Trace, RingOverflowCountsDrops) {
  trace_session session;
  // Default per-thread capacity is 65536 (FZMOD_TRACE_BUF); overshoot it.
  constexpr u64 n = 70'000;
  for (u64 i = 0; i < n; ++i) trace::instant("t", "spam");
  EXPECT_LE(trace::event_count(), 65'536u);
  EXPECT_EQ(trace::dropped_count() + trace::event_count(), n);
}

TEST(RuntimeStats, SnapshotInvariantsUnderContention) {
  // The torn-read bugfix: multi-field pool counter updates are paired
  // under the pool mutex and runtime::stats_snapshot() reads them
  // consistently, so cross-field invariants hold in every observed
  // snapshot even while allocator traffic hammers the pool.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(3);
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&stop, w] {
      std::size_t sz = 256 + 128 * static_cast<std::size_t>(w);
      while (!stop.load(std::memory_order_relaxed)) {
        device::buffer<u8> a(sz, device::space::device);
        device::buffer<u8> b(2 * sz, device::space::device);
        sz = sz % 4096 + 192;
      }
    });
  }

  auto& rt = device::runtime::instance();
  device::runtime_stats_snapshot prev = rt.stats_snapshot();
  for (int i = 0; i < 2000; ++i) {
    const device::runtime_stats_snapshot s = rt.stats_snapshot();
    // Monotonic cumulative counters.
    EXPECT_GE(s.device_pool.hits, prev.device_pool.hits);
    EXPECT_GE(s.device_pool.misses, prev.device_pool.misses);
    EXPECT_GE(s.device_pool.bytes_served, prev.device_pool.bytes_served);
    // Pairing: every allocation added >= min_bin_bytes to bytes_served
    // exactly when it bumped hits+misses — a torn read breaks this.
    EXPECT_GE(s.device_pool.bytes_served,
              device::memory_pool::min_bin_bytes *
                  (s.device_pool.hits + s.device_pool.misses));
    // Peak is clamped to at least the in-use level in the same snapshot.
    EXPECT_GE(s.device_bytes_peak, s.device_bytes_in_use);
    prev = s;
  }
  stop = true;
  for (auto& t : workers) t.join();
}

TEST(Trace, RingCapEnvParsesStrictly) {
  // Regression: FZMOD_TRACE_BUF used to clamp garbage to the default and
  // silently raise sub-minimum values to 16. Strict now: malformed or
  // too-small values throw naming the variable. (The live collector
  // resolves once at first use; this pins the parse contract itself.)
  unsetenv("FZMOD_TRACE_BUF");
  EXPECT_EQ(trace::resolve_ring_cap(), 65536u);
  setenv("FZMOD_TRACE_BUF", "1024", 1);
  EXPECT_EQ(trace::resolve_ring_cap(), 1024u);
  setenv("FZMOD_TRACE_BUF", "16", 1);
  EXPECT_EQ(trace::resolve_ring_cap(), 16u);
  setenv("FZMOD_TRACE_BUF", "15", 1);
  EXPECT_THROW((void)trace::resolve_ring_cap(), error);
  setenv("FZMOD_TRACE_BUF", "64k", 1);
  try {
    (void)trace::resolve_ring_cap();
    FAIL() << "expected invalid_argument";
  } catch (const error& e) {
    EXPECT_EQ(e.code(), status::invalid_argument);
    EXPECT_NE(std::string(e.what()).find("FZMOD_TRACE_BUF"),
              std::string::npos);
  }
  unsetenv("FZMOD_TRACE_BUF");
}

}  // namespace
}  // namespace fzmod
