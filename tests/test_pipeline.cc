// Integration tests: pipeline composer — presets, archive format, module
// resolution, cross-pipeline decompression, stage timings.
#include <gtest/gtest.h>

#include <cmath>

#include "fzmod/common/rng.hh"
#include "fzmod/core/pipeline.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod::core {
namespace {

std::vector<f32> smooth_field(dims3 d, u64 seed = 99) {
  rng r(seed);
  std::vector<f32> v(d.len());
  for (std::size_t z = 0; z < d.z; ++z) {
    for (std::size_t y = 0; y < d.y; ++y) {
      for (std::size_t x = 0; x < d.x; ++x) {
        v[d.at(x, y, z)] = static_cast<f32>(
            std::sin(0.05 * x) * std::cos(0.04 * y) * 30 + 0.2 * z +
            0.05 * r.normal());
      }
    }
  }
  return v;
}

struct PresetCase {
  const char* label;
  pipeline_config (*make)(eb_config);
};

class PipelinePresets : public ::testing::TestWithParam<PresetCase> {};

TEST_P(PipelinePresets, RoundTripHonoursRelativeBound) {
  const dims3 d{60, 50, 20};
  const auto v = smooth_field(d);
  const eb_config eb{1e-4, eb_mode::rel};
  pipeline<f32> p(GetParam().make(eb));
  const auto archive = p.compress(v, d);
  const auto rec = p.decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(eb.eb * err.range, err.range))
      << GetParam().label;
  EXPECT_GT(metrics::compression_ratio(v.size() * 4, archive.size()), 1.0);
}

TEST_P(PipelinePresets, RoundTripHonoursAbsoluteBound) {
  const dims3 d{40, 40, 15};
  const auto v = smooth_field(d, 123);
  const eb_config eb{1e-3, eb_mode::abs};
  pipeline<f32> p(GetParam().make(eb));
  const auto archive = p.compress(v, d);
  const auto rec = p.decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err, metrics::f32_bound_slack(eb.eb, 40.0))
      << GetParam().label;
}

TEST_P(PipelinePresets, ArchiveIsSelfDescribing) {
  const dims3 d{33, 17};
  const auto v = smooth_field(d, 7);
  const eb_config eb{1e-3, eb_mode::rel};
  pipeline<f32> p(GetParam().make(eb));
  const auto archive = p.compress(v, d);
  const auto info = inspect_archive(archive);
  EXPECT_EQ(info.dims, d);
  EXPECT_EQ(info.type, dtype::f32);
  EXPECT_DOUBLE_EQ(info.eb_user, eb.eb);
  EXPECT_EQ(info.mode, eb_mode::rel);
  EXPECT_GT(info.ebx2, 0.0);
}

TEST_P(PipelinePresets, FreshPipelineDecompressesForeignArchive) {
  // Decompression resolves modules from the archive header, not from the
  // decompressing pipeline's own config.
  const dims3 d{48, 48};
  const auto v = smooth_field(d, 8);
  pipeline<f32> producer(GetParam().make({1e-3, eb_mode::rel}));
  const auto archive = producer.compress(v, d);
  pipeline<f32> consumer(pipeline_config{});  // default config
  const auto rec = consumer.decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(1e-3 * err.range, err.range));
}

INSTANTIATE_TEST_SUITE_P(
    Presets, PipelinePresets,
    ::testing::Values(
        PresetCase{"default", &pipeline_config::preset_default},
        PresetCase{"speed", &pipeline_config::preset_speed},
        PresetCase{"quality", &pipeline_config::preset_quality}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(Pipeline, SecondaryEncoderShrinksArchive) {
  const dims3 d{100, 100};
  const auto v = smooth_field(d, 9);
  auto cfg = pipeline_config::preset_default({1e-3, eb_mode::rel});
  pipeline<f32> plain(cfg);
  cfg.secondary = true;
  pipeline<f32> packed(cfg);
  const auto a_plain = plain.compress(v, d);
  const auto a_packed = packed.compress(v, d);
  EXPECT_LT(a_packed.size(), a_plain.size());
  const auto rec = packed.decompress(a_packed);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err,
            metrics::f32_bound_slack(1e-3 * err.range, err.range));
}

TEST(Pipeline, QualityPresetBeatsSpeedPresetOnRatio) {
  const dims3 d{80, 80, 8};
  const auto v = smooth_field(d, 10);
  const eb_config eb{1e-4, eb_mode::rel};
  pipeline<f32> quality(pipeline_config::preset_quality(eb));
  pipeline<f32> speed(pipeline_config::preset_speed(eb));
  const auto a_q = quality.compress(v, d);
  const auto a_s = speed.compress(v, d);
  EXPECT_LT(a_q.size(), a_s.size());
}

TEST(Pipeline, StageTimingsPopulated) {
  const dims3 d{64, 64};
  const auto v = smooth_field(d, 11);
  pipeline<f32> p(pipeline_config::preset_default({1e-3, eb_mode::rel}));
  (void)p.compress(v, d);
  const auto& t = p.last_compress_timings();
  EXPECT_GT(t.predict, 0.0);
  EXPECT_GT(t.encode, 0.0);
  EXPECT_GT(t.total(), 0.0);
}

TEST(Pipeline, RejectsUnknownModuleName) {
  pipeline_config cfg;
  cfg.predictor = "nonexistent-predictor";
  EXPECT_THROW(pipeline<f32> p(cfg), error);
}

TEST(Pipeline, RejectsBadRadius) {
  pipeline_config cfg;
  cfg.radius = 1;
  EXPECT_THROW(pipeline<f32> p(cfg), error);
  cfg.radius = 1 << 20;
  EXPECT_THROW(pipeline<f32> p(cfg), error);
}

TEST(Pipeline, RejectsCorruptArchive) {
  pipeline<f32> p(pipeline_config{});
  std::vector<u8> junk(100, 0xab);
  EXPECT_THROW((void)p.decompress(junk), error);
  EXPECT_THROW(inspect_archive(junk), error);
  std::vector<u8> tiny(2, 0);
  EXPECT_THROW((void)p.decompress(tiny), error);
}

TEST(Pipeline, RejectsTruncatedArchive) {
  const dims3 d{32, 32};
  const auto v = smooth_field(d, 12);
  pipeline<f32> p(pipeline_config{});
  auto archive = p.compress(v, d);
  archive.resize(archive.size() / 2);
  EXPECT_THROW((void)p.decompress(archive), error);
}

TEST(Pipeline, RejectsDtypeMismatch) {
  const dims3 d{32, 32};
  const auto v = smooth_field(d, 13);
  pipeline<f32> p32(pipeline_config{});
  const auto archive = p32.compress(v, d);
  pipeline<f64> p64(pipeline_config{});
  device::buffer<f64> out(d.len(), device::space::device);
  device::stream s;
  EXPECT_THROW(p64.decompress(archive, out, s), error);
}

TEST(Pipeline, F64RoundTrip) {
  const dims3 d{30, 30, 10};
  rng r(14);
  std::vector<f64> v(d.len());
  for (auto& x : v) x = 1e6 + r.normal();
  pipeline<f64> p(pipeline_config::preset_default({1e-5, eb_mode::rel}));
  device::stream s;
  device::buffer<f64> dev(d.len(), device::space::device);
  device::memcpy_async(dev.data(), v.data(), v.size() * 8,
                       device::copy_kind::h2d, s);
  const auto archive = p.compress(dev, d, s);
  device::buffer<f64> rec(d.len(), device::space::device);
  p.decompress(archive, rec, s);
  s.sync();
  const auto err =
      metrics::compare(std::span<const f64>(v),
                       std::span<const f64>(rec.data(), rec.size()));
  EXPECT_LE(err.max_abs_err, 1e-5 * err.range * (1 + 1e-9));
}

TEST(Pipeline, EmptyishSingleElementField) {
  std::vector<f32> v{42.0f};
  pipeline<f32> p(pipeline_config::preset_default({1e-3, eb_mode::abs}));
  const auto archive = p.compress(v, dims3(1));
  const auto rec = p.decompress(archive);
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_NEAR(rec[0], 42.0f, 1e-3 * 1.01);
}

TEST(Pipeline, TransferAccountingShowsHybridVsDeviceCodec) {
  // FZMod-Default moves the raw code stream D2H for CPU Huffman;
  // FZMod-Speed only moves the compressed payload. The runtime's transfer
  // ledger must reflect that (this is the paper's hybrid-design trade).
  const dims3 d{128, 128, 8};
  const auto v = smooth_field(d, 15);
  auto& st = device::runtime::instance().stats();

  pipeline<f32> def(pipeline_config::preset_default({1e-3, eb_mode::rel}));
  st.reset_transfers();
  (void)def.compress(v, d);
  const u64 d2h_default = st.d2h_bytes.load();

  pipeline<f32> speed(pipeline_config::preset_speed({1e-3, eb_mode::rel}));
  st.reset_transfers();
  (void)speed.compress(v, d);
  const u64 d2h_speed = st.d2h_bytes.load();

  EXPECT_GT(d2h_default, d2h_speed);
  // Default's D2H must cover at least the 2-byte code stream.
  EXPECT_GE(d2h_default, d.len() * sizeof(u16));
}

}  // namespace
}  // namespace fzmod::core
