// Integration tests: module registry and the custom-module extension path
// (the framework's §3.2 extensibility story).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>

#include "fzmod/core/pipeline.hh"
#include "fzmod/core/registry.hh"
#include "fzmod/metrics/metrics.hh"

namespace fzmod::core {
namespace {

TEST(Registry, BuiltinsAreRegistered) {
  auto& reg = module_registry<f32>::instance();
  const auto preds = reg.predictor_names();
  EXPECT_NE(std::find(preds.begin(), preds.end(), predictor_lorenzo),
            preds.end());
  EXPECT_NE(std::find(preds.begin(), preds.end(), predictor_spline),
            preds.end());
  const auto codecs = reg.codec_names();
  EXPECT_NE(std::find(codecs.begin(), codecs.end(), codec_huffman),
            codecs.end());
  EXPECT_NE(std::find(codecs.begin(), codecs.end(), codec_fzg),
            codecs.end());
}

TEST(Registry, UnknownNamesThrow) {
  auto& reg = module_registry<f32>::instance();
  EXPECT_THROW((void)reg.make_predictor("warp-drive"), error);
  EXPECT_THROW((void)reg.make_codec("tachyon"), error);
  EXPECT_THROW((void)reg.make_preprocessor("flux-capacitor"), error);
}

TEST(Registry, FactoriesProduceFreshInstances) {
  auto& reg = module_registry<f32>::instance();
  auto a = reg.make_predictor(predictor_lorenzo);
  auto b = reg.make_predictor(predictor_lorenzo);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->name(), b->name());
}

/// A user-defined predictor: trivial "store the lattice value" (no
/// prediction at all). Terrible CR, but exercises the full custom-module
/// path: register -> name in config -> compress -> archive names it ->
/// decompress re-resolves it.
class nopredict_module_base : public predictor_module<f32> {
 public:
  [[nodiscard]] std::string_view name() const override { return "nopredict"; }

  void compress(const device::buffer<f32>& data, dims3 dims, f64 ebx2,
                int radius, const pipeline_config&,
                predictors::quant_field& out,
                predictors::interp_anchors& anchors,
                device::stream& s) override {
    anchors.lattice.clear();
    out.dims = dims;
    out.radius = radius;
    out.ebx2 = ebx2;
    out.codes = device::buffer<u16>(dims.len(), device::space::device);
    const f32* in = data.data();
    u16* codes = out.codes.data();
    auto outliers = std::make_shared<std::vector<kernels::outlier>>();
    auto mu = std::make_shared<std::mutex>();
    device::launch_blocks(
        s, dims.len(), device::runtime::instance().default_block(),
        [in, codes, ebx2, radius, outliers, mu](std::size_t, std::size_t lo,
                                                std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const i64 q = std::llrint(static_cast<f64>(in[i]) / ebx2);
            if (q > -radius && q < radius) {
              codes[i] = static_cast<u16>(q + radius);
            } else {
              codes[i] = 0;
              std::lock_guard lk(*mu);
              outliers->push_back({i, q});
            }
          }
        });
    device::host_task(s, [outliers, &out] {
      out.n_outliers = outliers->size();
      out.outliers = device::buffer<kernels::outlier>(
          outliers->size(), device::space::device);
      std::copy(outliers->begin(), outliers->end(), out.outliers.data());
    });
  }

  void decompress(const predictors::quant_field& field,
                  const predictors::interp_anchors&,
                  device::buffer<f32>& out, device::stream& s) override {
    const u16* codes = field.codes.data();
    f32* op = out.data();
    const int radius = field.radius;
    const f64 ebx2 = field.ebx2;
    device::launch(s, field.dims.len(), [=](std::size_t i) {
      if (codes[i]) {
        op[i] = static_cast<f32>(
            static_cast<f64>(static_cast<i32>(codes[i]) - radius) * ebx2);
      }
    });
    const auto* ol = field.outliers.data();
    device::launch(s, field.n_outliers, [=](std::size_t k) {
      op[ol[k].index] =
          static_cast<f32>(static_cast<f64>(ol[k].value) * ebx2);
    });
  }
};

TEST(Registry, CustomPredictorFlowsThroughPipelineAndArchive) {
  module_registry<f32>::instance().register_predictor(
      "nopredict", [] { return std::make_unique<nopredict_module_base>(); });

  const dims3 d{64, 32};
  std::vector<f32> v(d.len());
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<f32>(0.01 * static_cast<f64>(i % 100));
  }

  pipeline_config cfg;
  cfg.predictor = "nopredict";
  cfg.eb = {1e-3, eb_mode::abs};
  pipeline<f32> p(cfg);
  const auto archive = p.compress(v, d);

  const auto info = inspect_archive(archive);
  EXPECT_EQ(info.predictor, "nopredict");

  // A different pipeline instance decodes by resolving the archive's name.
  pipeline<f32> other(pipeline_config{});
  const auto rec = other.decompress(archive);
  const auto err = metrics::compare(v, rec);
  EXPECT_LE(err.max_abs_err, metrics::f32_bound_slack(1e-3, 1.0));
}

TEST(Registry, CustomModuleWorksWithBothCodecs) {
  module_registry<f32>::instance().register_predictor(
      "nopredict", [] { return std::make_unique<nopredict_module_base>(); });
  const dims3 d{100};
  std::vector<f32> v(d.len(), 0.5f);
  for (const char* codec : {codec_huffman, codec_fzg}) {
    pipeline_config cfg;
    cfg.predictor = "nopredict";
    cfg.codec = codec;
    cfg.eb = {1e-3, eb_mode::abs};
    pipeline<f32> p(cfg);
    const auto rec = p.decompress(p.compress(v, d));
    EXPECT_NEAR(rec[50], 0.5f, 1e-3 * 1.01) << codec;
  }
}

/// Archives record the module's self-reported name (15 chars max); a
/// module announcing a longer one must be rejected at serialization.
class longname_module final : public nopredict_module_base {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "this-name-is-way-too-long-for-the-header";
  }
};

TEST(Registry, ModuleNameTooLongForArchiveRejected) {
  module_registry<f32>::instance().register_predictor(
      "longname", [] { return std::make_unique<longname_module>(); });
  pipeline_config cfg;
  cfg.predictor = "longname";
  pipeline<f32> p(cfg);
  std::vector<f32> v(16, 1.0f);
  EXPECT_THROW((void)p.compress(v, dims3(16)), error);
}

}  // namespace
}  // namespace fzmod::core
